// Quickstart — the paper's Figure 3 usage example, near-verbatim.
//
// Each of 4 processes writes 100 doubles to non-overlapping offsets of a
// global 1-D array "A" directly to PMEM.  alloc() declares the final
// dimensions; store() persists the per-process piece; load_dims()/load()
// read everything back.
//
// Differences from the paper's listing: ranks are threads of this process
// (the runtime substitutes MPI — see DESIGN.md), so MPI_Init/MPI_Finalize
// become par::Runtime::run, and an emulated-PMEM node is set up first.
#include <pmemcpy/pmemcpy.hpp>

#include <cstdio>
#include <vector>

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/quickstart.pmem";
  const int nprocs = 4;

  pmemcpy::PmemNode node;  // the node-local (emulated) PMEM device
  pmemcpy::PmemNode::set_default(&node);

  pmemcpy::par::Runtime::run(nprocs, [&](pmemcpy::par::Comm& comm) {
    const int rank = comm.rank();

    pmemcpy::PMEM pmem;
    const std::size_t count = 100;
    const std::size_t off = 100 * static_cast<std::size_t>(rank);
    const std::size_t dimsf = 100 * static_cast<std::size_t>(nprocs);

    std::vector<double> data(count);
    for (std::size_t i = 0; i < count; ++i) {
      data[i] = static_cast<double>(rank) + static_cast<double>(i) / 1000.0;
    }

    pmem.mmap(path, comm);
    pmem.alloc<double>("A", 1, &dimsf);
    pmem.store<double>("A", data.data(), 1, &off, &count);
    comm.barrier();

    // Read back and show that dimensions were stored automatically.
    if (rank == 0) {
      int ndims = 0;
      std::size_t dims[8] = {};
      pmem.load_dims("A", &ndims, dims);
      std::printf("A: %d-D array of %zu doubles\n", ndims, dims[0]);

      std::vector<double> all(dimsf);
      const std::size_t zero = 0;
      pmem.load<double>("A", all.data(), 1, &zero, &dimsf);
      std::printf("A[0]=%.3f A[150]=%.3f A[399]=%.3f\n", all[0], all[150],
                  all[399]);
    }
    pmem.munmap();
  });

  std::printf("quickstart: OK\n");
  return 0;
}
