// crash_recovery — demonstrates the consistency guarantees pMEMCPY inherits
// from its PMDK-style object store: a power failure mid-store leaves the
// previously-published value intact, because entries are fully persisted
// before the single atomic link-in, and transactions roll back on recovery.
#include <pmemcpy/pmemcpy.hpp>

#include <cstdio>
#include <cstring>
#include <vector>

int main() {
  pmemcpy::PmemNode::Options o;
  o.capacity = 128ull << 20;
  o.crash_shadow = true;  // track unpersisted cachelines
  pmemcpy::PmemNode node(o);

  pmemcpy::Config cfg;
  cfg.node = &node;

  // Publish a durable checkpoint value.
  {
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/ckpt.pmem");
    std::vector<double> state(1000, 1.0);
    pmem.store("state", state);
    pmem.store("epoch", std::int64_t{41});
    pmem.munmap();
  }

  // Begin overwriting it, but "lose power" while the new value is still
  // being written (reserved and filled, never published).
  {
    auto pool = node.open_pool("_ckpt.pmem");
    auto table = node.table_for(pool, pool->root());
    auto ins = table->reserve("epoch", sizeof(std::int64_t));
    auto span = ins.value();
    const std::int64_t half_done = 42;
    std::memcpy(span.data(), &half_done, sizeof(half_done));
    std::printf("unpersisted cachelines in flight: %zu\n",
                node.device().unpersisted_lines());
    node.device().simulate_crash();  // power failure: publish never happens
    // (the Inserter destructor models the allocator's post-crash garbage
    // collection of unreachable reservations)
  }

  // "Reboot": re-mount the device image and recover.
  node.remount();
  {
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/ckpt.pmem");
    const auto epoch = pmem.load<std::int64_t>("epoch");
    const auto state = pmem.load<std::vector<double>>("state");
    std::printf("after crash: epoch=%lld (expected 41), state[0]=%.1f, "
                "%zu elems intact\n",
                static_cast<long long>(epoch), state[0], state.size());
    if (epoch != 41 || state.size() != 1000) {
      std::printf("crash_recovery: FAILED\n");
      return 1;
    }
    pmem.munmap();
  }

  std::printf("crash_recovery: OK\n");
  return 0;
}
