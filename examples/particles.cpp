// particles — compound datatypes beyond HDF5's reach.  The paper notes that
// "HDF5 compound types do not support the nesting of compound types or
// dynamically sized arrays"; pMEMCPY serializes arbitrary C++ structs with
// a cereal-style serialize() member, so a particle species with a nested
// config struct, a dynamic trajectory, and per-particle tags stores as one
// value — plus attributes carrying its units.
#include <pmemcpy/pmemcpy.hpp>

#include <cstdio>
#include <vector>

namespace {

struct Species {               // nested compound
  std::string name;
  double charge = 0, mass = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(name, charge, mass);
  }
};

struct Particle {
  double x = 0, y = 0, z = 0;
  std::vector<double> trajectory;  // dynamically sized per particle
  std::string tag;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x, y, z, trajectory, tag);
  }
};

struct ParticleBatch {           // nesting of compounds + dynamic arrays
  Species species;
  std::vector<Particle> particles;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(species, particles);
  }
};

}  // namespace

int main() {
  pmemcpy::PmemNode node;
  pmemcpy::Config cfg;
  cfg.node = &node;
  pmemcpy::PMEM pmem{cfg};
  pmem.mmap("/particles.pmem");

  ParticleBatch batch;
  batch.species = {"electron", -1.0, 9.109e-31};
  for (int i = 0; i < 1000; ++i) {
    Particle p;
    p.x = i * 0.1;
    p.y = i * 0.2;
    p.z = i * 0.3;
    for (int t = 0; t <= i % 5; ++t) p.trajectory.push_back(p.x + t);
    p.tag = i % 7 == 0 ? "tracked" : "bulk";
    batch.particles.push_back(std::move(p));
  }

  pmem.store("batch0", batch);
  pmem.store_attribute("batch0", "units", std::string("SI"));
  pmem.store_attribute("batch0", "step", std::int64_t{128});

  const auto back = pmem.load<ParticleBatch>("batch0");
  std::printf("species %s: %zu particles, particle[999] at (%.1f, %.1f, "
              "%.1f), trajectory of %zu points, tag '%s'\n",
              back.species.name.c_str(), back.particles.size(),
              back.particles[999].x, back.particles[999].y,
              back.particles[999].z, back.particles[999].trajectory.size(),
              back.particles[999].tag.c_str());
  std::printf("attributes:");
  for (const auto& a : pmem.attributes("batch0")) std::printf(" %s", a.c_str());
  std::printf(" | units=%s step=%lld\n",
              pmem.load_attribute<std::string>("batch0", "units").c_str(),
              static_cast<long long>(
                  pmem.load_attribute<std::int64_t>("batch0", "step")));

  const bool ok = back.particles.size() == 1000 &&
                  back.species.name == "electron" &&
                  back.particles[999].trajectory.size() == 5;
  pmem.munmap();
  std::printf("particles: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
