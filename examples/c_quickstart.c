/* c_quickstart — the paper's Figure 3 flow through the C API (pmemcpy.h),
 * compiled as plain C.  Demonstrates that the library is usable from C
 * applications: handles, status codes, and explicit dtypes.
 */
#include <pmemcpy/pmemcpy.h>

#include <stdio.h>

int main(void) {
  pmemcpy_node* node = pmemcpy_node_create(64u << 20);
  if (node == NULL) {
    fprintf(stderr, "c_quickstart: node creation failed\n");
    return 1;
  }
  pmemcpy_node_set_default(node);

  pmemcpy_pmem* pmem = pmemcpy_create();
  if (pmemcpy_mmap(pmem, "/c_quickstart.pmem") != PMEMCPY_OK) {
    fprintf(stderr, "mmap: %s\n", pmemcpy_last_error(pmem));
    return 1;
  }

  size_t count = 100;
  size_t off = 0;
  size_t dimsf = 100;
  double data[100];
  size_t i;
  for (i = 0; i < count; ++i) data[i] = (double)i * 0.25;

  if (pmemcpy_alloc(pmem, "A", PMEMCPY_F64, 1, &dimsf) != PMEMCPY_OK ||
      pmemcpy_store(pmem, "A", PMEMCPY_F64, data, 1, &off, &count) !=
          PMEMCPY_OK ||
      pmemcpy_store_f64(pmem, "dt", 1e-6) != PMEMCPY_OK) {
    fprintf(stderr, "store: %s\n", pmemcpy_last_error(pmem));
    return 1;
  }

  int ndims = 0;
  size_t dims[8];
  double out[100];
  double dt = 0.0;
  if (pmemcpy_load_dims(pmem, "A", &ndims, dims) != PMEMCPY_OK ||
      pmemcpy_load(pmem, "A", PMEMCPY_F64, out, 1, &off, &count) !=
          PMEMCPY_OK ||
      pmemcpy_load_f64(pmem, "dt", &dt) != PMEMCPY_OK) {
    fprintf(stderr, "load: %s\n", pmemcpy_last_error(pmem));
    return 1;
  }

  printf("A: %d-D array of %zu doubles; A[99]=%.2f; dt=%.0e\n", ndims,
         dims[0], out[99], dt);

  int ok = ndims == 1 && dims[0] == 100 && out[99] == 24.75 && dt == 1e-6 &&
           pmemcpy_exists(pmem, "A") == 1;
  ok = ok && pmemcpy_munmap(pmem) == PMEMCPY_OK;
  pmemcpy_destroy(pmem);
  pmemcpy_node_destroy(node);
  printf("c_quickstart: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
