// hierarchical_vars — the paper's alternative data layout: "whenever a '/'
// is used in the id of the variable, a directory is created if it didn't
// already exist", with one file per variable on the PMEM filesystem instead
// of a single pooled hashtable.
//
// Demonstrates: Layout::kHierarchical, grouped variable ids, struct values,
// discovery via load_dims, and inspecting the resulting directory tree.
#include <pmemcpy/pmemcpy.hpp>

#include <cstdio>
#include <vector>

namespace {

struct RunInfo {
  std::string code;
  std::int32_t step = 0;
  double dt = 0.0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(code, step, dt);
  }
};

void tree(pmemcpy::fs::FileSystem& fs, const std::string& path, int depth) {
  for (const auto& name : fs.list(path)) {
    std::printf("%*s%s%s\n", depth * 2, "", name.c_str(),
                fs.is_dir(path + "/" + name) ? "/" : "");
    if (fs.is_dir(path + "/" + name)) tree(fs, path + "/" + name, depth + 1);
  }
}

}  // namespace

int main() {
  pmemcpy::PmemNode node;
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.layout = pmemcpy::Layout::kHierarchical;

  pmemcpy::PMEM pmem{cfg};
  pmem.mmap("/run42.bp");

  // Grouped namespace: groups become directories.
  RunInfo info{"s3d", 100, 1e-6};
  pmem.store("meta/run_info", info);
  pmem.store("meta/version", std::int32_t{3});

  std::vector<double> xs(256), ys(256);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i) * 0.5;
    ys[i] = static_cast<double>(i) * 0.25;
  }
  const std::size_t dims = 256, off = 0;
  pmem.alloc<double>("fields/velocity/x", 1, &dims);
  pmem.store("fields/velocity/x", xs.data(), 1, &off, &dims);
  pmem.alloc<double>("fields/velocity/y", 1, &dims);
  pmem.store("fields/velocity/y", ys.data(), 1, &off, &dims);

  // Discovery: dims travel with the variable.
  const auto d = pmem.load_dims("fields/velocity/x");
  const auto meta = pmem.load<RunInfo>("meta/run_info");
  std::printf("velocity/x: %zu elems; run %s step %d dt %.2e\n", d[0],
              meta.code.c_str(), meta.step, meta.dt);

  std::vector<double> back(dims);
  pmem.load("fields/velocity/y", back.data(), 1, &off, &dims);
  std::printf("velocity/y[100] = %.2f\n", back[100]);

  std::printf("\ndirectory tree under /run42.bp:\n");
  tree(node.fs(), "/run42.bp", 1);

  pmem.munmap();
  std::printf("hierarchical_vars: OK\n");
  return 0;
}
