// analysis_reader — the paper's read-side use case: an analysis job opens
// data a simulation wrote with a *different* decomposition and reads
// arbitrary sub-regions (slices, halos), exercising the non-symmetric read
// path where pMEMCPY intersects all overlapping per-process pieces.
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <cstdio>
#include <vector>

namespace wk = pmemcpy::wk;
using pmemcpy::Box;
using pmemcpy::Dimensions;

int main() {
  pmemcpy::PmemNode::Options o;
  o.capacity = 512ull << 20;
  pmemcpy::PmemNode node(o);
  pmemcpy::PmemNode::set_default(&node);

  // A 16-rank simulation writes a 3-D field...
  const auto dec = wk::decompose(48 * 48 * 48, 16);
  pmemcpy::par::Runtime::run(16, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    std::vector<double> buf;
    wk::fill_box(buf, 0, dec.global, mine);
    pmemcpy::PMEM pmem;
    pmem.mmap("/sim.out", comm);
    pmem.alloc<double>("field", dec.global);
    pmem.store("field", buf.data(), 3, mine.offset.data(), mine.count.data());
    pmem.munmap();
  });

  // ...and a 4-rank analysis job reads planes and sub-volumes of it.
  auto result = pmemcpy::par::Runtime::run(4, [&](pmemcpy::par::Comm& comm) {
    pmemcpy::PMEM pmem;
    pmem.mmap("/sim.out", comm);
    const auto dims = pmem.load_dims("field");

    // Each analysis rank takes one z-slab of the full domain (crosses many
    // writers' pieces).
    const std::size_t slab = dims[0] / 4;
    const std::size_t offs[3] = {slab * static_cast<std::size_t>(comm.rank()),
                                 0, 0};
    const std::size_t cnts[3] = {slab, dims[1], dims[2]};
    std::vector<double> data(slab * dims[1] * dims[2]);
    pmem.load("field", data.data(), 3, offs, cnts);

    const std::size_t bad = wk::verify_box(
        data, 0, dims, Box({offs[0], offs[1], offs[2]}, {cnts[0], cnts[1], cnts[2]}));
    double mean = 0;
    for (double v : data) mean += v;
    mean /= static_cast<double>(data.size());
    std::printf("rank %d: slab [%zu..%zu) mean=%.2f verified=%s\n",
                comm.rank(), offs[0], offs[0] + slab, mean,
                bad == 0 ? "yes" : "NO");

    // A small probe volume in the domain centre (also crosses pieces).
    const std::size_t c0[3] = {dims[0] / 2 - 2, dims[1] / 2 - 2,
                               dims[2] / 2 - 2};
    const std::size_t cc[3] = {4, 4, 4};
    std::vector<double> probe(64);
    pmem.load("field", probe.data(), 3, c0, cc);
    if (comm.rank() == 0) {
      std::printf("probe[0]=%.1f probe[63]=%.1f\n", probe[0], probe[63]);
    }
    pmem.munmap();
  });

  std::printf("analysis simulated read time: %.4f s\n", result.max_time);
  std::printf("analysis_reader: OK\n");
  return 0;
}
