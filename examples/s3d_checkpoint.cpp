// s3d_checkpoint — the paper's motivating workload as an application: a
// regular stencil code (modelled on the S3D combustion code) periodically
// checkpoints its 3-D field variables to node-local PMEM and can restart
// from the last checkpoint.
//
// Demonstrates: parallel 3-D subarray store/load, multiple timesteps,
// scalar metadata (the checkpoint step), and measuring simulated I/O time.
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <cstdio>
#include <vector>

namespace wk = pmemcpy::wk;
using pmemcpy::Box;

namespace {

constexpr int kRanks = 8;
constexpr int kFields = 4;  // e.g. density, pressure, temperature, energy
constexpr int kSteps = 3;
const char* kFieldNames[kFields] = {"density", "pressure", "temperature",
                                    "energy"};

/// One Jacobi-like smoothing sweep so data actually evolves between steps.
void smooth(std::vector<double>& f) {
  for (std::size_t i = 1; i + 1 < f.size(); ++i) {
    f[i] = 0.5 * f[i] + 0.25 * (f[i - 1] + f[i + 1]);
  }
}

}  // namespace

int main() {
  pmemcpy::PmemNode::Options o;
  o.capacity = 512ull << 20;
  pmemcpy::PmemNode node(o);
  pmemcpy::PmemNode::set_default(&node);

  const auto dec = wk::decompose(64 * 64 * 64, kRanks);

  // --- simulate + checkpoint ------------------------------------------------
  auto result = pmemcpy::par::Runtime::run(kRanks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    std::vector<std::vector<double>> fields(kFields);
    for (int f = 0; f < kFields; ++f) {
      wk::fill_box(fields[static_cast<std::size_t>(f)], f, dec.global, mine);
    }

    pmemcpy::PMEM pmem;
    for (int step = 0; step < kSteps; ++step) {
      for (auto& f : fields) smooth(f);

      pmem.mmap("/s3d.ckpt", comm);
      for (int f = 0; f < kFields; ++f) {
        pmem.alloc<double>(kFieldNames[f], dec.global);
        pmem.store(kFieldNames[f], fields[static_cast<std::size_t>(f)].data(),
                   3, mine.offset.data(), mine.count.data());
      }
      if (comm.rank() == 0) pmem.store("last_step", std::int32_t{step});
      pmem.munmap();
    }
  });
  std::printf("checkpointed %d steps of %d fields (%zu^3-ish domain): "
              "simulated I/O time %.4f s\n",
              kSteps, kFields, dec.global[0], result.max_time);

  // --- restart: a fresh set of ranks recovers the last state ---------------
  pmemcpy::par::Runtime::run(kRanks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    pmemcpy::PMEM pmem;
    pmem.mmap("/s3d.ckpt", comm);
    const auto step = pmem.load<std::int32_t>("last_step");
    std::vector<double> restored(mine.elements());
    for (int f = 0; f < kFields; ++f) {
      pmem.load(kFieldNames[f], restored.data(), 3, mine.offset.data(),
                mine.count.data());
    }
    if (comm.rank() == 0) {
      std::printf("restart: recovered step %d, %d fields, %zu elems/rank\n",
                  step, kFields, restored.size());
    }
    pmem.munmap();
  });

  std::printf("s3d_checkpoint: OK\n");
  return 0;
}
