// burst_buffer — the full Figure-1 storage hierarchy in action: an
// application checkpoints to node-local PMEM with pMEMCPY, a DataWarp-style
// burst buffer asynchronously drains the checkpoint to the parallel
// filesystem while the application computes on, and a later run (fresh
// node-local storage) stages the checkpoint back in from the PFS.
#include <pmemcpy/bb/burst_buffer.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <cstdio>
#include <vector>

namespace wk = pmemcpy::wk;
using pmemcpy::Box;

int main() {
  pmemcpy::pfs::ParallelFileSystem pfs;  // shared mass storage
  const auto dec = wk::decompose(48 * 48 * 48, 8);

  // --- run 1: compute, checkpoint to PMEM, drain to PFS --------------------
  {
    pmemcpy::PmemNode::Options o;
    o.capacity = 256ull << 20;
    pmemcpy::PmemNode node(o);

    auto result = pmemcpy::par::Runtime::run(8, [&](pmemcpy::par::Comm& comm) {
      const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
      std::vector<double> field;
      wk::fill_box(field, 0, dec.global, mine);

      pmemcpy::Config cfg;
      cfg.node = &node;
      pmemcpy::PMEM pmem{cfg};
      pmem.mmap("/ckpt", comm);
      pmem.alloc<double>("field", dec.global);
      pmem.store("field", field.data(), 3, mine.offset.data(),
                 mine.count.data());
      if (comm.rank() == 0) pmem.store("epoch", std::int64_t{12});
      comm.barrier();

      // Rank 0 triggers the asynchronous drain; everyone computes on.
      // DrainReport.started_at is rank 0's clock at the drain call (right
      // after the barrier), i.e. when the PMEM write phase ended.
      pmemcpy::bb::DrainReport report;
      if (comm.rank() == 0) {
        pmemcpy::bb::BurstBuffer bb(pfs);
        report = bb.drain(pmem, "job42/ckpt0");
        std::printf("drain: %zu entries, %.1f MiB, takes %.4f s in the "
                    "background (PMEM write phase took %.4f s)\n",
                    report.entries,
                    static_cast<double>(report.bytes) / (1 << 20),
                    report.duration(), report.started_at);
        // Only when the data must be durable on the PFS does anyone wait.
        pmemcpy::bb::BurstBuffer::wait(report);
      }
      pmem.munmap();
    });
    std::printf("run 1 simulated time (incl. drain wait on rank 0): %.4f s\n",
                result.max_time);
  }

  // --- run 2: new allocation, stage in from PFS, restart --------------------
  {
    pmemcpy::PmemNode::Options o;
    o.capacity = 256ull << 20;
    pmemcpy::PmemNode node(o);  // empty node-local storage

    pmemcpy::par::Runtime::run(8, [&](pmemcpy::par::Comm& comm) {
      pmemcpy::Config cfg;
      cfg.node = &node;
      pmemcpy::PMEM pmem{cfg};
      pmem.mmap("/restart", comm);
      if (comm.rank() == 0) {
        pmemcpy::bb::BurstBuffer bb(pfs);
        const auto report = bb.stage_in("job42/ckpt0", pmem);
        std::printf("stage-in: %zu entries, %.1f MiB\n", report.entries,
                    static_cast<double>(report.bytes) / (1 << 20));
      }
      comm.barrier();

      const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
      std::vector<double> field(mine.elements());
      pmem.load("field", field.data(), 3, mine.offset.data(),
                mine.count.data());
      const auto bad = wk::verify_box(field, 0, dec.global, mine);
      if (comm.rank() == 0) {
        std::printf("restart: epoch=%lld field verified=%s\n",
                    static_cast<long long>(pmem.load<std::int64_t>("epoch")),
                    bad == 0 ? "yes" : "NO");
      }
      pmem.munmap();
    });
  }

  std::printf("burst_buffer: OK\n");
  return 0;
}
