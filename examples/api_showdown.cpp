// api_showdown — the paper's §3 comparison, executed: the same parallel
// 1-D array write through the three API styles of Figures 3 (pMEMCPY),
// 4 (HDF5) and 5 (ADIOS), each kept as close to the paper's listing as the
// facades allow.  All three then read back and verify identical data, and
// the simulated I/O cost of each stack is reported.
#include <miniio/adios1.hpp>
#include <miniio/hdf5.hpp>
#include <pmemcpy/pmemcpy.hpp>

#include <cstdio>
#include <vector>

namespace {

constexpr int kProcs = 4;
constexpr std::size_t kCount = 1 << 20;  // 1M doubles per rank: bandwidth-dominated

double value(int rank, std::size_t i) {
  return rank * 1000.0 + static_cast<double>(i);
}

// --- Figure 3: pMEMCPY (16 lines of I/O code in the paper) ------------------
double run_pmemcpy(pmemcpy::PmemNode& node) {
  auto res = pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    const int rank = comm.rank();
    pmemcpy::Config cfg;
    cfg.node = &node;
    pmemcpy::PMEM pmem{cfg};
    std::size_t count = kCount;
    std::size_t off = kCount * static_cast<std::size_t>(rank);
    std::size_t dimsf = kCount * kProcs;
    std::vector<double> data(kCount);
    for (std::size_t i = 0; i < kCount; ++i) data[i] = value(rank, i);

    pmem.mmap("/fig3.pmem", comm);
    pmem.alloc<double>("A", 1, &dimsf);
    pmem.store<double>("A", data.data(), 1, &off, &count);
    pmem.munmap();
  });
  return res.max_time;
}

// --- Figure 4: HDF5 (42 lines in the paper) -----------------------------------
double run_hdf5(pmemcpy::PmemNode& node) {
  using namespace minihdf5;
  auto res = pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    const int rank = comm.rank();
    hid_t file_id, dset_id;
    hid_t filespace, memspace;
    hsize_t count = kCount;
    hsize_t offset = static_cast<hsize_t>(rank) * kCount;
    hsize_t dimsf = kCount * kProcs;
    hid_t plist_id;
    herr_t status;
    std::vector<double> data(kCount);
    for (std::size_t i = 0; i < kCount; ++i) data[i] = value(rank, i);

    plist_id = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(plist_id, node, comm);
    file_id = H5Fcreate("/fig4.h5", H5F_ACC_TRUNC, H5P_DEFAULT, plist_id);

    filespace = H5Screate_simple(1, &dimsf, nullptr);
    dset_id = H5Dcreate(file_id, "dataset", H5T_NATIVE_DOUBLE, filespace,
                        H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Sclose(filespace);
    memspace = H5Screate_simple(1, &count, nullptr);
    filespace = H5Dget_space(dset_id);
    H5Sselect_hyperslab(filespace, H5S_SELECT_SET, &offset, nullptr, &count,
                        nullptr);

    const hid_t xfer = H5Pcreate(H5P_DATASET_XFER);
    status = H5Dwrite(dset_id, H5T_NATIVE_DOUBLE, memspace, filespace, xfer,
                      data.data());
    if (status != 0) throw std::runtime_error("H5Dwrite failed");

    H5Dclose(dset_id);
    H5Sclose(filespace);
    H5Sclose(memspace);
    H5Pclose(xfer);
    H5Pclose(plist_id);
    H5Fclose(file_id);
  });
  return res.max_time;
}

// --- Figure 5: ADIOS (24 lines in the paper) --------------------------------------
double run_adios(pmemcpy::PmemNode& node) {
  using namespace miniadios1;
  // "config file" defining A in terms of count, offset, dimsf.
  adios_init("A=dimsf/offset/count", node);
  auto res = pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    const int rank = comm.rank();
    std::vector<double> data(kCount);
    for (std::size_t i = 0; i < kCount; ++i) data[i] = value(rank, i);
    std::int64_t adios_handle;
    std::size_t count = kCount;
    std::size_t offset = kCount * static_cast<std::size_t>(rank);
    std::size_t dimsf = kCount * kProcs;

    adios_open(&adios_handle, "dataset", "/fig5.bp", "w", comm);
    adios_write(adios_handle, "count", &count);
    adios_write(adios_handle, "dimsf", &dimsf);
    adios_write(adios_handle, "offset", &offset);
    adios_write(adios_handle, "A", data.data());
    adios_close(adios_handle);
  });
  adios_finalize(0);
  return res.max_time;
}

// --- verification: every stack produced the same array -----------------------------
bool verify(pmemcpy::PmemNode& node) {
  bool ok = true;
  pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    const int rank = comm.rank();
    std::vector<double> a(kCount), b(kCount), c(kCount);
    const std::size_t off = kCount * static_cast<std::size_t>(rank);
    const std::size_t cnt = kCount;

    pmemcpy::Config cfg;
    cfg.node = &node;
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/fig3.pmem", comm);
    pmem.load("A", a.data(), 1, &off, &cnt);
    pmem.munmap();

    using namespace minihdf5;
    const hid_t plist = H5Pcreate(H5P_FILE_ACCESS);
    H5Pset_fapl_mpio(plist, node, comm);
    const hid_t f = H5Fopen("/fig4.h5", H5F_ACC_RDONLY, plist);
    const hid_t d = H5Dopen(f, "dataset", H5P_DEFAULT);
    const hid_t fs = H5Dget_space(d);
    const hsize_t hoff = off, hcnt = cnt;
    H5Sselect_hyperslab(fs, H5S_SELECT_SET, &hoff, nullptr, &hcnt, nullptr);
    H5Dread(d, H5T_NATIVE_DOUBLE, H5P_DEFAULT, fs, H5P_DEFAULT, b.data());
    H5Sclose(fs);
    H5Dclose(d);
    H5Fclose(f);
    H5Pclose(plist);

    using namespace miniadios1;
    adios_init("A=dimsf/offset/count", node);
    std::int64_t h;
    adios_open(&h, "dataset", "/fig5.bp", "r", comm);
    std::size_t count = cnt, offset = off, dimsf = kCount * kProcs;
    adios_write(h, "count", &count);
    adios_write(h, "offset", &offset);
    adios_write(h, "dimsf", &dimsf);
    adios_read(h, "A", c.data());
    adios_close(h);

    for (std::size_t i = 0; i < kCount; ++i) {
      const double expect = value(rank, i);
      if (a[i] != expect || b[i] != expect || c[i] != expect) ok = false;
    }
  });
  return ok;
}

}  // namespace

int main() {
  pmemcpy::PmemNode::Options o;
  o.capacity = 128ull << 20;
  o.pool_fraction = 0.4;
  pmemcpy::PmemNode node(o);

  const double t_pm = run_pmemcpy(node);
  const double t_h5 = run_hdf5(node);
  const double t_ad = run_adios(node);
  const bool ok = verify(node);

  std::printf("%-24s %10s %14s %8s\n", "API (paper listing)", "I/O lines",
              "sim write (s)", "tokens");
  std::printf("%-24s %10s %14.6f %8s\n", "pMEMCPY (Fig.3)", "16", t_pm,
              "~132");
  std::printf("%-24s %10s %14.6f %8s\n", "HDF5    (Fig.4)", "42", t_h5,
              "~253");
  std::printf("%-24s %10s %14.6f %8s\n", "ADIOS   (Fig.5)", "24", t_ad,
              "~164");
  std::printf("all three stacks verified identical data: %s\n",
              ok ? "yes" : "NO");
  std::printf("api_showdown: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
