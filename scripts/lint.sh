#!/usr/bin/env bash
# Static lint rules enforced by CI (./ci.sh runs this before building).
#
# Rule 1 — raw device access stays in the storage layers.
#   Device::note_write() and Device::raw() bypass the charged/persist-checked
#   transfer path.  Only the device itself, the object store, and the
#   filesystem may use them; everything above (serializers, backends, core,
#   benches, examples) must go through Pool/Mapping/FileSystem so stores are
#   charged and visible to the persist checker.  Tests are exempt: they
#   exercise the raw path on purpose (crash-image probing, planted bugs).
#
# Rule 2 — every test is registered.
#   A tests/*_test.cpp that is not listed in tests/CMakeLists.txt silently
#   never runs in CI.
#
# Rule 4 — raw simulated-clock reads stay in the time layers.
#   sim::ctx().now() is the raw clock; reading it ad hoc produces timing
#   numbers that bypass the trace layer's span attribution and drift from
#   the exported reports.  Only the sim/trace layers themselves, the
#   parallel runtime (collectives must compare rank clocks) and the
#   burst-buffer drain model (its DrainReport *is* the sanctioned
#   timestamp carrier) may read it; everything else takes timestamps from
#   trace spans or a DrainReport.  Tests are exempt (they assert on the
#   clock on purpose).
#
# Rule 5 — health results are never silently dropped.
#   scrub()/repair()/check()/check_health()/quarantine()/publish() exist to
#   report whether data survived; a bare statement-call discards that verdict
#   and turns a health probe into a no-op ritual.  ft::Status itself is
#   [[nodiscard]], but several probes return plain reports/bools the compiler
#   will not flag.  Applies everywhere (src, bench, examples, tests): tests
#   that really want to ignore a result must bind it (e.g. `(void)p.scrub()`
#   reads as intent; `p.scrub();` reads as a forgotten assertion).
#
# Rule 3 — the core data path talks to storage through the engine layer.
#   obj::HashTable and fs::FileSystem are engine implementation details;
#   naming them in src/core/ or include/pmemcpy/core/pmemcpy.hpp would
#   reintroduce the container-specific branching the engine refactor removed.
#   The engine, the storage layers themselves, node wiring, the baselines
#   (engine-free comparison stacks), and tests/benches/examples (which probe
#   specific containers on purpose) are exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Rule 1: raw device mutation confined to the storage layers --------------
allowed='^(src/pmemdev/|src/pmemobj/|src/pmemfs/|include/pmemcpy/pmem/|include/pmemcpy/obj/|include/pmemcpy/fs/)'
while IFS= read -r file; do
  if ! [[ "$file" =~ $allowed ]]; then
    echo "lint: raw device access outside storage layers: $file" >&2
    grep -n 'note_write(\|->raw(\|\.raw(' "$file" | head -5 >&2
    fail=1
  fi
done < <(grep -rl 'note_write(\|->raw(\|\.raw(' \
           --include='*.cpp' --include='*.hpp' \
           src include bench examples 2>/dev/null || true)

# --- Rule 3: core reaches containers only through the engine -----------------
container_ok='^(src/engine/|src/pmemobj/|src/pmemfs/|src/baselines/|include/pmemcpy/engine/|include/pmemcpy/obj/|include/pmemcpy/fs/|include/pmemcpy/core/node\.hpp)'
while IFS= read -r file; do
  if ! [[ "$file" =~ $container_ok ]]; then
    echo "lint: container type named outside engine/storage layers: $file" >&2
    grep -n 'obj::HashTable\|fs::FileSystem' "$file" | head -5 >&2
    fail=1
  fi
done < <(grep -rl 'obj::HashTable\|fs::FileSystem' \
           --include='*.cpp' --include='*.hpp' \
           src include 2>/dev/null || true)

# --- Rule 4: raw sim clock reads confined to the time layers -----------------
clock_ok='^(src/simtime/|src/trace/|src/par/|src/pfs/|include/pmemcpy/sim/|include/pmemcpy/trace/)'
while IFS= read -r file; do
  if ! [[ "$file" =~ $clock_ok ]]; then
    echo "lint: raw sim clock read outside sim/trace layers: $file" >&2
    grep -n '\.now()' "$file" | head -5 >&2
    fail=1
  fi
done < <(grep -rl '\.now()' \
           --include='*.cpp' --include='*.hpp' \
           src include bench examples 2>/dev/null || true)

# --- Rule 5: health-probe results must be consumed ---------------------------
# A statement that *begins* with a call to a health probe discards its result
# (bound results start with a type / auto / assignment / assertion macro).
probe='(scrub|repair|check|check_health|quarantine|publish)'
while IFS= read -r hit; do
  echo "lint: discarded health-probe result: $hit" >&2
  fail=1
done < <(grep -rnE "^\s*[A-Za-z_][A-Za-z0-9_]*(\.|->)${probe}\(" \
           --include='*.cpp' --include='*.hpp' --include='*.c' \
           src include bench examples tests 2>/dev/null || true)

# --- Rule 2: every tests/*_test.cpp registered in tests/CMakeLists.txt -------
for t in tests/*_test.cpp; do
  name="$(basename "$t" .cpp)"
  if ! grep -q "pmemcpy_test(${name}[ )]" tests/CMakeLists.txt; then
    echo "lint: ${t} is not registered in tests/CMakeLists.txt" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
