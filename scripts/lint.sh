#!/usr/bin/env bash
# Thin wrapper around tools/pmemlint — the in-tree flow-sensitive static
# analyzer that replaced the historical grep rules here (DESIGN.md §11).
# The five original rules live on as structural rules over a real token
# stream (raw-device, unregistered-test, container-layering, raw-clock,
# dropped-result) next to the rules a line-local regex could not express
# (unpersisted-return, include-layering).
#
#   scripts/lint.sh                      # analyze the tree; exit 1 on any
#                                        # non-baselined finding
#   LINT_JSON=report.json scripts/lint.sh  # also write the JSON report
#   scripts/lint.sh --list-rules         # extra args pass through
#
# The analyzer is built on demand with the host compiler into .lint-cache/
# (deliberately no cmake dependency: CI lints before configuring).
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
cache=.lint-cache
bin="${cache}/pmemlint"
mkdir -p "${cache}"

rebuild=0
if [[ ! -x "${bin}" ]]; then
  rebuild=1
else
  for src in tools/pmemlint/*.cpp tools/pmemlint/*.hpp; do
    if [[ "${src}" -nt "${bin}" ]]; then
      rebuild=1
      break
    fi
  done
fi
if [[ "${rebuild}" -eq 1 ]]; then
  echo "lint: building tools/pmemlint" >&2
  "${CXX}" -std=c++20 -O2 -Wall -Wextra tools/pmemlint/*.cpp -o "${bin}"
fi

args=(--root . --baseline tools/pmemlint/baseline.txt)
if [[ -n "${LINT_JSON:-}" ]]; then
  args+=(--json "${LINT_JSON}")
fi
exec "${bin}" "${args[@]}" "$@"
