#include <pmemcpy/sim/context.hpp>

namespace pmemcpy::sim {

const CostModel& default_model() {
  static const CostModel model{};
  return model;
}

namespace {
thread_local Context* t_current = nullptr;
}  // namespace

Context& default_context() noexcept {
  static Context c{default_model(), 1, 0};
  return c;
}

Context& ctx() noexcept {
  return t_current != nullptr ? *t_current : default_context();
}

ScopedContext::ScopedContext(Context& c) noexcept : prev_(t_current) {
  t_current = &c;
}

ScopedContext::~ScopedContext() { t_current = prev_; }

}  // namespace pmemcpy::sim
