#include <pmemcpy/pfs/pfs.hpp>

namespace pmemcpy::pfs {

void ParallelFileSystem::charge(std::size_t bytes) const {
  auto& c = sim::ctx();
  c.advance(model_.latency +
                static_cast<double>(bytes) /
                    c.shared_bw(model_.stream_bw, model_.total_bw),
            sim::Charge::kPfs);
}

void ParallelFileSystem::put(const std::string& name,
                             std::span<const std::byte> data) {
  charge(data.size());
  std::lock_guard lk(mu_);
  objects_[name].assign(data.begin(), data.end());
}

std::optional<std::vector<std::byte>> ParallelFileSystem::get(
    const std::string& name) const {
  std::vector<std::byte> out;
  {
    std::lock_guard lk(mu_);
    const auto it = objects_.find(name);
    if (it == objects_.end()) return std::nullopt;
    out = it->second;
  }
  charge(out.size());
  return out;
}

bool ParallelFileSystem::exists(const std::string& name) const {
  std::lock_guard lk(mu_);
  return objects_.contains(name);
}

std::size_t ParallelFileSystem::size(const std::string& name) const {
  std::lock_guard lk(mu_);
  const auto it = objects_.find(name);
  return it == objects_.end() ? 0 : it->second.size();
}

bool ParallelFileSystem::remove(const std::string& name) {
  std::lock_guard lk(mu_);
  return objects_.erase(name) != 0;
}

std::vector<std::string> ParallelFileSystem::list(
    const std::string& prefix) const {
  sim::ctx().advance(model_.latency, sim::Charge::kPfs);
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t ParallelFileSystem::bytes_stored() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

}  // namespace pmemcpy::pfs
