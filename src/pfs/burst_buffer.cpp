#include <pmemcpy/bb/burst_buffer.hpp>

#include <cstring>

namespace pmemcpy::bb {

namespace {

/// PFS object payload: [meta u64][blob bytes], so a stage-in can rebuild
/// the entry exactly.
std::vector<std::byte> wrap(std::span<const std::byte> blob,
                            std::uint64_t meta) {
  std::vector<std::byte> out(sizeof(meta) + blob.size());
  std::memcpy(out.data(), &meta, sizeof(meta));
  std::memcpy(out.data() + sizeof(meta), blob.data(), blob.size());
  return out;
}

}  // namespace

DrainReport BurstBuffer::drain(PMEM& pmem, const std::string& dest) {
  DrainReport report;
  report.started_at = sim::ctx().now();

  // The agent gets its own single-threaded timeline seeded at call time.
  sim::Context agent(sim::ctx().model(), /*nranks=*/1, /*rank=*/0);
  agent.set_now(report.started_at);
  sim::ScopedContext scope(agent);

  pmem.for_each_raw([&](const std::string& key,
                        std::span<const std::byte> blob, std::uint64_t meta) {
    pfs_->put(dest + "/" + key, wrap(blob, meta));
    ++report.entries;
    report.bytes += blob.size();
  });

  report.ready_at = agent.now();
  return report;
}

DrainReport BurstBuffer::stage_in(const std::string& src, PMEM& pmem) {
  DrainReport report;
  report.started_at = sim::ctx().now();
  const std::string prefix = src + "/";
  for (const auto& name : pfs_->list(prefix)) {
    const auto obj = pfs_->get(name);
    if (!obj || obj->size() < sizeof(std::uint64_t)) continue;
    std::uint64_t meta = 0;
    std::memcpy(&meta, obj->data(), sizeof(meta));
    pmem.import_raw(name.substr(prefix.size()),
                    {obj->data() + sizeof(meta), obj->size() - sizeof(meta)},
                    meta);
    ++report.entries;
    report.bytes += obj->size() - sizeof(meta);
  }
  report.ready_at = sim::ctx().now();
  return report;
}

void BurstBuffer::wait(const DrainReport& report) {
  auto& c = sim::ctx();
  if (report.ready_at > c.now()) c.set_now(report.ready_at);
}

}  // namespace pmemcpy::bb
