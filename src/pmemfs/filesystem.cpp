#include <pmemcpy/fs/filesystem.hpp>

#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <cstring>

namespace pmemcpy::fs {

namespace {

constexpr std::uint64_t kFsMagic = 0x50464c4954453476ull;  // "PFLITE4v"
constexpr std::uint32_t kFsVersion = 1;
constexpr std::size_t kInodeSize = 256;
constexpr std::size_t kInlineExtents = 12;
constexpr std::size_t kIndirectExtents = 254;
constexpr std::uint32_t kTypeFree = 0;
constexpr std::uint32_t kTypeFile = 1;
constexpr std::uint32_t kTypeDir = 2;

struct Superblock {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t pad;
  std::uint64_t total_blocks;
  std::uint64_t inode_count;
  std::uint64_t bitmap_rel;
  std::uint64_t itable_rel;
  std::uint64_t data_rel;
};

struct Extent {
  std::uint64_t start;  // block index
  std::uint64_t len;    // blocks
};

/// Indirect extent block: lives in one data block.
struct IndirectBlock {
  std::uint64_t next;  // block index of next indirect block, 0 = none
  std::uint64_t count;
  Extent ext[kIndirectExtents];
};
static_assert(sizeof(IndirectBlock) <= kBlockSize);

struct DirEntryHeader {
  std::uint32_t ino;
  std::uint16_t name_len;
};

/// Directory files are shadow-committed (see dir_write_entries): the first
/// cacheline of the file is this header, and the entry records live in one
/// of two slots behind it.  Rewrites fill the inactive slot, make it
/// durable, then flip the header — a single-line store the crash model
/// treats as atomic — so a torn crash always parses either the old or the
/// new entry list, never a byte-mix of both.
struct DirHeader {
  std::uint64_t seq;          // bumped on every committed rewrite
  std::uint64_t content_off;  // file offset of the live entry records
  std::uint64_t content_len;  // bytes of live entry records
  std::uint64_t cap;          // per-slot capacity, 64-byte aligned
};
constexpr std::uint64_t kDirHeaderSize = pmem::kCacheLine;
static_assert(sizeof(DirHeader) <= kDirHeaderSize);

std::vector<std::string> split_path(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    throw FsError("fs: path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  std::size_t i = 1;
  while (i < path.size()) {
    const std::size_t j = path.find('/', i);
    const std::size_t end = j == std::string::npos ? path.size() : j;
    if (end > i) parts.push_back(path.substr(i, end - i));
    i = end + 1;
  }
  return parts;
}

}  // namespace

struct FileSystem::Inode {
  std::uint32_t type;
  std::uint32_t nextents;
  std::uint64_t size;
  Extent ext[kInlineExtents];
  std::uint64_t indirect;  // block index, 0 = none
  std::uint64_t reserved[3];
};
FileSystem::FileSystem(pmem::Device& dev, std::size_t base)
    : dev_(&dev), base_(base) {}

FileSystem FileSystem::format(pmem::Device& dev, std::size_t base,
                              std::size_t size) {
  if (base + size > dev.capacity()) {
    throw FsError("fs::format: region exceeds device capacity");
  }
  FileSystem fs(dev, base);
  // One inode per 64 KiB keeps file-per-variable layouts viable (the inode
  // table costs 0.4% of the filesystem).
  const std::uint64_t inode_count =
      std::clamp<std::uint64_t>(size / (64 << 10), 1024, 262144);
  const std::uint64_t itable_bytes = inode_count * kInodeSize;
  // Solve for block count given that the bitmap also consumes space.
  const std::uint64_t fixed = kBlockSize /*superblock*/ + itable_bytes;
  if (size < fixed + 64 * kBlockSize) throw FsError("fs::format: too small");
  std::uint64_t blocks = (size - fixed) / kBlockSize;
  while (fixed + (blocks + 7) / 8 + blocks * kBlockSize > size) --blocks;

  fs.total_blocks_ = blocks;
  fs.inode_count_ = inode_count;
  fs.bitmap_off_ = base + kBlockSize;
  // Line-aligned so every inode's head line is one atomic persist
  // (write_inode's commit ordering depends on it).
  fs.itable_off_ = (fs.bitmap_off_ + (blocks + 7) / 8 + pmem::kCacheLine - 1) /
                   pmem::kCacheLine * pmem::kCacheLine;
  fs.data_off_ = (fs.itable_off_ + itable_bytes + kBlockSize - 1) / kBlockSize *
                 kBlockSize;
  // data_off_ must leave room for all blocks.
  while (fs.data_off_ + blocks * kBlockSize > base + size) --blocks;
  fs.total_blocks_ = blocks;

  // Zero the bitmap and inode-type bytes.
  {
    std::vector<std::byte> zeros(64 * 1024, std::byte{0});
    std::uint64_t left = (blocks + 7) / 8;
    std::uint64_t at = fs.bitmap_off_;
    while (left > 0) {
      const std::uint64_t n = std::min<std::uint64_t>(left, zeros.size());
      dev.write(at, zeros.data(), n);
      at += n;
      left -= n;
    }
    Inode empty{};
    for (std::uint64_t i = 0; i < inode_count; ++i) {
      dev.write(fs.itable_off_ + i * kInodeSize, &empty, sizeof(empty));
    }
    // End the persist at the last written inode byte, not the slot-padding
    // tail: the final slot's padding can own a whole untouched cacheline.
    const std::uint64_t written_itable =
        (inode_count - 1) * kInodeSize + sizeof(Inode);
    dev.persist(fs.bitmap_off_, (blocks + 7) / 8 + written_itable);
  }

  fs.bitmap_cache_.assign(blocks, false);
  fs.free_blocks_cache_ = blocks;

  // Root directory: inode 1.
  Inode root{};
  root.type = kTypeDir;
  fs.write_inode(1, root);

  Superblock sb{};
  sb.magic = kFsMagic;
  sb.version = kFsVersion;
  sb.total_blocks = blocks;
  sb.inode_count = inode_count;
  sb.bitmap_rel = fs.bitmap_off_ - base;
  sb.itable_rel = fs.itable_off_ - base;
  sb.data_rel = fs.data_off_ - base;
  dev.write(base, &sb, sizeof(sb));
  dev.persist(base, sizeof(sb));
  return fs;
}

FileSystem FileSystem::mount(pmem::Device& dev, std::size_t base) {
  Superblock sb{};
  dev.read(base, &sb, sizeof(sb));
  if (sb.magic != kFsMagic || sb.version != kFsVersion) {
    throw FsError("fs::mount: not a filesystem image");
  }
  FileSystem fs(dev, base);
  fs.total_blocks_ = sb.total_blocks;
  fs.inode_count_ = sb.inode_count;
  fs.bitmap_off_ = base + sb.bitmap_rel;
  fs.itable_off_ = base + sb.itable_rel;
  fs.data_off_ = base + sb.data_rel;
  // Rebuild the DRAM bitmap cache.
  fs.bitmap_cache_.assign(sb.total_blocks, false);
  fs.free_blocks_cache_ = 0;
  std::vector<std::uint8_t> raw((sb.total_blocks + 7) / 8);
  dev.read(fs.bitmap_off_, raw.data(), raw.size());
  for (std::uint64_t b = 0; b < sb.total_blocks; ++b) {
    const bool used = (raw[b / 8] >> (b % 8)) & 1;
    fs.bitmap_cache_[b] = used;
    if (!used) ++fs.free_blocks_cache_;
  }
  return fs;
}

// ---------------------------------------------------------------------------
// Inodes and blocks
// ---------------------------------------------------------------------------

FileSystem::Inode FileSystem::read_inode(Ino ino) const {
  if (ino == 0 || ino > inode_count_) throw FsError("fs: bad inode");
  Inode inode{};
  dev_->read(itable_off_ + (ino - 1) * kInodeSize, &inode, sizeof(inode));
  return inode;
}

void FileSystem::write_inode(Ino ino, const Inode& inode) {
  if (ino == 0 || ino > inode_count_) throw FsError("fs: bad inode");
  const std::uint64_t off = itable_off_ + (ino - 1) * kInodeSize;
  // The head line (type, nextents, size, first three extents) is the commit
  // record for the rest of the inode: when the tail (later extents, the
  // indirect pointer) changed, it must be durable BEFORE the head publishes
  // a count that references it, or a torn crash can commit a head whose
  // extra extents revert to garbage.  The head itself is one cacheline
  // (itable_off_ is line-aligned), so its persist is atomic under the crash
  // model.  Skipping an unchanged tail keeps the common single-line inode
  // update at one flush + one fence.
  constexpr std::size_t kHead = pmem::kCacheLine;
  static_assert(sizeof(Inode) > kHead);
  Inode cur{};
  dev_->read(off, &cur, sizeof(cur));
  if (std::memcmp(reinterpret_cast<const std::byte*>(&cur) + kHead,
                  reinterpret_cast<const std::byte*>(&inode) + kHead,
                  sizeof(Inode) - kHead) != 0) {
    dev_->write(off + kHead,
                reinterpret_cast<const std::byte*>(&inode) + kHead,
                sizeof(Inode) - kHead);
    dev_->persist(off + kHead, sizeof(Inode) - kHead);
  }
  dev_->write(off, &inode, kHead);
  dev_->persist(off, kHead);
}

Ino FileSystem::alloc_inode(std::uint32_t type) {
  for (Ino i = 1; i <= inode_count_; ++i) {
    Inode inode = read_inode(i);
    if (inode.type == kTypeFree) {
      inode = Inode{};
      inode.type = type;
      write_inode(i, inode);
      return i;
    }
  }
  throw FsError("fs: out of inodes");
}

void FileSystem::free_inode(Ino ino) {
  Inode inode{};
  write_inode(ino, inode);
  dirty_.erase(ino);  // a reused inode must not inherit stale dirty spans
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> FileSystem::alloc_blocks(
    std::uint64_t nblocks) {
  if (nblocks > free_blocks_cache_) throw FsError("fs: out of space");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  std::uint64_t need = nblocks;
  std::uint64_t b = 0;
  while (need > 0 && b < total_blocks_) {
    while (b < total_blocks_ && bitmap_cache_[b]) ++b;
    if (b >= total_blocks_) break;
    std::uint64_t e = b;
    while (e < total_blocks_ && !bitmap_cache_[e] && (e - b) < need) ++e;
    runs.emplace_back(b, e - b);
    need -= e - b;
    b = e;
  }
  if (need > 0) throw FsError("fs: out of space (fragmented)");
  // Mark used: update cache + write-through the touched bitmap bytes.
  for (const auto& [start, n] : runs) {
    for (std::uint64_t i = start; i < start + n; ++i) bitmap_cache_[i] = true;
    const std::uint64_t first_byte = start / 8;
    const std::uint64_t last_byte = (start + n - 1) / 8;
    std::vector<std::uint8_t> bytes(last_byte - first_byte + 1, 0);
    for (std::uint64_t by = first_byte; by <= last_byte; ++by) {
      std::uint8_t v = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const std::uint64_t blk = by * 8 + static_cast<std::uint64_t>(bit);
        if (blk < total_blocks_ && bitmap_cache_[blk]) {
          v |= static_cast<std::uint8_t>(1u << bit);
        }
      }
      bytes[by - first_byte] = v;
    }
    dev_->write(bitmap_off_ + first_byte, bytes.data(), bytes.size());
    dev_->persist(bitmap_off_ + first_byte, bytes.size());
    free_blocks_cache_ -= n;
  }
  return runs;
}

void FileSystem::free_blocks_range(std::uint64_t start, std::uint64_t n) {
  for (std::uint64_t i = start; i < start + n; ++i) bitmap_cache_[i] = false;
  const std::uint64_t first_byte = start / 8;
  const std::uint64_t last_byte = (start + n - 1) / 8;
  std::vector<std::uint8_t> bytes(last_byte - first_byte + 1, 0);
  for (std::uint64_t by = first_byte; by <= last_byte; ++by) {
    std::uint8_t v = 0;
    for (int bit = 0; bit < 8; ++bit) {
      const std::uint64_t blk = by * 8 + static_cast<std::uint64_t>(bit);
      if (blk < total_blocks_ && bitmap_cache_[blk]) {
        v |= static_cast<std::uint8_t>(1u << bit);
      }
    }
    bytes[by - first_byte] = v;
  }
  dev_->write(bitmap_off_ + first_byte, bytes.data(), bytes.size());
  dev_->persist(bitmap_off_ + first_byte, bytes.size());
  free_blocks_cache_ += n;
}

void FileSystem::append_extent(Inode& inode, Ino /*ino*/, std::uint64_t start,
                               std::uint64_t n) {
  if (inode.nextents < kInlineExtents) {
    // Merge with the previous inline extent when adjacent.
    if (inode.nextents > 0) {
      auto& last = inode.ext[inode.nextents - 1];
      if (last.start + last.len == start) {
        last.len += n;
        return;
      }
    }
    inode.ext[inode.nextents++] = Extent{start, n};
    return;
  }
  // Walk (or grow) the indirect chain.
  std::uint64_t blk = inode.indirect;
  if (blk == 0) {
    const auto runs = alloc_blocks(1);
    blk = runs[0].first;
    inode.indirect = blk;
    IndirectBlock ib{};
    dev_->write(data_off_ + blk * kBlockSize, &ib, sizeof(ib));
    dev_->persist(data_off_ + blk * kBlockSize, sizeof(ib));
  }
  for (;;) {
    IndirectBlock ib{};
    const std::uint64_t at = data_off_ + blk * kBlockSize;
    dev_->read(at, &ib, sizeof(ib));
    if (ib.count > 0 && ib.next == 0) {
      auto& last = ib.ext[ib.count - 1];
      if (last.start + last.len == start) {
        last.len += n;
        dev_->write(at, &ib, sizeof(ib));
        dev_->persist(at, sizeof(ib));
        return;
      }
    }
    if (ib.count < kIndirectExtents) {
      ib.ext[ib.count++] = Extent{start, n};
      dev_->write(at, &ib, sizeof(ib));
      dev_->persist(at, sizeof(ib));
      return;
    }
    if (ib.next == 0) {
      const auto runs = alloc_blocks(1);
      ib.next = runs[0].first;
      dev_->write(at, &ib, sizeof(ib));
      dev_->persist(at, sizeof(ib));
      IndirectBlock fresh{};
      dev_->write(data_off_ + ib.next * kBlockSize, &fresh, sizeof(fresh));
      dev_->persist(data_off_ + ib.next * kBlockSize, sizeof(fresh));
    }
    blk = ib.next;
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
FileSystem::detach_extents(Inode& inode) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  for (std::uint32_t i = 0; i < inode.nextents; ++i) {
    runs.emplace_back(inode.ext[i].start, inode.ext[i].len);
  }
  inode.nextents = 0;
  std::uint64_t blk = inode.indirect;
  while (blk != 0) {
    IndirectBlock ib{};
    dev_->read(data_off_ + blk * kBlockSize, &ib, sizeof(ib));
    for (std::uint64_t i = 0; i < ib.count; ++i) {
      runs.emplace_back(ib.ext[i].start, ib.ext[i].len);
    }
    runs.emplace_back(blk, 1);
    blk = ib.next;
  }
  inode.indirect = 0;
  inode.size = 0;
  return runs;
}

void FileSystem::free_runs(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& runs) {
  for (const auto& [start, n] : runs) free_blocks_range(start, n);
}

void FileSystem::drop_extents(Inode& inode, Ino ino) {
  // Crash-ordering: the detached inode must be durable BEFORE its old
  // blocks return to the allocator.  Freeing first leaves a window where a
  // crash preserves a live inode whose extents another file can re-allocate
  // (cross-linking); this order can only leak blocks.
  const auto runs = detach_extents(inode);
  write_inode(ino, inode);
  free_runs(runs);
}

void FileSystem::ensure_capacity(Ino ino, std::uint64_t size) {
  Inode inode = read_inode(ino);
  std::uint64_t have = 0;
  for (std::uint32_t i = 0; i < inode.nextents; ++i) have += inode.ext[i].len;
  std::uint64_t blk = inode.indirect;
  while (blk != 0) {
    IndirectBlock ib{};
    dev_->read(data_off_ + blk * kBlockSize, &ib, sizeof(ib));
    for (std::uint64_t i = 0; i < ib.count; ++i) have += ib.ext[i].len;
    blk = ib.next;
  }
  const std::uint64_t need = (size + kBlockSize - 1) / kBlockSize;
  if (need > have) {
    for (const auto& [start, n] : alloc_blocks(need - have)) {
      append_extent(inode, ino, start, n);
    }
  }
  if (size > inode.size) inode.size = size;
  write_inode(ino, inode);
}

std::vector<Mapping::Run> FileSystem::gather_runs(Ino ino,
                                                  std::uint64_t size) const {
  std::vector<Mapping::Run> runs;
  const Inode inode = read_inode(ino);
  std::uint64_t file_off = 0;
  auto add = [&](const Extent& e) {
    if (file_off >= size) return;
    const std::uint64_t len = std::min(e.len * kBlockSize, size - file_off);
    runs.push_back(
        Mapping::Run{file_off, data_off_ + e.start * kBlockSize, len});
    file_off += e.len * kBlockSize;
  };
  for (std::uint32_t i = 0; i < inode.nextents; ++i) add(inode.ext[i]);
  std::uint64_t blk = inode.indirect;
  while (blk != 0 && file_off < size) {
    IndirectBlock ib{};
    dev_->read(data_off_ + blk * kBlockSize, &ib, sizeof(ib));
    for (std::uint64_t i = 0; i < ib.count; ++i) add(ib.ext[i]);
    blk = ib.next;
  }
  return runs;
}

// ---------------------------------------------------------------------------
// Raw data IO (device charges only; callers add syscall/copy charges)
// ---------------------------------------------------------------------------

void FileSystem::data_write(Ino ino, const void* buf, std::size_t len,
                            std::uint64_t off) {
  const auto runs = gather_runs(ino, off + len);
  const auto* src = static_cast<const std::byte*>(buf);
  for (const auto& r : runs) {
    const std::uint64_t lo = std::max(r.file_off, off);
    const std::uint64_t hi = std::min(r.file_off + r.len, off + len);
    if (lo >= hi) continue;
    dev_->write(r.dev_off + (lo - r.file_off), src + (lo - off), hi - lo);
  }
  if (len == 0) return;
  // Remember the dirty span so fsync() can flush exactly what changed.
  // data_write itself runs unlocked (pwrite parallelizes the data copy), so
  // the bookkeeping takes the fs lock (recursive: callers may hold it).
  std::lock_guard lk(*mu_);
  auto& d = dirty_[ino];
  if (!d.empty() && off <= d.back().first + d.back().second &&
      off + len >= d.back().first) {
    // Coalesce with the previous span (sequential writes are the norm).
    const std::uint64_t lo = std::min(d.back().first, off);
    const std::uint64_t hi =
        std::max(d.back().first + d.back().second, off + len);
    d.back() = {lo, hi - lo};
  } else {
    d.emplace_back(off, len);
  }
}

void FileSystem::data_read(Ino ino, void* buf, std::size_t len,
                           std::uint64_t off) const {
  const auto runs = gather_runs(ino, off + len);
  auto* dst = static_cast<std::byte*>(buf);
  for (const auto& r : runs) {
    const std::uint64_t lo = std::max(r.file_off, off);
    const std::uint64_t hi = std::min(r.file_off + r.len, off + len);
    if (lo >= hi) continue;
    dev_->read(r.dev_off + (lo - r.file_off), dst + (lo - off), hi - lo);
  }
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, Ino>> FileSystem::dir_entries(
    Ino dir) const {
  const Inode inode = read_inode(dir);
  if (inode.type != kTypeDir) throw FsError("fs: not a directory");
  if (inode.size == 0) return {};  // never written: empty
  DirHeader dh{};
  data_read(dir, &dh, sizeof(dh), 0);
  std::vector<std::byte> raw(dh.content_len);
  if (!raw.empty()) data_read(dir, raw.data(), raw.size(), dh.content_off);
  std::vector<std::pair<std::string, Ino>> out;
  std::size_t pos = 0;
  while (pos + sizeof(DirEntryHeader) <= raw.size()) {
    DirEntryHeader h{};
    std::memcpy(&h, raw.data() + pos, sizeof(h));
    pos += sizeof(h);
    out.emplace_back(
        std::string(reinterpret_cast<const char*>(raw.data() + pos),
                    h.name_len),
        h.ino);
    pos += h.name_len;
  }
  return out;
}

/// Flush the device lines backing file range [off, off+len) and fence.
void FileSystem::persist_file_range(Ino ino, std::uint64_t off,
                                    std::uint64_t len) {
  bool flushed = false;
  for (const auto& r : gather_runs(ino, off + len)) {
    const std::uint64_t lo = std::max(r.file_off, off);
    const std::uint64_t hi = std::min(r.file_off + r.len, off + len);
    if (lo >= hi) continue;
    dev_->flush(r.dev_off + (lo - r.file_off), hi - lo);
    flushed = true;
  }
  if (flushed) dev_->drain();
}

void FileSystem::dir_write_entries(
    Ino dir, const std::vector<std::pair<std::string, Ino>>& entries) {
  std::vector<std::byte> raw;
  for (const auto& [name, ino] : entries) {
    DirEntryHeader h{ino, static_cast<std::uint16_t>(name.size())};
    const std::size_t pos = raw.size();
    raw.resize(pos + sizeof(h) + name.size());
    std::memcpy(raw.data() + pos, &h, sizeof(h));
    std::memcpy(raw.data() + pos + sizeof(h), name.data(), name.size());
  }
  // Namespace ops are durable at syscall return AND crash-atomic
  // (metadata-journaling semantics).  An in-place rewrite can never be both:
  // a crash mid-flush tears the entry bytes into a parse-corrupting mix of
  // the old and new lists (the property fuzzer found exactly that — a
  // half-stitched name swallowing its neighbour's record).  So directories
  // are shadow-committed: write the new list into the slot the live header
  // does NOT point at, fence it, then flip the single-line header.  Every
  // crash point parses either the whole old list or the whole new one.
  Inode inode = read_inode(dir);
  DirHeader dh{};
  if (inode.size != 0) data_read(dir, &dh, sizeof(dh), 0);
  std::uint64_t new_cap = dh.cap;
  std::uint64_t new_off;
  if (raw.size() > dh.cap) {
    // Grow: place the new slot beyond every byte the old header can reach
    // ([kDirHeaderSize, kDirHeaderSize + 2*cap)), so the live list is never
    // overwritten before the flip.
    new_cap = std::max<std::uint64_t>(
        {2 * dh.cap, (raw.size() + pmem::kCacheLine - 1) / pmem::kCacheLine *
                         pmem::kCacheLine,
         kDirHeaderSize});
    new_off = kDirHeaderSize + new_cap;
  } else {
    new_off = dh.content_off == kDirHeaderSize ? kDirHeaderSize + new_cap
                                               : kDirHeaderSize;
  }
  ensure_capacity(dir, kDirHeaderSize + 2 * new_cap);
  if (!raw.empty()) {
    data_write(dir, raw.data(), raw.size(), new_off);
    persist_file_range(dir, new_off, raw.size());
  }
  const DirHeader next{dh.seq + 1, new_off, raw.size(), new_cap};
  data_write(dir, &next, sizeof(next), 0);
  persist_file_range(dir, 0, kDirHeaderSize);  // single-line commit
  dirty_.erase(dir);
}

Ino FileSystem::dir_lookup(Ino dir, std::string_view name) const {
  for (const auto& [n, ino] : dir_entries(dir)) {
    if (n == name) return ino;
  }
  return 0;
}

void FileSystem::dir_add(Ino dir, std::string_view name, Ino child) {
  if (name.empty() || name.size() > 255) throw FsError("fs: bad name");
  auto entries = dir_entries(dir);
  for (const auto& [n, ino] : entries) {
    if (n == name) throw FsError("fs: name exists: " + std::string(name));
  }
  entries.emplace_back(std::string(name), child);
  dir_write_entries(dir, entries);
}

void FileSystem::dir_remove(Ino dir, std::string_view name) {
  auto entries = dir_entries(dir);
  const auto it =
      std::find_if(entries.begin(), entries.end(),
                   [&](const auto& e) { return e.first == name; });
  if (it == entries.end()) throw FsError("fs: no such entry");
  entries.erase(it);
  dir_write_entries(dir, entries);
}

Ino FileSystem::resolve(const std::string& path, bool want_parent,
                        std::string* leaf) const {
  const auto parts = split_path(path);
  if (want_parent) {
    if (parts.empty()) throw FsError("fs: no parent of /");
    if (leaf != nullptr) *leaf = parts.back();
  }
  Ino cur = 1;
  const std::size_t stop = want_parent ? parts.size() - 1 : parts.size();
  for (std::size_t i = 0; i < stop; ++i) {
    const Ino next = dir_lookup(cur, parts[i]);
    if (next == 0) return 0;
    cur = next;
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Public namespace ops
// ---------------------------------------------------------------------------

void FileSystem::mkdir(const std::string& path) {
  std::lock_guard lk(*mu_);
  std::string leaf;
  const Ino parent = resolve(path, /*want_parent=*/true, &leaf);
  if (parent == 0) throw FsError("fs: no such directory: " + path);
  const Ino ino = alloc_inode(kTypeDir);
  dir_add(parent, leaf, ino);
}

void FileSystem::mkdirs(const std::string& path) {
  std::lock_guard lk(*mu_);
  const auto parts = split_path(path);
  Ino cur = 1;
  for (const auto& p : parts) {
    Ino next = dir_lookup(cur, p);
    if (next == 0) {
      next = alloc_inode(kTypeDir);
      dir_add(cur, p, next);
    }
    cur = next;
  }
}

bool FileSystem::exists(const std::string& path) {
  std::lock_guard lk(*mu_);
  return resolve(path, false, nullptr) != 0;
}

bool FileSystem::is_dir(const std::string& path) {
  std::lock_guard lk(*mu_);
  const Ino ino = resolve(path, false, nullptr);
  return ino != 0 && read_inode(ino).type == kTypeDir;
}

void FileSystem::remove(const std::string& path) {
  std::lock_guard lk(*mu_);
  std::string leaf;
  const Ino parent = resolve(path, true, &leaf);
  if (parent == 0) throw FsError("fs: no such path: " + path);
  const Ino ino = dir_lookup(parent, leaf);
  if (ino == 0) throw FsError("fs: no such path: " + path);
  Inode inode = read_inode(ino);
  if (inode.type == kTypeDir && inode.size != 0 &&
      !dir_entries(ino).empty()) {
    throw FsError("fs: directory not empty: " + path);
  }
  // Soft-updates ordering: the name removal must be durable BEFORE the inode
  // or its blocks are freed.  The reverse order has a crash window where the
  // directory still names a zeroed inode — a dangling entry that reads as a
  // zero-length file after remount.  This order can at worst leak an unnamed
  // inode and its blocks (a space leak, never corruption).
  dir_remove(parent, leaf);
  drop_extents(inode, ino);
  free_inode(ino);
}

bool FileSystem::rename(const std::string& from, const std::string& to,
                        bool replace) {
  std::lock_guard lk(*mu_);
  sim::ctx().charge_syscall();
  std::string from_leaf, to_leaf;
  const Ino from_parent = resolve(from, true, &from_leaf);
  const Ino to_parent = resolve(to, true, &to_leaf);
  if (from_parent == 0 || to_parent == 0) {
    throw FsError("fs: rename: no such directory");
  }
  const Ino ino = dir_lookup(from_parent, from_leaf);
  if (ino == 0) throw FsError("fs: rename: no such file: " + from);
  if (from_parent == to_parent && from_leaf == to_leaf) return true;
  const Ino victim = dir_lookup(to_parent, to_leaf);
  if (victim != 0) {
    Inode vi = read_inode(victim);
    if (vi.type != kTypeFile) throw FsError("fs: rename over a directory");
    if (!replace) {
      // Target wins: discard the source instead.  Name removal first — the
      // same soft-updates rule as remove(): freeing the source inode while
      // the directory still names it would leave a dangling entry behind a
      // crash.
      dir_remove(from_parent, from_leaf);
      Inode si = read_inode(ino);
      drop_extents(si, ino);
      free_inode(ino);
      return false;
    }
  }
  // Namespace update before any resource free, and — for the same-directory
  // case (the tree engine's publish rename) — as ONE entry-list rewrite:
  // dropping the source name and repointing the target name in separate
  // directory updates would open a crash window where the target is missing
  // entirely (neither the old nor the new value survives) or still names the
  // about-to-be-freed victim inode.
  if (from_parent == to_parent) {
    auto entries = dir_entries(from_parent);
    std::vector<std::pair<std::string, Ino>> next;
    bool have_to = false;
    for (auto& e : entries) {
      if (e.first == from_leaf) continue;  // old name dropped
      if (e.first == to_leaf) {
        e.second = ino;
        have_to = true;
      }
      next.push_back(std::move(e));
    }
    if (!have_to) next.emplace_back(to_leaf, ino);
    dir_write_entries(from_parent, next);
  } else {
    // Cross-directory: publish the new name first (at worst both names are
    // alive across a crash), then retire the old one.
    auto tentries = dir_entries(to_parent);
    bool have_to = false;
    for (auto& e : tentries) {
      if (e.first == to_leaf) {
        e.second = ino;
        have_to = true;
      }
    }
    if (!have_to) tentries.emplace_back(to_leaf, ino);
    dir_write_entries(to_parent, tentries);
    dir_remove(from_parent, from_leaf);
  }
  // Only now, with no name pointing at it, free the replaced inode.  A crash
  // here leaks it — the benign failure mode.
  if (victim != 0) {
    Inode vi = read_inode(victim);
    drop_extents(vi, victim);
    free_inode(victim);
  }
  return true;
}

std::vector<std::string> FileSystem::list(const std::string& path) {
  std::lock_guard lk(*mu_);
  const Ino ino = resolve(path, false, nullptr);
  if (ino == 0) throw FsError("fs: no such directory: " + path);
  std::vector<std::string> names;
  for (const auto& [n, i] : dir_entries(ino)) names.push_back(n);
  return names;
}

// ---------------------------------------------------------------------------
// POSIX-style file IO
// ---------------------------------------------------------------------------

File FileSystem::open(const std::string& path, OpenMode mode) {
  std::lock_guard lk(*mu_);
  sim::ctx().charge_syscall();
  std::string leaf;
  const Ino parent = resolve(path, true, &leaf);
  if (parent == 0) throw FsError("fs: no such directory for: " + path);
  Ino ino = dir_lookup(parent, leaf);
  if (ino == 0) {
    if (mode == OpenMode::kRead) throw FsError("fs: no such file: " + path);
    ino = alloc_inode(kTypeFile);
    dir_add(parent, leaf, ino);
  } else if (mode == OpenMode::kTruncate) {
    Inode inode = read_inode(ino);
    if (inode.type != kTypeFile) throw FsError("fs: not a file: " + path);
    drop_extents(inode, ino);
    write_inode(ino, inode);
  }
  return File(this, ino);
}

std::size_t FileSystem::pwrite(File f, const void* buf, std::size_t len,
                               std::uint64_t off) {
  if (!f.valid()) throw FsError("fs: invalid file");
  auto& c = sim::ctx();
  c.charge_syscall();
  c.charge_cpu_copy(len);  // user->kernel buffer copy
  {
    std::lock_guard lk(*mu_);
    const Inode inode = read_inode(f.ino_);
    if (off + len > inode.size) ensure_capacity(f.ino_, off + len);
  }
  data_write(f.ino_, buf, len, off);
  return len;
}

std::size_t FileSystem::pread(File f, void* buf, std::size_t len,
                              std::uint64_t off) {
  if (!f.valid()) throw FsError("fs: invalid file");
  auto& c = sim::ctx();
  c.charge_syscall();
  std::uint64_t sz;
  {
    std::lock_guard lk(*mu_);
    sz = read_inode(f.ino_).size;
  }
  if (off >= sz) return 0;
  len = std::min<std::uint64_t>(len, sz - off);
  c.charge_cpu_copy(len);  // kernel->user buffer copy
  data_read(f.ino_, buf, len, off);
  return len;
}

void FileSystem::truncate(File f, std::uint64_t size) {
  if (!f.valid()) throw FsError("fs: invalid file");
  std::lock_guard lk(*mu_);
  sim::ctx().charge_syscall();
  Inode inode = read_inode(f.ino_);
  if (size > inode.size) {
    ensure_capacity(f.ino_, size);
  }
  inode = read_inode(f.ino_);
  inode.size = size;
  write_inode(f.ino_, inode);
}

void FileSystem::fsync(File f) {
  if (!f.valid()) throw FsError("fs: invalid file");
  trace::Span span("fs.fsync");
  std::lock_guard lk(*mu_);
  sim::ctx().charge_syscall();
  // Flush the ranges dirtied through the POSIX path since the last fsync,
  // then pay one fence.  (fsync used to issue a bare fence: with nothing
  // flushed it persisted nothing — the checker's empty-fence lint.)
  const auto it = dirty_.find(f.ino_);
  if (it == dirty_.end() || it->second.empty()) return;
  auto ranges = std::move(it->second);
  dirty_.erase(it);
  std::sort(ranges.begin(), ranges.end());
  // Merge at cacheline granularity so no line is flushed twice per fence
  // (extents are block-aligned, so file and device offsets agree mod 64).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& [roff, rlen] : ranges) {
    const std::uint64_t off = roff / pmem::kCacheLine * pmem::kCacheLine;
    const std::uint64_t end = (roff + rlen + pmem::kCacheLine - 1) /
                              pmem::kCacheLine * pmem::kCacheLine;
    if (!merged.empty() && off <= merged.back().first + merged.back().second) {
      const std::uint64_t hi =
          std::max(merged.back().first + merged.back().second, end);
      merged.back().second = hi - merged.back().first;
    } else {
      merged.emplace_back(off, end - off);
    }
  }
  const std::uint64_t fsize = read_inode(f.ino_).size;
  const auto runs = gather_runs(f.ino_, fsize);
  bool flushed = false;
  for (const auto& [doff, dlen] : merged) {
    const std::uint64_t end = std::min<std::uint64_t>(doff + dlen, fsize);
    for (const auto& r : runs) {
      const std::uint64_t lo = std::max(r.file_off, doff);
      const std::uint64_t hi = std::min(r.file_off + r.len, end);
      if (lo >= hi) continue;
      dev_->flush(r.dev_off + (lo - r.file_off), hi - lo);
      flushed = true;
    }
  }
  if (flushed) dev_->drain();
}

std::uint64_t FileSystem::size(File f) {
  std::lock_guard lk(*mu_);
  return read_inode(f.ino_).size;
}

std::uint64_t FileSystem::size(const std::string& path) {
  std::lock_guard lk(*mu_);
  const Ino ino = resolve(path, false, nullptr);
  if (ino == 0) throw FsError("fs: no such path: " + path);
  return read_inode(ino).size;
}

std::uint64_t FileSystem::free_blocks() const {
  std::lock_guard lk(*mu_);
  return free_blocks_cache_;
}

std::uint64_t FileSystem::total_blocks() const { return total_blocks_; }

// ---------------------------------------------------------------------------
// DAX mappings
// ---------------------------------------------------------------------------

Mapping FileSystem::map(File f, bool map_sync) {
  if (!f.valid()) throw FsError("fs: invalid file");
  std::lock_guard lk(*mu_);
  sim::ctx().charge_syscall();  // the mmap() call itself
  Mapping m;
  m.fs_ = this;
  m.size_ = read_inode(f.ino_).size;
  m.map_sync_ = map_sync;
  m.runs_ = gather_runs(f.ino_, m.size_);
  return m;
}

Mapping FileSystem::create_mapped(const std::string& path, std::uint64_t sz,
                                  bool map_sync) {
  File f = open(path, OpenMode::kTruncate);
  truncate(f, sz);
  return map(f, map_sync);
}

template <typename Fn>
void Mapping::for_runs(std::uint64_t off, std::size_t len, Fn&& fn) const {
  if (off + len > size_) throw FsError("fs: mapping access out of range");
  for (const auto& r : runs_) {
    const std::uint64_t lo = std::max(r.file_off, off);
    const std::uint64_t hi = std::min(r.file_off + r.len, off + len);
    if (lo >= hi) continue;
    fn(r.dev_off + (lo - r.file_off), lo - off, hi - lo);
  }
}

void Mapping::store(std::uint64_t off, const void* src, std::size_t len) {
  auto* dev = fs_->dev_;
  for_runs(off, len, [&](std::uint64_t dev_off, std::uint64_t src_off,
                         std::uint64_t n) {
    dev->note_write(dev_off, n);
    std::memcpy(dev->raw(dev_off),
                static_cast<const std::byte*>(src) + src_off, n);
    dev->charge_dax_write(dev_off, n, map_sync_);
  });
}

void Mapping::load(std::uint64_t off, void* dst, std::size_t len) const {
  auto* dev = fs_->dev_;
  for_runs(off, len, [&](std::uint64_t dev_off, std::uint64_t dst_off,
                         std::uint64_t n) {
    std::memcpy(static_cast<std::byte*>(dst) + dst_off, dev->raw(dev_off), n);
    dev->charge_dax_read(n, map_sync_);
  });
}

void Mapping::persist(std::uint64_t off, std::size_t len) {
  // One CLWB pass over every run, one fence — a multi-extent file used to
  // pay a full flush+fence per run.
  auto* dev = fs_->dev_;
  bool flushed = false;
  for_runs(off, len, [&](std::uint64_t dev_off, std::uint64_t, std::uint64_t n) {
    dev->flush(dev_off, n);
    flushed = true;
  });
  if (flushed) dev->drain();
}

void Mapping::check_publish(std::uint64_t off, std::size_t len) {
  auto* dev = fs_->dev_;
  for_runs(off, len, [&](std::uint64_t dev_off, std::uint64_t, std::uint64_t n) {
    dev->check_publish(dev_off, n);
  });
}

void Mapping::charge_load(std::size_t bytes) const {
  fs_->dev_->charge_dax_read(bytes, map_sync_);
}

std::span<std::byte> Mapping::span(std::uint64_t off, std::size_t len) {
  for (const auto& r : runs_) {
    if (off >= r.file_off && off + len <= r.file_off + r.len) {
      return {fs_->dev_->raw(r.dev_off + (off - r.file_off)), len};
    }
  }
  throw FsError("fs: range not physically contiguous");
}

std::span<std::byte> Mapping::direct_write_span(std::uint64_t off,
                                                std::size_t len) {
  if (off + len > size_) throw FsError("fs: mapping access out of range");
  auto* dev = fs_->dev_;
  if (dev->frozen()) {
    // Powered off: hand out scratch DRAM so the caller's stores vanish,
    // exactly like stores through a dead DIMM mapping (and exactly like
    // Pool::direct_write_span).
    thread_local std::vector<std::byte> scratch;
    scratch.assign(len, std::byte{});
    return {scratch.data(), len};
  }
  for (const auto& r : runs_) {
    if (off >= r.file_off && off + len <= r.file_off + r.len) {
      const std::uint64_t dev_off = r.dev_off + (off - r.file_off);
      dev->note_write(dev_off, len);
      dev->charge_dax_write(dev_off, len, map_sync_);
      return {dev->raw(dev_off), len};
    }
  }
  throw FsError("fs: range not physically contiguous");
}

std::span<const std::byte> Mapping::direct_read_span(std::uint64_t off,
                                                     std::size_t len) const {
  if (off + len > size_) throw FsError("fs: mapping access out of range");
  auto* dev = fs_->dev_;
  for (const auto& r : runs_) {
    if (off >= r.file_off && off + len <= r.file_off + r.len) {
      const std::uint64_t dev_off = r.dev_off + (off - r.file_off);
      dev->check_media(dev_off, len);
      return {dev->raw(dev_off), len};
    }
  }
  throw FsError("fs: range not physically contiguous");
}

}  // namespace pmemcpy::fs
