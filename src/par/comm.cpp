#include <pmemcpy/par/comm.hpp>

#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

namespace pmemcpy::par {

namespace detail {

/// Thrown into ranks blocked on a collective when a peer rank failed.
struct Aborted : std::runtime_error {
  Aborted() : std::runtime_error("par: peer rank aborted") {}
};

struct Message {
  std::vector<std::byte> data;
  double sender_time = 0.0;
};

struct State {
  explicit State(int n)
      : nranks(n),
        pub_ptr(static_cast<std::size_t>(n)),
        pub_len(static_cast<std::size_t>(n)),
        pub_counts(static_cast<std::size_t>(n)),
        pub_displs(static_cast<std::size_t>(n)) {}

  int nranks;

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  double max_pending = 0.0;
  double current_max = 0.0;
  bool aborted = false;

  // Publication slots for the publish/consume/release collective pattern.
  std::vector<const void*> pub_ptr;
  std::vector<std::size_t> pub_len;
  std::vector<const std::size_t*> pub_counts;
  std::vector<const std::size_t*> pub_displs;

  // Point-to-point queues keyed by (src, dst, tag).
  std::map<std::tuple<int, int, int>, std::deque<Message>> queues;
  std::condition_variable p2p_cv;

  // Child states created by split(), keyed by (sequence, color); kept
  // alive for the lifetime of the parent.
  std::map<std::pair<std::uint64_t, int>, std::unique_ptr<State>> children;

  State* child_for(std::uint64_t seq, int color, int group_size) {
    std::lock_guard lk(mu);
    auto& slot = children[{seq, color}];
    if (!slot) slot = std::make_unique<State>(group_size);
    return slot.get();
  }

  void abort_all() {
    std::lock_guard lk(mu);
    aborted = true;
    cv.notify_all();
    p2p_cv.notify_all();
  }
};

namespace {

double barrier_cost(const sim::Context& c) {
  const int n = c.nranks();
  const double depth = n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 0.0;
  return depth * c.model().net.latency;
}

/// Stream @p bytes through the shared-memory transport.
void charge_net(sim::Context& c, std::size_t bytes, std::size_t messages = 1) {
  const auto& net = c.model().net;
  c.advance(static_cast<double>(messages) * net.latency +
                static_cast<double>(bytes) /
                    c.shared_bw(net.stream_bw, net.total_bw),
            sim::Charge::kNetwork);
}

/// Reusable barrier; synchronises clocks to max(entry) + tree latency.
void barrier_sync(State& st) {
  auto& c = sim::ctx();
  std::unique_lock lk(st.mu);
  if (st.aborted) throw Aborted{};
  const std::uint64_t gen = st.generation;
  st.max_pending = st.arrived == 0 ? c.now() : std::max(st.max_pending, c.now());
  if (++st.arrived == st.nranks) {
    st.arrived = 0;
    st.current_max = st.max_pending;
    ++st.generation;
    st.cv.notify_all();
  } else {
    st.cv.wait(lk, [&] { return st.generation != gen || st.aborted; });
    if (st.aborted) throw Aborted{};
  }
  const double t = st.current_max;
  lk.unlock();
  // The wait for slower ranks is time spent blocked in the transport:
  // sync_to() keeps it attributed (Charge::kNetwork) instead of silently
  // jumping the clock, so traced spans still account for every second.
  c.sync_to(t, sim::Charge::kNetwork);
  c.advance(barrier_cost(c), sim::Charge::kNetwork);
}

}  // namespace
}  // namespace detail

using detail::barrier_sync;
using detail::charge_net;

void Comm::barrier() {
  trace::Span span("par.barrier");
  barrier_sync(*state_);
}

double Comm::timed_max(const std::function<void()>& body) {
  const double t0 = sim::ctx().now();
  body();
  return allreduce_max(sim::ctx().now() - t0);
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  auto& st = *state_;
  if (rank_ == root) st.pub_ptr[static_cast<std::size_t>(root)] = data;
  barrier_sync(st);
  auto& c = sim::ctx();
  if (rank_ != root) {
    std::memcpy(data, st.pub_ptr[static_cast<std::size_t>(root)], bytes);
  }
  charge_net(c, bytes);
  barrier_sync(st);
}

void Comm::allgather(const void* send, std::size_t bytes, void* recv) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(size_), bytes);
  std::vector<std::size_t> displs(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i)
    displs[static_cast<std::size_t>(i)] = static_cast<std::size_t>(i) * bytes;
  allgatherv(send, bytes, recv, counts, displs);
}

void Comm::allgatherv(const void* send, std::size_t bytes, void* recv,
                      std::span<const std::size_t> counts,
                      std::span<const std::size_t> displs) {
  auto& st = *state_;
  const auto me = static_cast<std::size_t>(rank_);
  st.pub_ptr[me] = send;
  st.pub_len[me] = bytes;
  barrier_sync(st);
  auto& c = sim::ctx();
  std::size_t remote_bytes = 0;
  for (int i = 0; i < size_; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (st.pub_len[ui] != counts[ui]) {
      throw std::invalid_argument("allgatherv: count mismatch");
    }
    std::memcpy(static_cast<std::byte*>(recv) + displs[ui], st.pub_ptr[ui],
                counts[ui]);
    if (i != rank_) remote_bytes += counts[ui];
  }
  c.charge_cpu_copy(bytes);  // own contribution: a local copy
  charge_net(c, remote_bytes);
  barrier_sync(st);
}

void Comm::gatherv(const void* send, std::size_t bytes, void* recv,
                   std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) {
  auto& st = *state_;
  const auto me = static_cast<std::size_t>(rank_);
  st.pub_ptr[me] = send;
  st.pub_len[me] = bytes;
  barrier_sync(st);
  auto& c = sim::ctx();
  if (rank_ == root) {
    std::size_t remote_bytes = 0;
    for (int i = 0; i < size_; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (st.pub_len[ui] != counts[ui]) {
        throw std::invalid_argument("gatherv: count mismatch");
      }
      std::memcpy(static_cast<std::byte*>(recv) + displs[ui], st.pub_ptr[ui],
                  counts[ui]);
      if (i != rank_) remote_bytes += counts[ui];
    }
    c.charge_cpu_copy(bytes);
    charge_net(c, remote_bytes,
               static_cast<std::size_t>(size_ > 1 ? size_ - 1 : 1));
  } else {
    charge_net(c, bytes);  // streams its contribution toward the root
  }
  barrier_sync(st);
}

void Comm::scatterv(const void* send, std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, void* recv,
                    std::size_t bytes, int root) {
  auto& st = *state_;
  if (rank_ == root) {
    st.pub_ptr[static_cast<std::size_t>(root)] = send;
    st.pub_counts[static_cast<std::size_t>(root)] = counts.data();
    st.pub_displs[static_cast<std::size_t>(root)] = displs.data();
  }
  barrier_sync(st);
  auto& c = sim::ctx();
  const auto uroot = static_cast<std::size_t>(root);
  const auto me = static_cast<std::size_t>(rank_);
  if (st.pub_counts[uroot][me] != bytes) {
    throw std::invalid_argument("scatterv: count mismatch");
  }
  std::memcpy(recv,
              static_cast<const std::byte*>(st.pub_ptr[uroot]) +
                  st.pub_displs[uroot][me],
              bytes);
  if (rank_ == root) {
    std::size_t remote = 0;
    for (int i = 0; i < size_; ++i) {
      if (i != root) remote += st.pub_counts[uroot][static_cast<std::size_t>(i)];
    }
    c.charge_cpu_copy(bytes);
    charge_net(c, remote, static_cast<std::size_t>(size_ > 1 ? size_ - 1 : 1));
  } else {
    charge_net(c, bytes);
  }
  barrier_sync(st);
}

Comm Comm::split(int color, int key) {
  struct Triple {
    int color, key, rank;
  };
  std::vector<Triple> all(static_cast<std::size_t>(size_));
  Triple mine{color, key, rank_};
  allgather(&mine, sizeof(mine), all.data());
  const std::uint64_t seq = split_seq_++;
  if (color < 0) {
    barrier();  // match the member ranks' rendezvous
    Comm invalid(*state_, -1, 0);
    invalid.state_ = nullptr;
    return invalid;
  }
  std::vector<Triple> group;
  for (const auto& t : all) {
    if (t.color == color) group.push_back(t);
  }
  std::stable_sort(group.begin(), group.end(),
                   [](const Triple& a, const Triple& b) {
                     return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                   });
  int new_rank = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  detail::State* child =
      state_->child_for(seq, color, static_cast<int>(group.size()));
  barrier();  // everyone has resolved its child before first use
  return Comm(*child, new_rank, static_cast<int>(group.size()));
}

void Comm::alltoallv(const void* send, std::span<const std::size_t> scounts,
                     std::span<const std::size_t> sdispls, void* recv,
                     std::span<const std::size_t> rcounts,
                     std::span<const std::size_t> rdispls) {
  auto& st = *state_;
  const auto me = static_cast<std::size_t>(rank_);
  st.pub_ptr[me] = send;
  st.pub_counts[me] = scounts.data();
  st.pub_displs[me] = sdispls.data();
  barrier_sync(st);
  auto& c = sim::ctx();
  std::size_t remote_bytes = 0;
  std::size_t own_bytes = 0;
  std::size_t messages = 0;
  for (int i = 0; i < size_; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::size_t n = st.pub_counts[ui][me];
    if (n != rcounts[ui]) {
      throw std::invalid_argument("alltoallv: count mismatch");
    }
    if (n == 0) continue;
    std::memcpy(static_cast<std::byte*>(recv) + rdispls[ui],
                static_cast<const std::byte*>(st.pub_ptr[ui]) +
                    st.pub_displs[ui][me],
                n);
    if (i == rank_) {
      own_bytes += n;
    } else {
      remote_bytes += n;
      ++messages;
    }
  }
  if (own_bytes != 0) c.charge_cpu_copy(own_bytes);
  if (remote_bytes != 0 || messages != 0) {
    charge_net(c, remote_bytes, messages == 0 ? 1 : messages);
  }
  barrier_sync(st);
}

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  auto& st = *state_;
  auto& c = sim::ctx();
  charge_net(c, bytes);
  detail::Message msg;
  msg.data.resize(bytes);
  std::memcpy(msg.data.data(), data, bytes);
  msg.sender_time = c.now();
  std::lock_guard lk(st.mu);
  if (st.aborted) throw detail::Aborted{};
  st.queues[{rank_, dst, tag}].push_back(std::move(msg));
  st.p2p_cv.notify_all();
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  auto& st = *state_;
  auto& c = sim::ctx();
  detail::Message msg;
  {
    std::unique_lock lk(st.mu);
    auto key = std::make_tuple(src, rank_, tag);
    st.p2p_cv.wait(lk, [&] {
      return st.aborted ||
             (st.queues.contains(key) && !st.queues[key].empty());
    });
    if (st.aborted) throw detail::Aborted{};
    auto& q = st.queues[key];
    msg = std::move(q.front());
    q.pop_front();
  }
  if (msg.data.size() != bytes) {
    throw std::invalid_argument("recv: size mismatch");
  }
  std::memcpy(data, msg.data.data(), bytes);
  c.sync_to(msg.sender_time, sim::Charge::kNetwork);
  charge_net(c, bytes);
}

std::uint64_t Comm::exscan_sum(std::uint64_t v) {
  std::vector<std::uint64_t> all(static_cast<std::size_t>(size_));
  allgather(&v, sizeof(v), all.data());
  std::uint64_t acc = 0;
  for (int i = 0; i < rank_; ++i) acc += all[static_cast<std::size_t>(i)];
  return acc;
}

Runtime::Result Runtime::run(int nranks, const std::function<void(Comm&)>& fn,
                             const sim::CostModel& model) {
  if (nranks < 1) throw std::invalid_argument("Runtime::run: nranks < 1");
  detail::State st(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  Result result;
  result.rank_times.resize(static_cast<std::size_t>(nranks), 0.0);

  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      sim::Context c(model, nranks, r);
      sim::ScopedContext scope(c);
      Comm comm(st, r, nranks);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        st.abort_all();
      }
      result.rank_times[static_cast<std::size_t>(r)] = c.now();
    });
  }
  for (auto& t : threads) t.join();

  // Prefer a real error over the secondary Aborted unwinds it caused.
  std::exception_ptr first;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    try {
      std::rethrow_exception(e);
    } catch (const detail::Aborted&) {
    } catch (...) {
      first = e;
      break;
    }
  }
  if (first) std::rethrow_exception(first);

  for (double t : result.rank_times) result.max_time = std::max(result.max_time, t);
  return result;
}

}  // namespace pmemcpy::par
