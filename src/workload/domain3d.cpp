#include <pmemcpy/workload/domain3d.hpp>

#include <cmath>
#include <stdexcept>

namespace pmemcpy::wk {

std::array<std::size_t, 3> balanced_factors(int nranks) {
  if (nranks < 1) throw std::invalid_argument("balanced_factors: nranks < 1");
  std::array<std::size_t, 3> best = {static_cast<std::size_t>(nranks), 1, 1};
  std::size_t best_spread = best[0];
  const auto n = static_cast<std::size_t>(nranks);
  for (std::size_t px = 1; px <= n; ++px) {
    if (n % px != 0) continue;
    const std::size_t rest = n / px;
    for (std::size_t py = 1; py <= rest; ++py) {
      if (rest % py != 0) continue;
      const std::size_t pz = rest / py;
      const std::size_t mx = std::max({px, py, pz});
      const std::size_t mn = std::min({px, py, pz});
      if (mx - mn < best_spread) {
        best_spread = mx - mn;
        best = {px, py, pz};
      }
    }
  }
  // Sort descending for a deterministic orientation.
  if (best[0] < best[1]) std::swap(best[0], best[1]);
  if (best[1] < best[2]) std::swap(best[1], best[2]);
  if (best[0] < best[1]) std::swap(best[0], best[1]);
  return best;
}

Decomposition decompose(std::size_t elems_per_var, int nranks) {
  if (elems_per_var == 0) {
    throw std::invalid_argument("decompose: empty variable");
  }
  const auto grid = balanced_factors(nranks);
  const double per_rank = static_cast<double>(elems_per_var) /
                          static_cast<double>(nranks);
  // Near-cubic per-rank boxes; the last dimension absorbs rounding so the
  // realised volume stays within ~1% of the target across rank counts.
  auto side = static_cast<std::size_t>(std::llround(std::cbrt(per_rank)));
  if (side == 0) side = 1;
  auto sz = static_cast<std::size_t>(std::llround(
      per_rank / static_cast<double>(side * side)));
  if (sz == 0) sz = 1;

  Decomposition out;
  out.global = {grid[0] * side, grid[1] * side, grid[2] * sz};
  out.rank_boxes.reserve(static_cast<std::size_t>(nranks));
  for (std::size_t px = 0; px < grid[0]; ++px) {
    for (std::size_t py = 0; py < grid[1]; ++py) {
      for (std::size_t pz = 0; pz < grid[2]; ++pz) {
        out.rank_boxes.emplace_back(
            Dimensions{px * side, py * side, pz * sz},
            Dimensions{side, side, sz});
      }
    }
  }
  return out;
}

void fill_box(std::vector<double>& buf, int var, const Dimensions& global,
              const Box& box) {
  buf.resize(box.elements());
  for_each_row(global, box,
               [&](std::size_t lin, std::size_t elems, std::size_t box_off) {
                 for (std::size_t i = 0; i < elems; ++i) {
                   buf[box_off + i] = element_value(var, lin + i);
                 }
               });
}

std::size_t verify_box(const std::vector<double>& buf, int var,
                       const Dimensions& global, const Box& box) {
  if (buf.size() < box.elements()) return box.elements();
  std::size_t bad = 0;
  for_each_row(global, box,
               [&](std::size_t lin, std::size_t elems, std::size_t box_off) {
                 for (std::size_t i = 0; i < elems; ++i) {
                   if (buf[box_off + i] != element_value(var, lin + i)) ++bad;
                 }
               });
  return bad;
}

}  // namespace pmemcpy::wk
