#include <pmemcpy/obj/pool.hpp>

#include <pmemcpy/crc32c.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <array>
#include <cstring>
#include <new>
#include <unordered_set>

namespace pmemcpy::obj {

namespace {

constexpr std::uint64_t kMagic = 0x504d454d43505921ull;  // "PMEMCPY!"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kChunkAlign = 64;
constexpr std::size_t kChunkHeader = 16;
/// Minimum remainder worth splitting off a large free chunk.
constexpr std::size_t kSplitMin = 4096;

/// Chunk sizes (header + payload) served from per-class free lists.
constexpr std::array<std::size_t, 11> kClassSizes = {
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;
/// Seed of the chunk-header checksum; doubles as the old magic constant, so
/// the check word can only validate if it was produced by make_chunk().
constexpr std::uint32_t kChunkMagic = 0xA110C8EDu;

constexpr std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

struct PoolHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t pad;
  std::uint64_t size;
  std::uint64_t root;
  std::uint32_t crc;  // CRC32C over all preceding fields
  std::uint32_t pad2;
};
static_assert(sizeof(PoolHeader) == 40);
static_assert(offsetof(PoolHeader, crc) == 32);

std::uint32_t header_crc(const PoolHeader& h) {
  return crc32c(&h, offsetof(PoolHeader, crc));
}

struct AllocState {
  std::uint64_t arena_cursor;
  std::uint64_t arena_end;
  std::uint64_t bytes_in_use;
  std::uint64_t large_free_head;
  std::uint64_t free_head[kClassSizes.size()];
};

struct ChunkHeader {
  std::uint64_t payload_size;
  std::uint32_t cls;    // index into kClassSizes, or kLargeClass
  std::uint32_t check;  // CRC32C of the fields above, seeded with kChunkMagic
};
static_assert(sizeof(ChunkHeader) == kChunkHeader);

std::uint32_t chunk_check(const ChunkHeader& h) {
  return crc32c(&h, offsetof(ChunkHeader, check), kChunkMagic);
}

ChunkHeader make_chunk(std::uint64_t payload_size, std::uint32_t cls) {
  ChunkHeader h{payload_size, cls, 0};
  h.check = chunk_check(h);
  return h;
}

bool chunk_ok(const ChunkHeader& h) { return h.check == chunk_check(h); }

struct LogEntryHeader {
  std::uint64_t off;
  std::uint64_t len;
};

// Persistent quarantine table (DESIGN.md §10): a header whose count/crc pair
// fits one atomic 8-byte store, followed by (off, len) entries.  All-zero is
// the valid empty table, so a freshly formatted pool needs no extra stores.
struct QuarHeader {
  std::uint32_t count;
  std::uint32_t crc;  ///< CRC32C over the first `count` entries; 0 when empty
};
static_assert(sizeof(QuarHeader) == 8);

struct QuarEntry {
  std::uint64_t off;
  std::uint64_t len;
};
static_assert(sizeof(QuarEntry) == 16);

std::uint32_t quar_table_crc(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& q) {
  std::vector<QuarEntry> ents;
  ents.reserve(q.size());
  for (const auto& [off, len] : q) ents.push_back({off, len});
  return ents.empty() ? 0u
                      : crc32c(ents.data(), ents.size() * sizeof(QuarEntry));
}

}  // namespace

struct Pool::Layout {
  static constexpr std::uint64_t kHeaderOff = 64;
  /// Quarantine table: header at kQuarOff, entries right behind it, all in
  /// the metadata gap between the pool header and the allocator state.
  static constexpr std::uint64_t kQuarOff = 128;
  static constexpr std::uint64_t kQuarEntries = kQuarOff + sizeof(QuarHeader);
  static constexpr std::uint64_t kAllocOff = 4096;
  /// Allocator undo log: [u64 used][pre-image entries].  Gives the
  /// multi-store free-list/arena mutations in alloc()/free() the same
  /// crash-atomicity the tx lanes give user data, without taking a lane
  /// (allocations happen inside transactions; borrowing a lane could
  /// self-deadlock when all lanes are busy).
  static constexpr std::uint64_t kAllocUndoOff = 4608;
  static constexpr std::uint64_t kLaneBase = 8192;
  static constexpr std::uint64_t kAllocUndoBytes =
      kLaneBase - kAllocUndoOff - 8;
  static constexpr std::uint64_t kLaneHeader = 64;
  static constexpr std::uint64_t kLaneStride = kLaneHeader + Pool::kTxLogBytes;
  static constexpr std::uint64_t heap_start() {
    return round_up(kLaneBase + Pool::kTxLanes * kLaneStride, 4096);
  }
  static_assert(kAllocOff + sizeof(AllocState) <= 4608,
                "alloc state must not overlap the allocator undo log");
  static_assert(kHeaderOff + sizeof(PoolHeader) <= kQuarOff,
                "pool header must not overlap the quarantine table");
  static_assert(kQuarEntries + Pool::kQuarantineCapacity * sizeof(QuarEntry) <=
                    kAllocOff,
                "quarantine table must not overlap the allocator state");
};

Pool::Pool(pmem::Device& dev, std::size_t base, std::size_t size,
           PoolOptions opts)
    : dev_(&dev), base_(base), size_(size), opts_(opts) {}

Pool Pool::create(pmem::Device& dev, std::size_t base, std::size_t size,
                  PoolOptions opts) {
  if (base + size > dev.capacity()) {
    throw PoolError("Pool::create: region exceeds device capacity");
  }
  if (size < Layout::heap_start() + 64 * 1024) {
    throw PoolError("Pool::create: pool too small");
  }
  Pool p(dev, base, size, opts);
  p.format();
  return p;
}

Pool Pool::open(pmem::Device& dev, std::size_t base, PoolOptions opts) {
  if (base + sizeof(PoolHeader) + Layout::kHeaderOff > dev.capacity()) {
    throw PoolError("Pool::open: region beyond device capacity");
  }
  Pool p(dev, base, /*size=*/dev.capacity() - base, opts);
  const auto hdr = p.get<PoolHeader>(Layout::kHeaderOff);
  if (hdr.magic != kMagic) throw PoolError("Pool::open: bad magic");
  if (hdr.version != kVersion) throw PoolError("Pool::open: bad version");
  if (hdr.crc != header_crc(hdr)) {
    throw PoolError("Pool::open: pool header checksum mismatch");
  }
  if (base + hdr.size > dev.capacity()) {
    throw PoolError("Pool::open: header size exceeds device");
  }
  p.size_ = hdr.size;
  p.recover();
  p.load_quarantine();
  return p;
}

void Pool::format() {
  // A re-created pool must not inherit a previous life's quarantine table.
  // Peeked uncharged and only cleared when stale state is actually present,
  // so formatting fresh media issues exactly the same store/flush sequence
  // as before the table existed (the flush-audit baseline).
  QuarHeader stale;
  std::memcpy(&stale, dev_->raw(base_ + Layout::kQuarOff), sizeof(stale));
  if (stale.count != 0 || stale.crc != 0) {
    set(Layout::kQuarOff, QuarHeader{0, 0});
  }

  AllocState as{};
  as.arena_cursor = Layout::heap_start();
  as.arena_end = size_;
  as.bytes_in_use = 0;
  as.large_free_head = 0;
  for (auto& h : as.free_head) h = 0;
  set(Layout::kAllocOff, as);
  set<std::uint64_t>(Layout::kAllocUndoOff, 0);  // allocator undo log empty

  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    set<std::uint64_t>(lane_off(static_cast<int>(lane)), 0);  // log empty
  }

  // Header goes last: a crash mid-format leaves an unopenable (unformatted)
  // pool rather than a corrupt one.
  PoolHeader hdr{};
  hdr.magic = kMagic;
  hdr.version = kVersion;
  hdr.size = size_;
  hdr.root = 0;
  hdr.crc = header_crc(hdr);
  set(Layout::kHeaderOff, hdr);
}

void Pool::check_off(std::uint64_t off, std::size_t len) const {
  if (off > size_ || len > size_ - off) {
    throw std::out_of_range("Pool: access beyond pool size");
  }
}

void Pool::write(std::uint64_t off, const void* src, std::size_t len) {
  check_off(off, len);
  // The device cannot intercept stores made through raw pointers, so the
  // powered-off gate lives here too: post-crash unwind (destructor
  // rollbacks, frees) must not mutate the crash image.
  if (dev_->frozen()) return;
  dev_->note_write(base_ + off, len);
  std::memcpy(dev_->raw(base_ + off), src, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
}

void Pool::read(std::uint64_t off, void* dst, std::size_t len) const {
  check_off(off, len);
  dev_->check_media(base_ + off, len);
  std::memcpy(dst, dev_->raw(base_ + off), len);
  dev_->charge_dax_read(len, opts_.map_sync);
}

void Pool::persist(std::uint64_t off, std::size_t len) {
  check_off(off, len);
  dev_->persist(base_ + off, len);
}

void Pool::flush(std::uint64_t off, std::size_t len) {
  check_off(off, len);
  dev_->flush(base_ + off, len);
}

void Pool::verify_media(std::uint64_t off, std::size_t len) const {
  check_off(off, len);
  dev_->check_media(base_ + off, len);
}

std::span<std::byte> Pool::direct_write_span(std::uint64_t off,
                                             std::size_t len) {
  check_off(off, len);
  if (dev_->frozen()) {
    // Powered off: hand out scratch DRAM so the caller's stores vanish,
    // exactly like stores through a dead DIMM mapping.
    thread_local std::vector<std::byte> scratch;
    scratch.assign(len, std::byte{});
    return {scratch.data(), len};
  }
  dev_->note_write(base_ + off, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
  return {dev_->raw(base_ + off), len};
}

std::uint64_t Pool::root() const {
  return get<PoolHeader>(Layout::kHeaderOff).root;
}

void Pool::set_root(std::uint64_t off) {
  // Rewrite the whole header so the checksum stays valid.  40 bytes within
  // one cacheline: atomic under the crash model.
  auto hdr = get<PoolHeader>(Layout::kHeaderOff);
  hdr.root = off;
  hdr.crc = header_crc(hdr);
  set(Layout::kHeaderOff, hdr);
}

// ---------------------------------------------------------------------------
// Allocator
// ---------------------------------------------------------------------------

void Pool::charge_queue_delay() const {
  // Deterministic stand-in for lock contention: rank clocks drift apart and
  // resynchronise only at collectives, so modelling an actual wait on
  // another rank's (possibly lagging) simulated clock would be unsound.
  // Instead every metadata op is charged the expected queueing share.
  if (contenders_ <= 1) return;
  auto& c = sim::ctx();
  const double delay = static_cast<double>(contenders_ - 1) *
                       c.model().pmem.pool_op_queue_cost;
  c.advance(delay, sim::Charge::kOther);
  trace::observe(trace::Hist::kShardQueueDelay, delay);
}

std::uint64_t Pool::alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  trace::Span span("pool.alloc");
  trace::count(trace::Counter::kAllocOps);
  trace::count(trace::Counter::kAllocBytes, bytes);
  trace::observe(trace::Hist::kAllocSize, static_cast<double>(bytes));
  std::lock_guard lk(*alloc_mu_);
  charge_queue_delay();
  dev_->check_tx_begin("pool.alloc");
  try {
    const std::uint64_t off = alloc_locked(bytes);
    dev_->check_tx_commit();
    return off;
  } catch (...) {
    // A fault mid-mutation (e.g. sticky media surfacing under a store) exits
    // through here with the heap half-changed; the undo log the mutation
    // phase pre-images through is designed for crash recovery but rolls the
    // live image back just as well.  Best effort: an unrestorable line means
    // the media under the allocator state itself died, and the caller's
    // healing/degradation path owns that case.
    try {
      rollback_log(Layout::kAllocUndoOff, Layout::kAllocUndoOff + 8,
                   Layout::kAllocUndoBytes);
    } catch (...) {
    }
    dev_->check_tx_abort();
    throw;
  }
}

std::uint64_t Pool::alloc_locked(std::size_t bytes) {
  const std::size_t need = round_up(bytes + kChunkHeader, kChunkAlign);
  const std::uint64_t as_off = Layout::kAllocOff;
  const auto as = get<AllocState>(as_off);

  // Phase 1 — decide (reads only): pick the chunk and precompute every
  // mutation, so phase 2 can log pre-images before anything changes.
  std::uint32_t cls = kLargeClass;
  std::size_t chunk_size = 0;
  for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
    if (kClassSizes[c] >= need) {
      cls = static_cast<std::uint32_t>(c);
      chunk_size = kClassSizes[c];
      break;
    }
  }

  std::uint64_t chunk = 0;
  std::uint64_t lnext = 0;  // successor of the chosen free-list chunk
  std::uint64_t prev = 0;   // free-list predecessor of the choice (0 = head)
  std::uint64_t rest = 0;   // split remainder, if any
  std::uint64_t rest_payload = 0;
  bool from_class_list = false;
  bool from_large_list = false;

  // A free chunk is eligible only when it avoids quarantined media and its
  // unlink store (the predecessor's next pointer) lands on healthy media —
  // quarantined neighbours stay linked in place and are skipped forever.
  const auto linkable = [&](std::uint64_t p) {
    return p == 0 || !dev_->media_failing(base_ + p + kChunkHeader, 8);
  };

  if (cls != kLargeClass) {
    std::uint64_t cur = as.free_head[cls];
    std::uint64_t p = 0;
    while (cur != 0) {
      const auto next = get<std::uint64_t>(cur + kChunkHeader);
      if ((quar_.empty() || !quar_hit(cur, chunk_size)) && linkable(p)) {
        chunk = cur;
        lnext = next;
        prev = p;
        from_class_list = true;
        break;
      }
      p = cur;
      cur = next;
    }
  } else {
    chunk_size = need;
    // First fit on the large free list.
    std::uint64_t cur = as.large_free_head;
    while (cur != 0) {
      const auto hdr = get<ChunkHeader>(cur);
      const std::size_t total = hdr.payload_size + kChunkHeader;
      const auto next = get<std::uint64_t>(cur + kChunkHeader);
      if (total >= need && (quar_.empty() || !quar_hit(cur, total)) &&
          linkable(prev)) {
        chunk = cur;
        lnext = next;
        from_large_list = true;
        if (total - need >= kSplitMin) {
          rest = cur + need;
          rest_payload = total - need - kChunkHeader;
          chunk_size = need;
        } else {
          chunk_size = total;
        }
        break;
      }
      prev = cur;
      cur = next;
    }
  }

  // Arena gaps hopped over quarantined media.  When the header spot is on
  // healthy media the gap is tiled with a checksummed filler chunk (kept
  // permanently in use); when the quarantined range covers the header spot
  // itself, nothing is written and check()'s heap walk skips the stretch via
  // the quarantine table.
  struct GapChunk {
    std::uint64_t at;
    std::uint64_t payload;
  };
  std::vector<GapChunk> gaps;

  if (chunk == 0) {
    // Bump arena.
    std::uint64_t at = round_up(as.arena_cursor, kChunkAlign);
    if (!quar_.empty()) {
      for (;;) {
        const std::pair<std::uint64_t, std::uint64_t>* hit = nullptr;
        for (const auto& q : quar_) {
          if (q.first < at + chunk_size && at < q.first + q.second &&
              (hit == nullptr || q.first < hit->first)) {
            hit = &q;
          }
        }
        if (hit == nullptr) break;
        const std::uint64_t skip_to =
            round_up(hit->first + hit->second, kChunkAlign);
        if (hit->first > at) {
          gaps.push_back({at, skip_to - at - kChunkHeader});
        }
        at = skip_to;
      }
    }
    if (at + chunk_size > as.arena_end) throw std::bad_alloc{};
    chunk = at;
  }

  // Phase 2 — log pre-images: a crash anywhere below rolls the whole
  // allocation back on recovery, as if it never happened.
  aundo_log(as_off, sizeof(AllocState));
  if (from_class_list || from_large_list) aundo_log(chunk, kChunkHeader);
  if (prev != 0) aundo_log(prev + kChunkHeader, 8);
  // The split remainder's header + next pointer are carved out of the chosen
  // chunk's old payload; logging those bytes restores the unsplit chunk.
  if (rest != 0) aundo_log(rest, kChunkHeader + 8);
  for (const auto& g : gaps) aundo_log(g.at, kChunkHeader);

  // Phase 3 — mutate (each store individually persisted; any prefix of the
  // sequence is undone by the log above).
  std::uint64_t filler_payload = 0;
  for (const auto& g : gaps) {
    set(g.at, make_chunk(g.payload, kLargeClass));
    filler_payload += g.payload;
  }
  if (from_class_list) {
    if (prev == 0) {
      set(as_off + offsetof(AllocState, free_head) + cls * 8, lnext);
    } else {
      set(prev + kChunkHeader, lnext);
    }
  } else if (from_large_list) {
    std::uint64_t new_head = as.large_free_head;
    if (prev == 0) {
      new_head = lnext;
    } else {
      set(prev + kChunkHeader, lnext);
    }
    if (rest != 0) {
      set(rest, make_chunk(rest_payload, kLargeClass));
      set(rest + kChunkHeader, new_head);
      new_head = rest;
    }
    set(as_off + offsetof(AllocState, large_free_head), new_head);
  } else {
    set(as_off + offsetof(AllocState, arena_cursor), chunk + chunk_size);
  }
  set(chunk, make_chunk(chunk_size - kChunkHeader, cls));
  set(as_off + offsetof(AllocState, bytes_in_use),
      as.bytes_in_use + filler_payload + (chunk_size - kChunkHeader));

  // Phase 4 — commit: retire the undo log; the allocation now stands.
  aundo_commit();
  return chunk + kChunkHeader;
}

void Pool::free(std::uint64_t off) {
  if (off == 0) return;
  trace::Span span("pool.free");
  trace::count(trace::Counter::kFreeOps);
  std::lock_guard lk(*alloc_mu_);
  charge_queue_delay();
  const std::uint64_t chunk = off - kChunkHeader;
  const auto hdr = get<ChunkHeader>(chunk);
  if (!chunk_ok(hdr)) {
    throw PoolError("Pool::free: not an allocation");
  }
  if (hdr.cls != kLargeClass && hdr.cls >= kClassSizes.size()) {
    throw PoolError("Pool::free: corrupt chunk class");
  }
  // Chunks on quarantined media are leaked in place: pushing one onto a
  // free list would store the next pointer into failing media, and the
  // allocator refuses to hand the space out again anyway.  The heap walk
  // keeps counting them as allocated, so bytes_in_use stays consistent.
  if (!quar_.empty() && quar_hit(chunk, hdr.payload_size + kChunkHeader)) {
    return;
  }
  if (dev_->media_failing(base_ + off, 8)) return;  // next-pointer word bad
  dev_->check_tx_begin("pool.free");
  struct ScopeGuard {
    pmem::Device* dev;
    bool committed = false;
    ~ScopeGuard() {
      if (!committed) dev->check_tx_abort();
    }
  } guard{dev_};
  const std::uint64_t as_off = Layout::kAllocOff;
  const auto as = get<AllocState>(as_off);

  std::uint64_t head_field;
  std::uint64_t old_head;
  if (hdr.cls == kLargeClass) {
    head_field = as_off + offsetof(AllocState, large_free_head);
    old_head = as.large_free_head;
  } else {
    head_field = as_off + offsetof(AllocState, free_head) + hdr.cls * 8;
    old_head = as.free_head[hdr.cls];
  }

  // Pre-images: allocator state + the payload word that becomes the free-
  // list next pointer.  A crash mid-free leaves the chunk allocated; a live
  // fault mid-free rolls back the same way (see alloc()).
  try {
    aundo_log(as_off, sizeof(AllocState));
    aundo_log(off, 8);

    // Push: write the next pointer into the payload, then swing the head.
    set(off, old_head);
    set(head_field, chunk);
    set(as_off + offsetof(AllocState, bytes_in_use),
        as.bytes_in_use - hdr.payload_size);
    aundo_commit();
  } catch (...) {
    try {
      rollback_log(Layout::kAllocUndoOff, Layout::kAllocUndoOff + 8,
                   Layout::kAllocUndoBytes);
    } catch (...) {
    }
    throw;
  }
  dev_->check_tx_commit();
  guard.committed = true;
}

std::size_t Pool::usable_size(std::uint64_t off) const {
  const auto hdr = get<ChunkHeader>(off - kChunkHeader);
  if (!chunk_ok(hdr)) {
    throw PoolError("Pool::usable_size: not an allocation");
  }
  return hdr.payload_size;
}

std::size_t Pool::bytes_in_use() const noexcept {
  // Uncharged stat read.
  std::uint64_t v;
  std::memcpy(&v,
              dev_->raw(base_ + Layout::kAllocOff +
                        offsetof(AllocState, bytes_in_use)),
              sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Allocator undo log
// ---------------------------------------------------------------------------

void Pool::aundo_log(std::uint64_t off, std::size_t len) {
  const std::uint64_t uo = Layout::kAllocUndoOff;
  const auto used = get<std::uint64_t>(uo);
  const std::size_t entry = sizeof(LogEntryHeader) + round_up(len, 8);
  if (used + entry > Layout::kAllocUndoBytes) {
    // Static capacity: one alloc/free logs a small bounded set of ranges.
    throw PoolError("Pool: allocator undo log overflow");
  }
  const std::uint64_t pos = uo + 8 + used;
  const LogEntryHeader eh{off, len};
  write(pos, &eh, sizeof(eh));
  std::vector<std::byte> image(len);
  read(off, image.data(), len);
  write(pos + sizeof(eh), image.data(), len);
  persist(pos, entry);
  // Only after the entry is durable does it become visible.
  set<std::uint64_t>(uo, used + entry);
}

void Pool::aundo_commit() {
  set<std::uint64_t>(Layout::kAllocUndoOff, 0);
}

void Pool::rollback_log(std::uint64_t header_off, std::uint64_t payload_off,
                        std::uint64_t capacity) {
  const auto used = get<std::uint64_t>(header_off);
  if (used == 0) return;
  if (used > capacity) {
    throw PoolError("Pool: undo log header corrupt");
  }
  // Collect entries, then roll back newest-first so overlapping snapshots
  // leave the oldest pre-image in place.
  std::vector<std::uint64_t> entry_pos;
  std::uint64_t pos = payload_off;
  const std::uint64_t end = payload_off + used;
  while (pos < end) {
    const auto eh = get<LogEntryHeader>(pos);
    if (eh.len > size_ || eh.off > size_ - eh.len) {
      throw PoolError("Pool: undo log entry corrupt");
    }
    entry_pos.push_back(pos);
    pos += sizeof(LogEntryHeader) + round_up(eh.len, 8);
  }
  for (auto it = entry_pos.rbegin(); it != entry_pos.rend(); ++it) {
    const auto eh = get<LogEntryHeader>(*it);
    std::vector<std::byte> image(eh.len);
    read(*it + sizeof(LogEntryHeader), image.data(), eh.len);
    // Skip already-clean targets: a store that faulted before mutating needs
    // no restore, and writing to its (possibly now sticky-bad) line would
    // fault the rollback itself.
    std::vector<std::byte> current(eh.len);
    read(eh.off, current.data(), eh.len);
    if (std::memcmp(current.data(), image.data(), eh.len) == 0) continue;
    write(eh.off, image.data(), eh.len);
    persist(eh.off, eh.len);
  }
  // Retire the log durably: if this zero stayed in cache across a crash, a
  // second recovery would replay stale pre-images over committed state.
  set<std::uint64_t>(header_off, 0);
}

// ---------------------------------------------------------------------------
// Quarantine table
// ---------------------------------------------------------------------------

void Pool::load_quarantine() {
  // Uncharged peeks: recovery metadata, not workload I/O.
  QuarHeader qh;
  std::memcpy(&qh, dev_->raw(base_ + Layout::kQuarOff), sizeof(qh));
  quar_.clear();
  if (qh.count == 0) {
    if (qh.crc != 0) {
      throw PoolError("Pool: quarantine header corrupt (crc without entries)");
    }
    return;
  }
  if (qh.count > kQuarantineCapacity) {
    throw PoolError("Pool: quarantine count exceeds table capacity");
  }
  std::vector<QuarEntry> ents(qh.count);
  std::memcpy(ents.data(), dev_->raw(base_ + Layout::kQuarEntries),
              ents.size() * sizeof(QuarEntry));
  if (crc32c(ents.data(), ents.size() * sizeof(QuarEntry)) != qh.crc) {
    throw PoolError("Pool: quarantine table checksum mismatch");
  }
  for (const auto& e : ents) {
    if (e.len == 0 || e.off % pmem::kCacheLine != 0 ||
        e.len % pmem::kCacheLine != 0 || e.off > size_ ||
        e.len > size_ - e.off) {
      throw PoolError("Pool: quarantine entry corrupt");
    }
    quar_.emplace_back(e.off, e.len);
  }
}

bool Pool::quar_hit(std::uint64_t off, std::size_t len) const {
  for (const auto& [qo, ql] : quar_) {
    if (off < qo + ql && qo < off + len) return true;
  }
  return false;
}

ft::Status Pool::quarantine(std::uint64_t off, std::size_t len) {
  if (len == 0) return ft::Status::ok();
  check_off(off, len);
  const std::uint64_t first = off / pmem::kCacheLine * pmem::kCacheLine;
  const std::uint64_t last = round_up(off + len, pmem::kCacheLine);
  std::lock_guard lk(*alloc_mu_);
  for (const auto& [qo, ql] : quar_) {
    if (first >= qo && last <= qo + ql) return ft::Status::ok();  // covered
  }
  if (quar_.size() >= kQuarantineCapacity) {
    return ft::Status(ft::ErrorCode::kQuarantineFull,
                      "pool quarantine table full");
  }
  // The entry becomes durable first; only then does the single-store (one
  // cacheline, hence crash-atomic) count/crc header swing publish it.
  const QuarEntry e{first, last - first};
  const std::uint64_t pos =
      Layout::kQuarEntries + quar_.size() * sizeof(QuarEntry);
  write(pos, &e, sizeof(e));
  persist(pos, sizeof(e));
  quar_.emplace_back(e.off, e.len);
  QuarHeader qh{};
  qh.count = static_cast<std::uint32_t>(quar_.size());
  qh.crc = quar_table_crc(quar_);
  set(Layout::kQuarOff, qh);
  trace::count(trace::Counter::kFtQuarantines);
  return ft::Status::ok();
}

bool Pool::is_quarantined(std::uint64_t off, std::size_t len) const {
  std::lock_guard lk(*alloc_mu_);
  return quar_hit(off, len);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Pool::quarantined()
    const {
  std::lock_guard lk(*alloc_mu_);
  return quar_;
}

// ---------------------------------------------------------------------------
// Integrity verifier
// ---------------------------------------------------------------------------

CheckReport Pool::check() const {
  CheckReport rep;
  auto issue = [&rep](std::string s) {
    if (rep.issues.size() < 64) rep.issues.push_back(std::move(s));
  };

  // --- pool header ---------------------------------------------------------
  PoolHeader hdr{};
  try {
    hdr = get<PoolHeader>(Layout::kHeaderOff);
  } catch (const pmem::DeviceError& e) {
    issue(std::string("pool header: ") + e.what());
    return rep;
  }
  if (hdr.magic != kMagic) {
    issue("pool header: bad magic");
    return rep;  // nothing downstream is trustworthy
  }
  if (hdr.version != kVersion) issue("pool header: bad version");
  if (hdr.crc != header_crc(hdr)) issue("pool header: checksum mismatch");
  if (hdr.size != size_) issue("pool header: size mismatch");

  // --- allocator state ------------------------------------------------------
  AllocState as{};
  try {
    as = get<AllocState>(Layout::kAllocOff);
  } catch (const pmem::DeviceError& e) {
    issue(std::string("alloc state: ") + e.what());
    return rep;
  }
  const std::uint64_t heap0 = Layout::heap_start();
  if (as.arena_cursor < heap0 || as.arena_cursor > as.arena_end ||
      as.arena_end > size_ || as.arena_cursor % kChunkAlign != 0) {
    issue("alloc state: arena bounds corrupt (cursor " +
          std::to_string(as.arena_cursor) + ", end " +
          std::to_string(as.arena_end) + ")");
    return rep;  // heap walk bounds are meaningless
  }

  // --- quarantine table -----------------------------------------------------
  // Validated from media (not the DRAM cache): the heap walk below needs it
  // to skip arena stretches the allocator hopped over without a filler.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> quar;
  {
    QuarHeader qh{};
    bool qh_ok = true;
    try {
      qh = get<QuarHeader>(Layout::kQuarOff);
    } catch (const pmem::DeviceError& e) {
      issue(std::string("quarantine table: ") + e.what());
      qh_ok = false;
    }
    if (qh_ok && qh.count > kQuarantineCapacity) {
      issue("quarantine table: count " + std::to_string(qh.count) +
            " exceeds capacity");
      qh_ok = false;
    }
    if (qh_ok && qh.count == 0 && qh.crc != 0) {
      issue("quarantine table: checksum without entries");
      qh_ok = false;
    }
    if (qh_ok && qh.count > 0) {
      std::vector<QuarEntry> ents(qh.count);
      try {
        read(Layout::kQuarEntries, ents.data(),
             ents.size() * sizeof(QuarEntry));
      } catch (const pmem::DeviceError& e) {
        issue(std::string("quarantine table: ") + e.what());
        qh_ok = false;
      }
      if (qh_ok &&
          crc32c(ents.data(), ents.size() * sizeof(QuarEntry)) != qh.crc) {
        issue("quarantine table: checksum mismatch");
        qh_ok = false;
      }
      if (qh_ok) {
        for (const auto& e : ents) {
          if (e.len == 0 || e.off % pmem::kCacheLine != 0 ||
              e.len % pmem::kCacheLine != 0 || e.off > size_ ||
              e.len > size_ - e.off) {
            issue("quarantine table: entry (" + std::to_string(e.off) + ", " +
                  std::to_string(e.len) + ") corrupt");
            qh_ok = false;
            break;
          }
          quar.emplace_back(e.off, e.len);
        }
        if (!qh_ok) quar.clear();
      }
    }
  }

  // --- heap walk ------------------------------------------------------------
  // Every byte of [heap_start, arena_cursor) must be tiled by chunks with
  // valid checksums; a chunk overrunning the cursor means overlap.
  std::unordered_set<std::uint64_t> boundaries;
  std::uint64_t payload_total = 0;
  bool walk_ok = true;
  for (std::uint64_t pos = heap0; pos < as.arena_cursor;) {
    ChunkHeader ch{};
    try {
      ch = get<ChunkHeader>(pos);
    } catch (const pmem::DeviceError& e) {
      issue(std::string("heap walk: ") + e.what());
      walk_ok = false;
      break;
    }
    if (!chunk_ok(ch)) {
      // The allocator hops over quarantined media without writing a filler
      // header when the quarantined range covers the header spot itself;
      // mirror that skip rule before calling the stretch corrupt.
      const std::pair<std::uint64_t, std::uint64_t>* hit = nullptr;
      for (const auto& q : quar) {
        if (q.first < pos + kChunkHeader && pos < q.first + q.second &&
            (hit == nullptr || q.first < hit->first)) {
          hit = &q;
        }
      }
      if (hit != nullptr) {
        pos = round_up(hit->first + hit->second, kChunkAlign);
        continue;
      }
      issue("heap walk: corrupt chunk header at " + std::to_string(pos));
      walk_ok = false;
      break;
    }
    const std::uint64_t adv = kChunkHeader + ch.payload_size;
    if (adv % kChunkAlign != 0 || pos + adv > as.arena_cursor) {
      issue("heap walk: chunk at " + std::to_string(pos) +
            " overruns the arena (overlap or corrupt size)");
      walk_ok = false;
      break;
    }
    boundaries.insert(pos);
    payload_total += ch.payload_size;
    ++rep.chunks_walked;
    pos += adv;
  }

  // --- free lists -----------------------------------------------------------
  std::unordered_set<std::uint64_t> free_seen;
  std::uint64_t free_payload = 0;
  // Cap generous enough for any legal list; only a cycle can exceed it.
  const std::size_t max_hops = (as.arena_cursor - heap0) / kChunkAlign + 2;
  auto walk_free = [&](std::uint64_t head, std::uint32_t want_cls,
                       const std::string& name) {
    std::uint64_t cur = head;
    std::size_t hops = 0;
    while (cur != 0) {
      if (++hops > max_hops) {
        issue(name + ": cycle detected");
        return;
      }
      if (cur < heap0 || cur + kChunkHeader > as.arena_cursor) {
        issue(name + ": entry " + std::to_string(cur) + " outside the heap");
        return;
      }
      if (walk_ok && !boundaries.contains(cur)) {
        issue(name + ": entry " + std::to_string(cur) +
              " not on a chunk boundary (overlap)");
        return;
      }
      if (!free_seen.insert(cur).second) {
        issue(name + ": entry " + std::to_string(cur) +
              " on multiple free lists");
        return;
      }
      ChunkHeader ch{};
      try {
        ch = get<ChunkHeader>(cur);
      } catch (const pmem::DeviceError& e) {
        issue(name + ": " + e.what());
        return;
      }
      if (!chunk_ok(ch)) {
        issue(name + ": corrupt chunk header at " + std::to_string(cur));
        return;
      }
      if (ch.cls != want_cls) {
        issue(name + ": entry " + std::to_string(cur) + " has class " +
              std::to_string(ch.cls) + ", want " + std::to_string(want_cls));
        return;
      }
      free_payload += ch.payload_size;
      ++rep.free_chunks;
      cur = get<std::uint64_t>(cur + kChunkHeader);
    }
  };
  for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
    walk_free(as.free_head[c], static_cast<std::uint32_t>(c),
              "free list[" + std::to_string(kClassSizes[c]) + "]");
  }
  walk_free(as.large_free_head, kLargeClass, "large free list");

  // --- accounting -----------------------------------------------------------
  if (walk_ok) {
    rep.bytes_in_use = payload_total - free_payload;
    // Quarantined allocator state is permanently unwritable media: the
    // stored counter can no longer track the heap (the pool is dead for
    // writes and headed for degraded read-only mode), so a mismatch there
    // is the expected scar of the media failure, not a structural bug.
    bool alloc_state_dead = false;
    for (const auto& q : quar) {
      if (q.first < Layout::kAllocOff + sizeof(AllocState) &&
          Layout::kAllocOff < q.first + q.second) {
        alloc_state_dead = true;
        break;
      }
    }
    if (!alloc_state_dead && rep.bytes_in_use != as.bytes_in_use) {
      issue("bytes_in_use mismatch: stored " +
            std::to_string(as.bytes_in_use) + ", recomputed " +
            std::to_string(rep.bytes_in_use));
    }
  }

  // --- undo logs ------------------------------------------------------------
  // Structural validity only: on a recovered pool every log is empty; a
  // non-empty but well-formed log is merely pending recovery.
  auto check_log = [&](std::uint64_t header_off, std::uint64_t payload_off,
                       std::uint64_t capacity, const std::string& name) {
    std::uint64_t used = 0;
    try {
      used = get<std::uint64_t>(header_off);
    } catch (const pmem::DeviceError& e) {
      issue(name + ": " + e.what());
      return;
    }
    if (used > capacity) {
      issue(name + ": used " + std::to_string(used) + " exceeds capacity " +
            std::to_string(capacity));
      return;
    }
    std::uint64_t pos = payload_off;
    const std::uint64_t end = payload_off + used;
    while (pos < end) {
      const auto eh = get<LogEntryHeader>(pos);
      if (eh.len > size_ || eh.off > size_ - eh.len) {
        issue(name + ": entry at " + std::to_string(pos) +
              " targets a range beyond the pool");
        return;
      }
      const std::uint64_t adv = sizeof(LogEntryHeader) + round_up(eh.len, 8);
      if (pos + adv > end) {
        issue(name + ": truncated entry at " + std::to_string(pos));
        return;
      }
      pos += adv;
    }
  };
  check_log(Layout::kAllocUndoOff, Layout::kAllocUndoOff + 8,
            Layout::kAllocUndoBytes, "allocator undo log");
  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    const std::uint64_t lo = lane_off(static_cast<int>(lane));
    check_log(lo, lo + Layout::kLaneHeader, kTxLogBytes,
              "tx lane " + std::to_string(lane));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

std::uint64_t Pool::lane_off(int lane) const {
  return Layout::kLaneBase +
         static_cast<std::uint64_t>(lane) * Layout::kLaneStride;
}

int Pool::acquire_tx_lane() {
  std::unique_lock lk(*lane_mu_);
  for (;;) {
    for (std::size_t i = 0; i < kTxLanes; ++i) {
      if (!lane_busy_[i]) {
        lane_busy_[i] = true;
        return static_cast<int>(i);
      }
    }
    lane_cv_->wait(lk);
  }
}

void Pool::release_tx_lane(int lane) {
  std::lock_guard lk(*lane_mu_);
  lane_busy_[static_cast<std::size_t>(lane)] = false;
  lane_cv_->notify_one();
}

void Pool::recover() {
  trace::Span span("pool.recover");
  trace::count(trace::Counter::kRecoveries);
  // Allocator undo first: an interrupted alloc/free must be rolled back
  // before anything else trusts the heap metadata.
  rollback_log(Layout::kAllocUndoOff, Layout::kAllocUndoOff + 8,
               Layout::kAllocUndoBytes);
  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    const std::uint64_t lo = lane_off(static_cast<int>(lane));
    rollback_log(lo, lo + Layout::kLaneHeader, kTxLogBytes);
  }
}

Transaction::Transaction(Pool& pool)
    : pool_(&pool), lane_(pool.acquire_tx_lane()) {
  pool_->dev_->check_tx_begin("pool.tx");
}

Transaction::~Transaction() {
  if (!committed_) {
    try {
      rollback();
    } catch (...) {
      // A scheduled crash can fire inside rollback's persists.  The device
      // is frozen at that point; recovery on reopen finishes the job.
      // Destructors must not throw.
    }
    pool_->dev_->check_tx_abort();
  }
  pool_->release_tx_lane(lane_);
}

void Transaction::snapshot(std::uint64_t off, std::size_t len) {
  if (committed_) throw PoolError("Transaction: snapshot after commit");
  const std::uint64_t lo = pool_->lane_off(lane_);
  const auto used = pool_->get<std::uint64_t>(lo);
  const std::size_t entry = sizeof(LogEntryHeader) + round_up(len, 8);
  if (used + entry > Pool::kTxLogBytes) {
    throw PoolError("Transaction: undo log full");
  }
  const std::uint64_t pos = lo + Pool::Layout::kLaneHeader + used;
  LogEntryHeader eh{off, len};
  pool_->write(pos, &eh, sizeof(eh));
  // Pre-image straight from pool to pool.
  std::vector<std::byte> image(len);
  pool_->read(off, image.data(), len);
  pool_->write(pos + sizeof(eh), image.data(), len);
  pool_->persist(pos, entry);
  // Only after the entry is durable does it become visible.
  pool_->set<std::uint64_t>(lo, used + entry);
  ranges_.emplace_back(off, len);
  snapshotted_ = true;
}

void Transaction::reserve(std::uint64_t off, std::size_t len) {
  if (committed_) throw PoolError("Transaction: reserve after commit");
  if (len == 0) return;
  pool_->check_off(off, len);
  ranges_.emplace_back(off, len);
}

void Transaction::commit() {
  if (committed_) return;
  trace::Span span("tx.commit");
  trace::count(trace::Counter::kTxCommits);
  // Make the mutated ranges durable with one CLWB pass and a single fence.
  // Ranges are coalesced to distinct cachelines first: overlapping
  // snapshots (or several snapshots on one line) used to pay a full
  // flush+fence each — the persist checker flagged those as duplicate
  // flushes — where one writeback suffices.
  if (!ranges_.empty()) {
    std::vector<std::uint64_t> lines;
    for (const auto& [off, len] : ranges_) {
      const std::uint64_t first = off / pmem::kCacheLine;
      const std::uint64_t last =
          (off + len + pmem::kCacheLine - 1) / pmem::kCacheLine;
      for (std::uint64_t l = first; l < last; ++l) lines.push_back(l);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (std::size_t i = 0; i < lines.size();) {
      std::size_t j = i + 1;
      while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
      pool_->flush(lines[i] * pmem::kCacheLine,
                   (lines[j - 1] - lines[i] + 1) * pmem::kCacheLine);
      i = j;
    }
    pool_->drain();
  }
  // Retire the log.  The zero MUST be persisted: if it only reached the CPU
  // cache, a crash would re-expose the stale undo entries and recovery
  // would roll this committed transaction back.  (test_faults can skip the
  // persist to let the crash matrix demonstrate exactly that bug.)
  // Reservation-only transactions never touched the lane, so there is no
  // log to retire and the flush+fence above is the whole commit.
  if (snapshotted_) {
    const std::uint64_t lo = pool_->lane_off(lane_);
    const std::uint64_t zero = 0;
    pool_->write(lo, &zero, sizeof(zero));
    if (!pool_->test_faults_.skip_lane_zero_persist) {
      pool_->persist(lo, sizeof(zero));
    }
  }
  pool_->dev_->check_tx_commit();
  committed_ = true;
}

void Transaction::rollback() {
  pool_->rollback_log(pool_->lane_off(lane_),
                      pool_->lane_off(lane_) + Pool::Layout::kLaneHeader,
                      Pool::kTxLogBytes);
}

}  // namespace pmemcpy::obj
