#include <pmemcpy/obj/pool.hpp>

#include <array>
#include <cstring>
#include <new>

namespace pmemcpy::obj {

namespace {

constexpr std::uint64_t kMagic = 0x504d454d43505921ull;  // "PMEMCPY!"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kChunkAlign = 64;
constexpr std::size_t kChunkHeader = 16;
/// Minimum remainder worth splitting off a large free chunk.
constexpr std::size_t kSplitMin = 4096;

/// Chunk sizes (header + payload) served from per-class free lists.
constexpr std::array<std::size_t, 11> kClassSizes = {
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;
constexpr std::uint32_t kChunkMagic = 0xA110C8EDu;

constexpr std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

struct PoolHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t pad;
  std::uint64_t size;
  std::uint64_t root;
};

struct AllocState {
  std::uint64_t arena_cursor;
  std::uint64_t arena_end;
  std::uint64_t bytes_in_use;
  std::uint64_t large_free_head;
  std::uint64_t free_head[kClassSizes.size()];
};

struct ChunkHeader {
  std::uint64_t payload_size;
  std::uint32_t cls;  // index into kClassSizes, or kLargeClass
  std::uint32_t magic;
};
static_assert(sizeof(ChunkHeader) == kChunkHeader);

struct LogEntryHeader {
  std::uint64_t off;
  std::uint64_t len;
};

}  // namespace

struct Pool::Layout {
  static constexpr std::uint64_t kHeaderOff = 64;
  static constexpr std::uint64_t kAllocOff = 4096;
  static constexpr std::uint64_t kLaneBase = 8192;
  static constexpr std::uint64_t kLaneHeader = 64;
  static constexpr std::uint64_t kLaneStride = kLaneHeader + Pool::kTxLogBytes;
  static constexpr std::uint64_t heap_start() {
    return round_up(kLaneBase + Pool::kTxLanes * kLaneStride, 4096);
  }
};

Pool::Pool(pmem::Device& dev, std::size_t base, std::size_t size,
           PoolOptions opts)
    : dev_(&dev), base_(base), size_(size), opts_(opts) {}

Pool Pool::create(pmem::Device& dev, std::size_t base, std::size_t size,
                  PoolOptions opts) {
  if (base + size > dev.capacity()) {
    throw PoolError("Pool::create: region exceeds device capacity");
  }
  if (size < Layout::heap_start() + 64 * 1024) {
    throw PoolError("Pool::create: pool too small");
  }
  Pool p(dev, base, size, opts);
  p.format();
  return p;
}

Pool Pool::open(pmem::Device& dev, std::size_t base, PoolOptions opts) {
  if (base + sizeof(PoolHeader) + Layout::kHeaderOff > dev.capacity()) {
    throw PoolError("Pool::open: region beyond device capacity");
  }
  Pool p(dev, base, /*size=*/dev.capacity() - base, opts);
  const auto hdr = p.get<PoolHeader>(Layout::kHeaderOff);
  if (hdr.magic != kMagic) throw PoolError("Pool::open: bad magic");
  if (hdr.version != kVersion) throw PoolError("Pool::open: bad version");
  if (base + hdr.size > dev.capacity()) {
    throw PoolError("Pool::open: header size exceeds device");
  }
  p.size_ = hdr.size;
  p.recover();
  return p;
}

void Pool::format() {
  AllocState as{};
  as.arena_cursor = Layout::heap_start();
  as.arena_end = size_;
  as.bytes_in_use = 0;
  as.large_free_head = 0;
  for (auto& h : as.free_head) h = 0;
  set(Layout::kAllocOff, as);

  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    set<std::uint64_t>(lane_off(static_cast<int>(lane)), 0);  // log empty
  }

  // Header goes last: a crash mid-format leaves an unopenable (unformatted)
  // pool rather than a corrupt one.
  PoolHeader hdr{};
  hdr.magic = kMagic;
  hdr.version = kVersion;
  hdr.size = size_;
  hdr.root = 0;
  set(Layout::kHeaderOff, hdr);
}

void Pool::check_off(std::uint64_t off, std::size_t len) const {
  if (off > size_ || len > size_ - off) {
    throw std::out_of_range("Pool: access beyond pool size");
  }
}

void Pool::write(std::uint64_t off, const void* src, std::size_t len) {
  check_off(off, len);
  dev_->note_write(base_ + off, len);
  std::memcpy(dev_->raw(base_ + off), src, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
}

void Pool::read(std::uint64_t off, void* dst, std::size_t len) const {
  check_off(off, len);
  std::memcpy(dst, dev_->raw(base_ + off), len);
  dev_->charge_dax_read(len, opts_.map_sync);
}

void Pool::persist(std::uint64_t off, std::size_t len) {
  check_off(off, len);
  dev_->persist(base_ + off, len);
}

std::span<std::byte> Pool::direct_write_span(std::uint64_t off,
                                             std::size_t len) {
  check_off(off, len);
  dev_->note_write(base_ + off, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
  return {dev_->raw(base_ + off), len};
}

std::uint64_t Pool::root() const {
  return get<PoolHeader>(Layout::kHeaderOff).root;
}

void Pool::set_root(std::uint64_t off) {
  const std::uint64_t field =
      Layout::kHeaderOff + offsetof(PoolHeader, root);
  set(field, off);
}

// ---------------------------------------------------------------------------
// Allocator
// ---------------------------------------------------------------------------

std::uint64_t Pool::alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  std::lock_guard lk(*alloc_mu_);
  return alloc_locked(bytes);
}

std::uint64_t Pool::alloc_locked(std::size_t bytes) {
  const std::size_t need = round_up(bytes + kChunkHeader, kChunkAlign);
  const std::uint64_t as_off = Layout::kAllocOff;
  auto as = get<AllocState>(as_off);

  std::uint64_t chunk = 0;
  std::size_t chunk_size = 0;
  std::uint32_t cls = kLargeClass;

  // Small path: smallest size class that fits.
  for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
    if (kClassSizes[c] >= need) {
      cls = static_cast<std::uint32_t>(c);
      chunk_size = kClassSizes[c];
      break;
    }
  }

  if (cls != kLargeClass && as.free_head[cls] != 0) {
    // Pop the class free list: a single persisted 8-byte head update.
    chunk = as.free_head[cls];
    const auto next = get<std::uint64_t>(chunk + kChunkHeader);
    set(as_off + offsetof(AllocState, free_head) + cls * 8, next);
  } else if (cls == kLargeClass) {
    chunk_size = need;
    // First fit on the large free list.
    std::uint64_t prev = 0;
    std::uint64_t cur = as.large_free_head;
    while (cur != 0) {
      const auto hdr = get<ChunkHeader>(cur);
      const std::size_t total = hdr.payload_size + kChunkHeader;
      const auto next = get<std::uint64_t>(cur + kChunkHeader);
      if (total >= need) {
        // Unlink.
        if (prev == 0) {
          set(as_off + offsetof(AllocState, large_free_head), next);
        } else {
          set(prev + kChunkHeader, next);
        }
        if (total - need >= kSplitMin) {
          // Split the tail back onto the large list.
          const std::uint64_t rest = cur + need;
          ChunkHeader rh{};
          rh.payload_size = total - need - kChunkHeader;
          rh.cls = kLargeClass;
          rh.magic = kChunkMagic;
          set(rest, rh);
          set(rest + kChunkHeader, get<AllocState>(as_off).large_free_head);
          set(as_off + offsetof(AllocState, large_free_head), rest);
          chunk_size = need;
        } else {
          chunk_size = total;
        }
        chunk = cur;
        break;
      }
      prev = cur;
      cur = next;
    }
  }

  if (chunk == 0) {
    // Bump arena.
    as = get<AllocState>(as_off);
    const std::uint64_t at = round_up(as.arena_cursor, kChunkAlign);
    if (at + chunk_size > as.arena_end) throw std::bad_alloc{};
    set(as_off + offsetof(AllocState, arena_cursor), at + chunk_size);
    chunk = at;
  }

  ChunkHeader hdr{};
  hdr.payload_size = chunk_size - kChunkHeader;
  hdr.cls = cls;
  hdr.magic = kChunkMagic;
  set(chunk, hdr);

  const auto in_use = get<std::uint64_t>(as_off + offsetof(AllocState, bytes_in_use));
  set(as_off + offsetof(AllocState, bytes_in_use), in_use + hdr.payload_size);
  return chunk + kChunkHeader;
}

void Pool::free(std::uint64_t off) {
  if (off == 0) return;
  std::lock_guard lk(*alloc_mu_);
  const std::uint64_t chunk = off - kChunkHeader;
  const auto hdr = get<ChunkHeader>(chunk);
  if (hdr.magic != kChunkMagic) {
    throw PoolError("Pool::free: not an allocation");
  }
  const std::uint64_t as_off = Layout::kAllocOff;
  std::uint64_t head_field;
  if (hdr.cls == kLargeClass) {
    head_field = as_off + offsetof(AllocState, large_free_head);
  } else {
    head_field = as_off + offsetof(AllocState, free_head) + hdr.cls * 8;
  }
  // Push: write the next pointer into the payload, then swing the head.
  set(off, get<std::uint64_t>(head_field));
  set(head_field, chunk);
  const auto in_use = get<std::uint64_t>(as_off + offsetof(AllocState, bytes_in_use));
  set(as_off + offsetof(AllocState, bytes_in_use), in_use - hdr.payload_size);
}

std::size_t Pool::usable_size(std::uint64_t off) const {
  const auto hdr = get<ChunkHeader>(off - kChunkHeader);
  if (hdr.magic != kChunkMagic) {
    throw PoolError("Pool::usable_size: not an allocation");
  }
  return hdr.payload_size;
}

std::size_t Pool::bytes_in_use() const noexcept {
  // Uncharged stat read.
  std::uint64_t v;
  std::memcpy(&v,
              dev_->raw(base_ + Layout::kAllocOff +
                        offsetof(AllocState, bytes_in_use)),
              sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

std::uint64_t Pool::lane_off(int lane) const {
  return Layout::kLaneBase +
         static_cast<std::uint64_t>(lane) * Layout::kLaneStride;
}

int Pool::acquire_tx_lane() {
  std::unique_lock lk(*lane_mu_);
  for (;;) {
    for (std::size_t i = 0; i < kTxLanes; ++i) {
      if (!lane_busy_[i]) {
        lane_busy_[i] = true;
        return static_cast<int>(i);
      }
    }
    lane_cv_->wait(lk);
  }
}

void Pool::release_tx_lane(int lane) {
  std::lock_guard lk(*lane_mu_);
  lane_busy_[static_cast<std::size_t>(lane)] = false;
  lane_cv_->notify_one();
}

void Pool::recover() {
  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    const std::uint64_t lo = lane_off(static_cast<int>(lane));
    const auto used = get<std::uint64_t>(lo);
    if (used == 0) continue;
    // Collect entries, then roll back newest-first so overlapping snapshots
    // leave the oldest pre-image in place.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;  // log pos, -
    std::uint64_t pos = lo + Layout::kLaneHeader;
    const std::uint64_t end = pos + used;
    while (pos < end) {
      const auto eh = get<LogEntryHeader>(pos);
      entries.emplace_back(pos, 0);
      pos += sizeof(LogEntryHeader) + round_up(eh.len, 8);
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      const auto eh = get<LogEntryHeader>(it->first);
      std::vector<std::byte> image(eh.len);
      read(it->first + sizeof(LogEntryHeader), image.data(), eh.len);
      write(eh.off, image.data(), eh.len);
      persist(eh.off, eh.len);
    }
    set<std::uint64_t>(lo, 0);
  }
}

Transaction::Transaction(Pool& pool)
    : pool_(&pool), lane_(pool.acquire_tx_lane()) {}

Transaction::~Transaction() {
  if (!committed_) rollback();
  pool_->release_tx_lane(lane_);
}

void Transaction::snapshot(std::uint64_t off, std::size_t len) {
  if (committed_) throw PoolError("Transaction: snapshot after commit");
  const std::uint64_t lo = pool_->lane_off(lane_);
  const auto used = pool_->get<std::uint64_t>(lo);
  const std::size_t entry = sizeof(LogEntryHeader) + round_up(len, 8);
  if (used + entry > Pool::kTxLogBytes) {
    throw PoolError("Transaction: undo log full");
  }
  const std::uint64_t pos = lo + Pool::Layout::kLaneHeader + used;
  LogEntryHeader eh{off, len};
  pool_->write(pos, &eh, sizeof(eh));
  // Pre-image straight from pool to pool.
  std::vector<std::byte> image(len);
  pool_->read(off, image.data(), len);
  pool_->write(pos + sizeof(eh), image.data(), len);
  pool_->persist(pos, entry);
  // Only after the entry is durable does it become visible.
  pool_->set<std::uint64_t>(lo, used + entry);
  ranges_.emplace_back(off, len);
}

void Transaction::commit() {
  if (committed_) return;
  for (const auto& [off, len] : ranges_) pool_->persist(off, len);
  pool_->set<std::uint64_t>(pool_->lane_off(lane_), 0);
  committed_ = true;
}

void Transaction::rollback() {
  // Newest-first, mirroring crash recovery.
  const std::uint64_t lo = pool_->lane_off(lane_);
  std::uint64_t pos = lo + Pool::Layout::kLaneHeader;
  std::vector<std::uint64_t> entry_pos;
  const auto used = pool_->get<std::uint64_t>(lo);
  const std::uint64_t end = pos + used;
  while (pos < end) {
    const auto eh = pool_->get<LogEntryHeader>(pos);
    entry_pos.push_back(pos);
    pos += sizeof(LogEntryHeader) + round_up(eh.len, 8);
  }
  for (auto it = entry_pos.rbegin(); it != entry_pos.rend(); ++it) {
    const auto eh = pool_->get<LogEntryHeader>(*it);
    std::vector<std::byte> image(eh.len);
    pool_->read(*it + sizeof(LogEntryHeader), image.data(), eh.len);
    pool_->write(eh.off, image.data(), eh.len);
    pool_->persist(eh.off, eh.len);
  }
  pool_->set<std::uint64_t>(lo, 0);
}

}  // namespace pmemcpy::obj
