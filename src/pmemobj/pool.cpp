#include <pmemcpy/obj/pool.hpp>

#include <pmemcpy/crc32c.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <new>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace pmemcpy::obj {

namespace {

constexpr std::uint64_t kMagic = 0x504d454d43505921ull;  // "PMEMCPY!"
// v2: allocator metadata split into AllocGlobal + kAllocStripes striped
// free-list states with one undo lane each (DESIGN.md §14).
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kChunkAlign = 64;
constexpr std::size_t kChunkHeader = 16;
/// Minimum remainder worth splitting off a large free chunk.
constexpr std::size_t kSplitMin = 4096;

/// Chunk sizes (header + payload) served from per-class free lists.
constexpr std::array<std::size_t, 11> kClassSizes = {
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};
constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;
/// Seed of the chunk-header checksum; doubles as the old magic constant, so
/// the check word can only validate if it was produced by make_chunk().
constexpr std::uint32_t kChunkMagic = 0xA110C8EDu;

constexpr std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

/// Size class whose chunk (header + payload) covers @p need total bytes;
/// kLargeClass when none does.
constexpr std::uint32_t class_for(std::size_t need) {
  for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
    if (kClassSizes[c] >= need) return static_cast<std::uint32_t>(c);
  }
  return kLargeClass;
}

struct PoolHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t pad;
  std::uint64_t size;
  std::uint64_t root;
  std::uint32_t crc;  // CRC32C over all preceding fields
  std::uint32_t pad2;
};
static_assert(sizeof(PoolHeader) == 40);
static_assert(offsetof(PoolHeader, crc) == 32);

std::uint32_t header_crc(const PoolHeader& h) {
  return crc32c(&h, offsetof(PoolHeader, crc));
}

/// Globally shared allocator state: the bump arena, the first-fit large
/// list and the in-use byte counter (magazine-held chunks count as in-use).
struct AllocGlobal {
  std::uint64_t arena_cursor;
  std::uint64_t arena_end;
  std::uint64_t bytes_in_use;
  std::uint64_t large_free_head;
};

/// One metadata stripe: a full set of size-class free-list heads.  Ranks
/// map to stripes by rank hash; the slow path steals from every stripe, so
/// the active stripe count is a pure distribution knob.
struct StripeState {
  std::uint64_t free_head[kClassSizes.size()];
};
static_assert(sizeof(StripeState) == 88);

/// Set in ChunkHeader::cls while a chunk is magazine-owned: carved out of
/// the free lists but not yet handed to a caller (owned-but-unpublished).
/// Recovery sweeps flagged chunks back to the free lists.  kLargeClass has
/// every bit set, so the flag alone is not enough — see is_magged().
constexpr std::uint32_t kMagFlag = 0x80000000u;

constexpr bool is_magged(std::uint32_t cls) {
  return cls != kLargeClass && (cls & kMagFlag) != 0;
}

constexpr std::uint32_t base_class(std::uint32_t cls) {
  return cls == kLargeClass ? cls : (cls & ~kMagFlag);
}

struct ChunkHeader {
  std::uint64_t payload_size;
  std::uint32_t cls;    // index into kClassSizes, or kLargeClass
  std::uint32_t check;  // CRC32C of the fields above, seeded with kChunkMagic
};
static_assert(sizeof(ChunkHeader) == kChunkHeader);

std::uint32_t chunk_check(const ChunkHeader& h) {
  return crc32c(&h, offsetof(ChunkHeader, check), kChunkMagic);
}

ChunkHeader make_chunk(std::uint64_t payload_size, std::uint32_t cls) {
  ChunkHeader h{payload_size, cls, 0};
  h.check = chunk_check(h);
  return h;
}

bool chunk_ok(const ChunkHeader& h) { return h.check == chunk_check(h); }

struct LogEntryHeader {
  std::uint64_t off;
  std::uint64_t len;
};

// Persistent quarantine table (DESIGN.md §10): a header whose count/crc pair
// fits one atomic 8-byte store, followed by (off, len) entries.  All-zero is
// the valid empty table, so a freshly formatted pool needs no extra stores.
struct QuarHeader {
  std::uint32_t count;
  std::uint32_t crc;  ///< CRC32C over the first `count` entries; 0 when empty
};
static_assert(sizeof(QuarHeader) == 8);

struct QuarEntry {
  std::uint64_t off;
  std::uint64_t len;
};
static_assert(sizeof(QuarEntry) == 16);

std::uint32_t quar_table_crc(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& q) {
  std::vector<QuarEntry> ents;
  ents.reserve(q.size());
  for (const auto& [off, len] : q) ents.push_back({off, len});
  return ents.empty() ? 0u
                      : crc32c(ents.data(), ents.size() * sizeof(QuarEntry));
}

}  // namespace

struct Pool::Layout {
  static constexpr std::uint64_t kHeaderOff = 64;
  /// Quarantine table: header at kQuarOff, entries right behind it, all in
  /// the metadata gap between the pool header and the allocator state.
  static constexpr std::uint64_t kQuarOff = 128;
  static constexpr std::uint64_t kQuarEntries = kQuarOff + sizeof(QuarHeader);
  static constexpr std::uint64_t kAllocOff = 4096;
  /// Striped free-list states, one cacheline-padded slot per stripe.
  static constexpr std::uint64_t kStripeBase = 4224;
  static constexpr std::uint64_t kStripeStride = 128;
  /// Allocator undo lanes, one per stripe: [u64 used][pre-image entries].
  /// They give the multi-store free-list/arena mutations the same
  /// crash-atomicity the tx lanes give user data, without taking a lane
  /// (allocations happen inside transactions; borrowing a lane could
  /// self-deadlock when all lanes are busy).  The global mutex admits one
  /// uncommitted allocator batch at a time, so recovery order across lanes
  /// does not matter.
  static constexpr std::uint64_t kStripeUndoBase = 8192;
  static constexpr std::uint64_t kStripeUndoStride = 4096;
  static constexpr std::uint64_t kStripeUndoBytes = kStripeUndoStride - 8;
  static constexpr std::uint64_t kLaneBase =
      kStripeUndoBase + Pool::kAllocStripes * kStripeUndoStride;
  static constexpr std::uint64_t kLaneHeader = 64;
  static constexpr std::uint64_t kLaneStride = kLaneHeader + Pool::kTxLogBytes;
  static constexpr std::uint64_t heap_start() {
    return round_up(kLaneBase + Pool::kTxLanes * kLaneStride, 4096);
  }
  static_assert(kHeaderOff + sizeof(PoolHeader) <= kQuarOff,
                "pool header must not overlap the quarantine table");
  static_assert(kQuarEntries + Pool::kQuarantineCapacity * sizeof(QuarEntry) <=
                    kAllocOff,
                "quarantine table must not overlap the allocator state");
  static_assert(kAllocOff + sizeof(AllocGlobal) <= kStripeBase,
                "global alloc state must not overlap the stripe states");
  static_assert(sizeof(StripeState) <= kStripeStride);
  static_assert(kStripeBase + Pool::kAllocStripes * kStripeStride <=
                    kStripeUndoBase,
                "stripe states must not overlap the allocator undo lanes");
};

/// Per-thread cache of pre-carved chunks, one stack per size class.  A
/// magazine is owned by exactly one thread; only its refill/flush-back
/// batches touch shared state (under alloc_mu_).
struct Pool::Magazine {
  std::array<std::vector<std::uint64_t>, kClassSizes.size()> chunks;
};

/// DRAM-side allocator runtime.  Heap-allocated so Pool stays movable;
/// keyed by std::thread::id (not rank) so raw-thread tests that share a
/// rank still get private magazines.
struct Pool::AllocRuntime {
  std::mutex mu;  ///< guards mags (lookup/insert only; magazines themselves
                  ///< are single-owner)
  std::unordered_map<std::thread::id, std::unique_ptr<Magazine>> mags;
  /// Nonempty quarantine table: the pool is degrading, every fast path is
  /// disabled and allocation falls back to the fully validated classic
  /// path.  Read unlocked by the fast paths, written under alloc_mu_.
  std::atomic<bool> quar_active{false};
};

Pool::Pool(pmem::Device& dev, std::size_t base, std::size_t size,
           PoolOptions opts)
    : dev_(&dev),
      base_(base),
      size_(size),
      opts_(opts),
      art_(std::make_unique<AllocRuntime>()) {}

Pool::Pool(Pool&&) noexcept = default;

Pool::~Pool() = default;

Pool Pool::create(pmem::Device& dev, std::size_t base, std::size_t size,
                  PoolOptions opts) {
  if (base + size > dev.capacity()) {
    throw PoolError("Pool::create: region exceeds device capacity");
  }
  if (size < Layout::heap_start() + 64 * 1024) {
    throw PoolError("Pool::create: pool too small");
  }
  Pool p(dev, base, size, opts);
  p.format();
  return p;
}

Pool Pool::open(pmem::Device& dev, std::size_t base, PoolOptions opts) {
  if (base + sizeof(PoolHeader) + Layout::kHeaderOff > dev.capacity()) {
    throw PoolError("Pool::open: region beyond device capacity");
  }
  Pool p(dev, base, /*size=*/dev.capacity() - base, opts);
  const auto hdr = p.get<PoolHeader>(Layout::kHeaderOff);
  if (hdr.magic != kMagic) throw PoolError("Pool::open: bad magic");
  if (hdr.version != kVersion) throw PoolError("Pool::open: bad version");
  if (hdr.crc != header_crc(hdr)) {
    throw PoolError("Pool::open: pool header checksum mismatch");
  }
  if (base + hdr.size > dev.capacity()) {
    throw PoolError("Pool::open: header size exceeds device");
  }
  p.size_ = hdr.size;
  p.recover();
  p.load_quarantine();
  // After rollbacks and with the quarantine known: reclaim chunks a crash
  // left magazine-flagged (owned-but-unpublished) back to the free lists.
  p.sweep_magazines();
  return p;
}

void Pool::format() {
  // A re-created pool must not inherit a previous life's quarantine table.
  // Peeked uncharged and only cleared when stale state is actually present,
  // so formatting fresh media issues exactly the same store/flush sequence
  // as before the table existed (the flush-audit baseline).
  QuarHeader stale;
  std::memcpy(&stale, dev_->raw(base_ + Layout::kQuarOff), sizeof(stale));
  if (stale.count != 0 || stale.crc != 0) {
    set(Layout::kQuarOff, QuarHeader{0, 0});
  }

  // Stripe states and allocator undo lanes are likewise only cleared when a
  // previous pool life actually left stale bytes behind: all-zero is the
  // valid empty form, so formatting fresh media stays cheap.
  for (std::size_t s = 0; s < kAllocStripes; ++s) {
    StripeState stale_ss;
    std::memcpy(&stale_ss,
                dev_->raw(base_ + Layout::kStripeBase + s * Layout::kStripeStride),
                sizeof(stale_ss));
    bool dirty = false;
    for (const auto h : stale_ss.free_head) dirty = dirty || h != 0;
    if (dirty) set(Layout::kStripeBase + s * Layout::kStripeStride, StripeState{});
    std::uint64_t stale_used;
    std::memcpy(&stale_used, dev_->raw(base_ + stripe_undo_off(static_cast<int>(s))),
                sizeof(stale_used));
    if (stale_used != 0) {
      set<std::uint64_t>(stripe_undo_off(static_cast<int>(s)), 0);
    }
  }

  AllocGlobal ag{};
  ag.arena_cursor = Layout::heap_start();
  ag.arena_end = size_;
  ag.bytes_in_use = 0;
  ag.large_free_head = 0;
  set(Layout::kAllocOff, ag);

  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    set<std::uint64_t>(lane_off(static_cast<int>(lane)), 0);  // log empty
  }

  // Header goes last: a crash mid-format leaves an unopenable (unformatted)
  // pool rather than a corrupt one.
  PoolHeader hdr{};
  hdr.magic = kMagic;
  hdr.version = kVersion;
  hdr.size = size_;
  hdr.root = 0;
  hdr.crc = header_crc(hdr);
  set(Layout::kHeaderOff, hdr);
}

void Pool::check_off(std::uint64_t off, std::size_t len) const {
  if (off > size_ || len > size_ - off) {
    throw std::out_of_range("Pool: access beyond pool size");
  }
}

void Pool::write(std::uint64_t off, const void* src, std::size_t len) {
  check_off(off, len);
  // The device cannot intercept stores made through raw pointers, so the
  // powered-off gate lives here too: post-crash unwind (destructor
  // rollbacks, frees) must not mutate the crash image.
  if (dev_->frozen()) return;
  dev_->note_write(base_ + off, len);
  std::memcpy(dev_->raw(base_ + off), src, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
}

void Pool::read(std::uint64_t off, void* dst, std::size_t len) const {
  check_off(off, len);
  dev_->check_media(base_ + off, len);
  std::memcpy(dst, dev_->raw(base_ + off), len);
  dev_->charge_dax_read(len, opts_.map_sync);
}

void Pool::persist(std::uint64_t off, std::size_t len) {
  check_off(off, len);
  dev_->persist(base_ + off, len);
}

void Pool::flush(std::uint64_t off, std::size_t len) {
  check_off(off, len);
  dev_->flush(base_ + off, len);
}

void Pool::verify_media(std::uint64_t off, std::size_t len) const {
  check_off(off, len);
  dev_->check_media(base_ + off, len);
}

std::span<std::byte> Pool::direct_write_span(std::uint64_t off,
                                             std::size_t len) {
  check_off(off, len);
  if (dev_->frozen()) {
    // Powered off: hand out scratch DRAM so the caller's stores vanish,
    // exactly like stores through a dead DIMM mapping.
    thread_local std::vector<std::byte> scratch;
    scratch.assign(len, std::byte{});
    return {scratch.data(), len};
  }
  dev_->note_write(base_ + off, len);
  dev_->charge_dax_write(base_ + off, len, opts_.map_sync);
  return {dev_->raw(base_ + off), len};
}

std::uint64_t Pool::root() const {
  return get<PoolHeader>(Layout::kHeaderOff).root;
}

void Pool::set_root(std::uint64_t off) {
  // Rewrite the whole header so the checksum stays valid.  40 bytes within
  // one cacheline: atomic under the crash model.
  auto hdr = get<PoolHeader>(Layout::kHeaderOff);
  hdr.root = off;
  hdr.crc = header_crc(hdr);
  set(Layout::kHeaderOff, hdr);
}

// ---------------------------------------------------------------------------
// Allocator
// ---------------------------------------------------------------------------

void Pool::charge_queue_delay() const {
  // Deterministic stand-in for lock contention: rank clocks drift apart and
  // resynchronise only at collectives, so modelling an actual wait on
  // another rank's (possibly lagging) simulated clock would be unsound.
  // Instead every metadata op is charged the expected queueing share — the
  // per-stripe queue depth, since ranks hash across the active stripes and
  // only same-stripe traffic serialises in the modelled machine.
  const int depth = (contenders_ + stripes_ - 1) / stripes_;
  if (depth <= 1) return;
  auto& c = sim::ctx();
  const double delay =
      static_cast<double>(depth - 1) * c.model().pmem.pool_op_queue_cost;
  c.advance(delay, sim::Charge::kOther);
  trace::observe(trace::Hist::kShardQueueDelay, delay);
  trace::count(trace::Counter::kAllocQueueCharges);
}

int Pool::acting_stripe() const {
  const int n = stripes_ < 1 ? 1 : stripes_;
  const int home =
      static_cast<int>(static_cast<unsigned>(sim::ctx().rank()) %
                       static_cast<unsigned>(n));
  // Route around stripes whose metadata media died: a sticky line under a
  // stripe's state block or undo lane would fault every transaction bound
  // to it, so the rank slides to the next healthy stripe (its chunks stay
  // reachable — every probe loop scans all stripes).  With every stripe
  // dead the home stripe is returned and the caller's fault path owns it.
  for (int probe = 0; probe < n; ++probe) {
    const int s = (home + probe) % n;
    if (!stripe_failing(s)) return s;
  }
  return home;
}

bool Pool::stripe_failing(int stripe) const {
  return dev_->media_failing(base_ + stripe_state_off(stripe),
                             sizeof(StripeState)) ||
         dev_->media_failing(base_ + stripe_undo_off(stripe),
                             8 + Layout::kStripeUndoBytes);
}

Pool::Magazine& Pool::magazine() {
  const auto id = std::this_thread::get_id();
  std::lock_guard lk(art_->mu);
  auto& slot = art_->mags[id];
  if (!slot) slot = std::make_unique<Magazine>();
  return *slot;
}

std::uint64_t Pool::alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  trace::Span span("pool.alloc");
  trace::count(trace::Counter::kAllocOps);
  trace::count(trace::Counter::kAllocBytes, bytes);
  trace::observe(trace::Hist::kAllocSize, static_cast<double>(bytes));

  // Fast path: pop a pre-carved chunk from this thread's magazine.  No lock,
  // no queueing charge, no undo transaction — the chunk is already durably
  // flagged owned-but-unpublished, so the only persistent work is sealing
  // the header back to a normal allocation.  Disabled entirely while the
  // quarantine table is nonempty (a degrading pool takes the fully
  // validated classic path).
  const std::size_t need = round_up(bytes + kChunkHeader, kChunkAlign);
  const std::uint32_t cls = class_for(need);
  if (cls != kLargeClass && mag_size_ > 0 &&
      !art_->quar_active.load(std::memory_order_acquire)) {
    Magazine& m = magazine();
    auto& stack = m.chunks[cls];
    if (stack.empty() && refill_magazine(m, cls) == 0) throw std::bad_alloc{};
    const std::uint64_t chunk = stack.back();
    stack.pop_back();
    // Seal: rewrite the header unflagged — a plain store, no flush, no
    // fence.  The header shares its cacheline with the payload's first
    // bytes (kChunkHeader < one line), and every correct publisher writes
    // the payload from byte 0 and flushes + fences the content before the
    // store that makes the chunk reachable — that pass covers this line,
    // so the seal is durable before reachability.  (Flushing here instead
    // would leave a flushed-but-unfenced line the publisher's payload
    // stores then land on — a persistency-order violation.)  A crash
    // before the publisher's fence leaves the durable header flagged and
    // the chunk unreachable, so the recovery sweep reclaims it; a crash
    // after the flush but before publish leaves it unflagged-unreachable,
    // the same bounded leak the classic alloc already accepts.
    const ChunkHeader h = make_chunk(kClassSizes[cls] - kChunkHeader, cls);
    write(chunk, &h, sizeof(h));
    trace::count(trace::Counter::kAllocMagazineHits);
    return chunk + kChunkHeader;
  }

  std::lock_guard lk(*alloc_mu_);
  trace::count(trace::Counter::kAllocLaneAcquisitions);
  charge_queue_delay();
  const int stripe = acting_stripe();
  dev_->check_tx_begin("pool.alloc");
  try {
    const std::uint64_t off = alloc_locked(bytes, stripe);
    dev_->check_tx_commit();
    return off;
  } catch (...) {
    // A fault mid-mutation (e.g. sticky media surfacing under a store) exits
    // through here with the heap half-changed; the undo log the mutation
    // phase pre-images through is designed for crash recovery but rolls the
    // live image back just as well.  Best effort: an unrestorable line means
    // the media under the allocator state itself died, and the caller's
    // healing/degradation path owns that case.
    try {
      rollback_log(stripe_undo_off(stripe), stripe_undo_off(stripe) + 8,
                   Layout::kStripeUndoBytes);
    } catch (const pmem::DeviceError&) {
      // The media under the allocator state itself died mid-rollback: the
      // tx fault being unwound names a different range, so THIS error is
      // the one the healing path must see — quarantining the dead metadata
      // flips the allocator into its degraded mode and tells check() the
      // stored counters are scarred.  The half-rolled-back tx stays
      // pending in the durable undo lane for the next open to replay.
      dev_->check_tx_abort();
      throw;
    } catch (...) {
    }
    dev_->check_tx_abort();
    throw;
  }
}

std::uint64_t Pool::alloc_locked(std::size_t bytes, int stripe) {
  const std::size_t need = round_up(bytes + kChunkHeader, kChunkAlign);
  const std::uint64_t as_off = Layout::kAllocOff;
  const auto as = get<AllocGlobal>(as_off);

  // Phase 1 — decide (reads only): pick the chunk and precompute every
  // mutation, so phase 2 can log pre-images before anything changes.
  const std::uint32_t cls = class_for(need);
  std::size_t chunk_size = cls != kLargeClass ? kClassSizes[cls] : 0;

  std::uint64_t chunk = 0;
  std::uint64_t lnext = 0;  // successor of the chosen free-list chunk
  std::uint64_t prev = 0;   // free-list predecessor of the choice (0 = head)
  std::uint64_t rest = 0;   // split remainder, if any
  std::uint64_t rest_payload = 0;
  int src_stripe = stripe;  // stripe whose class list served the chunk
  bool from_class_list = false;
  bool from_large_list = false;

  // A free chunk is eligible only when it avoids quarantined media and its
  // unlink store (the predecessor's next pointer) lands on healthy media —
  // quarantined neighbours stay linked in place and are skipped forever.
  const auto linkable = [&](std::uint64_t p) {
    return p == 0 || !dev_->media_failing(base_ + p + kChunkHeader, 8);
  };

  if (cls != kLargeClass) {
    // Probe the acting stripe first, then steal from the others: chunks may
    // sit on any stripe (frees and sweeps land by rank/offset hash), so a
    // reopen with a different active stripe count loses nothing.
    for (std::size_t probe = 0; probe < kAllocStripes && chunk == 0; ++probe) {
      const int s =
          static_cast<int>((static_cast<std::size_t>(stripe) + probe) %
                           kAllocStripes);
      // Unlinking a list head stores into the stripe's state block; a
      // stripe with dead metadata media keeps its chunks linked in place
      // (bounded leak, same rule as quarantined chunks).
      if (dev_->media_failing(base_ + stripe_state_off(s),
                              sizeof(StripeState))) {
        continue;
      }
      const auto ss = get<StripeState>(stripe_state_off(s));
      std::uint64_t cur = ss.free_head[cls];
      std::uint64_t p = 0;
      while (cur != 0) {
        const auto next = get<std::uint64_t>(cur + kChunkHeader);
        if ((quar_.empty() || !quar_hit(cur, chunk_size)) && linkable(p)) {
          chunk = cur;
          lnext = next;
          prev = p;
          src_stripe = s;
          from_class_list = true;
          break;
        }
        p = cur;
        cur = next;
      }
    }
  }
  if (cls == kLargeClass) {
    chunk_size = need;
    // First fit on the large free list.
    std::uint64_t cur = as.large_free_head;
    while (cur != 0) {
      const auto hdr = get<ChunkHeader>(cur);
      const std::size_t total = hdr.payload_size + kChunkHeader;
      const auto next = get<std::uint64_t>(cur + kChunkHeader);
      if (total >= need && (quar_.empty() || !quar_hit(cur, total)) &&
          linkable(prev)) {
        chunk = cur;
        lnext = next;
        from_large_list = true;
        if (total - need >= kSplitMin) {
          rest = cur + need;
          rest_payload = total - need - kChunkHeader;
          chunk_size = need;
        } else {
          chunk_size = total;
        }
        break;
      }
      prev = cur;
      cur = next;
    }
  }

  // Arena gaps hopped over quarantined media.  When the header spot is on
  // healthy media the gap is tiled with a checksummed filler chunk (kept
  // permanently in use); when the quarantined range covers the header spot
  // itself, nothing is written and check()'s heap walk skips the stretch via
  // the quarantine table.
  struct GapChunk {
    std::uint64_t at;
    std::uint64_t payload;
  };
  std::vector<GapChunk> gaps;

  if (chunk == 0) {
    // Bump arena.
    std::uint64_t at = round_up(as.arena_cursor, kChunkAlign);
    if (!quar_.empty()) {
      for (;;) {
        const std::pair<std::uint64_t, std::uint64_t>* hit = nullptr;
        for (const auto& q : quar_) {
          if (q.first < at + chunk_size && at < q.first + q.second &&
              (hit == nullptr || q.first < hit->first)) {
            hit = &q;
          }
        }
        if (hit == nullptr) break;
        const std::uint64_t skip_to =
            round_up(hit->first + hit->second, kChunkAlign);
        if (hit->first > at) {
          gaps.push_back({at, skip_to - at - kChunkHeader});
        }
        at = skip_to;
      }
    }
    if (at + chunk_size > as.arena_end) throw std::bad_alloc{};
    chunk = at;
  }

  // Phase 2 — log pre-images in one batch: a crash anywhere below rolls the
  // whole allocation back on recovery, as if it never happened.  The batch
  // pays one coalesced flush+fence for all entries plus a single durable
  // `used` bump (vs one flush+fence pair per entry before).
  std::vector<Range> log;
  log.push_back({as_off, sizeof(AllocGlobal)});
  if (from_class_list) {
    log.push_back({stripe_state_off(src_stripe), sizeof(StripeState)});
  }
  if (from_class_list || from_large_list) log.push_back({chunk, kChunkHeader});
  if (prev != 0) log.push_back({prev + kChunkHeader, 8});
  // The split remainder's header + next pointer are carved out of the chosen
  // chunk's old payload; logging those bytes restores the unsplit chunk.
  if (rest != 0) log.push_back({rest, kChunkHeader + 8});
  for (const auto& g : gaps) log.push_back({g.at, kChunkHeader});
  aundo_log_batch(stripe, log);

  // Phase 3 — mutate.  Stores stay cached until one coalesced flush+fence
  // pass at the end; any prefix of them is undone by the log above, and
  // nothing becomes reachable before phase 4 retires that log.
  std::vector<Range> dirty;
  const auto put = [&](std::uint64_t off, const void* src, std::size_t len) {
    write(off, src, len);
    dirty.push_back({off, len});
  };
  const auto put_u64 = [&](std::uint64_t off, std::uint64_t v) {
    put(off, &v, sizeof(v));
  };
  std::uint64_t filler_payload = 0;
  for (const auto& g : gaps) {
    const ChunkHeader gh = make_chunk(g.payload, kLargeClass);
    put(g.at, &gh, sizeof(gh));
    filler_payload += g.payload;
  }
  if (from_class_list) {
    if (prev == 0) {
      put_u64(stripe_state_off(src_stripe) + offsetof(StripeState, free_head) +
                  cls * 8,
              lnext);
    } else {
      put_u64(prev + kChunkHeader, lnext);
    }
  } else if (from_large_list) {
    std::uint64_t new_head = as.large_free_head;
    if (prev == 0) {
      new_head = lnext;
    } else {
      put_u64(prev + kChunkHeader, lnext);
    }
    if (rest != 0) {
      const ChunkHeader rh = make_chunk(rest_payload, kLargeClass);
      put(rest, &rh, sizeof(rh));
      put_u64(rest + kChunkHeader, new_head);
      new_head = rest;
    }
    put_u64(as_off + offsetof(AllocGlobal, large_free_head), new_head);
  } else {
    put_u64(as_off + offsetof(AllocGlobal, arena_cursor), chunk + chunk_size);
  }
  const ChunkHeader ch = make_chunk(chunk_size - kChunkHeader, cls);
  put(chunk, &ch, sizeof(ch));
  put_u64(as_off + offsetof(AllocGlobal, bytes_in_use),
          as.bytes_in_use + filler_payload + (chunk_size - kChunkHeader));
  persist_ranges(dirty);

  // Phase 4 — commit: retire the undo log; the allocation now stands.
  aundo_commit(stripe);
  return chunk + kChunkHeader;
}

void Pool::free(std::uint64_t off) {
  if (off == 0) return;
  trace::Span span("pool.free");
  trace::count(trace::Counter::kFreeOps);
  const std::uint64_t chunk = off - kChunkHeader;
  const auto hdr = get<ChunkHeader>(chunk);
  if (!chunk_ok(hdr)) {
    throw PoolError("Pool::free: not an allocation");
  }
  if (is_magged(hdr.cls)) {
    // A magazine-owned chunk has no live owner to free it.
    throw PoolError("Pool::free: chunk is magazine-owned (double free?)");
  }
  if (hdr.cls != kLargeClass && hdr.cls >= kClassSizes.size()) {
    throw PoolError("Pool::free: corrupt chunk class");
  }

  // Fast path: flag the header magazine-owned and keep the chunk in this
  // thread's magazine — no lock, no queueing charge, no undo transaction.
  // The flag is fully persisted (flush + fence): frees run inside callers'
  // checker scopes (an overwrite frees the old value mid-ht.put), which
  // demand every store clean by commit, and the next pop stores to this
  // same line, which must not happen flushed-but-unfenced.  One fence here
  // still beats the classic path's two (undo-log persist + metadata
  // persist) plus the lock.  Overflow beyond 2K flushes a batch of K back.
  if (hdr.cls != kLargeClass && mag_size_ > 0 &&
      !art_->quar_active.load(std::memory_order_acquire) &&
      !dev_->media_failing(base_ + chunk, kChunkHeader + 8)) {
    const ChunkHeader fh =
        make_chunk(hdr.payload_size, hdr.cls | kMagFlag);
    write(chunk, &fh, sizeof(fh));
    persist(chunk, sizeof(fh));
    trace::count(trace::Counter::kAllocMetadataPersists);
    trace::count(trace::Counter::kAllocMagazineFreeHits);
    Magazine& m = magazine();
    m.chunks[hdr.cls].push_back(chunk);
    const std::size_t cap = 2 * static_cast<std::size_t>(mag_size_);
    if (m.chunks[hdr.cls].size() >= cap) {
      flush_back(m, hdr.cls, static_cast<std::size_t>(mag_size_));
    }
    return;
  }

  std::lock_guard lk(*alloc_mu_);
  trace::count(trace::Counter::kAllocLaneAcquisitions);
  charge_queue_delay();
  // Chunks on quarantined media are leaked in place: pushing one onto a
  // free list would store the next pointer into failing media, and the
  // allocator refuses to hand the space out again anyway.  The heap walk
  // keeps counting them as allocated, so bytes_in_use stays consistent.
  if (!quar_.empty() && quar_hit(chunk, hdr.payload_size + kChunkHeader)) {
    return;
  }
  if (dev_->media_failing(base_ + off, 8)) return;  // next-pointer word bad
  dev_->check_tx_begin("pool.free");
  struct ScopeGuard {
    pmem::Device* dev;
    bool committed = false;
    ~ScopeGuard() {
      if (!committed) dev->check_tx_abort();
    }
  } guard{dev_};
  const int stripe = acting_stripe();
  const std::uint64_t as_off = Layout::kAllocOff;
  const auto as = get<AllocGlobal>(as_off);

  std::uint64_t head_field;
  std::uint64_t old_head;
  if (hdr.cls == kLargeClass) {
    head_field = as_off + offsetof(AllocGlobal, large_free_head);
    old_head = as.large_free_head;
  } else {
    const auto ss = get<StripeState>(stripe_state_off(stripe));
    head_field = stripe_state_off(stripe) + offsetof(StripeState, free_head) +
                 hdr.cls * 8;
    old_head = ss.free_head[hdr.cls];
  }

  // Pre-images: allocator state + the payload word that becomes the free-
  // list next pointer.  A crash mid-free leaves the chunk allocated; a live
  // fault mid-free rolls back the same way (see alloc()).
  try {
    aundo_log_batch(stripe, {{as_off, sizeof(AllocGlobal)},
                             {head_field, 8},
                             {off, 8}});

    // Push: write the next pointer into the payload, then swing the head.
    std::vector<Range> dirty;
    write(off, &old_head, 8);
    dirty.push_back({off, 8});
    write(head_field, &chunk, 8);
    dirty.push_back({head_field, 8});
    const std::uint64_t in_use = as.bytes_in_use - hdr.payload_size;
    write(as_off + offsetof(AllocGlobal, bytes_in_use), &in_use, 8);
    dirty.push_back({as_off + offsetof(AllocGlobal, bytes_in_use), 8});
    persist_ranges(dirty);
    aundo_commit(stripe);
  } catch (...) {
    try {
      rollback_log(stripe_undo_off(stripe), stripe_undo_off(stripe) + 8,
                   Layout::kStripeUndoBytes);
    } catch (const pmem::DeviceError&) {
      // The media under the allocator state itself died mid-rollback: the
      // tx fault being unwound names a different range, so THIS error is
      // the one the healing path must see — quarantining the dead metadata
      // flips the allocator into its degraded mode and tells check() the
      // stored counters are scarred.  The half-rolled-back tx stays
      // pending in the durable undo lane for the next open to replay.
      dev_->check_tx_abort();
      throw;
    } catch (...) {
    }
    throw;
  }
  dev_->check_tx_commit();
  guard.committed = true;
}

std::size_t Pool::usable_size(std::uint64_t off) const {
  const auto hdr = get<ChunkHeader>(off - kChunkHeader);
  if (!chunk_ok(hdr)) {
    throw PoolError("Pool::usable_size: not an allocation");
  }
  return hdr.payload_size;
}

std::size_t Pool::bytes_in_use() const noexcept {
  // Uncharged stat read.
  std::uint64_t v;
  std::memcpy(&v,
              dev_->raw(base_ + Layout::kAllocOff +
                        offsetof(AllocGlobal, bytes_in_use)),
              sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Allocator undo lanes (one per metadata stripe)
// ---------------------------------------------------------------------------

std::uint64_t Pool::stripe_undo_off(int stripe) const {
  return Layout::kStripeUndoBase +
         static_cast<std::uint64_t>(stripe) * Layout::kStripeUndoStride;
}

std::uint64_t Pool::stripe_state_off(int stripe) const {
  return Layout::kStripeBase +
         static_cast<std::uint64_t>(stripe) * Layout::kStripeStride;
}

void Pool::aundo_log_batch(int stripe, const std::vector<Range>& ranges) {
  if (ranges.empty()) return;
  const std::uint64_t uo = stripe_undo_off(stripe);
  const auto used = get<std::uint64_t>(uo);
  std::uint64_t pos = uo + 8 + used;
  const std::uint64_t start = pos;
  for (const auto& r : ranges) {
    const std::size_t entry = sizeof(LogEntryHeader) + round_up(r.len, 8);
    if ((pos - (uo + 8)) + entry > Layout::kStripeUndoBytes) {
      // Static capacity: one batch logs a small bounded set of ranges.
      throw PoolError("Pool: allocator undo log overflow");
    }
    const LogEntryHeader eh{r.off, r.len};
    write(pos, &eh, sizeof(eh));
    std::vector<std::byte> image(r.len);
    read(r.off, image.data(), r.len);
    write(pos + sizeof(eh), image.data(), r.len);
    pos += entry;
  }
  // The whole contiguous entry block persists under one coalesced
  // flush+fence; only then does the single durable `used` bump publish
  // every entry at once.
  persist(start, pos - start);
  set<std::uint64_t>(uo, used + (pos - start));
  trace::count(trace::Counter::kAllocMetadataPersists, 2);
}

void Pool::aundo_commit(int stripe) {
  set<std::uint64_t>(stripe_undo_off(stripe), 0);
  trace::count(trace::Counter::kAllocMetadataPersists);
}

void Pool::persist_ranges(const std::vector<Range>& ranges) {
  // Coalesce to distinct cachelines (mirroring Transaction::commit) so
  // overlapping metadata stores pay one writeback, then fence once.
  if (ranges.empty()) return;
  std::vector<std::uint64_t> lines;
  for (const auto& r : ranges) {
    const std::uint64_t first = r.off / pmem::kCacheLine;
    const std::uint64_t last =
        (r.off + r.len + pmem::kCacheLine - 1) / pmem::kCacheLine;
    for (std::uint64_t l = first; l < last; ++l) lines.push_back(l);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (std::size_t i = 0; i < lines.size();) {
    std::size_t j = i + 1;
    while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
    flush(lines[i] * pmem::kCacheLine,
          (lines[j - 1] - lines[i] + 1) * pmem::kCacheLine);
    i = j;
  }
  drain();
  trace::count(trace::Counter::kAllocMetadataPersists);
}

void Pool::rollback_log(std::uint64_t header_off, std::uint64_t payload_off,
                        std::uint64_t capacity) {
  const auto used = get<std::uint64_t>(header_off);
  if (used == 0) return;
  if (used > capacity) {
    throw PoolError("Pool: undo log header corrupt");
  }
  // Collect entries, then roll back newest-first so overlapping snapshots
  // leave the oldest pre-image in place.
  std::vector<std::uint64_t> entry_pos;
  std::uint64_t pos = payload_off;
  const std::uint64_t end = payload_off + used;
  while (pos < end) {
    const auto eh = get<LogEntryHeader>(pos);
    if (eh.len > size_ || eh.off > size_ - eh.len) {
      throw PoolError("Pool: undo log entry corrupt");
    }
    entry_pos.push_back(pos);
    pos += sizeof(LogEntryHeader) + round_up(eh.len, 8);
  }
  for (auto it = entry_pos.rbegin(); it != entry_pos.rend(); ++it) {
    const auto eh = get<LogEntryHeader>(*it);
    std::vector<std::byte> image(eh.len);
    read(*it + sizeof(LogEntryHeader), image.data(), eh.len);
    // Skip already-clean targets: a store that faulted before mutating needs
    // no restore, and writing to its (possibly now sticky-bad) line would
    // fault the rollback itself.
    std::vector<std::byte> current(eh.len);
    read(eh.off, current.data(), eh.len);
    if (std::memcmp(current.data(), image.data(), eh.len) == 0) continue;
    write(eh.off, image.data(), eh.len);
    persist(eh.off, eh.len);
  }
  // Retire the log durably: if this zero stayed in cache across a crash, a
  // second recovery would replay stale pre-images over committed state.
  set<std::uint64_t>(header_off, 0);
}

// ---------------------------------------------------------------------------
// Magazines (DESIGN.md §14)
// ---------------------------------------------------------------------------

void Pool::mag_mark_owned(std::uint64_t chunk, std::uint64_t payload,
                          std::uint32_t cls) {
  // Deferred-persist primitive: rewrites a chunk header with the magazine
  // flag as a raw tracked store.  Callers (refill/sweep batches) cover it
  // with their one coalesced flush+fence pass, so this helper deliberately
  // returns with the store unpersisted — pmemlint knows it by name.
  check_off(chunk, kChunkHeader);
  if (dev_->frozen()) return;
  const ChunkHeader h = make_chunk(payload, cls | kMagFlag);
  dev_->note_write(base_ + chunk, sizeof(h));
  std::memcpy(dev_->raw(base_ + chunk), &h, sizeof(h));
  dev_->charge_dax_write(base_ + chunk, sizeof(h), opts_.map_sync);
}

std::size_t Pool::refill_magazine(Magazine& m, std::size_t cls) {
  trace::Span span("pool.refill");
  std::lock_guard lk(*alloc_mu_);
  trace::count(trace::Counter::kAllocLaneAcquisitions);
  charge_queue_delay();
  const int stripe = acting_stripe();
  dev_->check_tx_begin("pool.refill");
  try {
    const std::size_t got = refill_locked(m, cls, stripe);
    dev_->check_tx_commit();
    if (got > 0) trace::count(trace::Counter::kAllocMagazineRefills);
    return got;
  } catch (...) {
    try {
      rollback_log(stripe_undo_off(stripe), stripe_undo_off(stripe) + 8,
                   Layout::kStripeUndoBytes);
    } catch (const pmem::DeviceError&) {
      // The media under the allocator state itself died mid-rollback: the
      // tx fault being unwound names a different range, so THIS error is
      // the one the healing path must see — quarantining the dead metadata
      // flips the allocator into its degraded mode and tells check() the
      // stored counters are scarred.  The half-rolled-back tx stays
      // pending in the durable undo lane for the next open to replay.
      dev_->check_tx_abort();
      throw;
    } catch (...) {
    }
    dev_->check_tx_abort();
    throw;
  }
}

std::size_t Pool::refill_locked(Magazine& m, std::size_t cls, int stripe) {
  // One undo transaction carves up to K chunks: pop prefixes of the class
  // free lists (acting stripe first, then stealing), then batch-carve the
  // remainder contiguously from the arena.  The amortisation is the whole
  // point: one lock acquisition, one queueing charge, one log batch and two
  // coalesced flush+fence passes stand in for K full allocations.  This
  // path never runs with a nonempty quarantine (fast paths are disabled),
  // so no per-chunk avoidance checks are needed.
  const std::size_t k = static_cast<std::size_t>(mag_size_);
  const std::size_t csize = kClassSizes[cls];
  const auto ag = get<AllocGlobal>(Layout::kAllocOff);

  std::vector<std::uint64_t> taken;  // popped off free lists
  struct ListCut {
    int stripe;
    std::uint64_t new_head;
  };
  std::vector<ListCut> cuts;
  for (std::size_t probe = 0; probe < kAllocStripes && taken.size() < k;
       ++probe) {
    const int s = static_cast<int>(
        (static_cast<std::size_t>(stripe) + probe) % kAllocStripes);
    // Cutting a list writes the stripe's head field; dead-media stripes
    // keep their chunks linked in place (see alloc_locked).
    if (dev_->media_failing(base_ + stripe_state_off(s),
                            sizeof(StripeState))) {
      continue;
    }
    std::uint64_t cur = get<StripeState>(stripe_state_off(s)).free_head[cls];
    const std::size_t before = taken.size();
    while (cur != 0 && taken.size() < k) {
      taken.push_back(cur);
      cur = get<std::uint64_t>(cur + kChunkHeader);
    }
    if (taken.size() != before) cuts.push_back({s, cur});
  }
  const std::uint64_t at = round_up(ag.arena_cursor, kChunkAlign);
  std::size_t carved = 0;
  while (taken.size() + carved < k &&
         at + (carved + 1) * csize <= ag.arena_end) {
    ++carved;
  }
  const std::size_t total = taken.size() + carved;
  if (total == 0) return 0;

  std::vector<Range> log;
  log.push_back({Layout::kAllocOff, sizeof(AllocGlobal)});
  for (const auto& c : cuts) {
    log.push_back({stripe_state_off(c.stripe), sizeof(StripeState)});
  }
  for (const auto c : taken) log.push_back({c, kChunkHeader});
  aundo_log_batch(stripe, log);

  std::vector<Range> dirty;
  for (const auto c : taken) {
    mag_mark_owned(c, csize - kChunkHeader, static_cast<std::uint32_t>(cls));
    dirty.push_back({c, kChunkHeader});
  }
  for (std::size_t i = 0; i < carved; ++i) {
    mag_mark_owned(at + i * csize, csize - kChunkHeader,
                   static_cast<std::uint32_t>(cls));
    dirty.push_back({at + i * csize, kChunkHeader});
  }
  for (const auto& c : cuts) {
    const std::uint64_t field = stripe_state_off(c.stripe) +
                                offsetof(StripeState, free_head) + cls * 8;
    write(field, &c.new_head, 8);
    dirty.push_back({field, 8});
  }
  AllocGlobal nag = ag;
  if (carved > 0) nag.arena_cursor = at + carved * csize;
  nag.bytes_in_use += total * (csize - kChunkHeader);
  write(Layout::kAllocOff, &nag, sizeof(nag));
  dirty.push_back({Layout::kAllocOff, sizeof(nag)});
  persist_ranges(dirty);
  aundo_commit(stripe);

  // Only after the durable commit do the chunks enter the DRAM magazine.
  for (const auto c : taken) m.chunks[cls].push_back(c);
  for (std::size_t i = 0; i < carved; ++i) {
    m.chunks[cls].push_back(at + i * csize);
  }
  return total;
}

void Pool::flush_back(Magazine& m, std::size_t cls, std::size_t keep) {
  auto& stack = m.chunks[cls];
  if (stack.size() <= keep) return;
  const std::size_t n = stack.size() - keep;
  std::vector<std::uint64_t> out(stack.begin(),
                                 stack.begin() + static_cast<long>(n));
  trace::Span span("pool.flushback");
  std::lock_guard lk(*alloc_mu_);
  trace::count(trace::Counter::kAllocLaneAcquisitions);
  charge_queue_delay();
  // Quarantined or media-failing chunks are leaked in place, still flagged
  // — the same leak-in-place rule classic free() applies.  The loss is
  // bounded by the magazine capacity at quarantine time.
  std::erase_if(out, [&](std::uint64_t c) {
    return (!quar_.empty() && quar_hit(c, kClassSizes[cls])) ||
           dev_->media_failing(base_ + c, kChunkHeader + 8);
  });
  stack.erase(stack.begin(), stack.begin() + static_cast<long>(n));
  if (out.empty()) return;
  const int stripe = acting_stripe();
  dev_->check_tx_begin("pool.flushback");
  try {
    flush_back_locked(out, cls, stripe);
    dev_->check_tx_commit();
    trace::count(trace::Counter::kAllocMagazineFlushbacks);
  } catch (...) {
    try {
      rollback_log(stripe_undo_off(stripe), stripe_undo_off(stripe) + 8,
                   Layout::kStripeUndoBytes);
    } catch (const pmem::DeviceError&) {
      // The media under the allocator state itself died mid-rollback: the
      // tx fault being unwound names a different range, so THIS error is
      // the one the healing path must see — quarantining the dead metadata
      // flips the allocator into its degraded mode and tells check() the
      // stored counters are scarred.  The half-rolled-back tx stays
      // pending in the durable undo lane for the next open to replay.
      dev_->check_tx_abort();
      throw;
    } catch (...) {
    }
    dev_->check_tx_abort();
    throw;
  }
}

void Pool::flush_back_locked(const std::vector<std::uint64_t>& out,
                             std::size_t cls, int stripe) {
  // Mirror image of refill_locked: unflag a batch of magazine chunks and
  // chain them onto the acting stripe's class list under one undo
  // transaction.  Rolling back restores the flagged headers (the scribbled
  // next words are dead payload bytes of magazine-owned chunks).
  const std::size_t csize = kClassSizes[cls];
  const auto ag = get<AllocGlobal>(Layout::kAllocOff);
  const auto ss = get<StripeState>(stripe_state_off(stripe));

  std::vector<Range> log;
  log.push_back({Layout::kAllocOff, sizeof(AllocGlobal)});
  log.push_back({stripe_state_off(stripe), sizeof(StripeState)});
  for (const auto c : out) log.push_back({c, kChunkHeader + 8});
  aundo_log_batch(stripe, log);

  std::vector<Range> dirty;
  std::uint64_t next = ss.free_head[cls];
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    const std::uint64_t c = *it;
    const ChunkHeader h =
        make_chunk(csize - kChunkHeader, static_cast<std::uint32_t>(cls));
    write(c, &h, sizeof(h));
    write(c + kChunkHeader, &next, 8);
    dirty.push_back({c, kChunkHeader + 8});
    next = c;
  }
  const std::uint64_t field =
      stripe_state_off(stripe) + offsetof(StripeState, free_head) + cls * 8;
  write(field, &next, 8);
  dirty.push_back({field, 8});
  const std::uint64_t in_use =
      ag.bytes_in_use - out.size() * (csize - kChunkHeader);
  write(Layout::kAllocOff + offsetof(AllocGlobal, bytes_in_use), &in_use, 8);
  dirty.push_back({Layout::kAllocOff + offsetof(AllocGlobal, bytes_in_use), 8});
  persist_ranges(dirty);
  aundo_commit(stripe);
}

void Pool::drain_magazines() {
  std::lock_guard lk(art_->mu);
  for (auto& [tid, mag] : art_->mags) {
    for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
      if (!mag->chunks[c].empty()) flush_back(*mag, c, 0);
    }
  }
}

void Pool::sweep_magazines() {
  // Walk the heap with uncharged raw peeks (recovery metadata, not workload
  // I/O), collecting every chunk a crash left magazine-flagged; then push
  // each back to a free list under its own small undo transaction, so a
  // re-crash mid-sweep just leaves the remainder flagged for the next open.
  const auto peek = [&](std::uint64_t off, void* dst, std::size_t len) {
    std::memcpy(dst, dev_->raw(base_ + off), len);
  };
  AllocGlobal ag;
  peek(Layout::kAllocOff, &ag, sizeof(ag));
  const std::uint64_t heap0 = Layout::heap_start();
  if (ag.arena_cursor < heap0 || ag.arena_cursor > size_) return;

  struct Flagged {
    std::uint64_t at;
    std::uint64_t payload;
    std::uint32_t cls;
  };
  std::vector<Flagged> flagged;
  for (std::uint64_t pos = heap0; pos < ag.arena_cursor;) {
    ChunkHeader ch;
    peek(pos, &ch, sizeof(ch));
    if (!chunk_ok(ch)) {
      // Mirror check()'s rule: the allocator hops quarantined media without
      // writing a filler header when the range covers the header spot.
      const std::pair<std::uint64_t, std::uint64_t>* hit = nullptr;
      for (const auto& q : quar_) {
        if (q.first < pos + kChunkHeader && pos < q.first + q.second &&
            (hit == nullptr || q.first < hit->first)) {
          hit = &q;
        }
      }
      if (hit != nullptr) {
        pos = round_up(hit->first + hit->second, kChunkAlign);
        continue;
      }
      break;  // corrupt heap: check() owns the diagnosis, not the sweep
    }
    const std::uint64_t adv = kChunkHeader + ch.payload_size;
    if (adv % kChunkAlign != 0 || pos + adv > ag.arena_cursor) break;
    if (is_magged(ch.cls) && base_class(ch.cls) < kClassSizes.size() &&
        kClassSizes[base_class(ch.cls)] == adv &&
        (quar_.empty() || !quar_hit(pos, adv)) &&
        !dev_->media_failing(base_ + pos, kChunkHeader + 8)) {
      flagged.push_back({pos, ch.payload_size, base_class(ch.cls)});
    }
    pos += adv;
  }

  for (const auto& f : flagged) {
    // Spread reclaimed chunks deterministically by offset, independent of
    // the (not yet configured) active stripe count — the slow path steals
    // from every stripe anyway.  Slide past dead-media stripes; with all
    // of them dead the chunk stays flagged for a later open to sweep.
    int stripe = static_cast<int>((f.at / kChunkAlign) % kAllocStripes);
    int slid = 0;
    while (slid < static_cast<int>(kAllocStripes) && stripe_failing(stripe)) {
      stripe = (stripe + 1) % static_cast<int>(kAllocStripes);
      ++slid;
    }
    if (slid == static_cast<int>(kAllocStripes)) continue;
    dev_->check_tx_begin("pool.sweep");
    try {
      const auto cur_ag = get<AllocGlobal>(Layout::kAllocOff);
      const auto ss = get<StripeState>(stripe_state_off(stripe));
      aundo_log_batch(stripe, {{Layout::kAllocOff, sizeof(AllocGlobal)},
                               {stripe_state_off(stripe), sizeof(StripeState)},
                               {f.at, kChunkHeader + 8}});
      std::vector<Range> dirty;
      const ChunkHeader h = make_chunk(f.payload, f.cls);
      write(f.at, &h, sizeof(h));
      write(f.at + kChunkHeader, &ss.free_head[f.cls], 8);
      dirty.push_back({f.at, kChunkHeader + 8});
      const std::uint64_t field = stripe_state_off(stripe) +
                                  offsetof(StripeState, free_head) +
                                  f.cls * 8;
      write(field, &f.at, 8);
      dirty.push_back({field, 8});
      const std::uint64_t in_use = cur_ag.bytes_in_use - f.payload;
      write(Layout::kAllocOff + offsetof(AllocGlobal, bytes_in_use), &in_use,
            8);
      dirty.push_back(
          {Layout::kAllocOff + offsetof(AllocGlobal, bytes_in_use), 8});
      persist_ranges(dirty);
      aundo_commit(stripe);
      dev_->check_tx_commit();
      trace::count(trace::Counter::kAllocMagazineSwept);
    } catch (...) {
      // Media died under the push: roll back and leave this chunk leaked in
      // place (still flagged); keep sweeping the rest.
      try {
        rollback_log(stripe_undo_off(stripe), stripe_undo_off(stripe) + 8,
                     Layout::kStripeUndoBytes);
      } catch (...) {
      }
      dev_->check_tx_abort();
    }
  }
}

// ---------------------------------------------------------------------------
// Quarantine table
// ---------------------------------------------------------------------------

void Pool::load_quarantine() {
  // Uncharged peeks: recovery metadata, not workload I/O.
  QuarHeader qh;
  std::memcpy(&qh, dev_->raw(base_ + Layout::kQuarOff), sizeof(qh));
  quar_.clear();
  if (qh.count == 0) {
    if (qh.crc != 0) {
      throw PoolError("Pool: quarantine header corrupt (crc without entries)");
    }
    return;
  }
  if (qh.count > kQuarantineCapacity) {
    throw PoolError("Pool: quarantine count exceeds table capacity");
  }
  std::vector<QuarEntry> ents(qh.count);
  std::memcpy(ents.data(), dev_->raw(base_ + Layout::kQuarEntries),
              ents.size() * sizeof(QuarEntry));
  if (crc32c(ents.data(), ents.size() * sizeof(QuarEntry)) != qh.crc) {
    throw PoolError("Pool: quarantine table checksum mismatch");
  }
  for (const auto& e : ents) {
    if (e.len == 0 || e.off % pmem::kCacheLine != 0 ||
        e.len % pmem::kCacheLine != 0 || e.off > size_ ||
        e.len > size_ - e.off) {
      throw PoolError("Pool: quarantine entry corrupt");
    }
    quar_.emplace_back(e.off, e.len);
  }
  art_->quar_active.store(!quar_.empty(), std::memory_order_release);
}

bool Pool::quar_hit(std::uint64_t off, std::size_t len) const {
  for (const auto& [qo, ql] : quar_) {
    if (off < qo + ql && qo < off + len) return true;
  }
  return false;
}

ft::Status Pool::quarantine(std::uint64_t off, std::size_t len) {
  if (len == 0) return ft::Status::ok();
  check_off(off, len);
  const std::uint64_t first = off / pmem::kCacheLine * pmem::kCacheLine;
  const std::uint64_t last = round_up(off + len, pmem::kCacheLine);
  std::lock_guard lk(*alloc_mu_);
  for (const auto& [qo, ql] : quar_) {
    if (first >= qo && last <= qo + ql) return ft::Status::ok();  // covered
  }
  if (quar_.size() >= kQuarantineCapacity) {
    return ft::Status(ft::ErrorCode::kQuarantineFull,
                      "pool quarantine table full");
  }
  // The entry becomes durable first; only then does the single-store (one
  // cacheline, hence crash-atomic) count/crc header swing publish it.
  const QuarEntry e{first, last - first};
  const std::uint64_t pos =
      Layout::kQuarEntries + quar_.size() * sizeof(QuarEntry);
  try {
    write(pos, &e, sizeof(e));
    persist(pos, sizeof(e));
    quar_.emplace_back(e.off, e.len);
    QuarHeader qh{};
    qh.count = static_cast<std::uint32_t>(quar_.size());
    qh.crc = quar_table_crc(quar_);
    set(Layout::kQuarOff, qh);
  } catch (const pmem::DeviceError& de) {
    // The quarantine table itself sits on failing media: the pool has lost
    // its last-resort repair metadata and cannot promise relocated writes
    // stay off the bad range.  Surface a typed error (the healing layer
    // degrades the handle) instead of letting the device fault escape —
    // callers treat quarantine() as the end of the error-handling line.
    return ft::Status(ft::ErrorCode::kMediaFailed,
                      std::string("quarantine table media failed: ") +
                          de.what());
  }
  // Degrading pool: disable every allocator fast path.  Chunks already in
  // magazines stay there (their flagged headers keep the accounting
  // consistent) and are reclaimed at the next reopen's sweep.
  art_->quar_active.store(true, std::memory_order_release);
  trace::count(trace::Counter::kFtQuarantines);
  return ft::Status::ok();
}

bool Pool::is_quarantined(std::uint64_t off, std::size_t len) const {
  std::lock_guard lk(*alloc_mu_);
  return quar_hit(off, len);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Pool::quarantined()
    const {
  std::lock_guard lk(*alloc_mu_);
  return quar_;
}

// ---------------------------------------------------------------------------
// Integrity verifier
// ---------------------------------------------------------------------------

CheckReport Pool::check() const {
  CheckReport rep;
  auto issue = [&rep](std::string s) {
    if (rep.issues.size() < 64) rep.issues.push_back(std::move(s));
  };

  // --- pool header ---------------------------------------------------------
  PoolHeader hdr{};
  try {
    hdr = get<PoolHeader>(Layout::kHeaderOff);
  } catch (const pmem::DeviceError& e) {
    issue(std::string("pool header: ") + e.what());
    return rep;
  }
  if (hdr.magic != kMagic) {
    issue("pool header: bad magic");
    return rep;  // nothing downstream is trustworthy
  }
  if (hdr.version != kVersion) issue("pool header: bad version");
  if (hdr.crc != header_crc(hdr)) issue("pool header: checksum mismatch");
  if (hdr.size != size_) issue("pool header: size mismatch");

  // --- allocator state ------------------------------------------------------
  AllocGlobal as{};
  std::array<StripeState, kAllocStripes> stripes{};
  try {
    as = get<AllocGlobal>(Layout::kAllocOff);
    for (std::size_t s = 0; s < kAllocStripes; ++s) {
      stripes[s] = get<StripeState>(stripe_state_off(static_cast<int>(s)));
    }
  } catch (const pmem::DeviceError& e) {
    issue(std::string("alloc state: ") + e.what());
    return rep;
  }
  const std::uint64_t heap0 = Layout::heap_start();
  if (as.arena_cursor < heap0 || as.arena_cursor > as.arena_end ||
      as.arena_end > size_ || as.arena_cursor % kChunkAlign != 0) {
    issue("alloc state: arena bounds corrupt (cursor " +
          std::to_string(as.arena_cursor) + ", end " +
          std::to_string(as.arena_end) + ")");
    return rep;  // heap walk bounds are meaningless
  }

  // --- quarantine table -----------------------------------------------------
  // Validated from media (not the DRAM cache): the heap walk below needs it
  // to skip arena stretches the allocator hopped over without a filler.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> quar;
  {
    QuarHeader qh{};
    bool qh_ok = true;
    try {
      qh = get<QuarHeader>(Layout::kQuarOff);
    } catch (const pmem::DeviceError& e) {
      issue(std::string("quarantine table: ") + e.what());
      qh_ok = false;
    }
    if (qh_ok && qh.count > kQuarantineCapacity) {
      issue("quarantine table: count " + std::to_string(qh.count) +
            " exceeds capacity");
      qh_ok = false;
    }
    if (qh_ok && qh.count == 0 && qh.crc != 0) {
      issue("quarantine table: checksum without entries");
      qh_ok = false;
    }
    if (qh_ok && qh.count > 0) {
      std::vector<QuarEntry> ents(qh.count);
      try {
        read(Layout::kQuarEntries, ents.data(),
             ents.size() * sizeof(QuarEntry));
      } catch (const pmem::DeviceError& e) {
        issue(std::string("quarantine table: ") + e.what());
        qh_ok = false;
      }
      if (qh_ok &&
          crc32c(ents.data(), ents.size() * sizeof(QuarEntry)) != qh.crc) {
        issue("quarantine table: checksum mismatch");
        qh_ok = false;
      }
      if (qh_ok) {
        for (const auto& e : ents) {
          if (e.len == 0 || e.off % pmem::kCacheLine != 0 ||
              e.len % pmem::kCacheLine != 0 || e.off > size_ ||
              e.len > size_ - e.off) {
            issue("quarantine table: entry (" + std::to_string(e.off) + ", " +
                  std::to_string(e.len) + ") corrupt");
            qh_ok = false;
            break;
          }
          quar.emplace_back(e.off, e.len);
        }
        if (!qh_ok) quar.clear();
      }
    }
  }

  // --- heap walk ------------------------------------------------------------
  // Every byte of [heap_start, arena_cursor) must be tiled by chunks with
  // valid checksums; a chunk overrunning the cursor means overlap.
  std::unordered_set<std::uint64_t> boundaries;
  std::uint64_t payload_total = 0;
  bool walk_ok = true;
  for (std::uint64_t pos = heap0; pos < as.arena_cursor;) {
    ChunkHeader ch{};
    try {
      ch = get<ChunkHeader>(pos);
    } catch (const pmem::DeviceError& e) {
      issue(std::string("heap walk: ") + e.what());
      walk_ok = false;
      break;
    }
    if (!chunk_ok(ch)) {
      // The allocator hops over quarantined media without writing a filler
      // header when the quarantined range covers the header spot itself;
      // mirror that skip rule before calling the stretch corrupt.
      const std::pair<std::uint64_t, std::uint64_t>* hit = nullptr;
      for (const auto& q : quar) {
        if (q.first < pos + kChunkHeader && pos < q.first + q.second &&
            (hit == nullptr || q.first < hit->first)) {
          hit = &q;
        }
      }
      if (hit != nullptr) {
        pos = round_up(hit->first + hit->second, kChunkAlign);
        continue;
      }
      issue("heap walk: corrupt chunk header at " + std::to_string(pos));
      walk_ok = false;
      break;
    }
    const std::uint64_t adv = kChunkHeader + ch.payload_size;
    if (adv % kChunkAlign != 0 || pos + adv > as.arena_cursor) {
      issue("heap walk: chunk at " + std::to_string(pos) +
            " overruns the arena (overlap or corrupt size)");
      walk_ok = false;
      break;
    }
    if (is_magged(ch.cls)) {
      // Magazine-owned: counted as in-use (never expected on a free list;
      // the class comparison below rejects a flagged list entry anyway).
      if (base_class(ch.cls) >= kClassSizes.size() ||
          kClassSizes[base_class(ch.cls)] != adv) {
        issue("heap walk: magazine chunk at " + std::to_string(pos) +
              " has class " + std::to_string(ch.cls) +
              " inconsistent with its size");
        walk_ok = false;
        break;
      }
      ++rep.magazine_chunks;
    }
    boundaries.insert(pos);
    payload_total += ch.payload_size;
    ++rep.chunks_walked;
    pos += adv;
  }

  // --- free lists -----------------------------------------------------------
  std::unordered_set<std::uint64_t> free_seen;
  std::uint64_t free_payload = 0;
  // Cap generous enough for any legal list; only a cycle can exceed it.
  const std::size_t max_hops = (as.arena_cursor - heap0) / kChunkAlign + 2;
  auto walk_free = [&](std::uint64_t head, std::uint32_t want_cls,
                       const std::string& name) {
    std::uint64_t cur = head;
    std::size_t hops = 0;
    while (cur != 0) {
      if (++hops > max_hops) {
        issue(name + ": cycle detected");
        return;
      }
      if (cur < heap0 || cur + kChunkHeader > as.arena_cursor) {
        issue(name + ": entry " + std::to_string(cur) + " outside the heap");
        return;
      }
      if (walk_ok && !boundaries.contains(cur)) {
        issue(name + ": entry " + std::to_string(cur) +
              " not on a chunk boundary (overlap)");
        return;
      }
      if (!free_seen.insert(cur).second) {
        issue(name + ": entry " + std::to_string(cur) +
              " on multiple free lists");
        return;
      }
      ChunkHeader ch{};
      try {
        ch = get<ChunkHeader>(cur);
      } catch (const pmem::DeviceError& e) {
        issue(name + ": " + e.what());
        return;
      }
      if (!chunk_ok(ch)) {
        issue(name + ": corrupt chunk header at " + std::to_string(cur));
        return;
      }
      if (ch.cls != want_cls) {
        issue(name + ": entry " + std::to_string(cur) + " has class " +
              std::to_string(ch.cls) + ", want " + std::to_string(want_cls));
        return;
      }
      free_payload += ch.payload_size;
      ++rep.free_chunks;
      cur = get<std::uint64_t>(cur + kChunkHeader);
    }
  };
  for (std::size_t s = 0; s < kAllocStripes; ++s) {
    for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
      walk_free(stripes[s].free_head[c], static_cast<std::uint32_t>(c),
                "stripe " + std::to_string(s) + " free list[" +
                    std::to_string(kClassSizes[c]) + "]");
    }
  }
  walk_free(as.large_free_head, kLargeClass, "large free list");

  // --- accounting -----------------------------------------------------------
  if (walk_ok) {
    rep.bytes_in_use = payload_total - free_payload;
    // Quarantined allocator state is permanently unwritable media: the
    // stored counter can no longer track the heap (the pool is dead for
    // writes and headed for degraded read-only mode), so a mismatch there
    // is the expected scar of the media failure, not a structural bug.
    bool alloc_state_dead = false;
    for (const auto& q : quar) {
      if (q.first < Layout::kStripeBase + kAllocStripes * Layout::kStripeStride &&
          Layout::kAllocOff < q.first + q.second) {
        alloc_state_dead = true;
        break;
      }
    }
    // A non-empty allocator undo lane means a tx is pending recovery: it
    // tore mid-mutation and even the live rollback could not finish (the
    // media under one of its pre-image targets died).  Until the lane
    // replays, the stored counter legitimately disagrees with the heap by
    // the torn tx's delta — the same reason the undo-log section below
    // accepts non-empty-but-well-formed lanes.
    bool lanes_pending = false;
    for (std::size_t s = 0; s < kAllocStripes && !lanes_pending; ++s) {
      try {
        lanes_pending =
            get<std::uint64_t>(stripe_undo_off(static_cast<int>(s))) != 0;
      } catch (const pmem::DeviceError&) {
        lanes_pending = true;  // unreadable lane: assume pending
      }
    }
    if (!alloc_state_dead && !lanes_pending &&
        rep.bytes_in_use != as.bytes_in_use) {
      issue("bytes_in_use mismatch: stored " +
            std::to_string(as.bytes_in_use) + ", recomputed " +
            std::to_string(rep.bytes_in_use));
    }
  }

  // --- undo logs ------------------------------------------------------------
  // Structural validity only: on a recovered pool every log is empty; a
  // non-empty but well-formed log is merely pending recovery.
  auto check_log = [&](std::uint64_t header_off, std::uint64_t payload_off,
                       std::uint64_t capacity, const std::string& name) {
    std::uint64_t used = 0;
    try {
      used = get<std::uint64_t>(header_off);
    } catch (const pmem::DeviceError& e) {
      issue(name + ": " + e.what());
      return;
    }
    if (used > capacity) {
      issue(name + ": used " + std::to_string(used) + " exceeds capacity " +
            std::to_string(capacity));
      return;
    }
    std::uint64_t pos = payload_off;
    const std::uint64_t end = payload_off + used;
    while (pos < end) {
      const auto eh = get<LogEntryHeader>(pos);
      if (eh.len > size_ || eh.off > size_ - eh.len) {
        issue(name + ": entry at " + std::to_string(pos) +
              " targets a range beyond the pool");
        return;
      }
      const std::uint64_t adv = sizeof(LogEntryHeader) + round_up(eh.len, 8);
      if (pos + adv > end) {
        issue(name + ": truncated entry at " + std::to_string(pos));
        return;
      }
      pos += adv;
    }
  };
  for (std::size_t s = 0; s < kAllocStripes; ++s) {
    check_log(stripe_undo_off(static_cast<int>(s)),
              stripe_undo_off(static_cast<int>(s)) + 8,
              Layout::kStripeUndoBytes,
              "allocator undo lane " + std::to_string(s));
  }
  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    const std::uint64_t lo = lane_off(static_cast<int>(lane));
    check_log(lo, lo + Layout::kLaneHeader, kTxLogBytes,
              "tx lane " + std::to_string(lane));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

std::uint64_t Pool::lane_off(int lane) const {
  return Layout::kLaneBase +
         static_cast<std::uint64_t>(lane) * Layout::kLaneStride;
}

int Pool::acquire_tx_lane() {
  std::unique_lock lk(*lane_mu_);
  for (;;) {
    for (std::size_t i = 0; i < kTxLanes; ++i) {
      if (!lane_busy_[i]) {
        lane_busy_[i] = true;
        return static_cast<int>(i);
      }
    }
    lane_cv_->wait(lk);
  }
}

void Pool::release_tx_lane(int lane) {
  std::lock_guard lk(*lane_mu_);
  lane_busy_[static_cast<std::size_t>(lane)] = false;
  lane_cv_->notify_one();
}

void Pool::recover() {
  trace::Span span("pool.recover");
  trace::count(trace::Counter::kRecoveries);
  // Allocator undo lanes first: an interrupted alloc/free/refill must be
  // rolled back before anything else trusts the heap metadata.  The global
  // allocator mutex admits one uncommitted batch at a time, so at most one
  // lane has anything to do and cross-lane order is irrelevant.
  for (std::size_t s = 0; s < kAllocStripes; ++s) {
    rollback_log(stripe_undo_off(static_cast<int>(s)),
                 stripe_undo_off(static_cast<int>(s)) + 8,
                 Layout::kStripeUndoBytes);
  }
  for (std::size_t lane = 0; lane < kTxLanes; ++lane) {
    const std::uint64_t lo = lane_off(static_cast<int>(lane));
    rollback_log(lo, lo + Layout::kLaneHeader, kTxLogBytes);
  }
}

Transaction::Transaction(Pool& pool)
    : pool_(&pool), lane_(pool.acquire_tx_lane()) {
  pool_->dev_->check_tx_begin("pool.tx");
}

Transaction::~Transaction() {
  if (!committed_) {
    try {
      rollback();
    } catch (...) {
      // A scheduled crash can fire inside rollback's persists.  The device
      // is frozen at that point; recovery on reopen finishes the job.
      // Destructors must not throw.
    }
    pool_->dev_->check_tx_abort();
  }
  pool_->release_tx_lane(lane_);
}

void Transaction::snapshot(std::uint64_t off, std::size_t len) {
  if (committed_) throw PoolError("Transaction: snapshot after commit");
  const std::uint64_t lo = pool_->lane_off(lane_);
  const auto used = pool_->get<std::uint64_t>(lo);
  const std::size_t entry = sizeof(LogEntryHeader) + round_up(len, 8);
  if (used + entry > Pool::kTxLogBytes) {
    throw PoolError("Transaction: undo log full");
  }
  const std::uint64_t pos = lo + Pool::Layout::kLaneHeader + used;
  LogEntryHeader eh{off, len};
  pool_->write(pos, &eh, sizeof(eh));
  // Pre-image straight from pool to pool.
  std::vector<std::byte> image(len);
  pool_->read(off, image.data(), len);
  pool_->write(pos + sizeof(eh), image.data(), len);
  pool_->persist(pos, entry);
  // Only after the entry is durable does it become visible.
  pool_->set<std::uint64_t>(lo, used + entry);
  ranges_.emplace_back(off, len);
  snapshotted_ = true;
}

void Transaction::reserve(std::uint64_t off, std::size_t len) {
  if (committed_) throw PoolError("Transaction: reserve after commit");
  if (len == 0) return;
  pool_->check_off(off, len);
  ranges_.emplace_back(off, len);
}

void Transaction::commit() {
  if (committed_) return;
  trace::Span span("tx.commit");
  trace::count(trace::Counter::kTxCommits);
  // Make the mutated ranges durable with one CLWB pass and a single fence.
  // Ranges are coalesced to distinct cachelines first: overlapping
  // snapshots (or several snapshots on one line) used to pay a full
  // flush+fence each — the persist checker flagged those as duplicate
  // flushes — where one writeback suffices.
  if (!ranges_.empty()) {
    std::vector<std::uint64_t> lines;
    for (const auto& [off, len] : ranges_) {
      const std::uint64_t first = off / pmem::kCacheLine;
      const std::uint64_t last =
          (off + len + pmem::kCacheLine - 1) / pmem::kCacheLine;
      for (std::uint64_t l = first; l < last; ++l) lines.push_back(l);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (std::size_t i = 0; i < lines.size();) {
      std::size_t j = i + 1;
      while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
      pool_->flush(lines[i] * pmem::kCacheLine,
                   (lines[j - 1] - lines[i] + 1) * pmem::kCacheLine);
      i = j;
    }
    pool_->drain();
  }
  // Retire the log.  The zero MUST be persisted: if it only reached the CPU
  // cache, a crash would re-expose the stale undo entries and recovery
  // would roll this committed transaction back.  (test_faults can skip the
  // persist to let the crash matrix demonstrate exactly that bug.)
  // Reservation-only transactions never touched the lane, so there is no
  // log to retire and the flush+fence above is the whole commit.
  if (snapshotted_) {
    const std::uint64_t lo = pool_->lane_off(lane_);
    const std::uint64_t zero = 0;
    pool_->write(lo, &zero, sizeof(zero));
    if (!pool_->test_faults_.skip_lane_zero_persist) {
      pool_->persist(lo, sizeof(zero));
    }
  }
  pool_->dev_->check_tx_commit();
  committed_ = true;
}

void Transaction::rollback() {
  pool_->rollback_log(pool_->lane_off(lane_),
                      pool_->lane_off(lane_) + Pool::Layout::kLaneHeader,
                      Pool::kTxLogBytes);
}

}  // namespace pmemcpy::obj
