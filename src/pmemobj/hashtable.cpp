#include <pmemcpy/obj/hashtable.hpp>

#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace pmemcpy::obj {

namespace {

struct TableHeader {
  std::uint64_t nbuckets;
  std::uint64_t buckets_off;
  std::uint64_t count;
};

// Persistent node layout (key bytes appended).
constexpr std::uint64_t kNodeNext = 0;
constexpr std::uint64_t kNodeValOff = 8;
constexpr std::uint64_t kNodeValSize = 16;
constexpr std::uint64_t kNodeMeta = 24;
constexpr std::uint64_t kNodeKeyLen = 32;
constexpr std::uint64_t kNodeKey = 40;

/// Staging image of the fixed node header (kNodeNext..kNodeKeyLen): written
/// with one store and persisted together with the key by publish(), instead
/// of one flush+fence per field (the persist checker flagged the old
/// per-field set() chain as a duplicate flush at publish time).
struct NodeHeaderImage {
  std::uint64_t next;
  std::uint64_t val_off;
  std::uint64_t val_size;
  std::uint64_t meta;
  std::uint32_t key_len;
  std::uint32_t pad;
};
static_assert(sizeof(NodeHeaderImage) == kNodeKey);

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Flush the distinct cachelines covering a set of small ranges as
/// contiguous runs (the same coalescing Transaction::commit does), without
/// the fence — the caller drains once for the whole set.
void flush_coalesced(Pool& pool,
                     const std::vector<std::pair<std::uint64_t, std::size_t>>&
                         ranges) {
  std::vector<std::uint64_t> lines;
  for (const auto& [off, len] : ranges) {
    const std::uint64_t first = off / pmem::kCacheLine;
    const std::uint64_t last =
        (off + len + pmem::kCacheLine - 1) / pmem::kCacheLine;
    for (std::uint64_t l = first; l < last; ++l) lines.push_back(l);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (std::size_t i = 0; i < lines.size();) {
    std::size_t j = i + 1;
    while (j < lines.size() && lines[j] == lines[j - 1] + 1) ++j;
    pool.flush(lines[i] * pmem::kCacheLine,
               (lines[j - 1] - lines[i] + 1) * pmem::kCacheLine);
    i = j;
  }
}

/// Zero a pool range in bounded chunks.
void zero_range(Pool& pool, std::uint64_t off, std::size_t len) {
  static constexpr std::size_t kChunk = 64 * 1024;
  std::vector<std::byte> zeros(std::min(len, kChunk), std::byte{0});
  std::size_t done = 0;
  while (done < len) {
    const std::size_t n = std::min(len - done, kChunk);
    pool.write(off + done, zeros.data(), n);
    done += n;
  }
  pool.persist(off, len);
}

}  // namespace

HashTable::HashTable(Pool& pool, std::uint64_t hoff)
    : pool_(&pool), hoff_(hoff) {}

HashTable HashTable::create(Pool& pool, std::size_t nbuckets) {
  if (nbuckets == 0) nbuckets = 1;
  const std::uint64_t buckets = pool.alloc(nbuckets * 8);
  zero_range(pool, buckets, nbuckets * 8);
  const std::uint64_t hoff = pool.alloc(sizeof(TableHeader));
  TableHeader hdr{nbuckets, buckets, 0};
  pool.set(hoff, hdr);
  return HashTable(pool, hoff);
}

HashTable HashTable::open(Pool& pool, std::uint64_t header_off) {
  const auto hdr = pool.get<TableHeader>(header_off);
  if (hdr.nbuckets == 0 || hdr.buckets_off == 0) {
    throw PoolError("HashTable::open: invalid header");
  }
  return HashTable(pool, header_off);
}

std::uint64_t HashTable::bucket_slot(std::string_view key) const {
  const auto hdr = pool_->get<TableHeader>(hoff_);
  const std::uint64_t b = fnv1a(key) % hdr.nbuckets;
  return hdr.buckets_off + b * 8;
}

std::string HashTable::read_key(std::uint64_t node_off) const {
  const auto len = pool_->get<std::uint32_t>(node_off + kNodeKeyLen);
  std::string key(len, '\0');
  pool_->read(node_off + kNodeKey, key.data(), len);
  return key;
}

std::optional<ValueRef> HashTable::find(std::string_view key) const {
  std::lock_guard lk((*stripes_)[fnv1a(key) % kStripes]);
  std::uint64_t node = pool_->get<std::uint64_t>(bucket_slot(key));
  while (node != 0) {
    if (read_key(node) == key) {
      ValueRef ref;
      ref.node_off = node;
      ref.val_off = pool_->get<std::uint64_t>(node + kNodeValOff);
      ref.val_size = pool_->get<std::uint64_t>(node + kNodeValSize);
      ref.meta = pool_->get<std::uint64_t>(node + kNodeMeta);
      return ref;
    }
    node = pool_->get<std::uint64_t>(node + kNodeNext);
  }
  return std::nullopt;
}

HashTable::Inserter HashTable::reserve(std::string_view key,
                                       std::size_t val_size,
                                       std::uint64_t meta) {
  pool_->device().check_tx_begin("ht.put");
  const std::uint64_t val = val_size > 0 ? pool_->alloc(val_size) : 0;
  const std::uint64_t node = pool_->alloc(kNodeKey + key.size());
  // Stage header + key with plain stores; publish() makes the whole node
  // durable with one flush pass and a single fence.
  const NodeHeaderImage nh{0, val, val_size, meta,
                           static_cast<std::uint32_t>(key.size()), 0};
  pool_->write(node, &nh, sizeof(nh));
  if (!key.empty()) {
    pool_->write(node + kNodeKey, key.data(), key.size());
  }
  return Inserter(*this, key, node, val, val_size);
}

void HashTable::put(std::string_view key, const void* data, std::size_t len,
                    std::uint64_t meta) {
  auto ins = reserve(key, len, meta);
  if (len > 0) {
    auto span = ins.value();
    std::memcpy(span.data(), data, len);
  }
  (void)ins.publish();  // replace mode: always links
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> HashTable::find_chain(
    std::uint64_t slot, std::string_view key) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> matches;
  std::uint64_t prev = 0;
  std::uint64_t node = pool_->get<std::uint64_t>(slot);
  while (node != 0) {
    const std::uint64_t next = pool_->get<std::uint64_t>(node + kNodeNext);
    if (read_key(node) == key) matches.emplace_back(prev, node);
    prev = node;
    node = next;
  }
  return matches;
}

void HashTable::unlink_free(std::uint64_t slot, std::uint64_t prev,
                            std::uint64_t node) {
  const std::uint64_t next = pool_->get<std::uint64_t>(node + kNodeNext);
  if (prev == 0) {
    pool_->set<std::uint64_t>(slot, next);
  } else {
    pool_->set<std::uint64_t>(prev + kNodeNext, next);
  }
  const auto val = pool_->get<std::uint64_t>(node + kNodeValOff);
  pool_->free(node);
  if (val != 0) pool_->free(val);
}

bool HashTable::link_replace(std::string_view key, std::uint64_t node_off,
                             bool keep_existing, bool* linked_out) {
  std::lock_guard lk((*stripes_)[fnv1a(key) % kStripes]);
  const std::uint64_t slot = bucket_slot(key);
  auto matches = find_chain(slot, key);

  if (!matches.empty() && keep_existing) {
    // First writer won: discard this reservation.
    const auto val = pool_->get<std::uint64_t>(node_off + kNodeValOff);
    pool_->free(node_off);
    if (val != 0) pool_->free(val);
    return false;
  }

  // Crash leftovers first: an overwrite interrupted between its head
  // publish and its unlink leaves a stale duplicate shadowed behind the
  // live (first) match.  Readers never see those, so sweeping them
  // deepest-first is invisible at every intermediate crash point.
  while (matches.size() > 1) {
    unlink_free(slot, matches.back().first, matches.back().second);
    matches.pop_back();
  }

  const std::uint64_t head = pool_->get<std::uint64_t>(slot);
  if (matches.empty()) {
    // Fresh key: the head store is the atomic publish.
    pool_->set<std::uint64_t>(node_off + kNodeNext, head);
    pool_->set<std::uint64_t>(slot, node_off);
    if (linked_out != nullptr) *linked_out = true;
    bump_count(+1);
    return true;
  }

  const auto [prev, old] = matches.front();
  if (prev == 0) {
    // The superseded entry IS the head: point the new node past it first,
    // so the single head store atomically swaps old for new.  No crash
    // point can see both versions chained.
    pool_->set<std::uint64_t>(node_off + kNodeNext,
                              pool_->get<std::uint64_t>(old + kNodeNext));
    pool_->set<std::uint64_t>(slot, node_off);
    if (linked_out != nullptr) *linked_out = true;
  } else {
    // Mid-chain: publish the new head first (the stale entry is shadowed
    // behind it for every reader), then unlink it.  A crash in between
    // leaves exactly the shadowed duplicate the sweeps collect.
    pool_->set<std::uint64_t>(node_off + kNodeNext, head);
    pool_->set<std::uint64_t>(slot, node_off);
    if (linked_out != nullptr) *linked_out = true;
    pool_->set<std::uint64_t>(prev + kNodeNext,
                              pool_->get<std::uint64_t>(old + kNodeNext));
  }
  const auto old_val = pool_->get<std::uint64_t>(old + kNodeValOff);
  pool_->free(old);
  if (old_val != 0) pool_->free(old_val);
  return true;
}

bool HashTable::erase(std::string_view key) {
  std::lock_guard lk((*stripes_)[fnv1a(key) % kStripes]);
  const std::uint64_t slot = bucket_slot(key);
  auto matches = find_chain(slot, key);
  if (matches.empty()) return false;
  // Deepest-first: shadowed crash-leftover duplicates go before the live
  // head entry, so every intermediate crash point still reads exactly the
  // live value; the final unlink completes the erase.  The old head-first
  // single unlink was the resurrection bug the property fuzzer caught — it
  // re-exposed a stale duplicate as the live value.
  while (!matches.empty()) {
    unlink_free(slot, matches.back().first, matches.back().second);
    matches.pop_back();
  }
  bump_count(-1);
  return true;
}

void HashTable::read_value(const ValueRef& ref, void* dst) const {
  pool_->read(ref.val_off, dst, ref.val_size);
}

const std::byte* HashTable::value_direct(const ValueRef& ref) const {
  pool_->charge_read(ref.val_size);
  return pool_->direct(ref.val_off);
}

std::size_t HashTable::count() const {
  return pool_->get<TableHeader>(hoff_).count;
}

std::size_t HashTable::nbuckets() const {
  return pool_->get<TableHeader>(hoff_).nbuckets;
}

void HashTable::bump_count(std::int64_t delta) {
  std::lock_guard lk(*count_mu_);
  auto hdr = pool_->get<TableHeader>(hoff_);
  hdr.count = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(hdr.count) + delta);
  pool_->set<std::uint64_t>(hoff_ + offsetof(TableHeader, count), hdr.count);
}

void HashTable::for_each(
    const std::function<void(std::string_view, const ValueRef&)>& fn) const {
  // Hold every stripe so the view is consistent.
  for (auto& m : *stripes_) m.lock();
  const auto hdr = pool_->get<TableHeader>(hoff_);
  // Scan the bucket array with one bulk read (a sequential-streaming
  // access), not one charged random read per slot.
  std::vector<std::uint64_t> heads(hdr.nbuckets);
  pool_->read(hdr.buckets_off, heads.data(), hdr.nbuckets * 8);
  for (std::uint64_t b = 0; b < hdr.nbuckets; ++b) {
    std::uint64_t node = heads[b];
    while (node != 0) {
      const std::string key = read_key(node);
      ValueRef ref;
      ref.node_off = node;
      ref.val_off = pool_->get<std::uint64_t>(node + kNodeValOff);
      ref.val_size = pool_->get<std::uint64_t>(node + kNodeValSize);
      ref.meta = pool_->get<std::uint64_t>(node + kNodeMeta);
      fn(key, ref);
      node = pool_->get<std::uint64_t>(node + kNodeNext);
    }
  }
  for (auto it = stripes_->rbegin(); it != stripes_->rend(); ++it) it->unlock();
}

void HashTable::for_each_prefix(
    std::string_view prefix,
    const std::function<void(std::string_view, const ValueRef&)>& fn) const {
  for_each([&](std::string_view key, const ValueRef& ref) {
    if (key.size() >= prefix.size() &&
        key.compare(0, prefix.size(), prefix) == 0) {
      fn(key, ref);
    }
  });
}

void HashTable::rehash(std::size_t new_nbuckets) {
  trace::Span span("ht.rehash");
  if (new_nbuckets == 0) new_nbuckets = 1;
  for (auto& m : *stripes_) m.lock();
  const auto hdr = pool_->get<TableHeader>(hoff_);

  // Build a complete replacement: new array + copied nodes sharing the old
  // value blobs.  Nothing existing is mutated until the header swap.
  const std::uint64_t nbuckets_off = pool_->alloc(new_nbuckets * 8);
  zero_range(*pool_, nbuckets_off, new_nbuckets * 8);

  std::vector<std::uint64_t> old_nodes;
  std::vector<std::uint64_t> dup_vals;
  for (std::uint64_t b = 0; b < hdr.nbuckets; ++b) {
    std::uint64_t node = pool_->get<std::uint64_t>(hdr.buckets_off + b * 8);
    std::set<std::string> seen;  // keys copied from this chain
    while (node != 0) {
      old_nodes.push_back(node);
      const std::string key = read_key(node);
      if (!seen.insert(key).second) {
        // Shadowed crash-leftover duplicate (see link_replace): copying it
        // would RE-ORDER it above the live entry, because this loop
        // prepends while walking head-to-tail.  Drop it instead; its value
        // blob is freed with the other retired storage after the swap.
        dup_vals.push_back(pool_->get<std::uint64_t>(node + kNodeValOff));
        node = pool_->get<std::uint64_t>(node + kNodeNext);
        continue;
      }
      const std::uint64_t copy = pool_->alloc(kNodeKey + key.size());
      const std::uint64_t nslot =
          nbuckets_off + (fnv1a(key) % new_nbuckets) * 8;
      // Stage the copy, persist it as one unit, then link it.
      const NodeHeaderImage nh{pool_->get<std::uint64_t>(nslot),
                               pool_->get<std::uint64_t>(node + kNodeValOff),
                               pool_->get<std::uint64_t>(node + kNodeValSize),
                               pool_->get<std::uint64_t>(node + kNodeMeta),
                               static_cast<std::uint32_t>(key.size()), 0};
      pool_->write(copy, &nh, sizeof(nh));
      if (!key.empty()) {
        pool_->write(copy + kNodeKey, key.data(), key.size());
      }
      pool_->persist(copy, kNodeKey + key.size());
      pool_->set<std::uint64_t>(nslot, copy);
      node = pool_->get<std::uint64_t>(node + kNodeNext);
    }
  }

  {
    Transaction tx(*pool_);
    tx.snapshot(hoff_, sizeof(TableHeader));
    // Plain stores inside the transaction: commit() flushes the snapshotted
    // range once (a per-field set() here paid an extra flush+fence each and
    // made commit's own flush a checker-flagged duplicate).
    const std::uint64_t nb = new_nbuckets;
    pool_->write(hoff_ + offsetof(TableHeader, nbuckets), &nb, sizeof(nb));
    pool_->write(hoff_ + offsetof(TableHeader, buckets_off), &nbuckets_off,
                 sizeof(nbuckets_off));
    tx.commit();
  }

  for (std::uint64_t node : old_nodes) pool_->free(node);
  for (std::uint64_t val : dup_vals) {
    if (val != 0) pool_->free(val);
  }
  pool_->free(hdr.buckets_off);
  for (auto it = stripes_->rbegin(); it != stripes_->rend(); ++it) it->unlock();
}

// ---------------------------------------------------------------------------
// Inserter
// ---------------------------------------------------------------------------

HashTable::Inserter::Inserter(HashTable& t, std::string_view key,
                              std::uint64_t node_off, std::uint64_t val_off,
                              std::uint64_t val_size)
    : table_(&t),
      key_(key),
      node_off_(node_off),
      val_off_(val_off),
      val_size_(val_size) {}

HashTable::Inserter::Inserter(Inserter&& o) noexcept
    : table_(o.table_),
      key_(std::move(o.key_)),
      node_off_(o.node_off_),
      val_off_(o.val_off_),
      val_size_(o.val_size_),
      published_(o.published_),
      scope_open_(o.scope_open_) {
  o.published_ = true;  // the moved-from shell owns nothing
  o.scope_open_ = false;
  o.node_off_ = 0;
}

HashTable::Inserter::~Inserter() {
  if (published_ || node_off_ == 0) {
    if (scope_open_) table_->pool_->device().check_tx_abort();
    return;
  }
  try {
    table_->pool_->free(node_off_);
    if (val_off_ != 0) table_->pool_->free(val_off_);
  } catch (...) {
    // Reached during exception unwind (e.g. a scheduled crash fired before
    // publish).  Crash-point exceptions must not escape a destructor; the
    // allocator undo log reconciles interrupted frees on reopen.
  }
  if (scope_open_) {
    scope_open_ = false;
    table_->pool_->device().check_tx_abort();  // abandoned reservation
  }
}

void HashTable::Inserter::close_checker_scope() {
  if (!scope_open_) return;
  scope_open_ = false;
  table_->pool_->device().check_tx_abort();
}

void HashTable::Inserter::set_meta_high(std::uint32_t hi) {
  auto meta = table_->pool_->get<std::uint64_t>(node_off_ + kNodeMeta);
  meta = (meta & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(hi) << 32);
  if (published_) {
    table_->pool_->set<std::uint64_t>(node_off_ + kNodeMeta, meta);
  } else {
    // Still staged: publish() persists the whole header in one flush.
    table_->pool_->write(node_off_ + kNodeMeta, &meta, sizeof(meta));
  }
}

std::span<std::byte> HashTable::Inserter::value() {
  return table_->pool_->direct_write_span(val_off_, val_size_);
}

bool HashTable::Inserter::publish(bool keep_existing) {
  if (published_) return false;
  trace::Span span("ht.publish");
  // Make the entry durable before it becomes reachable: one CLWB pass over
  // the value blob and the node (header + key), then a single fence.
  if (val_size_ > 0) table_->pool_->flush(val_off_, val_size_);
  table_->pool_->flush(node_off_, kNodeKey + key_.size());
  table_->pool_->drain();
  if (val_size_ > 0) table_->pool_->check_publish(val_off_, val_size_);
  table_->pool_->check_publish(node_off_, kNodeKey + key_.size());
  bool head_linked = false;
  bool linked;
  try {
    linked = table_->link_replace(key_, node_off_, keep_existing, &head_linked);
  } catch (...) {
    // A fault in the post-publish tail (count bump, stale-entry unlink or
    // free) unwinds through here with the entry already durably reachable.
    // Marking it published keeps the destructor from freeing live storage —
    // the healing retry then supersedes the entry as a normal overwrite.
    if (head_linked) {
      published_ = true;
      if (scope_open_) {
        // Abort (not commit) the checker scope: the faulted tail may have
        // left a stored-but-reverted line the checker still sees as dirty,
        // and tx_commit would flag that as a violation of ours.
        scope_open_ = false;
        table_->pool_->device().check_tx_abort();
      }
    }
    throw;
  }
  published_ = true;  // either linked or already freed by link_replace
  if (scope_open_) {
    scope_open_ = false;
    table_->pool_->device().check_tx_commit();
  }
  if (linked) table_->maybe_grow();
  return linked;
}

void HashTable::maybe_grow() {
  if (!auto_grow_) return;
  const auto hdr = pool_->get<TableHeader>(hoff_);
  if (hdr.count > hdr.nbuckets * 4) rehash(hdr.nbuckets * 4);
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

void HashTable::publish_group(std::span<GroupPut> puts) {
  trace::Span span("ht.publish_group");
  // Live = staged reservations this call actually owns (skip moved-from
  // shells and anything already published).
  std::vector<GroupPut*> live;
  for (auto& p : puts) {
    if (p.ins == nullptr || p.ins->published_ || p.ins->node_off_ == 0) {
      continue;
    }
    if (p.ins->table_ != this) {
      throw PoolError("publish_group: Inserter from another table");
    }
    p.linked = false;
    live.push_back(&p);
  }
  if (live.empty()) return;

  // A batch stager closes each reservation's checker scope at stage time
  // (close_checker_scope()), because the scope stack is strictly LIFO and
  // this function publishes in an order unrelated to staging.  Direct
  // callers that skipped that get a fallback here: pop the still-open
  // scopes innermost-first (reverse staging order) before any publishing
  // work.  The staged lines stay dirty on purpose; check_publish() after
  // fence #1 verifies their durability instead.
  for (auto it = live.rbegin(); it != live.rend(); ++it) {
    (*it)->ins->close_checker_scope();
  }

  // Resolve duplicate keys within the batch before touching any chain:
  // replace-mode the last staged entry wins, keep_existing the first.
  // Losers are discarded without ever being linked — linking both copies
  // would leave which one a later erase/replace removes undefined.
  std::unordered_map<std::string_view, std::size_t> winner;
  std::vector<bool> discard(live.size(), false);
  for (std::size_t i = 0; i < live.size(); ++i) {
    auto [it, first] = winner.try_emplace(live[i]->ins->key_, i);
    if (!first) {
      if (live[i]->keep_existing) {
        discard[i] = true;
      } else {
        discard[it->second] = true;
        it->second = i;
      }
    }
  }

  // Lock the stripes of every winning key in ascending order (the order
  // rehash/for_each use), so the persistent chains are stable below us.
  std::vector<std::size_t> stripe_ids;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!discard[i]) stripe_ids.push_back(fnv1a(live[i]->ins->key_) % kStripes);
  }
  std::sort(stripe_ids.begin(), stripe_ids.end());
  stripe_ids.erase(std::unique(stripe_ids.begin(), stripe_ids.end()),
                   stripe_ids.end());
  // RAII so a crash-point exception thrown below cannot leak the locks;
  // released explicitly before maybe_grow(), which takes every stripe.
  struct StripeGuard {
    std::array<std::mutex, kStripes>* stripes;
    const std::vector<std::size_t>* ids;
    bool held = true;
    void release() {
      if (!held) return;
      held = false;
      for (auto it = ids->rbegin(); it != ids->rend(); ++it) {
        (*stripes)[*it].unlock();
      }
    }
    ~StripeGuard() { release(); }
  } stripe_guard{stripes_.get(), &stripe_ids};
  for (auto id : stripe_ids) (*stripes_)[id].lock();

  // Wire the winners into per-bucket shadow chains: each new node's next
  // pointer is a plain store that rides along in the phase-A flush of the
  // node itself.  keep_existing winners defer to an entry already in the
  // persistent chain and are discarded instead.
  struct Replace {
    std::uint64_t slot;
    std::uint64_t old_node;
  };
  std::map<std::uint64_t, std::uint64_t> orig_head;    // slot -> old head
  std::map<std::uint64_t, std::uint64_t> shadow_head;  // slot -> new head
  std::vector<Replace> replaces;
  std::vector<std::pair<std::uint64_t, std::size_t>> durable;
  std::int64_t fresh_links = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (discard[i]) continue;
    Inserter& ins = *live[i]->ins;
    const std::uint64_t slot = bucket_slot(ins.key_);
    auto oh = orig_head.find(slot);
    if (oh == orig_head.end()) {
      const auto head = pool_->get<std::uint64_t>(slot);
      oh = orig_head.emplace(slot, head).first;
      shadow_head.emplace(slot, head);
    }
    std::uint64_t old = oh->second;
    while (old != 0 && read_key(old) != ins.key_) {
      old = pool_->get<std::uint64_t>(old + kNodeNext);
    }
    if (old != 0 && live[i]->keep_existing) {
      discard[i] = true;
      continue;
    }
    std::uint64_t& head = shadow_head[slot];
    pool_->write(ins.node_off_ + kNodeNext, &head, sizeof(head));
    head = ins.node_off_;
    live[i]->linked = true;
    if (ins.val_size_ > 0) durable.emplace_back(ins.val_off_, ins.val_size_);
    durable.emplace_back(ins.node_off_, kNodeKey + ins.key_.size());
    if (old != 0) {
      replaces.push_back({slot, old});
    } else {
      ++fresh_links;
    }
  }

  if (!durable.empty()) {
    // Fence #1 — durability: every staged blob + node (including the next
    // pointers just written) becomes persistent under one coalesced CLWB
    // pass and a single drain.  Nothing is reachable yet, so a crash here
    // publishes nothing; the orphan chunks are mere leaks.
    {
      Transaction tx(*pool_);
      for (const auto& [off, len] : durable) tx.reserve(off, len);
      tx.commit();
    }
    for (auto* p : live) {
      if (!p->linked) continue;
      if (p->ins->val_size_ > 0) {
        pool_->check_publish(p->ins->val_off_, p->ins->val_size_);
      }
      pool_->check_publish(p->ins->node_off_,
                           kNodeKey + p->ins->key_.size());
    }

    // Fence #2 — visibility: one 8-byte head store per touched bucket plus
    // the count bump, all flushed together under a second single drain.
    std::vector<std::pair<std::uint64_t, std::size_t>> vis;
    for (const auto& [slot, head] : shadow_head) {
      if (head == orig_head.find(slot)->second) continue;  // all discarded
      pool_->write(slot, &head, sizeof(head));
      vis.emplace_back(slot, sizeof(head));
    }
    if (fresh_links != 0) {
      std::lock_guard clk(*count_mu_);
      auto hdr = pool_->get<TableHeader>(hoff_);
      const std::uint64_t count = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hdr.count) + fresh_links);
      pool_->write(hoff_ + offsetof(TableHeader, count), &count,
                   sizeof(count));
      vis.emplace_back(hoff_ + offsetof(TableHeader, count), sizeof(count));
    }
    flush_coalesced(*pool_, vis);
    pool_->drain();

    // The new chains are durable and visible; unlink the superseded
    // duplicates they shadow (same discipline as single publish(): a crash
    // in between leaves a benign shadowed duplicate the head entry wins).
    for (const auto& r : replaces) {
      std::uint64_t prev = 0;
      std::uint64_t cur = pool_->get<std::uint64_t>(r.slot);
      while (cur != 0 && cur != r.old_node) {
        prev = cur;
        cur = pool_->get<std::uint64_t>(cur + kNodeNext);
      }
      if (cur == 0) continue;
      const std::uint64_t old_next =
          pool_->get<std::uint64_t>(r.old_node + kNodeNext);
      if (prev == 0) {
        pool_->set<std::uint64_t>(r.slot, old_next);
      } else {
        pool_->set<std::uint64_t>(prev + kNodeNext, old_next);
      }
      const auto old_val = pool_->get<std::uint64_t>(r.old_node + kNodeValOff);
      pool_->free(r.old_node);
      if (old_val != 0) pool_->free(old_val);
    }
  }

  // Discarded reservations were never linked: plain frees suffice.
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!discard[i]) continue;
    Inserter& ins = *live[i]->ins;
    pool_->free(ins.node_off_);
    if (ins.val_off_ != 0) pool_->free(ins.val_off_);
  }

  stripe_guard.release();

  // Checker scopes were already closed (at stage time or by the fallback
  // above); only mark the reservations consumed so their destructors
  // neither free nor pop anything.
  for (auto* p : live) p->ins->published_ = true;

  if (fresh_links > 0) maybe_grow();
}

}  // namespace pmemcpy::obj
