#include <pmemcpy/obj/plist.hpp>

#include <cstring>
#include <vector>

namespace pmemcpy::obj {

namespace {

struct ListHeader {
  std::uint64_t head;        // node offset, 0 = empty
  std::uint64_t count;
  std::uint64_t value_size;
};

constexpr std::uint64_t kNodeNext = 0;
constexpr std::uint64_t kNodeValue = 8;

struct LockSlot {
  std::uint64_t generation;  // bumped on every (re)bind
  std::uint64_t owner;       // diagnostic only
};

}  // namespace

PList::PList(Pool& pool, std::uint64_t hoff) : pool_(&pool), hoff_(hoff) {}

PList PList::create(Pool& pool, std::size_t value_size) {
  const std::uint64_t hoff = pool.alloc(sizeof(ListHeader));
  ListHeader hdr{0, 0, value_size};
  pool.set(hoff, hdr);
  return PList(pool, hoff);
}

PList PList::open(Pool& pool, std::uint64_t header_off) {
  const auto hdr = pool.get<ListHeader>(header_off);
  if (hdr.value_size == 0) throw PoolError("PList::open: invalid header");
  return PList(pool, header_off);
}

std::size_t PList::value_size() const {
  return pool_->get<ListHeader>(hoff_).value_size;
}

std::size_t PList::size() const {
  return pool_->get<ListHeader>(hoff_).count;
}

void PList::push(const void* value) {
  std::lock_guard lk(*mu_);
  pool_->device().check_tx_begin("plist.push");
  const auto hdr = pool_->get<ListHeader>(hoff_);
  const std::uint64_t node = pool_->alloc(kNodeValue + hdr.value_size);
  // Stage next pointer + value, then persist the node as one contiguous
  // unit before it becomes reachable (one fence instead of two).
  pool_->write(node + kNodeNext, &hdr.head, sizeof(hdr.head));
  pool_->write(node + kNodeValue, value, hdr.value_size);
  pool_->persist(node, kNodeValue + hdr.value_size);
  pool_->check_publish(node, kNodeValue + hdr.value_size);
  // Single-pointer link-in.
  pool_->set<std::uint64_t>(hoff_ + offsetof(ListHeader, head), node);
  pool_->set<std::uint64_t>(hoff_ + offsetof(ListHeader, count),
                            hdr.count + 1);
  pool_->device().check_tx_commit();
}

bool PList::pop(void* out) {
  std::lock_guard lk(*mu_);
  const auto hdr = pool_->get<ListHeader>(hoff_);
  if (hdr.head == 0) return false;
  pool_->device().check_tx_begin("plist.pop");
  const auto next = pool_->get<std::uint64_t>(hdr.head + kNodeNext);
  pool_->read(hdr.head + kNodeValue, out, hdr.value_size);
  pool_->set<std::uint64_t>(hoff_ + offsetof(ListHeader, head), next);
  pool_->set<std::uint64_t>(hoff_ + offsetof(ListHeader, count),
                            hdr.count - 1);
  pool_->free(hdr.head);
  pool_->device().check_tx_commit();
  return true;
}

void PList::for_each(const std::function<void(const std::byte*)>& fn) const {
  std::lock_guard lk(*mu_);
  const auto hdr = pool_->get<ListHeader>(hoff_);
  std::vector<std::byte> value(hdr.value_size);
  std::uint64_t node = hdr.head;
  while (node != 0) {
    pool_->read(node + kNodeValue, value.data(), value.size());
    fn(value.data());
    node = pool_->get<std::uint64_t>(node + kNodeNext);
  }
}

PMutex::PMutex(Pool& pool, std::uint64_t off) : pool_(&pool), off_(off) {}

PMutex PMutex::create(Pool& pool) {
  const std::uint64_t off = pool.alloc(sizeof(LockSlot));
  pool.set(off, LockSlot{1, 0});
  return PMutex(pool, off);
}

PMutex PMutex::open(Pool& pool, std::uint64_t off) {
  // Re-binding invalidates any pre-crash owner: bump the generation.
  auto slot = pool.get<LockSlot>(off);
  if (slot.generation == 0) throw PoolError("PMutex::open: invalid slot");
  ++slot.generation;
  slot.owner = 0;
  pool.set(off, slot);
  return PMutex(pool, off);
}

void PMutex::lock() {
  runtime_->lock();
  // Record the owner for post-mortem diagnostics (charged metadata write).
  pool_->set<std::uint64_t>(
      off_ + offsetof(LockSlot, owner),
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

bool PMutex::try_lock() {
  if (!runtime_->try_lock()) return false;
  pool_->set<std::uint64_t>(
      off_ + offsetof(LockSlot, owner),
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return true;
}

void PMutex::unlock() {
  pool_->set<std::uint64_t>(off_ + offsetof(LockSlot, owner), 0);
  runtime_->unlock();
}

}  // namespace pmemcpy::obj
