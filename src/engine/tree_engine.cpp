// Hierarchical-layout engine: one DAX file per entry under a root
// directory.  Each file starts with the 8-byte meta word; writes land in a
// unique temp file that commit() renames over the final path (so concurrent
// same-key puts last-write-win instead of racing on one inode, and crashes
// never expose partial entries).  The payload region is reserved up front
// as a direct_write_span over the temp file's extent (reserve-then-
// serialize, DESIGN.md §12) and serialization lands straight in it;
// tree_finalize() then stores the meta word, persists the whole file in one
// coalesced flush pass, and renames it visible.
//
// The batch path defers the persist+publish+rename of each staged entry to
// Batch::commit().  The filesystem already fences per-file, so unlike the
// table engine there is no cross-entry fence coalescing to win here —
// batching only buys the deferred-visibility semantics of the contract.
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <atomic>
#include <cstdio>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace pmemcpy::engine {

namespace {

/// Each entry file starts with its meta word.
constexpr std::size_t kTreeHeader = 8;

/// Process-wide temp-name counter: rank threads share the filesystem, so
/// per-store counters would collide.
std::atomic<std::uint64_t> g_tmp_seq{0};

/// A fully written, not yet published entry: everything finalize() needs.
struct TreePending {
  fs::Mapping mapping;
  std::string tmp_path;
  std::string final_path;
  std::uint64_t meta;
  std::size_t size;
  bool keep_existing;
  std::uint32_t crc = 0;
};

/// Persist + publish the file and rename it over the final path.
void tree_finalize(fs::FileSystem& fs, TreePending& p) {
  const std::uint64_t meta =
      (p.meta & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(p.crc) << 32);
  p.mapping.store(0, &meta, sizeof(meta));
  p.mapping.persist(0, kTreeHeader + p.size);
  p.mapping.check_publish(0, kTreeHeader + p.size);
  fs.rename(p.tmp_path, p.final_path, /*replace=*/!p.keep_existing);
}

void tree_discard(fs::FileSystem& fs, const TreePending& p) {
  if (fs.exists(p.tmp_path)) fs.remove(p.tmp_path);
}

/// Reserved destination for one entry's payload (reserve-then-serialize,
/// DESIGN.md §12): a SpanSink straight over the file's extent when the
/// payload range is physically contiguous (the common case — entry files
/// are created in fresh extents), else a MappingSink streaming through the
/// runs.  Both land every byte in PMEM directly; only the span variant can
/// also hand out reserved_span().
class TreeDest {
 public:
  TreeDest(fs::Mapping& m, std::size_t size) {
    try {
      span_ = m.direct_write_span(kTreeHeader, size);
      span_sink_.emplace(span_);
    } catch (const fs::FsError&) {
      map_sink_.emplace(m, kTreeHeader);
    }
  }

  serial::Sink& sink() {
    return span_sink_ ? static_cast<serial::Sink&>(*span_sink_) : *map_sink_;
  }
  [[nodiscard]] std::span<std::byte> span() const noexcept { return span_; }

 private:
  std::span<std::byte> span_;
  std::optional<serial::SpanSink> span_sink_;
  std::optional<serial::MappingSink> map_sink_;
};

class TreePut final : public Engine::PutHandle {
 public:
  TreePut(fs::FileSystem& fs, TreePending pending)
      : fs_(&fs), pending_(std::move(pending)),
        dest_(pending_.mapping, pending_.size) {}

  ~TreePut() override {
    if (!committed_) tree_discard(*fs_, pending_);
  }

  serial::Sink& sink() override { return dest_.sink(); }
  std::span<std::byte> reserved_span() override { return dest_.span(); }

  void commit(std::uint32_t payload_crc) override {
    if (committed_) return;
    pending_.crc = payload_crc;
    tree_finalize(*fs_, pending_);
    committed_ = true;
  }

 private:
  fs::FileSystem* fs_;
  TreePending pending_;
  TreeDest dest_;
  bool committed_ = false;
};

class TreeEntry final : public Engine::Entry {
 public:
  explicit TreeEntry(fs::Mapping mapping) : mapping_(std::move(mapping)) {
    std::uint64_t meta = 0;
    // Header load is metadata-sized; charge it as such.
    mapping_.load(0, &meta, sizeof(meta));
    info_ = EntryInfo{mapping_.size() - kTreeHeader, meta};
  }

  EntryInfo info() const override { return info_; }

  void read(std::uint64_t off, void* dst, std::size_t len) override {
    if (off + len > info_.size) {
      throw serial::SerialError("entry read out of range");
    }
    mapping_.load(kTreeHeader + off, dst, len);
  }

  std::span<const std::byte> stored_span(std::size_t charge_bytes) override {
    try {
      // Media-probed direct view over the payload extent; the consumption
      // charge covers only the slice the caller will decode.
      auto s = mapping_.direct_read_span(kTreeHeader, info_.size);
      mapping_.charge_load(charge_bytes);
      return s;
    } catch (const fs::FsError&) {
      // Fragmented file: fall back to a charged bounce copy (rare — entry
      // files are written once into fresh extents).  The bounce is a DRAM
      // pass the read audit must see, but under its own exempted counter:
      // it is the engine's fallback, not a staging decision above it.
      if (bounce_.empty() && info_.size > 0) {
        bounce_.resize(info_.size);
        mapping_.load(kTreeHeader, bounce_.data(), info_.size);
        trace::count(trace::Counter::kCopyReadBounceBytes, info_.size);
      } else {
        mapping_.charge_load(charge_bytes);
      }
      return {bounce_.data(), info_.size};
    }
  }

 private:
  fs::Mapping mapping_;
  EntryInfo info_;
  std::vector<std::byte> bounce_;
};

/// Shared between a TreeBatch and its handles, so a handle committed after
/// the batch died parks its entry here until the state dies (discard).
struct TreeBatchState {
  fs::FileSystem* fs;
  std::vector<TreePending> staged;

  ~TreeBatchState() {
    for (const auto& p : staged) tree_discard(*fs, p);
  }
};

class TreeBatchPut final : public Engine::PutHandle {
 public:
  TreeBatchPut(std::shared_ptr<TreeBatchState> st, TreePending pending)
      : st_(std::move(st)), pending_(std::move(pending)),
        dest_(pending_.mapping, pending_.size) {}

  ~TreeBatchPut() override {
    if (!staged_) tree_discard(*st_->fs, pending_);
  }

  serial::Sink& sink() override { return dest_.sink(); }
  std::span<std::byte> reserved_span() override { return dest_.span(); }

  void commit(std::uint32_t payload_crc) override {
    if (staged_) return;
    pending_.crc = payload_crc;
    st_->staged.push_back(std::move(pending_));
    staged_ = true;
  }

 private:
  std::shared_ptr<TreeBatchState> st_;
  TreePending pending_;
  TreeDest dest_;
  bool staged_ = false;
};

TreePending make_pending(fs::FileSystem& fs, const std::string& root,
                         const std::string& key, std::size_t size,
                         std::uint64_t meta, bool keep_existing,
                         bool map_sync) {
  const std::string path = root + "/" + key;
  const std::size_t slash = path.rfind('/');
  if (slash > 0 && slash != std::string::npos) {
    const std::string dir = path.substr(0, slash);
    if (!fs.exists(dir)) fs.mkdirs(dir);
  }
  // Fixed-width sequence so the temp name's LENGTH never depends on how
  // many temps this process made before: variable-length names leak the
  // process history into directory-entry byte counts and break run-to-run
  // counter determinism (tests/determinism_test.cpp).
  char seq[24];
  std::snprintf(seq, sizeof(seq), ".tmp.%012llu",
                static_cast<unsigned long long>(
                    g_tmp_seq.fetch_add(1, std::memory_order_relaxed)));
  const std::string tmp = path + seq;
  auto mapping = fs.create_mapped(tmp, kTreeHeader + size, map_sync);
  return TreePending{std::move(mapping), tmp,  path,
                     meta,               size, keep_existing};
}

class TreeBatch final : public Engine::Batch {
 public:
  TreeBatch(fs::FileSystem& fs, std::string root, bool map_sync)
      : root_(std::move(root)), map_sync_(map_sync),
        st_(std::make_shared<TreeBatchState>()) {
    st_->fs = &fs;
  }

  std::unique_ptr<Engine::PutHandle> put(const std::string& key,
                                         std::size_t size, std::uint64_t meta,
                                         bool keep_existing) override {
    trace::Span span("engine.put");
    trace::count(trace::Counter::kEnginePuts);
    return std::make_unique<TreeBatchPut>(
        st_, make_pending(*st_->fs, root_, key, size, meta, keep_existing,
                          map_sync_));
  }

  void commit() override {
    trace::Span span("engine.batch_commit");
    trace::count(trace::Counter::kBatchCommits);
    trace::observe(trace::Hist::kBatchSize,
                   static_cast<double>(st_->staged.size()));
    for (auto& p : st_->staged) tree_finalize(*st_->fs, p);
    st_->staged.clear();
  }

  std::size_t staged() const override { return st_->staged.size(); }

 private:
  std::string root_;
  bool map_sync_;
  std::shared_ptr<TreeBatchState> st_;
};

class TreeEngine final : public Engine {
 public:
  TreeEngine(fs::FileSystem& fs, std::string root, bool map_sync)
      : fs_(&fs), root_(std::move(root)), map_sync_(map_sync) {
    fs_->mkdirs(root_);
  }

  std::unique_ptr<PutHandle> put(const std::string& key, std::size_t size,
                                 std::uint64_t meta,
                                 bool keep_existing) override {
    trace::Span span("engine.put");
    trace::count(trace::Counter::kEnginePuts);
    return std::make_unique<TreePut>(
        *fs_, make_pending(*fs_, root_, key, size, meta, keep_existing,
                           map_sync_));
  }

  std::unique_ptr<Entry> find(const std::string& key) override {
    trace::Span span("engine.get");
    trace::count(trace::Counter::kEngineGets);
    const std::string path = root_ + "/" + key;
    if (!fs_->exists(path)) return nullptr;
    auto f = fs_->open(path, fs::OpenMode::kRead);
    return std::make_unique<TreeEntry>(fs_->map(f, map_sync_));
  }

  bool erase(const std::string& key) override {
    const std::string path = root_ + "/" + key;
    if (!fs_->exists(path)) return false;
    fs_->remove(path);
    return true;
  }

  void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn)
      override {
    walk("", root_, prefix, fn);
  }

  std::unique_ptr<Batch> begin_batch() override {
    return std::make_unique<TreeBatch>(*fs_, root_, map_sync_);
  }

 private:
  /// Recursive directory walk visiting every entry whose key starts with
  /// @p prefix.  Descends only into directories that can contain matches.
  void walk(const std::string& key_so_far, const std::string& dir,
            const std::string& prefix,
            const std::function<void(const std::string&, const EntryInfo&)>&
                fn) {
    if (!fs_->exists(dir)) return;
    for (const auto& name : fs_->list(dir)) {
      if (name.find(".tmp.") != std::string::npos) continue;  // in-flight
      const std::string key =
          key_so_far.empty() ? name : key_so_far + "/" + name;
      const std::string path = dir + "/" + name;
      if (fs_->is_dir(path)) {
        const std::string key_dir = key + "/";
        const std::size_t n = std::min(key_dir.size(), prefix.size());
        if (key_dir.compare(0, n, prefix, 0, n) == 0) {
          walk(key, path, prefix, fn);
        }
        continue;
      }
      if (key.size() < prefix.size() ||
          key.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      auto f = fs_->open(path, fs::OpenMode::kRead);
      auto m = fs_->map(f, map_sync_);
      std::uint64_t meta = 0;
      m.load(0, &meta, sizeof(meta));
      fn(key, EntryInfo{m.size() - kTreeHeader, meta});
    }
  }

  fs::FileSystem* fs_;
  std::string root_;
  bool map_sync_;
};

}  // namespace

std::unique_ptr<Engine> make_tree_engine(fs::FileSystem& fs, std::string root,
                                         bool map_sync) {
  return std::make_unique<TreeEngine>(fs, std::move(root), map_sync);
}

}  // namespace pmemcpy::engine
