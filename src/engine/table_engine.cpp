// Flat-layout engine: entries live in one obj::HashTable inside one
// obj::Pool.  The batch path is where the group-commit win comes from —
// every staged reservation is published by HashTable::publish_group under
// two fences total (see DESIGN.md §8).
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/obj/hashtable.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <utility>
#include <vector>

namespace pmemcpy::engine {

namespace {

class TablePut final : public Engine::PutHandle {
 public:
  TablePut(obj::HashTable::Inserter ins, bool keep_existing)
      : ins_(std::move(ins)),
        // value() charges the reservation's DAX write once; cache the span
        // so sink() and reserved_span() share that single charge.
        span_(ins_.value()),
        sink_(span_),
        keep_existing_(keep_existing) {}

  serial::Sink& sink() override { return sink_; }
  std::span<std::byte> reserved_span() override { return span_; }
  void commit(std::uint32_t payload_crc) override {
    ins_.set_meta_high(payload_crc);
    // In keep mode `false` means an existing entry won the race and was
    // kept — exactly what the caller asked for, so not an error.
    (void)ins_.publish(keep_existing_);
  }

 private:
  obj::HashTable::Inserter ins_;
  std::span<std::byte> span_;
  serial::SpanSink sink_;
  bool keep_existing_;
};

class TableEntry final : public Engine::Entry {
 public:
  TableEntry(std::shared_ptr<obj::Pool> pool, obj::ValueRef ref)
      : pool_(std::move(pool)), ref_(ref) {}

  EntryInfo info() const override { return {ref_.val_size, ref_.meta}; }

  void read(std::uint64_t off, void* dst, std::size_t len) override {
    if (off + len > ref_.val_size) {
      throw serial::SerialError("entry read out of range");
    }
    pool_->read(ref_.val_off + off, dst, len);
  }

  std::span<const std::byte> stored_span(std::size_t charge_bytes) override {
    // Zero-copy bypasses the checked read path, so probe for injected
    // media errors explicitly before handing out the span.
    pool_->verify_media(ref_.val_off, ref_.val_size);
    pool_->charge_read(charge_bytes);
    return {pool_->direct(ref_.val_off), ref_.val_size};
  }

  Provenance provenance() const override {
    return {0, pool_->base() + ref_.val_off};
  }

 private:
  std::shared_ptr<obj::Pool> pool_;
  obj::ValueRef ref_;
};

/// Staged reservations shared between a TableBatch and its PutHandles (the
/// handles outlive neither the entries they stage nor orphan them: a handle
/// committed after the batch died parks its Inserter here until the state
/// itself dies, which discards it).
struct TableBatchState {
  struct Staged {
    obj::HashTable::Inserter ins;
    bool keep_existing;
  };
  std::shared_ptr<obj::HashTable> table;
  std::vector<Staged> staged;
};

class TableBatchPut final : public Engine::PutHandle {
 public:
  TableBatchPut(std::shared_ptr<TableBatchState> st,
                obj::HashTable::Inserter ins, bool keep_existing)
      : st_(std::move(st)),
        ins_(std::move(ins)),
        span_(ins_.value()),
        sink_(span_),
        keep_existing_(keep_existing) {}

  serial::Sink& sink() override { return sink_; }
  std::span<std::byte> reserved_span() override { return span_; }
  void commit(std::uint32_t payload_crc) override {
    if (staged_) return;
    ins_.set_meta_high(payload_crc);
    // The checker's scope stack is LIFO per thread: pop this put's scope
    // now, while it is still innermost — the group commit publishes staged
    // entries in an unrelated order (and possibly across shards).
    ins_.close_checker_scope();
    st_->staged.push_back({std::move(ins_), keep_existing_});
    staged_ = true;
  }

 private:
  std::shared_ptr<TableBatchState> st_;
  obj::HashTable::Inserter ins_;
  std::span<std::byte> span_;
  serial::SpanSink sink_;
  bool keep_existing_;
  bool staged_ = false;
};

class TableBatch final : public Engine::Batch {
 public:
  explicit TableBatch(std::shared_ptr<obj::HashTable> table)
      : st_(std::make_shared<TableBatchState>()) {
    st_->table = std::move(table);
  }

  std::unique_ptr<Engine::PutHandle> put(const std::string& key,
                                         std::size_t size, std::uint64_t meta,
                                         bool keep_existing) override {
    trace::Span span("engine.put");
    trace::count(trace::Counter::kEnginePuts);
    return std::make_unique<TableBatchPut>(
        st_, st_->table->reserve(key, size, meta), keep_existing);
  }

  void commit() override {
    trace::Span span("engine.batch_commit");
    trace::count(trace::Counter::kBatchCommits);
    trace::observe(trace::Hist::kBatchSize,
                   static_cast<double>(st_->staged.size()));
    std::vector<obj::HashTable::GroupPut> group;
    group.reserve(st_->staged.size());
    for (auto& s : st_->staged) {
      group.push_back({&s.ins, s.keep_existing, false});
    }
    st_->table->publish_group(group);
    st_->staged.clear();  // published Inserters destruct as no-ops
  }

  std::size_t staged() const override { return st_->staged.size(); }

 private:
  std::shared_ptr<TableBatchState> st_;
};

class TableEngine final : public Engine {
 public:
  TableEngine(std::shared_ptr<obj::Pool> pool,
              std::shared_ptr<obj::HashTable> table)
      : pool_(std::move(pool)), table_(std::move(table)) {}

  std::unique_ptr<PutHandle> put(const std::string& key, std::size_t size,
                                 std::uint64_t meta,
                                 bool keep_existing) override {
    trace::Span span("engine.put");
    trace::count(trace::Counter::kEnginePuts);
    return std::make_unique<TablePut>(table_->reserve(key, size, meta),
                                      keep_existing);
  }

  std::unique_ptr<Entry> find(const std::string& key) override {
    trace::Span span("engine.get");
    trace::count(trace::Counter::kEngineGets);
    auto ref = table_->find(key);
    if (!ref) return nullptr;
    return std::make_unique<TableEntry>(pool_, *ref);
  }

  bool erase(const std::string& key) override { return table_->erase(key); }

  void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn)
      override {
    table_->for_each_prefix(
        prefix, [&](std::string_view key, const obj::ValueRef& ref) {
          fn(std::string(key), EntryInfo{ref.val_size, ref.meta});
        });
  }

  std::unique_ptr<Batch> begin_batch() override {
    return std::make_unique<TableBatch>(table_);
  }

  bool quarantine(std::size_t dev_off, std::size_t len) override {
    // Translate the device-absolute range into this shard's pool; ranges
    // outside the pool belong to another shard.
    if (len == 0) return false;
    const std::size_t base = pool_->base();
    if (dev_off < base || dev_off - base >= pool_->size() ||
        len > pool_->size() - (dev_off - base)) {
      return false;
    }
    return pool_->quarantine(dev_off - base, len).is_ok();
  }

 private:
  std::shared_ptr<obj::Pool> pool_;
  std::shared_ptr<obj::HashTable> table_;
};

}  // namespace

std::unique_ptr<Engine> make_table_engine(
    std::shared_ptr<obj::Pool> pool, std::shared_ptr<obj::HashTable> table) {
  return std::make_unique<TableEngine>(std::move(pool), std::move(table));
}

}  // namespace pmemcpy::engine
