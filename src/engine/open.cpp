// Collective engine-open paths: rank 0 creates the persistent containers
// (shard pools + tables, or the tree root directory), a barrier makes them
// visible, then every rank binds to the shared process-local instances.
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/par/comm.hpp>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace pmemcpy::engine {

namespace {

std::string shard_pool_name(const PoolEngineOptions& opts, std::size_t k,
                            std::size_t nshards) {
  if (nshards == 1) return opts.name;
  return opts.name + ".s" + std::to_string(k);
}

/// Option field if set (>= 0), else the env var if parseable, else @p fallback.
int knob_or_env(int opt, const char* env, int fallback) {
  if (opt >= 0) return opt;
  if (const char* v = std::getenv(env); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  return fallback;
}

}  // namespace

std::unique_ptr<Engine> open_pool_engine(PmemNode& node,
                                         const PoolEngineOptions& opts,
                                         par::Comm* comm) {
  const std::size_t nshards = opts.shards == 0 ? 1 : opts.shards;
  const int nranks = comm ? comm->size() : 1;
  const bool leader = comm == nullptr || comm->rank() == 0;
  const int contenders = static_cast<int>(
      (static_cast<std::size_t>(nranks) + nshards - 1) / nshards);
  const std::size_t shard_buckets =
      std::max<std::size_t>(64, opts.nbuckets / nshards);
  obj::PoolOptions popts;
  popts.map_sync = opts.map_sync;

  if (leader) {
    // "The rest of the pool area" must be split up front: create_pool
    // interprets size 0 as everything remaining, which would starve shards
    // 1..S-1.
    std::size_t per_shard = opts.pool_size;
    if (per_shard == 0 && nshards > 1) {
      per_shard = node.pool_area_available() / nshards / 4096 * 4096;
    }
    for (std::size_t k = 0; k < nshards; ++k) {
      auto pool = node.open_or_create_pool(shard_pool_name(opts, k, nshards),
                                           per_shard, popts);
      pool->set_map_sync(opts.map_sync);
      if (pool->root() == 0) {
        auto table = obj::HashTable::create(*pool, shard_buckets);
        pool->set_root(table.header_off());
      }
    }
  }
  if (comm) comm->barrier();

  std::vector<std::unique_ptr<Engine>> shards;
  shards.reserve(nshards);
  // Allocator hot-path defaults (DESIGN.md §14): engines arm magazines and
  // metadata stripes unless the caller or environment says otherwise.  Raw
  // Pool users keep the classic fully-serialized semantics (K=0, S=1).
  const int mag = knob_or_env(opts.magazine_size, "PMEMCPY_MAGAZINE_SIZE", 8);
  const int stripes = knob_or_env(opts.alloc_stripes, "PMEMCPY_ALLOC_STRIPES",
                                  8);
  for (std::size_t k = 0; k < nshards; ++k) {
    auto pool = node.open_pool(shard_pool_name(opts, k, nshards), popts);
    pool->set_expected_contenders(contenders);
    pool->set_magazine_size(mag);
    pool->set_alloc_stripes(std::max(1, stripes));
    auto table = node.table_for(pool, pool->root());
    table->set_auto_grow(opts.auto_grow);
    shards.push_back(make_table_engine(std::move(pool), std::move(table)));
  }
  return make_sharded_engine(std::move(shards));
}

std::unique_ptr<Engine> open_tree_engine(PmemNode& node,
                                         const std::string& root,
                                         bool map_sync, par::Comm* comm) {
  const bool leader = comm == nullptr || comm->rank() == 0;
  if (leader && !node.fs().exists(root)) {
    node.fs().mkdirs(root);
  }
  if (comm) comm->barrier();
  return make_tree_engine(node.fs(), root, map_sync);
}

}  // namespace pmemcpy::engine
