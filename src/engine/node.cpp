#include <pmemcpy/core/node.hpp>

#include <cstring>

namespace pmemcpy {

namespace {

constexpr std::uint64_t kRegMagic = 0x504f4f4c52454731ull;  // "POOLREG1"
constexpr std::size_t kRegNameLen = 48;
constexpr std::size_t kRegMaxPools = 62;
constexpr std::size_t kRegOff = 64;

struct RegHeaderDisk {
  std::uint64_t magic;
  std::uint64_t count;
};
struct RegEntryDisk {
  char name[kRegNameLen];
  std::uint64_t base;
  std::uint64_t size;
};

std::atomic<PmemNode*> g_default_node{nullptr};

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace

PmemNode::PmemNode() : PmemNode(Options{}) {}

PmemNode::PmemNode(Options opts)
    : opts_(opts),
      dev_(std::make_unique<pmem::Device>(opts.capacity, opts.crash_shadow)) {
  pool_area_begin_ = round_up(
      kRegOff + sizeof(RegHeaderDisk) + kRegMaxPools * sizeof(RegEntryDisk),
      4096);
  pool_area_end_ = round_up(
      static_cast<std::size_t>(static_cast<double>(opts.capacity) *
                               opts.pool_fraction),
      4096);
  if (pool_area_end_ < pool_area_begin_) pool_area_end_ = pool_area_begin_;
  store_registry();  // empty registry
  fs_.emplace(fs::FileSystem::format(*dev_, pool_area_end_,
                                     opts.capacity - pool_area_end_));
}

void PmemNode::load_registry() {
  RegHeaderDisk hdr{};
  dev_->read(kRegOff, &hdr, sizeof(hdr));
  registry_.clear();
  if (hdr.magic != kRegMagic) return;
  for (std::uint64_t i = 0; i < hdr.count && i < kRegMaxPools; ++i) {
    RegEntryDisk e{};
    dev_->read(kRegOff + sizeof(hdr) + i * sizeof(e), &e, sizeof(e));
    RegistryEntry entry;
    entry.name.assign(e.name, strnlen(e.name, kRegNameLen));
    entry.base = e.base;
    entry.size = e.size;
    registry_.push_back(std::move(entry));
  }
}

void PmemNode::store_registry() {
  RegHeaderDisk hdr{kRegMagic, registry_.size()};
  dev_->write(kRegOff, &hdr, sizeof(hdr));
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    RegEntryDisk e{};
    std::memset(&e, 0, sizeof(e));
    std::strncpy(e.name, registry_[i].name.c_str(), kRegNameLen - 1);
    e.base = registry_[i].base;
    e.size = registry_[i].size;
    dev_->write(kRegOff + sizeof(hdr) + i * sizeof(e), &e, sizeof(e));
  }
  // Persist only the written prefix: entries past hdr.count are never read,
  // and flushing all kRegMaxPools slots pays for untouched cachelines.
  dev_->persist(kRegOff,
                sizeof(hdr) + registry_.size() * sizeof(RegEntryDisk));
}

std::optional<PmemNode::RegistryEntry> PmemNode::find_pool(
    const std::string& name) const {
  for (const auto& e : registry_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::shared_ptr<obj::Pool> PmemNode::create_pool(const std::string& name,
                                                 std::size_t size,
                                                 obj::PoolOptions opts) {
  std::lock_guard lk(mu_);
  if (name.size() >= kRegNameLen) {
    throw obj::PoolError("pool name too long: " + name);
  }
  if (find_pool(name)) throw obj::PoolError("pool exists: " + name);
  if (registry_.size() >= kRegMaxPools) {
    throw obj::PoolError("pool registry full");
  }
  std::uint64_t base = pool_area_begin_;
  for (const auto& e : registry_) base = std::max(base, e.base + e.size);
  if (size == 0) size = pool_area_end_ - base;
  if (base + size > pool_area_end_) {
    throw obj::PoolError("pool area exhausted");
  }
  auto pool = std::make_shared<obj::Pool>(
      obj::Pool::create(*dev_, base, size, opts));
  registry_.push_back(RegistryEntry{name, base, size});
  store_registry();
  open_pools_[name] = pool;
  return pool;
}

std::shared_ptr<obj::Pool> PmemNode::open_pool(const std::string& name,
                                               obj::PoolOptions opts) {
  std::lock_guard lk(mu_);
  if (auto it = open_pools_.find(name); it != open_pools_.end()) {
    return it->second;
  }
  const auto entry = find_pool(name);
  if (!entry) throw obj::PoolError("no such pool: " + name);
  auto pool =
      std::make_shared<obj::Pool>(obj::Pool::open(*dev_, entry->base, opts));
  open_pools_[name] = pool;
  return pool;
}

std::shared_ptr<obj::Pool> PmemNode::open_or_create_pool(
    const std::string& name, std::size_t size, obj::PoolOptions opts) {
  {
    std::lock_guard lk(mu_);
    if (auto it = open_pools_.find(name); it != open_pools_.end()) {
      return it->second;
    }
  }
  if (has_pool(name)) return open_pool(name, opts);
  return create_pool(name, size, opts);
}

bool PmemNode::has_pool(const std::string& name) {
  std::lock_guard lk(mu_);
  return find_pool(name).has_value();
}

std::size_t PmemNode::pool_area_available() {
  std::lock_guard lk(mu_);
  std::uint64_t base = pool_area_begin_;
  for (const auto& e : registry_) base = std::max(base, e.base + e.size);
  return pool_area_end_ - base;
}

std::shared_ptr<obj::HashTable> PmemNode::table_for(
    const std::shared_ptr<obj::Pool>& pool, std::uint64_t header_off) {
  std::lock_guard lk(mu_);
  const auto key = std::make_pair(pool.get(), header_off);
  if (auto it = tables_.find(key); it != tables_.end()) return it->second;
  auto table = std::make_shared<obj::HashTable>(
      obj::HashTable::open(*pool, header_off));
  tables_[key] = table;
  return table;
}

void PmemNode::remount() {
  std::lock_guard lk(mu_);
  tables_.clear();
  open_pools_.clear();
  load_registry();
  fs_.emplace(fs::FileSystem::mount(*dev_, pool_area_end_));
}

PmemNode* PmemNode::default_node() noexcept {
  return g_default_node.load(std::memory_order_acquire);
}

void PmemNode::set_default(PmemNode* node) noexcept {
  g_default_node.store(node, std::memory_order_release);
}

}  // namespace pmemcpy
