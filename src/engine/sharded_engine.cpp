// Sharded composition: hash-partition keys across S child engines.  Each
// shard is a complete engine over its own pool (its own allocator lock, tx
// lanes and hashtable), so S ranks writing different keys no longer
// serialize on one pool's metadata path — the scaling bottleneck
// Config::shards exists to remove.
//
// Routing must stay stable across runs (a key's shard is part of the
// persistent layout), and must be independent of the hashtable's own
// bucket hash: bucketing by the same h the shard was chosen with would
// leave every shard using only 1/S of its buckets.  splitmix64 over the
// key hash gives an independent, stable second hash.
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <utility>
#include <vector>

namespace pmemcpy::engine {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class ShardedEngine;

/// Forwards to a shard's entry, stamping the shard index into the
/// provenance so repair/scrub diagnostics survive the composition.
class ShardedEntry final : public Engine::Entry {
 public:
  ShardedEntry(std::unique_ptr<Engine::Entry> inner, int shard)
      : inner_(std::move(inner)), shard_(shard) {}

  EntryInfo info() const override { return inner_->info(); }
  void read(std::uint64_t off, void* dst, std::size_t len) override {
    inner_->read(off, dst, len);
  }
  std::span<const std::byte> stored_span(std::size_t charge_bytes) override {
    return inner_->stored_span(charge_bytes);
  }
  Provenance provenance() const override {
    auto p = inner_->provenance();
    p.shard = shard_;
    return p;
  }

 private:
  std::unique_ptr<Engine::Entry> inner_;
  int shard_;
};

/// Fans staged puts out into lazily-created per-shard sub-batches; commit
/// commits them shard by shard (each shard pays its own two-fence group
/// commit, so the total is 2 * touched_shards fences — still independent of
/// the number of puts).
class ShardedBatch final : public Engine::Batch {
 public:
  explicit ShardedBatch(std::vector<std::unique_ptr<Engine>>* shards)
      : shards_(shards), sub_(shards->size()) {}

  std::unique_ptr<Engine::PutHandle> put(const std::string& key,
                                         std::size_t size, std::uint64_t meta,
                                         bool keep_existing) override {
    const std::size_t s = splitmix64(fnv1a(key)) % sub_.size();
    if (!sub_[s]) sub_[s] = (*shards_)[s]->begin_batch();
    return sub_[s]->put(key, size, meta, keep_existing);
  }

  void commit() override {
    // Counters come from the per-shard sub-batches; this span only records
    // the fan-out so the trace shows one sharded commit nesting S children.
    trace::Span span("engine.sharded_commit");
    for (auto& b : sub_) {
      if (b) b->commit();
    }
  }

  std::size_t staged() const override {
    std::size_t n = 0;
    for (const auto& b : sub_) {
      if (b) n += b->staged();
    }
    return n;
  }

 private:
  std::vector<std::unique_ptr<Engine>>* shards_;
  std::vector<std::unique_ptr<Engine::Batch>> sub_;
};

class ShardedEngine final : public Engine {
 public:
  explicit ShardedEngine(std::vector<std::unique_ptr<Engine>> shards)
      : shards_(std::move(shards)) {}

  std::unique_ptr<PutHandle> put(const std::string& key, std::size_t size,
                                 std::uint64_t meta,
                                 bool keep_existing) override {
    return shard(key).put(key, size, meta, keep_existing);
  }

  std::unique_ptr<Entry> find(const std::string& key) override {
    const std::size_t s = splitmix64(fnv1a(key)) % shards_.size();
    auto entry = shards_[s]->find(key);
    if (!entry) return nullptr;
    return std::make_unique<ShardedEntry>(std::move(entry),
                                          static_cast<int>(s));
  }

  bool erase(const std::string& key) override { return shard(key).erase(key); }

  void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn)
      override {
    // A prefix spans shards (routing hashes whole keys), so visit each in
    // turn; within a shard the child engine's iteration order applies.
    for (auto& s : shards_) s->for_each_prefix(prefix, fn);
  }

  std::unique_ptr<Batch> begin_batch() override {
    return std::make_unique<ShardedBatch>(&shards_);
  }

  bool quarantine(std::size_t dev_off, std::size_t len) override {
    // Device ranges are disjoint across shard pools; the owner accepts.
    for (auto& s : shards_) {
      if (s->quarantine(dev_off, len)) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] Engine& shard(const std::string& key) {
    return *shards_[splitmix64(fnv1a(key)) % shards_.size()];
  }

  std::vector<std::unique_ptr<Engine>> shards_;
};

}  // namespace

std::unique_ptr<Engine> make_sharded_engine(
    std::vector<std::unique_ptr<Engine>> shards) {
  if (shards.empty()) {
    throw std::invalid_argument("make_sharded_engine: no shards");
  }
  if (shards.size() == 1) return std::move(shards[0]);
  return std::make_unique<ShardedEngine>(std::move(shards));
}

}  // namespace pmemcpy::engine
