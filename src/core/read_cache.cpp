#include <pmemcpy/core/read_cache.hpp>

#include <pmemcpy/sim/context.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstring>

namespace pmemcpy::core {

const ReadCache::Blob* ReadCache::find(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    trace::count(trace::Counter::kReadCacheMisses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  trace::count(trace::Counter::kReadCacheHits);
  trace::count(trace::Counter::kReadCacheHitBytes,
               it->second->second.bytes.size());
  return &it->second->second;
}

void ReadCache::insert(const std::string& key,
                       std::span<const std::byte> blob, std::uint64_t meta) {
  if (blob.size() > capacity_) return;
  // Replacing an existing entry is not an invalidation — the fresh bytes
  // supersede in place, so only adjust the byte budget.
  if (const auto it = map_.find(key); it != map_.end()) {
    bytes_ -= it->second->second.bytes.size();
    lru_.erase(it->second);
    map_.erase(it);
  }
  while (bytes_ + blob.size() > capacity_) {
    auto& victim = lru_.back();
    bytes_ -= victim.second.bytes.size();
    map_.erase(victim.first);
    lru_.pop_back();
    trace::count(trace::Counter::kReadCacheEvictions);
  }
  Blob b;
  b.bytes.assign(blob.begin(), blob.end());
  b.meta = meta;
  // The fill is a real DRAM copy: charge it like any other staging pass so
  // caching shows up honestly in bench numbers.
  sim::ctx().charge_cpu_copy(blob.size());
  trace::count(trace::Counter::kReadCacheFillBytes, blob.size());
  lru_.emplace_front(key, std::move(b));
  map_.emplace(key, lru_.begin());
  bytes_ += blob.size();
}

void ReadCache::invalidate(const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_ -= it->second->second.bytes.size();
  lru_.erase(it->second);
  map_.erase(it);
  trace::count(trace::Counter::kReadCacheInvalidations);
}

void ReadCache::clear() {
  trace::count(trace::Counter::kReadCacheInvalidations, map_.size());
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

}  // namespace pmemcpy::core
