#include <pmemcpy/pmemcpy.hpp>

#include <pmemcpy/serial/capnp.hpp>

#include <algorithm>
#include <cstdlib>
#include <set>

namespace pmemcpy {

namespace detail {

std::uint64_t pack_meta(EntryKind kind, serial::DType dtype,
                        serial::SerializerId ser, serial::FilterId filter) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(dtype) << 8) |
         (static_cast<std::uint64_t>(ser) << 16) |
         (static_cast<std::uint64_t>(filter) << 24);
}

void unpack_meta(std::uint64_t meta, EntryKind* kind, serial::DType* dtype,
                 serial::SerializerId* ser, serial::FilterId* filter) {
  *kind = static_cast<EntryKind>(meta & 0xFF);
  *dtype = static_cast<serial::DType>((meta >> 8) & 0xFF);
  *ser = static_cast<serial::SerializerId>((meta >> 16) & 0xFF);
  if (filter != nullptr) {
    *filter = static_cast<serial::FilterId>((meta >> 24) & 0xFF);
  }
}

std::string dims_key(const std::string& id) { return id + "#dims"; }

std::string piece_prefix(const std::string& id) { return id + "#p:"; }

std::string piece_key(const std::string& id, const Box& box) {
  return piece_prefix(id) + box_to_string(box);
}

std::string attr_prefix(const std::string& id) { return id + "#attr:"; }

std::string attr_key(const std::string& id, const std::string& name) {
  return attr_prefix(id) + name;
}

std::size_t blob_header_size(serial::SerializerId ser, std::uint32_t ndims) {
  switch (ser) {
    case serial::SerializerId::kBp4:
      return serial::bp4_header_size(ndims);
    case serial::SerializerId::kBinary:
      // Scalars are headerless archive payloads; array pieces carry three
      // vector<u64> fields: varint length (ndims < 128) + raw data.
      return ndims == 0 ? 0
                        : static_cast<std::size_t>(3) * (1 + 8 * ndims);
    case serial::SerializerId::kRaw:
      return 0;
    case serial::SerializerId::kCapnp:
      return serial::capnp_header_size(ndims);
  }
  throw TypeError("pmemcpy: unknown serializer");
}

void write_blob_header(serial::Sink& sink, serial::SerializerId ser,
                       serial::DType dtype, std::uint64_t payload_bytes,
                       const Dimensions& global, const Box& box) {
  switch (ser) {
    case serial::SerializerId::kBp4: {
      serial::VarMeta meta;
      meta.dtype = dtype;
      meta.serializer = ser;
      meta.payload_bytes = payload_bytes;
      meta.global.assign(global.begin(), global.end());
      meta.offset.assign(box.offset.begin(), box.offset.end());
      meta.count.assign(box.count.begin(), box.count.end());
      // A scalar record carries no dimensions.
      if (meta.global.size() != meta.offset.size()) {
        meta.global.resize(meta.offset.size());
      }
      serial::bp4_write_header(sink, meta);
      return;
    }
    case serial::SerializerId::kBinary: {
      if (box.ndims() == 0) return;  // scalars: headerless archive payload
      serial::BinaryWriter w(sink);
      std::vector<std::uint64_t> g(global.begin(), global.end());
      std::vector<std::uint64_t> o(box.offset.begin(), box.offset.end());
      std::vector<std::uint64_t> c(box.count.begin(), box.count.end());
      g.resize(o.size());
      w(g, o, c);
      return;
    }
    case serial::SerializerId::kRaw:
      return;
    case serial::SerializerId::kCapnp: {
      serial::VarMeta meta;
      meta.dtype = dtype;
      meta.payload_bytes = payload_bytes;
      meta.global.assign(global.begin(), global.end());
      meta.offset.assign(box.offset.begin(), box.offset.end());
      meta.count.assign(box.count.begin(), box.count.end());
      if (meta.global.size() != meta.offset.size()) {
        meta.global.resize(meta.offset.size());
      }
      serial::capnp_write_header(sink, meta);
      return;
    }
  }
  throw TypeError("pmemcpy: unknown serializer");
}

}  // namespace detail

namespace {

std::string sanitize_pool_name(const std::string& filename) {
  std::string out = filename;
  std::replace(out.begin(), out.end(), '/', '_');
  return out;
}

std::string fs_root_for(const std::string& filename) {
  return filename.empty() || filename[0] != '/' ? "/" + filename : filename;
}

/// Byte count with an optional k/m/g suffix ("4m" = 4 MiB); nullopt when
/// unset or unparsable (an unparsable override is ignored, not fatal —
/// matching how the other PMEMCPY_* env toggles degrade).
std::optional<std::size_t> read_cache_env() {
  const char* v = std::getenv("PMEMCPY_READ_CACHE");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v) return std::nullopt;
  std::size_t mult = 1;
  switch (*end) {
    case 'k': case 'K': mult = 1ull << 10; break;
    case 'm': case 'M': mult = 1ull << 20; break;
    case 'g': case 'G': mult = 1ull << 30; break;
    case '\0': break;
    default: return std::nullopt;
  }
  return static_cast<std::size_t>(n) * mult;
}

}  // namespace

void PMEM::do_mmap(const std::string& filename, par::Comm* comm) {
  trace::Span span("core.mmap");
  if (engine_) throw StateError("pmemcpy: already mapped");
  node_ = cfg_.node != nullptr ? cfg_.node : PmemNode::default_node();
  if (node_ == nullptr) {
    throw StateError(
        "pmemcpy: no PmemNode (create one and PmemNode::set_default it, or "
        "set Config::node)");
  }
  comm_ = comm;

  if (cfg_.layout == Layout::kHashTable) {
    engine::PoolEngineOptions eopts;
    eopts.name = sanitize_pool_name(filename);
    eopts.pool_size = cfg_.pool_size;
    eopts.nbuckets = cfg_.nbuckets;
    eopts.auto_grow = cfg_.auto_grow_table;
    eopts.map_sync = cfg_.map_sync;
    eopts.shards = cfg_.shards;
    eopts.magazine_size = cfg_.magazine_size;
    eopts.alloc_stripes = cfg_.alloc_stripes;
    engine_ = engine::open_pool_engine(*node_, eopts, comm);
  } else {
    engine_ = engine::open_tree_engine(*node_, fs_root_for(filename),
                                       cfg_.map_sync, comm);
  }
  // DRAM read cache (DESIGN.md §13): per-handle, bounded, env-overridable.
  const std::size_t cache_bytes =
      read_cache_env().value_or(cfg_.read_cache_bytes);
  if (cache_bytes > 0) {
    read_cache_ = std::make_unique<core::ReadCache>(cache_bytes);
  }
  if (comm != nullptr) comm->barrier();
}

void PMEM::munmap() {
  if (!engine_) throw StateError("pmemcpy: not mapped");
  if (comm_ != nullptr) comm_->barrier();
  piece_cache_.clear();
  read_cache_.reset();  // cached blobs die with the mapping
  open_batch_.reset();  // staged-but-uncommitted entries are discarded
  engine_.reset();
  comm_ = nullptr;
  node_ = nullptr;
  // Health is a property of the mapped region; a fresh mmap starts clean.
  health_ = ft::Health::kHealthy;
  health_status_ = ft::Status::ok();
  damaged_.clear();
}

void PMEM::put_dims(const std::string& id, serial::DType dtype,
                    const Dimensions& dims) {
  // Every rank stores the array's dimensions (the paper's automatic "#dims"
  // entry), so make the operation idempotent: identical content is skipped,
  // and concurrent first writes are first-writer-wins.
  {
    serial::DType existing_dt;
    Dimensions existing;
    if (get_dims(id, &existing_dt, &existing) && existing_dt == dtype &&
        existing == dims) {
      return;
    }
  }
  // Reserve-then-serialize (DESIGN.md §12): size the record with a
  // SizingSink pass, reserve exactly that much, then serialize straight
  // into the reserved span — no DRAM staging even for tiny records.
  std::vector<std::uint64_t> d64(dims.begin(), dims.end());
  const std::size_t size =
      serial::binary_serialized_size(static_cast<std::uint8_t>(dtype), d64);
  with_healing(detail::dims_key(id), [&] {
    auto put = start_put(
        detail::dims_key(id), size,
        detail::pack_meta(detail::EntryKind::kDims, dtype,
                          serial::SerializerId::kBinary),
        /*keep_existing=*/true);
    serial::ChecksumSink cs(put->sink());
    serial::BinaryWriter w(cs);
    w(static_cast<std::uint8_t>(dtype), d64);
    put->commit(cs.crc());
  });
}

std::optional<PMEM::FetchedBlob> PMEM::fetch_blob(const std::string& key,
                                                  std::size_t charge_bytes) {
  if (read_cache_) {
    if (const auto* hit = read_cache_->find(key)) {
      FetchedBlob f;
      f.blob = {hit->bytes.data(), hit->bytes.size()};
      f.meta = hit->meta;
      f.from_cache = true;
      return f;
    }
  }
  auto entry = engine_ref().find(key);
  if (!entry) return std::nullopt;
  const auto info = entry->info();
  // A fill copies the whole blob, so it always charges the full read; a
  // plain fetch charges only the slice the caller declared.
  const bool fill = read_cache_ != nullptr && !open_batch_;
  const std::size_t charge =
      fill ? info.size : std::min<std::size_t>(charge_bytes, info.size);
  FetchedBlob f;
  f.blob = entry->stored_span(charge);
  f.meta = info.meta;
  f.entry = std::move(entry);
  // Verify before the bytes can reach either the cache or a deserializer:
  // only CRC-clean blobs are ever cached.
  verify_blob(key, f.blob.data(), f.blob.size(), f.meta);
  if (fill) read_cache_->insert(key, f.blob, f.meta);
  return f;
}

bool PMEM::get_dims(const std::string& id, serial::DType* dtype,
                    Dimensions* dims) {
  throw_if_damaged(detail::dims_key(id));
  auto fetched = fetch_blob(detail::dims_key(id));
  if (!fetched) return false;
  serial::SpanSource pmem_src(fetched->blob);
  serial::CacheSource dram_src(fetched->blob);
  serial::BinaryReader r(fetched->from_cache
                             ? static_cast<serial::Source&>(dram_src)
                             : pmem_src);
  std::uint8_t dt = 0;
  std::vector<std::uint64_t> d64;
  r(dt, d64);
  *dtype = static_cast<serial::DType>(dt);
  dims->assign(d64.begin(), d64.end());
  return true;
}

void PMEM::load_dims(const std::string& id, int* ndims, std::size_t* dims) {
  serial::DType dtype;
  Dimensions d;
  if (!get_dims(id, &dtype, &d)) throw KeyError(detail::dims_key(id));
  *ndims = static_cast<int>(d.size());
  std::copy(d.begin(), d.end(), dims);
}

Dimensions PMEM::load_dims(const std::string& id) {
  serial::DType dtype;
  Dimensions d;
  if (!get_dims(id, &dtype, &d)) throw KeyError(detail::dims_key(id));
  return d;
}

bool PMEM::exists(const std::string& id) {
  auto& st = engine_ref();
  if (st.find(id) != nullptr) return true;
  return st.find(detail::dims_key(id)) != nullptr;
}

std::vector<std::string> PMEM::ids() {
  // Dedup through an ordered set: regions hold one entry per rank per
  // variable, so the old linear-scan dedup was quadratic in ranks×vars.
  std::set<std::string> uniq;
  engine_ref().for_each_prefix(
      "", [&](const std::string& key, const engine::EntryInfo&) {
        std::string id = key;
        if (const auto p = id.find("#p:"); p != std::string::npos) {
          id.resize(p);
        } else if (const auto a = id.find("#attr:"); a != std::string::npos) {
          id.resize(a);
        } else if (id.size() >= 5 && id.ends_with("#dims")) {
          id.resize(id.size() - 5);
        }
        uniq.insert(std::move(id));
      });
  return {uniq.begin(), uniq.end()};
}

void PMEM::for_each_raw(
    const std::function<void(const std::string&, std::span<const std::byte>,
                             std::uint64_t)>& fn) {
  auto& st = engine_ref();
  std::vector<std::string> keys;
  st.for_each_prefix("",
                     [&](const std::string& key, const engine::EntryInfo&) {
                       keys.push_back(key);
                     });
  for (const auto& key : keys) {
    auto entry = st.find(key);
    if (!entry) continue;
    fn(key, entry->stored_span(), entry->info().meta);
  }
}

void PMEM::import_raw(const std::string& key, std::span<const std::byte> data,
                      std::uint64_t meta) {
  with_healing(key, [&] {
    auto put = start_put(key, data.size(), meta);
    put->sink().write(data.data(), data.size());
    // Re-derive the checksum from the bytes rather than trusting the high
    // half of an exported meta word.
    put->commit(crc32c(data.data(), data.size()));
  });
}

void PMEM::remove(const std::string& id) {
  require_writable(id);
  auto& st = engine_ref();
  bool any = st.erase(id);
  any |= st.erase(detail::dims_key(id));
  std::vector<std::string> pieces;
  st.for_each_prefix(detail::piece_prefix(id),
                     [&](const std::string& key, const engine::EntryInfo&) {
                       pieces.push_back(key);
                     });
  for (const auto& key : pieces) any |= st.erase(key);
  std::vector<std::string> attrs;
  st.for_each_prefix(detail::attr_prefix(id),
                     [&](const std::string& key, const engine::EntryInfo&) {
                       attrs.push_back(key);
                     });
  for (const auto& key : attrs) any |= st.erase(key);
  invalidate_piece_cache(id);
  if (read_cache_) {
    // Drop every erased binding: the scalar, the dims entry, and each piece
    // and attribute key.
    read_cache_->invalidate(id);
    read_cache_->invalidate(detail::dims_key(id));
    for (const auto& key : pieces) read_cache_->invalidate(key);
    for (const auto& key : attrs) read_cache_->invalidate(key);
  }
  if (!any) throw KeyError(id);
}

ScrubReport PMEM::scrub() {
  trace::Span span("core.scrub");
  auto& st = engine_ref();
  ScrubReport rep;
  // Ordered-set dedupe: a key can surface from more than one shard pool
  // (e.g. a region resharded after its shard-0 pool already held keys that
  // now route elsewhere), and find() only ever returns the routed copy —
  // examine and report each distinct key once.
  std::set<std::string> keys;
  st.for_each_prefix("",
                     [&](const std::string& key, const engine::EntryInfo&) {
                       keys.insert(key);
                     });
  for (const auto& key : keys) {
    auto entry = st.find(key);
    if (!entry) continue;  // concurrently removed (or unrouted stale copy)
    ++rep.entries;
    const auto info = entry->info();
    const auto prov = entry->provenance();
    std::vector<std::byte> blob(info.size);
    try {
      entry->read(0, blob.data(), blob.size());
    } catch (const pmem::DeviceError& e) {
      rep.corrupt.push_back({key, std::string("media error: ") + e.what(),
                             prov.shard, prov.dev_off});
      continue;
    }
    if (crc32c(blob.data(), blob.size()) != detail::meta_crc(info.meta)) {
      rep.corrupt.push_back(
          {key, "checksum mismatch", prov.shard, prov.dev_off});
    }
  }
  return rep;
}

// --- self-healing (DESIGN.md §10) -------------------------------------------

void PMEM::enter_degraded(const ft::Status& why) {
  if (health_ == ft::Health::kDegraded) return;
  health_ = ft::Health::kDegraded;
  health_status_ = why;
  trace::count(trace::Counter::kFtDegradedTransitions);
}

void PMEM::fail_degraded(const std::string& id, ft::Status why) {
  (void)id;  // already woven into the status detail by the callers
  enter_degraded(why);
  throw ft::DegradedError(std::move(why));
}

void PMEM::heal_put_fault(const std::string& id, const pmem::DeviceError& e,
                          int attempt) {
  if (e.kind == pmem::DeviceError::Kind::kMediaRead) {
    // An uncorrectable read inside a put (metadata probe) is not healable by
    // relocation — the bytes to move are already gone.  Surface it.
    throw;
  }
  if (e.kind == pmem::DeviceError::Kind::kMediaWrite) {
    // e carries the sticky bad-range coordinates (device-absolute).  Fence
    // the range off so the retry reserves on healthy space; the failed
    // attempt's reservation already rolled back during unwinding.
    if (!engine_ref().quarantine(e.off, e.len)) {
      fail_degraded(
          id, ft::Status(ft::ErrorCode::kQuarantineFull,
                         "cannot quarantine bad media range while writing '" +
                             id + "': " + e.what()));
    }
    // Quarantine may relocate future writes anywhere; cached blobs stay
    // byte-correct but the conservative move is to refill from PMEM.
    if (read_cache_) read_cache_->clear();
  }
  if (attempt >= kMaxPutAttempts) {
    fail_degraded(
        id, ft::Status(ft::ErrorCode::kRetryExhausted,
                       "healing write of '" + id + "' still failing after " +
                           std::to_string(attempt) + " attempts: " + e.what()));
  }
  trace::count(trace::Counter::kFtPutRetries);
}

RepairReport PMEM::repair() {
  trace::Span span("core.repair");
  auto& st = engine_ref();
  auto& dev = node_->device();
  RepairReport rep;
  std::set<std::string> keys;
  st.for_each_prefix("",
                     [&](const std::string& key, const engine::EntryInfo&) {
                       keys.insert(key);
                     });
  const auto mark_damaged = [&](const std::string& key, std::string issue,
                                const engine::Provenance& prov) {
    rep.damaged.push_back({key, std::move(issue), prov.shard, prov.dev_off});
    damaged_.insert(key);
    trace::count(trace::Counter::kFtDamagedKeys);
  };
  for (const auto& key : keys) {
    auto entry = st.find(key);
    if (!entry) continue;  // concurrently removed (or unrouted stale copy)
    ++rep.entries;
    const auto info = entry->info();
    const auto prov = entry->provenance();
    std::vector<std::byte> blob(info.size);
    try {
      entry->read(0, blob.data(), blob.size());
    } catch (const pmem::DeviceError& e) {
      // Unreadable: there is nothing to relocate from.
      mark_damaged(key, std::string("media error: ") + e.what(), prov);
      continue;
    }
    if (crc32c(blob.data(), blob.size()) != detail::meta_crc(info.meta)) {
      mark_damaged(key, "checksum mismatch", prov);
      continue;
    }
    if (prov.dev_off == 0 || !dev.media_failing(prov.dev_off, info.size)) {
      continue;  // intact and on healthy media
    }
    // Intact bytes on failing media (sticky writes still read back): fence
    // off every bad range under the blob, then republish under the same key.
    // Crash-safe ordering — the quarantine entries append first, and
    // import_raw replaces the binding atomically, so a crash at any point
    // leaves either the old (still readable) or the new entry.
    bool fenced = true;
    for (const auto& [soff, slen] : dev.sticky_ranges()) {
      if (soff < prov.dev_off + info.size && prov.dev_off < soff + slen) {
        fenced = st.quarantine(soff, slen) && fenced;
      }
    }
    // A full quarantine table cannot fence the range; the republish below
    // may then be allocated right back onto failing media, in which case the
    // write faults and the entry is reported damaged rather than silently
    // left in place.
    entry.reset();  // release the read handle before rewriting
    try {
      import_raw(key, blob, info.meta);
      ++rep.relocated;
      trace::count(trace::Counter::kFtRelocations);
    } catch (const ft::DegradedError& e) {
      mark_damaged(key,
                   std::string(fenced ? "relocation failed: "
                                      : "relocation failed (unfenced: "
                                        "quarantine table full): ") +
                       e.what(),
                   prov);
    }
  }
  // Relocation rewrites bindings and quarantine reshapes the allocatable
  // space; drop every cached blob rather than reasoning about which ones the
  // pass touched.  Correctness first — the cache refills on the next read.
  if (read_cache_) read_cache_->clear();
  return rep;
}

std::vector<std::string> PMEM::attributes(const std::string& id) {
  const std::string prefix = detail::attr_prefix(id);
  std::vector<std::string> names;
  engine_ref().for_each_prefix(
      prefix, [&](const std::string& key, const engine::EntryInfo&) {
        names.push_back(key.substr(prefix.size()));
      });
  std::sort(names.begin(), names.end());
  return names;
}

const std::vector<std::string>& PMEM::piece_keys(const std::string& id) {
  auto it = piece_cache_.find(id);
  if (it != piece_cache_.end()) return it->second;
  std::vector<std::string> keys;
  engine_ref().for_each_prefix(
      detail::piece_prefix(id),
      [&](const std::string& key, const engine::EntryInfo&) {
        keys.push_back(key);
      });
  return piece_cache_.emplace(id, std::move(keys)).first->second;
}

}  // namespace pmemcpy
