#include <pmemcpy/core/hyperslab.hpp>

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pmemcpy {

Box intersect(const Box& a, const Box& b) {
  if (a.ndims() != b.ndims()) {
    throw std::invalid_argument("intersect: rank mismatch");
  }
  Box out;
  out.offset.resize(a.ndims());
  out.count.resize(a.ndims());
  for (std::size_t d = 0; d < a.ndims(); ++d) {
    const std::size_t lo = std::max(a.offset[d], b.offset[d]);
    const std::size_t hi =
        std::min(a.offset[d] + a.count[d], b.offset[d] + b.count[d]);
    out.offset[d] = lo;
    out.count[d] = hi > lo ? hi - lo : 0;
  }
  return out;
}

bool contains(const Box& outer, const Box& inner) {
  if (outer.ndims() != inner.ndims()) return false;
  for (std::size_t d = 0; d < outer.ndims(); ++d) {
    if (inner.offset[d] < outer.offset[d]) return false;
    if (inner.offset[d] + inner.count[d] >
        outer.offset[d] + outer.count[d]) {
      return false;
    }
  }
  return true;
}

std::size_t box_linear_index(const Box& box, const Dimensions& coord) {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < box.ndims(); ++d) {
    idx = idx * box.count[d] + (coord[d] - box.offset[d]);
  }
  return idx;
}

namespace {

/// Recursive row-major copy: all dims except the last iterate, the last is a
/// contiguous memcpy run.
void copy_rec(std::byte* dst, const Box& dst_box, const std::byte* src,
              const Box& src_box, const Box& region, std::size_t elem_size,
              Dimensions& coord, std::size_t dim) {
  if (dim + 1 == region.ndims()) {
    coord[dim] = region.offset[dim];
    const std::size_t run = region.count[dim] * elem_size;
    std::memcpy(dst + box_linear_index(dst_box, coord) * elem_size,
                src + box_linear_index(src_box, coord) * elem_size, run);
    return;
  }
  for (std::size_t i = 0; i < region.count[dim]; ++i) {
    coord[dim] = region.offset[dim] + i;
    copy_rec(dst, dst_box, src, src_box, region, elem_size, coord, dim + 1);
  }
}

}  // namespace

void copy_box_region(std::byte* dst, const Box& dst_box, const std::byte* src,
                     const Box& src_box, const Box& region,
                     std::size_t elem_size) {
  if (region.empty()) return;
  if (!contains(dst_box, region) || !contains(src_box, region)) {
    throw std::invalid_argument("copy_box_region: region not contained");
  }
  Dimensions coord(region.ndims());
  copy_rec(dst, dst_box, src, src_box, region, elem_size, coord, 0);
}

void for_each_row(
    const Dimensions& global, const Box& box,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (box.empty()) return;
  const std::size_t nd = box.ndims();
  if (global.size() != nd) {
    throw std::invalid_argument("for_each_row: rank mismatch");
  }
  const std::size_t row = box.count[nd - 1];
  // Odometer over all dims but the last.
  Dimensions coord(box.offset);
  std::size_t box_off = 0;
  for (;;) {
    std::size_t lin = 0;
    for (std::size_t d = 0; d < nd; ++d) lin = lin * global[d] + coord[d];
    fn(lin, row, box_off);
    box_off += row;
    // Increment odometer (dims 0..nd-2, last varies fastest).
    if (nd == 1) break;
    std::size_t d = nd - 2;
    for (;;) {
      if (++coord[d] < box.offset[d] + box.count[d]) break;
      coord[d] = box.offset[d];
      if (d == 0) return;
      --d;
    }
  }
}

std::string box_to_string(const Box& box) {
  std::string s;
  for (std::size_t d = 0; d < box.ndims(); ++d) {
    if (d != 0) s += '_';
    s += std::to_string(box.offset[d]);
  }
  s += ':';
  for (std::size_t d = 0; d < box.ndims(); ++d) {
    if (d != 0) s += '_';
    s += std::to_string(box.count[d]);
  }
  return s;
}

Box box_from_string(const std::string& s) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("box_from_string: missing ':' in " + s);
  }
  auto parse_list = [](const std::string& part) {
    Dimensions out;
    std::size_t i = 0;
    while (i < part.size()) {
      std::size_t j = part.find('_', i);
      if (j == std::string::npos) j = part.size();
      out.push_back(std::stoull(part.substr(i, j - i)));
      i = j + 1;
    }
    return out;
  };
  Box box;
  box.offset = parse_list(s.substr(0, colon));
  box.count = parse_list(s.substr(colon + 1));
  if (box.offset.size() != box.count.size()) {
    throw std::invalid_argument("box_from_string: rank mismatch in " + s);
  }
  return box;
}

}  // namespace pmemcpy
