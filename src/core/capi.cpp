// C API implementation: thin dispatch onto the C++ library with exceptions
// mapped to status codes and a per-handle error string.
#include <pmemcpy/pmemcpy.h>
#include <pmemcpy/pmemcpy.hpp>

#include <cstring>
#include <string>
#include <vector>

struct pmemcpy_node {
  pmemcpy::PmemNode impl;
  explicit pmemcpy_node(pmemcpy::PmemNode::Options o) : impl(o) {}
};

struct pmemcpy_pmem {
  pmemcpy::PMEM impl;
  std::string last_error;
};

namespace {

using pmemcpy::serial::DType;

/// Run @p fn, mapping C++ exceptions to C status codes.
template <typename Fn>
pmemcpy_status guarded(pmemcpy_pmem* pmem, Fn&& fn) {
  try {
    fn();
    return PMEMCPY_OK;
  } catch (const pmemcpy::KeyError& e) {
    pmem->last_error = e.what();
    return PMEMCPY_ERR_KEY;
  } catch (const pmemcpy::TypeError& e) {
    pmem->last_error = e.what();
    return PMEMCPY_ERR_TYPE;
  } catch (const pmemcpy::StateError& e) {
    pmem->last_error = e.what();
    return PMEMCPY_ERR_STATE;
  } catch (const std::exception& e) {
    pmem->last_error = e.what();
    return PMEMCPY_ERR_OTHER;
  }
}

/// Invoke fn.template operator()<T>() for the element type of @p dtype.
template <typename Fn>
void with_dtype(pmemcpy_dtype dtype, Fn&& fn) {
  switch (dtype) {
    case PMEMCPY_U8: fn.template operator()<std::uint8_t>(); return;
    case PMEMCPY_I8: fn.template operator()<std::int8_t>(); return;
    case PMEMCPY_U16: fn.template operator()<std::uint16_t>(); return;
    case PMEMCPY_I16: fn.template operator()<std::int16_t>(); return;
    case PMEMCPY_U32: fn.template operator()<std::uint32_t>(); return;
    case PMEMCPY_I32: fn.template operator()<std::int32_t>(); return;
    case PMEMCPY_U64: fn.template operator()<std::uint64_t>(); return;
    case PMEMCPY_I64: fn.template operator()<std::int64_t>(); return;
    case PMEMCPY_F32: fn.template operator()<float>(); return;
    case PMEMCPY_F64: fn.template operator()<double>(); return;
  }
  throw pmemcpy::TypeError("pmemcpy C API: unknown dtype");
}

}  // namespace

extern "C" {

pmemcpy_node* pmemcpy_node_create(size_t capacity) {
  try {
    pmemcpy::PmemNode::Options o;
    if (capacity != 0) o.capacity = capacity;
    return new pmemcpy_node(o);
  } catch (...) {
    return nullptr;
  }
}

void pmemcpy_node_destroy(pmemcpy_node* node) {
  if (pmemcpy::PmemNode::default_node() == &node->impl) {
    pmemcpy::PmemNode::set_default(nullptr);
  }
  delete node;
}

void pmemcpy_node_set_default(pmemcpy_node* node) {
  pmemcpy::PmemNode::set_default(node != nullptr ? &node->impl : nullptr);
}

pmemcpy_pmem* pmemcpy_create(void) { return new (std::nothrow) pmemcpy_pmem; }

void pmemcpy_destroy(pmemcpy_pmem* pmem) { delete pmem; }

const char* pmemcpy_last_error(const pmemcpy_pmem* pmem) {
  return pmem->last_error.c_str();
}

pmemcpy_status pmemcpy_mmap(pmemcpy_pmem* pmem, const char* filename) {
  return guarded(pmem, [&] { pmem->impl.mmap(filename); });
}

pmemcpy_status pmemcpy_munmap(pmemcpy_pmem* pmem) {
  return guarded(pmem, [&] { pmem->impl.munmap(); });
}

pmemcpy_status pmemcpy_alloc(pmemcpy_pmem* pmem, const char* id,
                             pmemcpy_dtype dtype, int ndims,
                             const size_t* dims) {
  return guarded(pmem, [&] {
    with_dtype(dtype, [&]<typename T>() {
      pmem->impl.alloc<T>(id, ndims, dims);
    });
  });
}

pmemcpy_status pmemcpy_store(pmemcpy_pmem* pmem, const char* id,
                             pmemcpy_dtype dtype, const void* data, int ndims,
                             const size_t* offsets, const size_t* dimspp) {
  return guarded(pmem, [&] {
    with_dtype(dtype, [&]<typename T>() {
      pmem->impl.store<T>(id, static_cast<const T*>(data), ndims, offsets,
                          dimspp);
    });
  });
}

pmemcpy_status pmemcpy_load(pmemcpy_pmem* pmem, const char* id,
                            pmemcpy_dtype dtype, void* data, int ndims,
                            const size_t* offsets, const size_t* dimspp) {
  return guarded(pmem, [&] {
    with_dtype(dtype, [&]<typename T>() {
      pmem->impl.load<T>(id, static_cast<T*>(data), ndims, offsets, dimspp);
    });
  });
}

pmemcpy_status pmemcpy_load_dims(pmemcpy_pmem* pmem, const char* id,
                                 int* ndims, size_t* dims) {
  return guarded(pmem, [&] { pmem->impl.load_dims(id, ndims, dims); });
}

pmemcpy_status pmemcpy_store_f64(pmemcpy_pmem* pmem, const char* id,
                                 double v) {
  return guarded(pmem, [&] { pmem->impl.store(id, v); });
}

pmemcpy_status pmemcpy_load_f64(pmemcpy_pmem* pmem, const char* id,
                                double* v) {
  return guarded(pmem, [&] { pmem->impl.load(id, *v); });
}

pmemcpy_status pmemcpy_store_i64(pmemcpy_pmem* pmem, const char* id,
                                 int64_t v) {
  return guarded(pmem, [&] { pmem->impl.store(id, v); });
}

pmemcpy_status pmemcpy_load_i64(pmemcpy_pmem* pmem, const char* id,
                                int64_t* v) {
  return guarded(pmem, [&] { pmem->impl.load(id, *v); });
}

pmemcpy_status pmemcpy_store_bytes(pmemcpy_pmem* pmem, const char* id,
                                   const void* data, size_t len) {
  return guarded(pmem, [&] {
    std::vector<std::uint8_t> v(static_cast<const std::uint8_t*>(data),
                                static_cast<const std::uint8_t*>(data) + len);
    pmem->impl.store(id, v);
  });
}

pmemcpy_status pmemcpy_bytes_size(pmemcpy_pmem* pmem, const char* id,
                                  size_t* len) {
  return guarded(pmem, [&] {
    const auto v = pmem->impl.load<std::vector<std::uint8_t>>(id);
    *len = v.size();
  });
}

pmemcpy_status pmemcpy_load_bytes(pmemcpy_pmem* pmem, const char* id,
                                  void* data, size_t len) {
  return guarded(pmem, [&] {
    const auto v = pmem->impl.load<std::vector<std::uint8_t>>(id);
    if (v.size() != len) {
      throw pmemcpy::TypeError("pmemcpy C API: buffer length mismatch");
    }
    std::memcpy(data, v.data(), len);
  });
}

int pmemcpy_exists(pmemcpy_pmem* pmem, const char* id) {
  try {
    return pmem->impl.exists(id) ? 1 : 0;
  } catch (...) {
    return 0;
  }
}

pmemcpy_status pmemcpy_remove(pmemcpy_pmem* pmem, const char* id) {
  return guarded(pmem, [&] { pmem->impl.remove(id); });
}

}  // extern "C"
