#include <pmemcpy/core/backend.hpp>

#include <atomic>
#include <cstring>
#include <utility>
#include <vector>

namespace pmemcpy::detail {

namespace {

// ---------------------------------------------------------------------------
// Table store (flat hashtable in a pool)
// ---------------------------------------------------------------------------

class TablePut final : public Store::Put {
 public:
  TablePut(obj::HashTable::Inserter ins, bool keep_existing)
      : ins_(std::move(ins)), sink_(ins_.value()),
        keep_existing_(keep_existing) {}

  serial::Sink& sink() override { return sink_; }
  void commit(std::uint32_t payload_crc) override {
    ins_.set_meta_high(payload_crc);
    ins_.publish(keep_existing_);
  }

 private:
  obj::HashTable::Inserter ins_;
  serial::SpanSink sink_;
  bool keep_existing_;
};

class TableEntry final : public Store::Entry {
 public:
  TableEntry(std::shared_ptr<obj::Pool> pool, obj::ValueRef ref)
      : pool_(std::move(pool)), ref_(ref) {}

  EntryInfo info() const override { return {ref_.val_size, ref_.meta}; }

  void read(std::uint64_t off, void* dst, std::size_t len) override {
    if (off + len > ref_.val_size) {
      throw serial::SerialError("entry read out of range");
    }
    pool_->read(ref_.val_off + off, dst, len);
  }

  const std::byte* direct(std::size_t charge_bytes) override {
    // Zero-copy bypasses the checked read path, so probe for injected
    // media errors explicitly before handing out the pointer.
    pool_->verify_media(ref_.val_off, ref_.val_size);
    pool_->charge_read(charge_bytes);
    return pool_->direct(ref_.val_off);
  }

 private:
  std::shared_ptr<obj::Pool> pool_;
  obj::ValueRef ref_;
};

class TableStore final : public Store {
 public:
  TableStore(std::shared_ptr<obj::Pool> pool,
             std::shared_ptr<obj::HashTable> table)
      : pool_(std::move(pool)), table_(std::move(table)) {}

  std::unique_ptr<Put> put(const std::string& key, std::size_t size,
                           std::uint64_t meta, bool keep_existing) override {
    return std::make_unique<TablePut>(table_->reserve(key, size, meta),
                                      keep_existing);
  }

  std::unique_ptr<Entry> find(const std::string& key) override {
    auto ref = table_->find(key);
    if (!ref) return nullptr;
    return std::make_unique<TableEntry>(pool_, *ref);
  }

  bool erase(const std::string& key) override { return table_->erase(key); }

  void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn)
      override {
    table_->for_each_prefix(
        prefix, [&](std::string_view key, const obj::ValueRef& ref) {
          fn(std::string(key), EntryInfo{ref.val_size, ref.meta});
        });
  }

 private:
  std::shared_ptr<obj::Pool> pool_;
  std::shared_ptr<obj::HashTable> table_;
};

// ---------------------------------------------------------------------------
// Tree store (hierarchical layout on the DAX filesystem)
// ---------------------------------------------------------------------------

/// Each entry file starts with its meta word.
constexpr std::size_t kTreeHeader = 8;

/// Process-wide temp-name counter: rank threads share the filesystem, so
/// per-store counters would collide.
std::atomic<std::uint64_t> g_tmp_seq{0};

class TreePut final : public Store::Put {
 public:
  /// Writes land in a unique temp file; commit() renames it over the final
  /// path, so concurrent same-key puts (e.g. every rank storing the same
  /// "#dims" entry) last-write-win instead of racing on one inode.
  TreePut(fs::FileSystem& fs, fs::Mapping mapping, std::string tmp_path,
          std::string final_path, std::uint64_t meta, std::size_t size,
          bool keep_existing)
      : fs_(&fs),
        mapping_(std::move(mapping)),
        tmp_path_(std::move(tmp_path)),
        final_path_(std::move(final_path)),
        sink_(mapping_, kTreeHeader),
        meta_(meta),
        size_(size),
        keep_existing_(keep_existing) {
    mapping_.store(0, &meta_, sizeof(meta_));
  }

  ~TreePut() override {
    if (!committed_ && fs_->exists(tmp_path_)) fs_->remove(tmp_path_);
  }

  serial::Sink& sink() override { return sink_; }

  void commit(std::uint32_t payload_crc) override {
    const std::uint64_t meta =
        (meta_ & 0xFFFFFFFFull) |
        (static_cast<std::uint64_t>(payload_crc) << 32);
    mapping_.store(0, &meta, sizeof(meta));
    mapping_.persist(0, kTreeHeader + size_);
    mapping_.publish(0, kTreeHeader + size_);
    fs_->rename(tmp_path_, final_path_, /*replace=*/!keep_existing_);
    committed_ = true;
  }

 private:
  fs::FileSystem* fs_;
  fs::Mapping mapping_;
  std::string tmp_path_;
  std::string final_path_;
  serial::MappingSink sink_;
  std::uint64_t meta_;
  std::size_t size_;
  bool keep_existing_;
  bool committed_ = false;
};

class TreeEntry final : public Store::Entry {
 public:
  TreeEntry(fs::Mapping mapping) : mapping_(std::move(mapping)) {
    std::uint64_t meta = 0;
    // Header load is metadata-sized; charge it as such.
    mapping_.load(0, &meta, sizeof(meta));
    info_ = EntryInfo{mapping_.size() - kTreeHeader, meta};
  }

  EntryInfo info() const override { return info_; }

  void read(std::uint64_t off, void* dst, std::size_t len) override {
    if (off + len > info_.size) {
      throw serial::SerialError("entry read out of range");
    }
    mapping_.load(kTreeHeader + off, dst, len);
  }

  const std::byte* direct(std::size_t charge_bytes) override {
    try {
      auto s = mapping_.span(kTreeHeader, info_.size);
      mapping_.charge_load(charge_bytes);
      return s.data();
    } catch (const fs::FsError&) {
      // Fragmented file: fall back to a charged bounce copy (rare — entry
      // files are written once into fresh extents).
      if (bounce_.empty() && info_.size > 0) {
        bounce_.resize(info_.size);
        mapping_.load(kTreeHeader, bounce_.data(), info_.size);
      } else {
        mapping_.charge_load(charge_bytes);
      }
      return bounce_.data();
    }
  }

 private:
  fs::Mapping mapping_;
  EntryInfo info_;
  std::vector<std::byte> bounce_;
};

class TreeStore final : public Store {
 public:
  TreeStore(fs::FileSystem& fs, std::string root, bool map_sync)
      : fs_(&fs), root_(std::move(root)), map_sync_(map_sync) {
    fs_->mkdirs(root_);
  }

  std::unique_ptr<Put> put(const std::string& key, std::size_t size,
                           std::uint64_t meta, bool keep_existing) override {
    const std::string path = key_path(key);
    const std::size_t slash = path.rfind('/');
    if (slash > 0 && slash != std::string::npos) {
      const std::string dir = path.substr(0, slash);
      if (!fs_->exists(dir)) fs_->mkdirs(dir);
    }
    const std::string tmp =
        path + ".tmp." +
        std::to_string(g_tmp_seq.fetch_add(1, std::memory_order_relaxed));
    auto mapping = fs_->create_mapped(tmp, kTreeHeader + size, map_sync_);
    return std::make_unique<TreePut>(*fs_, std::move(mapping), tmp, path,
                                     meta, size, keep_existing);
  }

  std::unique_ptr<Entry> find(const std::string& key) override {
    const std::string path = key_path(key);
    if (!fs_->exists(path)) return nullptr;
    auto f = fs_->open(path, fs::OpenMode::kRead);
    return std::make_unique<TreeEntry>(fs_->map(f, map_sync_));
  }

  bool erase(const std::string& key) override {
    const std::string path = key_path(key);
    if (!fs_->exists(path)) return false;
    fs_->remove(path);
    return true;
  }

  void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn)
      override {
    walk("", root_, prefix, fn);
  }

 private:
  [[nodiscard]] std::string key_path(const std::string& key) const {
    return root_ + "/" + key;
  }

  /// Recursive directory walk visiting every entry whose key starts with
  /// @p prefix.  Descends only into directories that can contain matches.
  void walk(const std::string& key_so_far, const std::string& dir,
            const std::string& prefix,
            const std::function<void(const std::string&, const EntryInfo&)>&
                fn) {
    if (!fs_->exists(dir)) return;
    for (const auto& name : fs_->list(dir)) {
      if (name.find(".tmp.") != std::string::npos) continue;  // in-flight
      const std::string key =
          key_so_far.empty() ? name : key_so_far + "/" + name;
      const std::string path = dir + "/" + name;
      if (fs_->is_dir(path)) {
        const std::string key_dir = key + "/";
        const std::size_t n = std::min(key_dir.size(), prefix.size());
        if (key_dir.compare(0, n, prefix, 0, n) == 0) {
          walk(key, path, prefix, fn);
        }
        continue;
      }
      if (key.size() < prefix.size() ||
          key.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      auto f = fs_->open(path, fs::OpenMode::kRead);
      auto m = fs_->map(f, map_sync_);
      std::uint64_t meta = 0;
      m.load(0, &meta, sizeof(meta));
      fn(key, EntryInfo{m.size() - kTreeHeader, meta});
    }
  }

  fs::FileSystem* fs_;
  std::string root_;
  bool map_sync_;
};

}  // namespace

std::unique_ptr<Store> make_table_store(
    std::shared_ptr<obj::Pool> pool, std::shared_ptr<obj::HashTable> table) {
  return std::make_unique<TableStore>(std::move(pool), std::move(table));
}

std::unique_ptr<Store> make_tree_store(fs::FileSystem& fs, std::string root,
                                       bool map_sync) {
  return std::make_unique<TreeStore>(fs, std::move(root), map_sync);
}

}  // namespace pmemcpy::detail
