#include <miniio/hdf5.hpp>

#include "common.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <variant>

namespace minihdf5 {

namespace {

using pmemcpy::Box;
using pmemcpy::Dimensions;

struct Plist {
  h5_plist_class cls;
  pmemcpy::PmemNode* node = nullptr;
  pmemcpy::par::Comm* comm = nullptr;
  Dimensions chunk;  // H5P_DATASET_CREATE only
};

struct Space {
  Dimensions dims;
  Box selection;  // defaults to the whole extent
};

struct FileH {
  pmemcpy::PmemNode* node = nullptr;
  pmemcpy::par::Comm* comm = nullptr;
  std::unique_ptr<miniio::Writer> writer;  // write mode
  std::unique_ptr<miniio::Reader> reader;  // read mode
};

struct Dataset {
  hid_t file = H5_INVALID;
  std::string name;
  Dimensions global;
  Dimensions chunk;  // empty = contiguous
};

using Object = std::variant<Plist, Space, std::shared_ptr<FileH>, Dataset>;

std::mutex g_mu;
std::map<hid_t, Object> g_handles;
hid_t g_next = 1;

hid_t install(Object obj) {
  std::lock_guard lk(g_mu);
  const hid_t id = g_next++;
  g_handles.emplace(id, std::move(obj));
  return id;
}

template <typename T>
T* lookup(hid_t id) {
  std::lock_guard lk(g_mu);
  const auto it = g_handles.find(id);
  if (it == g_handles.end()) return nullptr;
  return std::get_if<T>(&it->second);
}

bool drop(hid_t id) {
  std::lock_guard lk(g_mu);
  return g_handles.erase(id) != 0;
}

}  // namespace

hid_t H5Pcreate(h5_plist_class cls) {
  Plist p;
  p.cls = cls;
  return install(std::move(p));
}

herr_t H5Pset_fapl_mpio(hid_t plist, pmemcpy::PmemNode& node,
                        pmemcpy::par::Comm& comm) {
  auto* p = lookup<Plist>(plist);
  if (p == nullptr || p->cls != H5P_FILE_ACCESS) return -1;
  p->node = &node;
  p->comm = &comm;
  return 0;
}

herr_t H5Pset_chunk(hid_t dcpl, int ndims, const hsize_t* dims) {
  auto* p = lookup<Plist>(dcpl);
  if (p == nullptr || p->cls != H5P_DATASET_CREATE || ndims < 1 ||
      dims == nullptr) {
    return -1;
  }
  p->chunk.assign(dims, dims + ndims);
  return 0;
}

herr_t H5Pclose(hid_t plist) { return drop(plist) ? 0 : -1; }

hid_t H5Fcreate(const char* path, unsigned flags, hid_t, hid_t fapl) {
  if ((flags & H5F_ACC_TRUNC) == 0) return H5_INVALID;
  auto* p = lookup<Plist>(fapl);
  if (p == nullptr || p->node == nullptr) return H5_INVALID;
  try {
    auto fh = std::make_shared<FileH>();
    fh->node = p->node;
    fh->comm = p->comm;
    // HDF5 drives the contiguous engine with its extra staging pass.
    fh->writer = miniio::make_contiguous_writer(*p->node, path, *p->comm,
                                                /*hdf5_overheads=*/true,
                                                /*nofill=*/true);
    return install(std::move(fh));
  } catch (...) {
    return H5_INVALID;
  }
}

hid_t H5Fopen(const char* path, unsigned flags, hid_t fapl) {
  if ((flags & H5F_ACC_RDONLY) == 0) return H5_INVALID;
  auto* p = lookup<Plist>(fapl);
  if (p == nullptr || p->node == nullptr) return H5_INVALID;
  try {
    auto fh = std::make_shared<FileH>();
    fh->node = p->node;
    fh->comm = p->comm;
    fh->reader = miniio::make_contiguous_reader(*p->node, path, *p->comm,
                                                /*hdf5_overheads=*/true);
    return install(std::move(fh));
  } catch (...) {
    return H5_INVALID;
  }
}

herr_t H5Fclose(hid_t file) {
  auto* fh = lookup<std::shared_ptr<FileH>>(file);
  if (fh == nullptr) return -1;
  try {
    if ((*fh)->writer) (*fh)->writer->close();
    if ((*fh)->reader) (*fh)->reader->close();
  } catch (...) {
    drop(file);
    return -1;
  }
  drop(file);
  return 0;
}

hid_t H5Screate_simple(int ndims, const hsize_t* dims, const hsize_t*) {
  if (ndims < 1 || dims == nullptr) return H5_INVALID;
  Space s;
  s.dims.assign(dims, dims + ndims);
  s.selection = Box(Dimensions(static_cast<std::size_t>(ndims), 0), s.dims);
  return install(std::move(s));
}

herr_t H5Sselect_hyperslab(hid_t space, h5_select_op op, const hsize_t* start,
                           const hsize_t* stride, const hsize_t* count,
                           const hsize_t* block) {
  auto* s = lookup<Space>(space);
  if (s == nullptr || op != H5S_SELECT_SET || start == nullptr ||
      count == nullptr) {
    return -1;
  }
  if (stride != nullptr || block != nullptr) return -1;  // unit strides only
  const std::size_t nd = s->dims.size();
  s->selection.offset.assign(start, start + nd);
  s->selection.count.assign(count, count + nd);
  for (std::size_t d = 0; d < nd; ++d) {
    if (s->selection.offset[d] + s->selection.count[d] > s->dims[d]) return -1;
  }
  return 0;
}

herr_t H5Sclose(hid_t space) { return drop(space) ? 0 : -1; }

hid_t H5Dcreate(hid_t file, const char* name, h5_type dtype, hid_t filespace,
                hid_t, hid_t dcpl, hid_t) {
  if (dtype != H5T_NATIVE_DOUBLE) return H5_INVALID;
  auto* fh = lookup<std::shared_ptr<FileH>>(file);
  auto* s = lookup<Space>(filespace);
  if (fh == nullptr || s == nullptr || !(*fh)->writer) return H5_INVALID;
  Dataset d;
  d.file = file;
  d.name = name;
  d.global = s->dims;
  if (auto* cp = lookup<Plist>(dcpl);
      cp != nullptr && cp->cls == H5P_DATASET_CREATE) {
    if (!cp->chunk.empty() && cp->chunk.size() != d.global.size()) {
      return H5_INVALID;
    }
    d.chunk = cp->chunk;
  }
  return install(std::move(d));
}

hid_t H5Dopen(hid_t file, const char* name, hid_t) {
  auto* fh = lookup<std::shared_ptr<FileH>>(file);
  if (fh == nullptr || !(*fh)->reader) return H5_INVALID;
  try {
    Dataset d;
    d.file = file;
    d.name = name;
    d.global = (*fh)->reader->dims(name);
    return install(std::move(d));
  } catch (...) {
    return H5_INVALID;
  }
}

hid_t H5Dget_space(hid_t dset) {
  auto* d = lookup<Dataset>(dset);
  if (d == nullptr) return H5_INVALID;
  Space s;
  s.dims = d->global;
  s.selection = Box(Dimensions(d->global.size(), 0), d->global);
  return install(std::move(s));
}

herr_t H5Dwrite(hid_t dset, h5_type dtype, hid_t memspace, hid_t filespace,
                hid_t, const void* buf) {
  if (dtype != H5T_NATIVE_DOUBLE) return -1;
  auto* d = lookup<Dataset>(dset);
  if (d == nullptr) return -1;
  auto* fh = lookup<std::shared_ptr<FileH>>(d->file);
  auto* fs = lookup<Space>(filespace);
  if (fh == nullptr || fs == nullptr || !(*fh)->writer) return -1;
  if (auto* ms = lookup<Space>(memspace); ms != nullptr) {
    if (ms->selection.elements() != fs->selection.elements()) return -1;
  }
  try {
    (*fh)->writer->set_chunk(d->chunk);  // layout travels with the dataset
    (*fh)->writer->write(d->name, static_cast<const double*>(buf),
                         fs->selection, d->global);
    return 0;
  } catch (...) {
    return -1;
  }
}

herr_t H5Dread(hid_t dset, h5_type dtype, hid_t memspace, hid_t filespace,
               hid_t, void* buf) {
  if (dtype != H5T_NATIVE_DOUBLE) return -1;
  auto* d = lookup<Dataset>(dset);
  if (d == nullptr) return -1;
  auto* fh = lookup<std::shared_ptr<FileH>>(d->file);
  auto* fs = lookup<Space>(filespace);
  if (fh == nullptr || fs == nullptr || !(*fh)->reader) return -1;
  if (auto* ms = lookup<Space>(memspace); ms != nullptr) {
    if (ms->selection.elements() != fs->selection.elements()) return -1;
  }
  try {
    (*fh)->reader->read(d->name, static_cast<double*>(buf), fs->selection);
    return 0;
  } catch (...) {
    return -1;
  }
}

herr_t H5Dclose(hid_t dset) { return drop(dset) ? 0 : -1; }

std::size_t h5_live_handles() {
  std::lock_guard lk(g_mu);
  return g_handles.size();
}

}  // namespace minihdf5
