// Contiguous-layout engine behind miniNetCDF4 and miniPNetCDF.
//
// Variables are stored as a single row-major global linearisation, so a
// rank's subarray is scattered across the file.  Writes and reads therefore
// run two-phase collective I/O (ROMIO-style):
//
//   write: pack local rows per destination aggregator  ->  alltoallv shuffle
//          ->  aggregators assemble their contiguous file stripe  ->  POSIX
//          pwrite.
//   read:  ranks send run requests to stripe owners  ->  owners POSIX pread
//          their stripe  ->  pack responses  ->  alltoallv  ->  ranks unpack.
//
// This is exactly the "network communications and data copying costs" the
// paper blames for NetCDF/pNetCDF's 2.5x/5x gap.  NetCDF-4 mode adds an
// HDF5-style internal staging pass per stripe and (without NC_NOFILL)
// fill-value initialisation at variable definition.
#include "common.hpp"

#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <cstring>

namespace miniio {

namespace {

using detail::lin_to_coord;
using detail::product;
using detail::Run;
using pmemcpy::fs::OpenMode;

constexpr std::uint64_t kDataStart = 4096;  // header block, like netCDF
constexpr double kFillValue = 9.96920996838687e+36;  // NC_FILL_DOUBLE

struct VarToc {
  std::string name;
  std::vector<std::uint64_t> global;
  std::vector<std::uint64_t> chunk;  // chunk dims; empty = contiguous
  std::uint64_t base = 0;  // byte offset of element 0 in the file

  template <class Ar>
  void serialize(Ar& ar) {
    ar(name, global, chunk, base);
  }
};

/// Maps array coordinates to file element offsets.  Contiguous layout is
/// the degenerate case of HDF5-style chunking with one chunk covering the
/// whole array; edge chunks are padded to full capacity, as in HDF5.
struct ChunkMap {
  Dimensions global;
  Dimensions chunk;
  Dimensions grid;            // chunks per dimension
  std::size_t chunk_cap = 1;  // elements per chunk (padded)
  std::size_t total = 0;      // file elements incl. padding

  ChunkMap(const Dimensions& g, const Dimensions& c) : global(g) {
    chunk = c.empty() ? g : c;
    grid.resize(g.size());
    std::size_t nchunks = 1;
    for (std::size_t d = 0; d < g.size(); ++d) {
      if (chunk[d] == 0 || chunk[d] > g[d]) chunk[d] = g[d];
      grid[d] = (g[d] + chunk[d] - 1) / chunk[d];
      nchunks *= grid[d];
      chunk_cap *= chunk[d];
    }
    total = nchunks * chunk_cap;
  }

  [[nodiscard]] std::size_t file_off(const Dimensions& coord) const {
    std::size_t chunk_idx = 0, intra = 0;
    for (std::size_t d = 0; d < global.size(); ++d) {
      chunk_idx = chunk_idx * grid[d] + coord[d] / chunk[d];
      intra = intra * chunk[d] + coord[d] % chunk[d];
    }
    return chunk_idx * chunk_cap + intra;
  }

  [[nodiscard]] Dimensions coord_of(std::size_t file_off) const {
    std::size_t chunk_idx = file_off / chunk_cap;
    std::size_t intra = file_off % chunk_cap;
    Dimensions coord(global.size());
    for (std::size_t d = global.size(); d-- > 0;) {
      coord[d] = (chunk_idx % grid[d]) * chunk[d] + intra % chunk[d];
      chunk_idx /= grid[d];
      intra /= chunk[d];
    }
    return coord;
  }

  /// Visit the file-contiguous runs of @p box:
  /// fn(file_elem_off, elems, box_elem_off).  Runs never cross a chunk's
  /// last-dimension boundary.
  template <typename Fn>
  void for_each_file_run(const Box& box, Fn&& fn) const {
    const std::size_t nd = global.size();
    pmemcpy::for_each_row(
        global, box,
        [&](std::size_t, std::size_t elems, std::size_t box_off) {
          // Recover the row's starting coordinate from its box offset.
          Dimensions coord(nd);
          std::size_t rem = box_off;
          for (std::size_t d = nd; d-- > 0;) {
            coord[d] = box.offset[d] + rem % box.count[d];
            rem /= box.count[d];
          }
          // Split the row at chunk boundaries along the last dim.
          while (elems > 0) {
            const std::size_t last = nd - 1;
            const std::size_t in_chunk =
                chunk[last] - (coord[last] % chunk[last]);
            const std::size_t take = std::min(elems, in_chunk);
            fn(file_off(coord), take, box_off);
            coord[last] += take;
            box_off += take;
            elems -= take;
          }
        });
  }
};

struct RunHeader {
  std::uint64_t lin;
  std::uint64_t elems;
};

/// Stripe r of a variable with @p total elements across @p nranks.
struct Stripe {
  std::uint64_t lo, hi;  // element range [lo, hi)
};
Stripe stripe_of(std::uint64_t total, int nranks, int r) {
  const std::uint64_t per = (total + static_cast<std::uint64_t>(nranks) - 1) /
                            static_cast<std::uint64_t>(nranks);
  const std::uint64_t lo =
      std::min<std::uint64_t>(per * static_cast<std::uint64_t>(r), total);
  const std::uint64_t hi = std::min<std::uint64_t>(lo + per, total);
  return {lo, hi};
}
int owner_of(std::uint64_t total, int nranks, std::uint64_t lin) {
  const std::uint64_t per = (total + static_cast<std::uint64_t>(nranks) - 1) /
                            static_cast<std::uint64_t>(nranks);
  return static_cast<int>(lin / per);
}

/// Exchange per-destination byte buffers (counts exchanged via allgather).
struct Exchanged {
  std::vector<std::byte> data;
  std::vector<std::size_t> counts;  // per source
  std::vector<std::size_t> displs;
};
Exchanged alltoall_bytes(pmemcpy::par::Comm& comm,
                         const std::vector<std::vector<std::byte>>& send) {
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<std::uint64_t> my_counts(n);
  for (std::size_t i = 0; i < n; ++i) my_counts[i] = send[i].size();
  std::vector<std::uint64_t> matrix(n * n);
  comm.allgather(my_counts.data(), n * sizeof(std::uint64_t), matrix.data());

  Exchanged out;
  out.counts.resize(n);
  out.displs.resize(n);
  std::size_t total = 0;
  for (std::size_t src = 0; src < n; ++src) {
    out.counts[src] = matrix[src * n + static_cast<std::size_t>(comm.rank())];
    out.displs[src] = total;
    total += out.counts[src];
  }
  out.data.resize(total);

  std::vector<std::byte> flat;
  std::vector<std::size_t> scounts(n), sdispls(n);
  std::size_t stotal = 0;
  for (std::size_t d = 0; d < n; ++d) {
    scounts[d] = send[d].size();
    sdispls[d] = stotal;
    stotal += scounts[d];
  }
  flat.resize(stotal);
  for (std::size_t d = 0; d < n; ++d) {
    std::memcpy(flat.data() + sdispls[d], send[d].data(), scounts[d]);
  }
  // The collective-buffer coalescing copy is a real pass over the data.
  pmemcpy::sim::ctx().charge_cpu_copy(stotal);
  comm.alltoallv(flat.data(), scounts, sdispls, out.data.data(), out.counts,
                 out.displs);
  return out;
}

class ContiguousWriter final : public Writer {
 public:
  void set_chunk(const Dimensions& chunk_dims) override {
    chunk_dims_ = chunk_dims;
  }

  ContiguousWriter(pmemcpy::PmemNode& node, std::string path,
                   pmemcpy::par::Comm& comm, bool hdf5, bool nofill)
      : fs_(&node.fs()),
        path_(std::move(path)),
        comm_(&comm),
        hdf5_(hdf5),
        nofill_(nofill) {
    if (comm_->rank() == 0) {
      file_ = fs_->open(path_, OpenMode::kTruncate);
    }
    comm_->barrier();
    if (comm_->rank() != 0) {
      file_ = fs_->open(path_, OpenMode::kWrite);
    }
  }

  void write(const std::string& name, const double* data, const Box& local,
             const Dimensions& global) override {
    const VarToc& var = define(name, global);
    const ChunkMap map(global,
                       Dimensions(var.chunk.begin(), var.chunk.end()));
    const std::uint64_t total = map.total;
    const int n = comm_->size();
    auto& c = pmemcpy::sim::ctx();

    // Phase 1: pack file runs per destination aggregator.
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(n));
    std::size_t packed = 0;
    map.for_each_file_run(
        local, [&](std::size_t lin, std::size_t elems, std::size_t box_off) {
          while (elems > 0) {
            const int dest = owner_of(total, n, lin);
            const Stripe s = stripe_of(total, n, dest);
            const std::uint64_t take =
                std::min<std::uint64_t>(elems, s.hi - lin);
            RunHeader h{lin, take};
            auto& buf = send[static_cast<std::size_t>(dest)];
            const std::size_t at = buf.size();
            buf.resize(at + sizeof(h) + take * sizeof(double));
            std::memcpy(buf.data() + at, &h, sizeof(h));
            std::memcpy(buf.data() + at + sizeof(h), data + box_off,
                        take * sizeof(double));
            packed += take * sizeof(double);
            lin += take;
            box_off += take;
            elems -= take;
          }
        });
    c.charge_cpu_copy(packed);
    // The pack pass is this library's DRAM staging copy; the audit
    // (bench/copy_audit) contrasts it with pMEMCPY's direct path.
    namespace trace = pmemcpy::trace;
    if (packed > 0) trace::count(trace::Counter::kCopyStagedPuts);
    trace::count(trace::Counter::kCopyStagedBytes, packed);

    // Phase 2: shuffle.
    Exchanged recv = alltoall_bytes(*comm_, send);

    // Phase 3: assemble my stripe and write it.
    const Stripe mine = stripe_of(total, n, comm_->rank());
    if (mine.hi > mine.lo) {
      std::vector<double> stripe(mine.hi - mine.lo);
      std::uint64_t rmin = mine.hi, rmax = mine.lo;
      if (!nofill_) {
        std::fill(stripe.begin(), stripe.end(), kFillValue);
        c.charge_cpu_copy(stripe.size() * sizeof(double));
        rmin = mine.lo;
        rmax = mine.hi;
      }
      std::size_t assembled = 0;
      std::size_t pos = 0;
      while (pos + sizeof(RunHeader) <= recv.data.size()) {
        RunHeader h{};
        std::memcpy(&h, recv.data.data() + pos, sizeof(h));
        pos += sizeof(h);
        std::memcpy(stripe.data() + (h.lin - mine.lo),
                    recv.data.data() + pos, h.elems * sizeof(double));
        pos += h.elems * sizeof(double);
        assembled += h.elems * sizeof(double);
        rmin = std::min(rmin, h.lin);
        rmax = std::max(rmax, h.lin + h.elems);
      }
      c.charge_cpu_copy(assembled);
      trace::count(trace::Counter::kCopyStagedBytes, assembled);
      if (rmax > rmin) {
        if (hdf5_) {
          // HDF5 internal scatter/gather staging pass over the stripe.
          c.charge_cpu_copy((rmax - rmin) * sizeof(double));
          trace::count(trace::Counter::kCopyStagedBytes,
                       (rmax - rmin) * sizeof(double));
        }
        fs_->pwrite(file_, stripe.data() + (rmin - mine.lo),
                    (rmax - rmin) * sizeof(double),
                    var.base + rmin * sizeof(double));
      }
    } else {
      // Still participate in the barrier semantics of the collective.
      (void)recv;
    }
    comm_->barrier();
  }

  void close() override {
    if (comm_->rank() == 0) {
      pmemcpy::serial::BufferSink footer;
      pmemcpy::serial::BinaryWriter w(footer);
      w(vars_);
      detail::write_footer(*fs_, file_, next_base_, footer.bytes());
    }
    comm_->barrier();
  }

 private:
  const VarToc& define(const std::string& name, const Dimensions& global) {
    for (const auto& v : vars_) {
      if (v.name == name) return v;
    }
    VarToc v;
    v.name = name;
    v.global.assign(global.begin(), global.end());
    if (!chunk_dims_.empty() && chunk_dims_.size() == global.size()) {
      v.chunk.assign(chunk_dims_.begin(), chunk_dims_.end());
    }
    v.base = next_base_;
    const std::uint64_t total =
        ChunkMap(global, Dimensions(v.chunk.begin(), v.chunk.end())).total;
    next_base_ += total * sizeof(double);
    vars_.push_back(std::move(v));
    const VarToc& ref = vars_.back();

    if (!nofill_) {
      // NetCDF fill mode: the variable is initialised with fill values at
      // definition (what NC_NOFILL suppresses).
      const Stripe mine = stripe_of(total, comm_->size(), comm_->rank());
      if (mine.hi > mine.lo) {
        std::vector<double> fill(mine.hi - mine.lo, kFillValue);
        pmemcpy::sim::ctx().charge_cpu_copy(fill.size() * sizeof(double));
        fs_->pwrite(file_, fill.data(), fill.size() * sizeof(double),
                    ref.base + mine.lo * sizeof(double));
      }
      comm_->barrier();
    }
    return ref;
  }

  pmemcpy::fs::FileSystem* fs_;
  std::string path_;
  pmemcpy::par::Comm* comm_;
  bool hdf5_;
  bool nofill_;
  pmemcpy::fs::File file_;
  std::vector<VarToc> vars_;
  std::uint64_t next_base_ = kDataStart;
  Dimensions chunk_dims_;  // applies to variables defined after set_chunk
};

class ContiguousReader final : public Reader {
 public:
  ContiguousReader(pmemcpy::PmemNode& node, std::string path,
                   pmemcpy::par::Comm& comm, bool hdf5)
      : fs_(&node.fs()), comm_(&comm), hdf5_(hdf5) {
    file_ = fs_->open(path, OpenMode::kRead);
    std::vector<std::byte> footer;
    std::uint64_t len = 0;
    if (comm_->rank() == 0) {
      footer = detail::read_footer(*fs_, file_);
      len = footer.size();
    }
    comm_->bcast(&len, sizeof(len), 0);
    footer.resize(len);
    comm_->bcast(footer.data(), len, 0);
    pmemcpy::serial::BufferSource src(footer);
    pmemcpy::serial::BinaryReader r(src);
    r(vars_);
  }

  Dimensions dims(const std::string& name) override {
    const VarToc& v = lookup(name);
    return Dimensions(v.global.begin(), v.global.end());
  }

  void read(const std::string& name, double* data, const Box& local) override {
    const VarToc& var = lookup(name);
    const Dimensions global(var.global.begin(), var.global.end());
    const ChunkMap map(global,
                       Dimensions(var.chunk.begin(), var.chunk.end()));
    const std::uint64_t total = map.total;
    const int n = comm_->size();
    auto& c = pmemcpy::sim::ctx();

    // Phase 1: send run *requests* to stripe owners.
    std::vector<std::vector<std::byte>> reqs(static_cast<std::size_t>(n));
    map.for_each_file_run(
        local, [&](std::size_t lin, std::size_t elems, std::size_t) {
          while (elems > 0) {
            const int dest = owner_of(total, n, lin);
            const Stripe s = stripe_of(total, n, dest);
            const std::uint64_t take =
                std::min<std::uint64_t>(elems, s.hi - lin);
            RunHeader h{lin, take};
            auto& buf = reqs[static_cast<std::size_t>(dest)];
            const std::size_t at = buf.size();
            buf.resize(at + sizeof(h));
            std::memcpy(buf.data() + at, &h, sizeof(h));
            lin += take;
            elems -= take;
          }
        });
    Exchanged incoming = alltoall_bytes(*comm_, reqs);

    // Phase 2: owners read their stripe range and pack responses.
    std::vector<std::vector<std::byte>> resp(static_cast<std::size_t>(n));
    const Stripe mine = stripe_of(total, n, comm_->rank());
    std::uint64_t need_lo = mine.hi, need_hi = mine.lo;
    for (std::size_t srcpos = 0; srcpos < incoming.counts.size(); ++srcpos) {
      std::size_t pos = incoming.displs[srcpos];
      const std::size_t end = pos + incoming.counts[srcpos];
      while (pos + sizeof(RunHeader) <= end) {
        RunHeader h{};
        std::memcpy(&h, incoming.data.data() + pos, sizeof(h));
        pos += sizeof(h);
        need_lo = std::min(need_lo, h.lin);
        need_hi = std::max(need_hi, h.lin + h.elems);
      }
    }
    std::vector<double> stripe;
    if (need_hi > need_lo) {
      stripe.resize(need_hi - need_lo);
      fs_->pread(file_, stripe.data(), stripe.size() * sizeof(double),
                 var.base + need_lo * sizeof(double));
      if (hdf5_) {
        // HDF5 internal scatter/gather staging pass over the stripe.
        c.charge_cpu_copy(stripe.size() * sizeof(double));
        pmemcpy::trace::count(pmemcpy::trace::Counter::kCopyReadStagedBytes,
                              stripe.size() * sizeof(double));
      }
    }
    std::size_t packed = 0;
    for (std::size_t src = 0; src < incoming.counts.size(); ++src) {
      std::size_t pos = incoming.displs[src];
      const std::size_t end = pos + incoming.counts[src];
      auto& buf = resp[src];
      while (pos + sizeof(RunHeader) <= end) {
        RunHeader h{};
        std::memcpy(&h, incoming.data.data() + pos, sizeof(h));
        pos += sizeof(h);
        const std::size_t at = buf.size();
        buf.resize(at + sizeof(h) + h.elems * sizeof(double));
        std::memcpy(buf.data() + at, &h, sizeof(h));
        std::memcpy(buf.data() + at + sizeof(h),
                    stripe.data() + (h.lin - need_lo),
                    h.elems * sizeof(double));
        packed += h.elems * sizeof(double);
      }
    }
    c.charge_cpu_copy(packed);
    // The response-pack pass is this library's DRAM staging bounce on the
    // read side; the audit contrasts it with pMEMCPY's in-place decode.
    pmemcpy::trace::count(pmemcpy::trace::Counter::kCopyReadStagedBytes,
                          packed);

    // Phase 3: shuffle back and unpack into the user buffer.
    Exchanged replies = alltoall_bytes(*comm_, resp);
    std::size_t unpacked = 0;
    std::size_t pos = 0;
    while (pos + sizeof(RunHeader) <= replies.data.size()) {
      RunHeader h{};
      std::memcpy(&h, replies.data.data() + pos, sizeof(h));
      pos += sizeof(h);
      const Dimensions coord = map.coord_of(h.lin);
      const std::size_t box_off = pmemcpy::box_linear_index(local, coord);
      std::memcpy(data + box_off, replies.data.data() + pos,
                  h.elems * sizeof(double));
      pos += h.elems * sizeof(double);
      unpacked += h.elems * sizeof(double);
    }
    c.charge_cpu_copy(unpacked);
    pmemcpy::trace::count(pmemcpy::trace::Counter::kCopyReadStagedBytes,
                          unpacked);
    if (unpacked != local.elements() * sizeof(double)) {
      throw pmemcpy::fs::FsError("miniio: contiguous read incomplete for " +
                                 name);
    }
    comm_->barrier();
  }

  void close() override { comm_->barrier(); }

 private:
  const VarToc& lookup(const std::string& name) const {
    for (const auto& v : vars_) {
      if (v.name == name) return v;
    }
    throw pmemcpy::fs::FsError("miniio: unknown variable: " + name);
  }

  pmemcpy::fs::FileSystem* fs_;
  pmemcpy::par::Comm* comm_;
  bool hdf5_;
  pmemcpy::fs::File file_;
  std::vector<VarToc> vars_;
};

}  // namespace

std::unique_ptr<Writer> make_contiguous_writer(pmemcpy::PmemNode& node,
                                               const std::string& path,
                                               pmemcpy::par::Comm& comm,
                                               bool hdf5_overheads,
                                               bool nofill) {
  return std::make_unique<ContiguousWriter>(node, path, comm, hdf5_overheads,
                                            nofill);
}

std::unique_ptr<Reader> make_contiguous_reader(pmemcpy::PmemNode& node,
                                               const std::string& path,
                                               pmemcpy::par::Comm& comm,
                                               bool hdf5_overheads) {
  return std::make_unique<ContiguousReader>(node, path, comm, hdf5_overheads);
}

std::string to_string(Library lib) {
  switch (lib) {
    case Library::kAdios: return "ADIOS";
    case Library::kNetcdf4: return "NetCDF";
    case Library::kPnetcdf: return "pNetCDF";
  }
  return "?";
}

std::unique_ptr<Writer> open_writer(Library lib, pmemcpy::PmemNode& node,
                                    const std::string& path,
                                    pmemcpy::par::Comm& comm, Options opts) {
  switch (lib) {
    case Library::kAdios:
      return make_adios_writer(node, path, comm);
    case Library::kNetcdf4:
      return make_contiguous_writer(node, path, comm, /*hdf5=*/true,
                                    opts.nofill);
    case Library::kPnetcdf:
      return make_contiguous_writer(node, path, comm, /*hdf5=*/false,
                                    /*nofill=*/true);
  }
  throw std::invalid_argument("miniio: unknown library");
}

std::unique_ptr<Reader> open_reader(Library lib, pmemcpy::PmemNode& node,
                                    const std::string& path,
                                    pmemcpy::par::Comm& comm, Options opts) {
  (void)opts;
  switch (lib) {
    case Library::kAdios:
      return make_adios_reader(node, path, comm);
    case Library::kNetcdf4:
      return make_contiguous_reader(node, path, comm, /*hdf5=*/true);
    case Library::kPnetcdf:
      return make_contiguous_reader(node, path, comm, /*hdf5=*/false);
  }
  throw std::invalid_argument("miniio: unknown library");
}

}  // namespace miniio
