#include "common.hpp"

namespace miniio::detail {

void write_footer(pmemcpy::fs::FileSystem& fs, pmemcpy::fs::File file,
                  std::uint64_t at, const std::vector<std::byte>& bytes) {
  fs.pwrite(file, bytes.data(), bytes.size(), at);
  const std::uint64_t trailer[2] = {bytes.size(), kFooterMagic};
  fs.pwrite(file, trailer, sizeof(trailer), at + bytes.size());
  fs.fsync(file);
}

std::vector<std::byte> read_footer(pmemcpy::fs::FileSystem& fs,
                                   pmemcpy::fs::File file) {
  const std::uint64_t size = fs.size(file);
  if (size < 16) throw pmemcpy::fs::FsError("miniio: no footer");
  std::uint64_t trailer[2] = {};
  fs.pread(file, trailer, sizeof(trailer), size - 16);
  if (trailer[1] != kFooterMagic || trailer[0] > size - 16) {
    throw pmemcpy::fs::FsError("miniio: corrupt footer");
  }
  std::vector<std::byte> bytes(trailer[0]);
  fs.pread(file, bytes.data(), bytes.size(), size - 16 - trailer[0]);
  return bytes;
}

}  // namespace miniio::detail
