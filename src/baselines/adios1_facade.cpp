#include <miniio/adios1.hpp>

#include "common.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace miniadios1 {

namespace {

using pmemcpy::Box;
using pmemcpy::Dimensions;

/// An array variable's shape, expressed in scalar-variable names.
struct VarSpec {
  std::vector<std::string> global;
  std::vector<std::string> offset;
  std::vector<std::string> count;
};

struct Stream {
  std::unique_ptr<miniio::Writer> writer;
  std::unique_ptr<miniio::Reader> reader;
  std::map<std::string, std::size_t> scalars;
};

struct Context {
  pmemcpy::PmemNode* node = nullptr;
  std::map<std::string, VarSpec> vars;
  std::map<std::int64_t, std::unique_ptr<Stream>> streams;
  std::int64_t next_handle = 1;
};

std::mutex g_mu;
Context g_ctx;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, sep)) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

/// "A=dimsf/offset/count;V=g0,g1/o0,o1/c0,c1"
bool parse_config(const std::string& spec,
                  std::map<std::string, VarSpec>* out) {
  for (const auto& entry : split(spec, ';')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) return false;
    const std::string name = entry.substr(0, eq);
    const auto parts = split(entry.substr(eq + 1), '/');
    if (parts.size() != 3) return false;
    VarSpec v;
    v.global = split(parts[0], ',');
    v.offset = split(parts[1], ',');
    v.count = split(parts[2], ',');
    if (v.global.empty() || v.global.size() != v.offset.size() ||
        v.global.size() != v.count.size()) {
      return false;
    }
    (*out)[name] = std::move(v);
  }
  return true;
}

/// Resolve a VarSpec against the scalars written so far.
bool resolve(const Stream& st, const VarSpec& spec, Dimensions* global,
             Box* box) {
  const std::size_t nd = spec.global.size();
  global->resize(nd);
  box->offset.resize(nd);
  box->count.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto g = st.scalars.find(spec.global[d]);
    const auto o = st.scalars.find(spec.offset[d]);
    const auto c = st.scalars.find(spec.count[d]);
    if (g == st.scalars.end() || o == st.scalars.end() ||
        c == st.scalars.end()) {
      return false;
    }
    (*global)[d] = g->second;
    box->offset[d] = o->second;
    box->count[d] = c->second;
  }
  return true;
}

}  // namespace

int adios_init(const char* config_spec, pmemcpy::PmemNode& node) {
  std::lock_guard lk(g_mu);
  g_ctx.node = &node;
  g_ctx.vars.clear();
  if (config_spec != nullptr && config_spec[0] != '\0' &&
      !parse_config(config_spec, &g_ctx.vars)) {
    return -1;
  }
  return 0;
}

int adios_finalize(int) {
  std::lock_guard lk(g_mu);
  if (!g_ctx.streams.empty()) return -1;  // leaked handles
  g_ctx.node = nullptr;
  g_ctx.vars.clear();
  return 0;
}

int adios_open(std::int64_t* handle, const char*, const char* path,
               const char* mode, pmemcpy::par::Comm& comm) {
  pmemcpy::PmemNode* node;
  {
    std::lock_guard lk(g_mu);
    node = g_ctx.node;
  }
  if (node == nullptr || handle == nullptr || mode == nullptr) return -1;
  try {
    auto st = std::make_unique<Stream>();
    if (std::strcmp(mode, "w") == 0) {
      st->writer = miniio::make_adios_writer(*node, path, comm);
    } else if (std::strcmp(mode, "r") == 0) {
      st->reader = miniio::make_adios_reader(*node, path, comm);
    } else {
      return -1;
    }
    std::lock_guard lk(g_mu);
    *handle = g_ctx.next_handle++;
    g_ctx.streams[*handle] = std::move(st);
    return 0;
  } catch (...) {
    return -1;
  }
}

int adios_write(std::int64_t handle, const char* name, const void* data) {
  Stream* st;
  VarSpec spec;
  bool is_array;
  {
    std::lock_guard lk(g_mu);
    const auto it = g_ctx.streams.find(handle);
    if (it == g_ctx.streams.end()) return -1;
    st = it->second.get();
    const auto vit = g_ctx.vars.find(name);
    is_array = vit != g_ctx.vars.end();
    if (is_array) spec = vit->second;
  }
  if (!is_array) {
    // Scalars (dimensions bookkeeping), as in the paper's listing.
    std::size_t v;
    std::memcpy(&v, data, sizeof(v));
    st->scalars[name] = v;
    return 0;
  }
  if (!st->writer) return -1;
  Dimensions global;
  Box box;
  if (!resolve(*st, spec, &global, &box)) return -1;
  try {
    st->writer->write(name, static_cast<const double*>(data), box, global);
    return 0;
  } catch (...) {
    return -1;
  }
}

int adios_read(std::int64_t handle, const char* name, void* data) {
  Stream* st;
  VarSpec spec;
  {
    std::lock_guard lk(g_mu);
    const auto it = g_ctx.streams.find(handle);
    if (it == g_ctx.streams.end()) return -1;
    st = it->second.get();
    const auto vit = g_ctx.vars.find(name);
    if (vit == g_ctx.vars.end()) return -1;
    spec = vit->second;
  }
  if (!st->reader) return -1;
  Dimensions global;
  Box box;
  if (!resolve(*st, spec, &global, &box)) return -1;
  try {
    st->reader->read(name, static_cast<double*>(data), box);
    return 0;
  } catch (...) {
    return -1;
  }
}

int adios_close(std::int64_t handle) {
  std::unique_ptr<Stream> st;
  {
    std::lock_guard lk(g_mu);
    const auto it = g_ctx.streams.find(handle);
    if (it == g_ctx.streams.end()) return -1;
    st = std::move(it->second);
    g_ctx.streams.erase(it);
  }
  try {
    if (st->writer) st->writer->close();
    if (st->reader) st->reader->close();
    return 0;
  } catch (...) {
    return -1;
  }
}

}  // namespace miniadios1
