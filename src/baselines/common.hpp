// Internal helpers shared by the miniio baselines: footer-based metadata
// blocks and linear-index algebra over the contiguous layout.
#pragma once

#include <miniio/miniio.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/serial/binary.hpp>

#include <cstdint>
#include <vector>

namespace miniio::detail {

inline constexpr std::uint64_t kFooterMagic = 0x4d494e49494f4654ull;  // MINIIOFT

/// Append a metadata footer: [bytes][len u64][magic u64].
void write_footer(pmemcpy::fs::FileSystem& fs, pmemcpy::fs::File file,
                  std::uint64_t at, const std::vector<std::byte>& bytes);

/// Read the footer written by write_footer (throws if absent/corrupt).
[[nodiscard]] std::vector<std::byte> read_footer(pmemcpy::fs::FileSystem& fs,
                                                 pmemcpy::fs::File file);

[[nodiscard]] inline std::size_t product(const Dimensions& dims) {
  std::size_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

/// Inverse of row-major linearisation.
[[nodiscard]] inline Dimensions lin_to_coord(const Dimensions& global,
                                             std::size_t lin) {
  Dimensions coord(global.size());
  for (std::size_t d = global.size(); d-- > 0;) {
    coord[d] = lin % global[d];
    lin /= global[d];
  }
  return coord;
}

/// A contiguous run of elements in a variable's global linearisation.
struct Run {
  std::uint64_t lin;    ///< global linear element offset
  std::uint64_t elems;  ///< element count
};

}  // namespace miniio::detail

namespace miniio {

// Internal factories (defined in adios.cpp / contiguous.cpp).
std::unique_ptr<Writer> make_adios_writer(pmemcpy::PmemNode& node,
                                          const std::string& path,
                                          pmemcpy::par::Comm& comm);
std::unique_ptr<Reader> make_adios_reader(pmemcpy::PmemNode& node,
                                          const std::string& path,
                                          pmemcpy::par::Comm& comm);
std::unique_ptr<Writer> make_contiguous_writer(pmemcpy::PmemNode& node,
                                               const std::string& path,
                                               pmemcpy::par::Comm& comm,
                                               bool hdf5_overheads,
                                               bool nofill);
std::unique_ptr<Reader> make_contiguous_reader(pmemcpy::PmemNode& node,
                                               const std::string& path,
                                               pmemcpy::par::Comm& comm,
                                               bool hdf5_overheads);

}  // namespace miniio
