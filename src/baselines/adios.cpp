// miniADIOS: BP-style log-structured parallel writer/reader.
//
// Write path (per the paper's description of ADIOS):
//   1. each process serializes its subarrays (BP records) into a DRAM
//      staging buffer — the copy pMEMCPY avoids;
//   2. processes exscan their buffer sizes and each POSIX-writes its log at
//      an exclusive offset of the shared file (independent I/O, no shuffle);
//   3. rank 0 gathers per-rank index blocks and writes a footer.
// Read path: the footer index is read and broadcast; reads POSIX-read the
// serialized record into DRAM and then unpack-copy into the user buffer
// (the second pass pMEMCPY's direct deserialization avoids).
#include "common.hpp"

#include <pmemcpy/serial/bp4.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstring>
#include <map>

namespace miniio {

namespace {

using detail::product;
using pmemcpy::fs::OpenMode;

struct IndexEntry {
  std::string name;
  std::vector<std::uint64_t> global;
  std::vector<std::uint64_t> offset;
  std::vector<std::uint64_t> count;
  std::uint64_t payload_off = 0;
  std::uint64_t payload_bytes = 0;
  /// BP "lightweight data characterization": per-block statistics.
  double min = 0, max = 0;

  template <class Ar>
  void serialize(Ar& ar) {
    ar(name, global, offset, count, payload_off, payload_bytes, min, max);
  }

  [[nodiscard]] Box box() const {
    return Box(Dimensions(offset.begin(), offset.end()),
               Dimensions(count.begin(), count.end()));
  }
};

class AdiosWriter final : public Writer {
 public:
  AdiosWriter(pmemcpy::PmemNode& node, std::string path,
              pmemcpy::par::Comm& comm)
      : fs_(&node.fs()), path_(std::move(path)), comm_(&comm) {
    if (comm_->rank() == 0) {
      file_ = fs_->open(path_, OpenMode::kTruncate);
    }
    comm_->barrier();
    if (comm_->rank() != 0) {
      file_ = fs_->open(path_, OpenMode::kWrite);
    }
  }

  void write(const std::string& name, const double* data, const Box& local,
             const Dimensions& global) override {
    pmemcpy::serial::VarMeta meta;
    meta.dtype = pmemcpy::serial::DType::kF64;
    meta.serializer = pmemcpy::serial::SerializerId::kBp4;
    meta.payload_bytes = local.elements() * sizeof(double);
    meta.global.assign(global.begin(), global.end());
    meta.offset.assign(local.offset.begin(), local.offset.end());
    meta.count.assign(local.count.begin(), local.count.end());

    // BP data characterization: a statistics pass over the block.
    const std::size_t nelems = local.elements();
    double mn = nelems > 0 ? data[0] : 0.0;
    double mx = mn;
    for (std::size_t i = 1; i < nelems; ++i) {
      mn = std::min(mn, data[i]);
      mx = std::max(mx, data[i]);
    }
    pmemcpy::sim::ctx().charge_cpu_copy(meta.payload_bytes);

    // Stage into the in-DRAM log (the serialization copy).
    pmemcpy::serial::bp4_write_header(log_, meta);
    IndexEntry e;
    e.name = name;
    e.global = meta.global;
    e.offset = meta.offset;
    e.count = meta.count;
    e.payload_off = log_.tell();  // log-relative; rebased in close()
    e.payload_bytes = meta.payload_bytes;
    e.min = mn;
    e.max = mx;
    log_.write(data, meta.payload_bytes);
    index_.push_back(std::move(e));
  }

  void close() override {
    const std::uint64_t my_bytes = log_.bytes().size();
    const std::uint64_t my_off = comm_->exscan_sum(my_bytes);
    const std::uint64_t total = comm_->allreduce_sum(my_bytes);

    if (my_bytes > 0) {
      fs_->pwrite(file_, log_.bytes().data(), my_bytes, my_off);
    }
    for (auto& e : index_) e.payload_off += my_off;

    // Gather index blocks to rank 0.
    pmemcpy::serial::BufferSink blob;
    {
      pmemcpy::serial::BinaryWriter w(blob);
      w(index_);
    }
    const std::uint64_t blob_bytes = blob.bytes().size();
    std::vector<std::uint64_t> sizes(
        static_cast<std::size_t>(comm_->size()));
    comm_->allgather(&blob_bytes, sizeof(blob_bytes), sizes.data());
    std::vector<std::size_t> counts(sizes.begin(), sizes.end());
    std::vector<std::size_t> displs(counts.size(), 0);
    for (std::size_t i = 1; i < counts.size(); ++i) {
      displs[i] = displs[i - 1] + counts[i - 1];
    }
    std::vector<std::byte> gathered;
    if (comm_->rank() == 0) {
      gathered.resize(displs.back() + counts.back());
    }
    comm_->gatherv(blob.bytes().data(), blob_bytes, gathered.data(), counts,
                   displs, 0);

    if (comm_->rank() == 0) {
      pmemcpy::serial::BufferSink footer;
      pmemcpy::serial::BinaryWriter w(footer);
      w(static_cast<std::uint64_t>(comm_->size()));
      for (std::size_t r = 0; r < counts.size(); ++r) {
        w(static_cast<std::uint64_t>(counts[r]));
        footer.write(gathered.data() + displs[r], counts[r]);
      }
      detail::write_footer(*fs_, file_, total, footer.bytes());
    }
    comm_->barrier();
  }

 private:
  pmemcpy::fs::FileSystem* fs_;
  std::string path_;
  pmemcpy::par::Comm* comm_;
  pmemcpy::fs::File file_;
  pmemcpy::serial::BufferSink log_;
  std::vector<IndexEntry> index_;
};

class AdiosReader final : public Reader {
 public:
  AdiosReader(pmemcpy::PmemNode& node, std::string path,
              pmemcpy::par::Comm& comm)
      : fs_(&node.fs()), comm_(&comm) {
    file_ = fs_->open(path, OpenMode::kRead);
    std::vector<std::byte> footer;
    std::uint64_t len = 0;
    if (comm_->rank() == 0) {
      footer = detail::read_footer(*fs_, file_);
      len = footer.size();
    }
    comm_->bcast(&len, sizeof(len), 0);
    footer.resize(len);
    comm_->bcast(footer.data(), len, 0);

    pmemcpy::serial::BufferSource src(footer);
    pmemcpy::serial::BinaryReader r(src);
    std::uint64_t nblocks = 0;
    r(nblocks);
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      std::uint64_t blob_len = 0;
      r(blob_len);
      std::vector<IndexEntry> block;
      r(block);
      for (auto& e : block) index_.push_back(std::move(e));
    }
  }

  Dimensions dims(const std::string& name) override {
    for (const auto& e : index_) {
      if (e.name == name) return Dimensions(e.global.begin(), e.global.end());
    }
    throw pmemcpy::fs::FsError("miniADIOS: unknown variable: " + name);
  }

  void read(const std::string& name, double* data, const Box& local) override {
    auto& c = pmemcpy::sim::ctx();
    std::size_t covered = 0;
    for (const auto& e : index_) {
      if (e.name != name) continue;
      const Box pbox = e.box();
      const Box region = pmemcpy::intersect(local, pbox);
      if (region.empty()) continue;
      // POSIX-read the serialized record into DRAM...
      staging_.resize(e.payload_bytes);
      fs_->pread(file_, staging_.data(), e.payload_bytes, e.payload_off);
      // ...then deserialize (a second copy) into the user buffer.
      pmemcpy::copy_box_region(reinterpret_cast<std::byte*>(data), local,
                               staging_.data(), pbox, region,
                               sizeof(double));
      c.charge_cpu_copy(region.elements() * sizeof(double));
      // The DRAM bounce before deserialization is what the read-side copy
      // audit charges against this library.
      pmemcpy::trace::count(pmemcpy::trace::Counter::kCopyReadStagedBytes,
                            region.elements() * sizeof(double));
      covered += region.elements();
    }
    if (covered < local.elements()) {
      throw pmemcpy::fs::FsError("miniADIOS: region not covered: " + name);
    }
  }

  void close() override { comm_->barrier(); }

 private:
  pmemcpy::fs::FileSystem* fs_;
  pmemcpy::par::Comm* comm_;
  pmemcpy::fs::File file_;
  std::vector<IndexEntry> index_;
  std::vector<std::byte> staging_;
};

}  // namespace

std::unique_ptr<Writer> make_adios_writer(pmemcpy::PmemNode& node,
                                          const std::string& path,
                                          pmemcpy::par::Comm& comm) {
  return std::make_unique<AdiosWriter>(node, path, comm);
}

std::unique_ptr<Reader> make_adios_reader(pmemcpy::PmemNode& node,
                                          const std::string& path,
                                          pmemcpy::par::Comm& comm) {
  return std::make_unique<AdiosReader>(node, path, comm);
}

}  // namespace miniio
