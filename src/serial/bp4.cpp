#include <pmemcpy/serial/bp4.hpp>

namespace pmemcpy::serial {

namespace {
struct FixedHeader {
  std::uint32_t magic;
  std::uint8_t version;
  std::uint8_t serializer;
  std::uint8_t dtype;
  std::uint8_t ndims;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(FixedHeader) == 16);
}  // namespace

std::size_t bp4_header_size(std::uint32_t ndims) {
  return sizeof(FixedHeader) + static_cast<std::size_t>(ndims) * 3 * 8;
}

void bp4_write_header(Sink& sink, const VarMeta& meta) {
  if (meta.global.size() != meta.offset.size() ||
      meta.global.size() != meta.count.size()) {
    throw SerialError("bp4: inconsistent dimension vectors");
  }
  if (meta.global.size() > 255) throw SerialError("bp4: too many dims");
  FixedHeader h{};
  h.magic = kBp4Magic;
  h.version = kBp4Version;
  h.serializer = static_cast<std::uint8_t>(meta.serializer);
  h.dtype = static_cast<std::uint8_t>(meta.dtype);
  h.ndims = static_cast<std::uint8_t>(meta.global.size());
  h.payload_bytes = meta.payload_bytes;
  sink.write(&h, sizeof(h));
  for (std::size_t d = 0; d < meta.global.size(); ++d) {
    const std::uint64_t triple[3] = {meta.global[d], meta.offset[d],
                                     meta.count[d]};
    sink.write(triple, sizeof(triple));
  }
}

VarMeta bp4_read_header(Source& source) {
  FixedHeader h{};
  source.read(&h, sizeof(h));
  if (h.magic != kBp4Magic) throw SerialError("bp4: bad magic");
  if (h.version != kBp4Version) throw SerialError("bp4: bad version");
  VarMeta meta;
  meta.dtype = static_cast<DType>(h.dtype);
  meta.serializer = static_cast<SerializerId>(h.serializer);
  meta.payload_bytes = h.payload_bytes;
  meta.global.resize(h.ndims);
  meta.offset.resize(h.ndims);
  meta.count.resize(h.ndims);
  for (std::uint32_t d = 0; d < h.ndims; ++d) {
    std::uint64_t triple[3];
    source.read(triple, sizeof(triple));
    meta.global[d] = triple[0];
    meta.offset[d] = triple[1];
    meta.count[d] = triple[2];
  }
  return meta;
}

}  // namespace pmemcpy::serial
