#include <pmemcpy/serial/filter.hpp>

#include <cstring>

namespace pmemcpy::serial {

namespace {

// --- RLE: [count u8][byte] runs; count 1..255 ------------------------------

void rle_encode(std::span<const std::byte> in, std::vector<std::byte>& out) {
  std::size_t i = 0;
  while (i < in.size()) {
    const std::byte b = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == b && run < 255) ++run;
    out.push_back(static_cast<std::byte>(run));
    out.push_back(b);
    i += run;
  }
}

void rle_decode(std::span<const std::byte> in, std::span<std::byte> out) {
  if (in.size() % 2 != 0) throw SerialError("rle: truncated stream");
  std::size_t o = 0;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const auto run = std::to_integer<std::size_t>(in[i]);
    if (run == 0 || o + run > out.size()) {
      throw SerialError("rle: corrupt stream");
    }
    std::memset(out.data() + o, std::to_integer<int>(in[i + 1]), run);
    o += run;
  }
  if (o != out.size()) throw SerialError("rle: short stream");
}

// --- Delta: per-u64 zigzag(delta) varints; byte tail raw --------------------

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(std::span<const std::byte> in, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= in.size() || shift > 63) {
      throw SerialError("delta: corrupt varint");
    }
    const auto b = std::to_integer<std::uint8_t>(in[(*pos)++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

void delta_encode(std::span<const std::byte> in, std::vector<std::byte>& out) {
  const std::size_t words = in.size() / 8;
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t cur;
    std::memcpy(&cur, in.data() + w * 8, 8);
    put_varint(out, zigzag(static_cast<std::int64_t>(cur - prev)));
    prev = cur;
  }
  // Raw byte tail (payloads not a multiple of 8).
  out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(words * 8),
             in.end());
}

void delta_decode(std::span<const std::byte> in, std::span<std::byte> out) {
  const std::size_t words = out.size() / 8;
  const std::size_t tail = out.size() - words * 8;
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    prev += static_cast<std::uint64_t>(unzigzag(get_varint(in, &pos)));
    std::memcpy(out.data() + w * 8, &prev, 8);
  }
  if (in.size() - pos != tail) throw SerialError("delta: bad tail");
  std::memcpy(out.data() + words * 8, in.data() + pos, tail);
}

void charge_pass(std::size_t in_bytes, std::size_t out_bytes) {
  sim::ctx().charge_cpu_copy(in_bytes + out_bytes);
}

}  // namespace

std::vector<std::byte> filter_encode(FilterId filter,
                                     std::span<const std::byte> in) {
  std::vector<std::byte> out;
  switch (filter) {
    case FilterId::kNone:
      out.assign(in.begin(), in.end());
      break;
    case FilterId::kRle:
      out.reserve(in.size() / 4);
      rle_encode(in, out);
      break;
    case FilterId::kDelta:
      out.reserve(in.size() / 2);
      delta_encode(in, out);
      break;
  }
  charge_pass(in.size(), out.size());
  return out;
}

void filter_decode(FilterId filter, std::span<const std::byte> in,
                   std::span<std::byte> out) {
  switch (filter) {
    case FilterId::kNone:
      if (in.size() != out.size()) throw SerialError("filter: size mismatch");
      std::memcpy(out.data(), in.data(), in.size());
      break;
    case FilterId::kRle:
      rle_decode(in, out);
      break;
    case FilterId::kDelta:
      delta_decode(in, out);
      break;
  }
  charge_pass(in.size(), out.size());
}

}  // namespace pmemcpy::serial
