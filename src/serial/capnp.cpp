#include <pmemcpy/serial/capnp.hpp>

#include <cstring>

namespace pmemcpy::serial {

namespace {
struct Word0 {
  std::uint32_t magic;
  std::uint8_t dtype;
  std::uint8_t ndims;
  std::uint16_t reserved;
};
static_assert(sizeof(Word0) == 8);
}  // namespace

std::size_t capnp_header_size(std::uint32_t ndims) {
  return 16 + static_cast<std::size_t>(ndims) * 24;
}

void capnp_write_header(Sink& sink, const VarMeta& meta) {
  if (meta.global.size() != meta.offset.size() ||
      meta.global.size() != meta.count.size()) {
    throw SerialError("capnp: inconsistent dimension vectors");
  }
  if (meta.global.size() > 255) throw SerialError("capnp: too many dims");
  Word0 w0{};
  w0.magic = kCapnpMagic;
  w0.dtype = static_cast<std::uint8_t>(meta.dtype);
  w0.ndims = static_cast<std::uint8_t>(meta.global.size());
  sink.write(&w0, sizeof(w0));
  sink.write(&meta.payload_bytes, sizeof(meta.payload_bytes));
  for (std::size_t d = 0; d < meta.global.size(); ++d) {
    const std::uint64_t triple[3] = {meta.global[d], meta.offset[d],
                                     meta.count[d]};
    sink.write(triple, sizeof(triple));
  }
}

VarMeta capnp_read_header(Source& source) {
  Word0 w0{};
  source.read(&w0, sizeof(w0));
  if (w0.magic != kCapnpMagic) throw SerialError("capnp: bad magic");
  VarMeta meta;
  meta.dtype = static_cast<DType>(w0.dtype);
  source.read(&meta.payload_bytes, sizeof(meta.payload_bytes));
  meta.global.resize(w0.ndims);
  meta.offset.resize(w0.ndims);
  meta.count.resize(w0.ndims);
  for (std::uint32_t d = 0; d < w0.ndims; ++d) {
    std::uint64_t triple[3];
    source.read(triple, sizeof(triple));
    meta.global[d] = triple[0];
    meta.offset[d] = triple[1];
    meta.count[d] = triple[2];
  }
  return meta;
}

bool capnp_valid(const std::byte* rec, std::size_t len) {
  if (len < 16) return false;
  Word0 w0{};
  std::memcpy(&w0, rec, sizeof(w0));
  if (w0.magic != kCapnpMagic) return false;
  return len >= capnp_header_size(w0.ndims);
}

DType capnp_dtype(const std::byte* rec) {
  return static_cast<DType>(std::to_integer<std::uint8_t>(rec[4]));
}

std::uint32_t capnp_ndims(const std::byte* rec) {
  return std::to_integer<std::uint8_t>(rec[5]);
}

std::uint64_t capnp_payload_bytes(const std::byte* rec) {
  std::uint64_t v;
  std::memcpy(&v, rec + 8, sizeof(v));
  return v;
}

const std::byte* capnp_payload(const std::byte* rec) {
  return rec + capnp_header_size(capnp_ndims(rec));
}

}  // namespace pmemcpy::serial
