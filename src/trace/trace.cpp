#include <pmemcpy/trace/trace.hpp>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>

namespace pmemcpy::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Registry cap: past this, spans are counted but not recorded, so a
/// traced stress run degrades gracefully instead of eating memory.
constexpr std::size_t kMaxSpans = std::size_t{1} << 18;

constexpr int kNC = static_cast<int>(Counter::kNumCounters);
constexpr int kNH = static_cast<int>(Hist::kNumHists);

struct Registry {
  std::mutex mu;
  std::vector<SpanData> spans;
  std::uint64_t next_id = 1;
  std::uint64_t epoch = 0;
  std::uint64_t dropped = 0;
  HistData hists[kNH] = {};
  std::atomic<std::uint64_t> counters[kNC] = {};
  std::mutex path_mu;
  std::string export_path;
};

Registry& reg() {
  static Registry r;
  return r;
}

/// Per-thread stack of open spans: (epoch, id); id 0 = dropped span.
thread_local std::vector<std::pair<std::uint64_t, std::uint64_t>> t_stack;

std::int64_t to_ns(double seconds) noexcept {
  return std::llround(seconds * 1e9);
}

void snapshot_charges(double out[kNumChargeKinds]) noexcept {
  const auto& c = sim::ctx();
  for (int i = 0; i < kNumChargeKinds; ++i) {
    out[i] = c.charged(static_cast<sim::Charge>(i));
  }
}

/// Print integer nanoseconds as Chrome's microsecond timestamps without
/// going through a double (byte-stable).
void append_us(std::ostringstream& os, std::int64_t ns) {
  os << ns / 1000 << '.';
  const auto frac = static_cast<int>(ns % 1000);
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

bool env_truthy(const char* value) {
  return !(value[0] == '\0' || value[0] == '0' || value[0] == 'n' ||
           value[0] == 'N' || value[0] == 'f' || value[0] == 'F');
}

bool is_plain_flag(const char* v) {
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "TRUE") == 0 || std::strcmp(v, "yes") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "ON") == 0;
}

extern "C" void pmemcpy_trace_export_at_exit() { export_to_path(); }

/// PMEMCPY_TRACE env wins over the -DPMEMCPY_TRACE=ON compile default
/// (same precedence as the persist checker's toggle).  A truthy value that
/// is not a plain flag doubles as the exit-time export path.
struct EnvInit {
  EnvInit() {
    bool on = false;
    if (const char* e = std::getenv("PMEMCPY_TRACE")) {
      on = env_truthy(e);
      if (on && !is_plain_flag(e)) {
        set_export_path(e);
        std::atexit(&pmemcpy_trace_export_at_exit);
      }
    } else {
#ifdef PMEMCPY_TRACE_DEFAULT
      on = true;
#endif
    }
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }
};
EnvInit g_env_init;

}  // namespace

namespace detail {

void count_slow(Counter c, std::uint64_t n) noexcept {
  reg().counters[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
}

void observe_slow(Hist h, double value) noexcept {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  HistData& hd = r.hists[static_cast<int>(h)];
  if (hd.count == 0 || value < hd.min) hd.min = value;
  if (hd.count == 0 || value > hd.max) hd.max = value;
  ++hd.count;
  hd.sum += value;
}

}  // namespace detail

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kStoreOps: return "store_ops";
    case Counter::kFlushOps: return "flush_ops";
    case Counter::kLinesFlushed: return "lines_flushed";
    case Counter::kFenceOps: return "fence_ops";
    case Counter::kCleanFlushes: return "clean_flushes";
    case Counter::kDuplicateFlushes: return "duplicate_flushes";
    case Counter::kEmptyFences: return "empty_fences";
    case Counter::kCorrectnessViolations: return "correctness_violations";
    case Counter::kPersistOps: return "persist_ops";
    case Counter::kBytesWritten: return "bytes_written";
    case Counter::kBytesRead: return "bytes_read";
    case Counter::kAllocOps: return "alloc_ops";
    case Counter::kAllocBytes: return "alloc_bytes";
    case Counter::kFreeOps: return "free_ops";
    case Counter::kTxCommits: return "tx_commits";
    case Counter::kEnginePuts: return "engine_puts";
    case Counter::kEngineGets: return "engine_gets";
    case Counter::kBatchCommits: return "batch_commits";
    case Counter::kCrashes: return "crashes";
    case Counter::kRecoveries: return "recoveries";
    case Counter::kFtTransientFaults: return "ft_transient_faults";
    case Counter::kFtRetries: return "ft_retries";
    case Counter::kFtStickyRanges: return "ft_sticky_ranges";
    case Counter::kFtQuarantines: return "ft_quarantines";
    case Counter::kFtRelocations: return "ft_relocations";
    case Counter::kFtPutRetries: return "ft_put_retries";
    case Counter::kFtDegradedTransitions: return "ft_degraded_transitions";
    case Counter::kFtDamagedKeys: return "ft_damaged_keys";
    case Counter::kCopyStagedBytes: return "copy_staged_bytes";
    case Counter::kCopyDirectBytes: return "copy_direct_bytes";
    case Counter::kCopyStagedPuts: return "copy_staged_puts";
    case Counter::kCopyReadStagedBytes: return "copy_read_staged_bytes";
    case Counter::kCopyReadDirectBytes: return "copy_read_direct_bytes";
    case Counter::kCopyReadBounceBytes: return "copy_read_bounce_bytes";
    case Counter::kReadCacheHits: return "read_cache_hits";
    case Counter::kReadCacheMisses: return "read_cache_misses";
    case Counter::kReadCacheHitBytes: return "read_cache_hit_bytes";
    case Counter::kReadCacheFillBytes: return "read_cache_fill_bytes";
    case Counter::kReadCacheEvictions: return "read_cache_evictions";
    case Counter::kReadCacheInvalidations: return "read_cache_invalidations";
    case Counter::kAllocLaneAcquisitions: return "alloc_lane_acquisitions";
    case Counter::kAllocQueueCharges: return "alloc_queue_charges";
    case Counter::kAllocMetadataPersists: return "alloc_metadata_persists";
    case Counter::kAllocMagazineHits: return "alloc_magazine_hits";
    case Counter::kAllocMagazineFreeHits: return "alloc_magazine_free_hits";
    case Counter::kAllocMagazineRefills: return "alloc_magazine_refills";
    case Counter::kAllocMagazineFlushbacks: return "alloc_magazine_flushbacks";
    case Counter::kAllocMagazineSwept: return "alloc_magazine_swept";
    case Counter::kNumCounters: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::kBatchSize: return "batch_size";
    case Hist::kShardQueueDelay: return "shard_queue_delay_sec";
    case Hist::kAllocSize: return "alloc_size";
    case Hist::kNumHists: break;
  }
  return "unknown";
}

const char* charge_name(sim::Charge c) noexcept {
  switch (c) {
    case sim::Charge::kCpuCopy: return "cpu_copy";
    case sim::Charge::kPmemRead: return "pmem_read";
    case sim::Charge::kPmemWrite: return "pmem_write";
    case sim::Charge::kPmemPersist: return "pmem_persist";
    case sim::Charge::kNetwork: return "network";
    case sim::Charge::kSyscall: return "syscall";
    case sim::Charge::kPageFault: return "page_fault";
    case sim::Charge::kPfs: return "pfs";
    case sim::Charge::kOther: return "other";
    case sim::Charge::kRetryBackoff: return "retry_backoff";
    case sim::Charge::kNumCharges: break;
  }
  return "unknown";
}

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() noexcept {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  r.spans.clear();
  r.next_id = 1;
  ++r.epoch;
  r.dropped = 0;
  for (auto& h : r.hists) h = HistData{};
  for (auto& c : r.counters) c.store(0, std::memory_order_relaxed);
}

void on_crash() noexcept {
  if (!enabled()) return;
  Registry& r = reg();
  {
    std::lock_guard lk(r.mu);
    for (auto& s : r.spans) {
      if (s.end_ns < 0) s.crashed = true;
    }
  }
  detail::count_slow(Counter::kCrashes, 1);
}

std::uint64_t counter(Counter c) noexcept {
  return reg().counters[static_cast<int>(c)].load(std::memory_order_relaxed);
}

HistData histogram(Hist h) noexcept {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  return r.hists[static_cast<int>(h)];
}

void Span::open(const char* name) noexcept {
  const auto& c = sim::ctx();
  SpanData rec;
  rec.name = name;
  rec.rank = c.rank();
  rec.start_ns = to_ns(c.now());
  // charge_sec temporarily holds the open snapshot; close() turns it into
  // the inclusive delta.
  snapshot_charges(rec.charge_sec);

  Registry& r = reg();
  std::lock_guard lk(r.mu);
  epoch_ = r.epoch;
  armed_ = true;
  if (r.spans.size() >= kMaxSpans) {
    ++r.dropped;
    id_ = 0;
  } else {
    // Parent: the innermost open span of this thread that is both from the
    // current epoch and actually recorded.
    for (auto it = t_stack.rbegin(); it != t_stack.rend(); ++it) {
      if (it->first == r.epoch && it->second != 0) {
        rec.parent = it->second;
        break;
      }
    }
    id_ = r.next_id++;
    rec.id = id_;
    r.spans.push_back(rec);
  }
  t_stack.emplace_back(epoch_, id_);
}

void Span::close() noexcept {
  armed_ = false;
  if (!t_stack.empty()) t_stack.pop_back();
  if (id_ == 0) return;
  double now_charges[kNumChargeKinds];
  snapshot_charges(now_charges);
  const std::int64_t end = to_ns(sim::ctx().now());
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  if (r.epoch != epoch_) return;  // reset() happened while open
  SpanData& rec = r.spans[id_ - 1];
  rec.end_ns = end;
  for (int i = 0; i < kNumChargeKinds; ++i) {
    rec.charge_sec[i] = now_charges[i] - rec.charge_sec[i];
  }
}

std::vector<SpanData> snapshot() {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  return r.spans;
}

std::uint64_t dropped_spans() noexcept {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  return r.dropped;
}

std::uint64_t high_span_id() noexcept {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  return r.next_id - 1;
}

std::string chrome_json() {
  std::vector<SpanData> spans = snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanData& a, const SpanData& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.id < b.id;
                   });
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (s.end_ns < 0) continue;  // still open: no complete event to emit
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"pmemcpy\",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.rank
       << ",\"ts\":";
    append_us(os, s.start_ns);
    os << ",\"dur\":";
    append_us(os, s.duration_ns());
    os << ",\"args\":{\"id\":" << s.id << ",\"parent\":" << s.parent;
    if (s.crashed) os << ",\"crashed\":true";
    for (int i = 0; i < kNumChargeKinds; ++i) {
      const std::int64_t ns = to_ns(s.charge_sec[i]);
      if (ns == 0) continue;
      os << ",\"" << charge_name(static_cast<sim::Charge>(i)) << "_ns\":"
         << ns;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string schema_fields(
    const std::uint64_t (&row)[static_cast<int>(Counter::kNumCounters)],
    int always_first) {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < kNC; ++i) {
    if (i >= always_first && row[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << '"' << counter_name(static_cast<Counter>(i)) << "\": " << row[i];
  }
  return os.str();
}

std::string stats_json() {
  std::uint64_t row[kNC];
  for (int i = 0; i < kNC; ++i) row[i] = counter(static_cast<Counter>(i));

  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t crashed = 0;
    std::int64_t total_ns = 0;
    std::int64_t child_ns = 0;
  };
  std::vector<SpanData> spans = snapshot();
  // Per-record child totals (for self time), then aggregate by name.
  std::vector<std::int64_t> child_of(spans.size() + 1, 0);
  for (const auto& s : spans) {
    if (s.parent != 0 && s.parent <= spans.size()) {
      child_of[s.parent] += s.duration_ns();
    }
  }
  std::map<std::string_view, Agg> by_name;
  for (const auto& s : spans) {
    Agg& a = by_name[s.name];
    ++a.count;
    if (s.crashed) ++a.crashed;
    a.total_ns += s.duration_ns();
    a.child_ns += s.id <= spans.size() ? child_of[s.id] : 0;
  }

  std::ostringstream os;
  os << "{\"counters\":{" << schema_fields(row, kNC) << "},\"histograms\":{";
  bool first = true;
  for (int i = 0; i < kNH; ++i) {
    const HistData h = histogram(static_cast<Hist>(i));
    if (h.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << hist_name(static_cast<Hist>(i)) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << '}';
  }
  os << "},\"spans\":[";
  first = true;
  for (const auto& [name, a] : by_name) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"count\":" << a.count
       << ",\"total_ns\":" << a.total_ns
       << ",\"self_ns\":" << a.total_ns - a.child_ns;
    if (a.crashed != 0) os << ",\"crashed\":" << a.crashed;
    os << '}';
  }
  os << "],\"dropped_spans\":" << dropped_spans() << '}';
  return os.str();
}

void set_export_path(std::string path) {
  Registry& r = reg();
  std::lock_guard lk(r.path_mu);
  r.export_path = std::move(path);
}

std::string export_path() {
  Registry& r = reg();
  std::lock_guard lk(r.path_mu);
  return r.export_path;
}

bool export_to_path() {
  const std::string path = export_path();
  if (path.empty()) return false;
  const auto write = [](const std::string& p, const std::string& body) {
    std::FILE* f = std::fopen(p.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pmemcpy-trace: cannot write %s\n", p.c_str());
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  };
  const bool a = write(path, chrome_json());
  const bool b = write(path + ".stats.json", stats_json());
  return a && b;
}

}  // namespace pmemcpy::trace
