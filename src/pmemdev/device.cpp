#include <pmemcpy/pmem/device.hpp>

#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

namespace pmemcpy::pmem {

namespace {
constexpr std::size_t kPage = 4096;

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

bool env_truthy(const char* value) {
  return !(value[0] == '\0' || value[0] == '0' || value[0] == 'n' ||
           value[0] == 'N' || value[0] == 'f' || value[0] == 'F');
}

/// PMEMCPY_PERSIST_CHECK env var wins; otherwise the CMake option
/// (-DPMEMCPY_PERSIST_CHECK=ON compiles the default to "attached").
bool checker_default_on() {
  if (const char* e = std::getenv("PMEMCPY_PERSIST_CHECK")) {
    return env_truthy(e);
  }
#ifdef PMEMCPY_PERSIST_CHECK_DEFAULT
  return true;
#else
  return false;
#endif
}

/// With PMEMCPY_PERSIST_CHECK_FATAL set, a device destructed with
/// unconsumed violations aborts the process — the CI enforcement gate.
bool checker_fatal_on() {
  const char* e = std::getenv("PMEMCPY_PERSIST_CHECK_FATAL");
  return e != nullptr && env_truthy(e);
}

/// splitmix64 finalizer — a cheap, well-mixed hash for torn-line selection
/// and the transient-fault coins.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Map a mixed 64-bit coin onto [0, 1).
double unit_interval(std::uint64_t coin) {
  return static_cast<double>(coin >> 11) * 0x1.0p-53;
}

double env_double(const char* name, double fallback) {
  const char* e = std::getenv(name);
  return e != nullptr ? std::atof(e) : fallback;
}

std::string range_str(std::size_t off, std::size_t len) {
  return "[" + std::to_string(off) + ", +" + std::to_string(len) + ")";
}
}  // namespace

Device::Device(std::size_t capacity, bool crash_shadow)
    : capacity_(round_up(capacity, kPage)),
      data_(std::make_unique<std::byte[]>(capacity_)),
      crash_shadow_(crash_shadow),
      touched_(capacity_ / kPage, false) {
  if (checker_default_on()) {
    enable_checker();
    // Env-driven runs (benches, checker CI config) get the process-exit
    // counter summary; explicitly enabled test checkers stay quiet.
    check::register_atexit_counter_dump();
  }
  // Env-driven transient-fault arming (the fault-matrix CI config).  A
  // programmatic set_fault_plan() later overrides these.
  const double rate = env_double("PMEMCPY_FAULT_RATE", 0.0);
  if (rate > 0.0) {
    t_read_rate_ = t_write_rate_ = t_persist_rate_ = rate;
    sticky_rate_ = env_double("PMEMCPY_FAULT_STICKY", 0.0);
    fault_seed_ = FaultPlan{}.fault_seed;
    if (const char* e = std::getenv("PMEMCPY_FAULT_SEED")) {
      fault_seed_ = std::strtoull(e, nullptr, 0);
    }
    if (const char* e = std::getenv("PMEMCPY_FAULT_RETRIES")) {
      const int n = std::atoi(e);
      if (n > 0) retry_.max_attempts = n;
    }
    transient_armed_.store(true, std::memory_order_relaxed);
  } else {
    fault_seed_ = FaultPlan{}.fault_seed;
  }
}

Device::~Device() {
  if (!checker_) return;
  const check::Report rep = checker_->report();
  check::accumulate_global(rep);
  // Lint tallies only exist as report fields (the traffic counters are
  // counted live); fold them into the trace registry at the same point
  // they reach the global checker counters.
  trace::count(trace::Counter::kCleanFlushes, rep.clean_flushes);
  trace::count(trace::Counter::kDuplicateFlushes, rep.duplicate_flushes);
  trace::count(trace::Counter::kEmptyFences, rep.empty_fences);
  trace::count(trace::Counter::kCorrectnessViolations,
               rep.correctness_violations);
  if (!rep.ok()) {
    std::fprintf(stderr, "pmem::Device: unconsumed persistency violations:\n%s",
                 rep.to_string().c_str());
    if (checker_fatal_on() && std::uncaught_exceptions() == 0) {
      std::fprintf(stderr,
                   "pmem::Device: aborting (PMEMCPY_PERSIST_CHECK_FATAL)\n");
      std::abort();
    }
  }
}

void Device::enable_checker() {
  if (!checker_) checker_ = std::make_unique<check::PersistChecker>();
}

check::Report Device::checker_report() const {
  return checker_ ? checker_->report() : check::Report{};
}

void Device::check_tx_begin(std::string_view name) {
  if (checker_ && !frozen()) checker_->tx_begin(name);
}

void Device::check_tx_commit() {
  if (checker_ && !frozen()) checker_->tx_commit(persist_ops());
}

void Device::check_tx_abort() {
  if (checker_ && !frozen()) checker_->tx_abort();
}

void Device::check_publish(std::size_t off, std::size_t len) {
  if (checker_ && !frozen()) checker_->on_publish(off, len, persist_ops());
}

void Device::check_range(std::size_t off, std::size_t len) const {
  if (off > capacity_ || len > capacity_ - off) {
    throw std::out_of_range("pmem::Device: access [" + std::to_string(off) +
                            ", +" + std::to_string(len) + ") beyond capacity " +
                            std::to_string(capacity_));
  }
}

void Device::write(std::size_t off, const void* src, std::size_t len) {
  check_range(off, len);
  if (frozen()) return;  // powered off: stores vanish
  note_write(off, len);
  std::memcpy(data_.get() + off, src, len);
  auto& c = sim::ctx();
  const auto& pm = c.model().pmem;
  c.advance(pm.write_latency + static_cast<double>(len) /
                                   c.shared_bw(pm.write_stream_bw,
                                               pm.write_total_bw),
            sim::Charge::kPmemWrite);
  trace::count(trace::Counter::kBytesWritten, len);
  std::lock_guard lk(mu_);
  bytes_written_ += len;
}

void Device::read(std::size_t off, void* dst, std::size_t len) const {
  check_range(off, len);
  check_media(off, len);
  if (transient_armed_.load(std::memory_order_relaxed)) {
    run_retries(FaultOp::kRead, off, len);
  }
  std::memcpy(dst, data_.get() + off, len);
  auto& c = sim::ctx();
  const auto& pm = c.model().pmem;
  c.advance(pm.read_latency + static_cast<double>(len) /
                                  c.shared_bw(pm.read_stream_bw,
                                              pm.read_total_bw),
            sim::Charge::kPmemRead);
  trace::count(trace::Counter::kBytesRead, len);
  std::lock_guard lk(mu_);
  bytes_read_ += len;
}

void Device::fill(std::size_t off, std::size_t len, std::byte value) {
  check_range(off, len);
  if (frozen()) return;
  note_write(off, len);
  std::memset(data_.get() + off, std::to_integer<int>(value), len);
  auto& c = sim::ctx();
  const auto& pm = c.model().pmem;
  c.advance(pm.write_latency + static_cast<double>(len) /
                                   c.shared_bw(pm.write_stream_bw,
                                               pm.write_total_bw),
            sim::Charge::kPmemWrite);
  trace::count(trace::Counter::kBytesWritten, len);
  std::lock_guard lk(mu_);
  bytes_written_ += len;
}

void Device::persist(std::size_t off, std::size_t len) {
  check_range(off, len);
  if (frozen()) return;  // powered off: nothing to make durable
  if (transient_armed_.load(std::memory_order_relaxed)) {
    try {
      check_sticky(off, len);
      run_retries(FaultOp::kPersist, off, len);
    } catch (const DeviceError&) {
      // The writeback never reached media: in-flight stores to these lines
      // are lost, exactly as on a crash.  Revert them to their last durable
      // image so the media state the caller recovers against matches what
      // the hardware would actually hold, then settle any earlier unfenced
      // flushes of the batch so the healing retry starts from a clean
      // ordering state.
      revert_unpersisted(off, len);
      settle_unwind();
      throw;
    }
  }
  const std::size_t first = off / kCacheLine;
  const std::size_t last = (off + len + kCacheLine - 1) / kCacheLine;
  auto& c = sim::ctx();
  const auto& pm = c.model().pmem;
  c.advance(static_cast<double>(last - first) * pm.persist_line_cost +
                pm.drain_cost,
            sim::Charge::kPmemPersist);
  const std::uint64_t op =
      persist_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op == crash_at_.load(std::memory_order_relaxed)) {
    // The scheduled crash point: power fails *before* this persist takes
    // effect, so the lines it covers stay unpersisted and are subject to
    // the revert policy like any other in-flight store.
    {
      std::lock_guard lk(mu_);
      apply_crash_locked();
      frozen_.store(true, std::memory_order_relaxed);
    }
    throw CrashError(op);
  }
  if (crash_shadow_) {
    std::lock_guard lk(mu_);
    for (std::size_t line = first; line < last; ++line) {
      shadow_.erase(line);
      flush_pending_.erase(line);
    }
    // The implicit fence also drains any earlier unfenced flush() calls.
    drain_flush_pending_locked();
  }
  trace::count(trace::Counter::kPersistOps);
  trace::count(trace::Counter::kFlushOps);
  trace::count(trace::Counter::kLinesFlushed, last - first);
  trace::count(trace::Counter::kFenceOps);
  if (checker_) {
    checker_->on_flush(off, len, op);
    checker_->on_fence(op);
  }
}

void Device::flush(std::size_t off, std::size_t len) {
  check_range(off, len);
  if (frozen()) return;  // powered off: nothing writes back
  if (transient_armed_.load(std::memory_order_relaxed)) {
    try {
      check_sticky(off, len);
      run_retries(FaultOp::kPersist, off, len);
    } catch (const DeviceError&) {
      revert_unpersisted(off, len);  // the writeback never happened
      settle_unwind();
      throw;
    }
  }
  const std::size_t first = off / kCacheLine;
  const std::size_t last = (off + len + kCacheLine - 1) / kCacheLine;
  auto& c = sim::ctx();
  c.advance(static_cast<double>(last - first) * c.model().pmem.persist_line_cost,
            sim::Charge::kPmemPersist);
  const std::uint64_t op =
      persist_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op == crash_at_.load(std::memory_order_relaxed)) {
    // Power fails before the writeback: the flushed lines are as lost as any
    // other in-flight store (no fence ever ordered them to media).
    {
      std::lock_guard lk(mu_);
      apply_crash_locked();
      frozen_.store(true, std::memory_order_relaxed);
    }
    throw CrashError(op);
  }
  if (crash_shadow_) {
    std::lock_guard lk(mu_);
    for (std::size_t line = first; line < last; ++line) {
      if (shadow_.count(line) == 0) continue;  // already durable
      // Capture the line image the CLWB writes back: that image (not any
      // later store) is what the next fence makes durable.
      auto& img = flush_pending_[line];
      std::memcpy(img.data(), data_.get() + line * kCacheLine, kCacheLine);
    }
  }
  trace::count(trace::Counter::kPersistOps);
  trace::count(trace::Counter::kFlushOps);
  trace::count(trace::Counter::kLinesFlushed, last - first);
  if (checker_) checker_->on_flush(off, len, op);
}

void Device::drain() {
  if (frozen()) return;
  auto& c = sim::ctx();
  c.advance(c.model().pmem.drain_cost, sim::Charge::kPmemPersist);
  const std::uint64_t op =
      persist_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op == crash_at_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard lk(mu_);
      apply_crash_locked();
      frozen_.store(true, std::memory_order_relaxed);
    }
    throw CrashError(op);
  }
  if (crash_shadow_) {
    std::lock_guard lk(mu_);
    drain_flush_pending_locked();
  }
  trace::count(trace::Counter::kPersistOps);
  trace::count(trace::Counter::kFenceOps);
  if (checker_) checker_->on_fence(op);
}

void Device::settle_unwind() {
  bool pending;
  {
    std::lock_guard lk(mu_);
    pending = !flush_pending_.empty();
  }
  if (!pending && !(checker_ && checker_->has_pending_flushes())) return;
  // A real sfence: earlier CLWBs in the aborted batch become durable, which
  // is exactly what hardware would eventually do anyway.  drain() performs
  // no fault injection, so this cannot recurse.
  drain();
}

void Device::revert_unpersisted(std::size_t off, std::size_t len) {
  if (!crash_shadow_) return;
  const std::size_t first = off / kCacheLine;
  const std::size_t last = (off + len + kCacheLine - 1) / kCacheLine;
  std::lock_guard lk(mu_);
  for (std::size_t line = first; line < last; ++line) {
    const auto it = shadow_.find(line);
    if (it == shadow_.end()) continue;  // line already durable
    std::memcpy(data_.get() + line * kCacheLine, it->second.data(),
                kCacheLine);
    shadow_.erase(it);
    flush_pending_.erase(line);
  }
}

void Device::drain_flush_pending_locked() {
  for (const auto& [line, img] : flush_pending_) {
    // The fence made the flush-time image durable.  If the line was stored
    // to again after the flush, a crash now reverts to that image (the
    // later store is still cache-resident); otherwise the line is simply
    // persisted and needs no shadow at all.
    if (std::memcmp(data_.get() + line * kCacheLine, img.data(), kCacheLine) ==
        0) {
      shadow_.erase(line);
    } else {
      auto it = shadow_.find(line);
      if (it != shadow_.end()) it->second = img;
    }
  }
  flush_pending_.clear();
}

void Device::note_write(std::size_t off, std::size_t len) {
  if (len == 0 || frozen()) return;
  check_range(off, len);
  // Every store path (checked writes, DAX spans, pool metadata) announces
  // itself here before mutating, so this is the one store-side fault point:
  // a throw below means the store never happened.
  if (transient_armed_.load(std::memory_order_relaxed)) {
    try {
      check_sticky(off, len);
      run_retries(FaultOp::kWrite, off, len);
    } catch (const DeviceError&) {
      // The store never happened, but earlier flushes of the aborted batch
      // may still sit unfenced — settle them before the retry stores again.
      settle_unwind();
      throw;
    }
  }
  trace::count(trace::Counter::kStoreOps);
  if (checker_) checker_->on_store(off, len);
  if (!crash_shadow_) return;
  const std::size_t first = off / kCacheLine;
  const std::size_t last = (off + len + kCacheLine - 1) / kCacheLine;
  std::lock_guard lk(mu_);
  for (std::size_t line = first; line < last; ++line) {
    auto [it, inserted] = shadow_.try_emplace(line);
    if (inserted) {
      std::memcpy(it->second.data(), data_.get() + line * kCacheLine,
                  kCacheLine);
    }
  }
}

std::size_t Device::claim_new_pages(std::size_t off, std::size_t len) {
  if (len == 0) return 0;
  const std::size_t first = off / kPage;
  const std::size_t last = (off + len + kPage - 1) / kPage;
  std::size_t fresh = 0;
  std::lock_guard lk(mu_);
  for (std::size_t p = first; p < last; ++p) {
    if (!touched_[p]) {
      touched_[p] = true;
      ++fresh;
    }
  }
  return fresh;
}

void Device::charge_dax_write(std::size_t off, std::size_t len,
                              bool map_sync) {
  check_range(off, len);
  if (frozen()) return;
  const std::size_t fresh = claim_new_pages(off, len);
  auto& c = sim::ctx();
  const auto& m = c.model();
  if (fresh > 0) {
    const double per_page = map_sync ? m.pmem.map_sync_page_cost
                                     : m.cpu.minor_fault_cost;
    c.advance(static_cast<double>(fresh) * per_page, sim::Charge::kPageFault);
  }
  double bw = c.shared_bw(m.pmem.write_stream_bw, m.pmem.write_total_bw);
  if (map_sync) bw *= m.pmem.map_sync_write_bw_factor;
  c.advance(m.pmem.write_latency + static_cast<double>(len) / bw,
            sim::Charge::kPmemWrite);
  trace::count(trace::Counter::kBytesWritten, len);
  std::lock_guard lk(mu_);
  bytes_written_ += len;
}

void Device::charge_dax_read(std::size_t len, bool map_sync) const {
  auto& c = sim::ctx();
  const auto& pm = c.model().pmem;
  double bw = c.shared_bw(pm.read_stream_bw, pm.read_total_bw);
  if (map_sync) bw *= pm.map_sync_read_bw_factor;
  c.advance(pm.read_latency + static_cast<double>(len) / bw,
            sim::Charge::kPmemRead);
  trace::count(trace::Counter::kBytesRead, len);
  std::lock_guard lk(mu_);
  bytes_read_ += len;
}

void Device::reset_page_touches() {
  std::lock_guard lk(mu_);
  touched_.assign(touched_.size(), false);
}

bool Device::torn_reverts(std::size_t line) const noexcept {
  // Deterministic coin flip per (seed, line): about half the in-flight
  // lines reach media before the power dies, the rest are lost.
  return (mix64(torn_seed_ ^ static_cast<std::uint64_t>(line)) & 1u) != 0;
}

void Device::apply_crash_locked() {
  for (const auto& [line, image] : shadow_) {
    if (torn_writes_ && !torn_reverts(line)) continue;  // line made it out
    std::memcpy(data_.get() + line * kCacheLine, image.data(), kCacheLine);
  }
  shadow_.clear();
  // Flushed-but-unfenced lines were never ordered to media; their loss is
  // already covered by the shadow revert above.
  flush_pending_.clear();
  if (checker_) checker_->on_crash();
  trace::on_crash();
}

void Device::simulate_crash() {
  if (!crash_shadow_) {
    throw std::logic_error(
        "pmem::Device::simulate_crash requires crash_shadow mode");
  }
  std::lock_guard lk(mu_);
  apply_crash_locked();
}

std::size_t Device::unpersisted_lines() const {
  std::lock_guard lk(mu_);
  return shadow_.size();
}

void Device::set_fault_plan(const FaultPlan& plan) {
  if (plan.crash_at_persist != 0 && !crash_shadow_) {
    throw std::logic_error(
        "pmem::Device: scheduling a crash point requires crash_shadow mode");
  }
  std::lock_guard lk(mu_);
  torn_writes_ = plan.torn_writes;
  torn_seed_ = plan.torn_seed;
  crash_at_.store(plan.crash_at_persist, std::memory_order_relaxed);
  // Programmatic transient plans override the env arming (a plan with all
  // rates zero disables injection).  The coin sequence restarts so the same
  // plan replays the same fault schedule.
  t_read_rate_ = plan.transient_read_rate;
  t_write_rate_ = plan.transient_write_rate;
  t_persist_rate_ = plan.transient_persist_rate;
  sticky_rate_ = plan.sticky_rate;
  fault_seed_ = plan.fault_seed;
  fault_seq_ = 0;
  transient_armed_.store(plan.transient_armed(), std::memory_order_relaxed);
}

void Device::revive() {
  std::lock_guard lk(mu_);
  crash_at_.store(0, std::memory_order_relaxed);
  frozen_.store(false, std::memory_order_relaxed);
  torn_writes_ = false;
  shadow_.clear();
  flush_pending_.clear();
}

void Device::inject_read_error(std::size_t off, std::size_t len) {
  check_range(off, len);
  std::lock_guard lk(mu_);
  bad_media_.emplace_back(off, len);
}

void Device::clear_read_errors() {
  std::lock_guard lk(mu_);
  bad_media_.clear();
}

void Device::check_media(std::size_t off, std::size_t len) const {
  std::lock_guard lk(mu_);
  if (bad_media_.empty()) return;
  for (const auto& [boff, blen] : bad_media_) {
    if (off < boff + blen && boff < off + len) {
      throw DeviceError(DeviceError::Kind::kMediaRead, off, len,
                        "pmem::Device: media read error in " +
                            range_str(boff, blen));
    }
  }
}

// ---------------------------------------------------------------------------
// Transient faults, sticky media and retries
// ---------------------------------------------------------------------------

void Device::set_retry_policy(const ft::RetryPolicy& policy) noexcept {
  std::lock_guard lk(mu_);
  retry_ = policy;
}

ft::RetryPolicy Device::retry_policy() const noexcept {
  std::lock_guard lk(mu_);
  return retry_;
}

void Device::inject_sticky_range(std::size_t off, std::size_t len) {
  check_range(off, len);
  const std::size_t first = off / kCacheLine * kCacheLine;
  const std::size_t last =
      (off + len + kCacheLine - 1) / kCacheLine * kCacheLine;
  {
    std::lock_guard lk(mu_);
    sticky_bad_.emplace_back(first, last - first);
  }
  trace::count(trace::Counter::kFtStickyRanges);
  // Sticky checks only run while injection is armed; an explicit injection
  // must bite even without a transient plan.
  transient_armed_.store(true, std::memory_order_relaxed);
}

void Device::clear_sticky_ranges() {
  std::lock_guard lk(mu_);
  sticky_bad_.clear();
}

std::vector<std::pair<std::size_t, std::size_t>> Device::sticky_ranges()
    const {
  std::lock_guard lk(mu_);
  return sticky_bad_;
}

bool Device::media_failing(std::size_t off, std::size_t len) const {
  std::lock_guard lk(mu_);
  for (const auto& [soff, slen] : sticky_bad_) {
    if (off < soff + slen && soff < off + len) return true;
  }
  return false;
}

void Device::check_sticky(std::size_t off, std::size_t len) const {
  std::lock_guard lk(mu_);
  if (sticky_bad_.empty()) return;
  for (const auto& [soff, slen] : sticky_bad_) {
    if (off < soff + slen && soff < off + len) {
      // Report the *bad range*, not the op range: that is what a caller
      // should quarantine before relocating.
      throw DeviceError(DeviceError::Kind::kMediaWrite, soff, slen,
                        "pmem::Device: store to sticky-bad media " +
                            range_str(soff, slen));
    }
  }
}

Device::Attempt Device::fault_attempt(
    FaultOp op, std::size_t off, std::size_t len,
    std::pair<std::size_t, std::size_t>* sticky) const {
  std::lock_guard lk(mu_);
  double rate = 0.0;
  switch (op) {
    case FaultOp::kRead: rate = t_read_rate_; break;
    case FaultOp::kWrite: rate = t_write_rate_; break;
    case FaultOp::kPersist: rate = t_persist_rate_; break;
  }
  if (rate <= 0.0) return Attempt::kOk;
  if (unit_interval(mix64(fault_seed_ ^ ++fault_seq_)) >= rate) {
    return Attempt::kOk;
  }
  if (op != FaultOp::kRead && sticky_rate_ > 0.0 &&
      unit_interval(mix64(fault_seed_ ^ ++fault_seq_)) < sticky_rate_) {
    // Escalation: the media under this op is now failing for good.  Mark
    // whole cachelines so relocation and allocator avoidance reason in the
    // same units as flushes.
    const std::size_t first = off / kCacheLine * kCacheLine;
    const std::size_t last =
        (off + len + kCacheLine - 1) / kCacheLine * kCacheLine;
    *sticky = sticky_bad_.emplace_back(first, last - first);
    return Attempt::kSticky;
  }
  return Attempt::kTransient;
}

void Device::run_retries(FaultOp op, std::size_t off, std::size_t len) const {
  int attempt = 1;
  double backoff_spent = 0.0;
  for (;;) {
    std::pair<std::size_t, std::size_t> sticky{0, 0};
    const Attempt a = fault_attempt(op, off, len, &sticky);
    if (a == Attempt::kOk) return;
    trace::count(trace::Counter::kFtTransientFaults);
    if (a == Attempt::kSticky) {
      trace::count(trace::Counter::kFtStickyRanges);
      throw DeviceError(DeviceError::Kind::kMediaWrite, sticky.first,
                        sticky.second,
                        "pmem::Device: media failed (sticky) at " +
                            range_str(sticky.first, sticky.second));
    }
    const double wait = retry_.backoff_for(attempt);
    if (attempt >= retry_.max_attempts ||
        (retry_.deadline > 0.0 && backoff_spent + wait > retry_.deadline)) {
      throw DeviceError(DeviceError::Kind::kTransient, off, len,
                        "pmem::Device: transient fault at " +
                            range_str(off, len) + " persisted past " +
                            std::to_string(attempt) + " attempts");
    }
    // The wait between attempts is simulated time like any other cost, so
    // retries show up in span charge breakdowns and bench numbers.
    sim::ctx().advance(wait, sim::Charge::kRetryBackoff);
    backoff_spent += wait;
    trace::count(trace::Counter::kFtRetries);
    ++attempt;
  }
}

}  // namespace pmemcpy::pmem
