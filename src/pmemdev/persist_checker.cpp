#include <pmemcpy/check/persist_checker.hpp>

#include <pmemcpy/pmem/device.hpp>  // kCacheLine

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pmemcpy::check {

namespace {
constexpr std::size_t kMaxFindings = 256;

using pmem::kCacheLine;

std::pair<std::size_t, std::size_t> line_span(std::size_t off,
                                              std::size_t len) {
  return {off / kCacheLine, (off + len + kCacheLine - 1) / kCacheLine};
}
}  // namespace

const char* violation_name(Violation v) noexcept {
  switch (v) {
    case Violation::kDirtyAtCommit: return "dirty-at-commit";
    case Violation::kUnpersistedPublish: return "unpersisted-publish";
    case Violation::kStoreAfterFlush: return "store-after-flush";
    case Violation::kCleanFlush: return "clean-flush";
    case Violation::kDuplicateFlush: return "duplicate-flush";
    case Violation::kEmptyFence: return "empty-fence";
  }
  return "unknown";
}

bool violation_is_correctness(Violation v) noexcept {
  switch (v) {
    case Violation::kDirtyAtCommit:
    case Violation::kUnpersistedPublish:
    case Violation::kStoreAfterFlush:
      return true;
    default:
      return false;
  }
}

std::uint64_t Report::count(Violation v) const noexcept {
  std::uint64_t n = 0;
  for (const auto& f : findings) {
    if (f.kind == v) ++n;
  }
  return n;
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok() ? "true" : "false")
     << ",\"store_ops\":" << store_ops << ",\"flush_ops\":" << flush_ops
     << ",\"lines_flushed\":" << lines_flushed
     << ",\"fence_ops\":" << fence_ops
     << ",\"scopes_committed\":" << scopes_committed
     << ",\"publishes\":" << publishes
     << ",\"correctness_violations\":" << correctness_violations
     << ",\"efficiency_violations\":" << efficiency_violations
     << ",\"clean_flushes\":" << clean_flushes
     << ",\"duplicate_flushes\":" << duplicate_flushes
     << ",\"empty_fences\":" << empty_fences
     << ",\"dropped_findings\":" << dropped_findings << ",\"findings\":[";
  bool first = true;
  for (const auto& f : findings) {
    if (!first) os << ',';
    first = false;
    os << "{\"kind\":\"" << violation_name(f.kind) << "\",\"line\":" << f.line
       << ",\"offset\":" << f.line * kCacheLine
       << ",\"persist_op\":" << f.persist_op << ",\"scope\":\"" << f.scope
       << "\",\"detail\":\"" << f.detail << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "persist-check: " << (ok() ? "OK" : "VIOLATIONS") << " — "
     << correctness_violations << " correctness, " << efficiency_violations
     << " efficiency (store_ops=" << store_ops << " flush_ops=" << flush_ops
     << " lines_flushed=" << lines_flushed << " fence_ops=" << fence_ops
     << ")\n";
  for (const auto& f : findings) {
    os << "  [" << (violation_is_correctness(f.kind) ? "BUG " : "LINT")
       << "] " << violation_name(f.kind) << " line=" << f.line << " (off="
       << f.line * kCacheLine << ") persist_op=" << f.persist_op;
    if (!f.scope.empty()) os << " scope=" << f.scope;
    if (!f.detail.empty()) os << " — " << f.detail;
    os << '\n';
  }
  if (dropped_findings > 0) {
    os << "  ... " << dropped_findings << " further findings dropped\n";
  }
  return os.str();
}

PersistChecker::PersistChecker() = default;
PersistChecker::~PersistChecker() = default;

PersistChecker::ThreadState& PersistChecker::self_locked() {
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.slot = next_slot_++;
  return it->second;
}

std::uint64_t PersistChecker::epoch_of_locked(ThreadState& ts) const {
  return ts.scopes.empty() ? fence_epoch_ : ts.scopes.back().epoch;
}

void PersistChecker::record_locked(Violation v, std::size_t line,
                                   std::uint64_t op, const std::string& scope,
                                   std::string detail) {
  if (violation_is_correctness(v)) {
    ++rep_.correctness_violations;
  } else {
    ++rep_.efficiency_violations;
    switch (v) {
      case Violation::kCleanFlush: ++rep_.clean_flushes; break;
      case Violation::kDuplicateFlush: ++rep_.duplicate_flushes; break;
      case Violation::kEmptyFence: ++rep_.empty_fences; break;
      default: break;
    }
  }
  if (rep_.findings.size() >= kMaxFindings) {
    ++rep_.dropped_findings;
    return;
  }
  rep_.findings.push_back(Finding{v, line, op, scope, std::move(detail)});
}

void PersistChecker::on_store(std::size_t off, std::size_t len) {
  if (len == 0) return;
  const auto [first, last] = line_span(off, len);
  std::lock_guard lk(mu_);
  ++rep_.store_ops;
  ThreadState& ts = self_locked();
  Scope* scope = ts.scopes.empty() ? nullptr : &ts.scopes.back();
  for (std::size_t line = first; line < last; ++line) {
    Line& ln = lines_[line];
    if (ln.state == Line::kFlushPending && !ln.store_after_flush_reported) {
      ln.store_after_flush_reported = true;
      record_locked(Violation::kStoreAfterFlush, line, 0,
                    scope ? scope->name : std::string{},
                    "store to a flushed-but-unfenced line (durability of the "
                    "store is undefined until the next flush)");
    }
    ln.state = Line::kDirty;
    ln.satisfied.clear();  // past flush coverage no longer applies
    if (std::find(ln.writers.begin(), ln.writers.end(), ts.slot) ==
        ln.writers.end()) {
      ln.writers.push_back(ts.slot);
    }
    if (scope != nullptr) scope->dirtied.push_back(line);
  }
}

void PersistChecker::on_flush(std::size_t off, std::size_t len,
                              std::uint64_t persist_op) {
  if (len == 0) return;
  const auto [first, last] = line_span(off, len);
  std::lock_guard lk(mu_);
  ++rep_.flush_ops;
  rep_.lines_flushed += last - first;
  ThreadState& ts = self_locked();
  ++ts.flushes_since_fence;
  const std::uint64_t ep = epoch_of_locked(ts);
  const std::string scope_name =
      ts.scopes.empty() ? std::string{} : ts.scopes.back().name;
  for (std::size_t line = first; line < last; ++line) {
    Line& ln = lines_[line];
    if (ln.state == Line::kDirty) {
      // Legitimate flush of new stores.  Other threads whose stores ride
      // along are "satisfied": their own upcoming flush of this (then clean)
      // line is not a redundancy bug.
      for (std::uint32_t w : ln.writers) {
        if (w == ts.slot) continue;
        if (std::find(ln.satisfied.begin(), ln.satisfied.end(), w) ==
            ln.satisfied.end()) {
          ln.satisfied.push_back(w);
        }
      }
      ln.writers.clear();
    } else {
      // Clean or flush-pending: this CLWB writes back nothing new.
      auto sat = std::find(ln.satisfied.begin(), ln.satisfied.end(), ts.slot);
      if (sat != ln.satisfied.end()) {
        ln.satisfied.erase(sat);  // cross-thread coverage: suppress once
      } else if (ln.last_flush_epoch == ep) {
        record_locked(Violation::kDuplicateFlush, line, persist_op, scope_name,
                      "line already flushed in this epoch with no store in "
                      "between");
      } else {
        record_locked(Violation::kCleanFlush, line, persist_op, scope_name,
                      "flush of a line with no unflushed stores");
      }
    }
    if (ln.state != Line::kFlushPending) pending_lines_.push_back(line);
    ln.state = Line::kFlushPending;
    ln.store_after_flush_reported = false;
    ln.last_flush_epoch = ep;
    ln.last_flush_op = persist_op;
  }
}

void PersistChecker::on_fence(std::uint64_t persist_op) {
  std::lock_guard lk(mu_);
  ++rep_.fence_ops;
  ThreadState& ts = self_locked();
  // Lint only when this thread also flushed nothing since its own last
  // fence: a concurrent fence may have consumed our pending lines, but our
  // fence was still justified when issued.
  if (pending_lines_.empty() && ts.flushes_since_fence == 0) {
    record_locked(Violation::kEmptyFence, 0, persist_op,
                  ts.scopes.empty() ? std::string{} : ts.scopes.back().name,
                  "fence with no flushed lines pending: orders nothing");
  }
  ts.flushes_since_fence = 0;
  for (std::size_t line : pending_lines_) {
    auto it = lines_.find(line);
    if (it != lines_.end() && it->second.state == Line::kFlushPending) {
      it->second.state = Line::kClean;
    }
  }
  pending_lines_.clear();
  fence_epoch_ = next_epoch_++;
}

void PersistChecker::on_crash() {
  std::lock_guard lk(mu_);
  // Power loss: caches are gone, so every line is (whatever the revert policy
  // made it) clean on media.  Open scopes died with the process image.
  lines_.clear();
  pending_lines_.clear();
  for (auto& [tid, ts] : threads_) {
    ts.scopes.clear();
    ts.flushes_since_fence = 0;
  }
  fence_epoch_ = next_epoch_++;
}

void PersistChecker::tx_begin(std::string_view name) {
  std::lock_guard lk(mu_);
  ThreadState& ts = self_locked();
  ts.scopes.push_back(Scope{std::string(name), next_epoch_++, {}});
}

void PersistChecker::tx_commit(std::uint64_t persist_op) {
  std::lock_guard lk(mu_);
  ThreadState& ts = self_locked();
  if (ts.scopes.empty()) return;  // unbalanced annotation; ignore
  Scope scope = std::move(ts.scopes.back());
  ts.scopes.pop_back();
  ++rep_.scopes_committed;
  std::sort(scope.dirtied.begin(), scope.dirtied.end());
  scope.dirtied.erase(std::unique(scope.dirtied.begin(), scope.dirtied.end()),
                      scope.dirtied.end());
  for (std::size_t line : scope.dirtied) {
    auto it = lines_.find(line);
    if (it == lines_.end()) continue;
    const Line& ln = it->second;
    if (ln.state == Line::kDirty) {
      // Only flag the committer's own stores: another thread may have
      // legitimately re-dirtied a shared metadata line since we persisted it.
      if (std::find(ln.writers.begin(), ln.writers.end(), ts.slot) !=
          ln.writers.end()) {
        record_locked(Violation::kDirtyAtCommit, line, persist_op, scope.name,
                      "line stored in this scope is still dirty at commit");
      }
    } else if (ln.state == Line::kFlushPending) {
      record_locked(Violation::kDirtyAtCommit, line, persist_op, scope.name,
                    "line flushed but not fenced at commit");
    }
  }
  // Lines this scope dirtied bubble up to the enclosing scope (an outer
  // commit must still find them persisted).
  if (!ts.scopes.empty()) {
    auto& outer = ts.scopes.back().dirtied;
    outer.insert(outer.end(), scope.dirtied.begin(), scope.dirtied.end());
  }
}

void PersistChecker::tx_abort() {
  std::lock_guard lk(mu_);
  ThreadState& ts = self_locked();
  if (!ts.scopes.empty()) ts.scopes.pop_back();
}

void PersistChecker::on_publish(std::size_t off, std::size_t len,
                                std::uint64_t persist_op) {
  if (len == 0) return;
  const auto [first, last] = line_span(off, len);
  std::lock_guard lk(mu_);
  ++rep_.publishes;
  ThreadState& ts = self_locked();
  const std::string scope_name =
      ts.scopes.empty() ? std::string{} : ts.scopes.back().name;
  for (std::size_t line = first; line < last; ++line) {
    auto it = lines_.find(line);
    if (it == lines_.end()) continue;  // never stored: trivially durable
    const Line& ln = it->second;
    if (ln.state == Line::kFlushPending) {
      record_locked(Violation::kUnpersistedPublish, line, persist_op,
                    scope_name, "published line flushed but not fenced");
    } else if (ln.state == Line::kDirty &&
               std::find(ln.writers.begin(), ln.writers.end(), ts.slot) !=
                   ln.writers.end()) {
      record_locked(Violation::kUnpersistedPublish, line, persist_op,
                    scope_name, "published line has unflushed stores");
    }
  }
}

Report PersistChecker::report() const {
  std::lock_guard lk(mu_);
  return rep_;
}

Report PersistChecker::take_report() {
  std::lock_guard lk(mu_);
  Report out = std::move(rep_);
  rep_ = Report{};
  // Traffic counters keep accumulating across take_report() so global
  // efficiency accounting stays monotonic.
  rep_.store_ops = out.store_ops;
  rep_.flush_ops = out.flush_ops;
  rep_.lines_flushed = out.lines_flushed;
  rep_.fence_ops = out.fence_ops;
  rep_.scopes_committed = out.scopes_committed;
  rep_.publishes = out.publishes;
  return out;
}

bool PersistChecker::clean() const {
  std::lock_guard lk(mu_);
  return rep_.ok();
}

bool PersistChecker::has_pending_flushes() const {
  std::lock_guard lk(mu_);
  return !pending_lines_.empty();
}

// --- process-global counter aggregation ------------------------------------

namespace {
std::mutex g_counters_mu;
GlobalCounters g_counters;
bool g_atexit_registered = false;

extern "C" void pmemcpy_check_dump_counters() {
  const std::string line = global_counters_line();
  std::fprintf(stderr, "%s\n", line.c_str());
}
}  // namespace

void accumulate_global(const Report& r) {
  std::lock_guard lk(g_counters_mu);
  g_counters.store_ops += r.store_ops;
  g_counters.flush_ops += r.flush_ops;
  g_counters.lines_flushed += r.lines_flushed;
  g_counters.fence_ops += r.fence_ops;
  g_counters.clean_flushes += r.clean_flushes;
  g_counters.duplicate_flushes += r.duplicate_flushes;
  g_counters.empty_fences += r.empty_fences;
  g_counters.correctness_violations += r.correctness_violations;
}

GlobalCounters global_counters() {
  std::lock_guard lk(g_counters_mu);
  return g_counters;
}

std::string global_counters_line() {
  const GlobalCounters c = global_counters();
  std::ostringstream os;
  os << "[pmemcpy-persist-check] store_ops=" << c.store_ops
     << " flush_ops=" << c.flush_ops << " lines_flushed=" << c.lines_flushed
     << " fence_ops=" << c.fence_ops << " clean_flushes=" << c.clean_flushes
     << " duplicate_flushes=" << c.duplicate_flushes
     << " empty_fences=" << c.empty_fences
     << " correctness_violations=" << c.correctness_violations;
  return os.str();
}

void register_atexit_counter_dump() {
  std::lock_guard lk(g_counters_mu);
  if (g_atexit_registered) return;
  g_atexit_registered = true;
  std::atexit(&pmemcpy_check_dump_counters);
}

}  // namespace pmemcpy::check
