// Cereal-style binary archive.
//
// Minimal clone of the cereal API the paper lists among its pluggable
// serializers: arithmetic types and enums are written raw, strings and
// vectors carry a LEB128 length prefix, and user structs participate via a
// member template `template <class Ar> void serialize(Ar&)` that lists the
// fields with `ar(f1, f2, ...)` — one function for both directions.
#pragma once

#include <pmemcpy/serial/sink.hpp>

#include <array>
#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace pmemcpy::serial {

class BinaryWriter;
class BinaryReader;

template <typename T, typename Ar>
concept HasMemberSerialize = requires(T& t, Ar& ar) { t.serialize(ar); };

template <typename T>
concept RawSerializable = std::is_arithmetic_v<T> || std::is_enum_v<T>;

class BinaryWriter {
 public:
  explicit BinaryWriter(Sink& sink) : sink_(&sink) {}

  template <typename... Ts>
  void operator()(const Ts&... vals) {
    (dispatch(vals), ...);
  }

  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      const auto b = static_cast<std::uint8_t>(v | 0x80);
      sink_->write(&b, 1);
      v >>= 7;
    }
    const auto b = static_cast<std::uint8_t>(v);
    sink_->write(&b, 1);
  }

  void write_bytes(const void* data, std::size_t len) {
    sink_->write(data, len);
  }

 private:
  template <RawSerializable T>
  void dispatch(const T& v) {
    sink_->write(&v, sizeof(T));
  }
  void dispatch(const std::string& s) {
    write_varint(s.size());
    sink_->write(s.data(), s.size());
  }
  template <typename T>
  void dispatch(const std::vector<T>& v) {
    write_varint(v.size());
    if constexpr (RawSerializable<T>) {
      sink_->write(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) dispatch(e);
    }
  }
  template <typename T, std::size_t N>
  void dispatch(const std::array<T, N>& v) {
    if constexpr (RawSerializable<T>) {
      sink_->write(v.data(), N * sizeof(T));
    } else {
      for (const auto& e : v) dispatch(e);
    }
  }
  template <typename T>
    requires HasMemberSerialize<T, BinaryWriter>
  void dispatch(const T& v) {
    // serialize() is a bidirectional visitor; writing does not mutate.
    const_cast<T&>(v).serialize(*this);
  }

  Sink* sink_;
};

class BinaryReader {
 public:
  explicit BinaryReader(Source& src) : src_(&src) {}

  template <typename... Ts>
  void operator()(Ts&... vals) {
    (dispatch(vals), ...);
  }

  [[nodiscard]] std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      std::uint8_t b;
      src_->read(&b, 1);
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw SerialError("varint overflow");
    }
  }

  void read_bytes(void* dst, std::size_t len) { src_->read(dst, len); }

 private:
  template <RawSerializable T>
  void dispatch(T& v) {
    src_->read(&v, sizeof(T));
  }
  void dispatch(std::string& s) {
    s.resize(read_varint());
    src_->read(s.data(), s.size());
  }
  template <typename T>
  void dispatch(std::vector<T>& v) {
    v.resize(read_varint());
    if constexpr (RawSerializable<T>) {
      src_->read(v.data(), v.size() * sizeof(T));
    } else {
      for (auto& e : v) dispatch(e);
    }
  }
  template <typename T, std::size_t N>
  void dispatch(std::array<T, N>& v) {
    if constexpr (RawSerializable<T>) {
      src_->read(v.data(), N * sizeof(T));
    } else {
      for (auto& e : v) dispatch(e);
    }
  }
  template <typename T>
    requires HasMemberSerialize<T, BinaryReader>
  void dispatch(T& v) {
    v.serialize(*this);
  }

  Source* src_;
};

/// Exact archive size of @p vals — a SizingSink pass through the writer, so
/// any serialize()-able value can be pre-sized for an exactly-fitting PMEM
/// reservation (the first half of reserve-then-serialize, DESIGN.md §12).
template <typename... Ts>
[[nodiscard]] std::size_t binary_serialized_size(const Ts&... vals) {
  SizingSink s;
  BinaryWriter w(s);
  w(vals...);
  return s.tell();
}

}  // namespace pmemcpy::serial
