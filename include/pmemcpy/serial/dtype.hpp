// Wire-format type codes shared by the serializers and the pMEMCPY metadata.
#pragma once

#include <cstdint>
#include <string_view>

namespace pmemcpy::serial {

enum class DType : std::uint8_t {
  kU8 = 0,
  kI8,
  kU16,
  kI16,
  kU32,
  kI32,
  kU64,
  kI64,
  kF32,
  kF64,
  kStruct,  ///< opaque struct serialized by an archive
  kInvalid = 0xFF,
};

[[nodiscard]] constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kU8:
    case DType::kI8:
      return 1;
    case DType::kU16:
    case DType::kI16:
      return 2;
    case DType::kU32:
    case DType::kI32:
    case DType::kF32:
      return 4;
    case DType::kU64:
    case DType::kI64:
    case DType::kF64:
      return 8;
    default:
      return 0;
  }
}

[[nodiscard]] constexpr std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kU8: return "u8";
    case DType::kI8: return "i8";
    case DType::kU16: return "u16";
    case DType::kI16: return "i16";
    case DType::kU32: return "u32";
    case DType::kI32: return "i32";
    case DType::kU64: return "u64";
    case DType::kI64: return "i64";
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
    case DType::kStruct: return "struct";
    default: return "invalid";
  }
}

template <typename T>
struct dtype_of {
  static constexpr DType value = DType::kStruct;
};
// clang-format off
template <> struct dtype_of<std::uint8_t>  { static constexpr DType value = DType::kU8; };
template <> struct dtype_of<std::int8_t>   { static constexpr DType value = DType::kI8; };
template <> struct dtype_of<char>          { static constexpr DType value = DType::kI8; };
template <> struct dtype_of<std::uint16_t> { static constexpr DType value = DType::kU16; };
template <> struct dtype_of<std::int16_t>  { static constexpr DType value = DType::kI16; };
template <> struct dtype_of<std::uint32_t> { static constexpr DType value = DType::kU32; };
template <> struct dtype_of<std::int32_t>  { static constexpr DType value = DType::kI32; };
template <> struct dtype_of<std::uint64_t> { static constexpr DType value = DType::kU64; };
template <> struct dtype_of<std::int64_t>  { static constexpr DType value = DType::kI64; };
template <> struct dtype_of<float>         { static constexpr DType value = DType::kF32; };
template <> struct dtype_of<double>        { static constexpr DType value = DType::kF64; };
// clang-format on

template <typename T>
inline constexpr DType dtype_of_v = dtype_of<T>::value;

}  // namespace pmemcpy::serial
