// Byte sinks/sources for serialization.
//
// The paper's key mechanism is *where* serialized bytes land:
//   * BufferSink/BufferSource — a DRAM staging buffer.  ADIOS-style
//     libraries serialize here first and then copy to storage; each write is
//     charged as a DRAM copy, and the later flush pays the storage cost
//     again.  ("serializes data structures into an in-memory buffer and then
//     copies to PMEM")
//   * SpanSink/SpanSource — a pre-charged span of persistent memory (e.g. a
//     reserved hashtable value blob).  Serializing into it IS the storage
//     write; there is no second copy.  ("pMEMCPY can serialize the data
//     directly into PMEM without first placing it in DRAM")
//   * MappingSink/MappingSource — the same direct idea over a DAX file
//     mapping (hierarchical layout), charged per store.
//
// Every sink/source also feeds the copy audit (DESIGN.md §12/§13), split by
// direction: sink bytes that flow through a DRAM buffer count toward
// copy.staged_bytes (and the first write of a BufferSink marks one
// copy.staged_put) while sink bytes landing in persistent memory count
// toward copy.direct_bytes; source bytes symmetrically feed
// copy.read_staged_bytes (BufferSource — a blob bounced through DRAM before
// decode) or copy.read_direct_bytes (SpanSource/MappingSource — decode
// consuming the mapped blob in place).  `bench/copy_audit` gates these
// totals per library and per direction, so "zero-copy" is an enforced
// invariant of both pMEMCPY data paths, not a comment.
#pragma once

#include <pmemcpy/crc32c.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/sim/context.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace pmemcpy::serial {

struct SerialError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const void* data, std::size_t len) = 0;
  /// Bytes produced so far.
  [[nodiscard]] virtual std::size_t tell() const = 0;
};

class Source {
 public:
  virtual ~Source() = default;
  virtual void read(void* dst, std::size_t len) = 0;
  /// Bytes consumed so far.
  [[nodiscard]] virtual std::size_t tell() const = 0;
};

/// DRAM staging buffer; every write pays a DRAM copy.
class BufferSink final : public Sink {
 public:
  BufferSink() = default;
  explicit BufferSink(std::size_t reserve) { buf_.reserve(reserve); }

  void write(const void* data, std::size_t len) override {
    const std::size_t at = buf_.size();
    buf_.resize(at + len);
    std::memcpy(buf_.data() + at, data, len);
    sim::ctx().charge_cpu_copy(len);
    if (at == 0 && len > 0) trace::count(trace::Counter::kCopyStagedPuts);
    trace::count(trace::Counter::kCopyStagedBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return buf_.size(); }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte>&& take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::byte> buf_;
};

/// Reads from a DRAM buffer; every read pays a DRAM copy.
class BufferSource final : public Source {
 public:
  explicit BufferSource(std::span<const std::byte> data) : data_(data) {}

  void read(void* dst, std::size_t len) override {
    if (pos_ + len > data_.size()) throw SerialError("source underrun");
    std::memcpy(dst, data_.data() + pos_, len);
    pos_ += len;
    sim::ctx().charge_cpu_copy(len);
    trace::count(trace::Counter::kCopyReadStagedBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Writes into a pre-charged span (a reserved PMEM blob): the zero-copy path.
class SpanSink final : public Sink {
 public:
  explicit SpanSink(std::span<std::byte> out) : out_(out) {}

  void write(const void* data, std::size_t len) override {
    if (pos_ + len > out_.size()) throw SerialError("span sink overflow");
    std::memcpy(out_.data() + pos_, data, len);
    pos_ += len;
    trace::count(trace::Counter::kCopyDirectBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

/// Reads from a pre-charged span (a PMEM blob accessed zero-copy).
class SpanSource final : public Source {
 public:
  explicit SpanSource(std::span<const std::byte> in) : in_(in) {}

  void read(void* dst, std::size_t len) override {
    if (pos_ + len > in_.size()) throw SerialError("source underrun");
    std::memcpy(dst, in_.data() + pos_, len);
    pos_ += len;
    trace::count(trace::Counter::kCopyReadDirectBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Reads from a DRAM read-cache blob (DESIGN.md §13).  Charged as a DRAM
/// copy like BufferSource, but tallied under the cache's own vocabulary
/// (read_cache_hit_bytes, counted at lookup) instead of the staged/direct
/// read audit: the bytes already took their single PMEM trip when the cache
/// filled, so they are neither a staging bounce nor fresh PMEM traffic.
class CacheSource final : public Source {
 public:
  explicit CacheSource(std::span<const std::byte> in) : in_(in) {}

  void read(void* dst, std::size_t len) override {
    if (pos_ + len > in_.size()) throw SerialError("source underrun");
    std::memcpy(dst, in_.data() + pos_, len);
    pos_ += len;
    sim::ctx().charge_cpu_copy(len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Streams into a DAX file mapping; each write is charged as a PMEM store.
class MappingSink final : public Sink {
 public:
  MappingSink(fs::Mapping& m, std::uint64_t off) : m_(&m), off_(off) {}

  void write(const void* data, std::size_t len) override {
    m_->store(off_ + pos_, data, len);
    pos_ += len;
    trace::count(trace::Counter::kCopyDirectBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  fs::Mapping* m_;
  std::uint64_t off_;
  std::size_t pos_ = 0;
};

/// Streams out of a DAX file mapping; each read is charged as a PMEM load.
class MappingSource final : public Source {
 public:
  MappingSource(const fs::Mapping& m, std::uint64_t off) : m_(&m), off_(off) {}

  void read(void* dst, std::size_t len) override {
    m_->load(off_ + pos_, dst, len);
    pos_ += len;
    trace::count(trace::Counter::kCopyReadDirectBytes, len);
  }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  const fs::Mapping* m_;
  std::uint64_t off_;
  std::size_t pos_ = 0;
};

/// Forwards to another sink while checksumming every byte that flows
/// through.  The integrity layer stores the resulting CRC32C next to the
/// entry so reads can detect torn or rotted payloads.
class ChecksumSink final : public Sink {
 public:
  explicit ChecksumSink(Sink& inner) : inner_(&inner) {}

  void write(const void* data, std::size_t len) override {
    crc_ = crc32c(data, len, crc_);
    inner_->write(data, len);
  }
  [[nodiscard]] std::size_t tell() const override { return inner_->tell(); }

  /// CRC32C of everything written so far.
  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_; }

 private:
  Sink* inner_;
  std::uint32_t crc_ = 0;
};

/// Measures serialized size without moving (or charging) a single byte.
/// The reserve-then-serialize contract runs the serializer through one of
/// these first, reserves an exactly-sized PMEM span from the answer, then
/// serializes again straight into the span — two cheap passes instead of a
/// DRAM staging copy.
class SizingSink final : public Sink {
 public:
  void write(const void*, std::size_t len) override { pos_ += len; }
  [[nodiscard]] std::size_t tell() const override { return pos_; }

 private:
  std::size_t pos_ = 0;
};

}  // namespace pmemcpy::serial
