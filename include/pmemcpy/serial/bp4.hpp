// BP4-lite: the self-describing variable-record format (modelled on ADIOS's
// BP format) that is pMEMCPY's default serialization.
//
// A record is a header followed by the raw payload:
//
//   magic u32 | version u8 | serializer u8 | dtype u8 | ndims u8 |
//   payload_bytes u64 | ndims x { global u64, offset u64, count u64 }
//
// Like BP, each writer's data is stored "in the same format as it was
// produced": one record per process-local box, no global linearisation.
#pragma once

#include <pmemcpy/serial/dtype.hpp>
#include <pmemcpy/serial/sink.hpp>

#include <cstdint>
#include <vector>

namespace pmemcpy::serial {

/// Which serializer produced a blob (stored in record headers and in the
/// metadata entry's meta word so readers can decode).
enum class SerializerId : std::uint8_t {
  kBp4 = 0,     ///< BP4-lite record (default; same family as ADIOS)
  kBinary = 1,  ///< cereal-style binary archive
  kRaw = 2,     ///< serialization disabled: payload bytes only
  kCapnp = 3,   ///< CapnProto-lite fixed-offset record (zero-copy readable)
};

inline constexpr std::uint32_t kBp4Magic = 0x42503446;  // "BP4F"
inline constexpr std::uint8_t kBp4Version = 1;

struct VarMeta {
  DType dtype = DType::kInvalid;
  SerializerId serializer = SerializerId::kBp4;
  std::uint64_t payload_bytes = 0;
  /// Per-dimension global extent / local offset / local count.  Empty for
  /// scalars and opaque structs.
  std::vector<std::uint64_t> global;
  std::vector<std::uint64_t> offset;
  std::vector<std::uint64_t> count;

  [[nodiscard]] std::uint32_t ndims() const noexcept {
    return static_cast<std::uint32_t>(global.size());
  }
  [[nodiscard]] std::uint64_t elements() const noexcept {
    std::uint64_t n = 1;
    for (auto c : count) n *= c;
    return n;
  }
};

/// Encoded header size for a record with @p ndims dimensions.
[[nodiscard]] std::size_t bp4_header_size(std::uint32_t ndims);

/// Write a record header to @p sink.
void bp4_write_header(Sink& sink, const VarMeta& meta);

/// Read and validate a record header from @p source.
[[nodiscard]] VarMeta bp4_read_header(Source& source);

}  // namespace pmemcpy::serial
