// Transparent data filters — the "operators" HDF5 and ADIOS attach to
// chunks/variables (paper §2.1; compression is the canonical one, cf. the
// authors' HCompress line of work).  A filter transforms the payload before
// it reaches PMEM and back after it is read; pMEMCPY applies them per
// stored piece.
//
// Codecs:
//   kRle    — byte-wise run-length encoding: strong on constant/filled
//             regions, harmless framing overhead elsewhere.
//   kDelta  — 64-bit-word delta + zigzag varint: strong on smooth numeric
//             fields (monotone counters, slowly-varying doubles).
//
// Filtering inherently costs a DRAM staging pass (the encoded size must be
// known before the PMEM blob can be reserved); encode/decode charge that
// pass on the simulated clock.  The trade it buys: fewer bytes through the
// device.
#pragma once

#include <pmemcpy/serial/sink.hpp>

#include <cstdint>
#include <span>
#include <vector>

namespace pmemcpy::serial {

enum class FilterId : std::uint8_t {
  kNone = 0,
  kRle = 1,
  kDelta = 2,
};

[[nodiscard]] constexpr const char* filter_name(FilterId f) {
  switch (f) {
    case FilterId::kNone: return "none";
    case FilterId::kRle: return "rle";
    case FilterId::kDelta: return "delta";
  }
  return "?";
}

/// Encode @p in with @p filter; returns the encoded bytes.  Charges one CPU
/// pass over input + output.  kNone copies (callers should bypass instead).
[[nodiscard]] std::vector<std::byte> filter_encode(
    FilterId filter, std::span<const std::byte> in);

/// Decode into @p out (which must be sized to the original length).
/// Charges one CPU pass.  Throws SerialError on corrupt input.
void filter_decode(FilterId filter, std::span<const std::byte> in,
                   std::span<std::byte> out);

}  // namespace pmemcpy::serial
