// CapnProto-lite: the third serializer family the paper lists ("well-known,
// portable serialization libraries, such as BP4, CapnProto, and cereal").
//
// Cap'n Proto's defining property is a zero-copy wire format: every field
// sits at a fixed offset in 8-byte words, so a reader can point into the
// buffer without a decode pass.  This lite variant frames a variable record
// the same way:
//
//   word 0 : magic u32 | dtype u8 | ndims u8 | reserved u16
//   word 1 : payload_bytes u64
//   words 2..: ndims x { global u64, offset u64, count u64 }
//   payload (8-byte aligned by construction)
//
// Unlike BP4-lite there is no version/serializer byte inside the record —
// framing is part of the schema, as in Cap'n Proto.
#pragma once

#include <pmemcpy/serial/bp4.hpp>

namespace pmemcpy::serial {

inline constexpr std::uint32_t kCapnpMagic = 0x43504e4c;  // "CPNL"

/// Encoded header size (always whole words).
[[nodiscard]] std::size_t capnp_header_size(std::uint32_t ndims);

void capnp_write_header(Sink& sink, const VarMeta& meta);

[[nodiscard]] VarMeta capnp_read_header(Source& source);

/// Fixed-offset accessors for zero-copy readers: given a pointer to a
/// record, read fields without consuming a Source.
[[nodiscard]] bool capnp_valid(const std::byte* rec, std::size_t len);
[[nodiscard]] DType capnp_dtype(const std::byte* rec);
[[nodiscard]] std::uint32_t capnp_ndims(const std::byte* rec);
[[nodiscard]] std::uint64_t capnp_payload_bytes(const std::byte* rec);
/// Pointer to the payload within the record.
[[nodiscard]] const std::byte* capnp_payload(const std::byte* rec);

}  // namespace pmemcpy::serial
