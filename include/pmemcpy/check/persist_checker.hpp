// Persistency-order checker: a shadow-state machine over device cachelines.
//
// Every cacheline moves through
//
//     clean  --store-->  dirty  --flush-->  flush-pending  --fence-->  clean
//
// driven by the device hooks on_store()/on_flush()/on_fence().  On top of the
// per-line state machine sits an epoch/ordering layer fed by annotation hooks
// (tx_begin/tx_commit/publish) called from the object store and core layers.
// The checker is a pure observer: it never charges simulated time and never
// mutates device contents, so enabling it cannot change behavior — only
// report it.  (In the spirit of pmemcheck/Jaaru, applied to the emulator.)
//
// Violation taxonomy:
//   correctness
//     kDirtyAtCommit      — a line stored inside an annotation scope is still
//                           dirty (or flushed-but-unfenced) when the scope
//                           commits: the "transaction" is not durable.
//     kUnpersistedPublish — publish(off,len) covers a line that has not been
//                           flushed+fenced: readers can see the range while a
//                           crash would still tear it.
//     kStoreAfterFlush    — a store lands on a line that was flushed but not
//                           yet fenced: the store races the writeback, so its
//                           durability is undefined (classic CLWB/SFENCE
//                           reordering window).
//   efficiency lints
//     kCleanFlush         — flush of a line with no stores since it was last
//                           made durable (in an earlier epoch): wasted CLWB.
//     kDuplicateFlush     — flush of a line already flushed in the *same*
//                           epoch with no intervening store: the second CLWB
//                           (and its fence) bought nothing.
//     kEmptyFence         — a fence with no flushed lines pending: ordering
//                           point that orders nothing.
//
// Epochs: inside a tx_begin..tx_commit scope the scope itself is the epoch
// (one per scope instance, per thread).  Outside any scope, epochs are
// fence-delimited.  Flushes of *dirty* lines are never flagged — a line that
// was re-stored legitimately needs another flush, and ordering-required
// re-flushes (e.g. consecutive undo-log entries sharing a tail line) must not
// false-positive.
//
// Multi-thread soundness: each line remembers which threads stored to it
// since its last flush.  When thread A's flush covers thread B's store, B is
// marked "satisfied" for that line and B's next flush of the (now clean)
// line is suppressed once instead of flagged — two threads persisting their
// own stores to a shared metadata line is not a redundancy bug.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pmemcpy::check {

enum class Violation : std::uint8_t {
  // correctness
  kDirtyAtCommit,
  kUnpersistedPublish,
  kStoreAfterFlush,
  // efficiency lints
  kCleanFlush,
  kDuplicateFlush,
  kEmptyFence,
};

[[nodiscard]] const char* violation_name(Violation v) noexcept;
[[nodiscard]] bool violation_is_correctness(Violation v) noexcept;

/// One detected violation, with backtrace-free provenance: the device
/// persist-op number at detection and the innermost annotation scope.
struct Finding {
  Violation kind;
  std::size_t line;        ///< cacheline index (byte offset = line * 64)
  std::uint64_t persist_op;///< device persist-op counter at detection (0 = store path)
  std::string scope;       ///< owning annotation scope, "" when outside any
  std::string detail;
};

/// Machine-readable snapshot of the checker state.
struct Report {
  std::vector<Finding> findings;  ///< capped; see dropped_findings
  std::uint64_t dropped_findings = 0;

  // Traffic counters (efficiency accounting for benches / EXPERIMENTS.md).
  std::uint64_t store_ops = 0;
  std::uint64_t flush_ops = 0;       ///< flush/persist calls
  std::uint64_t lines_flushed = 0;   ///< cachelines covered by those calls
  std::uint64_t fence_ops = 0;
  std::uint64_t scopes_committed = 0;
  std::uint64_t publishes = 0;

  // Violation tallies (also counted past the findings cap).
  std::uint64_t correctness_violations = 0;
  std::uint64_t efficiency_violations = 0;
  std::uint64_t clean_flushes = 0;
  std::uint64_t duplicate_flushes = 0;
  std::uint64_t empty_fences = 0;

  [[nodiscard]] bool ok() const noexcept {
    return correctness_violations == 0 && efficiency_violations == 0;
  }
  [[nodiscard]] std::uint64_t count(Violation v) const noexcept;
  /// One-object JSON rendering (machine-readable CI artifact).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable multi-line summary.
  [[nodiscard]] std::string to_string() const;
};

class PersistChecker {
 public:
  PersistChecker();
  ~PersistChecker();

  PersistChecker(const PersistChecker&) = delete;
  PersistChecker& operator=(const PersistChecker&) = delete;

  // --- device hooks (called with the device lock NOT held) -----------------
  void on_store(std::size_t off, std::size_t len);
  void on_flush(std::size_t off, std::size_t len, std::uint64_t persist_op);
  void on_fence(std::uint64_t persist_op);
  /// Power loss: cached (non-durable) state is gone; reset every line to
  /// clean and drop open scopes.  Findings and counters survive.
  void on_crash();

  // --- annotation hooks ----------------------------------------------------
  void tx_begin(std::string_view name);
  void tx_commit(std::uint64_t persist_op);
  void tx_abort();
  void on_publish(std::size_t off, std::size_t len, std::uint64_t persist_op);

  // --- reporting ------------------------------------------------------------
  [[nodiscard]] Report report() const;
  /// Snapshot and reset findings + violation tallies (traffic counters keep
  /// accumulating).  Used by mutation tests that plant violations on purpose.
  Report take_report();
  /// True iff no violations have been recorded (and not yet taken).
  [[nodiscard]] bool clean() const;
  /// True while any line sits flushed-but-unfenced.  The device consults
  /// this when a faulted op unwinds mid-batch, to decide whether a settling
  /// fence is needed before the caller's retry stores to those lines.
  [[nodiscard]] bool has_pending_flushes() const;

 private:
  struct Line {
    enum State : std::uint8_t { kClean = 0, kDirty, kFlushPending };
    State state = kClean;
    std::uint64_t last_flush_epoch = 0;
    std::uint64_t last_flush_op = 0;
    bool store_after_flush_reported = false;
    std::vector<std::uint32_t> writers;    ///< slots with stores since last flush
    std::vector<std::uint32_t> satisfied;  ///< slots covered by another's flush
  };
  struct Scope {
    std::string name;
    std::uint64_t epoch;
    std::vector<std::size_t> dirtied;  ///< lines stored while innermost
  };
  struct ThreadState {
    std::uint32_t slot;
    std::vector<Scope> scopes;
    /// Flush calls this thread issued since its last fence.  The empty-fence
    /// lint requires BOTH this and the global pending set to be empty, so a
    /// concurrent thread's fence consuming our flushed lines cannot make our
    /// own (justified) fence look empty.
    std::uint64_t flushes_since_fence = 0;
  };

  ThreadState& self_locked();
  std::uint64_t epoch_of_locked(ThreadState& ts) const;
  void record_locked(Violation v, std::size_t line, std::uint64_t op,
                     const std::string& scope, std::string detail);

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, Line> lines_;
  std::unordered_map<std::thread::id, ThreadState> threads_;
  std::uint32_t next_slot_ = 0;
  std::uint64_t next_epoch_ = 2;  // 1 is the initial fence epoch
  std::uint64_t fence_epoch_ = 1;
  std::vector<std::size_t> pending_lines_;  ///< flushed since last fence
  Report rep_;
};

/// Process-wide accumulation of checker traffic counters across all devices
/// (a device folds its checker's counters in on destruction).  Lets benches
/// print flush/fence-efficiency totals without plumbing device handles.
struct GlobalCounters {
  std::uint64_t store_ops = 0;
  std::uint64_t flush_ops = 0;
  std::uint64_t lines_flushed = 0;
  std::uint64_t fence_ops = 0;
  std::uint64_t clean_flushes = 0;
  std::uint64_t duplicate_flushes = 0;
  std::uint64_t empty_fences = 0;
  std::uint64_t correctness_violations = 0;
};
void accumulate_global(const Report& r);
[[nodiscard]] GlobalCounters global_counters();
/// "[pmemcpy-persist-check] flush_ops=... fences=... ..." one-liner.
[[nodiscard]] std::string global_counters_line();
/// Register an atexit hook that prints global_counters_line() to stderr
/// (idempotent).  Called when a device enables its checker.
void register_atexit_counter_dump();

}  // namespace pmemcpy::check
