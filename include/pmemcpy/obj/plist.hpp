// Persistent singly-linked list and persistent mutex — the remaining PMDK
// primitives the paper's §2.2 describes ("optimized memory allocation
// functions, persistent locks, basic data structures (e.g., thread-safe
// lists), and transactions").
//
// PList is a thread-safe LIFO list of fixed-size records.  Crash
// consistency follows the same discipline as the hashtable: a node is fully
// persisted before the single 8-byte head store links it (push), and unlink
// is a single pointer store (pop).
//
// PMutex mirrors PMDK's pmemobj locks: the lock word lives in persistent
// memory but its state is *runtime-only* — like PMDK, a re-opened pool
// considers every lock released (the generation word detects stale
// ownership from before a crash).
#pragma once

#include <pmemcpy/obj/pool.hpp>

#include <functional>
#include <optional>
#include <thread>

namespace pmemcpy::obj {

class PList {
 public:
  /// Allocate an empty list for @p value_size-byte records.
  static PList create(Pool& pool, std::size_t value_size);
  /// Bind to an existing list at @p header_off.
  static PList open(Pool& pool, std::uint64_t header_off);

  PList(PList&&) noexcept = default;
  PList(const PList&) = delete;
  PList& operator=(const PList&) = delete;
  PList& operator=(PList&&) = delete;

  [[nodiscard]] std::uint64_t header_off() const noexcept { return hoff_; }
  [[nodiscard]] std::size_t value_size() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Push a record (value_size bytes) at the head.
  void push(const void* value);
  /// Pop the head record into @p out; false when empty.
  bool pop(void* out);
  /// Visit every record head-to-tail (holds the list lock).
  void for_each(const std::function<void(const std::byte*)>& fn) const;

 private:
  PList(Pool& pool, std::uint64_t hoff);

  Pool* pool_;
  std::uint64_t hoff_;
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

/// Persistent mutex (pmemobj-lock style).  Storage is an 16-byte persistent
/// slot allocated by init(); ownership is runtime-scoped and every lock is
/// considered released after Pool::open (the generation counter increments
/// per process-lifetime binding, invalidating pre-crash owners).
class PMutex {
 public:
  /// Allocate + initialise a lock slot in @p pool.
  static PMutex create(Pool& pool);
  /// Bind to an existing slot (resets runtime state, as PMDK does on open).
  static PMutex open(Pool& pool, std::uint64_t off);

  PMutex(PMutex&&) noexcept = default;
  PMutex(const PMutex&) = delete;
  PMutex& operator=(const PMutex&) = delete;
  PMutex& operator=(PMutex&&) = delete;

  [[nodiscard]] std::uint64_t off() const noexcept { return off_; }

  void lock();
  bool try_lock();
  void unlock();

 private:
  PMutex(Pool& pool, std::uint64_t off);

  Pool* pool_;
  std::uint64_t off_;
  /// Runtime side of the lock (PMDK also keeps the futex in DRAM).
  std::unique_ptr<std::mutex> runtime_ = std::make_unique<std::mutex>();
};

}  // namespace pmemcpy::obj
