// PMDK-like transactional persistent object store ("libpmemobj-lite").
//
// A Pool lives inside a region of an emulated PMEM device and provides:
//   * offset-based persistent pointers (PPtr<T>) that stay valid across
//     re-opens,
//   * a crash-safe allocator (striped size-class free lists + bump arena;
//     every multi-store metadata mutation is made atomic by per-stripe
//     allocator undo lanes, so a crash at any persist boundary rolls the
//     whole allocation, free or batch refill back; optional per-rank
//     magazines serve the common case without the lock — DESIGN.md §14),
//   * undo-log transactions (snapshot ranges, mutate, commit; recovery on
//     open rolls back incomplete transactions),
//   * a root object offset for bootstrapping data structures,
//   * CRC32C checksums on the pool header and every chunk header, plus an
//     offline integrity verifier (check()) that walks the arena, the free
//     lists and the transaction logs.
//
// All stores go through write()/set()/persist() so they are visible to the
// device's crash tracking and charged on the simulated clock.  The pool can
// be opened with MAP_SYNC semantics, which makes every DAX store pay the
// synchronous page-fault penalty the paper evaluates as "PMCPY-B".
#pragma once

#include <pmemcpy/ft/ft.hpp>
#include <pmemcpy/pmem/device.hpp>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pmemcpy::obj {

/// Typed persistent pointer: an offset from the pool base.  0 is null.
template <typename T>
struct PPtr {
  std::uint64_t off = 0;
  [[nodiscard]] explicit operator bool() const noexcept { return off != 0; }
  friend bool operator==(PPtr, PPtr) = default;
};

struct PoolOptions {
  /// Charge MAP_SYNC synchronous-fault semantics on every DAX store.
  bool map_sync = false;
};

class Transaction;

/// Thrown when open() finds no valid pool, or create() lacks space.
struct PoolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Result of the offline integrity verifier, Pool::check().
struct CheckReport {
  /// Human-readable descriptions of every invariant violation found.
  std::vector<std::string> issues;
  /// Chunks visited by the heap walk (allocated + free).
  std::size_t chunks_walked = 0;
  /// Chunks found on the size-class and large free lists.
  std::size_t free_chunks = 0;
  /// Chunks durably marked magazine-owned (owned-but-unpublished; counted
  /// as in-use and never expected on a free list — recovery sweeps them).
  std::size_t magazine_chunks = 0;
  /// bytes_in_use recomputed from the heap walk (compare to the stored
  /// counter; a mismatch is also reported as an issue).
  std::uint64_t bytes_in_use = 0;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
};

class Pool {
 public:
  /// Number of independent transaction lanes (concurrent transactions).
  static constexpr std::size_t kTxLanes = 16;
  /// Undo-log capacity per lane (payload bytes, excluding entry headers).
  static constexpr std::size_t kTxLogBytes = 64 * 1024;
  /// Persistent allocator metadata stripes (size-class free lists + undo
  /// lanes).  Fixed in the on-media layout; set_alloc_stripes() picks how
  /// many of them ranks actually spread across at runtime, so a pool can be
  /// reopened with any active stripe count.
  static constexpr std::size_t kAllocStripes = 16;
  /// Hard cap on the magazine refill batch (bounded by what one stripe undo
  /// lane can pre-image in a single batch).
  static constexpr int kMaxMagazineSize = 64;

  /// Deliberate-bug knobs for validating the crash harness (mutation
  /// testing): re-introduce a known durability bug and assert the crash
  /// matrix catches it.  Never enable outside tests.
  struct TestFaults {
    /// Skip persisting the lane-header zero in Transaction::commit() — the
    /// historical bug where a crash right after commit re-exposes the stale
    /// undo entries and recovery rolls a *committed* transaction back.
    bool skip_lane_zero_persist = false;
  };

  /// Format a fresh pool over device bytes [base, base+size).
  static Pool create(pmem::Device& dev, std::size_t base, std::size_t size,
                     PoolOptions opts = {});
  /// Open an existing pool at @p base; runs undo-log recovery.
  static Pool open(pmem::Device& dev, std::size_t base, PoolOptions opts = {});

  Pool(Pool&&) noexcept;
  Pool& operator=(Pool&&) noexcept = delete;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool();

  [[nodiscard]] pmem::Device& device() noexcept { return *dev_; }
  [[nodiscard]] bool map_sync() const noexcept { return opts_.map_sync; }
  void set_map_sync(bool on) noexcept { opts_.map_sync = on; }
  [[nodiscard]] TestFaults& test_faults() noexcept { return test_faults_; }

  // --- root object ----------------------------------------------------------

  [[nodiscard]] std::uint64_t root() const;
  void set_root(std::uint64_t off);

  // --- allocation ------------------------------------------------------------

  /// Allocate @p bytes of persistent memory; returns a pool-relative offset.
  /// Throws std::bad_alloc when the pool is exhausted.  Crash-atomic: a
  /// crash at any internal persist boundary rolls the allocation back.
  std::uint64_t alloc(std::size_t bytes);
  /// Return an allocation to the pool.  Crash-atomic like alloc().
  void free(std::uint64_t off);

  /// Expected number of ranks/threads concurrently hammering this pool's
  /// serialized metadata path (allocator lock, undo logs).  A pure
  /// simulation knob: every alloc()/free() charges a queueing delay of
  /// (n-1) * PmemModel::pool_op_queue_cost.  Engines set it to
  /// ceil(nranks/shards) at open; the default of 1 charges nothing, so
  /// serial code is unaffected.
  void set_expected_contenders(int n) noexcept { contenders_ = n < 1 ? 1 : n; }
  [[nodiscard]] int expected_contenders() const noexcept { return contenders_; }

  /// Per-rank magazine capacity: the refill batch K.  0 (the default for a
  /// raw pool) disables magazines entirely — every alloc/free takes the
  /// classic locked path.  Engines arm K from PMEMCPY_MAGAZINE_SIZE.
  /// Clamped to [0, kMaxMagazineSize].
  void set_magazine_size(int k) noexcept {
    mag_size_ = k < 0 ? 0 : (k > kMaxMagazineSize ? kMaxMagazineSize : k);
  }
  [[nodiscard]] int magazine_size() const noexcept { return mag_size_; }

  /// Active metadata stripes: how many of the kAllocStripes persistent
  /// free-list/undo lanes ranks spread across (stripe = rank % n).  A pure
  /// distribution + contention-model knob, safe to change across reopens;
  /// the slow path steals from every stripe regardless.  Clamped to
  /// [1, kAllocStripes].
  void set_alloc_stripes(int n) noexcept {
    stripes_ = n < 1 ? 1 : (n > static_cast<int>(kAllocStripes)
                                ? static_cast<int>(kAllocStripes)
                                : n);
  }
  [[nodiscard]] int alloc_stripes() const noexcept { return stripes_; }

  /// Flush every magazine-held chunk back to the persistent free lists.
  /// For tests and orderly teardown only: the caller must guarantee no
  /// concurrent alloc()/free() (magazines are single-owner caches).
  void drain_magazines();
  /// Usable payload size of an allocation.
  [[nodiscard]] std::size_t usable_size(std::uint64_t off) const;
  /// Bytes currently handed out (payload, excluding headers).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;

  // --- integrity --------------------------------------------------------------

  /// Offline integrity verifier: validates the pool-header checksum, walks
  /// the arena chunk by chunk (header checksums, overlap), the size-class
  /// and large free lists (cycles, class mismatches, double-listing), the
  /// transaction lanes, the allocator undo log (structural validity) and
  /// the quarantine table, and recomputes bytes_in_use.  Read-only; safe on
  /// a just-opened pool.
  [[nodiscard]] CheckReport check() const;

  // --- quarantine (self-healing data path, DESIGN.md §10) --------------------

  /// Slots in the persistent quarantine table (it lives in the metadata gap
  /// between the pool header and the allocator state).
  static constexpr std::size_t kQuarantineCapacity = 128;

  /// Record [off, off+len) — pool-relative, rounded out to cachelines — in
  /// the persistent quarantine table: the allocator never hands any part of
  /// it out again, and free() leaks chunks that landed on it instead of
  /// linking through failing media.  Crash-atomic (the new entry is durable
  /// before the single-store count/crc header swing makes it visible) and
  /// idempotent for already-covered ranges.  Returns kQuarantineFull when
  /// the table is out of slots.
  ft::Status quarantine(std::uint64_t off, std::size_t len);
  /// True when [off, off+len) intersects a quarantined range.
  [[nodiscard]] bool is_quarantined(std::uint64_t off, std::size_t len) const;
  /// Snapshot of the quarantine table as (off, len) pairs, in table order.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  quarantined() const;

  /// Throw pmem::DeviceError if [off, off+len) intersects injected bad
  /// media, without reading it (for zero-copy consumers of direct()).
  void verify_media(std::uint64_t off, std::size_t len) const;

  // --- charged data access ----------------------------------------------------

  /// memcpy @p len bytes into the pool at @p off (DAX store: charged, crash-
  /// tracked, NOT yet persisted — call persist()).
  void write(std::uint64_t off, const void* src, std::size_t len);
  /// memcpy @p len bytes out of the pool (DAX load: charged).  Throws
  /// pmem::DeviceError on injected media errors.
  void read(std::uint64_t off, void* dst, std::size_t len) const;
  /// Store a trivially-copyable value and persist it (one metadata store).
  template <typename T>
  void set(std::uint64_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(off, &v, sizeof(T));
    persist(off, sizeof(T));
  }
  /// Load a trivially-copyable value (charged as a small DAX read).
  template <typename T>
  [[nodiscard]] T get(std::uint64_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(off, &v, sizeof(T));
    return v;
  }
  /// Flush + fence a pool range.
  void persist(std::uint64_t off, std::size_t len);
  /// Flush only (CLWB, no fence); durable after the next drain().  Batch
  /// several flushes under one drain to pay a single fence.
  void flush(std::uint64_t off, std::size_t len);
  /// Fence: make every previously flushed range durable.
  void drain() { dev_->drain(); }
  /// Persistency-checker annotation: declare a pool range as becoming
  /// reachable/visible (it must be flushed + fenced by now).  No-op without
  /// an attached checker.
  void check_publish(std::uint64_t off, std::size_t len) {
    dev_->check_publish(base_ + off, len);
  }

  /// Zero-copy pointer to pool memory.  Mutating through it requires a prior
  /// note_write()/charge via write(); prefer write().  Reading through it is
  /// free of charge — use charge_read() to account a bulk DAX read.
  [[nodiscard]] std::byte* direct(std::uint64_t off) noexcept {
    return dev_->raw(base_ + off);
  }
  [[nodiscard]] const std::byte* direct(std::uint64_t off) const noexcept {
    return dev_->raw(base_ + off);
  }
  /// Writable span over an allocation's payload, with the store charged and
  /// crash-tracked but not persisted (the direct-serialization sink).
  [[nodiscard]] std::span<std::byte> direct_write_span(std::uint64_t off,
                                                       std::size_t len);
  /// Account a bulk zero-copy read of @p len bytes.
  void charge_read(std::size_t len) const {
    dev_->charge_dax_read(len, opts_.map_sync);
  }

  // --- typed persistent pointers ----------------------------------------------

  template <typename T>
  [[nodiscard]] T pget(PPtr<T> p) const {
    return get<T>(p.off);
  }
  template <typename T>
  void pset(PPtr<T> p, const T& v) {
    set<T>(p.off, v);
  }

  // --- transactions -------------------------------------------------------------

  friend class Transaction;

  /// Device offset of the pool base (for diagnostics).
  [[nodiscard]] std::size_t base() const noexcept { return base_; }
  /// Total pool size in bytes.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  Pool(pmem::Device& dev, std::size_t base, std::size_t size, PoolOptions opts);

  struct Layout;  // offsets of persistent control structures
  struct Range {  // one pre-image / flush target for the batched helpers
    std::uint64_t off;
    std::uint64_t len;
  };
  struct Magazine;      // per-thread size-class chunk cache
  struct AllocRuntime;  // DRAM-side magazine table + quarantine-active flag
  void format();
  void recover();
  void check_off(std::uint64_t off, std::size_t len) const;

  /// Rebuild the DRAM quarantine cache from the persistent table (open()).
  void load_quarantine();
  /// Intersection test against the cache; callers hold alloc_mu_.
  [[nodiscard]] bool quar_hit(std::uint64_t off, std::size_t len) const;

  std::uint64_t alloc_locked(std::size_t bytes, int stripe);
  int acquire_tx_lane();
  void release_tx_lane(int lane);
  [[nodiscard]] std::uint64_t lane_off(int lane) const;

  // --- magazines (DESIGN.md §14) -------------------------------------------
  /// This thread's magazine (created on first use).
  [[nodiscard]] Magazine& magazine();
  /// Stripe the calling rank's metadata traffic maps to (slides past
  /// stripes whose metadata media died; see stripe_failing()).
  [[nodiscard]] int acting_stripe() const;
  /// True when sticky media covers @p stripe's state block or undo lane —
  /// transactions bound to it would fault on every metadata store.
  [[nodiscard]] bool stripe_failing(int stripe) const;
  /// Refill @p m's class-@p cls stack with up to K chunks under one lock
  /// acquisition and one undo transaction; returns how many were obtained.
  std::size_t refill_magazine(Magazine& m, std::size_t cls);
  std::size_t refill_locked(Magazine& m, std::size_t cls, int stripe);
  /// Return all but @p keep of @p m's class-@p cls chunks to the persistent
  /// free lists in one batch.
  void flush_back(Magazine& m, std::size_t cls, std::size_t keep);
  void flush_back_locked(const std::vector<std::uint64_t>& out,
                         std::size_t cls, int stripe);
  /// Durably mark a chunk owned-but-unpublished (header rewritten with the
  /// magazine flag; persistence deferred to the caller's batch flush).
  void mag_mark_owned(std::uint64_t chunk, std::uint64_t payload,
                      std::uint32_t cls);
  /// Reclaim chunks left magazine-flagged by a crash back to the free
  /// lists (open(), after undo-log recovery and quarantine load).
  void sweep_magazines();

  // Allocator undo log (one lane per metadata stripe): pre-image logging
  // that makes the multi-store allocator mutations atomic across crashes.
  // A whole batch of entries is persisted with one coalesced flush+fence
  // and published by a single durable `used` bump.
  void aundo_log_batch(int stripe, const std::vector<Range>& ranges);
  void aundo_commit(int stripe);
  [[nodiscard]] std::uint64_t stripe_undo_off(int stripe) const;
  [[nodiscard]] std::uint64_t stripe_state_off(int stripe) const;
  /// Coalesce @p ranges to distinct cachelines, flush them, fence once.
  void persist_ranges(const std::vector<Range>& ranges);
  /// Roll back an undo log (newest entry first) and retire it.  Shared by
  /// lane recovery, transaction rollback and allocator-undo recovery.
  void rollback_log(std::uint64_t header_off, std::uint64_t payload_off,
                    std::uint64_t capacity);

  void charge_queue_delay() const;

  pmem::Device* dev_;
  std::size_t base_;
  std::size_t size_;
  PoolOptions opts_;
  TestFaults test_faults_;
  int contenders_ = 1;
  int mag_size_ = 0;  ///< refill batch K; 0 = magazines off
  int stripes_ = 1;   ///< active metadata stripes

  /// DRAM cache of the persistent quarantine table, in table order.
  /// Guarded by alloc_mu_ (the allocator consults it on every path).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> quar_;

  std::unique_ptr<AllocRuntime> art_;
  std::unique_ptr<std::mutex> alloc_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<std::mutex> lane_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<std::condition_variable> lane_cv_ =
      std::make_unique<std::condition_variable>();
  std::vector<bool> lane_busy_ = std::vector<bool>(kTxLanes, false);
};

/// RAII undo-log transaction.  snapshot() ranges you are about to mutate;
/// commit() makes the mutations durable atomically; destruction without
/// commit rolls every snapshotted range back (as does crash recovery).
///
/// For group commit, reserve() enrolls a range in the commit-time flush
/// sweep *without* logging a pre-image: the caller promises the range is
/// not yet reachable from any persistent root (a freshly allocated node or
/// blob), so a crash needs no rollback — the orphan allocation is
/// reconciled by the allocator undo log / leak semantics instead.  A
/// reservation-only commit is therefore one coalesced CLWB pass plus a
/// single fence, with no lane traffic at all.
class Transaction {
 public:
  explicit Transaction(Pool& pool);
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Save the pre-image of [off, off+len); call before mutating it.
  void snapshot(std::uint64_t off, std::size_t len);
  /// Enroll [off, off+len) in the commit-time flush without a pre-image.
  /// Only for ranges unreachable until after commit (see class comment).
  void reserve(std::uint64_t off, std::size_t len);
  /// Persist all enrolled ranges' contents and retire the log (the lane is
  /// only touched when something was snapshotted).
  void commit();

 private:
  void rollback();

  Pool* pool_;
  int lane_;
  bool committed_ = false;
  bool snapshotted_ = false;
  /// Ranges snapshotted or reserved, for the commit-time persist sweep.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranges_;
};

}  // namespace pmemcpy::obj
