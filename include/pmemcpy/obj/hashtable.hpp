// Persistent hashtable with chaining — the flat-namespace metadata store the
// paper's Data Layout section describes ("metadata is stored in a flat
// namespace using a hashtable with chaining").
//
// Keys are strings stored inline in chain nodes; values are separately
// allocated blobs referenced by (offset, size) plus a 64-bit caller-defined
// meta word (pMEMCPY uses it for the serializer/type code).
//
// Crash-consistency discipline:
//   * insert  — node and blob are fully written and persisted *before* the
//     single 8-byte bucket-head store links them in (reserve/publish).
//   * replace — the new node is linked at the chain head first, then the old
//     node is unlinked; a crash in between leaves a benign shadowed duplicate
//     (the head entry wins) that the next replace/erase removes.
//   * erase/unlink — one 8-byte pointer store.
//   * rehash  — builds a complete new bucket array + node set (value blobs
//     are shared, not copied), then swaps the header atomically under a
//     transaction; a crash before the swap only leaks the new copies.
//
// Thread-safety: operations take one of 64 stripe locks chosen by key hash,
// so ranks writing different variables proceed in parallel (the paper's
// "metadata updates were parallelized").  One HashTable instance must be
// shared by all threads operating on the same persistent table.
#pragma once

#include <pmemcpy/obj/pool.hpp>

#include <array>
#include <functional>
#include <optional>
#include <span>
#include <string_view>

namespace pmemcpy::obj {

/// Reference to a stored value.
struct ValueRef {
  std::uint64_t node_off = 0;
  std::uint64_t val_off = 0;
  std::uint64_t val_size = 0;
  std::uint64_t meta = 0;
};

class HashTable {
 public:
  /// Allocate a new table (header + zeroed bucket array) in @p pool.
  static HashTable create(Pool& pool, std::size_t nbuckets);
  /// Bind to an existing table whose header lives at @p header_off.
  static HashTable open(Pool& pool, std::uint64_t header_off);

  HashTable(HashTable&&) noexcept = default;
  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;
  HashTable& operator=(HashTable&&) = delete;

  /// Pool offset of the persistent header (store it as the pool root).
  [[nodiscard]] std::uint64_t header_off() const noexcept { return hoff_; }

  /// Two-phase insert: the value span can be filled (e.g. serialized into)
  /// in place; nothing is visible until publish().  An unpublished Inserter
  /// frees its allocations on destruction.
  class Inserter {
   public:
    ~Inserter();
    Inserter(Inserter&& o) noexcept;
    Inserter(const Inserter&) = delete;
    Inserter& operator=(const Inserter&) = delete;
    Inserter& operator=(Inserter&&) = delete;

    /// Charged, crash-tracked writable span over the reserved blob.
    [[nodiscard]] std::span<std::byte> value();
    [[nodiscard]] std::uint64_t value_off() const noexcept { return val_off_; }
    /// Overwrite the high 32 bits of the entry's meta word (the blob
    /// checksum slot) before publishing.
    void set_meta_high(std::uint32_t hi);
    /// Persist the blob + node and link the entry (replacing any existing
    /// entry with the same key).  With @p keep_existing an existing entry
    /// wins instead and the reservation is discarded; returns whether this
    /// entry was linked.
    bool publish(bool keep_existing = false);

    /// Close this reservation's persistency-checker scope early, for group
    /// staging.  The checker's scope stack is strictly LIFO per thread, but
    /// a batch stager interleaves reservations (across buckets, tables and
    /// shards) and publishes them in a different order — so each staged
    /// scope must be popped while it is still the innermost one, i.e. right
    /// after the value is serialized and before the next reservation.  The
    /// staged lines stay deliberately dirty; publish_group()'s coalesced
    /// flush pass cleans them and its check_publish() verifies that.
    void close_checker_scope();

   private:
    friend class HashTable;
    Inserter(HashTable& t, std::string_view key, std::uint64_t node_off,
             std::uint64_t val_off, std::uint64_t val_size);
    HashTable* table_;
    std::string key_;
    std::uint64_t node_off_;
    std::uint64_t val_off_;
    std::uint64_t val_size_;
    bool published_ = false;
    bool scope_open_ = true;
  };

  /// Reserve an entry with a @p val_size-byte value blob.
  [[nodiscard]] Inserter reserve(std::string_view key, std::size_t val_size,
                                 std::uint64_t meta = 0);

  /// One member of a group publish: a staged reservation plus its
  /// keep-existing flag.  publish_group() sets @p linked to whether the
  /// entry went in (false = discarded: a duplicate within the batch, or
  /// keep_existing lost to an existing entry).
  struct GroupPut {
    Inserter* ins = nullptr;
    bool keep_existing = false;
    bool linked = false;
  };

  /// Group commit: make every staged reservation in @p puts durable and
  /// visible with two fences total, instead of one-plus per put.
  ///
  /// Protocol (see DESIGN.md §8):
  ///   1. resolve within-batch duplicate keys (replace: last wins;
  ///      keep_existing: first wins) and, under the stripe locks, look up
  ///      existing chain entries;
  ///   2. wire the winners into per-bucket shadow chains with plain stores
  ///      of their next pointers;
  ///   3. fence #1 — one reservation-only Transaction flushing every blob +
  ///      node (including the next pointers) with a single coalesced CLWB
  ///      pass + drain;
  ///   4. fence #2 — plain 8-byte stores of the new bucket heads and the
  ///      count, one coalesced flush pass + drain.  Only now is anything
  ///      reachable, so a crash before this point publishes nothing.
  ///   5. unlink + free superseded/discarded entries (the benign-shadowed-
  ///      duplicate discipline of single publish()).
  ///
  /// All Inserters must belong to this table and be unpublished; they are
  /// marked published regardless of outcome.
  void publish_group(std::span<GroupPut> puts);
  /// One-shot insert/replace copying @p len bytes.
  void put(std::string_view key, const void* data, std::size_t len,
           std::uint64_t meta = 0);

  [[nodiscard]] std::optional<ValueRef> find(std::string_view key) const;
  /// Remove @p key; returns false if absent.
  bool erase(std::string_view key);

  /// Charged copy of a value into @p dst (val_size bytes).
  void read_value(const ValueRef& ref, void* dst) const;
  /// Zero-copy pointer to the value, charging a bulk DAX read of its size.
  [[nodiscard]] const std::byte* value_direct(const ValueRef& ref) const;

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t nbuckets() const;

  /// Rebuild with a new bucket count (values shared; see file comment).
  void rehash(std::size_t new_nbuckets);

  /// Enable automatic geometric growth: when the load factor exceeds 4 the
  /// table rehashes to 4x the buckets after the triggering insert.  Off by
  /// default so fixed-size tables stay fixed (e.g. for ablations).
  void set_auto_grow(bool on) noexcept { auto_grow_ = on; }
  [[nodiscard]] bool auto_grow() const noexcept { return auto_grow_; }

  /// Iterate all entries (takes all stripe locks; don't mutate from @p fn).
  void for_each(
      const std::function<void(std::string_view, const ValueRef&)>& fn) const;
  /// Iterate entries whose key starts with @p prefix.
  void for_each_prefix(
      std::string_view prefix,
      const std::function<void(std::string_view, const ValueRef&)>& fn) const;

 private:
  static constexpr std::size_t kStripes = 64;

  HashTable(Pool& pool, std::uint64_t hoff);

  struct Node;  // persistent node layout (see .cpp)

  [[nodiscard]] std::uint64_t bucket_slot(std::string_view key) const;
  /// Every (prev, node) chain position matching @p key, head-first.  More
  /// than one match is a crash leftover: an overwrite that published its
  /// new head but lost power before unlinking the superseded node.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  find_chain(std::uint64_t slot, std::string_view key) const;
  /// Unlink @p node (whose predecessor is @p prev, 0 = bucket head) and
  /// free its storage.
  void unlink_free(std::uint64_t slot, std::uint64_t prev, std::uint64_t node);
  /// Link @p node_off under @p key, replacing any existing entry.  The
  /// bucket-head store is the commit point: @p linked_out (when non-null)
  /// flips to true the instant that store is durable, so a caller unwinding
  /// from a fault in the post-publish tail (count bump, stale-entry unlink)
  /// can tell a reachable entry from an abandoned reservation.
  bool link_replace(std::string_view key, std::uint64_t node_off,
                    bool keep_existing, bool* linked_out = nullptr);
  void maybe_grow();
  void bump_count(std::int64_t delta);
  [[nodiscard]] std::string read_key(std::uint64_t node_off) const;

  Pool* pool_;
  std::uint64_t hoff_;
  std::unique_ptr<std::array<std::mutex, kStripes>> stripes_ =
      std::make_unique<std::array<std::mutex, kStripes>>();
  std::unique_ptr<std::mutex> count_mu_ = std::make_unique<std::mutex>();
  bool auto_grow_ = false;
};

}  // namespace pmemcpy::obj
