// Per-rank simulated clock and charging helpers.
//
// Every rank (thread) of the parallel runtime owns a Context holding its
// simulated clock.  Modules (device, filesystem, communicator, serializers)
// charge costs to the *current* context, found through a thread-local
// pointer.  Code that runs outside the parallel runtime (unit tests, serial
// examples) uses a process-wide default context.
#pragma once

#include <pmemcpy/sim/model.hpp>

#include <cstddef>
#include <cstdint>

namespace pmemcpy::sim {

/// Cost categories, for introspection in tests and benches.
enum class Charge : int {
  kCpuCopy = 0,     ///< DRAM<->DRAM movement
  kPmemRead,        ///< device reads
  kPmemWrite,       ///< device writes
  kPmemPersist,     ///< persist/drain barriers
  kNetwork,         ///< messages through the communicator
  kSyscall,         ///< kernel crossings
  kPageFault,       ///< mapping faults (incl. MAP_SYNC sync faults)
  kPfs,             ///< parallel-filesystem transfers (burst-buffer drain)
  kOther,
  kRetryBackoff,    ///< waits between device fault-retry attempts
  kNumCharges,
};

/// Per-rank simulated clock + cost accounting.
class Context {
 public:
  /// @param model     cost constants (must outlive the context)
  /// @param nranks    communicator size this rank belongs to (for
  ///                  bandwidth-sharing); 1 for serial code
  /// @param rank      this rank's id
  explicit Context(const CostModel& model = default_model(), int nranks = 1,
                   int rank = 0) noexcept
      : model_(&model), nranks_(nranks), rank_(rank) {}

  [[nodiscard]] const CostModel& model() const noexcept { return *model_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Simulated seconds elapsed on this rank.
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Force the clock (used by collectives to synchronise to a max).
  void set_now(double t) noexcept { now_ = t; }
  /// Jump forward to @p t, attributing the wait to @p why.  Unlike
  /// set_now(), the skipped time stays visible in charged(), so span
  /// charge-category deltas keep summing to wall time across collectives.
  void sync_to(double t, Charge why) noexcept {
    if (t > now_) {
      charged_[static_cast<int>(why)] += t - now_;
      now_ = t;
    }
  }
  void advance(double seconds, Charge why = Charge::kOther) noexcept {
    now_ += seconds;
    charged_[static_cast<int>(why)] += seconds;
  }
  void reset_clock() noexcept {
    now_ = 0.0;
    for (auto& c : charged_) c = 0.0;
  }
  /// Total simulated seconds attributed to a category.
  [[nodiscard]] double charged(Charge why) const noexcept {
    return charged_[static_cast<int>(why)];
  }

  // --- derived machine quantities -----------------------------------------

  /// Time-slicing factor for bandwidth-bound compute.  Up to the physical
  /// core count every rank runs at full speed; beyond it, ranks share cores,
  /// with SMT contributing a diminishing-returns bonus (each hyperthread
  /// adds ~25% of a core).  Smooth and monotone, so sweeps over the rank
  /// count have no artificial cliffs.
  [[nodiscard]] double cpu_slowdown() const noexcept {
    const auto cores = static_cast<double>(model_->cpu.physical_cores);
    const auto threads = static_cast<double>(model_->cpu.hardware_threads);
    const auto k = static_cast<double>(nranks_);
    if (k <= cores) return 1.0;
    const double smt = (k < threads ? k : threads) - cores;
    const double effective = cores + 0.25 * smt;
    return k / effective;
  }

  /// Effective parallelism for latency-bound work (scales to SMT threads).
  [[nodiscard]] int latency_parallelism() const noexcept {
    const int t = model_->cpu.hardware_threads;
    return nranks_ < t ? nranks_ : t;
  }

  /// Per-rank effective bandwidth of a shared resource with a single-stream
  /// cap: min(stream/slowdown, total/nranks).
  [[nodiscard]] double shared_bw(double stream_bw,
                                 double total_bw) const noexcept {
    const double per_stream = stream_bw / cpu_slowdown();
    const double fair_share = total_bw / static_cast<double>(nranks_);
    return per_stream < fair_share ? per_stream : fair_share;
  }

  // --- charging helpers -----------------------------------------------------

  /// DRAM-to-DRAM copy of @p bytes (pack/unpack, staging buffers, memcpy).
  void charge_cpu_copy(std::size_t bytes) noexcept {
    const auto& m = model_->cpu;
    advance(static_cast<double>(bytes) /
                shared_bw(m.dram_stream_bw, m.dram_total_bw),
            Charge::kCpuCopy);
  }

  /// One kernel crossing.
  void charge_syscall() noexcept {
    advance(model_->cpu.syscall_cost, Charge::kSyscall);
  }

  /// @p n minor page faults.
  void charge_minor_faults(std::size_t n) noexcept {
    advance(static_cast<double>(n) * model_->cpu.minor_fault_cost,
            Charge::kPageFault);
  }

 private:
  const CostModel* model_;
  int nranks_;
  int rank_;
  double now_ = 0.0;
  double charged_[static_cast<int>(Charge::kNumCharges)] = {};
};

/// The context of the calling thread (a rank's context inside the parallel
/// runtime, else the process-wide default).
Context& ctx() noexcept;

/// The process-wide default context (what ctx() returns outside any scope).
Context& default_context() noexcept;

/// RAII: install @p c as the calling thread's current context.
class ScopedContext {
 public:
  explicit ScopedContext(Context& c) noexcept;
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* prev_;
};

}  // namespace pmemcpy::sim
