// Cost-model constants for the simulated testbed.
//
// The paper's evaluation ran on a Chameleon Cloud "Compute Skylake" node
// (2x Xeon Gold 6126, 24 cores / 48 threads, 192 GB DRAM) with PMEM emulated
// from DRAM following the Strata methodology: 300 ns read latency, 125 ns
// write latency, 30 GB/s read bandwidth, 8 GB/s write bandwidth.  We encode
// that machine here and charge every data movement against it on a simulated
// clock, which makes results deterministic and host-independent.
#pragma once

#include <cstddef>

namespace pmemcpy::sim {

/// CPU/DRAM side of the machine model.
struct MachineModel {
  /// Physical cores; bandwidth-bound work stops scaling past this.
  int physical_cores = 24;
  /// Hardware threads; latency-bound work keeps scaling to this.
  int hardware_threads = 48;
  /// Single-thread copy/serialize bandwidth (bytes/s).  Calibrated so that
  /// aggregate copy throughput saturates right at 24 physical cores
  /// (24 x 2.5 GB/s = 60 GB/s), reproducing the paper's observation that
  /// concurrency benefits wear off at the core count.
  double dram_stream_bw = 2.5e9;
  /// Aggregate DRAM bandwidth across all cores (bytes/s).
  double dram_total_bw = 60.0e9;
  /// Fixed cost of entering/leaving the kernel once.
  double syscall_cost = 1.2e-6;
  /// Minor page-fault service cost (first touch of a mapped page).
  double minor_fault_cost = 0.5e-6;
  /// Page size used for fault accounting.
  std::size_t page_size = 4096;
};

/// Emulated persistent-memory device (Strata / van Renen constants).
struct PmemModel {
  double read_latency = 300e-9;
  double write_latency = 125e-9;
  /// Aggregate device bandwidth (bytes/s).
  double read_total_bw = 30.0e9;
  double write_total_bw = 8.0e9;
  /// Per-thread streaming cap: one core cannot saturate the device.
  double read_stream_bw = 10.0e9;
  double write_stream_bw = 4.0e9;
  /// Cost of a persist barrier (CLWB+SFENCE over dirtied lines, amortised
  /// per 64B line; flushes overlap with streaming stores, so the marginal
  /// cost per line is small — the bandwidth model carries the bulk cost).
  double persist_line_cost = 1e-9;
  /// Fixed cost of a drain (SFENCE) operation.
  double drain_cost = 30e-9;
  /// MAP_SYNC: synchronous block-allocation fault charged on first touch of
  /// every 4 KiB page of a writable mapping.  Latency-bound, so it keeps
  /// parallelising up to the SMT thread count — why the paper's PMCPY-B
  /// keeps improving past 24 cores while everything else flattens.
  double map_sync_page_cost = 2.0e-6;
  /// MAP_SYNC: effective write-bandwidth derating while the flag is on
  /// (per-cacheline write-through behaviour).
  double map_sync_write_bw_factor = 0.75;
  /// MAP_SYNC: read-side derating on such mappings (reads fault through the
  /// synchronous path too, losing the zero-copy benefit).
  double map_sync_read_bw_factor = 0.5;
  /// Queueing delay at a pool's serialized metadata path.  The allocator,
  /// free lists and undo logs sit behind one lock, so concurrent ranks
  /// serialize on every alloc/free — the µs-scale small-allocation critical
  /// section van Renen et al. and Marathe et al. measure for pmemobj-style
  /// heaps.  Charged per metadata op and per expected contender beyond the
  /// first (Pool::set_expected_contenders); sharded engines divide the
  /// contenders across pools, which is exactly the effect they exist to model.
  /// 0.1 µs keeps the single-pool charge at 48 ranks within the figure
  /// benches' millisecond print resolution while still separating the
  /// shard counts (EXPERIMENTS.md §shards).
  double pool_op_queue_cost = 0.1e-6;
};

/// Intra-node transport the MPI-like runtime charges (shared-memory BTL).
struct NetworkModel {
  /// Per-message latency (matching/queueing/rendezvous).
  double latency = 2.0e-6;
  /// Single-pair streaming bandwidth (bytes/s).  Calibrated to saturate the
  /// transport at 24 ranks (24 x 0.5 GB/s = 12 GB/s).
  double stream_bw = 0.5e9;
  /// Aggregate transport bandwidth (bytes/s); shuffles contend for this.
  double total_bw = 12.0e9;
};

/// The full machine: everything cost-bearing in the repo charges via this.
struct CostModel {
  MachineModel cpu;
  PmemModel pmem;
  NetworkModel net;
};

/// The default (paper-testbed) model.
const CostModel& default_model();

}  // namespace pmemcpy::sim
