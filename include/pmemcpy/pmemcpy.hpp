// pMEMCPY — a simple, lightweight, and portable I/O library for storing data
// in persistent memory (reproduction of Logan et al., CLUSTER 2021).
//
// The public API follows the paper's Figure 2:
//
//   pmemcpy::PMEM pmem;
//   pmem.mmap(filename[, comm]);
//   pmem.store<T>(id, data);                       // scalars & structs
//   pmem.alloc<T>(id, ndims, dims);                // declare a global array
//   pmem.store<T>(id, data, ndims, offsets, dimspp);  // write a subarray
//   pmem.load<T>(id[, data...]);
//   pmem.load_dims(id, &ndims, dims);
//   pmem.munmap();
//
// Key properties reproduced from the paper:
//   * key-value interface; array dimensions are stored automatically under
//     id + "#dims" and queried with load_dims;
//   * data is kept "in the same format as it was produced": each process's
//     subarray is stored as its own piece (no global linearisation, no
//     inter-process communication on the I/O path);
//   * serializers are pluggable (BP4-lite default, cereal-style binary, or
//     disabled/raw) and serialize *directly into PMEM* — no DRAM staging
//     copy (Config::force_dram_staging re-enables staging for ablation);
//   * MAP_SYNC can be enabled per Config (the paper's PMCPY-B variant);
//   * two layouts: flat PMDK-style hashtable (default) or hierarchical
//     (ids containing '/' become directories on the PMEM filesystem).
#pragma once

#include <pmemcpy/core/hyperslab.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/core/read_cache.hpp>
#include <pmemcpy/crc32c.hpp>
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/ft/ft.hpp>
#include <pmemcpy/pmem/device.hpp>
#include <pmemcpy/par/comm.hpp>
#include <pmemcpy/serial/binary.hpp>
#include <pmemcpy/serial/bp4.hpp>
#include <pmemcpy/serial/filter.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

namespace pmemcpy {

/// Metadata/data layout (paper §3 "Data Layout").
enum class Layout {
  kHashTable,     ///< flat namespace, persistent hashtable in one pool
  kHierarchical,  ///< file-per-variable tree on the PMEM filesystem
};

struct Config {
  /// Node environment; nullptr means PmemNode::default_node().
  PmemNode* node = nullptr;
  /// Enable MAP_SYNC semantics (paper variant PMCPY-B).
  bool map_sync = false;
  serial::SerializerId serializer = serial::SerializerId::kBp4;
  Layout layout = Layout::kHashTable;
  /// Hashtable buckets for the flat layout.
  std::size_t nbuckets = 8192;
  /// Let the metadata hashtable grow geometrically under load.
  bool auto_grow_table = true;
  /// Transparent filter applied to array-piece payloads (compression);
  /// filtering trades a DRAM encode pass for fewer bytes through PMEM.
  serial::FilterId filter = serial::FilterId::kNone;
  /// Pool bytes for the flat layout; 0 = remaining pool area.
  std::size_t pool_size = 0;
  /// Ablation switch: serialize into a DRAM buffer first and then copy to
  /// PMEM (how ADIOS-style libraries behave) instead of serializing
  /// directly into PMEM.
  bool force_dram_staging = false;
  /// Verify the per-entry CRC32C on every load and throw IntegrityError on
  /// mismatch instead of deserializing torn or rotted bytes.
  bool verify_checksums = true;
  /// DRAM read-cache budget in bytes (DESIGN.md §13).  0 disables caching;
  /// nonzero keeps verified blob copies under LRU so repeated reads of the
  /// same entries (restart / plane / subvolume patterns) are served at DRAM
  /// cost.  The fill copy is charged to the simulated clock, eviction order
  /// is deterministic, and every put/remove/repair/quarantine invalidates —
  /// a cached blob never goes stale.  The PMEMCPY_READ_CACHE env var
  /// overrides this at mmap() time (accepts k/m/g suffixes).
  std::size_t read_cache_bytes = 0;
  /// Hash-partition the flat layout's keys across this many pools (each
  /// with its own allocator and metadata table), so concurrent ranks stop
  /// serializing on one pool's metadata path.  1 = the classic single-pool
  /// layout.  The shard count is part of the persistent layout: reopen a
  /// region with the same value it was created with.
  std::size_t shards = 1;
  /// Allocator hot-path knobs (DESIGN.md §14), forwarded to every shard
  /// pool.  -1 defers to PMEMCPY_MAGAZINE_SIZE / PMEMCPY_ALLOC_STRIPES and
  /// then to the engine defaults (8 / 8); 0 disables magazines, 1 collapses
  /// the metadata stripes back to one fully serialized lane.  Purely
  /// runtime state, not part of the persistent layout: both knobs can
  /// differ across opens of the same region.
  int magazine_size = -1;
  int alloc_stripes = -1;
};

struct KeyError : std::runtime_error {
  explicit KeyError(const std::string& id)
      : std::runtime_error("pmemcpy: no such id: " + id) {}
};
struct TypeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct StateError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// A stored entry failed its checksum or sits on failing media: the data is
/// torn, rotted, or unreadable.  Typed so callers can degrade gracefully
/// (skip/re-fetch the key) instead of consuming garbage.
struct IntegrityError : std::runtime_error {
  explicit IntegrityError(const std::string& detail)
      : std::runtime_error("pmemcpy: integrity failure: " + detail) {}
};

/// Result of PMEM::scrub(): every stored key whose payload failed its
/// checksum or could not be read back.  Keys are deduplicated across
/// sharded pools; each item carries its physical provenance.
struct ScrubReport {
  struct Item {
    std::string key;
    std::string issue;
    int shard = 0;              ///< shard that held the entry
    std::uint64_t dev_off = 0;  ///< device-absolute blob offset; 0 = unknown
  };
  std::size_t entries = 0;  ///< distinct keys examined
  std::vector<Item> corrupt;
  [[nodiscard]] bool ok() const noexcept { return corrupt.empty(); }
};

/// Result of PMEM::repair(): scrub upgraded from report-only to
/// report-and-heal — entries sitting on failing-but-readable media are
/// quarantined and transactionally rewritten elsewhere; unrecoverable
/// entries are reported (and their keys load as typed DegradedError from
/// then on, never as garbage).
struct RepairReport {
  std::size_t entries = 0;    ///< distinct keys examined
  std::size_t relocated = 0;  ///< entries rewritten off failing media
  std::vector<ScrubReport::Item> damaged;  ///< unrecoverable entries
  [[nodiscard]] bool ok() const noexcept { return damaged.empty(); }
};

namespace detail {

enum class EntryKind : std::uint8_t { kScalar = 0, kPiece = 1, kDims = 2 };

[[nodiscard]] std::uint64_t pack_meta(
    EntryKind kind, serial::DType dtype, serial::SerializerId ser,
    serial::FilterId filter = serial::FilterId::kNone);
void unpack_meta(std::uint64_t meta, EntryKind* kind, serial::DType* dtype,
                 serial::SerializerId* ser,
                 serial::FilterId* filter = nullptr);

/// Blob checksum stored in the high half of the meta word (see EntryInfo).
[[nodiscard]] inline std::uint32_t meta_crc(std::uint64_t meta) {
  return static_cast<std::uint32_t>(meta >> 32);
}

[[nodiscard]] std::string dims_key(const std::string& id);
[[nodiscard]] std::string piece_prefix(const std::string& id);
[[nodiscard]] std::string piece_key(const std::string& id, const Box& box);
[[nodiscard]] std::string attr_prefix(const std::string& id);
[[nodiscard]] std::string attr_key(const std::string& id,
                                   const std::string& name);

/// Blob header bytes preceding the payload for each serializer.
[[nodiscard]] std::size_t blob_header_size(serial::SerializerId ser,
                                           std::uint32_t ndims);
void write_blob_header(serial::Sink& sink, serial::SerializerId ser,
                       serial::DType dtype, std::uint64_t payload_bytes,
                       const Dimensions& global, const Box& box);

}  // namespace detail

class PMEM {
 public:
  PMEM() = default;
  explicit PMEM(Config cfg) : cfg_(cfg) {}

  /// Open (creating if needed) the named region on the node-local PMEM.
  void mmap(const std::string& filename) { do_mmap(filename, nullptr); }
  /// Collective open: every rank of @p comm calls this.
  void mmap(const std::string& filename, par::Comm& comm) {
    do_mmap(filename, &comm);
  }
  /// Collective close.  Discards any still-open Batch.
  void munmap();

  [[nodiscard]] bool mapped() const noexcept { return engine_ != nullptr; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // --- group commit ---------------------------------------------------------

  /// A group-commit scope (DESIGN.md §8).  Stores issued while a Batch is
  /// open are staged and published together by commit(): the flat layout
  /// pays one coalesced flush pass and two fences per touched shard instead
  /// of per entry.  Staged entries are invisible to loads — including this
  /// process's own, so loading an id stored earlier in the same open batch
  /// throws KeyError.  Destroying the Batch without commit() discards every
  /// staged entry; a crash during commit() may publish a prefix of the
  /// batch, but each published entry is individually complete.
  class Batch {
   public:
    Batch(Batch&& o) noexcept : owner_(o.owner_) { o.owner_ = nullptr; }
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;
    Batch& operator=(Batch&&) = delete;
    ~Batch() {
      if (owner_ != nullptr) owner_->open_batch_.reset();
    }

    /// Publish everything staged and close the scope.
    void commit() {
      if (owner_ == nullptr) return;
      trace::Span span("core.batch_commit");
      if (owner_->open_batch_) owner_->open_batch_->commit();
      owner_->open_batch_.reset();
      owner_ = nullptr;
    }
    /// Entries staged and awaiting commit.
    [[nodiscard]] std::size_t staged() const {
      return owner_ != nullptr && owner_->open_batch_
                 ? owner_->open_batch_->staged()
                 : 0;
    }

   private:
    friend class PMEM;
    explicit Batch(PMEM* owner) : owner_(owner) {}
    PMEM* owner_;
  };

  /// Open a group-commit scope.  At most one may be open per PMEM handle
  /// (nested calls throw StateError); the scope must not outlive munmap().
  [[nodiscard]] Batch batch() {
    if (open_batch_) throw StateError("pmemcpy: batch already open");
    open_batch_ = engine_ref().begin_batch();
    return Batch(this);
  }

  // --- scalars and structs -----------------------------------------------

  /// Store a value under @p id.  T is an arithmetic type, std::string,
  /// std::vector of those, or a struct with a `serialize(Ar&)` member.
  template <typename T>
  void store(const std::string& id, const T& data) {
    trace::Span span("core.put");
    // Reserve-then-serialize (DESIGN.md §12): a SizingSink pass measures
    // the archive, the engine reserves an exactly-sized PMEM span, and the
    // second serializer pass lands the bytes straight in it — the payload
    // never visits a DRAM staging buffer.
    const std::size_t payload = serial::binary_serialized_size(data);
    const auto ser = cfg_.serializer;
    const std::size_t hdr = detail::blob_header_size(ser, 0);
    const auto dtype = serial::dtype_of_v<T>;
    with_healing(id, [&] {
      auto put = start_put(
          id, hdr + payload,
          detail::pack_meta(detail::EntryKind::kScalar, dtype, ser));
      const auto emit = [&](serial::Sink& sink) {
        trace::Span serialize_span("core.serialize");
        detail::write_blob_header(sink, ser, dtype, payload, {}, {});
        serial::BinaryWriter w(sink);
        w(data);
      };
      std::uint32_t crc = 0;
      if (cfg_.force_dram_staging) {
        serial::BufferSink staged(hdr + payload);
        emit(staged);
        crc = crc32c(staged.bytes().data(), staged.bytes().size());
        put->sink().write(staged.bytes().data(), staged.bytes().size());
      } else {
        serial::ChecksumSink cs(put->sink());
        emit(cs);
        crc = cs.crc();
      }
      put->commit(crc);
    });
  }

  template <typename T>
  void load(const std::string& id, T& data) {
    trace::Span span("core.get");
    throw_if_damaged(id);
    if (cfg_.force_dram_staging) {
      // Ablation: bounce the blob through DRAM before decoding, the way an
      // ADIOS-style reader materializes its buffer (bypasses the cache so
      // the staging pass is what gets measured).
      auto entry = engine_ref().find(id);
      if (!entry) throw KeyError(id);
      const auto info = entry->info();
      const std::size_t hdr = check_scalar_meta<T>(id, info.meta);
      std::vector<std::byte> staged(info.size);
      entry->read(0, staged.data(), staged.size());
      verify_blob(id, staged.data(), staged.size(), info.meta);
      serial::BufferSource src(
          {staged.data() + hdr, staged.size() - hdr});
      serial::BinaryReader r(src);
      r(data);
      return;
    }
    // Zero-copy read path (DESIGN.md §13): the blob is CRC-verified and
    // deserialized in place — from the read cache when it holds the key,
    // else straight out of the engine's stored span.
    auto fetched = fetch_blob(id);
    if (!fetched) throw KeyError(id);
    const std::size_t hdr = check_scalar_meta<T>(id, fetched->meta);
    const auto payload = fetched->blob.subspan(hdr);
    serial::SpanSource pmem_src(payload);
    serial::CacheSource dram_src(payload);
    serial::BinaryReader r(fetched->from_cache
                               ? static_cast<serial::Source&>(dram_src)
                               : pmem_src);
    r(data);
  }

  template <typename T>
  [[nodiscard]] T load(const std::string& id) {
    T v{};
    load(id, v);
    return v;
  }

  // --- arrays ------------------------------------------------------------------

  /// Declare the global dimensions of array @p id (paper Fig. 2 alloc).
  template <typename T>
  void alloc(const std::string& id, int ndims, const std::size_t* dims) {
    put_dims(id, serial::dtype_of_v<T>,
             Dimensions(dims, dims + static_cast<std::size_t>(ndims)));
  }
  template <typename T>
  void alloc(const std::string& id, const Dimensions& dims) {
    put_dims(id, serial::dtype_of_v<T>, dims);
  }

  /// Store this process's subarray: @p dimspp counts at @p offsets within
  /// the global array.  No coordination with other processes.
  template <typename T>
  void store(const std::string& id, const T* data, int ndims,
             const std::size_t* offsets, const std::size_t* dimspp) {
    trace::Span span("core.put");
    const auto nd = static_cast<std::size_t>(ndims);
    Box box(Dimensions(offsets, offsets + nd),
            Dimensions(dimspp, dimspp + nd));
    const std::size_t payload = box.elements() * sizeof(T);
    const auto ser = cfg_.serializer;
    const auto dtype = serial::dtype_of_v<T>;
    with_healing(id, [&] {
      // Group commit: the piece and the implicit "#dims" entry (when this is
      // the array's first store) publish under one batch — one coalesced
      // flush pass + fence pair instead of one per entry.  A user-opened
      // Batch subsumes the internal one.
      AutoBatch group(*this);

      Dimensions global;
      serial::DType declared;
      if (get_dims(id, &declared, &global)) {
        if (declared != dtype) {
          throw TypeError("pmemcpy: dtype mismatch storing " + id);
        }
      } else {
        // "pMEMCPY automatically stores the dimensions of the array" — when
        // alloc() was skipped, derive an extent from this piece.
        global.resize(nd);
        for (std::size_t d = 0; d < nd; ++d) {
          global[d] = box.offset[d] + box.count[d];
        }
        put_dims(id, dtype, global);
      }

      const std::size_t hdr =
          detail::blob_header_size(ser, static_cast<std::uint32_t>(nd));

      if (cfg_.filter != serial::FilterId::kNone) {
        // Filtered path: encode in DRAM (the size must be known to reserve
        // the blob), then blob = header | u64 encoded size | encoded bytes.
        const auto enc = serial::filter_encode(
            cfg_.filter,
            {reinterpret_cast<const std::byte*>(data), payload});
        // The encode pass materializes the compressed payload in DRAM; the
        // copy audit must see it as a staging pass (DESIGN.md §12).
        trace::count(trace::Counter::kCopyStagedPuts);
        trace::count(trace::Counter::kCopyStagedBytes, enc.size());
        auto put = start_put(
            detail::piece_key(id, box), hdr + 8 + enc.size(),
            detail::pack_meta(detail::EntryKind::kPiece, dtype, ser,
                              cfg_.filter));
        serial::ChecksumSink cs(put->sink());
        {
          trace::Span serialize_span("core.serialize");
          detail::write_blob_header(cs, ser, dtype, payload, global, box);
          const std::uint64_t enc_size = enc.size();
          cs.write(&enc_size, sizeof(enc_size));
          cs.write(enc.data(), enc.size());
        }
        put->commit(cs.crc());
        group.commit();
        invalidate_piece_cache(id);
        return;
      }

      auto put = start_put(
          detail::piece_key(id, box), hdr + payload,
          detail::pack_meta(detail::EntryKind::kPiece, dtype, ser));
      const auto emit = [&](serial::Sink& sink) {
        trace::Span serialize_span("core.serialize");
        detail::write_blob_header(sink, ser, dtype, payload, global, box);
        sink.write(data, payload);
      };
      std::uint32_t crc = 0;
      if (cfg_.force_dram_staging) {
        serial::BufferSink staged(hdr + payload);
        emit(staged);
        crc = crc32c(staged.bytes().data(), staged.bytes().size());
        put->sink().write(staged.bytes().data(), staged.bytes().size());
      } else {
        serial::ChecksumSink cs(put->sink());
        emit(cs);
        crc = cs.crc();
      }
      put->commit(crc);
      group.commit();
      invalidate_piece_cache(id);
    });
  }

  /// Load a subarray.  The fast path hits the piece written with identical
  /// offsets/counts (the symmetric-read pattern); otherwise all overlapping
  /// pieces are intersected.
  template <typename T>
  void load(const std::string& id, T* data, int ndims,
            const std::size_t* offsets, const std::size_t* dimspp) {
    trace::Span span("core.get");
    const auto nd = static_cast<std::size_t>(ndims);
    Box want(Dimensions(offsets, offsets + nd),
             Dimensions(dimspp, dimspp + nd));
    auto& st = engine_ref();

    const std::string pkey = detail::piece_key(id, want);
    throw_if_damaged(pkey);
    if (!cfg_.force_dram_staging && read_cache_) {
      // Cached fast path: the verified whole blob comes from DRAM on a hit
      // (or is fetched zero-copy and filled on a miss); the payload slice
      // is copied straight into the caller's buffer.
      if (auto fetched = fetch_blob(pkey)) {
        serial::FilterId filter;
        const std::size_t hdr =
            check_piece_meta<T>(id, fetched->meta, nd, &filter);
        const std::size_t payload = want.elements() * sizeof(T);
        if (filter != serial::FilterId::kNone) {
          decode_filtered_piece(id, fetched->blob, hdr, filter,
                                {reinterpret_cast<std::byte*>(data), payload});
          return;
        }
        if (fetched->blob.size() != hdr + payload) {
          throw TypeError("pmemcpy: size mismatch loading " + id);
        }
        std::memcpy(data, fetched->blob.data() + hdr, payload);
        if (fetched->from_cache) {
          sim::ctx().charge_cpu_copy(payload);
        } else {
          trace::count(trace::Counter::kCopyReadDirectBytes, payload);
        }
        return;
      }
    } else if (auto entry = st.find(pkey)) {
      const auto info = entry->info();
      serial::FilterId filter;
      const std::size_t hdr = check_piece_meta<T>(id, info.meta, nd, &filter);
      const std::size_t payload = want.elements() * sizeof(T);
      if (filter != serial::FilterId::kNone) {
        // Decode straight from the PMEM-resident encoded bytes.
        const auto blob = entry->stored_span();
        verify_blob(id, blob.data(), blob.size(), info.meta);
        decode_filtered_piece(id, blob, hdr, filter,
                              {reinterpret_cast<std::byte*>(data), payload});
        return;
      }
      if (info.size != hdr + payload) {
        throw TypeError("pmemcpy: size mismatch loading " + id);
      }
      if (cfg_.force_dram_staging) {
        std::vector<std::byte> staged(payload);
        entry->read(hdr, staged.data(), payload);
        verify_piece(id, *entry, hdr, staged.data(), payload, info.meta);
        std::memcpy(data, staged.data(), payload);
        sim::ctx().charge_cpu_copy(payload);
        trace::count(trace::Counter::kCopyReadStagedBytes, payload);
      } else {
        // One pass: PMEM -> user buffer.
        entry->read(hdr, data, payload);
        verify_piece(id, *entry, hdr, data, payload, info.meta);
        trace::count(trace::Counter::kCopyReadDirectBytes, payload);
      }
      return;
    }

    // General path: assemble from every overlapping piece.
    std::size_t covered = 0;
    const std::string prefix = detail::piece_prefix(id);
    const std::vector<std::string>& keys = piece_keys(id);
    for (const auto& key : keys) {
      const Box pbox = box_from_string(key.substr(prefix.size()));
      if (pbox.ndims() != nd) continue;
      const Box region = intersect(want, pbox);
      if (region.empty()) continue;
      throw_if_damaged(key);
      // Charge only the consumed slice on the uncached path — assembling a
      // sub-region must not bill a whole-piece read.
      auto fetched = fetch_blob(key, region.elements() * sizeof(T));
      if (!fetched) continue;
      serial::FilterId filter;
      const std::size_t hdr = check_piece_meta<T>(id, fetched->meta, nd,
                                                  &filter);
      if (filter != serial::FilterId::kNone) {
        // Decode the whole piece to scratch, then intersect.
        std::vector<std::byte> raw(pbox.elements() * sizeof(T));
        decode_filtered_piece(key, fetched->blob, hdr, filter, raw);
        copy_box_region(reinterpret_cast<std::byte*>(data), want, raw.data(),
                        pbox, region, sizeof(T));
      } else {
        copy_box_region(reinterpret_cast<std::byte*>(data), want,
                        fetched->blob.data() + hdr, pbox, region, sizeof(T));
        const std::size_t consumed = region.elements() * sizeof(T);
        if (fetched->from_cache) {
          sim::ctx().charge_cpu_copy(consumed);
        } else {
          trace::count(trace::Counter::kCopyReadDirectBytes, consumed);
        }
      }
      covered += region.elements();
    }
    if (covered < want.elements()) {
      throw KeyError(id + " (requested region not fully covered)");
    }
  }

  /// Query the dimensions stored under id + "#dims" (paper Fig. 2).
  void load_dims(const std::string& id, int* ndims, std::size_t* dims);
  [[nodiscard]] Dimensions load_dims(const std::string& id);

  // --- namespace ------------------------------------------------------------

  [[nodiscard]] bool exists(const std::string& id);
  /// Remove a scalar, or an array with all of its pieces, dims and
  /// attributes.
  void remove(const std::string& id);

  /// Walk every stored entry, read its full blob back (so injected media
  /// errors surface) and re-verify its checksum.  Returns all corruption
  /// found; never throws for corrupt data.
  [[nodiscard]] ScrubReport scrub();

  // --- self-healing (DESIGN.md §10) -----------------------------------------

  /// Online repair: scrub every entry, quarantine failing-but-readable
  /// media, and transactionally relocate the entries sitting on it.  An
  /// entry that cannot be read back intact is recorded in the report and its
  /// key is marked damaged (loads throw ft::DegradedError rather than
  /// returning garbage).  Crash-safe: relocation republished under the same
  /// key, so a crash mid-repair leaves either the old or the new binding.
  [[nodiscard]] RepairReport repair();

  /// Local health.  kDegraded means a put exhausted healing (retries +
  /// quarantine): the handle turns read-only — healthy keys still load,
  /// stores throw ft::DegradedError.
  [[nodiscard]] ft::Health health() const noexcept { return health_; }

  /// Collective health agreement over @p comm: every rank adopts the worst
  /// health across the communicator, so degradation is observed coherently.
  ft::Health check_health(par::Comm& comm) {
    const ft::Health agreed = par::agree_health(comm, health_);
    if (agreed == ft::Health::kDegraded) {
      enter_degraded(ft::Status(ft::ErrorCode::kDegraded,
                                "peer rank reported degraded media"));
    }
    return agreed;
  }

  /// Why the handle degraded (ok() while healthy).
  [[nodiscard]] const ft::Status& health_status() const noexcept {
    return health_status_;
  }

  /// Keys repair() declared unrecoverable (sorted).
  [[nodiscard]] std::vector<std::string> damaged_keys() const {
    return {damaged_.begin(), damaged_.end()};
  }

  // --- attributes -----------------------------------------------------------

  /// Attach a named attribute to a variable (ADIOS-style metadata: units,
  /// provenance, ...).  Any store()-able T works.
  template <typename T>
  void store_attribute(const std::string& id, const std::string& name,
                       const T& value) {
    store(detail::attr_key(id, name), value);
  }
  template <typename T>
  [[nodiscard]] T load_attribute(const std::string& id,
                                 const std::string& name) {
    return load<T>(detail::attr_key(id, name));
  }
  /// Names of the attributes attached to @p id.
  [[nodiscard]] std::vector<std::string> attributes(const std::string& id);
  /// List the stored variable ids (scalars and arrays, without the
  /// "#dims"/"#p:" bookkeeping suffixes).
  [[nodiscard]] std::vector<std::string> ids();

  // --- raw entry access (stage-out / stage-in, e.g. burst-buffer drains) ----

  /// Visit every raw entry: key, zero-copy charged view of the blob, and
  /// its meta word.  The span is only valid inside @p fn.
  void for_each_raw(
      const std::function<void(const std::string&, std::span<const std::byte>,
                               std::uint64_t)>& fn);
  /// Re-create a raw entry exported by for_each_raw.
  void import_raw(const std::string& key, std::span<const std::byte> data,
                  std::uint64_t meta);

 private:
  void do_mmap(const std::string& filename, par::Comm* comm);
  [[nodiscard]] engine::Engine& engine_ref() {
    if (!engine_) throw StateError("pmemcpy: not mapped (call mmap first)");
    return *engine_;
  }
  /// Route a put through the open Batch when one exists.  Every put path
  /// funnels through here, so this is also the read cache's write-side
  /// invalidation point (DESIGN.md §13): the stale copy is dropped before
  /// the reservation even opens, and — because fills are suppressed while a
  /// Batch is open — cannot be re-filled until the new entry is visible.
  [[nodiscard]] std::unique_ptr<engine::Engine::PutHandle> start_put(
      const std::string& key, std::size_t size, std::uint64_t meta,
      bool keep_existing = false) {
    if (read_cache_) read_cache_->invalidate(key);
    if (open_batch_) return open_batch_->put(key, size, meta, keep_existing);
    return engine_ref().put(key, size, meta, keep_existing);
  }
  /// Opens an internal group-commit scope when the user has none, so
  /// multi-entry operations batch automatically; discards on exception.
  struct AutoBatch {
    explicit AutoBatch(PMEM& pm) {
      if (!pm.open_batch_) {
        pm.open_batch_ = pm.engine_ref().begin_batch();
        p = &pm;
      }
    }
    ~AutoBatch() {
      if (p != nullptr) p->open_batch_.reset();
    }
    void commit() {
      if (p != nullptr) p->open_batch_->commit();
    }
    AutoBatch(const AutoBatch&) = delete;
    AutoBatch& operator=(const AutoBatch&) = delete;
    PMEM* p = nullptr;
  };
  /// Compare a full blob against the checksum in its meta word.
  void verify_blob(const std::string& key, const std::byte* blob,
                   std::size_t size, std::uint64_t meta) const {
    if (!cfg_.verify_checksums) return;
    if (crc32c(blob, size) != detail::meta_crc(meta)) {
      throw IntegrityError("checksum mismatch in " + key);
    }
  }
  // --- zero-copy read path (DESIGN.md §13) ----------------------------------

  /// One fetched blob: a zero-copy span over PMEM (entry keeps the mapping
  /// alive) or a DRAM span served by the read cache.
  struct FetchedBlob {
    std::span<const std::byte> blob;
    std::uint64_t meta = 0;
    bool from_cache = false;
    std::unique_ptr<engine::Engine::Entry> entry;  ///< null when cached
  };

  /// find() + stored_span() + CRC verification, with the read cache (when
  /// configured) in front: a hit serves the verified DRAM copy, a miss
  /// reads the blob in place, verifies it and fills the cache (fills are
  /// skipped while a Batch is open — a staged same-key entry publishes at
  /// commit, after this key's start_put() invalidation, so a fill in
  /// between could pin the pre-batch value past the publish).  nullopt when
  /// the key is absent.  @p charge_bytes bounds the device read charged on
  /// the uncached path (callers that consume a slice; a cache fill always
  /// charges the full blob it copies).
  [[nodiscard]] std::optional<FetchedBlob> fetch_blob(
      const std::string& key,
      std::size_t charge_bytes = static_cast<std::size_t>(-1));

  /// Meta-word checks shared by the scalar load paths; returns the blob
  /// header size for the entry's serializer.
  template <typename T>
  std::size_t check_scalar_meta(const std::string& id,
                                std::uint64_t meta) const {
    detail::EntryKind kind;
    serial::DType dtype;
    serial::SerializerId ser;
    detail::unpack_meta(meta, &kind, &dtype, &ser);
    if (kind != detail::EntryKind::kScalar) {
      throw TypeError("pmemcpy: " + id + " is not a scalar entry");
    }
    if (dtype != serial::dtype_of_v<T>) {
      throw TypeError("pmemcpy: dtype mismatch loading " + id);
    }
    return detail::blob_header_size(ser, 0);
  }

  /// Meta-word checks shared by the piece load paths; returns the blob
  /// header size and reports the piece's filter.
  template <typename T>
  std::size_t check_piece_meta(const std::string& id, std::uint64_t meta,
                               std::size_t nd,
                               serial::FilterId* filter) const {
    detail::EntryKind kind;
    serial::DType dtype;
    serial::SerializerId ser;
    detail::unpack_meta(meta, &kind, &dtype, &ser, filter);
    if (dtype != serial::dtype_of_v<T>) {
      throw TypeError("pmemcpy: dtype mismatch loading " + id);
    }
    return detail::blob_header_size(ser, static_cast<std::uint32_t>(nd));
  }

  /// Decode a filtered piece blob (header | u64 encoded size | encoded
  /// bytes) into @p out, validating the length framing.
  void decode_filtered_piece(const std::string& id,
                             std::span<const std::byte> blob, std::size_t hdr,
                             serial::FilterId filter,
                             std::span<std::byte> out) const {
    std::uint64_t enc_size = 0;
    if (blob.size() < hdr + sizeof(enc_size)) {
      throw TypeError("pmemcpy: corrupt filtered blob in " + id);
    }
    std::memcpy(&enc_size, blob.data() + hdr, sizeof(enc_size));
    if (hdr + sizeof(enc_size) + enc_size != blob.size()) {
      throw TypeError("pmemcpy: corrupt filtered blob in " + id);
    }
    serial::filter_decode(filter,
                          blob.subspan(hdr + sizeof(enc_size), enc_size), out);
  }

  /// Fast-path piece verification without a second payload pass: the blob
  /// header is re-read and chained with the payload already in the caller's
  /// buffer (CRC32C(header || payload) == stored checksum).
  void verify_piece(const std::string& key, engine::Engine::Entry& entry,
                    std::size_t hdr, const void* payload,
                    std::size_t payload_len, std::uint64_t meta) const {
    if (!cfg_.verify_checksums) return;
    std::uint32_t c = 0;
    if (hdr > 0) {
      std::vector<std::byte> hb(hdr);
      entry.read(0, hb.data(), hdr);
      c = crc32c(hb.data(), hdr);
    }
    c = crc32c(payload, payload_len, c);
    if (c != detail::meta_crc(meta)) {
      throw IntegrityError("checksum mismatch in " + key);
    }
  }
  // --- self-healing machinery (DESIGN.md §10) -------------------------------

  /// Attempts with_healing gives a put before declaring the handle degraded
  /// (each attempt already carries the device's own transient-retry budget).
  static constexpr int kMaxPutAttempts = 4;

  /// Run @p fn (a complete put body: reserve, serialize, publish) under the
  /// self-healing loop.  A DeviceError unwinds the attempt cleanly (handles
  /// roll back their reservations), heal_put_fault quarantines sticky media
  /// and the body re-runs, re-reserving on good space.  Healing that cannot
  /// make progress throws ft::DegradedError and turns the handle read-only.
  template <typename Fn>
  void with_healing(const std::string& id, Fn&& fn) {
    require_writable(id);
    for (int attempt = 1;; ++attempt) {
      try {
        fn();
        return;
      } catch (const pmem::DeviceError& caught) {
        // Healing itself writes pmem (the quarantine table), so it can hit
        // fresh sticky media mid-repair.  Fold such faults back in as the
        // attempt's error instead of letting them escape the healing loop:
        // each round quarantines a new range, and a full table degrades the
        // handle, so the inner loop terminates.  Read faults stay unhealable
        // and rethrow (heal_put_fault re-raises them untouched).
        pmem::DeviceError e = caught;
        for (;;) {
          try {
            heal_put_fault(id, e, attempt);
            break;
          } catch (const pmem::DeviceError& e2) {
            if (e2.kind == pmem::DeviceError::Kind::kMediaRead) throw;
            e = e2;
          }
        }
      }
    }
  }
  /// Degraded handles are read-only: refuse the mutation up front.
  void require_writable(const std::string& id) const {
    if (health_ == ft::Health::kDegraded) {
      throw ft::DegradedError(
          ft::Status(ft::ErrorCode::kDegraded,
                     "handle is degraded (read-only); writing '" + id +
                         "' refused"));
    }
  }
  /// Keys repair() declared unrecoverable load as typed errors, not garbage.
  void throw_if_damaged(const std::string& key) const {
    if (!damaged_.empty() && damaged_.count(key) != 0) {
      trace::count(trace::Counter::kFtDamagedKeys);
      throw ft::DegradedError(
          ft::Status(ft::ErrorCode::kDamagedKey,
                     "key '" + key + "' was lost to media failure"));
    }
  }
  /// Decide what a put's DeviceError means: quarantine + retry, or degrade.
  void heal_put_fault(const std::string& id, const pmem::DeviceError& e,
                      int attempt);
  void enter_degraded(const ft::Status& why);
  [[noreturn]] void fail_degraded(const std::string& id, ft::Status why);

  void put_dims(const std::string& id, serial::DType dtype,
                const Dimensions& dims);
  bool get_dims(const std::string& id, serial::DType* dtype, Dimensions* dims);
  /// Piece keys of @p id, scanned once per handle and cached (like an ADIOS
  /// reader parsing the footer index at open); stores invalidate the entry.
  const std::vector<std::string>& piece_keys(const std::string& id);
  void invalidate_piece_cache(const std::string& id) {
    piece_cache_.erase(id);
  }

  Config cfg_;
  ft::Health health_ = ft::Health::kHealthy;
  ft::Status health_status_ = ft::Status::ok();
  /// Keys repair() could not recover; guarded reads throw DegradedError.
  std::set<std::string> damaged_;
  std::map<std::string, std::vector<std::string>> piece_cache_;
  /// Bounded DRAM blob cache (DESIGN.md §13); null when disabled.
  std::unique_ptr<core::ReadCache> read_cache_;
  PmemNode* node_ = nullptr;
  par::Comm* comm_ = nullptr;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<engine::Engine::Batch> open_batch_;
};

}  // namespace pmemcpy
