// Emulated persistent-memory device.
//
// The device is a DRAM-backed byte store (the paper's evaluation also
// emulated PMEM from DRAM).  Every access path charges the simulated clock
// of the calling rank:
//
//   * read()/write()  — explicit, bounds-checked, charged transfers; used by
//     the POSIX path of the filesystem and by the object store.
//   * raw() + charge_dax_*() — the DAX path: callers get a pointer straight
//     into device memory (zero copy) and charge bandwidth/fault costs
//     explicitly, including the MAP_SYNC first-touch penalty.
//
// For crash-consistency testing the device can additionally keep a shadow of
// every cacheline written since it was last persisted; simulate_crash()
// restores those lines, emulating the loss of CPU-cache-resident stores on
// power failure.
//
// On top of that sits a Jaaru-style fault plan for systematic crash-point
// exploration: every persist()/drain() bumps a monotonic persist-op counter,
// and a plan can schedule a crash at the Nth such op.  When the crash fires
// the device reverts unpersisted cachelines (all of them, or — in torn-write
// mode — a deterministic pseudo-random subset, emulating lines that happened
// to be evicted to media before power was lost), freezes itself like a
// powered-off DIMM (subsequent stores and persists are ignored, so stack
// unwinding through destructors cannot retroactively mutate the post-crash
// image), and throws CrashError for the harness to catch.  Injected media
// read errors surface as a typed DeviceError from every checked read path.
// Orthogonally to crash simulation, a persistency-order checker
// (pmemcpy::check::PersistChecker) can be attached: it shadows every
// store/flush/fence through a per-cacheline state machine and reports
// ordering violations and redundant-flush lints.  See
// include/pmemcpy/check/persist_checker.hpp and DESIGN.md §7.
#pragma once

#include <pmemcpy/ft/ft.hpp>
#include <pmemcpy/sim/context.hpp>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pmemcpy::check {
class PersistChecker;
struct Report;
}  // namespace pmemcpy::check

namespace pmemcpy::pmem {

inline constexpr std::size_t kCacheLine = 64;

/// Typed device-level failure (media errors).  Callers can degrade
/// gracefully — report the bad range — instead of consuming garbage.
struct DeviceError : std::runtime_error {
  enum class Kind {
    kMediaRead,   ///< uncorrectable: reads of the range are lost for good
    kTransient,   ///< a transient fault persisted past the retry budget
    kMediaWrite,  ///< sticky-bad media: stores/persists keep failing, reads
                  ///< still succeed (the range is relocatable)
  };

  DeviceError(Kind k, std::size_t off_, std::size_t len_,
              const std::string& what)
      : std::runtime_error(what), kind(k), off(off_), len(len_) {}

  Kind kind;
  std::size_t off;
  std::size_t len;
};

/// Thrown when a scheduled fault-plan crash point fires.  By the time the
/// harness catches it the device has already reverted unpersisted lines and
/// frozen itself; call revive() before re-mounting.
struct CrashError : std::runtime_error {
  explicit CrashError(std::uint64_t op)
      : std::runtime_error("pmem::Device: scheduled crash at persist op " +
                           std::to_string(op)),
        persist_op(op) {}

  std::uint64_t persist_op;
};

/// Schedule of injected faults for one run.
struct FaultPlan {
  /// Crash when the persist-op counter reaches this 1-based value (the op
  /// itself never completes).  0 disables crash scheduling.
  std::uint64_t crash_at_persist = 0;
  /// Torn-write mode: on crash, revert only a deterministic pseudo-random
  /// subset of the unpersisted cachelines instead of all of them.
  bool torn_writes = false;
  /// Seed selecting the torn subset (same seed → same subset).
  std::uint64_t torn_seed = 0x9E3779B97F4A7C15ull;

  // --- transient faults (self-healing data path, DESIGN.md §10) ------------
  // Each checked access flips one seed-deterministic coin per attempt: a
  // faulted attempt throws (or is retried under the device retry policy);
  // the retry is a fresh attempt with a fresh coin, so transient faults
  // succeed on retry with probability 1 - rate.  The same knobs are armed
  // from the PMEMCPY_FAULT_RATE/_SEED/_STICKY env at construction.

  /// Per-attempt fault probability for checked reads.
  double transient_read_rate = 0.0;
  /// Per-attempt fault probability for stores (note_write boundary).
  double transient_write_rate = 0.0;
  /// Per-attempt fault probability for flush/persist ops.
  double transient_persist_rate = 0.0;
  /// Probability that a faulted store/persist escalates: the op's cacheline
  /// range becomes sticky-bad media (writes keep failing, reads survive).
  double sticky_rate = 0.0;
  /// Seed for the per-attempt fault coins (same seed → same fault schedule
  /// for a deterministic workload).
  std::uint64_t fault_seed = 0x5EEDF00DD00Full;

  [[nodiscard]] bool transient_armed() const noexcept {
    return transient_read_rate > 0.0 || transient_write_rate > 0.0 ||
           transient_persist_rate > 0.0;
  }
};

class Device {
 public:
  /// @param capacity      device size in bytes (rounded up to a page)
  /// @param crash_shadow  keep pre-images of unpersisted cachelines so that
  ///                      simulate_crash() can drop in-flight stores.  Costs
  ///                      DRAM + a hash lookup per store; enable in tests only.
  explicit Device(std::size_t capacity, bool crash_shadow = false);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool crash_shadow_enabled() const noexcept {
    return crash_shadow_;
  }

  // --- charged, bounds-checked transfer path -------------------------------

  /// Store @p len bytes at @p off; charges write latency + bandwidth.
  void write(std::size_t off, const void* src, std::size_t len);
  /// Load @p len bytes from @p off; charges read latency + bandwidth.
  /// Throws DeviceError if the range intersects an injected media error.
  void read(std::size_t off, void* dst, std::size_t len) const;
  /// Set @p len bytes at @p off to @p value; charged like a write.
  void fill(std::size_t off, std::size_t len, std::byte value);

  /// Flush the cachelines covering [off, off+len) and drain: after this the
  /// range survives simulate_crash().  Charges per-line flush + fence cost.
  /// Counts one persist op; throws CrashError when the fault plan fires.
  void persist(std::size_t off, std::size_t len);
  /// Flush only (CLWB, no fence): the cachelines covering [off, off+len)
  /// start writing back but are durable only after the next drain().  Batch
  /// several flush() calls under one drain() to pay a single fence.  Charges
  /// per-line flush cost; counts one persist op (a crash point).
  void flush(std::size_t off, std::size_t len);
  /// Fence only (SFENCE); charges drain cost.  Counts one persist op.
  void drain();

  // --- DAX path -------------------------------------------------------------

  /// Pointer into device memory.  Mutations through this pointer are
  /// invisible to crash tracking unless note_write() is called; production
  /// code uses the typed helpers in pmemobj which do so.
  [[nodiscard]] std::byte* raw(std::size_t off = 0) noexcept {
    return data_.get() + off;
  }
  [[nodiscard]] const std::byte* raw(std::size_t off = 0) const noexcept {
    return data_.get() + off;
  }

  /// Charge a zero-copy store of @p len bytes at @p off performed through a
  /// DAX mapping.  Newly touched pages cost a fault (a synchronous
  /// block-allocation fault when @p map_sync, a minor fault otherwise) and
  /// MAP_SYNC derates write bandwidth.
  void charge_dax_write(std::size_t off, std::size_t len, bool map_sync);
  /// Charge a zero-copy load of @p len bytes through a DAX mapping.  With
  /// @p map_sync the mapping's synchronous-fault semantics derate read
  /// bandwidth as well.
  void charge_dax_read(std::size_t len, bool map_sync = false) const;

  /// Record [off, off+len) as dirty for crash tracking (pre-imaging the
  /// affected cachelines in shadow mode).  Call *before* mutating via raw().
  void note_write(std::size_t off, std::size_t len);

  /// Forget page-touch state (a fresh mmap of the device file).
  void reset_page_touches();

  // --- crash simulation ------------------------------------------------------

  /// Revert cachelines written since they were last persisted (requires
  /// crash_shadow).  Emulates power loss with stores still in CPU caches.
  /// Honors the fault plan's torn-write mode: with it, only a deterministic
  /// pseudo-random subset of the unpersisted lines is reverted.
  void simulate_crash();
  /// Number of distinct unpersisted cachelines currently tracked.
  [[nodiscard]] std::size_t unpersisted_lines() const;

  // --- fault plan -------------------------------------------------------------

  /// Arm a fault plan for the current run (requires crash_shadow when a
  /// crash point is scheduled).
  void set_fault_plan(const FaultPlan& plan);
  /// Monotonic count of persist()/drain() ops since construction.
  [[nodiscard]] std::uint64_t persist_ops() const noexcept {
    return persist_ops_.load(std::memory_order_relaxed);
  }
  /// True after a scheduled crash fired: the device ignores stores and
  /// persists like powered-off hardware until revive() is called.
  [[nodiscard]] bool frozen() const noexcept {
    return frozen_.load(std::memory_order_relaxed);
  }
  /// Clear the frozen state and the fault plan ("power the device back on"
  /// before re-mounting and recovering).
  void revive();

  /// Mark [off, off+len) as failing media: checked reads of any overlapping
  /// range throw DeviceError{kMediaRead}.
  void inject_read_error(std::size_t off, std::size_t len);
  void clear_read_errors();
  /// Throw DeviceError if [off, off+len) intersects an injected bad range.
  /// DAX-path consumers (which bypass read()) call this before trusting a
  /// raw() view.
  void check_media(std::size_t off, std::size_t len) const;

  // --- transient faults, sticky media and retries -----------------------------

  /// Retry/backoff schedule for transient faults (also armed from the
  /// PMEMCPY_FAULT_RETRIES env).  Backoff is charged to the simulated clock.
  void set_retry_policy(const ft::RetryPolicy& policy) noexcept;
  [[nodiscard]] ft::RetryPolicy retry_policy() const noexcept;

  /// Mark the cachelines covering [off, off+len) as sticky-bad media:
  /// stores and persists touching them throw DeviceError{kMediaWrite};
  /// reads still succeed (the data is recoverable, so callers can
  /// quarantine + relocate).  Survives revive(), like real media damage.
  void inject_sticky_range(std::size_t off, std::size_t len);
  void clear_sticky_ranges();
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  sticky_ranges() const;
  /// True when [off, off+len) intersects a sticky-bad range (no throw).
  [[nodiscard]] bool media_failing(std::size_t off, std::size_t len) const;

  // --- persistency-order checker ---------------------------------------------

  /// Attach the PersistChecker (idempotent).  Also attached at construction
  /// when the PMEMCPY_PERSIST_CHECK env var (or the CMake default) says so.
  /// A pure observer: charges nothing and never mutates device contents.
  void enable_checker();
  [[nodiscard]] bool checker_enabled() const noexcept {
    return checker_ != nullptr;
  }
  /// The attached checker, or nullptr.  Mutation tests use take_report() on
  /// it to consume planted violations.
  [[nodiscard]] check::PersistChecker* checker() noexcept {
    return checker_.get();
  }
  /// Machine-readable snapshot of the checker state (empty Report when no
  /// checker is attached).
  [[nodiscard]] check::Report checker_report() const;

  // Annotation hooks (no-ops when the checker is absent or the device is
  // frozen).  Library code brackets its logically-atomic operations with
  // these so the checker can attribute stores to scopes and verify
  // durability at commit/publish points.
  void check_tx_begin(std::string_view name);
  void check_tx_commit();
  void check_tx_abort();
  /// Declare [off, off+len) reachable/visible to readers: every line in it
  /// must have been flushed *and* fenced by now.
  void check_publish(std::size_t off, std::size_t len);

  // --- statistics -------------------------------------------------------------

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

 private:
  void check_range(std::size_t off, std::size_t len) const;
  /// Pages of [off,len) not yet touched since the last reset; marks them.
  std::size_t claim_new_pages(std::size_t off, std::size_t len);
  /// Revert unpersisted lines per the torn-write policy; clears the shadow.
  void apply_crash_locked();
  /// Resolve flushed-but-unfenced lines at a fence: the flush-time image is
  /// now durable, so drop (or retarget) their shadow pre-images.
  void drain_flush_pending_locked();
  /// A flush/persist of [off, off+len) failed for good: the writeback never
  /// reached media, so in-flight stores to those lines are lost exactly as
  /// on a crash.  Restore their last durable images from the shadow (no-op
  /// without crash_shadow).
  void revert_unpersisted(std::size_t off, std::size_t len);
  /// A faulted op is unwinding mid-batch.  If earlier flushes in the batch
  /// left lines flushed-but-unfenced, issue one settling fence so the
  /// caller's healing retry does not store onto an open CLWB window (a
  /// store-after-flush hazard the retry could not otherwise avoid).  No-op
  /// when nothing is pending, so it never lints as an empty fence.
  void settle_unwind();
  /// Deterministically decide whether a torn crash reverts @p line.
  [[nodiscard]] bool torn_reverts(std::size_t line) const noexcept;

  // Transient-fault plumbing (all const: the fault state is mutable so the
  // checked-read path can fault too).
  enum class FaultOp { kRead, kWrite, kPersist };
  enum class Attempt { kOk, kTransient, kSticky };
  /// One seed-deterministic coin flip for an attempt of @p op; may escalate
  /// a faulted store/persist to a sticky-bad range (out param).
  Attempt fault_attempt(FaultOp op, std::size_t off, std::size_t len,
                        std::pair<std::size_t, std::size_t>* sticky) const;
  /// Throw DeviceError{kMediaWrite} when the range hits sticky-bad media.
  void check_sticky(std::size_t off, std::size_t len) const;
  /// Run the per-attempt fault coin under the retry policy, charging each
  /// backoff to the sim clock; throws kTransient when the budget runs out
  /// and kMediaWrite when an attempt escalates to a sticky range.
  void run_retries(FaultOp op, std::size_t off, std::size_t len) const;

  std::size_t capacity_;
  std::unique_ptr<std::byte[]> data_;
  bool crash_shadow_;

  // Fault-plan state.  The counter and trigger are atomics so the hot
  // persist path stays lock-free when no shadow/plan is active.
  std::atomic<std::uint64_t> persist_ops_{0};
  std::atomic<std::uint64_t> crash_at_{0};
  std::atomic<bool> frozen_{false};
  bool torn_writes_ = false;
  std::uint64_t torn_seed_ = 0;

  // Transient-fault state.  The armed flag is the disabled fast path: one
  // relaxed load per access, no rate math, no lock — the ft layer is free
  // when off.
  std::atomic<bool> transient_armed_{false};
  double t_read_rate_ = 0.0;
  double t_write_rate_ = 0.0;
  double t_persist_rate_ = 0.0;
  double sticky_rate_ = 0.0;
  std::uint64_t fault_seed_ = 0;
  mutable std::uint64_t fault_seq_ = 0;  // per-attempt coin index, under mu_
  ft::RetryPolicy retry_;
  /// Sticky-bad ranges (off, len).  Mutable: a faulted attempt on the const
  /// read path can escalate a range just like a store can.
  mutable std::vector<std::pair<std::size_t, std::size_t>> sticky_bad_;

  mutable std::mutex mu_;  // protects shadow_, touched_, counters, bad media
  std::unordered_map<std::size_t, std::array<std::byte, kCacheLine>> shadow_;
  /// Lines flushed (CLWB issued) but not yet fenced, with the line image
  /// captured at flush time: on drain() that image is what became durable,
  /// so a line re-stored between flush and fence reverts to it on crash.
  std::unordered_map<std::size_t, std::array<std::byte, kCacheLine>>
      flush_pending_;
  std::unique_ptr<check::PersistChecker> checker_;
  std::vector<std::pair<std::size_t, std::size_t>> bad_media_;  // off, len
  std::vector<bool> touched_;  // one bit per 4 KiB page
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
};

}  // namespace pmemcpy::pmem
