// Emulated persistent-memory device.
//
// The device is a DRAM-backed byte store (the paper's evaluation also
// emulated PMEM from DRAM).  Every access path charges the simulated clock
// of the calling rank:
//
//   * read()/write()  — explicit, bounds-checked, charged transfers; used by
//     the POSIX path of the filesystem and by the object store.
//   * raw() + charge_dax_*() — the DAX path: callers get a pointer straight
//     into device memory (zero copy) and charge bandwidth/fault costs
//     explicitly, including the MAP_SYNC first-touch penalty.
//
// For crash-consistency testing the device can additionally keep a shadow of
// every cacheline written since it was last persisted; simulate_crash()
// restores those lines, emulating the loss of CPU-cache-resident stores on
// power failure.
//
// On top of that sits a Jaaru-style fault plan for systematic crash-point
// exploration: every persist()/drain() bumps a monotonic persist-op counter,
// and a plan can schedule a crash at the Nth such op.  When the crash fires
// the device reverts unpersisted cachelines (all of them, or — in torn-write
// mode — a deterministic pseudo-random subset, emulating lines that happened
// to be evicted to media before power was lost), freezes itself like a
// powered-off DIMM (subsequent stores and persists are ignored, so stack
// unwinding through destructors cannot retroactively mutate the post-crash
// image), and throws CrashError for the harness to catch.  Injected media
// read errors surface as a typed DeviceError from every checked read path.
// Orthogonally to crash simulation, a persistency-order checker
// (pmemcpy::check::PersistChecker) can be attached: it shadows every
// store/flush/fence through a per-cacheline state machine and reports
// ordering violations and redundant-flush lints.  See
// include/pmemcpy/check/persist_checker.hpp and DESIGN.md §7.
#pragma once

#include <pmemcpy/sim/context.hpp>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pmemcpy::check {
class PersistChecker;
struct Report;
}  // namespace pmemcpy::check

namespace pmemcpy::pmem {

inline constexpr std::size_t kCacheLine = 64;

/// Typed device-level failure (media errors).  Callers can degrade
/// gracefully — report the bad range — instead of consuming garbage.
struct DeviceError : std::runtime_error {
  enum class Kind { kMediaRead };

  DeviceError(Kind k, std::size_t off_, std::size_t len_,
              const std::string& what)
      : std::runtime_error(what), kind(k), off(off_), len(len_) {}

  Kind kind;
  std::size_t off;
  std::size_t len;
};

/// Thrown when a scheduled fault-plan crash point fires.  By the time the
/// harness catches it the device has already reverted unpersisted lines and
/// frozen itself; call revive() before re-mounting.
struct CrashError : std::runtime_error {
  explicit CrashError(std::uint64_t op)
      : std::runtime_error("pmem::Device: scheduled crash at persist op " +
                           std::to_string(op)),
        persist_op(op) {}

  std::uint64_t persist_op;
};

/// Schedule of injected faults for one run.
struct FaultPlan {
  /// Crash when the persist-op counter reaches this 1-based value (the op
  /// itself never completes).  0 disables crash scheduling.
  std::uint64_t crash_at_persist = 0;
  /// Torn-write mode: on crash, revert only a deterministic pseudo-random
  /// subset of the unpersisted cachelines instead of all of them.
  bool torn_writes = false;
  /// Seed selecting the torn subset (same seed → same subset).
  std::uint64_t torn_seed = 0x9E3779B97F4A7C15ull;
};

class Device {
 public:
  /// @param capacity      device size in bytes (rounded up to a page)
  /// @param crash_shadow  keep pre-images of unpersisted cachelines so that
  ///                      simulate_crash() can drop in-flight stores.  Costs
  ///                      DRAM + a hash lookup per store; enable in tests only.
  explicit Device(std::size_t capacity, bool crash_shadow = false);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool crash_shadow_enabled() const noexcept {
    return crash_shadow_;
  }

  // --- charged, bounds-checked transfer path -------------------------------

  /// Store @p len bytes at @p off; charges write latency + bandwidth.
  void write(std::size_t off, const void* src, std::size_t len);
  /// Load @p len bytes from @p off; charges read latency + bandwidth.
  /// Throws DeviceError if the range intersects an injected media error.
  void read(std::size_t off, void* dst, std::size_t len) const;
  /// Set @p len bytes at @p off to @p value; charged like a write.
  void fill(std::size_t off, std::size_t len, std::byte value);

  /// Flush the cachelines covering [off, off+len) and drain: after this the
  /// range survives simulate_crash().  Charges per-line flush + fence cost.
  /// Counts one persist op; throws CrashError when the fault plan fires.
  void persist(std::size_t off, std::size_t len);
  /// Flush only (CLWB, no fence): the cachelines covering [off, off+len)
  /// start writing back but are durable only after the next drain().  Batch
  /// several flush() calls under one drain() to pay a single fence.  Charges
  /// per-line flush cost; counts one persist op (a crash point).
  void flush(std::size_t off, std::size_t len);
  /// Fence only (SFENCE); charges drain cost.  Counts one persist op.
  void drain();

  // --- DAX path -------------------------------------------------------------

  /// Pointer into device memory.  Mutations through this pointer are
  /// invisible to crash tracking unless note_write() is called; production
  /// code uses the typed helpers in pmemobj which do so.
  [[nodiscard]] std::byte* raw(std::size_t off = 0) noexcept {
    return data_.get() + off;
  }
  [[nodiscard]] const std::byte* raw(std::size_t off = 0) const noexcept {
    return data_.get() + off;
  }

  /// Charge a zero-copy store of @p len bytes at @p off performed through a
  /// DAX mapping.  Newly touched pages cost a fault (a synchronous
  /// block-allocation fault when @p map_sync, a minor fault otherwise) and
  /// MAP_SYNC derates write bandwidth.
  void charge_dax_write(std::size_t off, std::size_t len, bool map_sync);
  /// Charge a zero-copy load of @p len bytes through a DAX mapping.  With
  /// @p map_sync the mapping's synchronous-fault semantics derate read
  /// bandwidth as well.
  void charge_dax_read(std::size_t len, bool map_sync = false) const;

  /// Record [off, off+len) as dirty for crash tracking (pre-imaging the
  /// affected cachelines in shadow mode).  Call *before* mutating via raw().
  void note_write(std::size_t off, std::size_t len);

  /// Forget page-touch state (a fresh mmap of the device file).
  void reset_page_touches();

  // --- crash simulation ------------------------------------------------------

  /// Revert cachelines written since they were last persisted (requires
  /// crash_shadow).  Emulates power loss with stores still in CPU caches.
  /// Honors the fault plan's torn-write mode: with it, only a deterministic
  /// pseudo-random subset of the unpersisted lines is reverted.
  void simulate_crash();
  /// Number of distinct unpersisted cachelines currently tracked.
  [[nodiscard]] std::size_t unpersisted_lines() const;

  // --- fault plan -------------------------------------------------------------

  /// Arm a fault plan for the current run (requires crash_shadow when a
  /// crash point is scheduled).
  void set_fault_plan(const FaultPlan& plan);
  /// Monotonic count of persist()/drain() ops since construction.
  [[nodiscard]] std::uint64_t persist_ops() const noexcept {
    return persist_ops_.load(std::memory_order_relaxed);
  }
  /// True after a scheduled crash fired: the device ignores stores and
  /// persists like powered-off hardware until revive() is called.
  [[nodiscard]] bool frozen() const noexcept {
    return frozen_.load(std::memory_order_relaxed);
  }
  /// Clear the frozen state and the fault plan ("power the device back on"
  /// before re-mounting and recovering).
  void revive();

  /// Mark [off, off+len) as failing media: checked reads of any overlapping
  /// range throw DeviceError{kMediaRead}.
  void inject_read_error(std::size_t off, std::size_t len);
  void clear_read_errors();
  /// Throw DeviceError if [off, off+len) intersects an injected bad range.
  /// DAX-path consumers (which bypass read()) call this before trusting a
  /// raw() view.
  void check_media(std::size_t off, std::size_t len) const;

  // --- persistency-order checker ---------------------------------------------

  /// Attach the PersistChecker (idempotent).  Also attached at construction
  /// when the PMEMCPY_PERSIST_CHECK env var (or the CMake default) says so.
  /// A pure observer: charges nothing and never mutates device contents.
  void enable_checker();
  [[nodiscard]] bool checker_enabled() const noexcept {
    return checker_ != nullptr;
  }
  /// The attached checker, or nullptr.  Mutation tests use take_report() on
  /// it to consume planted violations.
  [[nodiscard]] check::PersistChecker* checker() noexcept {
    return checker_.get();
  }
  /// Machine-readable snapshot of the checker state (empty Report when no
  /// checker is attached).
  [[nodiscard]] check::Report checker_report() const;

  // Annotation hooks (no-ops when the checker is absent or the device is
  // frozen).  Library code brackets its logically-atomic operations with
  // these so the checker can attribute stores to scopes and verify
  // durability at commit/publish points.
  void check_tx_begin(std::string_view name);
  void check_tx_commit();
  void check_tx_abort();
  /// Declare [off, off+len) reachable/visible to readers: every line in it
  /// must have been flushed *and* fenced by now.
  void check_publish(std::size_t off, std::size_t len);

  // --- statistics -------------------------------------------------------------

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

 private:
  void check_range(std::size_t off, std::size_t len) const;
  /// Pages of [off,len) not yet touched since the last reset; marks them.
  std::size_t claim_new_pages(std::size_t off, std::size_t len);
  /// Revert unpersisted lines per the torn-write policy; clears the shadow.
  void apply_crash_locked();
  /// Resolve flushed-but-unfenced lines at a fence: the flush-time image is
  /// now durable, so drop (or retarget) their shadow pre-images.
  void drain_flush_pending_locked();
  /// Deterministically decide whether a torn crash reverts @p line.
  [[nodiscard]] bool torn_reverts(std::size_t line) const noexcept;

  std::size_t capacity_;
  std::unique_ptr<std::byte[]> data_;
  bool crash_shadow_;

  // Fault-plan state.  The counter and trigger are atomics so the hot
  // persist path stays lock-free when no shadow/plan is active.
  std::atomic<std::uint64_t> persist_ops_{0};
  std::atomic<std::uint64_t> crash_at_{0};
  std::atomic<bool> frozen_{false};
  bool torn_writes_ = false;
  std::uint64_t torn_seed_ = 0;

  mutable std::mutex mu_;  // protects shadow_, touched_, counters, bad media
  std::unordered_map<std::size_t, std::array<std::byte, kCacheLine>> shadow_;
  /// Lines flushed (CLWB issued) but not yet fenced, with the line image
  /// captured at flush time: on drain() that image is what became durable,
  /// so a line re-stored between flush and fence reverts to it on crash.
  std::unordered_map<std::size_t, std::array<std::byte, kCacheLine>>
      flush_pending_;
  std::unique_ptr<check::PersistChecker> checker_;
  std::vector<std::pair<std::size_t, std::size_t>> bad_media_;  // off, len
  std::vector<bool> touched_;  // one bit per 4 KiB page
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
};

}  // namespace pmemcpy::pmem
