// Emulated persistent-memory device.
//
// The device is a DRAM-backed byte store (the paper's evaluation also
// emulated PMEM from DRAM).  Every access path charges the simulated clock
// of the calling rank:
//
//   * read()/write()  — explicit, bounds-checked, charged transfers; used by
//     the POSIX path of the filesystem and by the object store.
//   * raw() + charge_dax_*() — the DAX path: callers get a pointer straight
//     into device memory (zero copy) and charge bandwidth/fault costs
//     explicitly, including the MAP_SYNC first-touch penalty.
//
// For crash-consistency testing the device can additionally keep a shadow of
// every cacheline written since it was last persisted; simulate_crash()
// restores those lines, emulating the loss of CPU-cache-resident stores on
// power failure.
#pragma once

#include <pmemcpy/sim/context.hpp>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pmemcpy::pmem {

inline constexpr std::size_t kCacheLine = 64;

class Device {
 public:
  /// @param capacity      device size in bytes (rounded up to a page)
  /// @param crash_shadow  keep pre-images of unpersisted cachelines so that
  ///                      simulate_crash() can drop in-flight stores.  Costs
  ///                      DRAM + a hash lookup per store; enable in tests only.
  explicit Device(std::size_t capacity, bool crash_shadow = false);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool crash_shadow_enabled() const noexcept {
    return crash_shadow_;
  }

  // --- charged, bounds-checked transfer path -------------------------------

  /// Store @p len bytes at @p off; charges write latency + bandwidth.
  void write(std::size_t off, const void* src, std::size_t len);
  /// Load @p len bytes from @p off; charges read latency + bandwidth.
  void read(std::size_t off, void* dst, std::size_t len) const;
  /// Set @p len bytes at @p off to @p value; charged like a write.
  void fill(std::size_t off, std::size_t len, std::byte value);

  /// Flush the cachelines covering [off, off+len) and drain: after this the
  /// range survives simulate_crash().  Charges per-line flush + fence cost.
  void persist(std::size_t off, std::size_t len);
  /// Fence only (SFENCE); charges drain cost.
  void drain();

  // --- DAX path -------------------------------------------------------------

  /// Pointer into device memory.  Mutations through this pointer are
  /// invisible to crash tracking unless note_write() is called; production
  /// code uses the typed helpers in pmemobj which do so.
  [[nodiscard]] std::byte* raw(std::size_t off = 0) noexcept {
    return data_.get() + off;
  }
  [[nodiscard]] const std::byte* raw(std::size_t off = 0) const noexcept {
    return data_.get() + off;
  }

  /// Charge a zero-copy store of @p len bytes at @p off performed through a
  /// DAX mapping.  Newly touched pages cost a fault (a synchronous
  /// block-allocation fault when @p map_sync, a minor fault otherwise) and
  /// MAP_SYNC derates write bandwidth.
  void charge_dax_write(std::size_t off, std::size_t len, bool map_sync);
  /// Charge a zero-copy load of @p len bytes through a DAX mapping.  With
  /// @p map_sync the mapping's synchronous-fault semantics derate read
  /// bandwidth as well.
  void charge_dax_read(std::size_t len, bool map_sync = false) const;

  /// Record [off, off+len) as dirty for crash tracking (pre-imaging the
  /// affected cachelines in shadow mode).  Call *before* mutating via raw().
  void note_write(std::size_t off, std::size_t len);

  /// Forget page-touch state (a fresh mmap of the device file).
  void reset_page_touches();

  // --- crash simulation ------------------------------------------------------

  /// Revert every cacheline written since it was last persisted (requires
  /// crash_shadow).  Emulates power loss with stores still in CPU caches.
  void simulate_crash();
  /// Number of distinct unpersisted cachelines currently tracked.
  [[nodiscard]] std::size_t unpersisted_lines() const;

  // --- statistics -------------------------------------------------------------

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

 private:
  void check_range(std::size_t off, std::size_t len) const;
  /// Pages of [off,len) not yet touched since the last reset; marks them.
  std::size_t claim_new_pages(std::size_t off, std::size_t len);

  std::size_t capacity_;
  std::unique_ptr<std::byte[]> data_;
  bool crash_shadow_;

  mutable std::mutex mu_;  // protects shadow_, touched_, counters
  std::unordered_map<std::size_t, std::array<std::byte, kCacheLine>> shadow_;
  std::vector<bool> touched_;  // one bit per 4 KiB page
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t bytes_read_ = 0;
};

}  // namespace pmemcpy::pmem
