// The storage-engine contract: everything above this layer (PMEM, the C API,
// benchmarks) speaks one key-value interface; everything below it (the flat
// hashtable pool, the DAX-filesystem tree, the sharded composition) is an
// interchangeable implementation.
//
// The contract:
//   * Entries are (key, blob, 64-bit meta word).  Keys are flat strings;
//     prefix iteration is the only enumeration primitive.
//   * put() is two-phase: the returned PutHandle exposes a Sink over the
//     reserved blob, and commit(crc) stamps the checksum and publishes.  An
//     entry is either fully visible or absent — never torn.  A PutHandle
//     destroyed without commit() leaves no trace.
//   * Zero-copy contract (DESIGN.md §12): the reservation is an
//     exactly-sized span of persistent memory, and sink() writes serialize
//     straight into it — a put handle never stages the payload in DRAM.
//     reserved_span() exposes the raw span when the reservation is
//     physically contiguous (empty span otherwise, e.g. a fragmented tree
//     file streaming through its mapping); either way the bytes take one
//     trip.  Callers that *want* staging (the ADIOS-style ablation) stage
//     above the contract with a BufferSink and copy in.
//   * Zero-copy read contract (DESIGN.md §13): find() hands back an Entry
//     whose stored_span() is a direct const view of the stored blob —
//     hashtable value bytes in the pool, or the tree file's mapped extent —
//     so CRC verification and deserialization run in place without bouncing
//     the payload through DRAM.  A fragmented tree file is the one charged
//     fallback (copy.read_bounce_bytes); everything else reads exactly once.
//   * Durability ordering: an entry's bytes (blob + metadata) are flushed
//     and fenced *before* the store that makes them reachable, so a crash at
//     any point exposes only complete entries (the PR-2 persistency checker
//     enforces this on every engine).
//   * Batches stage several puts and publish them together.  Staged entries
//     are invisible to find()/for_each_prefix() — including the stager's own
//     reads — until Batch::commit(); a Batch destroyed without commit
//     discards every staged entry.  Batching is a fence optimisation, not a
//     multi-entry atomicity guarantee: a crash during commit may publish a
//     prefix of the batch, but each published entry is individually intact.
//   * keep_existing=true makes the first writer win (concurrent ranks
//     storing identical metadata); the loser's reservation is discarded.
//
// Engines are DRAM objects bound to persistent state; they hold no
// persistent state of their own, so re-opening after a crash just
// constructs a fresh engine over the recovered pool/filesystem.
#pragma once

#include <pmemcpy/serial/sink.hpp>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pmemcpy {
class PmemNode;
namespace obj {
class Pool;
class HashTable;
}  // namespace obj
namespace fs {
class FileSystem;
}  // namespace fs
namespace par {
class Comm;
}  // namespace par
}  // namespace pmemcpy

namespace pmemcpy::engine {

/// Size + caller-defined meta word of a stored entry.
struct EntryInfo {
  std::uint64_t size = 0;
  std::uint64_t meta = 0;
};

/// Physical placement of an entry, for repair/scrub diagnostics: which shard
/// holds it and where its blob starts on the device.  Engines without a
/// meaningful physical address (the tree engine) report the defaults.
struct Provenance {
  int shard = 0;              ///< index within a sharded composition
  std::uint64_t dev_off = 0;  ///< device-absolute blob offset; 0 = unknown
};

class Engine {
 public:
  /// In-flight reservation of one entry (see contract above).
  class PutHandle {
   public:
    virtual ~PutHandle() = default;
    /// Sink over the reserved blob; write exactly the reserved size.
    virtual serial::Sink& sink() = 0;
    /// The reserved PMEM span itself, when the reservation is physically
    /// contiguous — sink() is a SpanSink over exactly this memory, already
    /// charged at reservation time.  Empty when the engine streams through
    /// a non-contiguous mapping instead (the bytes still go straight to
    /// PMEM; there is just no single span to hand out).
    [[nodiscard]] virtual std::span<std::byte> reserved_span() { return {}; }
    /// Stamp the payload CRC into the meta word's high 32 bits and publish
    /// (or, inside a Batch, stage for the group publish).
    virtual void commit(std::uint32_t payload_crc) = 0;
  };

  /// Read handle for one entry.
  class Entry {
   public:
    virtual ~Entry() = default;
    [[nodiscard]] virtual EntryInfo info() const = 0;
    /// Charged copy of blob bytes [off, off+len); throws SerialError when
    /// out of range.
    virtual void read(std::uint64_t off, void* dst, std::size_t len) = 0;
    /// Zero-copy read contract (DESIGN.md §13): a direct const span over
    /// the whole stored blob, exactly info().size bytes, valid while this
    /// handle lives.  CRC verification and deserialization consume it in
    /// place — a get never bounces the payload through DRAM.  Only
    /// @p charge_bytes of device read traffic are charged (callers often
    /// decode a slice); media errors surface as DeviceError, never as
    /// stale/garbage bytes.  Engines whose blob is not physically
    /// contiguous (a fragmented tree file) fall back internally to a DRAM
    /// bounce charged to copy.read_bounce_bytes — the span they return is
    /// then over the bounce buffer, still handle-lifetime stable.
    [[nodiscard]] virtual std::span<const std::byte> stored_span(
        std::size_t charge_bytes) = 0;
    /// Whole-blob convenience: charges the full stored size.
    [[nodiscard]] std::span<const std::byte> stored_span() {
      return stored_span(info().size);
    }
    /// Physical placement (shard + device offset) for diagnostics.
    [[nodiscard]] virtual Provenance provenance() const { return {}; }
  };

  /// Group-commit scope (see contract above for visibility semantics).
  class Batch {
   public:
    virtual ~Batch() = default;
    /// Stage a reservation; handle semantics match Engine::put except that
    /// commit(crc) stages instead of publishing.
    virtual std::unique_ptr<PutHandle> put(const std::string& key,
                                           std::size_t size,
                                           std::uint64_t meta,
                                           bool keep_existing) = 0;
    /// Publish every staged entry (engine-specific; the table engine pays
    /// two fences total regardless of the batch size).
    virtual void commit() = 0;
    /// Entries staged and awaiting commit.
    [[nodiscard]] virtual std::size_t staged() const = 0;
  };

  virtual ~Engine() = default;

  virtual std::unique_ptr<PutHandle> put(const std::string& key,
                                         std::size_t size, std::uint64_t meta,
                                         bool keep_existing) = 0;
  /// nullptr when absent.
  virtual std::unique_ptr<Entry> find(const std::string& key) = 0;
  /// false when absent.
  virtual bool erase(const std::string& key) = 0;
  virtual void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn) = 0;
  virtual std::unique_ptr<Batch> begin_batch() = 0;

  /// Record the device-absolute range [dev_off, dev_off+len) in the owning
  /// shard's persistent quarantine table so its space is never allocated
  /// again (the self-healing put path calls this with DeviceError
  /// coordinates before retrying).  Returns false when no shard owns the
  /// range or the engine has no quarantine support (the tree engine).
  virtual bool quarantine(std::size_t dev_off, std::size_t len) {
    (void)dev_off;
    (void)len;
    return false;
  }
};

// --- factories ---------------------------------------------------------------

/// Flat layout: one hashtable in one pool.
std::unique_ptr<Engine> make_table_engine(std::shared_ptr<obj::Pool> pool,
                                          std::shared_ptr<obj::HashTable> table);

/// Hierarchical layout: one file per entry under @p root on the DAX fs.
std::unique_ptr<Engine> make_tree_engine(fs::FileSystem& fs, std::string root,
                                         bool map_sync);

/// Hash-partition keys across @p shards (routing is engine-agnostic, so any
/// engine mix shards).  Batches fan out into per-shard sub-batches.
std::unique_ptr<Engine> make_sharded_engine(
    std::vector<std::unique_ptr<Engine>> shards);

/// Options for the standard pool-backed open path.
struct PoolEngineOptions {
  std::string name;            ///< pool name (shards append ".s<k>")
  std::size_t pool_size = 0;   ///< bytes per shard; 0 = split what's left
  std::size_t nbuckets = 8192; ///< total buckets (divided across shards)
  bool auto_grow = true;
  bool map_sync = false;
  std::size_t shards = 1;
  /// Allocator hot-path knobs (DESIGN.md §14).  -1 defers to the
  /// PMEMCPY_MAGAZINE_SIZE / PMEMCPY_ALLOC_STRIPES env vars, then to the
  /// engine defaults (magazines of 8, 8 stripes); 0 disables magazines /
  /// 1 collapses the stripes back to a single metadata lane.
  int magazine_size = -1;
  int alloc_stripes = -1;
};

/// Open (creating if needed) the table engine(s) for @p opts.  Collective
/// when @p comm is non-null: rank 0 creates every shard pool + table, then
/// all ranks open the shared instances.  Each pool's expected-contender
/// count is set to ceil(nranks / shards) — the simulated-clock serialization
/// sharding exists to relieve.
std::unique_ptr<Engine> open_pool_engine(PmemNode& node,
                                         const PoolEngineOptions& opts,
                                         par::Comm* comm);

/// Open the tree engine rooted at @p root, creating the directory on rank 0
/// first (collective when @p comm is non-null).
std::unique_ptr<Engine> open_tree_engine(PmemNode& node, const std::string& root,
                                         bool map_sync, par::Comm* comm);

}  // namespace pmemcpy::engine
