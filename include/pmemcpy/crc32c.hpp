// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The integrity layer checksums pool headers, chunk headers and dataset
// payloads with CRC32C — the same polynomial PMDK and most storage stacks
// use, chosen for its error-detection properties on small metadata records.
// Software table-driven implementation; fast enough for the emulated device
// (the real cost of a checksum pass is charged on the simulated clock by the
// callers that move the bytes).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pmemcpy {

namespace detail_crc {

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

inline constexpr auto kCrc32cTable = make_crc32c_table();

}  // namespace detail_crc

/// CRC32C of @p len bytes at @p data, chained from @p crc (pass the previous
/// call's result to checksum a logically contiguous byte stream in pieces).
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail_crc::kCrc32cTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace pmemcpy
