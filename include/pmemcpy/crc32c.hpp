// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The integrity layer checksums pool headers, chunk headers and dataset
// payloads with CRC32C — the same polynomial PMDK and most storage stacks
// use, chosen for its error-detection properties on small metadata records.
// Software slicing-by-8 implementation (eight derived tables, one 64-bit
// load per iteration); fast enough for the emulated device (the real cost
// of a checksum pass is charged on the simulated clock by the callers that
// move the bytes, so the host-side speedup changes no simulated number).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pmemcpy {

namespace detail_crc {

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

inline constexpr auto kCrc32cTable = make_crc32c_table();

/// Slicing-by-8 tables: table[j][b] is the CRC contribution of byte b seen
/// j+1 positions before the end of an 8-byte group.  Table 0 is the classic
/// byte-at-a-time table; each further table shifts the previous one through
/// eight more zero bits of the message.
inline constexpr std::array<std::array<std::uint32_t, 256>, 8>
make_crc32c_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = make_crc32c_table();
  for (std::size_t j = 1; j < 8; ++j) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[j][i] = t[0][t[j - 1][i] & 0xFFu] ^ (t[j - 1][i] >> 8);
    }
  }
  return t;
}

inline constexpr auto kCrc32cSlices = make_crc32c_slices();

/// Reference byte-at-a-time kernel, kept for the equivalence test and for
/// the sub-8-byte head/tail of the sliced path.  Operates on the internal
/// (pre-inverted) CRC state.
inline std::uint32_t crc32c_bytes(std::uint32_t c, const unsigned char* p,
                                  std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrc32cTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

}  // namespace detail_crc

/// CRC32C of @p len bytes at @p data, chained from @p crc (pass the previous
/// call's result to checksum a logically contiguous byte stream in pieces).
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t crc = 0) {
  using namespace detail_crc;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  // Align to 8 so the main loop's loads never straddle the buffer start.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = kCrc32cTable[(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --len;
  }
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    word ^= c;  // fold the running CRC into the low 4 bytes (little-endian)
    c = kCrc32cSlices[7][word & 0xFFu] ^
        kCrc32cSlices[6][(word >> 8) & 0xFFu] ^
        kCrc32cSlices[5][(word >> 16) & 0xFFu] ^
        kCrc32cSlices[4][(word >> 24) & 0xFFu] ^
        kCrc32cSlices[3][(word >> 32) & 0xFFu] ^
        kCrc32cSlices[2][(word >> 40) & 0xFFu] ^
        kCrc32cSlices[1][(word >> 48) & 0xFFu] ^
        kCrc32cSlices[0][(word >> 56) & 0xFFu];
    p += 8;
    len -= 8;
  }
  return ~detail_crc::crc32c_bytes(c, p, len);
}

/// Reference implementation (byte-at-a-time), exported so the test suite can
/// prove the sliced kernel bit-identical on arbitrary buffers and chains.
inline std::uint32_t crc32c_reference(const void* data, std::size_t len,
                                      std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  return ~detail_crc::crc32c_bytes(~crc, p, len);
}

}  // namespace pmemcpy
