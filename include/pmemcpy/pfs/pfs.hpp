// Parallel filesystem (mass storage) model — the "PFS" box of the paper's
// Figure 1.  Node-local PMEM is a *buffering* layer: data is eventually
// flushed over the interconnect to a shared parallel filesystem, which is
// high-latency and far slower than PMEM.
//
// Modelled as a flat object store with charged transfers; contents are real
// bytes so stage-in/stage-out round-trips are verifiable.
#pragma once

#include <pmemcpy/sim/context.hpp>

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pmemcpy::pfs {

struct PfsModel {
  /// Request latency (RPC + metadata + placement).
  double latency = 250e-6;
  /// Per-client streaming bandwidth (bytes/s).
  double stream_bw = 1.5e9;
  /// Aggregate bandwidth of the storage system (bytes/s).
  double total_bw = 5.0e9;
};

class ParallelFileSystem {
 public:
  explicit ParallelFileSystem(PfsModel model = PfsModel{}) : model_(model) {}

  ParallelFileSystem(const ParallelFileSystem&) = delete;
  ParallelFileSystem& operator=(const ParallelFileSystem&) = delete;

  [[nodiscard]] const PfsModel& model() const noexcept { return model_; }

  /// Store an object (charged transfer to mass storage).
  void put(const std::string& name, std::span<const std::byte> data);
  /// Fetch an object; nullopt if absent (charged transfer when present).
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& name) const;

  [[nodiscard]] bool exists(const std::string& name) const;
  [[nodiscard]] std::size_t size(const std::string& name) const;
  bool remove(const std::string& name);
  /// Object names with the given prefix (metadata op; latency only).
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;

  [[nodiscard]] std::uint64_t bytes_stored() const;

 private:
  void charge(std::size_t bytes) const;

  PfsModel model_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::byte>> objects_;
};

}  // namespace pmemcpy::pfs
