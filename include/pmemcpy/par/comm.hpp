// Thread-based MPI-like parallel runtime.
//
// The paper runs 8-48 MPI ranks on a single node.  This sandbox has no MPI,
// so we provide an in-process runtime with the same semantics: Runtime::run
// spawns one thread per rank, each with its own simulated clock, and Comm
// offers the collectives the I/O libraries need (barrier, bcast, gather(v),
// allgather(v), alltoall(v), reductions, exscan, send/recv).
//
// Data really moves between ranks (shared-memory memcpy, like an intra-node
// MPI BTL) and each movement charges the network cost model.  Collectives
// synchronise simulated clocks to the maximum across participants, so the
// time reported for a bulk-synchronous phase is its critical path.
//
// All counts and displacements are in BYTES.
#pragma once

#include <pmemcpy/ft/ft.hpp>
#include <pmemcpy/sim/context.hpp>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace pmemcpy::par {

namespace detail {
struct State;
}  // namespace detail

/// A rank's handle to the communicator.  Valid only inside Runtime::run.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Synchronise all ranks; clocks leave at max(entry) + barrier cost.
  void barrier();

  /// Replicate @p bytes from @p root's buffer into every rank's @p data.
  void bcast(void* data, std::size_t bytes, int root);

  /// Every rank contributes @p bytes; every rank receives all contributions
  /// concatenated in rank order into @p recv (size*bytes long).
  void allgather(const void* send, std::size_t bytes, void* recv);

  /// Variable-size allgather. @p counts/@p displs are indexed by rank.
  void allgatherv(const void* send, std::size_t bytes, void* recv,
                  std::span<const std::size_t> counts,
                  std::span<const std::size_t> displs);

  /// Variable-size gather to @p root only (@p recv/@p counts/@p displs are
  /// ignored on other ranks).
  void gatherv(const void* send, std::size_t bytes, void* recv,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);

  /// Variable-size scatter from @p root: rank i receives counts[i] bytes
  /// from @p send + displs[i] into @p recv (@p bytes = counts[rank]).
  void scatterv(const void* send, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, void* recv,
                std::size_t bytes, int root);

  /// Split into sub-communicators by @p color (ranks ordered by (key,
  /// rank), as MPI_Comm_split).  Negative color returns an invalid Comm
  /// (the rank opts out).  Collective over the parent.
  [[nodiscard]] Comm split(int color, int key);
  /// False for the Comm returned to color<0 ranks.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Personalised all-to-all exchange; the shuffle primitive the contiguous
  /// -layout baselines (NetCDF/pNetCDF) are built on.
  void alltoallv(const void* send, std::span<const std::size_t> scounts,
                 std::span<const std::size_t> sdispls, void* recv,
                 std::span<const std::size_t> rcounts,
                 std::span<const std::size_t> rdispls);

  /// Blocking eager-protocol point-to-point.
  void send(int dst, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes);

  /// Exclusive prefix sum (rank 0 receives 0).
  [[nodiscard]] std::uint64_t exscan_sum(std::uint64_t v);

  /// Run @p body on this rank and return the slowest rank's elapsed
  /// simulated time (an allreduce_max, so it is also a barrier).  The
  /// clock reads live here in the par layer so benchmarks never touch the
  /// raw simulated clock; callers wanting a clean start line should
  /// barrier() first.
  [[nodiscard]] double timed_max(const std::function<void()>& body);

  template <typename T>
  [[nodiscard]] T allreduce_sum(T v) {
    return allreduce(v, [](T a, T b) { return a + b; });
  }
  template <typename T>
  [[nodiscard]] T allreduce_max(T v) {
    return allreduce(v, [](T a, T b) { return a < b ? b : a; });
  }
  template <typename T>
  [[nodiscard]] T allreduce_min(T v) {
    return allreduce(v, [](T a, T b) { return b < a ? b : a; });
  }

 private:
  friend class Runtime;
  Comm(detail::State& st, int rank, int size) noexcept
      : state_(&st), rank_(rank), size_(size) {}

  template <typename T, typename Op>
  T allreduce(T v, Op op) {
    std::vector<T> all(static_cast<std::size_t>(size_));
    allgather(&v, sizeof(T), all.data());
    T acc = all[0];
    for (int i = 1; i < size_; ++i) acc = op(acc, all[static_cast<std::size_t>(i)]);
    return acc;
  }

  detail::State* state_;
  int rank_;
  int size_;
  /// Per-handle split sequence so repeated splits rendezvous correctly.
  std::uint64_t split_seq_ = 0;
};

/// Collective health agreement: every rank contributes its local state and
/// all observe the worst across the communicator (ft::Health is ordered with
/// kDegraded greatest), so one rank hitting exhausted media degrades every
/// rank's view at the same point in the program instead of ranks silently
/// diverging.
[[nodiscard]] inline ft::Health agree_health(Comm& comm, ft::Health local) {
  return static_cast<ft::Health>(comm.allreduce_max(static_cast<int>(local)));
}

/// Spawns rank threads and runs a function on each.
class Runtime {
 public:
  struct Result {
    /// Critical-path simulated time (max over ranks).
    double max_time = 0.0;
    /// Final simulated clock per rank.
    std::vector<double> rank_times;
  };

  /// Run @p fn as @p nranks ranks.  Each rank executes under its own
  /// sim::Context (installed thread-locally).  Rethrows the first rank
  /// exception after unblocking the others.
  static Result run(int nranks, const std::function<void(Comm&)>& fn,
                    const sim::CostModel& model = sim::default_model());
};

}  // namespace pmemcpy::par
