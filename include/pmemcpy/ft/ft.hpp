// pmemcpy::ft — the fault-tolerance vocabulary shared by every layer of the
// self-healing data path (DESIGN.md §10).
//
// The layer stack uses it as follows:
//   * pmem::Device injects seed-deterministic transient faults and retries
//     them under an ft::RetryPolicy, charging each backoff to the simulated
//     clock;
//   * obj::Pool records sticky-bad ranges in a persistent CRC-protected
//     quarantine table and reports table operations as ft::Status;
//   * PMEM retries faulted puts after quarantining the failing range,
//     relocates entries off bad media in repair(), and transitions to
//     ft::Health::kDegraded (read-only) when healing is exhausted —
//     surfacing damage as a typed DegradedError instead of corrupt bytes.
//
// Everything here is a plain value type: no clocks, no devices, no
// persistent state, so any layer can depend on it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace pmemcpy::ft {

/// Why an operation could not be completed normally.
enum class ErrorCode : int {
  kOk = 0,
  kRetryExhausted,  ///< transient faults persisted past the retry budget
  kMediaFailed,     ///< sticky-bad media: writes to the range keep failing
  kQuarantineFull,  ///< the persistent bad-range table has no free slot
  kDegraded,        ///< pool is in degraded read-only mode; writes refused
  kDamagedKey,      ///< this entry's bytes are unrecoverable (typed, not garbage)
  kUnsupported,     ///< the engine/layout has no media-management support
};

[[nodiscard]] const char* error_code_name(ErrorCode c) noexcept;

/// Success-or-typed-error result.  [[nodiscard]] so a dropped Status is a
/// compile error in-tree (and lint rule 5 greps for discards in src/).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string detail)
      : code_(code), detail_(std::move(detail)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }
  [[nodiscard]] std::string to_string() const {
    std::string s = error_code_name(code_);
    if (!detail_.empty()) s += ": " + detail_;
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string detail_;
};

/// Retry/backoff schedule applied at the device-access boundary.  Backoff is
/// charged to the *simulated* clock (sim::Charge::kRetryBackoff), so retries
/// are deterministic and visible in trace spans like any other cost.
struct RetryPolicy {
  /// Attempts per operation including the first (1 = no retry).
  int max_attempts = 6;
  /// Simulated seconds charged before the first retry.
  double backoff_base = 250e-9;
  /// Multiplier per subsequent retry (exponential backoff).
  double backoff_factor = 2.0;
  /// Per-op budget of simulated backoff seconds; once the accumulated
  /// backoff would exceed it the op fails even with attempts left.
  /// 0 disables the deadline.
  double deadline = 0.0;

  /// Backoff charged before retry @p n (1-based).
  [[nodiscard]] double backoff_for(int n) const noexcept {
    double d = backoff_base;
    for (int i = 1; i < n; ++i) d *= backoff_factor;
    return d;
  }
};

/// Pool health, ordered so the cluster-wide state is the max across ranks
/// (par::agree_health merges with allreduce_max).
enum class Health : int {
  kHealthy = 0,
  kDegraded = 1,  ///< read-only: healthy entries load, writes are refused
};

[[nodiscard]] const char* health_name(Health h) noexcept;

/// Thrown where an exception is the only signalling channel (the templated
/// PMEM store/load API); carries the same typed Status a non-throwing path
/// would return.
struct DegradedError : std::runtime_error {
  explicit DegradedError(Status s)
      : std::runtime_error("pmemcpy: " + s.to_string()),
        status(std::move(s)) {}

  Status status;
};

inline const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kRetryExhausted: return "retry budget exhausted";
    case ErrorCode::kMediaFailed: return "media failed";
    case ErrorCode::kQuarantineFull: return "quarantine table full";
    case ErrorCode::kDegraded: return "pool degraded (read-only)";
    case ErrorCode::kDamagedKey: return "entry damaged beyond repair";
    case ErrorCode::kUnsupported: return "unsupported by this engine";
  }
  return "unknown";
}

inline const char* health_name(Health h) noexcept {
  switch (h) {
    case Health::kHealthy: return "healthy";
    case Health::kDegraded: return "degraded";
  }
  return "unknown";
}

}  // namespace pmemcpy::ft
