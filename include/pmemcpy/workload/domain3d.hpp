// The paper's evaluation workload (§4.1): an S3D-inspired 3-D domain
// decomposition.  "We generate 10 3-D rectangles... a total of 40GB of data
// is generated and divided equally among the processes.  Each element is a
// double."  The read workload is symmetric: each process reads back exactly
// what it wrote.
#pragma once

#include <pmemcpy/core/hyperslab.hpp>

#include <array>
#include <cstdint>
#include <vector>

namespace pmemcpy::wk {

/// Balanced 3-D process grid for @p nranks (px*py*pz == nranks, px>=py>=pz).
[[nodiscard]] std::array<std::size_t, 3> balanced_factors(int nranks);

struct Decomposition {
  Dimensions global;            ///< global cube dims (elements)
  std::vector<Box> rank_boxes;  ///< one sub-box per rank
  [[nodiscard]] std::size_t total_elements() const {
    std::size_t n = 1;
    for (auto d : global) n *= d;
    return n;
  }
};

/// Decompose a ~@p elems_per_var-element cube across @p nranks processes as
/// equal rectangular sub-boxes (each rank's box has identical dimensions).
[[nodiscard]] Decomposition decompose(std::size_t elems_per_var, int nranks);

/// Deterministic element value: depends only on (variable, global linear
/// index), so any sub-box read can be verified independently.
[[nodiscard]] inline double element_value(int var,
                                          std::size_t linear) noexcept {
  // Exactly representable in a double: var in the high digits, a bounded
  // mixed index in the low ones.
  const std::uint64_t mixed = (linear * 2654435761u + 12345) & 0xFFFFFu;
  return static_cast<double>(var) * 2097152.0 + static_cast<double>(mixed);
}

/// Fill @p buf (resized to the box volume) with @p var's values over @p box.
void fill_box(std::vector<double>& buf, int var, const Dimensions& global,
              const Box& box);

/// Count mismatching elements of @p buf against the expected pattern.
[[nodiscard]] std::size_t verify_box(const std::vector<double>& buf, int var,
                                     const Dimensions& global, const Box& box);

}  // namespace pmemcpy::wk
