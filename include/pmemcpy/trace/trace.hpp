// pmemcpy::trace — zero-cost-when-disabled observability (DESIGN.md §9).
//
// Three pieces, all stamped from the simulated clock so their output is
// deterministic enough to assert in tests:
//
//   * Scoped spans.  `trace::Span s("engine.put");` records open/close
//     timestamps from the calling rank's sim::Context, nests under the
//     enclosing span of the same thread, and attributes the simulated time
//     that elapsed inside it to sim::Charge categories (cpu_copy,
//     pmem_write, pmem_persist, ...) by snapshotting the context's charged
//     totals at open and close.  Because every Context::advance() is
//     categorised, the per-category deltas of a span sum to its duration.
//     Spans are pure observers: they never advance the clock, so enabling
//     tracing cannot change bench numbers or flush/fence counts.
//
//   * A typed counter/histogram registry.  One vocabulary (counter_name())
//     shared by the stats exporter, `flush_audit --json` and the persist
//     checker's exit line — the first eight counters mirror
//     check::Report/GlobalCounters field-for-field so totals can be
//     cross-checked against checker_report().
//
//   * Exporters: Chrome `trace_event` JSON (chrome://tracing, Perfetto) and
//     a compact stats JSON.  Timestamps are integer nanoseconds derived
//     from the simulated clock, so exports are byte-stable across hosts.
//
// Enabling mirrors the persist-checker pattern: the PMEMCPY_TRACE env var
// wins (truthy enables; any other non-flag value is also the export path
// written at process exit), otherwise -DPMEMCPY_TRACE=ON compiles the
// default to "enabled".  Tests drive set_enabled()/reset() directly.
//
// A simulated power loss (pmem::Device crash points) calls on_crash():
// every span still open is marked `crashed` but keeps closing normally as
// the stack unwinds, so post-crash traces show exactly which scopes the
// power failure cut through.  reset() starts a new epoch; spans from an
// older epoch that close late are ignored instead of corrupting the
// registry.
#pragma once

#include <pmemcpy/sim/context.hpp>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pmemcpy::trace {

/// Typed counters.  The first eight mirror check::GlobalCounters (same
/// order, same JSON names) so trace totals and checker tallies are directly
/// comparable; the rest absorb the counters that used to live as ad-hoc
/// fields on Device, Pool and the engines.
enum class Counter : int {
  kStoreOps = 0,            ///< device stores (checker on_store events)
  kFlushOps,                ///< CLWB-equivalent flush operations
  kLinesFlushed,            ///< cachelines covered by those flushes
  kFenceOps,                ///< SFENCE-equivalent drain operations
  kCleanFlushes,            ///< checker lint: flush of an already-clean line
  kDuplicateFlushes,        ///< checker lint: re-flush within one epoch
  kEmptyFences,             ///< checker lint: fence ordering nothing
  kCorrectnessViolations,   ///< checker correctness findings
  kPersistOps,              ///< device persist-op ids consumed (flush|fence)
  kBytesWritten,            ///< device bytes stored (incl. DAX path)
  kBytesRead,               ///< device bytes read (incl. DAX path)
  kAllocOps,                ///< Pool::alloc calls
  kAllocBytes,              ///< payload bytes allocated
  kFreeOps,                 ///< Pool::free calls
  kTxCommits,               ///< obj::Transaction commits
  kEnginePuts,              ///< engine put handles opened
  kEngineGets,              ///< engine lookups (hit or miss)
  kBatchCommits,            ///< engine group commits
  kCrashes,                 ///< simulated power losses observed
  kRecoveries,              ///< Pool::recover sweeps
  // ft.* — self-healing data path (DESIGN.md §10).  Appended last so the
  // flush-audit schema (which omits zero counters past the always-first
  // four) stays byte-identical when fault injection is off.
  kFtTransientFaults,       ///< injected transient device faults
  kFtRetries,               ///< device-level retry attempts after a fault
  kFtStickyRanges,          ///< ranges escalated to sticky-bad media
  kFtQuarantines,           ///< ranges recorded in pool quarantine tables
  kFtRelocations,           ///< entries rewritten off failing media
  kFtPutRetries,            ///< whole-put retries after quarantining
  kFtDegradedTransitions,   ///< pools entering degraded read-only mode
  kFtDamagedKeys,           ///< entries found unrecoverable by repair()
  // copy.* — data-path copy audit (DESIGN.md §12).  Also appended last so
  // checked-in flush-audit baselines stay byte-identical: the schema omits
  // zero counters past the always-first four, and the audit phases that do
  // stage are gated by their own copy-audit baseline instead.
  kCopyStagedBytes,         ///< serialized bytes that landed in a DRAM buffer
  kCopyDirectBytes,         ///< serialized bytes that landed in PMEM directly
  kCopyStagedPuts,          ///< puts whose payload took a DRAM staging pass
  // copy.read_* + cache.* — zero-copy read path (DESIGN.md §13).  Appended
  // last, same schema-stability argument as above: the stats/flush-audit
  // schema omits zero counters past the always-first four, so checked-in
  // baselines stay byte-identical for workloads that never read-stage.
  kCopyReadStagedBytes,     ///< get bytes bounced through a DRAM buffer
  kCopyReadDirectBytes,     ///< get bytes consumed in-place from PMEM spans
  kCopyReadBounceBytes,     ///< fragmented-tree fallback: charged DRAM bounce
  kReadCacheHits,           ///< read-cache lookups served from DRAM
  kReadCacheMisses,         ///< read-cache lookups that went to the engine
  kReadCacheHitBytes,       ///< blob bytes served from the read cache
  kReadCacheFillBytes,      ///< blob bytes copied into the cache on miss
  kReadCacheEvictions,      ///< entries evicted to respect read_cache_bytes
  kReadCacheInvalidations,  ///< entries dropped by put/remove/repair
  // alloc.* — allocator hot-path scalability (DESIGN.md §14).  Appended
  // last, same schema-stability argument as above: zero counters past the
  // always-first four are omitted, so checked-in baselines for workloads
  // that never touch a pool allocator stay byte-identical.
  kAllocLaneAcquisitions,   ///< allocator lock acquisitions (slow paths only)
  kAllocQueueCharges,       ///< nonzero queueing delays charged by the model
  kAllocMetadataPersists,   ///< flush/fence passes issued on allocator metadata
  kAllocMagazineHits,       ///< allocations served lock-free from a magazine
  kAllocMagazineFreeHits,   ///< frees absorbed lock-free by a magazine
  kAllocMagazineRefills,    ///< batch magazine refills (one undo tx each)
  kAllocMagazineFlushbacks, ///< batch magazine returns to the free lists
  kAllocMagazineSwept,      ///< owned-but-unpublished chunks swept at recovery
  kNumCounters,
};

/// Canonical snake_case name of @p c — the one counter schema.
const char* counter_name(Counter c) noexcept;

/// Fixed-shape histograms (count/sum/min/max; no buckets — the workloads
/// asserted on are deterministic, so moments are enough).
enum class Hist : int {
  kBatchSize = 0,       ///< entries per engine group commit
  kShardQueueDelay,     ///< seconds of pool metadata queueing charged
  kAllocSize,           ///< bytes per Pool::alloc
  kNumHists,
};

const char* hist_name(Hist h) noexcept;

struct HistData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline constexpr int kNumChargeKinds =
    static_cast<int>(sim::Charge::kNumCharges);

/// Canonical snake_case name of a charge category ("cpu_copy", ...).
const char* charge_name(sim::Charge c) noexcept;

/// One closed (or still-open / crashed) span as recorded in the registry.
struct SpanData {
  std::uint64_t id = 0;      ///< 1-based, increasing in open order per epoch
  std::uint64_t parent = 0;  ///< id of the enclosing span; 0 = root
  const char* name = "";     ///< static string supplied at open
  int rank = 0;              ///< sim::Context rank at open
  std::int64_t start_ns = 0;
  std::int64_t end_ns = -1;  ///< -1 while still open
  bool crashed = false;      ///< open at a simulated power loss
  /// Inclusive simulated seconds per sim::Charge category.
  double charge_sec[kNumChargeKinds] = {};

  [[nodiscard]] std::int64_t duration_ns() const noexcept {
    return end_ns < 0 ? 0 : end_ns - start_ns;
  }
  [[nodiscard]] double charge(sim::Charge c) const noexcept {
    return charge_sec[static_cast<int>(c)];
  }
};

namespace detail {
extern std::atomic<bool> g_enabled;
void count_slow(Counter c, std::uint64_t n) noexcept;
void observe_slow(Hist h, double value) noexcept;
}  // namespace detail

/// Whether tracing is on.  A single relaxed atomic load: the disabled fast
/// path of every instrumentation point.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Clear every span, counter and histogram and start a new epoch.  Spans
/// still open across a reset close as no-ops (their records are gone).
void reset() noexcept;

/// Simulated power loss: mark every open span `crashed` and count it.
/// Called by pmem::Device when a scheduled crash point fires.
void on_crash() noexcept;

/// Add @p n to counter @p c (no-op when disabled).
inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (enabled()) detail::count_slow(c, n);
}

/// Record one observation of @p value (no-op when disabled).
inline void observe(Hist h, double value) noexcept {
  if (enabled()) detail::observe_slow(h, value);
}

[[nodiscard]] std::uint64_t counter(Counter c) noexcept;
[[nodiscard]] HistData histogram(Hist h) noexcept;

/// RAII span.  @p name must be a string with static storage duration
/// (a literal): the registry keeps the pointer, not a copy.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (enabled()) open(name);
  }
  ~Span() {
    if (armed_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name) noexcept;
  void close() noexcept;

  bool armed_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t id_ = 0;
};

/// Copy of every recorded span, in open order.
[[nodiscard]] std::vector<SpanData> snapshot();

/// Spans silently dropped after the registry cap was reached.
[[nodiscard]] std::uint64_t dropped_spans() noexcept;

/// Highest span id assigned so far this epoch (a watermark: spans recorded
/// after a call all have larger ids).
[[nodiscard]] std::uint64_t high_span_id() noexcept;

// --- export ----------------------------------------------------------------

/// Chrome trace_event JSON: {"traceEvents":[...]}, one complete ("ph":"X")
/// event per closed span, ts/dur in microseconds of simulated time, tid =
/// rank.  Open spans are skipped.  Byte-stable for a deterministic workload.
[[nodiscard]] std::string chrome_json();

/// Compact stats JSON: {"counters":{...},"histograms":{...},"spans":[...]}
/// with spans aggregated by name (count + total/self nanoseconds).
[[nodiscard]] std::string stats_json();

/// `"store_ops": 1, "flush_ops": 2, ...` for an arbitrary counter row in
/// the schema order — the shared serialisation behind `flush_audit --json`
/// and the stats exporter.  The first @p always_first counters are emitted
/// even when zero; later ones only when nonzero.
[[nodiscard]] std::string schema_fields(
    const std::uint64_t (&row)[static_cast<int>(Counter::kNumCounters)],
    int always_first = 4);

/// Where the exit-time export goes (set by a path-valued PMEMCPY_TRACE).
/// Chrome JSON is written to the path itself, stats to path + ".stats.json".
void set_export_path(std::string path);
[[nodiscard]] std::string export_path();

/// Write both exports to export_path(); false if no path is set or an
/// export file cannot be written.
bool export_to_path();

}  // namespace pmemcpy::trace
