// DataWarp-style burst buffer (paper §3): "After serialization, a burst
// buffer, such as DataWarp, will then be triggered to asynchronously flush
// the buffered data to mass storage."
//
// The burst-buffer agent runs on its own simulated timeline: drain() starts
// at the caller's current simulated time and ships every entry of a PMEM
// store to the parallel filesystem, but the *caller's* clock does not
// advance — the flush is asynchronous and overlaps with whatever the
// application does next.  wait() joins a drain's completion into the
// calling rank's clock.  stage_in() is the synchronous restore path.
#pragma once

#include <pmemcpy/pfs/pfs.hpp>
#include <pmemcpy/pmemcpy.hpp>

namespace pmemcpy::bb {

struct DrainReport {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  /// Simulated time the agent started (the caller's now at the call).
  double started_at = 0.0;
  /// Simulated time the last byte reached mass storage.
  double ready_at = 0.0;

  [[nodiscard]] double duration() const noexcept {
    return ready_at - started_at;
  }
};

class BurstBuffer {
 public:
  explicit BurstBuffer(pfs::ParallelFileSystem& pfs) : pfs_(&pfs) {}

  /// Asynchronously flush every entry of @p pmem to the PFS under the
  /// @p dest namespace.  Entries are snapshot at call time.
  DrainReport drain(PMEM& pmem, const std::string& dest);

  /// Synchronously restore a drained namespace into @p pmem (charged to the
  /// calling rank).  Returns what was staged.
  DrainReport stage_in(const std::string& src, PMEM& pmem);

  /// Block the calling rank until @p report 's drain has completed.
  static void wait(const DrainReport& report);

 private:
  pfs::ParallelFileSystem* pfs_;
};

}  // namespace pmemcpy::bb
