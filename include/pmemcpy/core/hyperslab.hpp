// N-dimensional boxes (hyperslabs) and region copies.
//
// Shared by pMEMCPY (piece intersection on reads) and the baseline libraries
// (pack/unpack for their contiguous global layouts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pmemcpy {

using Dimensions = std::vector<std::size_t>;

/// An axis-aligned box: offset + count per dimension (row-major order).
struct Box {
  Dimensions offset;
  Dimensions count;

  Box() = default;
  Box(Dimensions off, Dimensions cnt)
      : offset(std::move(off)), count(std::move(cnt)) {}

  [[nodiscard]] std::size_t ndims() const noexcept { return offset.size(); }
  [[nodiscard]] std::size_t elements() const noexcept {
    std::size_t n = 1;
    for (auto c : count) n *= c;
    return n;
  }
  [[nodiscard]] bool empty() const noexcept {
    if (count.empty()) return true;
    for (auto c : count) {
      if (c == 0) return true;
    }
    return false;
  }

  friend bool operator==(const Box&, const Box&) = default;
};

/// Intersection of two boxes of equal rank (empty box if disjoint).
[[nodiscard]] Box intersect(const Box& a, const Box& b);

/// True when @p inner lies fully within @p outer.
[[nodiscard]] bool contains(const Box& outer, const Box& inner);

/// Copy @p region (absolute coordinates) from a row-major buffer covering
/// @p src_box into a row-major buffer covering @p dst_box.  @p elem_size is
/// the element width in bytes.  @p region must be contained in both boxes.
void copy_box_region(std::byte* dst, const Box& dst_box, const std::byte* src,
                     const Box& src_box, const Box& region,
                     std::size_t elem_size);

/// Linear element index of @p coord within a row-major box.
[[nodiscard]] std::size_t box_linear_index(const Box& box,
                                           const Dimensions& coord);

/// Visit each contiguous row of @p box within a row-major global array:
/// fn(global_linear_elem_offset, row_elems, box_linear_elem_offset).
void for_each_row(
    const Dimensions& global, const Box& box,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Encode/decode a box as a compact string ("o0_o1:c0_c1") for use in keys
/// and file names.
[[nodiscard]] std::string box_to_string(const Box& box);
[[nodiscard]] Box box_from_string(const std::string& s);

}  // namespace pmemcpy
