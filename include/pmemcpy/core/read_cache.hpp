// Bounded DRAM read cache over whole stored blobs (DESIGN.md §13).
//
// The zero-copy read path already makes a single get cheap — deserialization
// consumes the mapped blob in place — but the paper's restart/plane/subvolume
// patterns re-read the same entries many times, and every repeat pays the
// engine lookup, the media probe and the PMEM read charge again.  The cache
// keeps verified blob copies in DRAM, bounded by Config::read_cache_bytes,
// so repeats are served at DRAM cost.
//
// Properties the tests pin down:
//   * Bounded: LRU eviction keeps the byte total at or under capacity; a
//     blob larger than the whole capacity is simply not cached.
//   * Charged: the fill copy is charged to the simulated clock as a DRAM
//     copy (sim::Charge::kCpuCopy), so caching is never free in bench
//     numbers — it trades one fill copy for cheaper repeats.
//   * Deterministic: hits, misses, fills and evictions depend only on the
//     operation sequence (strict LRU over an intrusive list; no wall-clock,
//     no hashing-order dependence), so seeded workloads replay exactly.
//   * Never stale: the owning PMEM handle invalidates on every put
//     reservation, remove, repair and quarantine (see DESIGN.md §13 for the
//     ordering argument); a cached blob always matches the currently
//     published entry.
//
// All traffic is tallied under the cache's own counter vocabulary
// (read_cache_*), not the copy.read staged/direct audit: cached bytes took
// their one PMEM trip when the cache filled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pmemcpy::core {

class ReadCache {
 public:
  /// Verified blob bytes + the entry's meta word as published.
  struct Blob {
    std::vector<std::byte> bytes;
    std::uint64_t meta = 0;
  };

  explicit ReadCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// nullptr on miss.  A hit bumps the entry to most-recently-used and
  /// counts read_cache_hits / read_cache_hit_bytes; the pointer stays valid
  /// until the next insert/invalidate/clear.
  [[nodiscard]] const Blob* find(const std::string& key);

  /// Copy @p blob into the cache (a charged DRAM fill), evicting
  /// least-recently-used entries until it fits.  Blobs larger than the
  /// capacity are not cached.  An existing entry under @p key is replaced.
  void insert(const std::string& key, std::span<const std::byte> blob,
              std::uint64_t meta);

  /// Drop @p key if cached (counts read_cache_invalidations when it was).
  void invalidate(const std::string& key);

  /// Drop everything (counts one invalidation per dropped entry) — the
  /// media-changed hammer behind repair() and quarantine.
  void clear();

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t entries() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Front = most recently used; eviction pops from the back.
  std::list<std::pair<std::string, Blob>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, Blob>>::iterator>
      map_;
  std::size_t capacity_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace pmemcpy::core
