// The node-local PMEM environment (paper Figure 1: every compute node has
// DRAM + PMEM; I/O libraries persist to the node-local PMEM).
//
// A PmemNode owns the emulated device and carves it into:
//   * a pool area — named libpmemobj-style pools (pMEMCPY's flat hashtable
//     layout lives in one of these), tracked by a small persistent registry
//     so pools can be re-opened after a simulated crash, and
//   * a filesystem area — an EXT4-DAX-like filesystem (used by the baseline
//     libraries via POSIX and by pMEMCPY's hierarchical layout via DAX).
//
// Because ranks are threads of one process, Pool and HashTable instances
// (which carry DRAM locks) must be shared; PmemNode keeps those shared
// instances in process-local registries.
#pragma once

#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/obj/hashtable.hpp>
#include <pmemcpy/obj/pool.hpp>

#include <map>
#include <memory>
#include <optional>
#include <string>

namespace pmemcpy {

class PmemNode {
 public:
  struct Options {
    /// Emulated PMEM capacity in bytes.
    std::size_t capacity = 256ull << 20;
    /// Fraction of capacity reserved for object pools (rest is filesystem).
    double pool_fraction = 0.5;
    /// Track unpersisted cachelines so tests can simulate power failure.
    bool crash_shadow = false;
  };

  PmemNode();  // default Options
  explicit PmemNode(Options opts);

  [[nodiscard]] pmem::Device& device() noexcept { return *dev_; }
  [[nodiscard]] fs::FileSystem& fs() noexcept { return *fs_; }

  // --- named pools -----------------------------------------------------------

  /// Create a pool; @p size 0 means "the rest of the pool area".
  std::shared_ptr<obj::Pool> create_pool(const std::string& name,
                                         std::size_t size,
                                         obj::PoolOptions opts = {});
  /// Open an existing pool (shared instance; recovery runs on first open).
  std::shared_ptr<obj::Pool> open_pool(const std::string& name,
                                       obj::PoolOptions opts = {});
  std::shared_ptr<obj::Pool> open_or_create_pool(const std::string& name,
                                                 std::size_t size,
                                                 obj::PoolOptions opts = {});
  [[nodiscard]] bool has_pool(const std::string& name);
  /// Bytes of the pool area not yet claimed by any pool (pools pack from the
  /// bottom of the area and are never deleted).  The sharded engine divides
  /// this across its shards when the config asks for "the rest" (size 0).
  [[nodiscard]] std::size_t pool_area_available();

  /// Shared HashTable instance bound to (pool, header offset).
  std::shared_ptr<obj::HashTable> table_for(
      const std::shared_ptr<obj::Pool>& pool, std::uint64_t header_off);

  /// Simulate a node restart: drop all shared DRAM state and re-mount the
  /// device image (typically after device().simulate_crash()).
  void remount();

  // --- process-global default node -------------------------------------------

  /// The node PMEM::mmap uses when the Config names none.
  static PmemNode* default_node() noexcept;
  static void set_default(PmemNode* node) noexcept;

 private:
  struct RegistryEntry {
    std::string name;
    std::uint64_t base;
    std::uint64_t size;
  };
  void load_registry();
  void store_registry();
  [[nodiscard]] std::optional<RegistryEntry> find_pool(
      const std::string& name) const;

  Options opts_;
  std::unique_ptr<pmem::Device> dev_;
  std::optional<fs::FileSystem> fs_;

  std::mutex mu_;
  std::vector<RegistryEntry> registry_;
  std::uint64_t pool_area_begin_ = 0;
  std::uint64_t pool_area_end_ = 0;
  std::map<std::string, std::shared_ptr<obj::Pool>> open_pools_;
  std::map<std::pair<obj::Pool*, std::uint64_t>,
           std::shared_ptr<obj::HashTable>>
      tables_;
};

/// RAII: install a node as the process default for its lifetime.
class ScopedDefaultNode {
 public:
  explicit ScopedDefaultNode(PmemNode& node) noexcept
      : prev_(PmemNode::default_node()) {
    PmemNode::set_default(&node);
  }
  ~ScopedDefaultNode() { PmemNode::set_default(prev_); }
  ScopedDefaultNode(const ScopedDefaultNode&) = delete;
  ScopedDefaultNode& operator=(const ScopedDefaultNode&) = delete;

 private:
  PmemNode* prev_;
};

}  // namespace pmemcpy
