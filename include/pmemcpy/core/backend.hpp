// Storage backends behind the pMEMCPY API — the paper's two data layouts.
//
//   * Table store (default): one libpmemobj-lite pool; metadata in a flat
//     persistent hashtable with chaining; values are pool blobs reserved
//     up-front so serializers write straight into PMEM.
//   * Tree store (hierarchical): "whenever a '/' is used in the id of the
//     variable, a directory is created"; each entry is a DAX-mapped file on
//     the PMEM filesystem.
//
// Both expose the same reserve-sink-commit write path and charged /
// zero-copy read paths, so the PMEM front end is layout-agnostic.
#pragma once

#include <pmemcpy/core/node.hpp>
#include <pmemcpy/serial/sink.hpp>

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace pmemcpy::detail {

struct EntryInfo {
  std::uint64_t size = 0;  ///< blob bytes
  /// Caller-defined word.  The low 32 bits carry kind/dtype/serializer/
  /// filter codes; the high 32 bits hold the CRC32C of the blob, stamped at
  /// commit() so torn data is detectable on read.
  std::uint64_t meta = 0;
};

class Store {
 public:
  /// An in-flight reservation: serialize into sink(), then commit().
  class Put {
   public:
    virtual ~Put() = default;
    [[nodiscard]] virtual serial::Sink& sink() = 0;
    /// Publish the entry, folding @p payload_crc (CRC32C of every blob byte)
    /// into the high half of the meta word.
    virtual void commit(std::uint32_t payload_crc = 0) = 0;
  };

  /// A found entry.
  class Entry {
   public:
    virtual ~Entry() = default;
    [[nodiscard]] virtual EntryInfo info() const = 0;
    /// Charged copy of blob bytes [off, off+len) into @p dst.
    virtual void read(std::uint64_t off, void* dst, std::size_t len) = 0;
    /// Zero-copy pointer to the whole blob, charging @p charge_bytes of PMEM
    /// read (callers touching a subset charge only that subset).
    [[nodiscard]] virtual const std::byte* direct(
        std::size_t charge_bytes) = 0;
  };

  virtual ~Store() = default;

  /// Reserve a @p size-byte blob under @p key.  Commit replaces an existing
  /// entry unless @p keep_existing, in which case the first writer wins
  /// (used for idempotent metadata like "#dims" that every rank stores).
  [[nodiscard]] virtual std::unique_ptr<Put> put(const std::string& key,
                                                 std::size_t size,
                                                 std::uint64_t meta,
                                                 bool keep_existing = false) = 0;
  [[nodiscard]] virtual std::unique_ptr<Entry> find(const std::string& key) = 0;
  virtual bool erase(const std::string& key) = 0;
  /// Visit keys starting with @p prefix.
  virtual void for_each_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const EntryInfo&)>& fn) = 0;
};

/// Flat hashtable layout over a pool.
std::unique_ptr<Store> make_table_store(std::shared_ptr<obj::Pool> pool,
                                        std::shared_ptr<obj::HashTable> table);

/// Hierarchical layout: files under @p root (an absolute fs path).
std::unique_ptr<Store> make_tree_store(fs::FileSystem& fs, std::string root,
                                       bool map_sync);

}  // namespace pmemcpy::detail
