/* pMEMCPY C API — the header the paper's Figure 3 includes.
 *
 * A C-linkage wrapper over the C++ library for applications that cannot use
 * templates: opaque handles, explicit dtypes, status codes, and a
 * per-handle last-error string.  Covers the full Figure-2 surface for
 * single-process use (the parallel runtime is C++-only; MPI applications
 * would pass their communicator through the C++ API).
 */
#ifndef PMEMCPY_PMEMCPY_H
#define PMEMCPY_PMEMCPY_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct pmemcpy_node pmemcpy_node; /* node-local PMEM environment */
typedef struct pmemcpy_pmem pmemcpy_pmem; /* a PMEM handle (paper Fig. 2) */

typedef enum {
  PMEMCPY_OK = 0,
  PMEMCPY_ERR_KEY = 1,   /* no such id */
  PMEMCPY_ERR_TYPE = 2,  /* dtype/kind mismatch */
  PMEMCPY_ERR_STATE = 3, /* not mapped / already mapped */
  PMEMCPY_ERR_OTHER = 4,
} pmemcpy_status;

typedef enum {
  PMEMCPY_U8 = 0,
  PMEMCPY_I8,
  PMEMCPY_U16,
  PMEMCPY_I16,
  PMEMCPY_U32,
  PMEMCPY_I32,
  PMEMCPY_U64,
  PMEMCPY_I64,
  PMEMCPY_F32,
  PMEMCPY_F64,
} pmemcpy_dtype;

/* --- node environment ---------------------------------------------------- */

/* Create an emulated node-local PMEM of the given capacity (bytes). */
pmemcpy_node* pmemcpy_node_create(size_t capacity);
void pmemcpy_node_destroy(pmemcpy_node* node);
/* Make a node the process default used by pmemcpy_mmap. */
void pmemcpy_node_set_default(pmemcpy_node* node);

/* --- PMEM handles ---------------------------------------------------------- */

pmemcpy_pmem* pmemcpy_create(void);
void pmemcpy_destroy(pmemcpy_pmem* pmem);
/* Human-readable description of the last failing call on this handle. */
const char* pmemcpy_last_error(const pmemcpy_pmem* pmem);

pmemcpy_status pmemcpy_mmap(pmemcpy_pmem* pmem, const char* filename);
pmemcpy_status pmemcpy_munmap(pmemcpy_pmem* pmem);

/* --- arrays (paper Fig. 2) --------------------------------------------------- */

pmemcpy_status pmemcpy_alloc(pmemcpy_pmem* pmem, const char* id,
                             pmemcpy_dtype dtype, int ndims,
                             const size_t* dims);
pmemcpy_status pmemcpy_store(pmemcpy_pmem* pmem, const char* id,
                             pmemcpy_dtype dtype, const void* data, int ndims,
                             const size_t* offsets, const size_t* dimspp);
pmemcpy_status pmemcpy_load(pmemcpy_pmem* pmem, const char* id,
                            pmemcpy_dtype dtype, void* data, int ndims,
                            const size_t* offsets, const size_t* dimspp);
pmemcpy_status pmemcpy_load_dims(pmemcpy_pmem* pmem, const char* id,
                                 int* ndims, size_t* dims);

/* --- scalars -------------------------------------------------------------------- */

pmemcpy_status pmemcpy_store_f64(pmemcpy_pmem* pmem, const char* id, double v);
pmemcpy_status pmemcpy_load_f64(pmemcpy_pmem* pmem, const char* id, double* v);
pmemcpy_status pmemcpy_store_i64(pmemcpy_pmem* pmem, const char* id,
                                 int64_t v);
pmemcpy_status pmemcpy_load_i64(pmemcpy_pmem* pmem, const char* id,
                                int64_t* v);
pmemcpy_status pmemcpy_store_bytes(pmemcpy_pmem* pmem, const char* id,
                                   const void* data, size_t len);
/* Query the byte length of a stored blob (for sizing the load buffer). */
pmemcpy_status pmemcpy_bytes_size(pmemcpy_pmem* pmem, const char* id,
                                  size_t* len);
pmemcpy_status pmemcpy_load_bytes(pmemcpy_pmem* pmem, const char* id,
                                  void* data, size_t len);

/* --- namespace --------------------------------------------------------------------- */

int pmemcpy_exists(pmemcpy_pmem* pmem, const char* id);
pmemcpy_status pmemcpy_remove(pmemcpy_pmem* pmem, const char* id);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* PMEMCPY_PMEMCPY_H */
