// EXT4-DAX-like filesystem over the emulated PMEM device.
//
// Two access paths, mirroring the paper's distinction:
//   * POSIX path (open/pread/pwrite/fsync) — every call pays a kernel
//     crossing and a kernel-buffer copy on top of the device transfer.  The
//     baseline I/O libraries (miniADIOS/miniNetCDF/miniPNetCDF) use this.
//   * DAX path (map()) — load/store straight against device memory with no
//     kernel crossing and no copy; optionally with MAP_SYNC semantics, which
//     charges a synchronous allocation fault per first-touched page.
//     pMEMCPY's hierarchical layout uses this.
//
// On-device layout: superblock, block bitmap, fixed inode table, data blocks.
// Files are extent-based (4 inline extents + chained indirect extent blocks),
// directories are files holding (inode, name) records.  Metadata updates are
// persisted write-through so a device image can be re-mounted; full crash
// journaling is out of scope (the object store, not the filesystem, provides
// transactional guarantees in this system).
#pragma once

#include <pmemcpy/pmem/device.hpp>

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pmemcpy::fs {

struct FsError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

inline constexpr std::size_t kBlockSize = 4096;

/// Inode number; 0 is invalid, 1 is the root directory.
using Ino = std::uint32_t;

enum class OpenMode {
  kRead,        ///< must exist
  kWrite,       ///< create if missing, keep contents
  kTruncate,    ///< create if missing, drop contents
};

class FileSystem;

/// An open file.  Cheap value type (inode number + fs pointer).
class File {
 public:
  File() = default;
  [[nodiscard]] bool valid() const noexcept { return fs_ != nullptr; }
  [[nodiscard]] Ino ino() const noexcept { return ino_; }

 private:
  friend class FileSystem;
  File(FileSystem* fs, Ino ino) : fs_(fs), ino_(ino) {}
  FileSystem* fs_ = nullptr;
  Ino ino_ = 0;
};

/// DAX mapping of a file: loads/stores run against device memory directly.
class Mapping {
 public:
  /// Store @p len bytes at file offset @p off (zero kernel involvement).
  void store(std::uint64_t off, const void* src, std::size_t len);
  /// Load @p len bytes from file offset @p off.
  void load(std::uint64_t off, void* dst, std::size_t len) const;
  /// Flush + fence the given file range: one CLWB pass over every extent
  /// run, then a single fence (not a fence per run).
  void persist(std::uint64_t off, std::size_t len);
  /// Persistency-checker annotation: declare the file range as becoming
  /// reachable/visible (must be flushed + fenced by now).  No-op without an
  /// attached checker.
  void check_publish(std::uint64_t off, std::size_t len);
  /// Zero-copy span when [off, off+len) is physically contiguous; throws
  /// FsError otherwise (callers fall back to store()/load()).  Uncharged —
  /// account access through charge_load()/store().
  [[nodiscard]] std::span<std::byte> span(std::uint64_t off, std::size_t len);
  /// Charged, crash-tracked writable span over [off, off+len) when the
  /// range is physically contiguous; throws FsError otherwise (callers
  /// fall back to streaming store()s).  The write is announced
  /// (note_write) and charged once up front — the zero-copy reservation
  /// primitive of the reserve-then-serialize contract (DESIGN.md §12),
  /// exactly like Pool::direct_write_span.  Persisting the filled span
  /// stays the caller's job.
  [[nodiscard]] std::span<std::byte> direct_write_span(std::uint64_t off,
                                                       std::size_t len);
  /// Media-checked read-only span over [off, off+len) when the range is
  /// physically contiguous; throws FsError otherwise (callers fall back to
  /// a charged DRAM bounce through load()) and DeviceError when the range
  /// sits on injected-bad media — the zero-copy consumption primitive of
  /// the read path (DESIGN.md §13), symmetric to direct_write_span.
  /// Account the bytes actually consumed through charge_load(): callers
  /// often decode only a slice of the mapped blob.
  [[nodiscard]] std::span<const std::byte> direct_read_span(
      std::uint64_t off, std::size_t len) const;
  /// Account a zero-copy read of @p bytes through this mapping.
  void charge_load(std::size_t bytes) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool map_sync() const noexcept { return map_sync_; }

 private:
  friend class FileSystem;
  /// (file-offset, device-offset, length) runs, sorted by file offset.
  struct Run {
    std::uint64_t file_off;
    std::uint64_t dev_off;
    std::uint64_t len;
  };
  /// Visit the runs overlapping [off, off+len).
  template <typename Fn>
  void for_runs(std::uint64_t off, std::size_t len, Fn&& fn) const;

  FileSystem* fs_ = nullptr;
  std::uint64_t size_ = 0;
  bool map_sync_ = false;
  std::vector<Run> runs_;
};

class FileSystem {
 public:
  /// Create a fresh filesystem over device bytes [base, base+size).
  static FileSystem format(pmem::Device& dev, std::size_t base,
                           std::size_t size);
  /// Mount an existing filesystem image.
  static FileSystem mount(pmem::Device& dev, std::size_t base);

  FileSystem(FileSystem&&) noexcept = default;
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;
  FileSystem& operator=(FileSystem&&) = delete;

  [[nodiscard]] pmem::Device& device() noexcept { return *dev_; }

  // --- namespace ---------------------------------------------------------

  void mkdir(const std::string& path);
  /// mkdir -p.
  void mkdirs(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path);
  [[nodiscard]] bool is_dir(const std::string& path);
  /// Remove a file or empty directory.
  void remove(const std::string& path);
  /// Atomically move a file to @p to.  With @p replace, an existing target
  /// file is superseded; without it, an existing target wins and @p from is
  /// removed instead (returns false).
  bool rename(const std::string& from, const std::string& to,
              bool replace = true);
  /// Names in a directory (unsorted).
  [[nodiscard]] std::vector<std::string> list(const std::string& path);

  // --- POSIX-style access (charged: syscall + kernel copy + device) --------

  [[nodiscard]] File open(const std::string& path, OpenMode mode);
  std::size_t pwrite(File f, const void* buf, std::size_t len,
                     std::uint64_t off);
  std::size_t pread(File f, void* buf, std::size_t len, std::uint64_t off);
  /// Extend/shrink; extending allocates blocks without zeroing (fallocate).
  void truncate(File f, std::uint64_t size);
  void fsync(File f);
  [[nodiscard]] std::uint64_t size(File f);
  [[nodiscard]] std::uint64_t size(const std::string& path);

  // --- DAX access ------------------------------------------------------------

  /// Map a file for direct access.  The whole current size is mapped.
  [[nodiscard]] Mapping map(File f, bool map_sync = false);
  /// Create (or truncate) a file of @p sz bytes and map it — the pMEMCPY
  /// "mmap a fresh region" fast path.
  [[nodiscard]] Mapping create_mapped(const std::string& path, std::uint64_t sz,
                                      bool map_sync = false);

  // --- stats ------------------------------------------------------------------

  [[nodiscard]] std::uint64_t free_blocks() const;
  [[nodiscard]] std::uint64_t total_blocks() const;

 private:
  friend class Mapping;
  struct Layout;
  struct Inode;

  FileSystem(pmem::Device& dev, std::size_t base);

  [[nodiscard]] Inode read_inode(Ino ino) const;
  void write_inode(Ino ino, const Inode& inode);
  [[nodiscard]] Ino alloc_inode(std::uint32_t type);
  void free_inode(Ino ino);

  /// Allocate @p nblocks, preferring contiguity; returns extents.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  alloc_blocks(std::uint64_t nblocks);
  void free_blocks_range(std::uint64_t start, std::uint64_t n);

  /// Ensure the file owns blocks covering [0, size); grows only.
  void ensure_capacity(Ino ino, std::uint64_t size);
  /// Gather the (file_off, dev_off, len) runs of a file's first @p size bytes.
  [[nodiscard]] std::vector<Mapping::Run> gather_runs(Ino ino,
                                                      std::uint64_t size) const;
  /// Append an extent to an inode's extent list (inline or indirect chain).
  void append_extent(Inode& inode, Ino ino, std::uint64_t start,
                     std::uint64_t n);
  /// Detach every block run from the inode (zeroing its extent fields)
  /// WITHOUT freeing them; crash-ordering requires persisting the detached
  /// inode before free_runs() returns the blocks to the allocator.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  detach_extents(Inode& inode);
  void free_runs(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& runs);
  /// detach_extents + persist the detached inode + free, in that order.
  void drop_extents(Inode& inode, Ino ino);
  /// Flush + fence the device lines backing file range [off, off+len).
  void persist_file_range(Ino ino, std::uint64_t off, std::uint64_t len);

  [[nodiscard]] Ino resolve(const std::string& path, bool want_parent,
                            std::string* leaf) const;
  [[nodiscard]] Ino dir_lookup(Ino dir, std::string_view name) const;
  void dir_add(Ino dir, std::string_view name, Ino child);
  void dir_remove(Ino dir, std::string_view name);
  [[nodiscard]] std::vector<std::pair<std::string, Ino>> dir_entries(
      Ino dir) const;
  void dir_write_entries(
      Ino dir, const std::vector<std::pair<std::string, Ino>>& entries);

  /// Raw (uncharged-copy) file data IO used by directory internals; charges
  /// device costs only.
  void data_write(Ino ino, const void* buf, std::size_t len, std::uint64_t off);
  void data_read(Ino ino, void* buf, std::size_t len, std::uint64_t off) const;

  pmem::Device* dev_;
  std::size_t base_;
  std::uint64_t total_blocks_ = 0;
  std::uint64_t inode_count_ = 0;
  std::uint64_t bitmap_off_ = 0;  // device offsets
  std::uint64_t itable_off_ = 0;
  std::uint64_t data_off_ = 0;

  mutable std::unique_ptr<std::recursive_mutex> mu_ =
      std::make_unique<std::recursive_mutex>();
  /// DRAM cache of the block bitmap (write-through to the device).
  std::vector<bool> bitmap_cache_;
  std::uint64_t free_blocks_cache_ = 0;
  /// File ranges written through the POSIX path since the last fsync(),
  /// per inode (DRAM bookkeeping, like the kernel's dirty-page tracking).
  /// fsync() flushes exactly these and pays one fence — previously it
  /// fenced without flushing anything, which left pwrite data volatile
  /// (the persist checker flags such fences as "empty").
  std::unordered_map<Ino, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      dirty_;
};

}  // namespace pmemcpy::fs
