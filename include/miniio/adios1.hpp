// miniADIOS1 — an ADIOS-1-flavoured API facade over the miniADIOS BP
// engine, sufficient to run the paper's Figure 5 listing: adios_init with a
// config that defines array variables in terms of scalar variables,
// adios_open/adios_write/adios_close, adios_finalize.
//
// The paper notes "there is a separate ADIOS config file that defines 'A'
// in terms of count, off, and dimsf"; here the config is passed as a spec
// string of the same shape, e.g. "A=dimsf/offset/count" — array variable A
// is 1-D with global extent, local offset and local count taken from the
// scalars of those names written before it (multi-dimensional:
// "V=g0,g1/o0,o1/c0,c1").
#pragma once

#include <miniio/miniio.hpp>

#include <cstdint>

namespace miniadios1 {

/// Parse the config and remember the node; call once before adios_open.
int adios_init(const char* config_spec, pmemcpy::PmemNode& node);
/// Drop the global context (per the ADIOS API, takes the rank).
int adios_finalize(int rank);

/// Open a write ("w") or read ("r") stream; fills @p handle.
int adios_open(std::int64_t* handle, const char* group_name, const char* path,
               const char* mode, pmemcpy::par::Comm& comm);
/// Write a scalar (size_t) or a configured array variable.
int adios_write(std::int64_t handle, const char* name, const void* data);
/// Read a configured array variable using the scalars written so far for
/// its offsets/counts (read streams only).
int adios_read(std::int64_t handle, const char* name, void* data);
/// Flush and close the stream.
int adios_close(std::int64_t handle);

}  // namespace miniadios1
