// miniio — from-scratch reproductions of the parallel I/O libraries the
// paper compares pMEMCPY against.  Each baseline reproduces the
// *architectural* behaviour the paper attributes its performance to:
//
//   * miniADIOS   — BP-style log format: each process serializes its own
//     subarrays into a DRAM buffer (one staging copy) and writes them at its
//     exclusive offset of a shared file via POSIX (kernel copy + device).
//     No inter-process data movement; a gathered footer index describes the
//     pieces.  ("ADIOS stores data in the same format as it was produced")
//   * miniPNetCDF — contiguous global layout: the variable is a single
//     row-major linearisation in the file, so writes and reads require a
//     data *shuffle*: local rows are packed per destination aggregator,
//     exchanged with alltoallv, assembled into file stripes and written via
//     POSIX two-phase collective I/O.
//   * miniNetCDF4 — the same contiguous engine plus HDF5-style overheads:
//     an extra internal staging pass per stripe, and (unless nofill — the
//     paper calls nc_def_var_fill(NC_NOFILL)) variables are pre-filled at
//     definition time.
//
// All baselines store to the node's PMEM through the filesystem's POSIX
// path — exactly the stack the paper says wastes PMEM's potential.
//
// Only double-precision variables are supported (the paper's workload).
#pragma once

#include <pmemcpy/core/hyperslab.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/par/comm.hpp>

#include <memory>
#include <string>

namespace miniio {

using pmemcpy::Box;
using pmemcpy::Dimensions;

enum class Library { kAdios, kNetcdf4, kPnetcdf };

[[nodiscard]] std::string to_string(Library lib);

struct Options {
  /// NetCDF4 only: suppress fill-value initialisation of defined variables
  /// (the paper enables NC_NOFILL "to prevent... significant overhead").
  bool nofill = true;
};

/// Collective writer: every rank of the communicator must call every method
/// in the same order.
class Writer {
 public:
  virtual ~Writer() = default;
  /// Write this rank's @p local box of the @p global array.
  virtual void write(const std::string& name, const double* data,
                     const Box& local, const Dimensions& global) = 0;
  /// HDF5-style chunked storage for variables defined after this call
  /// (empty = contiguous).  Engines without chunking ignore it.
  virtual void set_chunk(const Dimensions& chunk_dims) { (void)chunk_dims; }
  /// Flush everything and write metadata; collective.
  virtual void close() = 0;
};

/// Collective reader.
class Reader {
 public:
  virtual ~Reader() = default;
  /// Read this rank's @p local box of variable @p name.
  virtual void read(const std::string& name, double* data,
                    const Box& local) = 0;
  /// Global dimensions of a variable.
  [[nodiscard]] virtual Dimensions dims(const std::string& name) = 0;
  virtual void close() = 0;
};

[[nodiscard]] std::unique_ptr<Writer> open_writer(
    Library lib, pmemcpy::PmemNode& node, const std::string& path,
    pmemcpy::par::Comm& comm, Options opts = {});

[[nodiscard]] std::unique_ptr<Reader> open_reader(
    Library lib, pmemcpy::PmemNode& node, const std::string& path,
    pmemcpy::par::Comm& comm, Options opts = {});

}  // namespace miniio
