// miniHDF5 — an HDF5-flavoured API facade over the contiguous baseline
// engine, sufficient to run the paper's Figure 4 listing nearly verbatim:
// property lists, dataspaces, datasets, hyperslab selection, collective
// write/read.  Exists so the API-complexity comparison (paper §3) can be
// *executed*, not just token-counted: the same program text drives a real
// storage path with HDF5's characteristic call shape.
//
// Scope: double-precision datasets (H5T_NATIVE_DOUBLE), contiguous layout,
// H5S_SELECT_SET hyperslabs.  A file handle is either write-mode (created
// with H5F_ACC_TRUNC) or read-mode (opened with H5F_ACC_RDONLY).
#pragma once

#include <miniio/miniio.hpp>

#include <cstdint>

namespace minihdf5 {

using hid_t = std::int64_t;
using herr_t = int;
using hsize_t = std::size_t;

inline constexpr hid_t H5P_DEFAULT = 0;
inline constexpr hid_t H5_INVALID = -1;

enum h5_acc_flags : unsigned { H5F_ACC_TRUNC = 1, H5F_ACC_RDONLY = 2 };
enum h5_select_op : int { H5S_SELECT_SET = 0 };
enum h5_plist_class : int {
  H5P_FILE_ACCESS = 1,
  H5P_DATASET_XFER = 2,
  H5P_DATASET_CREATE = 3,
};
enum h5_type : int { H5T_NATIVE_DOUBLE = 1 };

// --- property lists ----------------------------------------------------------

hid_t H5Pcreate(h5_plist_class cls);
/// Attach the communicator + node (stands in for H5Pset_fapl_mpio's
/// MPI_Comm/MPI_Info pair).
herr_t H5Pset_fapl_mpio(hid_t plist, pmemcpy::PmemNode& node,
                        pmemcpy::par::Comm& comm);
/// Chunked dataset layout (paper §2.1): datasets created with this dcpl
/// store fixed-size chunks instead of one global linearisation.
herr_t H5Pset_chunk(hid_t dcpl, int ndims, const hsize_t* dims);
herr_t H5Pclose(hid_t plist);

// --- files ----------------------------------------------------------------------

hid_t H5Fcreate(const char* path, unsigned flags, hid_t fcpl, hid_t fapl);
hid_t H5Fopen(const char* path, unsigned flags, hid_t fapl);
herr_t H5Fclose(hid_t file);

// --- dataspaces --------------------------------------------------------------------

hid_t H5Screate_simple(int ndims, const hsize_t* dims, const hsize_t* maxdims);
herr_t H5Sselect_hyperslab(hid_t space, h5_select_op op, const hsize_t* start,
                           const hsize_t* stride, const hsize_t* count,
                           const hsize_t* block);
herr_t H5Sclose(hid_t space);

// --- datasets -----------------------------------------------------------------------

hid_t H5Dcreate(hid_t file, const char* name, h5_type dtype, hid_t filespace,
                hid_t lcpl, hid_t dcpl, hid_t dapl);
hid_t H5Dopen(hid_t file, const char* name, hid_t dapl);
hid_t H5Dget_space(hid_t dset);
herr_t H5Dwrite(hid_t dset, h5_type dtype, hid_t memspace, hid_t filespace,
                hid_t xfer_plist, const void* buf);
herr_t H5Dread(hid_t dset, h5_type dtype, hid_t memspace, hid_t filespace,
               hid_t xfer_plist, void* buf);
herr_t H5Dclose(hid_t dset);

/// Test-support: number of live handles (to assert close() discipline).
std::size_t h5_live_handles();

}  // namespace minihdf5
