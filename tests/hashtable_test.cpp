// Tests for the persistent hashtable with chaining.
#include <pmemcpy/obj/hashtable.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

namespace {

using pmemcpy::obj::HashTable;
using pmemcpy::obj::Pool;
using pmemcpy::pmem::Device;

constexpr std::size_t kPool = 32ull << 20;

struct HashTableTest : ::testing::Test {
  HashTableTest()
      : dev(kPool),
        pool(Pool::create(dev, 0, kPool)),
        table(HashTable::create(pool, 64)) {}

  void put_str(const std::string& key, const std::string& value,
               std::uint64_t meta = 0) {
    table.put(key, value.data(), value.size(), meta);
  }
  std::string get_str(const std::string& key) {
    auto ref = table.find(key);
    if (!ref) return "<missing>";
    std::string out(ref->val_size, '\0');
    table.read_value(*ref, out.data());
    return out;
  }

  Device dev;
  Pool pool;
  HashTable table;
};

TEST_F(HashTableTest, PutGet) {
  put_str("alpha", "one");
  put_str("beta", "two");
  EXPECT_EQ(get_str("alpha"), "one");
  EXPECT_EQ(get_str("beta"), "two");
  EXPECT_EQ(table.count(), 2u);
}

TEST_F(HashTableTest, MissingKey) {
  EXPECT_FALSE(table.find("nope").has_value());
}

TEST_F(HashTableTest, EmptyValue) {
  put_str("empty", "");
  auto ref = table.find("empty");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->val_size, 0u);
}

TEST_F(HashTableTest, MetaWordRoundtrips) {
  put_str("k", "v", 0xDEADBEEF);
  EXPECT_EQ(table.find("k")->meta, 0xDEADBEEFu);
}

TEST_F(HashTableTest, ReplaceUpdatesValueAndKeepsCount) {
  put_str("k", "first");
  put_str("k", "second-longer-value");
  EXPECT_EQ(get_str("k"), "second-longer-value");
  EXPECT_EQ(table.count(), 1u);
}

TEST_F(HashTableTest, EraseRemovesAndFreesSpace) {
  const auto before = pool.bytes_in_use();
  put_str("k", std::string(10000, 'x'));
  EXPECT_GT(pool.bytes_in_use(), before);
  EXPECT_TRUE(table.erase("k"));
  EXPECT_FALSE(table.erase("k"));
  EXPECT_EQ(table.count(), 0u);
  EXPECT_EQ(pool.bytes_in_use(), before);
}

TEST_F(HashTableTest, ManyKeysWithCollisions) {
  // 64 buckets, 500 keys: heavy chaining.
  for (int i = 0; i < 500; ++i) {
    put_str("key" + std::to_string(i), "v" + std::to_string(i * 7));
  }
  EXPECT_EQ(table.count(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(get_str("key" + std::to_string(i)), "v" + std::to_string(i * 7));
  }
}

TEST_F(HashTableTest, EraseFromChainMiddle) {
  for (int i = 0; i < 100; ++i) put_str("key" + std::to_string(i), "v");
  EXPECT_TRUE(table.erase("key50"));
  EXPECT_FALSE(table.find("key50").has_value());
  for (int i = 0; i < 100; ++i) {
    if (i == 50) continue;
    EXPECT_TRUE(table.find("key" + std::to_string(i)).has_value()) << i;
  }
}

TEST_F(HashTableTest, ForEachVisitsAll) {
  std::set<std::string> expect;
  for (int i = 0; i < 50; ++i) {
    put_str("k" + std::to_string(i), "v");
    expect.insert("k" + std::to_string(i));
  }
  std::set<std::string> seen;
  table.for_each([&](std::string_view key, const pmemcpy::obj::ValueRef&) {
    seen.insert(std::string(key));
  });
  EXPECT_EQ(seen, expect);
}

TEST_F(HashTableTest, ForEachPrefix) {
  put_str("var#p:0", "a");
  put_str("var#p:1", "b");
  put_str("var#dims", "c");
  put_str("other#p:0", "d");
  std::set<std::string> seen;
  table.for_each_prefix(
      "var#p:", [&](std::string_view key, const pmemcpy::obj::ValueRef&) {
        seen.insert(std::string(key));
      });
  EXPECT_EQ(seen, (std::set<std::string>{"var#p:0", "var#p:1"}));
}

TEST_F(HashTableTest, AutoGrowRehashesUnderLoad) {
  table.set_auto_grow(true);
  const auto before = table.nbuckets();  // 64
  for (int i = 0; i < 600; ++i) {
    put_str("grow" + std::to_string(i), "v");
  }
  EXPECT_GT(table.nbuckets(), before);
  EXPECT_LE(table.count(), table.nbuckets() * 4);
  for (int i = 0; i < 600; ++i) {
    EXPECT_EQ(get_str("grow" + std::to_string(i)), "v") << i;
  }
}

TEST_F(HashTableTest, NoAutoGrowByDefault) {
  for (int i = 0; i < 600; ++i) put_str("g" + std::to_string(i), "v");
  EXPECT_EQ(table.nbuckets(), 64u);
}

TEST_F(HashTableTest, RehashPreservesEntries) {
  for (int i = 0; i < 200; ++i) {
    put_str("k" + std::to_string(i), "value" + std::to_string(i));
  }
  table.rehash(1024);
  EXPECT_EQ(table.nbuckets(), 1024u);
  EXPECT_EQ(table.count(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(get_str("k" + std::to_string(i)), "value" + std::to_string(i));
  }
}

TEST_F(HashTableTest, ReserveWithoutPublishLeaksNothing) {
  const auto before = pool.bytes_in_use();
  {
    auto ins = table.reserve("ghost", 4096);
    auto span = ins.value();
    std::memset(span.data(), 0xAB, span.size());
    // no publish
  }
  EXPECT_EQ(pool.bytes_in_use(), before);
  EXPECT_FALSE(table.find("ghost").has_value());
}

TEST_F(HashTableTest, ReservePublishDirectWrite) {
  auto ins = table.reserve("blob", 8, 5);
  auto span = ins.value();
  const std::uint64_t v = 0x1234567890ABCDEFull;
  std::memcpy(span.data(), &v, 8);
  EXPECT_TRUE(ins.publish());
  auto ref = table.find("blob");
  ASSERT_TRUE(ref.has_value());
  const std::byte* p = table.value_direct(*ref);
  std::uint64_t out = 0;
  std::memcpy(&out, p, 8);
  EXPECT_EQ(out, v);
  EXPECT_EQ(ref->meta, 5u);
}

TEST_F(HashTableTest, OpenExistingTableSeesData) {
  put_str("persisted", "yes");
  pool.set_root(table.header_off());
  HashTable reopened = HashTable::open(pool, pool.root());
  auto ref = reopened.find("persisted");
  ASSERT_TRUE(ref.has_value());
  std::string out(ref->val_size, '\0');
  reopened.read_value(*ref, out.data());
  EXPECT_EQ(out, "yes");
}

TEST_F(HashTableTest, ConcurrentDistinctKeys) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        table.put(key, key.data(), key.size());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string key =
          "t" + std::to_string(t) + "_" + std::to_string(i);
      EXPECT_EQ(get_str(key), key);
    }
  }
}

TEST_F(HashTableTest, ConcurrentSameKeyReplaceStaysConsistent) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const std::string v = "writer" + std::to_string(t);
        table.put("contended", v.data(), v.size());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), 1u);
  const std::string v = get_str("contended");
  EXPECT_EQ(v.substr(0, 6), "writer");
}

TEST(HashTableCrash, UnpublishedInsertInvisibleAfterCrash) {
  Device dev(kPool, /*crash_shadow=*/true);
  Pool pool = Pool::create(dev, 0, kPool);
  {
    HashTable table = HashTable::create(pool, 64);
    pool.set_root(table.header_off());
    table.put("durable", "yes", 3);
    // Reserve + fill but crash before publish.
    auto ins = table.reserve("in-flight", 64);
    auto span = ins.value();
    std::memset(span.data(), 0xCD, span.size());
    dev.simulate_crash();
    // Process died: don't run the Inserter destructor's cleanup semantics —
    // but running it is harmless post-crash since we re-open below.
  }
  Pool reopened = Pool::open(dev, 0);
  HashTable table = HashTable::open(reopened, reopened.root());
  EXPECT_TRUE(table.find("durable").has_value());
  EXPECT_FALSE(table.find("in-flight").has_value());
}

}  // namespace
