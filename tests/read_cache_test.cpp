// Unit tests for the DRAM read cache (DESIGN.md §13) — the properties the
// header promises, pinned directly against core::ReadCache rather than
// through a PMEM handle: strict-LRU eviction keeps the byte budget at or
// under capacity, replacement and invalidation keep the budget exact (the
// fault-matrix fuzzing caught an insert that never credited its bytes, so
// the first invalidation underflowed the budget and the next fill evicted
// from an empty list), and every traffic class lands on its own counter.
#include <pmemcpy/core/read_cache.hpp>
#include <pmemcpy/sim/context.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace {

using pmemcpy::core::ReadCache;
using pmemcpy::trace::Counter;

std::vector<std::byte> bytes_of(std::size_t n, int fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

std::uint64_t ctr(Counter c) { return pmemcpy::trace::counter(c); }

class TraceOnEnv : public ::testing::Environment {
  void SetUp() override { pmemcpy::trace::set_enabled(true); }
  void TearDown() override { pmemcpy::trace::set_enabled(false); }
};
const auto* const kTraceOn =
    ::testing::AddGlobalTestEnvironment(new TraceOnEnv);

TEST(ReadCacheTest, BudgetIsExactAcrossInsertReplaceInvalidate) {
  ReadCache cache(1024);
  cache.insert("a", bytes_of(100, 1), 1);
  cache.insert("b", bytes_of(200, 2), 2);
  EXPECT_EQ(cache.bytes(), 300u);
  EXPECT_EQ(cache.entries(), 2u);

  // Replacement supersedes in place: the old 100 bytes leave the budget.
  cache.insert("a", bytes_of(150, 3), 3);
  EXPECT_EQ(cache.bytes(), 350u);
  EXPECT_EQ(cache.entries(), 2u);

  cache.invalidate("a");
  EXPECT_EQ(cache.bytes(), 200u);
  cache.invalidate("b");
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.entries(), 0u);

  // The regression shape: a fill after invalidations must not evict from
  // an empty list (the budget was underflowing here).
  cache.insert("c", bytes_of(64, 4), 4);
  EXPECT_EQ(cache.bytes(), 64u);
  ASSERT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.find("c")->meta, 4u);
}

TEST(ReadCacheTest, LruEvictionRespectsCapacityAndRecency) {
  const std::uint64_t evict0 = ctr(Counter::kReadCacheEvictions);
  ReadCache cache(300);
  cache.insert("a", bytes_of(100, 1), 1);
  cache.insert("b", bytes_of(100, 2), 2);
  cache.insert("c", bytes_of(100, 3), 3);
  EXPECT_EQ(cache.bytes(), 300u);

  // Touch "a" so "b" is the least recently used, then overflow.
  ASSERT_NE(cache.find("a"), nullptr);
  cache.insert("d", bytes_of(100, 4), 4);
  EXPECT_EQ(cache.bytes(), 300u);
  EXPECT_EQ(cache.find("b"), nullptr) << "LRU entry must be the victim";
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  EXPECT_NE(cache.find("d"), nullptr);
  EXPECT_EQ(ctr(Counter::kReadCacheEvictions) - evict0, 1u);

  // A blob larger than the whole capacity is not cached at all.
  cache.insert("huge", bytes_of(301, 5), 5);
  EXPECT_EQ(cache.find("huge"), nullptr);
  EXPECT_EQ(cache.bytes(), 300u);
}

TEST(ReadCacheTest, CountersTallyEachTrafficClass) {
  ReadCache cache(4096);
  const std::uint64_t hits0 = ctr(Counter::kReadCacheHits);
  const std::uint64_t miss0 = ctr(Counter::kReadCacheMisses);
  const std::uint64_t fill0 = ctr(Counter::kReadCacheFillBytes);
  const std::uint64_t hitb0 = ctr(Counter::kReadCacheHitBytes);
  const std::uint64_t inval0 = ctr(Counter::kReadCacheInvalidations);

  EXPECT_EQ(cache.find("k"), nullptr);
  cache.insert("k", bytes_of(128, 7), 7);
  ASSERT_NE(cache.find("k"), nullptr);
  cache.invalidate("k");
  cache.invalidate("k");  // absent: not an invalidation event

  EXPECT_EQ(ctr(Counter::kReadCacheMisses) - miss0, 1u);
  EXPECT_EQ(ctr(Counter::kReadCacheHits) - hits0, 1u);
  EXPECT_EQ(ctr(Counter::kReadCacheFillBytes) - fill0, 128u);
  EXPECT_EQ(ctr(Counter::kReadCacheHitBytes) - hitb0, 128u);
  EXPECT_EQ(ctr(Counter::kReadCacheInvalidations) - inval0, 1u);

  // clear() drops everything and counts one invalidation per entry.
  cache.insert("x", bytes_of(10, 1), 1);
  cache.insert("y", bytes_of(10, 2), 2);
  const std::uint64_t inval1 = ctr(Counter::kReadCacheInvalidations);
  cache.clear();
  EXPECT_EQ(ctr(Counter::kReadCacheInvalidations) - inval1, 2u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

}  // namespace
