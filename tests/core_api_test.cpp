// End-to-end tests of the public pMEMCPY API (paper Figure 2).
#include <pmemcpy/pmemcpy.hpp>

#include <gtest/gtest.h>

#include <numeric>

namespace {

using pmemcpy::Box;
using pmemcpy::Config;
using pmemcpy::Dimensions;
using pmemcpy::Layout;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

PmemNode::Options small_node() {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  return o;
}

struct Particle {
  double x = 0, y = 0, z = 0;
  std::int32_t species = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x, y, z, species);
  }
  friend bool operator==(const Particle&, const Particle&) = default;
};

class CoreApiTest : public ::testing::TestWithParam<
                        std::tuple<Layout, pmemcpy::serial::SerializerId>> {
 protected:
  CoreApiTest() : node_(small_node()) {}

  Config config() const {
    Config c;
    c.node = &node_;
    c.layout = std::get<0>(GetParam());
    c.serializer = std::get<1>(GetParam());
    return c;
  }

  mutable PmemNode node_;
};

TEST_P(CoreApiTest, ScalarRoundtrip) {
  PMEM pmem{config()};
  pmem.mmap("/scalars");
  const double pi = 3.14159;
  pmem.store("pi", pi);
  pmem.store("answer", std::int32_t{42});
  EXPECT_DOUBLE_EQ(pmem.load<double>("pi"), pi);
  EXPECT_EQ(pmem.load<std::int32_t>("answer"), 42);
  pmem.munmap();
}

TEST_P(CoreApiTest, ScalarOverwrite) {
  PMEM pmem{config()};
  pmem.mmap("/scalars");
  pmem.store("x", std::uint64_t{1});
  pmem.store("x", std::uint64_t{2});
  EXPECT_EQ(pmem.load<std::uint64_t>("x"), 2u);
  pmem.munmap();
}

TEST_P(CoreApiTest, StructRoundtrip) {
  PMEM pmem{config()};
  pmem.mmap("/structs");
  Particle p{1.5, -2.5, 3.5, 7};
  pmem.store("p", p);
  EXPECT_EQ(pmem.load<Particle>("p"), p);
  pmem.munmap();
}

TEST_P(CoreApiTest, VectorRoundtrip) {
  PMEM pmem{config()};
  pmem.mmap("/vectors");
  std::vector<double> v(1000);
  std::iota(v.begin(), v.end(), 0.0);
  pmem.store("v", v);
  EXPECT_EQ(pmem.load<std::vector<double>>("v"), v);
  pmem.munmap();
}

TEST_P(CoreApiTest, Array1DRoundtrip) {
  PMEM pmem{config()};
  pmem.mmap("/arrays");
  const std::size_t dims = 100;
  pmem.alloc<double>("A", 1, &dims);
  std::vector<double> data(100);
  std::iota(data.begin(), data.end(), 0.0);
  const std::size_t off = 0, cnt = 100;
  pmem.store("A", data.data(), 1, &off, &cnt);

  std::vector<double> out(100, -1.0);
  pmem.load("A", out.data(), 1, &off, &cnt);
  EXPECT_EQ(out, data);
  pmem.munmap();
}

TEST_P(CoreApiTest, LoadDims) {
  PMEM pmem{config()};
  pmem.mmap("/dims");
  Dimensions dims{40, 30, 20};
  pmem.alloc<float>("cube", dims);
  EXPECT_EQ(pmem.load_dims("cube"), dims);
  int nd = 0;
  std::size_t raw[8] = {};
  pmem.load_dims("cube", &nd, raw);
  EXPECT_EQ(nd, 3);
  EXPECT_EQ(raw[0], 40u);
  EXPECT_EQ(raw[2], 20u);
  pmem.munmap();
}

TEST_P(CoreApiTest, Array3DPiecesSymmetric) {
  PMEM pmem{config()};
  pmem.mmap("/cube");
  Dimensions global{8, 8, 8};
  pmem.alloc<double>("cube", global);
  // Two pieces: top and bottom halves.
  std::vector<double> top(4 * 8 * 8), bottom(4 * 8 * 8);
  std::iota(top.begin(), top.end(), 0.0);
  std::iota(bottom.begin(), bottom.end(), 1000.0);
  const std::size_t off_top[3] = {0, 0, 0};
  const std::size_t off_bot[3] = {4, 0, 0};
  const std::size_t cnt[3] = {4, 8, 8};
  pmem.store("cube", top.data(), 3, off_top, cnt);
  pmem.store("cube", bottom.data(), 3, off_bot, cnt);

  std::vector<double> out(4 * 8 * 8, -1);
  pmem.load("cube", out.data(), 3, off_bot, cnt);
  EXPECT_EQ(out, bottom);
  pmem.load("cube", out.data(), 3, off_top, cnt);
  EXPECT_EQ(out, top);
  pmem.munmap();
}

TEST_P(CoreApiTest, Array3DNonSymmetricRead) {
  PMEM pmem{config()};
  pmem.mmap("/cube2");
  Dimensions global{8, 8, 8};
  pmem.alloc<double>("c", global);
  std::vector<double> top(4 * 8 * 8), bottom(4 * 8 * 8);
  for (std::size_t i = 0; i < top.size(); ++i) top[i] = double(i);
  for (std::size_t i = 0; i < bottom.size(); ++i) bottom[i] = double(i) + 256;
  const std::size_t off_top[3] = {0, 0, 0};
  const std::size_t off_bot[3] = {4, 0, 0};
  const std::size_t cnt[3] = {4, 8, 8};
  pmem.store("c", top.data(), 3, off_top, cnt);
  pmem.store("c", bottom.data(), 3, off_bot, cnt);

  // Read a slab crossing both pieces: rows 2..5.
  const std::size_t roff[3] = {2, 0, 0};
  const std::size_t rcnt[3] = {4, 8, 8};
  std::vector<double> out(4 * 8 * 8, -1);
  pmem.load("c", out.data(), 3, roff, rcnt);
  // Row-major: global element (i,j,k) = i*64 + j*8 + k.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t jk = 0; jk < 64; ++jk) {
      const std::size_t gi = i + 2;
      const double expect =
          gi < 4 ? double(gi * 64 + jk) : double((gi - 4) * 64 + jk) + 256;
      ASSERT_EQ(out[i * 64 + jk], expect) << "i=" << i << " jk=" << jk;
    }
  }
  pmem.munmap();
}

TEST_P(CoreApiTest, ExistsRemove) {
  PMEM pmem{config()};
  pmem.mmap("/ns");
  EXPECT_FALSE(pmem.exists("gone"));
  pmem.store("x", 1.0);
  EXPECT_TRUE(pmem.exists("x"));
  pmem.remove("x");
  EXPECT_FALSE(pmem.exists("x"));
  EXPECT_THROW(pmem.remove("x"), pmemcpy::KeyError);
  pmem.munmap();
}

TEST_P(CoreApiTest, LoadMissingThrows) {
  PMEM pmem{config()};
  pmem.mmap("/missing");
  EXPECT_THROW((void)pmem.load<double>("nope"), pmemcpy::KeyError);
  EXPECT_THROW(pmem.load_dims("nope"), pmemcpy::KeyError);
  pmem.munmap();
}

TEST_P(CoreApiTest, DTypeMismatchThrows) {
  PMEM pmem{config()};
  pmem.mmap("/types");
  pmem.store("d", 1.0);
  EXPECT_THROW((void)pmem.load<float>("d"), pmemcpy::TypeError);
  pmem.munmap();
}

TEST_P(CoreApiTest, UseBeforeMmapThrows) {
  PMEM pmem{config()};
  EXPECT_THROW(pmem.store("x", 1.0), pmemcpy::StateError);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndSerializers, CoreApiTest,
    ::testing::Combine(
        ::testing::Values(Layout::kHashTable, Layout::kHierarchical),
        ::testing::Values(pmemcpy::serial::SerializerId::kBp4,
                          pmemcpy::serial::SerializerId::kBinary,
                          pmemcpy::serial::SerializerId::kRaw,
                          pmemcpy::serial::SerializerId::kCapnp)),
    [](const auto& info) {
      const auto layout = std::get<0>(info.param);
      const auto ser = std::get<1>(info.param);
      std::string name =
          layout == Layout::kHashTable ? "Table" : "Tree";
      switch (ser) {
        case pmemcpy::serial::SerializerId::kBp4: name += "Bp4"; break;
        case pmemcpy::serial::SerializerId::kBinary: name += "Binary"; break;
        case pmemcpy::serial::SerializerId::kRaw: name += "Raw"; break;
        case pmemcpy::serial::SerializerId::kCapnp: name += "Capnp"; break;
      }
      return name;
    });

TEST(CoreApiParallel, CollectiveWriteRead) {
  PmemNode node(small_node());
  constexpr int kRanks = 4;
  constexpr std::size_t kPer = 100;
  auto result = pmemcpy::par::Runtime::run(kRanks, [&](pmemcpy::par::Comm& comm) {
    Config cfg;
    cfg.node = &node;
    PMEM pmem{cfg};
    pmem.mmap("/parallel.pmem", comm);
    const std::size_t dimsf = kPer * kRanks;
    pmem.alloc<double>("A", 1, &dimsf);
    std::vector<double> data(kPer);
    for (std::size_t i = 0; i < kPer; ++i) {
      data[i] = double(comm.rank() * 1000 + i);
    }
    const std::size_t off = kPer * static_cast<std::size_t>(comm.rank());
    const std::size_t cnt = kPer;
    pmem.store("A", data.data(), 1, &off, &cnt);
    comm.barrier();
    // Symmetric read-back.
    std::vector<double> out(kPer, -1);
    pmem.load("A", out.data(), 1, &off, &cnt);
    EXPECT_EQ(out, data);
    // Cross-rank read: the next rank's slice.
    const std::size_t noff =
        kPer * static_cast<std::size_t>((comm.rank() + 1) % kRanks);
    pmem.load("A", out.data(), 1, &noff, &cnt);
    EXPECT_EQ(out[0], double(((comm.rank() + 1) % kRanks) * 1000));
    pmem.munmap();
  });
  EXPECT_GT(result.max_time, 0.0);
}

TEST_P(CoreApiTest, ExistsAfterAllocOnly) {
  PMEM pmem{config()};
  pmem.mmap("/alloc-only");
  Dimensions dims{4, 4};
  pmem.alloc<double>("declared", dims);
  EXPECT_TRUE(pmem.exists("declared"));  // dims entry counts
  EXPECT_EQ(pmem.load_dims("declared"), dims);
  pmem.munmap();
}

TEST_P(CoreApiTest, RemoveArrayClearsPiecesAndDims) {
  PMEM pmem{config()};
  pmem.mmap("/rm");
  Dimensions dims{8};
  pmem.alloc<double>("arr", dims);
  std::vector<double> v(4, 1.0);
  const std::size_t off_a = 0, off_b = 4, cnt = 4;
  pmem.store("arr", v.data(), 1, &off_a, &cnt);
  pmem.store("arr", v.data(), 1, &off_b, &cnt);
  pmem.remove("arr");
  EXPECT_FALSE(pmem.exists("arr"));
  EXPECT_THROW(pmem.load_dims("arr"), pmemcpy::KeyError);
  std::vector<double> out(4);
  EXPECT_THROW(pmem.load("arr", out.data(), 1, &off_a, &cnt),
               pmemcpy::KeyError);
  // The id can be reused afterwards.
  pmem.alloc<double>("arr", dims);
  pmem.store("arr", v.data(), 1, &off_a, &cnt);
  pmem.load("arr", out.data(), 1, &off_a, &cnt);
  EXPECT_EQ(out, v);
  pmem.munmap();
}

TEST(CoreApiParallelTree, HierarchicalCollectiveWriteRead) {
  PmemNode node(small_node());
  constexpr int kRanks = 4;
  constexpr std::size_t kPer = 64;
  pmemcpy::par::Runtime::run(kRanks, [&](pmemcpy::par::Comm& comm) {
    Config cfg;
    cfg.node = &node;
    cfg.layout = Layout::kHierarchical;
    PMEM pmem{cfg};
    pmem.mmap("/tree-par.bp", comm);
    const std::size_t dimsf = kPer * kRanks;
    pmem.alloc<double>("grp/A", 1, &dimsf);
    std::vector<double> data(kPer);
    for (std::size_t i = 0; i < kPer; ++i) {
      data[i] = comm.rank() * 10.0 + double(i);
    }
    const std::size_t off = kPer * static_cast<std::size_t>(comm.rank());
    const std::size_t cnt = kPer;
    pmem.store("grp/A", data.data(), 1, &off, &cnt);
    comm.barrier();
    std::vector<double> out(kPer, -1);
    pmem.load("grp/A", out.data(), 1, &off, &cnt);
    EXPECT_EQ(out, data);
    // Whole-array read crosses all ranks' piece files.
    std::vector<double> all(dimsf);
    const std::size_t zero = 0;
    pmem.load("grp/A", all.data(), 1, &zero, &dimsf);
    EXPECT_DOUBLE_EQ(all[kPer * 2], 20.0);
    pmem.munmap();
  });
}

TEST(CoreApiStaging, StagedMatchesDirect) {
  PmemNode node(small_node());
  Config direct;
  direct.node = &node;
  direct.pool_size = 12ull << 20;  // two pools must fit the pool area
  Config staged = direct;
  staged.force_dram_staging = true;

  PMEM a{direct}, b{staged};
  a.mmap("/direct");
  b.mmap("/staged");
  std::vector<double> v(4096);
  std::iota(v.begin(), v.end(), 0.5);
  const std::size_t dims = v.size(), off = 0;
  a.alloc<double>("A", 1, &dims);
  b.alloc<double>("A", 1, &dims);
  a.store("A", v.data(), 1, &off, &dims);
  b.store("A", v.data(), 1, &off, &dims);
  std::vector<double> out(v.size());
  a.load("A", out.data(), 1, &off, &dims);
  EXPECT_EQ(out, v);
  b.load("A", out.data(), 1, &off, &dims);
  EXPECT_EQ(out, v);
  a.munmap();
  b.munmap();
}

TEST_P(CoreApiTest, AttributesRoundtripAndList) {
  PMEM pmem{config()};
  pmem.mmap("/attrs");
  const std::size_t dims = 8, off = 0;
  std::vector<double> v(8, 1.0);
  pmem.alloc<double>("temp", 1, &dims);
  pmem.store("temp", v.data(), 1, &off, &dims);
  pmem.store_attribute("temp", "units", std::string("kelvin"));
  pmem.store_attribute("temp", "scale", 1.5);
  EXPECT_EQ(pmem.load_attribute<std::string>("temp", "units"), "kelvin");
  EXPECT_DOUBLE_EQ(pmem.load_attribute<double>("temp", "scale"), 1.5);
  EXPECT_EQ(pmem.attributes("temp"),
            (std::vector<std::string>{"scale", "units"}));
  EXPECT_EQ(pmem.ids(), (std::vector<std::string>{"temp"}));
  pmem.remove("temp");
  EXPECT_TRUE(pmem.attributes("temp").empty());
  EXPECT_THROW((void)pmem.load_attribute<double>("temp", "scale"),
               pmemcpy::KeyError);
  pmem.munmap();
}

TEST(CoreApiHierarchical, SlashCreatesDirectories) {
  PmemNode node(small_node());
  Config cfg;
  cfg.node = &node;
  cfg.layout = Layout::kHierarchical;
  PMEM pmem{cfg};
  pmem.mmap("/out.bp");
  pmem.store("fields/density", 1.25);
  pmem.store("fields/energy", 2.5);
  EXPECT_TRUE(node.fs().is_dir("/out.bp/fields"));
  EXPECT_DOUBLE_EQ(pmem.load<double>("fields/density"), 1.25);
  pmem.munmap();
}

}  // namespace
