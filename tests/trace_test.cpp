// Golden-trace coverage of pmemcpy::trace (DESIGN.md §9): a fixed serial
// put/get/batch workload must produce the same span tree and counter values
// on every run, both JSON exporters must emit structurally valid JSON in
// the documented schema, and the disabled path must record nothing.
//
// Every test arms tracing explicitly (set_enabled + reset) and restores the
// process-wide state afterwards, so the suite behaves identically under the
// plain Release config and under ci.sh's trace config (PMEMCPY_TRACE=1,
// where tracing is already on when main() starts).
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace {

namespace trace = pmemcpy::trace;
using pmemcpy::Config;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;
using trace::Counter;
using trace::Hist;
using trace::SpanData;

/// Arms tracing for one test and restores the prior state on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = trace::enabled();
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::reset();
    trace::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

PmemNode::Options node_opts() {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  return o;
}

Config make_cfg(PmemNode& node) {
  Config cfg;
  cfg.node = &node;
  cfg.auto_grow_table = false;  // keep the op sequence deterministic
  return cfg;
}

/// The fixed golden workload: one direct put, one get, one 2-entry batch.
void run_golden_workload(PmemNode& node) {
  PMEM p{make_cfg(node)};
  p.mmap("/trace.pool");
  p.store("x", 7);
  EXPECT_EQ(p.load<int>("x"), 7);
  {
    auto b = p.batch();
    p.store("y", std::int64_t{1});
    p.store("z", std::int64_t{2});
    b.commit();
  }
  p.munmap();
}

std::map<std::uint64_t, SpanData> by_id(const std::vector<SpanData>& spans) {
  std::map<std::uint64_t, SpanData> m;
  for (const auto& s : spans) m[s.id] = s;
  return m;
}

const SpanData* first_named(const std::vector<SpanData>& spans,
                            const std::string& name) {
  for (const auto& s : spans) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

std::size_t count_named(const std::vector<SpanData>& spans,
                        const std::string& name) {
  std::size_t n = 0;
  for (const auto& s : spans) n += name == s.name ? 1 : 0;
  return n;
}

/// Minimal structural JSON check: non-empty, balanced braces/brackets
/// outside strings, no trailing garbage.  Not a full parser — enough to
/// catch unquoted names, unterminated strings and comma slips.
void expect_balanced_json(const std::string& js) {
  ASSERT_FALSE(js.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : js) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced close in: " << js.substr(0, 120);
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced JSON";
}

// --- golden span tree -------------------------------------------------------

TEST_F(TraceTest, GoldenWorkloadSpanTree) {
  PmemNode node(node_opts());
  trace::reset();  // node construction (device format) is not part of the gold
  run_golden_workload(node);

  const auto spans = trace::snapshot();
  const auto index = by_id(spans);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(trace::dropped_spans(), 0u);

  // Every span closed cleanly; ids are unique and parents exist.
  for (const auto& s : spans) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    EXPECT_FALSE(s.crashed) << s.name;
    if (s.parent != 0) {
      ASSERT_TRUE(index.count(s.parent)) << s.name << " orphaned";
    }
  }

  // mmap is a root span (nothing encloses the public API call).
  const SpanData* mmap_span = first_named(spans, "core.mmap");
  ASSERT_NE(mmap_span, nullptr);
  EXPECT_EQ(mmap_span->parent, 0u);

  // The direct put nests engine.put and core.serialize under core.put.
  const SpanData* put = first_named(spans, "core.put");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->parent, 0u);
  const SpanData* eput = first_named(spans, "engine.put");
  ASSERT_NE(eput, nullptr);
  EXPECT_EQ(eput->parent, put->id);
  const SpanData* ser = first_named(spans, "core.serialize");
  ASSERT_NE(ser, nullptr);
  EXPECT_EQ(ser->parent, put->id);

  // The get nests engine.get under core.get.
  const SpanData* get = first_named(spans, "core.get");
  ASSERT_NE(get, nullptr);
  const SpanData* eget = first_named(spans, "engine.get");
  ASSERT_NE(eget, nullptr);
  EXPECT_EQ(eget->parent, get->id);

  // The batch: 3 puts total (1 direct + 2 staged), one commit chain
  // core.batch_commit -> engine.batch_commit -> ht.publish_group.
  EXPECT_EQ(count_named(spans, "core.put"), 3u);
  EXPECT_EQ(count_named(spans, "engine.put"), 3u);
  EXPECT_EQ(count_named(spans, "core.batch_commit"), 1u);
  EXPECT_EQ(count_named(spans, "engine.batch_commit"), 1u);
  const SpanData* cbc = first_named(spans, "core.batch_commit");
  const SpanData* ebc = first_named(spans, "engine.batch_commit");
  ASSERT_NE(cbc, nullptr);
  ASSERT_NE(ebc, nullptr);
  EXPECT_EQ(ebc->parent, cbc->id);
  const SpanData* pg = first_named(spans, "ht.publish_group");
  ASSERT_NE(pg, nullptr);
  EXPECT_EQ(pg->parent, ebc->id);

  // Child windows sit inside their parent's window.
  for (const auto& s : spans) {
    if (s.parent == 0) continue;
    const SpanData& par = index.at(s.parent);
    EXPECT_GE(s.start_ns, par.start_ns) << s.name;
    EXPECT_LE(s.end_ns, par.end_ns) << s.name;
  }
}

TEST_F(TraceTest, GoldenWorkloadCounters) {
  PmemNode node(node_opts());
  trace::reset();
  run_golden_workload(node);

  EXPECT_EQ(trace::counter(Counter::kEnginePuts), 3u);
  EXPECT_EQ(trace::counter(Counter::kEngineGets), 1u);
  EXPECT_EQ(trace::counter(Counter::kBatchCommits), 1u);
  EXPECT_EQ(trace::counter(Counter::kCrashes), 0u);
  EXPECT_EQ(trace::counter(Counter::kRecoveries), 0u);
  EXPECT_GT(trace::counter(Counter::kStoreOps), 0u);
  EXPECT_GT(trace::counter(Counter::kFlushOps), 0u);
  EXPECT_GT(trace::counter(Counter::kFenceOps), 0u);
  EXPECT_GT(trace::counter(Counter::kBytesWritten), 0u);
  EXPECT_GT(trace::counter(Counter::kAllocOps), 0u);

  // Zero-copy invariant (DESIGN.md §12): the pMEMCPY put/get path stages
  // nothing in DRAM — every serialized byte lands in (or is read out of)
  // the reserved PMEM spans directly.
  EXPECT_EQ(trace::counter(Counter::kCopyStagedBytes), 0u);
  EXPECT_EQ(trace::counter(Counter::kCopyStagedPuts), 0u);
  EXPECT_GT(trace::counter(Counter::kCopyDirectBytes), 0u);

  const trace::HistData batch = trace::histogram(Hist::kBatchSize);
  EXPECT_EQ(batch.count, 1u);
  EXPECT_EQ(batch.min, 2.0);
  EXPECT_EQ(batch.max, 2.0);
  EXPECT_EQ(batch.sum, 2.0);

  // Determinism: a second identical run on a fresh node doubles nothing —
  // after a reset it reproduces the same counter values exactly.
  const std::uint64_t stores = trace::counter(Counter::kStoreOps);
  const std::uint64_t flushes = trace::counter(Counter::kFlushOps);
  const std::uint64_t fences = trace::counter(Counter::kFenceOps);
  PmemNode node2(node_opts());
  trace::reset();
  run_golden_workload(node2);
  EXPECT_EQ(trace::counter(Counter::kStoreOps), stores);
  EXPECT_EQ(trace::counter(Counter::kFlushOps), flushes);
  EXPECT_EQ(trace::counter(Counter::kFenceOps), fences);
}

// --- exporter schemas -------------------------------------------------------

TEST_F(TraceTest, ChromeJsonSchema) {
  PmemNode node(node_opts());
  trace::reset();
  run_golden_workload(node);

  const std::string js = trace::chrome_json();
  expect_balanced_json(js);
  EXPECT_EQ(js.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(js.substr(js.size() - 2), "]}");
  // Complete events with the mandatory trace_event fields.
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(js.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(js.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(js.find("\"ts\":"), std::string::npos);
  EXPECT_NE(js.find("\"dur\":"), std::string::npos);
  // Span identity rides in args.
  EXPECT_NE(js.find("\"args\":{\"id\":"), std::string::npos);
  EXPECT_NE(js.find("\"name\":\"core.put\""), std::string::npos);

  // Byte-stable: exporting twice yields identical bytes.
  EXPECT_EQ(js, trace::chrome_json());
}

TEST_F(TraceTest, StatsJsonSchema) {
  PmemNode node(node_opts());
  trace::reset();
  run_golden_workload(node);

  const std::string js = trace::stats_json();
  expect_balanced_json(js);
  EXPECT_EQ(js.rfind("{\"counters\":{", 0), 0u);
  EXPECT_NE(js.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(js.find("\"spans\":["), std::string::npos);

  // The counter object uses the shared schema names, in schema order, and
  // carries the same values counter() reports.
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string field = std::string("\"") + trace::counter_name(c) +
                              "\": " + std::to_string(trace::counter(c));
    EXPECT_NE(js.find(field), std::string::npos) << field;
  }
  EXPECT_NE(js.find("\"batch_size\":{\"count\":1"), std::string::npos);
  // Aggregated spans expose count plus total/self time.
  EXPECT_NE(js.find("\"name\":\"core.put\",\"count\":3"), std::string::npos);
  EXPECT_NE(js.find("\"total_ns\":"), std::string::npos);
  EXPECT_NE(js.find("\"self_ns\":"), std::string::npos);
}

TEST_F(TraceTest, ExportToPathWritesBothFiles) {
  PmemNode node(node_opts());
  trace::reset();
  run_golden_workload(node);

  const std::string path =
      ::testing::TempDir() + "/pmemcpy_trace_test_export.json";
  const std::string stats_path = path + ".stats.json";
  std::remove(path.c_str());
  std::remove(stats_path.c_str());
  trace::set_export_path(path);
  EXPECT_EQ(trace::export_path(), path);
  ASSERT_TRUE(trace::export_to_path());
  trace::set_export_path("");

  for (const std::string& f : {path, stats_path}) {
    std::FILE* fp = std::fopen(f.c_str(), "r");
    ASSERT_NE(fp, nullptr) << f;
    char head[2] = {};
    ASSERT_EQ(std::fread(head, 1, 1, fp), 1u) << f;
    EXPECT_EQ(head[0], '{') << f;
    std::fclose(fp);
    std::remove(f.c_str());
  }
}

// --- disabled path and epoch safety -----------------------------------------

TEST_F(TraceTest, DisabledRecordsNothing) {
  trace::set_enabled(false);
  trace::reset();
  PmemNode node(node_opts());
  run_golden_workload(node);
  EXPECT_TRUE(trace::snapshot().empty());
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    EXPECT_EQ(trace::counter(static_cast<Counter>(i)), 0u);
  }
  EXPECT_EQ(trace::histogram(Hist::kBatchSize).count, 0u);
}

TEST_F(TraceTest, SpanClosingAfterResetIsIgnored) {
  {
    trace::Span outer("outer");
    trace::reset();  // new epoch: outer's record is gone
  }                  // outer closes here — must be a no-op
  EXPECT_TRUE(trace::snapshot().empty());
  {
    trace::Span fresh("fresh");
  }
  const auto spans = trace::snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "fresh");
}

TEST_F(TraceTest, CountersAccumulateAndResetClears) {
  trace::count(Counter::kEnginePuts, 3);
  trace::count(Counter::kEnginePuts);
  EXPECT_EQ(trace::counter(Counter::kEnginePuts), 4u);
  trace::observe(Hist::kAllocSize, 10.0);
  trace::observe(Hist::kAllocSize, 30.0);
  const auto h = trace::histogram(Hist::kAllocSize);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 40.0);
  EXPECT_EQ(h.min, 10.0);
  EXPECT_EQ(h.max, 30.0);
  trace::reset();
  EXPECT_EQ(trace::counter(Counter::kEnginePuts), 0u);
  EXPECT_EQ(trace::histogram(Hist::kAllocSize).count, 0u);
}

}  // namespace
