// Fault-matrix sweep for the self-healing data path (DESIGN.md §10).
//
// The matrix drives the public PMEM API under seed-deterministic injected
// faults — transient read/write/persist faults that succeed on retry, and
// sticky escalations that turn a cacheline range into permanently failing
// media — and asserts the two invariants the tentpole promises:
//
//   * zero acknowledged-put loss: every store() that returned reads back
//     byte-exact, under every seeded fault plan, including across a crash
//     scheduled in the middle of repair();
//   * zero persistency violations: the attached order checker stays clean
//     while healing retries, quarantines and relocations run.
//
// Alongside the sweep, targeted tests pin down each layer's contract:
// device retry/backoff accounting, quarantine-table capacity + persistence
// across remount, allocator avoidance of quarantined space, repair()
// relocation + idempotence, typed damaged-key errors, degraded read-only
// mode, and collective health agreement.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/par/comm.hpp>
#include <pmemcpy/pmem/device.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace {

using pmemcpy::ft::DegradedError;
using pmemcpy::ft::ErrorCode;
using pmemcpy::ft::Health;
using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::DeviceError;
using pmemcpy::pmem::FaultPlan;
using pmemcpy::trace::Counter;

constexpr std::size_t kNodeCapacity = 8ull << 20;

/// The ft.* counters the matrix asserts on only tally while tracing is
/// enabled; arm it for the whole binary (counters are read as deltas).
class TraceOnEnv : public ::testing::Environment {
  void SetUp() override { pmemcpy::trace::set_enabled(true); }
  void TearDown() override { pmemcpy::trace::set_enabled(false); }
};
const auto* const kTraceOn =
    ::testing::AddGlobalTestEnvironment(new TraceOnEnv);

pmemcpy::PmemNode::Options node_opts() {
  pmemcpy::PmemNode::Options o;
  o.capacity = kNodeCapacity;
  o.pool_fraction = 0.5;
  o.crash_shadow = true;  // the crash-in-repair sweep needs line shadows
  return o;
}

pmemcpy::Config make_cfg(pmemcpy::PmemNode& node) {
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.auto_grow_table = false;  // deterministic op sequences
  return cfg;
}

std::uint64_t ctr(Counter c) { return pmemcpy::trace::counter(c); }

/// Device-absolute offset (and size) of @p key's blob, via the raw-entry
/// walk: the zero-copy span points straight into device memory.
std::uint64_t blob_dev_off(pmemcpy::PMEM& p, pmemcpy::pmem::Device& dev,
                           const std::string& key,
                           std::size_t* size_out = nullptr) {
  std::uint64_t off = 0;
  p.for_each_raw([&](const std::string& k, std::span<const std::byte> blob,
                     std::uint64_t) {
    if (k != key) return;
    off = static_cast<std::uint64_t>(blob.data() - dev.raw());
    if (size_out != nullptr) *size_out = blob.size();
  });
  EXPECT_NE(off, 0u) << "no raw entry named " << key;
  return off;
}

// ---------------------------------------------------------------------------
// Transient faults: retried to success, charged, deterministic
// ---------------------------------------------------------------------------

struct TransientTallies {
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
};

TransientTallies run_transient_workload(std::uint64_t seed) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  dev.enable_checker();
  const std::uint64_t faults0 = ctr(Counter::kFtTransientFaults);
  const std::uint64_t retries0 = ctr(Counter::kFtRetries);
  const double backoff0 = pmemcpy::sim::ctx().charged(
      pmemcpy::sim::Charge::kRetryBackoff);

  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("ft.transient");
  FaultPlan plan;
  plan.transient_read_rate = 0.02;
  plan.transient_write_rate = 0.02;
  plan.transient_persist_rate = 0.02;
  plan.fault_seed = seed;
  dev.set_fault_plan(plan);

  for (int i = 0; i < 50; ++i) {
    p.store("k" + std::to_string(i), i * 7);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.load<int>("k" + std::to_string(i)), i * 7);
  }
  EXPECT_EQ(p.health(), Health::kHealthy);
  const auto scrubbed = p.scrub();
  EXPECT_TRUE(scrubbed.ok());

  TransientTallies t;
  t.faults = ctr(Counter::kFtTransientFaults) - faults0;
  t.retries = ctr(Counter::kFtRetries) - retries0;
  // Faults really fired, every one was retried to success, and the backoff
  // was charged to the simulated clock like any other cost.
  EXPECT_GT(t.faults, 0u);
  EXPECT_GT(t.retries, 0u);
  EXPECT_GT(pmemcpy::sim::ctx().charged(pmemcpy::sim::Charge::kRetryBackoff),
            backoff0);

  p.munmap();
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
  return t;
}

TEST(FaultMatrix, TransientFaultsRetryToSuccess) {
  (void)run_transient_workload(0xAB5EEDull);
}

TEST(FaultMatrix, FaultScheduleIsSeedDeterministic) {
  const TransientTallies a = run_transient_workload(0xAB5EEDull);
  const TransientTallies b = run_transient_workload(0xAB5EEDull);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.retries, b.retries);
  // A different seed draws a different (deterministic) schedule.
  const TransientTallies c = run_transient_workload(0xC0FFEEull);
  EXPECT_NE(a.faults, c.faults);
}

TEST(FaultMatrix, DeviceRetryPolicyBoundsAttempts) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::ft::RetryPolicy pol;
  pol.max_attempts = 1;  // no second chances
  dev.set_retry_policy(pol);
  FaultPlan plan;
  plan.transient_write_rate = 1.0;  // every store attempt faults
  plan.fault_seed = 7;
  dev.set_fault_plan(plan);
  std::uint32_t v = 42;
  try {
    dev.write(0, &v, sizeof(v));
    FAIL() << "write succeeded despite rate-1.0 faults and no retries";
  } catch (const DeviceError& e) {
    EXPECT_EQ(e.kind, DeviceError::Kind::kTransient);
  }
}

// ---------------------------------------------------------------------------
// Sticky-fault sweep: quarantine + heal, zero acknowledged loss per seed
// ---------------------------------------------------------------------------

void run_sticky_plan(std::uint64_t seed) {
  SCOPED_TRACE("sticky plan seed " + std::to_string(seed));
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  dev.enable_checker();

  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("ft.sticky");
  FaultPlan plan;
  plan.transient_write_rate = 0.01;
  plan.transient_persist_rate = 0.01;
  plan.sticky_rate = 0.5;  // half the faults escalate to dead media
  plan.fault_seed = seed;
  dev.set_fault_plan(plan);

  // Acknowledged = store() returned.  Healing may degrade the handle when a
  // plan is vicious enough; from then on writes must refuse up front.
  std::map<std::string, std::vector<int>> acked;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "s" + std::to_string(i);
    std::vector<int> val(24, i * 3 + 1);
    try {
      p.store(key, val);
      acked[key] = std::move(val);
    } catch (const DegradedError&) {
      EXPECT_EQ(p.health(), Health::kDegraded);
      break;
    }
  }

  // Zero acknowledged-put loss: every acknowledged key reads back exact,
  // even with its bytes sitting on (readable) sticky-bad media.
  for (const auto& [key, val] : acked) {
    EXPECT_EQ(p.load<std::vector<int>>(key), val) << key;
  }
  const auto scrubbed = p.scrub();
  EXPECT_TRUE(scrubbed.ok());

  if (p.health() == Health::kDegraded) {
    EXPECT_FALSE(p.health_status().is_ok());
    EXPECT_THROW(p.store("post-degrade", 1), DegradedError);
  }

  p.munmap();
  // Healing must not bend persistency ordering: unwound attempts, the
  // quarantine appends and relocated publishes all stay violation-free.
  const auto chk = dev.checker()->take_report();
  EXPECT_EQ(chk.correctness_violations, 0u) << chk.to_string();

  // The quarantine table the run built is structurally sound.
  const auto pool = node.open_pool("ft.sticky");
  const auto report = pool->check();
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? std::string()
                                   : report.issues.front());
}

TEST(FaultMatrix, StickySweepHealsEverySeededPlan) {
  const std::uint64_t quar0 = ctr(Counter::kFtQuarantines);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    run_sticky_plan(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Across the sweep at least one plan escalated and was quarantined (each
  // individual seed draws its own deterministic schedule).
  EXPECT_GT(ctr(Counter::kFtQuarantines), quar0);
}

// ---------------------------------------------------------------------------
// Quarantine table: capacity, dedupe, persistence, allocator avoidance
// ---------------------------------------------------------------------------

TEST(FaultMatrix, QuarantineTableCapacityAndPersistence) {
  pmemcpy::PmemNode node(node_opts());
  auto pool = node.create_pool("quar.pool", 2ull << 20);
  const std::uint64_t base_off = 1ull << 20;  // inside the (empty) heap

  for (std::size_t i = 0; i < pmemcpy::obj::Pool::kQuarantineCapacity; ++i) {
    const auto st = pool->quarantine(base_off + i * 128, 64);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }
  // Full: a new range is refused with the typed code...
  const auto full = pool->quarantine(base_off / 2, 64);
  EXPECT_EQ(full.code(), ErrorCode::kQuarantineFull);
  // ...but re-quarantining a covered range stays idempotent-ok.
  EXPECT_TRUE(pool->quarantine(base_off, 64).is_ok());
  EXPECT_TRUE(pool->is_quarantined(base_off, 1));
  EXPECT_FALSE(pool->is_quarantined(base_off + 64, 1));

  // The table is persistent state: it survives a remount + reopen intact.
  pool.reset();
  node.remount();
  pool = node.open_pool("quar.pool");
  EXPECT_EQ(pool->quarantined().size(),
            pmemcpy::obj::Pool::kQuarantineCapacity);
  EXPECT_TRUE(pool->is_quarantined(base_off, 1));
  const auto report = pool->check();
  EXPECT_TRUE(report.ok());
}

TEST(FaultMatrix, AllocatorNeverHandsOutQuarantinedSpace) {
  pmemcpy::PmemNode node(node_opts());
  auto pool = node.create_pool("avoid.pool", 2ull << 20);

  // Free-list path: a quarantined free chunk is skipped, not reused.
  const auto a = pool->alloc(64);
  const auto b = pool->alloc(64);
  pool->free(b);
  ASSERT_TRUE(pool->quarantine(b - 16, 64 + 16).is_ok());
  const auto c = pool->alloc(64);
  EXPECT_NE(c, b);
  EXPECT_FALSE(pool->is_quarantined(c - 16, 64 + 16));

  // Arena path: quarantine a stretch just past the bump pointer and verify
  // fresh allocations hop it (leaving checksummed filler the verifier
  // accepts) instead of landing on it.
  const auto probe = pool->alloc(64);
  ASSERT_TRUE(pool->quarantine(probe + 64, 640).is_ok());
  for (int i = 0; i < 20; ++i) {
    const auto off = pool->alloc(64);
    EXPECT_FALSE(pool->is_quarantined(off - 16, 64 + 16)) << off;
    pool->set<std::uint64_t>(off, 0xD00Dull + static_cast<std::uint64_t>(i));
  }
  (void)a;
  const auto report = pool->check();
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? std::string()
                                   : report.issues.front());
}

// ---------------------------------------------------------------------------
// repair(): relocation off failing media, idempotence, crash safety
// ---------------------------------------------------------------------------

TEST(FaultMatrix, RepairRelocatesIntactEntriesOffFailingMedia) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("ft.repair");

  const std::vector<double> vals{1.5, 2.5, 3.5, 4.5, 5.5, 6.5};
  p.store("victim", vals);
  p.store("bystander", 99);

  std::size_t vsize = 0;
  const std::uint64_t voff = blob_dev_off(p, dev, "victim", &vsize);
  dev.inject_sticky_range(voff, 64);

  const std::uint64_t reloc0 = ctr(Counter::kFtRelocations);
  const auto rep = p.repair();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.relocated, 1u);
  EXPECT_EQ(ctr(Counter::kFtRelocations) - reloc0, 1u);

  // The entry moved off the bad range and still reads back exact.
  const std::uint64_t voff2 = blob_dev_off(p, dev, "victim");
  EXPECT_NE(voff2, voff);
  EXPECT_FALSE(dev.media_failing(voff2, vsize));
  EXPECT_EQ(p.load<std::vector<double>>("victim"), vals);
  EXPECT_EQ(p.load<int>("bystander"), 99);

  // Idempotent: a second pass finds nothing left to move.
  const auto rep2 = p.repair();
  EXPECT_TRUE(rep2.ok());
  EXPECT_EQ(rep2.relocated, 0u);

  // The quarantine fencing the old location is persistent.
  p.munmap();
  node.remount();
  const auto pool = node.open_pool("ft.repair");
  EXPECT_TRUE(pool->is_quarantined(voff - pool->base(), 1));
  EXPECT_TRUE(pool->check().ok());

  pmemcpy::PMEM p2(make_cfg(node));
  p2.mmap("ft.repair");
  EXPECT_EQ(p2.load<std::vector<double>>("victim"), vals);
  p2.munmap();
}

/// Read path under failing media with the DRAM read cache armed: cached
/// reads must fall back to PMEM + quarantine without ever serving bytes
/// that no longer match the published entry (DESIGN.md §13).
TEST(FaultMatrix, StickyMediaUnderCachedReadsServesNoStaleBytes) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  auto cfg = make_cfg(node);
  cfg.read_cache_bytes = 1u << 20;
  pmemcpy::PMEM p(cfg);
  p.mmap("ft.cachedread");

  const std::vector<double> v1{1.25, 2.25, 3.25, 4.25};
  p.store("victim", v1);
  p.store("bystander", 7);

  // Warm the cache: first load fills, the repeat is a DRAM hit.
  EXPECT_EQ(p.load<std::vector<double>>("victim"), v1);
  const std::uint64_t hits0 = ctr(Counter::kReadCacheHits);
  EXPECT_EQ(p.load<std::vector<double>>("victim"), v1);
  EXPECT_GT(ctr(Counter::kReadCacheHits), hits0);

  // The victim's media goes sticky-bad; repair() relocates it and — the
  // ordering §13 pins down — drops every cached blob before the new
  // location is the published one.
  std::size_t vsize = 0;
  const std::uint64_t voff = blob_dev_off(p, dev, "victim", &vsize);
  dev.inject_sticky_range(voff, 64);
  const std::uint64_t inval0 = ctr(Counter::kReadCacheInvalidations);
  const auto rep = p.repair();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.relocated, 1u);
  EXPECT_GT(ctr(Counter::kReadCacheInvalidations), inval0);

  // Kill the old location outright: if any layer still held the stale
  // address (or the cache survived the repair), the next load would fault
  // or serve bytes the quarantine already fenced off.
  dev.inject_read_error(voff, vsize);
  const std::uint64_t miss0 = ctr(Counter::kReadCacheMisses);
  EXPECT_EQ(p.load<std::vector<double>>("victim"), v1);
  EXPECT_GT(ctr(Counter::kReadCacheMisses), miss0);  // refilled, not stale-hit

  // Overwrite invalidation under the same armed cache: the put drops the
  // freshly refilled v1 blob, so the next load sees v2, never cached v1.
  const std::vector<double> v2{9.5, 8.5};
  p.store("victim", v2);
  EXPECT_EQ(p.load<std::vector<double>>("victim"), v2);
  EXPECT_EQ(p.load<int>("bystander"), 7);
  p.munmap();
}

TEST(FaultMatrix, UnreadableEntriesBecomeTypedDamage) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("ft.damaged");
  p.store("good", 1);
  p.store("lost", std::string("irreplaceable"));

  const std::uint64_t voff = blob_dev_off(p, dev, "lost");
  dev.inject_read_error(voff, 16);

  // scrub() reports the media error with physical provenance...
  const auto scrubbed = p.scrub();
  ASSERT_EQ(scrubbed.corrupt.size(), 1u);
  EXPECT_EQ(scrubbed.corrupt[0].key, "lost");
  EXPECT_EQ(scrubbed.corrupt[0].dev_off, voff);
  EXPECT_EQ(scrubbed.corrupt[0].shard, 0);

  // ...and repair() declares it damaged: uncorrectable reads cannot heal.
  const std::uint64_t dmg0 = ctr(Counter::kFtDamagedKeys);
  const auto rep = p.repair();
  ASSERT_EQ(rep.damaged.size(), 1u);
  EXPECT_EQ(rep.damaged[0].key, "lost");
  EXPECT_GT(ctr(Counter::kFtDamagedKeys), dmg0);
  EXPECT_EQ(p.damaged_keys(), std::vector<std::string>{"lost"});

  // Damaged keys surface as typed errors, never as garbage bytes; healthy
  // keys and writes are untouched (damage alone does not degrade).
  try {
    (void)p.load<std::string>("lost");
    FAIL() << "damaged key loaded";
  } catch (const DegradedError& e) {
    EXPECT_EQ(e.status.code(), ErrorCode::kDamagedKey);
  }
  EXPECT_EQ(p.load<int>("good"), 1);
  EXPECT_EQ(p.health(), Health::kHealthy);
  p.store("still-writable", 2);
  EXPECT_EQ(p.load<int>("still-writable"), 2);
  p.munmap();
}

TEST(FaultMatrix, ExhaustedHealingDegradesToReadOnly) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("ft.degraded");
  p.store("safe", 11);

  const std::uint64_t trans0 = ctr(Counter::kFtDegradedTransitions);
  // Every byte of the device goes bad: healing cannot find good space.
  dev.inject_sticky_range(0, dev.capacity());
  EXPECT_THROW(p.store("doomed", 1), DegradedError);
  EXPECT_EQ(p.health(), Health::kDegraded);
  EXPECT_FALSE(p.health_status().is_ok());
  EXPECT_EQ(ctr(Counter::kFtDegradedTransitions) - trans0, 1u);

  // Degraded mode is read-only: healthy entries still load, every mutation
  // is refused up front with the typed status.
  EXPECT_EQ(p.load<int>("safe"), 11);
  try {
    p.store("again", 2);
    FAIL() << "degraded handle accepted a write";
  } catch (const DegradedError& e) {
    EXPECT_EQ(e.status.code(), ErrorCode::kDegraded);
  }
  EXPECT_THROW(p.remove("safe"), DegradedError);
  // The transition is recorded once, not per refused write.
  EXPECT_EQ(ctr(Counter::kFtDegradedTransitions) - trans0, 1u);
  p.munmap();
}

// ---------------------------------------------------------------------------
// Crash in the middle of repair(): sweep every persist point
// ---------------------------------------------------------------------------

/// Deterministic setup shared by the counting run and every crash replay:
/// ten vector entries, then the victim's blob goes sticky.
std::uint64_t build_repair_scene(pmemcpy::PmemNode& node, pmemcpy::PMEM& p) {
  p.mmap("ft.crashrepair");
  for (int i = 0; i < 10; ++i) {
    p.store("c" + std::to_string(i), std::vector<int>(32, i + 1));
  }
  const std::uint64_t voff = blob_dev_off(p, node.device(), "c3");
  node.device().inject_sticky_range(voff, 64);
  return voff;
}

void check_repair_scene(pmemcpy::PMEM& p) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.load<std::vector<int>>("c" + std::to_string(i)),
              std::vector<int>(32, i + 1))
        << "c" << i;
  }
}

TEST(FaultMatrix, CrashDuringRepairLosesNothing) {
  // Counting run: learn the persist-op window repair() spans.
  std::uint64_t ops_before = 0, ops_after = 0;
  {
    pmemcpy::PmemNode node(node_opts());
    pmemcpy::PMEM p(make_cfg(node));
    (void)build_repair_scene(node, p);
    ops_before = node.device().persist_ops();
    const auto rep = p.repair();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.relocated, 1u);
    ops_after = node.device().persist_ops();
    check_repair_scene(p);
    p.munmap();
  }
  ASSERT_GT(ops_after, ops_before);

  for (std::uint64_t k = ops_before + 1; k <= ops_after; ++k) {
    SCOPED_TRACE("crash at persist op " + std::to_string(k));
    pmemcpy::PmemNode node(node_opts());
    auto& dev = node.device();
    {
      pmemcpy::PMEM p(make_cfg(node));
      (void)build_repair_scene(node, p);
      ASSERT_EQ(dev.persist_ops(), ops_before);  // replay determinism
      FaultPlan fp;
      fp.crash_at_persist = k;
      dev.set_fault_plan(fp);  // sticky ranges survive a plan change
      try {
        (void)p.repair();
        ADD_FAILURE() << "repair completed despite scheduled crash";
      } catch (const CrashError& e) {
        EXPECT_EQ(e.persist_op, k);
      }
      ASSERT_TRUE(dev.frozen());
    }
    dev.revive();
    node.remount();

    // Recovery: the pool (including the mid-append quarantine table) is
    // structurally sound and no acknowledged entry was lost — the victim is
    // served from either its old (still readable) or relocated location.
    const auto pool = node.open_pool("ft.crashrepair");
    const auto report = pool->check();
    EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                     ? std::string()
                                     : report.issues.front());
    pmemcpy::PMEM p2(make_cfg(node));
    p2.mmap("ft.crashrepair");
    check_repair_scene(p2);

    // Re-running repair after the crash converges: everything intact after.
    const auto rep2 = p2.repair();
    EXPECT_TRUE(rep2.ok());
    check_repair_scene(p2);
    p2.munmap();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Collective health agreement
// ---------------------------------------------------------------------------

TEST(FaultMatrix, CollectiveHealthAgreement) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::par::Runtime::run(2, [&](pmemcpy::par::Comm& comm) {
    pmemcpy::PMEM p(make_cfg(node));
    p.mmap("ft.health", comm);
    if (comm.rank() == 0) p.store("r0", 1);
    comm.barrier();
    if (comm.rank() == 1) {
      // Rank 1's media dies wholesale; its next put exhausts healing.
      dev.inject_sticky_range(0, dev.capacity());
      EXPECT_THROW(p.store("r1", 2), DegradedError);
      EXPECT_EQ(p.health(), Health::kDegraded);
    }
    comm.barrier();
    // The collective agreement degrades every rank's view coherently...
    EXPECT_EQ(p.check_health(comm), Health::kDegraded);
    EXPECT_EQ(p.health(), Health::kDegraded);
    // ...so writes are refused everywhere, not just where the media died.
    EXPECT_THROW(p.store("post", 3), DegradedError);
    p.munmap();
  });
}

TEST(FaultMatrix, AgreeHealthIsMaxAcrossRanks) {
  pmemcpy::par::Runtime::run(4, [](pmemcpy::par::Comm& comm) {
    const Health local =
        comm.rank() == 2 ? Health::kDegraded : Health::kHealthy;
    EXPECT_EQ(pmemcpy::par::agree_health(comm, local), Health::kDegraded);
    EXPECT_EQ(pmemcpy::par::agree_health(comm, Health::kHealthy),
              Health::kHealthy);
  });
}

}  // namespace
