// Tests for the miniHDF5 and miniADIOS1 API facades.
#include <miniio/adios1.hpp>
#include <miniio/hdf5.hpp>

#include <gtest/gtest.h>

#include <numeric>

namespace {

using pmemcpy::PmemNode;

PmemNode::Options opts() {
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  o.pool_fraction = 0.05;
  return o;
}

TEST(Hdf5Facade, WriteReadRoundtrip) {
  using namespace minihdf5;
  PmemNode node(opts());
  constexpr int kProcs = 3;
  constexpr hsize_t kPer = 64;
  pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    hsize_t count = kPer;
    hsize_t offset = kPer * static_cast<hsize_t>(comm.rank());
    hsize_t dimsf = kPer * kProcs;
    std::vector<double> data(kPer);
    std::iota(data.begin(), data.end(), comm.rank() * 100.0);

    hid_t fapl = H5Pcreate(H5P_FILE_ACCESS);
    ASSERT_EQ(H5Pset_fapl_mpio(fapl, node, comm), 0);
    hid_t file = H5Fcreate("/t.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl);
    ASSERT_NE(file, H5_INVALID);
    hid_t fspace = H5Screate_simple(1, &dimsf, nullptr);
    hid_t dset = H5Dcreate(file, "d", H5T_NATIVE_DOUBLE, fspace, H5P_DEFAULT,
                           H5P_DEFAULT, H5P_DEFAULT);
    ASSERT_NE(dset, H5_INVALID);
    ASSERT_EQ(H5Sclose(fspace), 0);
    fspace = H5Dget_space(dset);
    ASSERT_EQ(H5Sselect_hyperslab(fspace, H5S_SELECT_SET, &offset, nullptr,
                                  &count, nullptr),
              0);
    hid_t mspace = H5Screate_simple(1, &count, nullptr);
    ASSERT_EQ(H5Dwrite(dset, H5T_NATIVE_DOUBLE, mspace, fspace, H5P_DEFAULT,
                       data.data()),
              0);
    H5Sclose(mspace);
    H5Sclose(fspace);
    H5Dclose(dset);
    ASSERT_EQ(H5Fclose(file), 0);

    // Read back through the read-mode path.
    file = H5Fopen("/t.h5", H5F_ACC_RDONLY, fapl);
    ASSERT_NE(file, H5_INVALID);
    dset = H5Dopen(file, "d", H5P_DEFAULT);
    ASSERT_NE(dset, H5_INVALID);
    fspace = H5Dget_space(dset);
    ASSERT_EQ(H5Sselect_hyperslab(fspace, H5S_SELECT_SET, &offset, nullptr,
                                  &count, nullptr),
              0);
    std::vector<double> out(kPer, -1);
    ASSERT_EQ(H5Dread(dset, H5T_NATIVE_DOUBLE, H5P_DEFAULT, fspace,
                      H5P_DEFAULT, out.data()),
              0);
    EXPECT_EQ(out, data);
    H5Sclose(fspace);
    H5Dclose(dset);
    H5Fclose(file);
    H5Pclose(fapl);
  });
}

TEST(Hdf5Facade, ErrorsReturnNegatives) {
  using namespace minihdf5;
  PmemNode node(opts());
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    // File access plist without fapl setup.
    hid_t fapl = H5Pcreate(H5P_FILE_ACCESS);
    EXPECT_EQ(H5Fcreate("/x.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl),
              H5_INVALID);
    ASSERT_EQ(H5Pset_fapl_mpio(fapl, node, comm), 0);
    // Wrong plist class.
    hid_t xfer = H5Pcreate(H5P_DATASET_XFER);
    EXPECT_EQ(H5Pset_fapl_mpio(xfer, node, comm), -1);
    // Read-mode open of a missing file.
    EXPECT_EQ(H5Fopen("/missing.h5", H5F_ACC_RDONLY, fapl), H5_INVALID);
    // Invalid hyperslab (out of extent).
    hsize_t dims = 10;
    hid_t space = H5Screate_simple(1, &dims, nullptr);
    hsize_t off = 8, cnt = 5;
    EXPECT_EQ(H5Sselect_hyperslab(space, H5S_SELECT_SET, &off, nullptr, &cnt,
                                  nullptr),
              -1);
    // Double close.
    EXPECT_EQ(H5Sclose(space), 0);
    EXPECT_EQ(H5Sclose(space), -1);
    H5Pclose(xfer);
    H5Pclose(fapl);
  });
}

TEST(Adios1Facade, Fig5FlowRoundtrips) {
  using namespace miniadios1;
  PmemNode node(opts());
  ASSERT_EQ(adios_init("A=dimsf/offset/count", node), 0);
  constexpr int kProcs = 4;
  constexpr std::size_t kPer = 50;
  pmemcpy::par::Runtime::run(kProcs, [&](pmemcpy::par::Comm& comm) {
    std::vector<double> data(kPer, comm.rank() + 0.5);
    std::int64_t h;
    std::size_t count = kPer;
    std::size_t offset = kPer * static_cast<std::size_t>(comm.rank());
    std::size_t dimsf = kPer * kProcs;
    ASSERT_EQ(adios_open(&h, "dataset", "/a.bp", "w", comm), 0);
    ASSERT_EQ(adios_write(h, "count", &count), 0);
    ASSERT_EQ(adios_write(h, "dimsf", &dimsf), 0);
    ASSERT_EQ(adios_write(h, "offset", &offset), 0);
    ASSERT_EQ(adios_write(h, "A", data.data()), 0);
    ASSERT_EQ(adios_close(h), 0);

    ASSERT_EQ(adios_open(&h, "dataset", "/a.bp", "r", comm), 0);
    ASSERT_EQ(adios_write(h, "count", &count), 0);
    ASSERT_EQ(adios_write(h, "dimsf", &dimsf), 0);
    ASSERT_EQ(adios_write(h, "offset", &offset), 0);
    std::vector<double> out(kPer, -1);
    ASSERT_EQ(adios_read(h, "A", out.data()), 0);
    EXPECT_EQ(out, data);
    ASSERT_EQ(adios_close(h), 0);
  });
  EXPECT_EQ(adios_finalize(0), 0);
}

TEST(Adios1Facade, ConfigErrors) {
  using namespace miniadios1;
  PmemNode node(opts());
  EXPECT_EQ(adios_init("broken-spec-no-equals", node), -1);
  EXPECT_EQ(adios_init("A=only/two", node), -1);
  EXPECT_EQ(adios_init("A=g0,g1/o0/c0", node), -1);  // rank mismatch
  EXPECT_EQ(adios_init("A=dimsf/offset/count", node), 0);
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    std::int64_t h;
    EXPECT_EQ(adios_open(&h, "g", "/e.bp", "q", comm), -1);  // bad mode
    ASSERT_EQ(adios_open(&h, "g", "/e.bp", "w", comm), 0);
    double data[4] = {};
    // Array write before its dimension scalars exist.
    EXPECT_EQ(adios_write(h, "A", data), -1);
    EXPECT_EQ(adios_close(h), 0);
    EXPECT_EQ(adios_close(h), -1);  // double close
  });
  EXPECT_EQ(adios_finalize(0), 0);
}

TEST(Adios1Facade, MultiDimensionalConfig) {
  using namespace miniadios1;
  PmemNode node(opts());
  ASSERT_EQ(adios_init("V=gx,gy/ox,oy/cx,cy", node), 0);
  pmemcpy::par::Runtime::run(2, [&](pmemcpy::par::Comm& comm) {
    // 2-D 8x8 array, split into 4x8 halves by rank.
    std::size_t gx = 8, gy = 8;
    std::size_t ox = static_cast<std::size_t>(comm.rank()) * 4, oy = 0;
    std::size_t cx = 4, cy = 8;
    std::vector<double> data(32);
    std::iota(data.begin(), data.end(), comm.rank() * 1000.0);
    std::int64_t h;
    ASSERT_EQ(adios_open(&h, "g", "/2d.bp", "w", comm), 0);
    adios_write(h, "gx", &gx);
    adios_write(h, "gy", &gy);
    adios_write(h, "ox", &ox);
    adios_write(h, "oy", &oy);
    adios_write(h, "cx", &cx);
    adios_write(h, "cy", &cy);
    ASSERT_EQ(adios_write(h, "V", data.data()), 0);
    ASSERT_EQ(adios_close(h), 0);

    ASSERT_EQ(adios_open(&h, "g", "/2d.bp", "r", comm), 0);
    adios_write(h, "gx", &gx);
    adios_write(h, "gy", &gy);
    adios_write(h, "ox", &ox);
    adios_write(h, "oy", &oy);
    adios_write(h, "cx", &cx);
    adios_write(h, "cy", &cy);
    std::vector<double> out(32, -1);
    ASSERT_EQ(adios_read(h, "V", out.data()), 0);
    EXPECT_EQ(out, data);
    ASSERT_EQ(adios_close(h), 0);
  });
  EXPECT_EQ(adios_finalize(0), 0);
}

}  // namespace
