// Tests for N-d box algebra and region copies, including property-style
// sweeps over dimensions and shapes.
#include <pmemcpy/core/hyperslab.hpp>

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace {

using pmemcpy::Box;
using pmemcpy::box_from_string;
using pmemcpy::box_linear_index;
using pmemcpy::box_to_string;
using pmemcpy::contains;
using pmemcpy::copy_box_region;
using pmemcpy::Dimensions;
using pmemcpy::for_each_row;
using pmemcpy::intersect;

TEST(BoxTest, ElementsAndEmpty) {
  Box b({0, 0}, {3, 4});
  EXPECT_EQ(b.elements(), 12u);
  EXPECT_FALSE(b.empty());
  Box e({1, 1}, {0, 4});
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(Box{}.empty());
}

TEST(BoxTest, IntersectOverlap) {
  Box a({0, 0}, {10, 10});
  Box b({5, 5}, {10, 10});
  const Box i = intersect(a, b);
  EXPECT_EQ(i.offset, (Dimensions{5, 5}));
  EXPECT_EQ(i.count, (Dimensions{5, 5}));
}

TEST(BoxTest, IntersectDisjointIsEmpty) {
  Box a({0}, {5});
  Box b({10}, {5});
  EXPECT_TRUE(intersect(a, b).empty());
}

TEST(BoxTest, IntersectTouchingIsEmpty) {
  Box a({0}, {5});
  Box b({5}, {5});
  EXPECT_TRUE(intersect(a, b).empty());
}

TEST(BoxTest, IntersectRankMismatchThrows) {
  EXPECT_THROW(intersect(Box({0}, {1}), Box({0, 0}, {1, 1})),
               std::invalid_argument);
}

TEST(BoxTest, Contains) {
  Box outer({0, 0}, {10, 10});
  EXPECT_TRUE(contains(outer, Box({2, 3}, {4, 5})));
  EXPECT_TRUE(contains(outer, outer));
  EXPECT_FALSE(contains(outer, Box({8, 8}, {4, 4})));
}

TEST(BoxTest, LinearIndex) {
  Box b({10, 20}, {5, 6});
  EXPECT_EQ(box_linear_index(b, {10, 20}), 0u);
  EXPECT_EQ(box_linear_index(b, {10, 21}), 1u);
  EXPECT_EQ(box_linear_index(b, {11, 20}), 6u);
  EXPECT_EQ(box_linear_index(b, {14, 25}), 29u);
}

TEST(BoxTest, StringRoundtrip) {
  Box b({1, 22, 333}, {40, 5, 6});
  EXPECT_EQ(box_from_string(box_to_string(b)), b);
  EXPECT_EQ(box_to_string(b), "1_22_333:40_5_6");
}

TEST(BoxTest, StringParseErrors) {
  EXPECT_THROW(box_from_string("nocolon"), std::invalid_argument);
  EXPECT_THROW(box_from_string("1_2:3"), std::invalid_argument);
}

TEST(ForEachRow, CoversWholeBoxOnce) {
  const Dimensions global{4, 5, 6};
  const Box box({1, 2, 1}, {2, 2, 4});
  std::vector<int> hits(4 * 5 * 6, 0);
  std::size_t rows = 0;
  std::size_t expected_box_off = 0;
  for_each_row(global, box,
               [&](std::size_t lin, std::size_t elems, std::size_t box_off) {
                 EXPECT_EQ(elems, 4u);
                 EXPECT_EQ(box_off, expected_box_off);
                 expected_box_off += elems;
                 for (std::size_t i = 0; i < elems; ++i) ++hits[lin + i];
                 ++rows;
               });
  EXPECT_EQ(rows, 4u);  // 2*2 rows
  std::size_t covered = 0;
  for (int h : hits) {
    EXPECT_LE(h, 1);
    covered += static_cast<std::size_t>(h);
  }
  EXPECT_EQ(covered, box.elements());
}

TEST(ForEachRow, OneDimensional) {
  std::size_t calls = 0;
  for_each_row({100}, Box({25}, {50}),
               [&](std::size_t lin, std::size_t elems, std::size_t off) {
                 EXPECT_EQ(lin, 25u);
                 EXPECT_EQ(elems, 50u);
                 EXPECT_EQ(off, 0u);
                 ++calls;
               });
  EXPECT_EQ(calls, 1u);
}

TEST(CopyBoxRegion, FullCopy1D) {
  std::vector<double> src(10);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<double> dst(10, -1);
  const Box b({0}, {10});
  copy_box_region(reinterpret_cast<std::byte*>(dst.data()), b,
                  reinterpret_cast<const std::byte*>(src.data()), b, b, 8);
  EXPECT_EQ(dst, src);
}

TEST(CopyBoxRegion, OffsetRegion2D) {
  // src covers rows 0..3 of a 4x4; dst covers rows 2..5; copy rows 2..3.
  const Box src_box({0, 0}, {4, 4});
  const Box dst_box({2, 0}, {4, 4});
  const Box region({2, 0}, {2, 4});
  std::vector<std::int32_t> src(16);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::int32_t> dst(16, -1);
  copy_box_region(reinterpret_cast<std::byte*>(dst.data()), dst_box,
                  reinterpret_cast<const std::byte*>(src.data()), src_box,
                  region, 4);
  // Region rows land at the start of dst's buffer.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], 8 + i);
  for (int i = 8; i < 16; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], -1);
}

TEST(CopyBoxRegion, RegionNotContainedThrows) {
  const Box a({0}, {4});
  const Box b({2}, {4});
  std::vector<std::byte> buf(64);
  EXPECT_THROW(
      copy_box_region(buf.data(), a, buf.data(), b, Box({0}, {4}), 1),
      std::invalid_argument);
}

TEST(CopyBoxRegion, EmptyRegionIsNoop) {
  std::vector<std::byte> buf(8, std::byte{1});
  copy_box_region(buf.data(), Box({0}, {8}), buf.data(), Box({0}, {8}),
                  Box({0}, {0}), 1);
}

/// Property sweep: scatter a source box into a global array through
/// copy_box_region and verify every element lands at its global position.
class CopyBoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(CopyBoxProperty, RandomBoxesRoundtrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<std::size_t> dim_d(1, 3);
  const std::size_t nd = dim_d(rng);
  Dimensions gdims(nd);
  std::uniform_int_distribution<std::size_t> size_d(3, 9);
  for (auto& d : gdims) d = size_d(rng);
  const Box gbox(Dimensions(nd, 0), gdims);

  auto random_subbox = [&] {
    Box b;
    b.offset.resize(nd);
    b.count.resize(nd);
    for (std::size_t d = 0; d < nd; ++d) {
      std::uniform_int_distribution<std::size_t> off_d(0, gdims[d] - 1);
      b.offset[d] = off_d(rng);
      std::uniform_int_distribution<std::size_t> cnt_d(1,
                                                       gdims[d] - b.offset[d]);
      b.count[d] = cnt_d(rng);
    }
    return b;
  };

  const Box src_box = random_subbox();
  // Source buffer: value = global linear index of the element.
  std::vector<std::uint64_t> src(src_box.elements());
  for_each_row(gdims, src_box,
               [&](std::size_t lin, std::size_t elems, std::size_t off) {
                 for (std::size_t i = 0; i < elems; ++i) src[off + i] = lin + i;
               });

  std::vector<std::uint64_t> global(gbox.elements(), ~0ull);
  copy_box_region(reinterpret_cast<std::byte*>(global.data()), gbox,
                  reinterpret_cast<const std::byte*>(src.data()), src_box,
                  src_box, 8);
  for (std::size_t i = 0; i < global.size(); ++i) {
    if (global[i] != ~0ull) {
      EXPECT_EQ(global[i], i);
    }
  }
  // Count matches the box volume.
  const auto filled = static_cast<std::size_t>(
      std::count_if(global.begin(), global.end(),
                    [](std::uint64_t v) { return v != ~0ull; }));
  EXPECT_EQ(filled, src_box.elements());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyBoxProperty, ::testing::Range(0, 25));

}  // namespace
