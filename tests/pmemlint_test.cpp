// pmemlint self-tests (tier 1).
//
// Three layers of coverage:
//   1. Golden fixture corpus — tools/pmemlint/fixtures/tree is a miniature
//      repo of known-good/known-bad snippets; the findings must equal
//      fixtures/expected.txt exactly (as a rule/file/line set), proving both
//      detection and false-positive immunity (the good files embed every
//      forbidden pattern inside comments and strings).
//   2. Mutation self-tests — for each rule, plant the violation in an
//      in-memory copy of a *real* source file and assert pmemlint reports
//      exactly that finding (rule, file, line), including the chained-call
//      dropped-result class the historical grep rule provably missed.
//   3. Whole-tree gate — the actual repo must come up clean under the
//      checked-in baseline, and every baseline entry must still be used.
#include "pmemlint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace stdfs = std::filesystem;
using pmemlint::Corpus;
using pmemlint::Finding;

namespace {

stdfs::path repo_root() { return stdfs::path(PMEMLINT_SOURCE_DIR); }

std::string slurp(const stdfs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool source_ext(const stdfs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".c" || e == ".cc";
}

/// Load a tree the same way the CLI does (src include bench examples tests
/// under @p root, plus tests/CMakeLists.txt).
Corpus load_tree(const stdfs::path& root) {
  Corpus c;
  for (const char* sub : {"src", "include", "bench", "examples", "tests"}) {
    const stdfs::path dir = root / sub;
    std::error_code ec;
    if (!stdfs::is_directory(dir, ec)) continue;
    std::vector<stdfs::path> files;
    for (const auto& ent : stdfs::recursive_directory_iterator(dir))
      if (ent.is_regular_file() && source_ext(ent.path()))
        files.push_back(ent.path());
    std::sort(files.begin(), files.end());
    for (const auto& f : files)
      c.add(f.lexically_relative(root).generic_string(), slurp(f));
  }
  std::error_code ec;
  if (stdfs::is_regular_file(root / "tests" / "CMakeLists.txt", ec))
    c.tests_cmake = slurp(root / "tests" / "CMakeLists.txt");
  return c;
}

std::set<std::string> finding_keys(const std::vector<Finding>& fs) {
  std::set<std::string> out;
  for (const auto& f : fs)
    out.insert(f.rule + " " + f.file + " " + std::to_string(f.line));
  return out;
}

/// Append planted code to @p content; returns the 1-based line number of the
/// first line of @p code.
int plant(std::string& content, const std::string& code) {
  if (content.empty() || content.back() != '\n') content += '\n';
  int lines = 0;
  for (char ch : content)
    if (ch == '\n') ++lines;
  content += code;
  return lines + 1;
}

/// Run the rules over @p c, drop baselined findings (the real files used as
/// mutation hosts legitimately carry baselined deferred-persist findings).
std::vector<Finding> live_findings(const Corpus& c) {
  std::vector<Finding> fs = pmemlint::run_rules(c);
  auto baseline = pmemlint::parse_baseline(
      slurp(repo_root() / "tools" / "pmemlint" / "baseline.txt"));
  pmemlint::apply_baseline(fs, baseline);
  std::vector<Finding> live;
  for (auto& f : fs)
    if (!f.baselined) live.push_back(std::move(f));
  return live;
}

/// Expect exactly one live finding with the given rule/file/line.
void expect_single(const std::vector<Finding>& live, const std::string& rule,
                   const std::string& file, int line) {
  ASSERT_EQ(live.size(), 1u) << pmemlint::to_human(live);
  EXPECT_EQ(live[0].rule, rule);
  EXPECT_EQ(live[0].file, file);
  EXPECT_EQ(live[0].line, line);
}

// ---------------------------------------------------------------------------
// 1. Golden fixture corpus
// ---------------------------------------------------------------------------

TEST(PmemlintFixtures, GoldenCorpusMatchesExpected) {
  const stdfs::path fixtures = repo_root() / "tools" / "pmemlint" / "fixtures";
  Corpus c = load_tree(fixtures / "tree");
  ASSERT_FALSE(c.files.empty());
  const std::set<std::string> got = finding_keys(pmemlint::run_rules(c));

  std::set<std::string> want;
  std::istringstream in(slurp(fixtures / "expected.txt"));
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, file, ln;
    if (fields >> rule >> file >> ln) want.insert(rule + " " + file + " " + ln);
  }
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// 2. Mutation self-tests (one per rule, planted into real sources)
// ---------------------------------------------------------------------------

TEST(PmemlintMutations, RawDeviceInCore) {
  const std::string rel = "src/core/hyperslab.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content,
                       "template <typename Dev>\n"
                       "void planted_copy(Dev& d) {\n"
                       "  d.note_write(0, 64);\n"
                       "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "raw-device", rel, at + 2);
}

TEST(PmemlintMutations, UnregisteredTest) {
  Corpus c;
  c.tests_cmake = slurp(repo_root() / "tests" / "CMakeLists.txt");
  c.add("tests/planted_orphan_test.cpp",
        "#include <gtest/gtest.h>\n"
        "TEST(Planted, Orphan) { EXPECT_TRUE(true); }\n");
  expect_single(live_findings(c), "unregistered-test",
                "tests/planted_orphan_test.cpp", 1);
}

TEST(PmemlintMutations, ContainerTypeInTraceLayer) {
  const std::string rel = "src/trace/trace.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at =
      plant(content, "void planted_touch(pmemcpy::obj::HashTable* t);\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "container-layering", rel, at);
}

TEST(PmemlintMutations, RawClockInCore) {
  const std::string rel = "src/core/hyperslab.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content,
                       "template <typename Ctx>\n"
                       "double planted_stamp(Ctx& c) {\n"
                       "  return c.now();\n"
                       "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "raw-clock", rel, at + 2);
}

// The exact escape class scripts/lint.sh rule 5 missed: a probe called on a
// chained/temporary receiver is not at line start, so the anchored regex
// never saw it.  The structural rule must.
TEST(PmemlintMutations, DroppedResultThroughChainedReceiver) {
  const std::string rel = "src/engine/tree_engine.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content,
                       "template <typename Pending>\n"
                       "void planted_finalize(Pending& p) {\n"
                       "  p.mapping().publish(0, 64);\n"
                       "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "dropped-result", rel, at + 2);
}

TEST(PmemlintMutations, DroppedResultMultiLineReceiver) {
  const std::string rel = "src/engine/tree_engine.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content,
                       "template <typename Node>\n"
                       "void planted_probe(Node& n) {\n"
                       "  n.pool()\n"
                       "      .check();\n"
                       "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "dropped-result", rel, at + 3);
}

TEST(PmemlintMutations, UnpersistedReturnInObjLayer) {
  const std::string rel = "src/pmemobj/pool.cpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content,
                       "template <typename Dev>\n"
                       "void planted_put(Dev& d, bool early) {\n"
                       "  d.store(0, nullptr, 8);\n"
                       "  if (early) return;\n"
                       "  d.persist(0, 8);\n"
                       "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "unpersisted-return", rel, at + 2);
}

TEST(PmemlintMutations, AtomicStoreIsNotAPmemStore) {
  // `x.store(v, std::memory_order_*)` is DRAM state, not a pmem write: a
  // function whose only "store" is an atomic flag flip must stay clean.
  const std::string rel = "src/pmemobj/pool.cpp";
  std::string content = slurp(repo_root() / rel);
  plant(content,
        "void planted_arm(std::atomic<bool>& a, bool on) {\n"
        "  if (on) a.store(true, std::memory_order_release);\n"
        "}\n");
  Corpus c;
  c.add(rel, std::move(content));
  const auto live = live_findings(c);
  EXPECT_TRUE(live.empty()) << pmemlint::to_human(live);
}

TEST(PmemlintMutations, MagMarkOwnedIsADeferredPersistPrimitive) {
  // The magazine header-flag helper is a sanctioned deferred-persist store
  // (DESIGN.md §14): its refill/sweep callers own the coalesced flush+fence
  // over the whole batch, so a definition by that exact name must not flag
  // — while the identical body under any other name still does.
  Corpus c;
  c.add("src/pmemobj/planted_mag.cpp",
        "template <typename Dev>\n"
        "void mag_mark_owned(Dev& d) {\n"
        "  d.note_write(0, 16);\n"
        "}\n"
        "template <typename Dev>\n"
        "void planted_mark(Dev& d) {\n"
        "  d.note_write(0, 16);\n"
        "}\n");
  expect_single(live_findings(c), "unpersisted-return",
                "src/pmemobj/planted_mag.cpp", 7);
}

TEST(PmemlintMutations, IncludeLayeringInversion) {
  const std::string rel = "include/pmemcpy/sim/context.hpp";
  std::string content = slurp(repo_root() / rel);
  const int at = plant(content, "#include <pmemcpy/engine/engine.hpp>\n");
  Corpus c;
  c.add(rel, std::move(content));
  expect_single(live_findings(c), "include-layering", rel, at);
}

// ---------------------------------------------------------------------------
// 3. Whole-tree gate + baseline hygiene
// ---------------------------------------------------------------------------

TEST(PmemlintTree, RepoIsCleanUnderBaseline) {
  Corpus c = load_tree(repo_root());
  ASSERT_GT(c.files.size(), 50u);  // sanity: the real tree was loaded
  std::vector<Finding> fs = pmemlint::run_rules(c);
  auto baseline = pmemlint::parse_baseline(
      slurp(repo_root() / "tools" / "pmemlint" / "baseline.txt"));
  const std::size_t live = pmemlint::apply_baseline(fs, baseline);
  EXPECT_EQ(live, 0u) << pmemlint::to_human(fs);
  for (const auto& e : baseline)
    EXPECT_TRUE(e.used) << "stale baseline entry: " << e.rule << " " << e.file
                        << " " << e.context;
}

TEST(PmemlintBaseline, StaleEntriesAreDetected) {
  auto baseline =
      pmemlint::parse_baseline("# comment\nraw-clock src/nope.cpp fn\n");
  ASSERT_EQ(baseline.size(), 1u);
  std::vector<Finding> none;
  EXPECT_EQ(pmemlint::apply_baseline(none, baseline), 0u);
  EXPECT_FALSE(baseline[0].used);
}

}  // namespace
