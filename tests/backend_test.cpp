// Tests for the storage backends (flat table vs hierarchical tree) through
// the common Store interface, including the concurrency semantics the core
// relies on (reserve/commit, first-writer-wins, replace).
#include <pmemcpy/core/backend.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

namespace {

using pmemcpy::PmemNode;
using pmemcpy::detail::EntryInfo;
using pmemcpy::detail::Store;

enum class Kind { kTable, kTree };

class BackendTest : public ::testing::TestWithParam<Kind> {
 protected:
  BackendTest() {
    PmemNode::Options o;
    o.capacity = 64ull << 20;
    node_ = std::make_unique<PmemNode>(o);
    store_ = make(GetParam());
  }

  std::unique_ptr<Store> make(Kind kind) {
    if (kind == Kind::kTable) {
      auto pool = node_->open_or_create_pool("test", 0);
      if (pool->root() == 0) {
        auto t = pmemcpy::obj::HashTable::create(*pool, 256);
        pool->set_root(t.header_off());
      }
      return pmemcpy::detail::make_table_store(
          pool, node_->table_for(pool, pool->root()));
    }
    return pmemcpy::detail::make_tree_store(node_->fs(), "/store", false);
  }

  void put_str(Store& st, const std::string& key, const std::string& value,
               std::uint64_t meta = 0, bool keep_existing = false) {
    auto put = st.put(key, value.size(), meta, keep_existing);
    put->sink().write(value.data(), value.size());
    put->commit();
  }

  std::string get_str(Store& st, const std::string& key) {
    auto e = st.find(key);
    if (!e) return "<missing>";
    std::string out(e->info().size, '\0');
    e->read(0, out.data(), out.size());
    return out;
  }

  std::unique_ptr<PmemNode> node_;
  std::unique_ptr<Store> store_;
};

TEST_P(BackendTest, PutFindRoundtrip) {
  put_str(*store_, "k", "hello", 42);
  auto e = store_->find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->info().size, 5u);
  EXPECT_EQ(e->info().meta, 42u);
  EXPECT_EQ(get_str(*store_, "k"), "hello");
}

TEST_P(BackendTest, FindMissingReturnsNull) {
  EXPECT_EQ(store_->find("nope"), nullptr);
}

TEST_P(BackendTest, PartialRead) {
  put_str(*store_, "k", "0123456789");
  auto e = store_->find("k");
  char buf[4];
  e->read(3, buf, 4);
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_THROW(e->read(8, buf, 4), std::exception);
}

TEST_P(BackendTest, DirectPointerMatches) {
  put_str(*store_, "k", "direct-data");
  auto e = store_->find("k");
  const std::byte* p = e->direct(e->info().size);
  EXPECT_EQ(std::memcmp(p, "direct-data", 11), 0);
}

TEST_P(BackendTest, ReplaceLastWins) {
  put_str(*store_, "k", "first");
  put_str(*store_, "k", "second");
  EXPECT_EQ(get_str(*store_, "k"), "second");
}

TEST_P(BackendTest, KeepExistingFirstWins) {
  put_str(*store_, "k", "first");
  put_str(*store_, "k", "second", 0, /*keep_existing=*/true);
  EXPECT_EQ(get_str(*store_, "k"), "first");
}

TEST_P(BackendTest, UncommittedPutInvisible) {
  {
    auto put = store_->put("ghost", 5, 0);
    put->sink().write("abcde", 5);
    // no commit
  }
  EXPECT_EQ(store_->find("ghost"), nullptr);
}

TEST_P(BackendTest, Erase) {
  put_str(*store_, "k", "x");
  EXPECT_TRUE(store_->erase("k"));
  EXPECT_FALSE(store_->erase("k"));
  EXPECT_EQ(store_->find("k"), nullptr);
}

TEST_P(BackendTest, ForEachPrefix) {
  put_str(*store_, "var#p:0_0:2_2", "a");
  put_str(*store_, "var#p:2_0:2_2", "b");
  put_str(*store_, "var#dims", "d");
  put_str(*store_, "other", "o");
  std::set<std::string> seen;
  store_->for_each_prefix("var#p:",
                          [&](const std::string& key, const EntryInfo&) {
                            seen.insert(key);
                          });
  EXPECT_EQ(seen,
            (std::set<std::string>{"var#p:0_0:2_2", "var#p:2_0:2_2"}));
}

TEST_P(BackendTest, PrefixWithDirectoryComponent) {
  put_str(*store_, "grp/var#p:0:1", "a");
  put_str(*store_, "grp/var2#p:0:1", "b");
  std::set<std::string> seen;
  store_->for_each_prefix("grp/var#",
                          [&](const std::string& key, const EntryInfo&) {
                            seen.insert(key);
                          });
  EXPECT_EQ(seen, (std::set<std::string>{"grp/var#p:0:1"}));
}

TEST_P(BackendTest, ConcurrentSameKeyFirstWins) {
  // The "#dims" pattern: many threads storing the same key with
  // keep_existing must not corrupt anything and exactly one must win.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every backend instance is thread-compatible per rank; make one per
      // thread like the real per-rank PMEM objects do.
      auto st = make(GetParam());
      const std::string v = "writer" + std::to_string(t);
      for (int i = 0; i < 10; ++i) {
        auto put = st->put("dims", v.size(), 0, /*keep_existing=*/true);
        put->sink().write(v.data(), v.size());
        put->commit();
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string v = get_str(*store_, "dims");
  EXPECT_EQ(v.substr(0, 6), "writer");
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(Kind::kTable, Kind::kTree),
                         [](const auto& info) {
                           return info.param == Kind::kTable ? "Table"
                                                             : "Tree";
                         });

}  // namespace
