// Tests for the HDF5-style chunked storage layout of the contiguous engine:
// roundtrips across chunk shapes (including non-dividing edge chunks), reads
// with different rank counts, and the H5Pset_chunk facade path.
#include <miniio/hdf5.hpp>
#include <miniio/miniio.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <gtest/gtest.h>

namespace {

using miniio::Library;
using pmemcpy::Box;
using pmemcpy::Dimensions;
using pmemcpy::PmemNode;
namespace wk = pmemcpy::wk;

PmemNode::Options opts() {
  PmemNode::Options o;
  o.capacity = 128ull << 20;
  o.pool_fraction = 0.05;
  return o;
}

class ChunkShapeTest
    : public ::testing::TestWithParam<std::tuple<Dimensions, int>> {};

TEST_P(ChunkShapeTest, WriteReadRoundtrip) {
  const auto& [chunk, nranks] = GetParam();
  PmemNode node(opts());
  const auto dec = wk::decompose(24 * 24 * 24, nranks);

  pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    {
      auto w = miniio::open_writer(Library::kNetcdf4, node, "/c.h5", comm);
      w->set_chunk(chunk);
      std::vector<double> buf;
      wk::fill_box(buf, 0, dec.global, mine);
      w->write("v", buf.data(), mine, dec.global);
      w->close();
    }
    {
      auto r = miniio::open_reader(Library::kNetcdf4, node, "/c.h5", comm);
      // Symmetric read.
      std::vector<double> buf(mine.elements(), -1.0);
      r->read("v", buf.data(), mine);
      EXPECT_EQ(wk::verify_box(buf, 0, dec.global, mine), 0u);
      // Chunk-misaligned centred subvolume.
      Box want;
      want.offset = {dec.global[0] / 3, dec.global[1] / 3, dec.global[2] / 3};
      want.count = {dec.global[0] / 2, dec.global[1] / 2, dec.global[2] / 2};
      std::vector<double> sub(want.elements(), -1.0);
      r->read("v", sub.data(), want);
      EXPECT_EQ(wk::verify_box(sub, 0, dec.global, want), 0u);
      r->close();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChunkShapeTest,
    ::testing::Combine(
        ::testing::Values(Dimensions{8, 8, 8},    // dividing cubes
                          Dimensions{7, 5, 3},    // non-dividing edges
                          Dimensions{1, 24, 24},  // plane chunks
                          Dimensions{100, 1, 6},  // over-sized + slivers
                          Dimensions{}),          // contiguous baseline
        ::testing::Values(1, 4)),
    [](const auto& info) {
      const Dimensions& chunk = std::get<0>(info.param);
      const int nranks = std::get<1>(info.param);
      std::string name = "c";
      for (auto d : chunk) name += std::to_string(d) + "_";
      if (chunk.empty()) name += "contig_";
      name += std::to_string(nranks) + "r";
      return name;
    });

TEST(ChunkedMixed, ChunkedAndContiguousVarsInOneFile) {
  PmemNode node(opts());
  const auto dec = wk::decompose(16 * 16 * 16, 2);
  pmemcpy::par::Runtime::run(2, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    std::vector<double> a, b;
    wk::fill_box(a, 0, dec.global, mine);
    wk::fill_box(b, 1, dec.global, mine);
    auto w = miniio::open_writer(Library::kNetcdf4, node, "/mix.h5", comm);
    w->set_chunk({4, 4, 4});
    w->write("chunked", a.data(), mine, dec.global);
    w->set_chunk({});
    w->write("contig", b.data(), mine, dec.global);
    w->close();

    auto r = miniio::open_reader(Library::kNetcdf4, node, "/mix.h5", comm);
    std::vector<double> out(mine.elements());
    r->read("chunked", out.data(), mine);
    EXPECT_EQ(wk::verify_box(out, 0, dec.global, mine), 0u);
    r->read("contig", out.data(), mine);
    EXPECT_EQ(wk::verify_box(out, 1, dec.global, mine), 0u);
    r->close();
  });
}

TEST(ChunkedFacade, H5PsetChunkFlow) {
  using namespace minihdf5;
  PmemNode node(opts());
  pmemcpy::par::Runtime::run(2, [&](pmemcpy::par::Comm& comm) {
    hsize_t dims[2] = {16, 16};
    hsize_t off[2] = {static_cast<hsize_t>(comm.rank()) * 8, 0};
    hsize_t cnt[2] = {8, 16};
    std::vector<double> data(128);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = comm.rank() * 1000.0 + static_cast<double>(i);
    }

    hid_t fapl = H5Pcreate(H5P_FILE_ACCESS);
    ASSERT_EQ(H5Pset_fapl_mpio(fapl, node, comm), 0);
    hid_t dcpl = H5Pcreate(H5P_DATASET_CREATE);
    hsize_t chunk[2] = {5, 5};
    ASSERT_EQ(H5Pset_chunk(dcpl, 2, chunk), 0);
    // Wrong class rejected.
    EXPECT_EQ(H5Pset_chunk(fapl, 2, chunk), -1);

    hid_t file = H5Fcreate("/ck.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl);
    hid_t fspace = H5Screate_simple(2, dims, nullptr);
    hid_t dset = H5Dcreate(file, "d", H5T_NATIVE_DOUBLE, fspace, H5P_DEFAULT,
                           dcpl, H5P_DEFAULT);
    ASSERT_NE(dset, H5_INVALID);
    H5Sclose(fspace);
    fspace = H5Dget_space(dset);
    ASSERT_EQ(H5Sselect_hyperslab(fspace, H5S_SELECT_SET, off, nullptr, cnt,
                                  nullptr),
              0);
    ASSERT_EQ(H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5P_DEFAULT, fspace,
                       H5P_DEFAULT, data.data()),
              0);
    H5Sclose(fspace);
    H5Dclose(dset);
    H5Fclose(file);
    H5Pclose(dcpl);

    file = H5Fopen("/ck.h5", H5F_ACC_RDONLY, fapl);
    dset = H5Dopen(file, "d", H5P_DEFAULT);
    fspace = H5Dget_space(dset);
    ASSERT_EQ(H5Sselect_hyperslab(fspace, H5S_SELECT_SET, off, nullptr, cnt,
                                  nullptr),
              0);
    std::vector<double> out(128, -1);
    ASSERT_EQ(H5Dread(dset, H5T_NATIVE_DOUBLE, H5P_DEFAULT, fspace,
                      H5P_DEFAULT, out.data()),
              0);
    EXPECT_EQ(out, data);
    H5Sclose(fspace);
    H5Dclose(dset);
    H5Fclose(file);
    H5Pclose(fapl);
  });
}

TEST(ChunkedFacade, RankMismatchRejected) {
  using namespace minihdf5;
  PmemNode node(opts());
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    hid_t fapl = H5Pcreate(H5P_FILE_ACCESS);
    ASSERT_EQ(H5Pset_fapl_mpio(fapl, node, comm), 0);
    hid_t dcpl = H5Pcreate(H5P_DATASET_CREATE);
    hsize_t chunk[3] = {2, 2, 2};
    ASSERT_EQ(H5Pset_chunk(dcpl, 3, chunk), 0);
    hid_t file = H5Fcreate("/m.h5", H5F_ACC_TRUNC, H5P_DEFAULT, fapl);
    hsize_t dims[2] = {4, 4};  // 2-D dataset, 3-D chunk
    hid_t fspace = H5Screate_simple(2, dims, nullptr);
    EXPECT_EQ(H5Dcreate(file, "d", H5T_NATIVE_DOUBLE, fspace, H5P_DEFAULT,
                        dcpl, H5P_DEFAULT),
              H5_INVALID);
    H5Sclose(fspace);
    H5Fclose(file);
    H5Pclose(dcpl);
    H5Pclose(fapl);
  });
}

}  // namespace
