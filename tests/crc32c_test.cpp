// Equivalence proof for the slicing-by-8 CRC32C kernel: bit-identical to the
// byte-at-a-time reference on arbitrary buffers, alignments, chain splits,
// and the standard check vector.
#include <pmemcpy/crc32c.hpp>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace {

using pmemcpy::crc32c;
using pmemcpy::crc32c_reference;

/// splitmix64 — deterministic buffer filler, no <random> state to drag in.
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t x = s;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::vector<unsigned char> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<unsigned char> v(n);
  std::uint64_t s = seed;
  for (auto& b : v) b = static_cast<unsigned char>(mix(s));
  return v;
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 §B.4: CRC32C("123456789") = 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(crc32c_reference(digits, 9), 0xE3069283u);
  // 32 zero bytes = 0x8A9136AA; 32 0xFF bytes = 0x62A8AB43 (same appendix).
  std::vector<unsigned char> zeros(32, 0x00), ones(32, 0xFF);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, MatchesReferenceOnArbitraryLengths) {
  // Every length 0..257 crosses the head-alignment loop, the 8-byte main
  // loop, and the tail in all combinations at least once.
  for (std::size_t len = 0; len <= 257; ++len) {
    const auto buf = random_bytes(len, 0xC0FFEEull + len);
    ASSERT_EQ(crc32c(buf.data(), len), crc32c_reference(buf.data(), len))
        << "len=" << len;
  }
}

TEST(Crc32c, MatchesReferenceOnEveryAlignment) {
  // Same bytes viewed at each offset within a 16-byte window: the sliced
  // kernel's alignment prologue must not change the answer.
  const auto backing = random_bytes(4096 + 16, 0xA11CEull);
  for (std::size_t off = 0; off < 16; ++off) {
    const unsigned char* p = backing.data() + off;
    ASSERT_EQ(crc32c(p, 4096), crc32c_reference(p, 4096)) << "off=" << off;
  }
}

TEST(Crc32c, ChainingSplitsAreSeamless) {
  // crc32c(whole) == crc32c(tail, crc32c(head)) for every split point of a
  // buffer that exercises both kernels, against both implementations.
  const auto buf = random_bytes(300, 0xDEADull);
  const std::uint32_t whole = crc32c_reference(buf.data(), buf.size());
  EXPECT_EQ(crc32c(buf.data(), buf.size()), whole);
  for (std::size_t cut = 0; cut <= buf.size(); cut += 7) {
    const std::uint32_t head = crc32c(buf.data(), cut);
    ASSERT_EQ(crc32c(buf.data() + cut, buf.size() - cut, head), whole)
        << "cut=" << cut;
    const std::uint32_t rhead = crc32c_reference(buf.data(), cut);
    ASSERT_EQ(
        crc32c_reference(buf.data() + cut, buf.size() - cut, rhead), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32c, LargeBufferFuzz) {
  // A few big buffers with different seeds; any table-derivation bug that
  // somehow survived the short-length sweep shows up here.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto buf = random_bytes(1 << 16, seed);
    ASSERT_EQ(crc32c(buf.data(), buf.size()),
              crc32c_reference(buf.data(), buf.size()))
        << "seed=" << seed;
  }
}

TEST(Crc32c, SensitivityToSingleBitFlips) {
  // Sanity on the error-detection story the integrity layer leans on: any
  // single-bit flip in a small record changes the checksum.
  auto buf = random_bytes(64, 0xBEEFull);
  const std::uint32_t base = crc32c(buf.data(), buf.size());
  for (std::size_t bit = 0; bit < 64 * 8; ++bit) {
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    ASSERT_NE(crc32c(buf.data(), buf.size()), base) << "bit=" << bit;
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
}

}  // namespace
