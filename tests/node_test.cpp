// Tests for the PmemNode environment: pool registry, shared instances,
// remount after crash.
#include <pmemcpy/core/node.hpp>

#include <gtest/gtest.h>

namespace {

using pmemcpy::PmemNode;
using pmemcpy::ScopedDefaultNode;

PmemNode::Options opts(std::size_t cap = 64ull << 20) {
  PmemNode::Options o;
  o.capacity = cap;
  return o;
}

TEST(NodeTest, CreateAndReopenPool) {
  PmemNode node(opts());
  auto p1 = node.create_pool("alpha", 8ull << 20);
  p1->set_root(77);
  auto p2 = node.open_pool("alpha");
  EXPECT_EQ(p1.get(), p2.get());  // shared instance
  EXPECT_EQ(p2->root(), 77u);
}

TEST(NodeTest, DuplicateCreateThrows) {
  PmemNode node(opts());
  (void)node.create_pool("a", 8ull << 20);
  EXPECT_THROW((void)node.create_pool("a", 8ull << 20),
               pmemcpy::obj::PoolError);
}

TEST(NodeTest, OpenMissingThrows) {
  PmemNode node(opts());
  EXPECT_THROW((void)node.open_pool("ghost"), pmemcpy::obj::PoolError);
}

TEST(NodeTest, HasPool) {
  PmemNode node(opts());
  EXPECT_FALSE(node.has_pool("x"));
  (void)node.create_pool("x", 8ull << 20);
  EXPECT_TRUE(node.has_pool("x"));
}

TEST(NodeTest, MultiplePoolsDontOverlap) {
  PmemNode node(opts());
  auto a = node.create_pool("a", 8ull << 20);
  auto b = node.create_pool("b", 8ull << 20);
  a->set_root(1);
  b->set_root(2);
  EXPECT_EQ(a->root(), 1u);
  EXPECT_EQ(b->root(), 2u);
  EXPECT_NE(a->base(), b->base());
}

TEST(NodeTest, PoolAreaExhaustion) {
  PmemNode node(opts());
  // pool area is ~half of 64 MiB.
  (void)node.create_pool("big", 24ull << 20);
  EXPECT_THROW((void)node.create_pool("more", 24ull << 20),
               pmemcpy::obj::PoolError);
}

TEST(NodeTest, ZeroSizeTakesRemainingArea) {
  PmemNode node(opts());
  auto p = node.create_pool("all", 0);
  EXPECT_GT(p->size(), 16ull << 20);
  EXPECT_THROW((void)node.create_pool("none", 1ull << 20),
               pmemcpy::obj::PoolError);
}

TEST(NodeTest, TableForReturnsSharedInstance) {
  PmemNode node(opts());
  auto pool = node.create_pool("t", 8ull << 20);
  auto table = pmemcpy::obj::HashTable::create(*pool, 64);
  pool->set_root(table.header_off());
  auto t1 = node.table_for(pool, pool->root());
  auto t2 = node.table_for(pool, pool->root());
  EXPECT_EQ(t1.get(), t2.get());
}

TEST(NodeTest, RemountRecoversRegistryAndFs) {
  PmemNode node(opts());
  {
    auto pool = node.create_pool("persistent", 8ull << 20);
    pool->set_root(123);
    auto f = node.fs().open("/data.txt", pmemcpy::fs::OpenMode::kTruncate);
    const char msg[] = "survives";
    node.fs().pwrite(f, msg, sizeof(msg), 0);
  }
  node.remount();  // simulated restart
  EXPECT_TRUE(node.has_pool("persistent"));
  auto pool = node.open_pool("persistent");
  EXPECT_EQ(pool->root(), 123u);
  auto f = node.fs().open("/data.txt", pmemcpy::fs::OpenMode::kRead);
  char out[16] = {};
  node.fs().pread(f, out, 9, 0);
  EXPECT_STREQ(out, "survives");
}

TEST(NodeTest, DefaultNodeScoped) {
  EXPECT_EQ(PmemNode::default_node(), nullptr);
  PmemNode node(opts());
  {
    ScopedDefaultNode scope(node);
    EXPECT_EQ(PmemNode::default_node(), &node);
  }
  EXPECT_EQ(PmemNode::default_node(), nullptr);
}

TEST(NodeTest, PoolNameTooLongThrows) {
  PmemNode node(opts());
  EXPECT_THROW((void)node.create_pool(std::string(100, 'x'), 8ull << 20),
               pmemcpy::obj::PoolError);
}

}  // namespace
