// Systematic crash-point exploration (Jaaru-style "exhaustive persist-point"
// testing, cf. PAPERS.md): run a deterministic multi-dataset workload once to
// learn its total persist-op count P, then re-run it once per crash point
// k ∈ (setup, P], with the device scheduled to lose power *before* the k-th
// persist completes.  After every crash the harness re-mounts the node, runs
// recovery, and asserts
//   * Pool::check() finds a structurally sound pool,
//   * PMEM::scrub() finds no checksum-corrupt entries, and
//   * atomic visibility: every dataset is either fully readable with the
//     exact committed contents or cleanly absent — never torn.
// The whole matrix runs twice: once with full cacheline loss and once in
// torn-write mode, where a deterministic pseudo-random subset of the
// unpersisted lines happens to have reached media before the power failed.
//
// A second, pool-level matrix sweeps every persist point of an
// alloc/free/transaction workload, and a mutation test re-introduces a known
// durability bug (the unpersisted lane-header zero in Transaction::commit)
// to prove the harness actually catches committed-data loss.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/pmem/device.hpp>
#include <pmemcpy/pmemcpy.hpp>

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::FaultPlan;

constexpr std::size_t kNodeCapacity = 4ull << 20;
constexpr const char* kPoolFile = "crash.pool";

const std::array<double, 8> kGridData = {0.5, 1.5, 2.5, 3.5,
                                         4.5, 5.5, 6.5, 7.5};
const std::vector<int> kDeltaData = {1, 2, 3, 4, 5};

/// Persist-op window of one workload step, recorded on the crash-free
/// counting run.  With a crash scheduled at op k (ops 1..k-1 complete):
///   done       — end < k           (every op of the step completed)
///   untouched  — start >= k        (the step never issued an op)
///   in-flight  — start < k <= end  (the crash landed inside the step)
struct StepMark {
  const char* name;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

struct Marks {
  std::vector<StepMark> steps;

  const StepMark& at(const char* name) const {
    for (const auto& s : steps) {
      if (std::string_view(s.name) == name) return s;
    }
    ADD_FAILURE() << "no step named " << name;
    static StepMark dummy{"?", 0, 0};
    return dummy;
  }
  bool done(const char* name, std::uint64_t k) const {
    return at(name).end < k;
  }
  bool started(const char* name, std::uint64_t k) const {
    return at(name).start < k;
  }
};

std::string join_issues(const std::vector<std::string>& issues) {
  std::ostringstream os;
  for (const auto& s : issues) os << "\n  - " << s;
  return os.str();
}

pmemcpy::Config make_cfg(pmemcpy::PmemNode& node) {
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.nbuckets = 4;            // force chained buckets (exercises link paths)
  cfg.auto_grow_table = false; // keep the op sequence flat and deterministic
  return cfg;
}

pmemcpy::PmemNode::Options node_opts() {
  pmemcpy::PmemNode::Options o;
  o.capacity = kNodeCapacity;
  o.pool_fraction = 0.5;
  o.crash_shadow = true;
  return o;
}

// ---------------------------------------------------------------------------
// PMEM-level matrix: multi-dataset put workload through the public API
// ---------------------------------------------------------------------------

Marks run_workload(pmemcpy::PMEM& p, pmemcpy::pmem::Device& dev) {
  Marks marks;
  auto step = [&](const char* name, auto&& fn) {
    StepMark m{name, dev.persist_ops(), 0};
    fn();
    m.end = dev.persist_ops();
    marks.steps.push_back(m);
  };
  step("alpha1", [&] { p.store("alpha", 42); });
  step("grid_alloc", [&] {
    const std::size_t d = kGridData.size();
    p.alloc<double>("grid", 1, &d);
  });
  step("grid_piece", [&] {
    const std::size_t off = 0, cnt = kGridData.size();
    p.store("grid", kGridData.data(), 1, &off, &cnt);
  });
  step("gamma", [&] { p.store("gamma", std::string("hello-crash")); });
  step("units", [&] {
    p.store_attribute("grid", "units", std::string("m/s"));
  });
  step("alpha2", [&] { p.store("alpha", 43); });
  step("delta", [&] { p.store("delta", kDeltaData); });
  return marks;
}

struct MatrixPlan {
  std::uint64_t setup_ops = 0;  ///< persist ops consumed before step 1
  std::uint64_t total_ops = 0;  ///< persist ops after the last step
  Marks marks;
};

MatrixPlan counting_run() {
  MatrixPlan plan;
  pmemcpy::PmemNode node(node_opts());
  node.device().enable_checker();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap(kPoolFile);
  plan.setup_ops = node.device().persist_ops();
  plan.marks = run_workload(p, node.device());
  plan.total_ops = node.device().persist_ops();

  // Sanity: the crash-free run must read everything back.
  EXPECT_EQ(p.load<int>("alpha"), 43);
  EXPECT_EQ(p.load<std::string>("gamma"), "hello-crash");
  EXPECT_EQ(p.load_attribute<std::string>("grid", "units"), "m/s");
  EXPECT_EQ(p.load<std::vector<int>>("delta"), kDeltaData);
  p.munmap();
  // The crash-free workload must be persistency-clean end to end.
  const auto chk = node.device().checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
  return plan;
}

/// Atomic-visibility assertions for one recovered image.  Every dataset must
/// be fully readable with committed contents or cleanly absent; a torn value
/// surfaces as IntegrityError, which no handler here catches, failing the
/// test with the original message.
void check_visibility(pmemcpy::PMEM& p, const Marks& m, std::uint64_t k) {
  try {
    const int v = p.load<int>("alpha");
    if (m.done("alpha2", k)) {
      EXPECT_EQ(v, 43);
    } else if (m.started("alpha2", k)) {
      EXPECT_TRUE(v == 42 || v == 43) << "alpha = " << v;
    } else {
      // alpha1 done or in-flight-but-readable: only 42 was ever written.
      EXPECT_EQ(v, 42);
    }
  } catch (const pmemcpy::KeyError&) {
    EXPECT_FALSE(m.done("alpha1", k)) << "completed store lost";
    EXPECT_FALSE(m.done("alpha2", k)) << "completed store lost";
  }

  try {
    int nd = 0;
    std::size_t dims[4] = {};
    p.load_dims("grid", &nd, dims);
    ASSERT_EQ(nd, 1);
    EXPECT_EQ(dims[0], kGridData.size());
    EXPECT_TRUE(m.started("grid_alloc", k));
  } catch (const pmemcpy::KeyError&) {
    EXPECT_FALSE(m.done("grid_alloc", k)) << "completed alloc lost";
  }

  {
    std::array<double, 8> out{};
    const std::size_t off = 0, cnt = out.size();
    try {
      p.load("grid", out.data(), 1, &off, &cnt);
      EXPECT_EQ(out, kGridData);
      EXPECT_TRUE(m.started("grid_piece", k));
    } catch (const pmemcpy::KeyError&) {
      EXPECT_FALSE(m.done("grid_piece", k)) << "completed piece lost";
    }
  }

  try {
    EXPECT_EQ(p.load<std::string>("gamma"), "hello-crash");
    EXPECT_TRUE(m.started("gamma", k));
  } catch (const pmemcpy::KeyError&) {
    EXPECT_FALSE(m.done("gamma", k)) << "completed store lost";
  }

  try {
    EXPECT_EQ(p.load_attribute<std::string>("grid", "units"), "m/s");
    EXPECT_TRUE(m.started("units", k));
  } catch (const pmemcpy::KeyError&) {
    EXPECT_FALSE(m.done("units", k)) << "completed attribute lost";
  }

  try {
    EXPECT_EQ(p.load<std::vector<int>>("delta"), kDeltaData);
    EXPECT_TRUE(m.started("delta", k));
  } catch (const pmemcpy::KeyError&) {
    EXPECT_FALSE(m.done("delta", k)) << "completed store lost";
  }
}

void run_crash_point(std::uint64_t k, const MatrixPlan& plan, bool torn) {
  SCOPED_TRACE("crash at persist op " + std::to_string(k) +
               (torn ? " (torn writes)" : ""));
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  dev.enable_checker();
  {
    pmemcpy::PMEM p(make_cfg(node));
    p.mmap(kPoolFile);
    // Determinism guard: the replay must line up op-for-op with the
    // counting run or the recorded step windows are meaningless.
    ASSERT_EQ(dev.persist_ops(), plan.setup_ops);

    FaultPlan fp;
    fp.crash_at_persist = k;
    fp.torn_writes = torn;
    dev.set_fault_plan(fp);
    try {
      (void)run_workload(p, dev);
      ADD_FAILURE() << "workload completed despite scheduled crash";
    } catch (const CrashError& e) {
      EXPECT_EQ(e.persist_op, k);
    }
    ASSERT_TRUE(dev.frozen());
    // The crashed handle is simply dropped, like a process that died.
  }

  dev.revive();
  node.remount();

  pmemcpy::PMEM p2(make_cfg(node));
  p2.mmap(kPoolFile);  // re-open runs undo-log recovery

  const auto pool = node.open_pool(kPoolFile);
  const auto report = pool->check();
  EXPECT_TRUE(report.ok()) << "pool corrupt after recovery:"
                           << join_issues(report.issues);

  const auto scrubbed = p2.scrub();
  std::ostringstream bad;
  for (const auto& it : scrubbed.corrupt) {
    bad << "\n  - " << it.key << ": " << it.issue;
  }
  EXPECT_TRUE(scrubbed.ok()) << "scrub found torn entries:" << bad.str();

  check_visibility(p2, plan.marks, k);
  p2.munmap();
  // Recovery + re-read must not introduce violations (the crash itself
  // wiped the pre-crash tracking state, so this covers the post-revive ops).
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
}

void sweep_all_crash_points(bool torn) {
  const MatrixPlan plan = counting_run();
  ASSERT_GT(plan.total_ops, plan.setup_ops);
  std::cout << "[ crash matrix ] sweeping " << plan.total_ops - plan.setup_ops
            << " persist points (ops " << plan.setup_ops + 1 << ".."
            << plan.total_ops << ")\n";
  // Full sweep, no sampling: every persist op the workload issues.
  for (std::uint64_t k = plan.setup_ops + 1; k <= plan.total_ops; ++k) {
    run_crash_point(k, plan, torn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, EveryPersistPointRecoversAtomically) {
  sweep_all_crash_points(/*torn=*/false);
}

TEST(CrashMatrixTest, EveryPersistPointRecoversWithTornWrites) {
  sweep_all_crash_points(/*torn=*/true);
}

// ---------------------------------------------------------------------------
// Pool-level matrix: allocator + transaction persist points
// ---------------------------------------------------------------------------

constexpr std::size_t kPoolBytes = 4ull << 20;
constexpr std::uint64_t kValInit = 0xA1A1A1A1A1A1A1A1ull;
constexpr std::uint64_t kValTx = 0xB2B2B2B2B2B2B2B2ull;
constexpr std::uint64_t kValAbort = 0xC3C3C3C3C3C3C3C3ull;

struct PoolPlan {
  std::uint64_t setup_ops = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t a_off = 0;  ///< offset of the probed allocation
  Marks marks;
};

Marks run_pool_workload(pmemcpy::obj::Pool& pool, pmemcpy::pmem::Device& dev,
                        std::uint64_t* a_out) {
  Marks marks;
  auto step = [&](const char* name, auto&& fn) {
    StepMark m{name, dev.persist_ops(), 0};
    fn();
    m.end = dev.persist_ops();
    marks.steps.push_back(m);
  };
  std::uint64_t a = 0, b = 0, big = 0;
  // Covers every allocator path: class-list pop/push, arena bump, large-list
  // first-fit with a split, plus committed and aborted transactions.
  step("alloc_a", [&] { a = pool.alloc(100); });
  step("set_a", [&] { pool.set<std::uint64_t>(a, kValInit); });
  step("alloc_b", [&] { b = pool.alloc(5000); });
  step("free_b", [&] { pool.free(b); });
  step("alloc_c", [&] { (void)pool.alloc(5000); });    // class-list reuse
  step("alloc_big", [&] { big = pool.alloc(200000); });  // arena (large)
  step("free_big", [&] { pool.free(big); });             // to large list
  step("alloc_big2", [&] { (void)pool.alloc(100000); }); // first-fit + split
  step("tx_commit", [&] {
    pmemcpy::obj::Transaction tx(pool);
    tx.snapshot(a, 8);
    // write(), not set(): commit() flushes every snapshotted range, so an
    // eager persist here would flush the same line twice per transaction.
    pool.write(a, &kValTx, sizeof(kValTx));
    tx.commit();
  });
  step("tx_abort", [&] {
    pmemcpy::obj::Transaction tx(pool);
    tx.snapshot(a, 8);
    pool.write(a, &kValAbort, sizeof(kValAbort));
    // no commit: the destructor rolls back before the step ends
  });
  if (a_out != nullptr) *a_out = a;
  return marks;
}

PoolPlan pool_counting_run() {
  PoolPlan plan;
  pmemcpy::pmem::Device dev(kPoolBytes, /*crash_shadow=*/true);
  dev.enable_checker();
  auto pool = pmemcpy::obj::Pool::create(dev, 0, kPoolBytes);
  plan.setup_ops = dev.persist_ops();
  plan.marks = run_pool_workload(pool, dev, &plan.a_off);
  plan.total_ops = dev.persist_ops();
  EXPECT_EQ(pool.get<std::uint64_t>(plan.a_off), kValTx);
  EXPECT_TRUE(pool.check().ok());
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
  return plan;
}

void run_pool_crash_point(std::uint64_t k, const PoolPlan& plan, bool torn) {
  SCOPED_TRACE("pool crash at persist op " + std::to_string(k) +
               (torn ? " (torn writes)" : ""));
  pmemcpy::pmem::Device dev(kPoolBytes, /*crash_shadow=*/true);
  dev.enable_checker();
  {
    auto pool = pmemcpy::obj::Pool::create(dev, 0, kPoolBytes);
    ASSERT_EQ(dev.persist_ops(), plan.setup_ops);
    FaultPlan fp;
    fp.crash_at_persist = k;
    fp.torn_writes = torn;
    dev.set_fault_plan(fp);
    // A crash inside the abort step's destructor-rollback is swallowed by
    // the (deliberately noexcept) Transaction destructor, so the frozen
    // device — not the exception — is the authoritative crash signal.
    try {
      (void)run_pool_workload(pool, dev, nullptr);
    } catch (const CrashError& e) {
      EXPECT_EQ(e.persist_op, k);
    }
    ASSERT_TRUE(dev.frozen());
  }

  dev.revive();
  auto pool = pmemcpy::obj::Pool::open(dev, 0);
  const auto report = pool.check();
  EXPECT_TRUE(report.ok()) << "pool corrupt after recovery:"
                           << join_issues(report.issues);

  const auto& m = plan.marks;
  const std::uint64_t v = pool.get<std::uint64_t>(plan.a_off);
  if (m.started("tx_abort", k)) {
    // An uncommitted transaction never survives: destructor rollback if it
    // ran, lane-log recovery if the crash pre-empted it.
    EXPECT_EQ(v, kValTx);
  } else if (m.done("tx_commit", k)) {
    EXPECT_EQ(v, kValTx);
  } else if (m.started("tx_commit", k)) {
    EXPECT_TRUE(v == kValInit || v == kValTx) << "a = " << std::hex << v;
  } else if (m.done("set_a", k)) {
    EXPECT_EQ(v, kValInit);
  } else if (m.started("set_a", k)) {
    EXPECT_TRUE(v == 0 || v == kValInit) << "a = " << std::hex << v;
  }

  // The recovered allocator must still function.
  const auto probe = pool.alloc(64);
  pool.set<std::uint64_t>(probe, 0xD00DULL);
  EXPECT_EQ(pool.get<std::uint64_t>(probe), 0xD00DULL);
  pool.free(probe);
  EXPECT_TRUE(pool.check().ok());
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
}

void sweep_pool_crash_points(bool torn) {
  const PoolPlan plan = pool_counting_run();
  ASSERT_GT(plan.total_ops, plan.setup_ops);
  std::cout << "[ crash matrix ] sweeping " << plan.total_ops - plan.setup_ops
            << " allocator/tx persist points\n";
  for (std::uint64_t k = plan.setup_ops + 1; k <= plan.total_ops; ++k) {
    run_pool_crash_point(k, plan, torn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, AllocatorAndTxMatrixRecovers) {
  sweep_pool_crash_points(/*torn=*/false);
}

TEST(CrashMatrixTest, AllocatorAndTxMatrixRecoversWithTornWrites) {
  sweep_pool_crash_points(/*torn=*/true);
}

// ---------------------------------------------------------------------------
// Pool-level matrix with magazines armed (DESIGN.md §14)
// ---------------------------------------------------------------------------

/// Same shape as run_pool_workload, but with per-rank magazines on: the
/// churn covers a refill batch (one undo tx carving K chunks), magazine
/// pops (plain-store pop-seal, persisted by the adjacent payload set),
/// flagged fast-path frees, and an overflow flush_back — so the crash sweep
/// lands inside every magazine persist point at least once.
Marks run_mag_workload(pmemcpy::obj::Pool& pool, pmemcpy::pmem::Device& dev,
                       std::uint64_t* s_out) {
  Marks marks;
  auto step = [&](const char* name, auto&& fn) {
    StepMark m{name, dev.persist_ops(), 0};
    fn();
    m.end = dev.persist_ops();
    marks.steps.push_back(m);
  };
  std::uint64_t s = 0;
  std::uint64_t o[8] = {};
  step("refill_alloc_s", [&] { s = pool.alloc(300); });  // refill batch
  step("set_s", [&] { pool.set<std::uint64_t>(s, kValInit); });
  step("churn_alloc", [&] {
    // Two refills of the 100-byte class plus pops in between.  Each pop's
    // seal is a plain store; the set() right after persists the same line
    // (the publisher's flush in the engine protocol).
    for (std::uint64_t i = 0; i < 8; ++i) {
      o[i] = pool.alloc(100);
      pool.set<std::uint64_t>(o[i], i);
    }
  });
  step("churn_free", [&] {
    // Eight flagged fast-path frees; the last overflows the 2K cap and
    // triggers a flush_back batch of K back to the persistent lists.
    for (std::uint64_t i = 0; i < 8; ++i) pool.free(o[i]);
  });
  step("tx_commit", [&] {
    pmemcpy::obj::Transaction tx(pool);
    tx.snapshot(s, 8);
    pool.write(s, &kValTx, sizeof(kValTx));
    tx.commit();
  });
  step("tx_abort", [&] {
    pmemcpy::obj::Transaction tx(pool);
    tx.snapshot(s, 8);
    pool.write(s, &kValAbort, sizeof(kValAbort));
  });
  if (s_out != nullptr) *s_out = s;
  return marks;
}

void arm_magazines(pmemcpy::obj::Pool& pool) {
  pool.set_magazine_size(4);
  pool.set_alloc_stripes(8);
}

PoolPlan mag_counting_run() {
  PoolPlan plan;
  pmemcpy::pmem::Device dev(kPoolBytes, /*crash_shadow=*/true);
  dev.enable_checker();
  auto pool = pmemcpy::obj::Pool::create(dev, 0, kPoolBytes);
  arm_magazines(pool);
  plan.setup_ops = dev.persist_ops();
  plan.marks = run_mag_workload(pool, dev, &plan.a_off);
  plan.total_ops = dev.persist_ops();
  EXPECT_EQ(pool.get<std::uint64_t>(plan.a_off), kValTx);
  EXPECT_TRUE(pool.check().ok());
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
  return plan;
}

void run_mag_crash_point(std::uint64_t k, const PoolPlan& plan, bool torn) {
  SCOPED_TRACE("magazine crash at persist op " + std::to_string(k) +
               (torn ? " (torn writes)" : ""));
  pmemcpy::pmem::Device dev(kPoolBytes, /*crash_shadow=*/true);
  dev.enable_checker();
  {
    auto pool = pmemcpy::obj::Pool::create(dev, 0, kPoolBytes);
    arm_magazines(pool);
    ASSERT_EQ(dev.persist_ops(), plan.setup_ops);
    FaultPlan fp;
    fp.crash_at_persist = k;
    fp.torn_writes = torn;
    dev.set_fault_plan(fp);
    try {
      (void)run_mag_workload(pool, dev, nullptr);
    } catch (const CrashError& e) {
      EXPECT_EQ(e.persist_op, k);
    }
    ASSERT_TRUE(dev.frozen());
  }

  dev.revive();
  auto pool = pmemcpy::obj::Pool::open(dev, 0);
  const auto report = pool.check();
  EXPECT_TRUE(report.ok()) << "pool corrupt after recovery:"
                           << join_issues(report.issues);
  // The open-time sweep reclaims every chunk the crash left flagged: a
  // magazine never survives its owner.
  EXPECT_EQ(report.magazine_chunks, 0u)
      << report.magazine_chunks << " chunks still magazine-flagged";

  const auto& m = plan.marks;
  const std::uint64_t v = pool.get<std::uint64_t>(plan.a_off);
  if (m.started("tx_abort", k)) {
    EXPECT_EQ(v, kValTx);
  } else if (m.done("tx_commit", k)) {
    EXPECT_EQ(v, kValTx);
  } else if (m.started("tx_commit", k)) {
    EXPECT_TRUE(v == kValInit || v == kValTx) << "s = " << std::hex << v;
  } else if (m.done("set_s", k)) {
    EXPECT_EQ(v, kValInit);
  } else if (m.started("set_s", k)) {
    if (v != 0 && v != kValInit) {
      // A crash that pre-empts the publishing flush reverts the plain-store
      // pop-seal along with the value: the chunk reverts to magazine-
      // flagged and the open-time sweep reclaims it, so the allocation
      // itself unwound and the payload word now holds a free-list link.
      // Prove that is what happened: the class list must hand s back.
      bool reclaimed = false;
      std::vector<std::uint64_t> tmp;
      for (int i = 0; i < 8 && !reclaimed; ++i) {
        const auto got = pool.alloc(300);
        if (got == plan.a_off) {
          reclaimed = true;
        } else {
          tmp.push_back(got);
        }
      }
      EXPECT_TRUE(reclaimed) << "s = " << std::hex << v;
      if (reclaimed) pool.free(plan.a_off);
      for (const auto t : tmp) pool.free(t);
    }
  }

  // The recovered allocator must function both classically and with
  // magazines re-armed.
  const auto probe = pool.alloc(64);
  pool.set<std::uint64_t>(probe, 0xD00DULL);
  EXPECT_EQ(pool.get<std::uint64_t>(probe), 0xD00DULL);
  pool.free(probe);
  arm_magazines(pool);
  const auto probe2 = pool.alloc(100);
  pool.set<std::uint64_t>(probe2, 0xD11DULL);
  EXPECT_EQ(pool.get<std::uint64_t>(probe2), 0xD11DULL);
  pool.free(probe2);
  pool.drain_magazines();
  EXPECT_TRUE(pool.check().ok());
  const auto chk = dev.checker()->take_report();
  EXPECT_TRUE(chk.ok()) << chk.to_string();
}

void sweep_mag_crash_points(bool torn) {
  const PoolPlan plan = mag_counting_run();
  ASSERT_GT(plan.total_ops, plan.setup_ops);
  std::cout << "[ crash matrix ] sweeping " << plan.total_ops - plan.setup_ops
            << " magazine-armed persist points\n";
  for (std::uint64_t k = plan.setup_ops + 1; k <= plan.total_ops; ++k) {
    run_mag_crash_point(k, plan, torn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, MagazineMatrixRecovers) {
  sweep_mag_crash_points(/*torn=*/false);
}

TEST(CrashMatrixTest, MagazineMatrixRecoversWithTornWrites) {
  sweep_mag_crash_points(/*torn=*/true);
}

// ---------------------------------------------------------------------------
// Mutation test: the harness must catch a re-introduced durability bug
// ---------------------------------------------------------------------------

TEST(CrashMatrixValidation, CatchesUnpersistedLaneHeaderCommitBug) {
  pmemcpy::pmem::Device dev(kPoolBytes, /*crash_shadow=*/true);
  dev.enable_checker();
  auto pool = pmemcpy::obj::Pool::create(dev, 0, kPoolBytes);
  const auto off = pool.alloc(64);
  pool.set<std::uint64_t>(off, 42);

  // Control: with the correct commit sequence a committed transaction
  // survives power loss.
  {
    pmemcpy::obj::Transaction tx(pool);
    tx.snapshot(off, 8);
    const std::uint64_t v99 = 99;
    pool.write(off, &v99, sizeof(v99));
    tx.commit();
  }
  ASSERT_TRUE(dev.checker()->take_report().ok())
      << "correct commit sequence must be checker-clean";
  dev.simulate_crash();
  auto good = pmemcpy::obj::Pool::open(dev, 0);
  ASSERT_EQ(good.get<std::uint64_t>(off), 99u);

  // Re-introduce the historical bug: commit() skips persisting the lane-
  // header zero.  The crash reverts the unpersisted zero, re-exposing the
  // stale undo log, and recovery rolls the *committed* transaction back.
  good.test_faults().skip_lane_zero_persist = true;
  {
    pmemcpy::obj::Transaction tx(good);
    tx.snapshot(off, 8);
    const std::uint64_t v7 = 7;
    good.write(off, &v7, sizeof(v7));
    tx.commit();
  }
  // The persistency checker flags the same bug statically, without needing
  // a crash: the lane-header line is still dirty when the scope commits.
  {
    const auto rep = dev.checker()->take_report();
    EXPECT_GE(rep.count(pmemcpy::check::Violation::kDirtyAtCommit), 1u)
        << rep.to_string();
  }
  dev.simulate_crash();
  auto bad = pmemcpy::obj::Pool::open(dev, 0);
  const auto v = bad.get<std::uint64_t>(off);
  EXPECT_NE(v, 7u) << "bug knob had no effect; harness would miss it";
  EXPECT_EQ(v, 99u) << "expected the stale undo log to clobber the commit";
}

// ---------------------------------------------------------------------------
// Scrub: bitrot and failing media on stored entries
// ---------------------------------------------------------------------------

TEST(ScrubTest, DetectsBitrotAndMediaErrors) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("scrub.pool");
  p.store("alpha", 42);
  p.store("gamma", std::string("the quick brown fox"));

  auto rep = p.scrub();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.entries, 2u);

  // Locate both blobs on the device.
  std::size_t alpha_off = 0, alpha_len = 0, gamma_off = 0;
  p.for_each_raw([&](const std::string& key, std::span<const std::byte> blob,
                     std::uint64_t) {
    const auto off = static_cast<std::size_t>(blob.data() - dev.raw(0));
    if (key == "alpha") {
      alpha_off = off;
      alpha_len = blob.size();
    } else if (key == "gamma") {
      gamma_off = off;
    }
  });
  ASSERT_GT(alpha_len, 0u);
  ASSERT_GT(gamma_off, 0u);

  // Bitrot: flip one byte of alpha's blob behind the library's back.
  std::byte orig{};
  dev.read(alpha_off, &orig, 1);
  const std::byte flipped = orig ^ std::byte{0x01};
  dev.write(alpha_off, &flipped, 1);

  EXPECT_THROW((void)p.load<int>("alpha"), pmemcpy::IntegrityError);
  rep = p.scrub();
  ASSERT_EQ(rep.corrupt.size(), 1u);
  EXPECT_EQ(rep.corrupt[0].key, "alpha");
  EXPECT_NE(rep.corrupt[0].issue.find("checksum"), std::string::npos);

  // Failing media: reads of gamma's blob now throw a typed DeviceError.
  dev.inject_read_error(gamma_off, 1);
  EXPECT_THROW((void)p.load<std::string>("gamma"), pmemcpy::pmem::DeviceError);
  rep = p.scrub();
  EXPECT_EQ(rep.corrupt.size(), 2u);

  // Repair both: the store scrubs clean again.
  dev.clear_read_errors();
  dev.write(alpha_off, &orig, 1);
  EXPECT_TRUE(p.scrub().ok());
  EXPECT_EQ(p.load<int>("alpha"), 42);
  EXPECT_EQ(p.load<std::string>("gamma"), "the quick brown fox");
}

// ---------------------------------------------------------------------------
// Read cache across power loss: sweep every persist point of a repair
// relocation while the victim is warm in the DRAM read cache.  The cache is
// volatile state layered over persistent truth — no crash point may leave a
// recovered store whose reads disagree with what was acknowledged.
// ---------------------------------------------------------------------------

TEST(CrashMatrixTest, RepairCrashSweepWithWarmReadCache) {
  namespace trace = pmemcpy::trace;
  const bool trace_was = trace::enabled();
  trace::set_enabled(true);

  auto cached_cfg = [](pmemcpy::PmemNode& node) {
    auto cfg = make_cfg(node);
    cfg.read_cache_bytes = 1u << 20;
    return cfg;
  };
  // Deterministic scene: six entries, every one loaded twice so the whole
  // working set is cache-resident, then the victim's media goes sticky.
  auto build_scene = [&](pmemcpy::PmemNode& node, pmemcpy::PMEM& p) {
    p.mmap("crash.warmcache");
    for (int i = 0; i < 6; ++i) {
      p.store("w" + std::to_string(i), std::vector<int>(16, i + 1));
    }
    const std::uint64_t hits0 = trace::counter(trace::Counter::kReadCacheHits);
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(p.load<std::vector<int>>("w" + std::to_string(i)),
                  std::vector<int>(16, i + 1));
      }
    }
    // The repeats really were DRAM hits: the cache is warm at crash time.
    EXPECT_GT(trace::counter(trace::Counter::kReadCacheHits), hits0);
    std::uint64_t voff = 0;
    p.for_each_raw([&](const std::string& k, std::span<const std::byte> blob,
                       std::uint64_t) {
      if (k == "w2") voff = static_cast<std::uint64_t>(
          blob.data() - node.device().raw());
    });
    ASSERT_NE(voff, 0u);
    node.device().inject_sticky_range(voff, 64);
  };
  auto check_scene = [](pmemcpy::PMEM& p) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(p.load<std::vector<int>>("w" + std::to_string(i)),
                std::vector<int>(16, i + 1))
          << "w" << i;
    }
  };

  // Counting run: learn the persist-op window the relocation spans.
  std::uint64_t ops_before = 0, ops_after = 0;
  {
    pmemcpy::PmemNode node(node_opts());
    pmemcpy::PMEM p(cached_cfg(node));
    build_scene(node, p);
    ops_before = node.device().persist_ops();
    const auto rep = p.repair();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.relocated, 1u);
    ops_after = node.device().persist_ops();
    check_scene(p);
    p.munmap();
  }
  ASSERT_GT(ops_after, ops_before);

  for (std::uint64_t k = ops_before + 1; k <= ops_after; ++k) {
    SCOPED_TRACE("crash at persist op " + std::to_string(k));
    pmemcpy::PmemNode node(node_opts());
    auto& dev = node.device();
    {
      pmemcpy::PMEM p(cached_cfg(node));
      build_scene(node, p);
      ASSERT_EQ(dev.persist_ops(), ops_before);  // replay determinism
      FaultPlan fp;
      fp.crash_at_persist = k;
      fp.torn_writes = true;
      fp.fault_seed = k;
      dev.set_fault_plan(fp);
      try {
        (void)p.repair();
        ADD_FAILURE() << "repair completed despite scheduled crash";
      } catch (const CrashError& e) {
        EXPECT_EQ(e.persist_op, k);
      }
      ASSERT_TRUE(dev.frozen());
    }
    dev.revive();
    node.remount();

    const auto pool = node.open_pool("crash.warmcache");
    const auto report = pool->check();
    EXPECT_TRUE(report.ok()) << join_issues(report.issues);
    pmemcpy::PMEM p2(cached_cfg(node));
    p2.mmap("crash.warmcache");
    check_scene(p2);
    const auto rep2 = p2.repair();
    EXPECT_TRUE(rep2.ok());
    check_scene(p2);
    p2.munmap();
    if (::testing::Test::HasFatalFailure()) break;
  }
  trace::set_enabled(trace_was);
}

// ---------------------------------------------------------------------------
// Trace layer across power loss: spans open at the crash close carrying the
// crashed flag, the registry resets to a clean epoch, and the recovery sweep
// after revive/remount is itself traced.
// ---------------------------------------------------------------------------

TEST(CrashMatrixTrace, OpenSpansCrashMarkedAndRecoveryTraced) {
  namespace trace = pmemcpy::trace;
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  trace::reset();

  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  {
    pmemcpy::PMEM p(make_cfg(node));
    p.mmap(kPoolFile);
    FaultPlan fp;
    fp.crash_at_persist = dev.persist_ops() + 1;  // first persist of the put
    dev.set_fault_plan(fp);
    try {
      p.store("alpha", 42);
      ADD_FAILURE() << "store completed despite scheduled crash";
    } catch (const CrashError&) {
    }
    ASSERT_TRUE(dev.frozen());
  }

  EXPECT_EQ(trace::counter(pmemcpy::trace::Counter::kCrashes), 1u);
  bool put_crashed = false;
  for (const auto& s : trace::snapshot()) {
    // Spans that closed before the power loss keep crashed=false; the
    // put that the crash cut through is flagged (and still closed
    // normally as the CrashError unwound the stack).
    if (std::string_view(s.name) == "core.put") {
      EXPECT_TRUE(s.crashed);
      EXPECT_GE(s.end_ns, s.start_ns);
      put_crashed = true;
    }
    if (std::string_view(s.name) == "core.mmap") EXPECT_FALSE(s.crashed);
  }
  EXPECT_TRUE(put_crashed) << "no core.put span recorded at the crash";

  // The registry survives the crash and resets to a clean epoch.
  trace::reset();
  EXPECT_TRUE(trace::snapshot().empty());
  EXPECT_EQ(trace::counter(pmemcpy::trace::Counter::kCrashes), 0u);

  // Recovery after revive/remount is traced like any other work.
  dev.revive();
  node.remount();
  pmemcpy::PMEM p2(make_cfg(node));
  p2.mmap(kPoolFile);
  EXPECT_GE(trace::counter(pmemcpy::trace::Counter::kRecoveries), 1u);
  bool recover_span = false;
  for (const auto& s : trace::snapshot()) {
    if (std::string_view(s.name) == "pool.recover") {
      recover_span = true;
      EXPECT_FALSE(s.crashed);
      EXPECT_GE(s.end_ns, s.start_ns);
    }
  }
  EXPECT_TRUE(recover_span) << "recovery sweep left no pool.recover span";
  // The un-crashed put never published: the key must be absent, cleanly.
  EXPECT_FALSE(p2.exists("alpha"));
  p2.munmap();

  trace::reset();
  trace::set_enabled(was_enabled);
}

}  // namespace
