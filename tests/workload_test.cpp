// Tests for the S3D-style 3-D domain decomposition workload generator.
#include <pmemcpy/workload/domain3d.hpp>

#include <gtest/gtest.h>

#include <set>

namespace {

using pmemcpy::Box;
using pmemcpy::Dimensions;
namespace wk = pmemcpy::wk;

TEST(BalancedFactors, ProductMatches) {
  for (int n : {1, 2, 3, 8, 16, 24, 32, 48, 97}) {
    const auto f = wk::balanced_factors(n);
    EXPECT_EQ(f[0] * f[1] * f[2], static_cast<std::size_t>(n)) << n;
  }
}

TEST(BalancedFactors, PrefersCubes) {
  EXPECT_EQ(wk::balanced_factors(8), (std::array<std::size_t, 3>{2, 2, 2}));
  EXPECT_EQ(wk::balanced_factors(27), (std::array<std::size_t, 3>{3, 3, 3}));
  const auto f24 = wk::balanced_factors(24);
  EXPECT_EQ(f24[0] * f24[1] * f24[2], 24u);
  EXPECT_LE(f24[0], 4u);  // 4x3x2 beats 24x1x1
}

TEST(BalancedFactors, InvalidThrows) {
  EXPECT_THROW((void)wk::balanced_factors(0), std::invalid_argument);
}

class DecomposeTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeTest, BoxesPartitionTheCube) {
  const int nranks = GetParam();
  const auto dec = wk::decompose(1 << 15, nranks);
  ASSERT_EQ(dec.rank_boxes.size(), static_cast<std::size_t>(nranks));

  // All boxes identical size, disjoint, and covering the global cube.
  std::size_t covered = 0;
  const std::size_t per = dec.rank_boxes[0].elements();
  for (const auto& b : dec.rank_boxes) {
    EXPECT_EQ(b.elements(), per);
    covered += b.elements();
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_LE(b.offset[d] + b.count[d], dec.global[d]);
    }
  }
  EXPECT_EQ(covered, dec.total_elements());
  for (std::size_t i = 0; i < dec.rank_boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < dec.rank_boxes.size(); ++j) {
      EXPECT_TRUE(
          pmemcpy::intersect(dec.rank_boxes[i], dec.rank_boxes[j]).empty())
          << i << " vs " << j;
    }
  }
}

TEST_P(DecomposeTest, VolumeNearTarget) {
  const int nranks = GetParam();
  const std::size_t target = 1 << 18;
  const auto dec = wk::decompose(target, nranks);
  const double ratio = static_cast<double>(dec.total_elements()) /
                       static_cast<double>(target);
  EXPECT_GT(ratio, 0.85) << nranks;
  EXPECT_LT(ratio, 1.15) << nranks;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DecomposeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 24, 32, 48));

TEST(ElementValue, DeterministicAndVariesByVar) {
  EXPECT_EQ(wk::element_value(3, 100), wk::element_value(3, 100));
  EXPECT_NE(wk::element_value(3, 100), wk::element_value(4, 100));
}

TEST(FillVerify, MatchingPatternPasses) {
  const auto dec = wk::decompose(4096, 4);
  std::vector<double> buf;
  wk::fill_box(buf, 2, dec.global, dec.rank_boxes[1]);
  EXPECT_EQ(wk::verify_box(buf, 2, dec.global, dec.rank_boxes[1]), 0u);
}

TEST(FillVerify, CorruptionDetected) {
  const auto dec = wk::decompose(4096, 4);
  std::vector<double> buf;
  wk::fill_box(buf, 0, dec.global, dec.rank_boxes[0]);
  buf[7] += 1.0;
  EXPECT_EQ(wk::verify_box(buf, 0, dec.global, dec.rank_boxes[0]), 1u);
}

TEST(FillVerify, WrongVarDetected) {
  const auto dec = wk::decompose(4096, 4);
  std::vector<double> buf;
  wk::fill_box(buf, 0, dec.global, dec.rank_boxes[0]);
  EXPECT_GT(wk::verify_box(buf, 1, dec.global, dec.rank_boxes[0]), 0u);
}

TEST(FillVerify, ShortBufferDetected) {
  const auto dec = wk::decompose(4096, 4);
  std::vector<double> buf(3);
  EXPECT_EQ(wk::verify_box(buf, 0, dec.global, dec.rank_boxes[0]),
            dec.rank_boxes[0].elements());
}

}  // namespace
