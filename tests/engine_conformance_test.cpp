// Conformance suite for the storage-engine contract (engine/engine.hpp):
// every engine — flat table, hierarchical tree, sharded composition — must
// satisfy the same put/find/erase/prefix-iteration/batch semantics the core
// relies on.  The whole suite runs with the persistency-order checker
// attached, so any flush/fence-ordering violation in an engine's write path
// fails the test that provoked it.  Pool-backed engines additionally get a
// crash-at-every-persist sweep of the group-commit publish path.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/obj/hashtable.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/pmem/device.hpp>
#include <pmemcpy/pmemcpy.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace {

using pmemcpy::PmemNode;
using pmemcpy::engine::Engine;
using pmemcpy::engine::EntryInfo;
using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::FaultPlan;

enum class Kind { kTable, kTree, kSharded };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kTable: return "Table";
    case Kind::kTree: return "Tree";
    case Kind::kSharded: return "Sharded";
  }
  return "?";
}

std::unique_ptr<Engine> open_engine(PmemNode& node, Kind kind) {
  if (kind == Kind::kTree) {
    return pmemcpy::engine::open_tree_engine(node, "/store", false, nullptr);
  }
  pmemcpy::engine::PoolEngineOptions o;
  o.name = "test";
  o.nbuckets = 256;
  o.shards = kind == Kind::kSharded ? 4 : 1;
  return pmemcpy::engine::open_pool_engine(node, o, nullptr);
}

class EngineTest : public ::testing::TestWithParam<Kind> {
 protected:
  EngineTest() {
    PmemNode::Options o;
    o.capacity = 64ull << 20;
    node_ = std::make_unique<PmemNode>(o);
    node_->device().enable_checker();
    engine_ = open_engine(*node_, GetParam());
  }

  ~EngineTest() override {
    engine_.reset();
    const auto rep = node_->device().checker()->take_report();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }

  static void put_str(Engine& st, const std::string& key,
                      const std::string& value, std::uint64_t meta = 0,
                      bool keep_existing = false) {
    auto put = st.put(key, value.size(), meta, keep_existing);
    put->sink().write(value.data(), value.size());
    put->commit(0);
  }

  static void batch_put_str(Engine::Batch& b, const std::string& key,
                            const std::string& value, std::uint64_t meta = 0,
                            bool keep_existing = false) {
    auto put = b.put(key, value.size(), meta, keep_existing);
    put->sink().write(value.data(), value.size());
    put->commit(0);
  }

  static std::string get_str(Engine& st, const std::string& key) {
    auto e = st.find(key);
    if (!e) return "<missing>";
    std::string out(e->info().size, '\0');
    e->read(0, out.data(), out.size());
    return out;
  }

  std::unique_ptr<PmemNode> node_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(EngineTest, PutFindRoundtrip) {
  put_str(*engine_, "k", "hello", 42);
  auto e = engine_->find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->info().size, 5u);
  EXPECT_EQ(e->info().meta, 42u);
  EXPECT_EQ(get_str(*engine_, "k"), "hello");
}

TEST_P(EngineTest, FindMissingReturnsNull) {
  EXPECT_EQ(engine_->find("nope"), nullptr);
}

TEST_P(EngineTest, PartialRead) {
  put_str(*engine_, "k", "0123456789");
  auto e = engine_->find("k");
  char buf[4];
  e->read(3, buf, 4);
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_THROW(e->read(8, buf, 4), std::exception);
}

TEST_P(EngineTest, StoredSpanMatches) {
  // Zero-copy read contract (DESIGN.md §13): stored_span() is a direct
  // const view of the committed blob, sized exactly, with the bytes readable
  // in place.
  put_str(*engine_, "k", "direct-data");
  auto e = engine_->find("k");
  const auto span = e->stored_span();
  ASSERT_EQ(span.size(), 11u);
  EXPECT_EQ(std::memcmp(span.data(), "direct-data", 11), 0);
  // A second call is stable — same bytes, same extent.
  const auto again = e->stored_span();
  ASSERT_EQ(again.size(), span.size());
  EXPECT_EQ(std::memcmp(again.data(), span.data(), span.size()), 0);
}

TEST_P(EngineTest, ReservedSpanBacksTheSink) {
  // Zero-copy contract (DESIGN.md §12): the engine reserves the payload
  // extent up front and exposes it, and bytes written through the sink land
  // in that exact span — no staging copy between serializer and PMEM.
  auto put = engine_->put("zc", 24, 0, false);
  const auto span = put->reserved_span();
  ASSERT_EQ(span.size(), 24u);
  const std::string payload = "reserve-then-serialize!!";
  put->sink().write(payload.data(), payload.size());
  EXPECT_EQ(std::memcmp(span.data(), payload.data(), payload.size()), 0);
  put->commit(0);
  EXPECT_EQ(get_str(*engine_, "zc"), payload);
}

TEST_P(EngineTest, BatchReservedSpansAreDistinct) {
  auto b = engine_->begin_batch();
  auto p1 = b->put("z1", 8, 0, false);
  auto p2 = b->put("z2", 8, 0, false);
  const auto s1 = p1->reserved_span();
  const auto s2 = p2->reserved_span();
  ASSERT_EQ(s1.size(), 8u);
  ASSERT_EQ(s2.size(), 8u);
  EXPECT_NE(s1.data(), s2.data());
  p1->sink().write("AAAAAAAA", 8);
  p1->commit(0);
  p2->sink().write("BBBBBBBB", 8);
  p2->commit(0);
  b->commit();
  EXPECT_EQ(get_str(*engine_, "z1"), "AAAAAAAA");
  EXPECT_EQ(get_str(*engine_, "z2"), "BBBBBBBB");
}

TEST_P(EngineTest, ReplaceLastWins) {
  put_str(*engine_, "k", "first");
  put_str(*engine_, "k", "second");
  EXPECT_EQ(get_str(*engine_, "k"), "second");
}

TEST_P(EngineTest, KeepExistingFirstWins) {
  put_str(*engine_, "k", "first");
  put_str(*engine_, "k", "second", 0, /*keep_existing=*/true);
  EXPECT_EQ(get_str(*engine_, "k"), "first");
}

TEST_P(EngineTest, UncommittedPutInvisible) {
  {
    auto put = engine_->put("ghost", 5, 0, false);
    put->sink().write("abcde", 5);
    // no commit
  }
  EXPECT_EQ(engine_->find("ghost"), nullptr);
}

TEST_P(EngineTest, Erase) {
  put_str(*engine_, "k", "x");
  EXPECT_TRUE(engine_->erase("k"));
  EXPECT_FALSE(engine_->erase("k"));
  EXPECT_EQ(engine_->find("k"), nullptr);
}

TEST_P(EngineTest, ForEachPrefix) {
  put_str(*engine_, "var#p:0_0:2_2", "a");
  put_str(*engine_, "var#p:2_0:2_2", "b");
  put_str(*engine_, "var#dims", "d");
  put_str(*engine_, "other", "o");
  std::set<std::string> seen;
  engine_->for_each_prefix("var#p:",
                           [&](const std::string& key, const EntryInfo&) {
                             seen.insert(key);
                           });
  EXPECT_EQ(seen,
            (std::set<std::string>{"var#p:0_0:2_2", "var#p:2_0:2_2"}));
}

TEST_P(EngineTest, PrefixWithDirectoryComponent) {
  put_str(*engine_, "grp/var#p:0:1", "a");
  put_str(*engine_, "grp/var2#p:0:1", "b");
  std::set<std::string> seen;
  engine_->for_each_prefix("grp/var#",
                           [&](const std::string& key, const EntryInfo&) {
                             seen.insert(key);
                           });
  EXPECT_EQ(seen, (std::set<std::string>{"grp/var#p:0:1"}));
}

TEST_P(EngineTest, ConcurrentSameKeyFirstWins) {
  // The "#dims" pattern: many threads storing the same key with
  // keep_existing must not corrupt anything and exactly one must win.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Engines are thread-compatible per rank; make one per thread like
      // the real per-rank PMEM objects do.
      auto st = open_engine(*node_, GetParam());
      const std::string v = "writer" + std::to_string(t);
      for (int i = 0; i < 10; ++i) {
        auto put = st->put("dims", v.size(), 0, /*keep_existing=*/true);
        put->sink().write(v.data(), v.size());
        put->commit(0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string v = get_str(*engine_, "dims");
  EXPECT_EQ(v.substr(0, 6), "writer");
}

// --- batch / group-commit semantics ----------------------------------------

TEST_P(EngineTest, BatchStagedInvisibleUntilCommit) {
  auto batch = engine_->begin_batch();
  batch_put_str(*batch, "a", "alpha", 7);
  batch_put_str(*batch, "b", "bravo", 8);
  EXPECT_EQ(batch->staged(), 2u);
  // Staged entries are invisible to every reader, including the stager.
  EXPECT_EQ(engine_->find("a"), nullptr);
  EXPECT_EQ(engine_->find("b"), nullptr);
  batch->commit();
  EXPECT_EQ(batch->staged(), 0u);
  EXPECT_EQ(get_str(*engine_, "a"), "alpha");
  EXPECT_EQ(get_str(*engine_, "b"), "bravo");
  auto e = engine_->find("a");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->info().meta, 7u);
}

TEST_P(EngineTest, AbandonedBatchLeavesNoTrace) {
  {
    auto batch = engine_->begin_batch();
    batch_put_str(*batch, "gone", "xxxx");
    // destroyed without commit
  }
  EXPECT_EQ(engine_->find("gone"), nullptr);
}

TEST_P(EngineTest, BatchUncommittedHandleNotPublished) {
  auto batch = engine_->begin_batch();
  {
    auto put = batch->put("half", 4, 0, false);
    put->sink().write("half", 4);
    // handle destroyed without commit(crc): never staged
  }
  batch->commit();
  EXPECT_EQ(engine_->find("half"), nullptr);
}

TEST_P(EngineTest, BatchReplacesExistingEntry) {
  put_str(*engine_, "k", "old");
  auto batch = engine_->begin_batch();
  batch_put_str(*batch, "k", "new");
  EXPECT_EQ(get_str(*engine_, "k"), "old");  // until commit
  batch->commit();
  EXPECT_EQ(get_str(*engine_, "k"), "new");
}

TEST_P(EngineTest, WithinBatchDuplicateKeyReplaceLastWins) {
  auto batch = engine_->begin_batch();
  batch_put_str(*batch, "k", "first");
  batch_put_str(*batch, "k", "second");
  batch->commit();
  EXPECT_EQ(get_str(*engine_, "k"), "second");
}

TEST_P(EngineTest, WithinBatchKeepExistingFirstWins) {
  auto batch = engine_->begin_batch();
  batch_put_str(*batch, "k", "first", 0, /*keep_existing=*/true);
  batch_put_str(*batch, "k", "second", 0, /*keep_existing=*/true);
  batch->commit();
  EXPECT_EQ(get_str(*engine_, "k"), "first");
}

TEST_P(EngineTest, BatchKeepExistingLosesToPersistentEntry) {
  put_str(*engine_, "k", "existing");
  auto batch = engine_->begin_batch();
  batch_put_str(*batch, "k", "late", 0, /*keep_existing=*/true);
  batch->commit();
  EXPECT_EQ(get_str(*engine_, "k"), "existing");
}

TEST_P(EngineTest, LargeBatchRoundtrip) {
  constexpr int kN = 64;
  auto batch = engine_->begin_batch();
  for (int i = 0; i < kN; ++i) {
    batch_put_str(*batch, "key" + std::to_string(i),
                  "value-" + std::to_string(i), i);
  }
  batch->commit();
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(get_str(*engine_, "key" + std::to_string(i)),
              "value-" + std::to_string(i));
  }
  std::size_t n = 0;
  engine_->for_each_prefix(
      "key", [&](const std::string&, const EntryInfo&) { ++n; });
  EXPECT_EQ(n, static_cast<std::size_t>(kN));
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTest,
                         ::testing::Values(Kind::kTable, Kind::kTree,
                                           Kind::kSharded),
                         [](const auto& info) {
                           return kind_name(info.param);
                         });

// --- group-commit fence efficiency -----------------------------------------

// The point of batching on the flat layout: publishing N staged entries
// costs two fences total (data fence + visibility fence), not O(N).
TEST(EngineBatchFences, TableBatchCommitIsTwoFences) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  node.device().enable_checker();
  auto eng = open_engine(node, Kind::kTable);

  auto batch = eng->begin_batch();
  for (int i = 0; i < 32; ++i) {
    const std::string v = "payload-" + std::to_string(i);
    auto put = batch->put("k" + std::to_string(i), v.size(), 0, false);
    put->sink().write(v.data(), v.size());
    put->commit(0);
  }
  const auto before = node.device().checker()->report();
  batch->commit();
  const auto after = node.device().checker()->report();
  EXPECT_LE(after.fence_ops - before.fence_ops, 2u);

  eng.reset();
  const auto rep = node.device().checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// A sharded batch pays at most two fences per *touched shard*.
TEST(EngineBatchFences, ShardedBatchFencesScaleWithShards) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  node.device().enable_checker();
  auto eng = open_engine(node, Kind::kSharded);

  auto batch = eng->begin_batch();
  for (int i = 0; i < 32; ++i) {
    const std::string v = "payload-" + std::to_string(i);
    auto put = batch->put("k" + std::to_string(i), v.size(), 0, false);
    put->sink().write(v.data(), v.size());
    put->commit(0);
  }
  const auto before = node.device().checker()->report();
  batch->commit();
  const auto after = node.device().checker()->report();
  EXPECT_LE(after.fence_ops - before.fence_ops, 2u * 4u);

  eng.reset();
  const auto rep = node.device().checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// --- sharded layout ---------------------------------------------------------

TEST(ShardedEngine, KeysSpreadAcrossShardPools) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  auto eng = open_engine(node, Kind::kSharded);
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    const std::string v = "v" + std::to_string(i);
    auto put = eng->put("key/" + std::to_string(i), v.size(), 0, false);
    put->sink().write(v.data(), v.size());
    put->commit(0);
  }
  // Union over shards is exactly the key set.
  std::set<std::string> seen;
  eng->for_each_prefix("key/", [&](const std::string& k, const EntryInfo&) {
    seen.insert(k);
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kN));
  // Every shard pool exists and holds a nontrivial share of the keys.
  for (int s = 0; s < 4; ++s) {
    auto pool = node.open_pool("test.s" + std::to_string(s));
    auto table = node.table_for(pool, pool->root());
    EXPECT_GT(table->count(), 10u) << "shard " << s << " underloaded";
  }
}

TEST(ShardedEngine, ReopenSeesSameData) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  {
    auto eng = open_engine(node, Kind::kSharded);
    auto put = eng->put("persist/me", 4, 9, false);
    put->sink().write("data", 4);
    put->commit(0);
  }
  auto eng = open_engine(node, Kind::kSharded);
  auto e = eng->find("persist/me");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->info().meta, 9u);
}

// --- crash-at-every-persist sweep of the group-commit publish path ----------

struct CrashKv {
  std::string key;
  std::string value;
};

std::vector<CrashKv> crash_kv() {
  // Keys that collide into the same (tiny) bucket space plus spread ones,
  // so the sweep crosses both shared-chain and fresh-slot publish stores.
  std::vector<CrashKv> kv;
  for (int i = 0; i < 6; ++i) {
    kv.push_back({"ck" + std::to_string(i),
                  "payload-" + std::to_string(i) + "-0123456789"});
  }
  return kv;
}

std::unique_ptr<Engine> open_crash_engine(PmemNode& node, std::size_t shards) {
  pmemcpy::engine::PoolEngineOptions o;
  o.name = "crash";
  o.nbuckets = 4;       // force chained buckets
  o.auto_grow = false;  // keep the op sequence flat and deterministic
  o.shards = shards;
  return pmemcpy::engine::open_pool_engine(node, o, nullptr);
}

PmemNode::Options crash_node_opts() {
  PmemNode::Options o;
  // Large enough that a 4-way shard split still clears the per-pool
  // minimum (heap_start + 64K ≈ 1.1 MB per shard).
  o.capacity = 32ull << 20;
  o.pool_fraction = 0.5;
  o.crash_shadow = true;
  return o;
}

void run_crash_batch(Engine& eng, const std::vector<CrashKv>& kv) {
  auto batch = eng.begin_batch();
  for (const auto& e : kv) {
    auto put = batch->put(e.key, e.value.size(), 1, false);
    put->sink().write(e.value.data(), e.value.size());
    put->commit(0);
  }
  batch->commit();
}

void crash_sweep(std::size_t shards, bool torn) {
  const auto kv = crash_kv();

  // Counting run: learn the persist-op window of the batched workload.
  std::uint64_t setup = 0, total = 0;
  {
    PmemNode node(crash_node_opts());
    auto eng = open_crash_engine(node, shards);
    setup = node.device().persist_ops();
    run_crash_batch(*eng, kv);
    total = node.device().persist_ops();
    for (const auto& e : kv) {
      auto found = eng->find(e.key);
      ASSERT_NE(found, nullptr);
    }
  }
  ASSERT_GT(total, setup);

  for (std::uint64_t k = setup + 1; k <= total; ++k) {
    SCOPED_TRACE("crash at persist op " + std::to_string(k) +
                 (torn ? " (torn)" : ""));
    PmemNode node(crash_node_opts());
    auto& dev = node.device();
    {
      auto eng = open_crash_engine(node, shards);
      ASSERT_EQ(dev.persist_ops(), setup);
      FaultPlan fp;
      fp.crash_at_persist = k;
      fp.torn_writes = torn;
      dev.set_fault_plan(fp);
      try {
        run_crash_batch(*eng, kv);
        ADD_FAILURE() << "batch completed despite scheduled crash";
      } catch (const CrashError& e) {
        EXPECT_EQ(e.persist_op, k);
      }
      ASSERT_TRUE(dev.frozen());
      // The crashed engine (with its staged, unpublished handles) is
      // dropped like a dead process; unwind must not disturb the image.
    }
    dev.revive();
    node.remount();

    auto eng = open_crash_engine(node, shards);
    // Atomicity invariant: each key is absent or completely intact.  A
    // crash mid-commit may publish any prefix of the batch, never a torn
    // entry.
    for (const auto& e : kv) {
      auto found = eng->find(e.key);
      if (!found) continue;
      ASSERT_EQ(found->info().size, e.value.size());
      std::string out(e.value.size(), '\0');
      found->read(0, out.data(), out.size());
      EXPECT_EQ(out, e.value);
    }
  }
}

TEST(EngineCrashMatrix, TableGroupCommitAtomicPerEntry) {
  crash_sweep(1, /*torn=*/false);
}

TEST(EngineCrashMatrix, TableGroupCommitAtomicPerEntryTorn) {
  crash_sweep(1, /*torn=*/true);
}

TEST(EngineCrashMatrix, ShardedGroupCommitAtomicPerEntry) {
  crash_sweep(4, /*torn=*/false);
}

// --- PMEM-level batch scope and shards --------------------------------------

TEST(PmemBatch, ScopeStagesAndCommits) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  pmemcpy::Config cfg;
  cfg.node = &node;
  pmemcpy::PMEM p(cfg);
  p.mmap("batch.pool");

  auto b = p.batch();
  p.store("x", 11);
  p.store("y", std::string("twelve"));
  EXPECT_THROW((void)p.load<int>("x"), pmemcpy::KeyError);  // staged, invisible
  EXPECT_THROW(p.batch(), pmemcpy::StateError);       // no nesting
  b.commit();
  EXPECT_EQ(p.load<int>("x"), 11);
  EXPECT_EQ(p.load<std::string>("y"), "twelve");
  p.munmap();
}

TEST(PmemBatch, AbandonedScopeDiscards) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  pmemcpy::Config cfg;
  cfg.node = &node;
  pmemcpy::PMEM p(cfg);
  p.mmap("batch.pool");
  {
    auto b = p.batch();
    p.store("x", 11);
  }
  EXPECT_FALSE(p.exists("x"));
  p.store("x", 22);  // a fresh unbatched store works afterwards
  EXPECT_EQ(p.load<int>("x"), 22);
  p.munmap();
}

TEST(PmemShards, MultiRankShardedRoundtrip) {
  constexpr int kRanks = 8;
  PmemNode::Options o;
  o.capacity = 256ull << 20;
  PmemNode node(o);
  pmemcpy::par::Runtime::run(kRanks, [&](pmemcpy::par::Comm& comm) {
    pmemcpy::Config cfg;
    cfg.node = &node;
    cfg.shards = 4;
    pmemcpy::PMEM p(cfg);
    p.mmap("shards.pool", comm);
    const std::size_t dims[1] = {kRanks * 16};
    p.alloc<double>("v", 1, dims);
    std::vector<double> mine(16);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = comm.rank() * 100.0 + static_cast<double>(i);
    }
    const std::size_t off = static_cast<std::size_t>(comm.rank()) * 16;
    const std::size_t cnt = 16;
    p.store("v", mine.data(), 1, &off, &cnt);
    comm.barrier();
    std::vector<double> back(16, -1.0);
    p.load("v", back.data(), 1, &off, &cnt);
    EXPECT_EQ(back, mine);
    // Cross-rank read: the piece written by the neighbour.
    const std::size_t noff =
        static_cast<std::size_t>((comm.rank() + 1) % kRanks) * 16;
    p.load("v", back.data(), 1, &noff, &cnt);
    EXPECT_EQ(back[0], ((comm.rank() + 1) % kRanks) * 100.0);
    p.munmap();
  });
}

}  // namespace
