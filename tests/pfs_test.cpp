// Tests for the parallel-filesystem model and the burst-buffer drain path.
#include <pmemcpy/bb/burst_buffer.hpp>

#include <gtest/gtest.h>

#include <numeric>

namespace {

using pmemcpy::PMEM;
using pmemcpy::PmemNode;
using pmemcpy::bb::BurstBuffer;
using pmemcpy::pfs::ParallelFileSystem;
using pmemcpy::sim::Charge;

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(PfsTest, PutGetRoundtrip) {
  ParallelFileSystem pfs;
  const auto data = bytes({1, 2, 3, 4});
  pfs.put("obj", data);
  const auto back = pfs.get("obj");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(PfsTest, GetMissingReturnsNullopt) {
  ParallelFileSystem pfs;
  EXPECT_FALSE(pfs.get("nope").has_value());
}

TEST(PfsTest, OverwriteAndRemove) {
  ParallelFileSystem pfs;
  pfs.put("k", bytes({1}));
  pfs.put("k", bytes({2, 3}));
  EXPECT_EQ(pfs.size("k"), 2u);
  EXPECT_TRUE(pfs.remove("k"));
  EXPECT_FALSE(pfs.remove("k"));
  EXPECT_FALSE(pfs.exists("k"));
}

TEST(PfsTest, ListByPrefix) {
  ParallelFileSystem pfs;
  pfs.put("ckpt/a", bytes({1}));
  pfs.put("ckpt/b", bytes({2}));
  pfs.put("other", bytes({3}));
  const auto names = pfs.list("ckpt/");
  EXPECT_EQ(names, (std::vector<std::string>{"ckpt/a", "ckpt/b"}));
  EXPECT_EQ(pfs.bytes_stored(), 3u);
}

TEST(PfsTest, TransfersAreCharged) {
  ParallelFileSystem pfs;
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  std::vector<std::byte> big(1 << 20);
  pfs.put("big", big);
  const double after_put = c.charged(Charge::kPfs);
  EXPECT_GT(after_put, 1e-4);  // latency + ~0.7ms at 1.5 GB/s
  (void)pfs.get("big");
  EXPECT_GT(c.charged(Charge::kPfs), after_put);
}

TEST(PfsTest, PfsIsFarSlowerThanPmem) {
  ParallelFileSystem pfs;
  PmemNode node;
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  std::vector<std::byte> buf(4 << 20);
  node.device().write(0, buf.data(), buf.size());
  const double pmem_t = c.charged(Charge::kPmemWrite);
  pfs.put("o", buf);
  const double pfs_t = c.charged(Charge::kPfs);
  EXPECT_GT(pfs_t, 2 * pmem_t);
}

struct BurstBufferTest : ::testing::Test {
  BurstBufferTest() {
    PmemNode::Options o;
    o.capacity = 64ull << 20;
    node = std::make_unique<PmemNode>(o);
    cfg.node = node.get();
  }
  std::unique_ptr<PmemNode> node;
  pmemcpy::Config cfg;
  ParallelFileSystem pfs;
};

TEST_F(BurstBufferTest, DrainShipsEverything) {
  PMEM pmem{cfg};
  pmem.mmap("/app");
  std::vector<double> v(1000);
  std::iota(v.begin(), v.end(), 0.0);
  const std::size_t dims = v.size(), off = 0;
  pmem.alloc<double>("A", 1, &dims);
  pmem.store("A", v.data(), 1, &off, &dims);
  pmem.store("step", std::int32_t{7});

  BurstBuffer bb(pfs);
  const auto report = bb.drain(pmem, "ckpt0");
  EXPECT_EQ(report.entries, 3u);  // A#dims, A#p:..., step
  EXPECT_GT(report.bytes, 8000u);
  EXPECT_GT(report.ready_at, report.started_at);
  EXPECT_EQ(pfs.list("ckpt0/").size(), 3u);
  pmem.munmap();
}

TEST_F(BurstBufferTest, DrainIsAsynchronous) {
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  PMEM pmem{cfg};
  pmem.mmap("/app");
  std::vector<double> v(1 << 18);
  pmem.store("big", v);

  BurstBuffer bb(pfs);
  const double before = c.now();
  const auto report = bb.drain(pmem, "d");
  EXPECT_DOUBLE_EQ(c.now(), before);  // caller pays nothing
  EXPECT_GT(report.duration(), 1e-4);
  BurstBuffer::wait(report);
  EXPECT_GE(c.now(), report.ready_at);
  pmem.munmap();
}

TEST_F(BurstBufferTest, StageInRestoresData) {
  {
    PMEM pmem{cfg};
    pmem.mmap("/app");
    std::vector<double> v(512);
    std::iota(v.begin(), v.end(), 1.5);
    const std::size_t dims = v.size(), off = 0;
    pmem.alloc<double>("A", 1, &dims);
    pmem.store("A", v.data(), 1, &off, &dims);
    pmem.store("note", std::string("hello pfs"));
    BurstBuffer bb(pfs);
    BurstBuffer::wait(bb.drain(pmem, "ckpt"));
    pmem.munmap();
  }
  // A different node (e.g. after the machine was reimaged) stages in.
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode fresh(o);
  pmemcpy::Config cfg2;
  cfg2.node = &fresh;
  PMEM pmem{cfg2};
  pmem.mmap("/restored");
  BurstBuffer bb(pfs);
  const auto report = bb.stage_in("ckpt", pmem);
  EXPECT_EQ(report.entries, 3u);
  EXPECT_EQ(pmem.load<std::string>("note"), "hello pfs");
  const auto dims = pmem.load_dims("A");
  ASSERT_EQ(dims.size(), 1u);
  std::vector<double> v(dims[0]);
  const std::size_t off = 0;
  pmem.load("A", v.data(), 1, &off, &dims[0]);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[511], 512.5);
  pmem.munmap();
}

TEST_F(BurstBufferTest, IdsListsVariables) {
  PMEM pmem{cfg};
  pmem.mmap("/app");
  pmem.store("scalar", 1.0);
  const std::size_t dims = 16, off = 0;
  std::vector<double> v(16);
  pmem.alloc<double>("arr", 1, &dims);
  pmem.store("arr", v.data(), 1, &off, &dims);
  EXPECT_EQ(pmem.ids(), (std::vector<std::string>{"arr", "scalar"}));
  pmem.munmap();
}

TEST_F(BurstBufferTest, WorksWithHierarchicalLayout) {
  cfg.layout = pmemcpy::Layout::kHierarchical;
  PMEM pmem{cfg};
  pmem.mmap("/tree.bp");
  pmem.store("grp/x", 2.5);
  pmem.store("y", 3.5);
  BurstBuffer bb(pfs);
  const auto report = bb.drain(pmem, "t");
  EXPECT_EQ(report.entries, 2u);
  EXPECT_TRUE(pfs.exists("t/grp/x"));
  EXPECT_TRUE(pfs.exists("t/y"));
  EXPECT_EQ(pmem.ids(), (std::vector<std::string>{"grp/x", "y"}));
  pmem.munmap();
}

}  // namespace
