// Tests for the simulated-clock context and machine model.
#include <pmemcpy/sim/context.hpp>

#include <gtest/gtest.h>

#include <thread>

namespace {

using pmemcpy::sim::Charge;
using pmemcpy::sim::Context;
using pmemcpy::sim::ScopedContext;
using pmemcpy::sim::ctx;
using pmemcpy::sim::default_model;

TEST(ContextTest, AdvanceAccumulates) {
  Context c;
  c.advance(1.5, Charge::kCpuCopy);
  c.advance(0.5, Charge::kNetwork);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  EXPECT_DOUBLE_EQ(c.charged(Charge::kCpuCopy), 1.5);
  EXPECT_DOUBLE_EQ(c.charged(Charge::kNetwork), 0.5);
}

TEST(ContextTest, ResetClearsEverything) {
  Context c;
  c.advance(3.0, Charge::kPmemWrite);
  c.reset_clock();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_DOUBLE_EQ(c.charged(Charge::kPmemWrite), 0.0);
}

TEST(ContextTest, DefaultContextUsedOutsideScopes) {
  auto& d = pmemcpy::sim::default_context();
  EXPECT_EQ(&ctx(), &d);
}

TEST(ContextTest, ScopedContextInstallsAndRestores) {
  Context mine;
  {
    ScopedContext sc(mine);
    EXPECT_EQ(&ctx(), &mine);
    Context inner;
    {
      ScopedContext sc2(inner);
      EXPECT_EQ(&ctx(), &inner);
    }
    EXPECT_EQ(&ctx(), &mine);
  }
  EXPECT_NE(&ctx(), &mine);
}

TEST(ContextTest, ScopedContextIsThreadLocal) {
  Context mine;
  ScopedContext sc(mine);
  std::thread t([&] { EXPECT_NE(&ctx(), &mine); });
  t.join();
}

TEST(ModelTest, CpuSlowdownFlatUpToCores) {
  const auto& m = default_model();
  for (int k : {1, 8, 16, 24}) {
    Context c(m, k, 0);
    EXPECT_DOUBLE_EQ(c.cpu_slowdown(), 1.0) << k;
  }
}

TEST(ModelTest, CpuSlowdownMonotoneBeyondCores) {
  const auto& m = default_model();
  double prev = 1.0;
  for (int k : {25, 32, 40, 48, 64}) {
    Context c(m, k, 0);
    EXPECT_GE(c.cpu_slowdown(), prev) << k;
    prev = c.cpu_slowdown();
  }
}

TEST(ModelTest, AggregateCopyThroughputSaturatesAtCores) {
  // K * shared_bw should grow until 24 ranks and stay ~flat after.
  const auto& m = default_model();
  auto aggregate = [&](int k) {
    Context c(m, k, 0);
    return k * c.shared_bw(m.cpu.dram_stream_bw, m.cpu.dram_total_bw);
  };
  EXPECT_GT(aggregate(16), aggregate(8));
  EXPECT_GT(aggregate(24), aggregate(16));
  EXPECT_NEAR(aggregate(32), aggregate(24), aggregate(24) * 0.05);
  EXPECT_NEAR(aggregate(48), aggregate(24), aggregate(24) * 0.05);
}

TEST(ModelTest, SharedBwRespectsStreamCap) {
  const auto& m = default_model();
  Context c(m, 1, 0);
  // A single rank cannot exceed its stream bandwidth.
  EXPECT_DOUBLE_EQ(c.shared_bw(4e9, 8e9), 4e9);
}

TEST(ModelTest, SharedBwRespectsFairShare) {
  const auto& m = default_model();
  Context c(m, 16, 0);
  EXPECT_DOUBLE_EQ(c.shared_bw(4e9, 8e9), 8e9 / 16);
}

TEST(ModelTest, LatencyParallelismScalesToThreads) {
  const auto& m = default_model();
  EXPECT_EQ(Context(m, 8, 0).latency_parallelism(), 8);
  EXPECT_EQ(Context(m, 48, 0).latency_parallelism(), 48);
  EXPECT_EQ(Context(m, 96, 0).latency_parallelism(), 48);
}

TEST(ModelTest, ChargeHelpers) {
  Context c;
  c.charge_syscall();
  EXPECT_DOUBLE_EQ(c.charged(Charge::kSyscall),
                   default_model().cpu.syscall_cost);
  c.charge_minor_faults(3);
  EXPECT_DOUBLE_EQ(c.charged(Charge::kPageFault),
                   3 * default_model().cpu.minor_fault_cost);
  const double before = c.now();
  c.charge_cpu_copy(1 << 20);
  EXPECT_GT(c.now(), before);
}

TEST(ModelTest, StrataConstants) {
  // The paper's emulation constants (§4 "Emulating PMEM").
  const auto& pm = default_model().pmem;
  EXPECT_DOUBLE_EQ(pm.read_latency, 300e-9);
  EXPECT_DOUBLE_EQ(pm.write_latency, 125e-9);
  EXPECT_DOUBLE_EQ(pm.read_total_bw, 30e9);
  EXPECT_DOUBLE_EQ(pm.write_total_bw, 8e9);
}

}  // namespace
