// Tests for the transparent filters: codec roundtrips, corruption handling,
// compression effectiveness, and end-to-end use through the pMEMCPY core.
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/serial/filter.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <random>

namespace {

using pmemcpy::serial::filter_decode;
using pmemcpy::serial::filter_encode;
using pmemcpy::serial::FilterId;
using pmemcpy::serial::SerialError;

std::vector<std::byte> as_bytes(const std::vector<double>& v) {
  std::vector<std::byte> out(v.size() * 8);
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

class FilterCodecTest : public ::testing::TestWithParam<FilterId> {};

TEST_P(FilterCodecTest, RoundtripPatterns) {
  const FilterId f = GetParam();
  std::mt19937 rng(7);
  const std::vector<std::vector<std::byte>> inputs = {
      {},                                       // empty
      std::vector<std::byte>(1, std::byte{9}),  // single byte
      std::vector<std::byte>(10000, std::byte{0}),  // constant
      [&] {                                         // random
        std::vector<std::byte> v(4097);
        for (auto& b : v) b = static_cast<std::byte>(rng());
        return v;
      }(),
      [&] {  // smooth doubles
        std::vector<double> v(513);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = 1000.0 + static_cast<double>(i);
        }
        return as_bytes(v);
      }(),
  };
  for (const auto& in : inputs) {
    const auto enc = filter_encode(f, in);
    std::vector<std::byte> out(in.size());
    filter_decode(f, enc, out);
    ASSERT_EQ(out, in) << filter_name(f) << " size=" << in.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, FilterCodecTest,
                         ::testing::Values(FilterId::kNone, FilterId::kRle,
                                           FilterId::kDelta),
                         [](const auto& info) {
                           return std::string(
                               pmemcpy::serial::filter_name(info.param));
                         });

TEST(FilterCodec, RleCompressesConstantData) {
  std::vector<std::byte> in(100000, std::byte{0x55});
  const auto enc = filter_encode(FilterId::kRle, in);
  EXPECT_LT(enc.size(), in.size() / 50);
}

TEST(FilterCodec, DeltaCompressesMonotoneCounters) {
  std::vector<std::uint64_t> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 1'000'000 + i * 3;
  std::vector<std::byte> in(v.size() * 8);
  std::memcpy(in.data(), v.data(), in.size());
  const auto enc = filter_encode(FilterId::kDelta, in);
  EXPECT_LT(enc.size(), in.size() / 4);
}

TEST(FilterCodec, IncompressibleDataStillRoundtrips) {
  std::mt19937_64 rng(99);
  std::vector<std::byte> in(8192);
  for (auto& b : in) b = static_cast<std::byte>(rng());
  for (const auto f : {FilterId::kRle, FilterId::kDelta}) {
    const auto enc = filter_encode(f, in);
    std::vector<std::byte> out(in.size());
    filter_decode(f, enc, out);
    EXPECT_EQ(out, in);
  }
}

TEST(FilterCodec, CorruptStreamsThrow) {
  std::vector<std::byte> out(64);
  // RLE: zero-length run.
  std::vector<std::byte> bad_rle = {std::byte{0}, std::byte{1}};
  EXPECT_THROW(filter_decode(FilterId::kRle, bad_rle, out), SerialError);
  // RLE: odd length.
  std::vector<std::byte> odd = {std::byte{1}};
  EXPECT_THROW(filter_decode(FilterId::kRle, odd, out), SerialError);
  // Delta: truncated varint.
  std::vector<std::byte> bad_delta = {std::byte{0xFF}};
  EXPECT_THROW(filter_decode(FilterId::kDelta, bad_delta, out), SerialError);
}

TEST(FilterCodec, EncodeChargesCpuPass) {
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  std::vector<std::byte> in(1 << 20, std::byte{7});
  (void)filter_encode(FilterId::kRle, in);
  EXPECT_GT(c.charged(pmemcpy::sim::Charge::kCpuCopy), 0.0);
}

// --- end-to-end through pMEMCPY --------------------------------------------------

class FilterCoreTest : public ::testing::TestWithParam<FilterId> {};

TEST_P(FilterCoreTest, PieceRoundtripThroughCore) {
  pmemcpy::PmemNode::Options o;
  o.capacity = 64ull << 20;
  pmemcpy::PmemNode node(o);
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.filter = GetParam();
  pmemcpy::PMEM pmem{cfg};
  pmem.mmap("/filtered");

  pmemcpy::Dimensions global{16, 16, 16};
  pmem.alloc<double>("f", global);
  std::vector<double> half(8 * 16 * 16);
  for (std::size_t i = 0; i < half.size(); ++i) {
    half[i] = 5.0;  // constant: very compressible
  }
  const std::size_t off_a[3] = {0, 0, 0};
  const std::size_t off_b[3] = {8, 0, 0};
  const std::size_t cnt[3] = {8, 16, 16};
  pmem.store("f", half.data(), 3, off_a, cnt);
  for (std::size_t i = 0; i < half.size(); ++i) half[i] = double(i);
  pmem.store("f", half.data(), 3, off_b, cnt);

  // Symmetric read.
  std::vector<double> out(half.size(), -1);
  pmem.load("f", out.data(), 3, off_b, cnt);
  EXPECT_EQ(out, half);
  // Cross-piece read (general path decodes whole pieces).
  const std::size_t roff[3] = {4, 0, 0};
  const std::size_t rcnt[3] = {8, 16, 16};
  std::vector<double> slab(8 * 16 * 16, -1);
  pmem.load("f", slab.data(), 3, roff, rcnt);
  EXPECT_DOUBLE_EQ(slab[0], 5.0);                      // from piece A
  EXPECT_DOUBLE_EQ(slab[slab.size() - 1], half[4 * 16 * 16 - 1]);  // piece B
  pmem.munmap();
}

INSTANTIATE_TEST_SUITE_P(Filters, FilterCoreTest,
                         ::testing::Values(FilterId::kNone, FilterId::kRle,
                                           FilterId::kDelta),
                         [](const auto& info) {
                           return std::string(
                               pmemcpy::serial::filter_name(info.param));
                         });

TEST(FilterCore, CompressionReducesDeviceBytes) {
  pmemcpy::PmemNode::Options o;
  o.capacity = 128ull << 20;
  std::uint64_t written_plain = 0, written_rle = 0;
  for (const auto f : {FilterId::kNone, FilterId::kRle}) {
    pmemcpy::PmemNode node(o);
    pmemcpy::Config cfg;
    cfg.node = &node;
    cfg.filter = f;
    pmemcpy::PMEM pmem{cfg};
    pmem.mmap("/cmp");
    std::vector<double> zeros(1 << 18, 0.0);  // 2 MiB of zeroes
    const std::size_t dims = zeros.size(), off = 0;
    pmem.alloc<double>("z", 1, &dims);
    const auto before = node.device().bytes_written();
    pmem.store("z", zeros.data(), 1, &off, &dims);
    const auto delta = node.device().bytes_written() - before;
    (f == FilterId::kNone ? written_plain : written_rle) = delta;
    pmem.munmap();
  }
  EXPECT_LT(written_rle, written_plain / 20);
}

TEST(FilterCore, MixedFilterReadersInterop) {
  // A reader with a different configured filter still decodes correctly:
  // the filter travels in the entry meta, not in the reader's config.
  pmemcpy::PmemNode::Options o;
  o.capacity = 64ull << 20;
  pmemcpy::PmemNode node(o);
  pmemcpy::Config w;
  w.node = &node;
  w.filter = FilterId::kDelta;
  pmemcpy::PMEM writer{w};
  writer.mmap("/mix");
  std::vector<double> v(4096);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 2;
  const std::size_t dims = v.size(), off = 0;
  writer.alloc<double>("v", 1, &dims);
  writer.store("v", v.data(), 1, &off, &dims);

  pmemcpy::Config r;
  r.node = &node;  // filter defaults to kNone
  pmemcpy::PMEM reader{r};
  reader.mmap("/mix");
  std::vector<double> out(v.size());
  reader.load("v", out.data(), 1, &off, &dims);
  EXPECT_EQ(out, v);
  writer.munmap();
  reader.munmap();
}

}  // namespace
