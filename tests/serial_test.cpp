// Tests for sinks/sources, the binary archive, and the BP4-lite format.
#include <pmemcpy/serial/binary.hpp>
#include <pmemcpy/serial/bp4.hpp>
#include <pmemcpy/serial/capnp.hpp>
#include <pmemcpy/serial/dtype.hpp>

#include <gtest/gtest.h>

#include <cstring>

namespace {

using namespace pmemcpy::serial;

TEST(SinkTest, BufferSinkAccumulates) {
  BufferSink s;
  const char a[] = "hello";
  s.write(a, 5);
  s.write(a, 2);
  EXPECT_EQ(s.tell(), 7u);
  EXPECT_EQ(s.bytes().size(), 7u);
}

TEST(SinkTest, BufferSinkChargesCpuCopy) {
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  BufferSink s;
  std::vector<std::byte> data(1 << 20);
  s.write(data.data(), data.size());
  EXPECT_GT(c.charged(pmemcpy::sim::Charge::kCpuCopy), 0.0);
}

TEST(SinkTest, SpanSinkBoundsChecked) {
  std::vector<std::byte> out(8);
  SpanSink s(out);
  const std::uint64_t v = 1;
  s.write(&v, 8);
  EXPECT_THROW(s.write(&v, 1), SerialError);
}

TEST(SinkTest, SpanSinkIsUncharged) {
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  std::vector<std::byte> out(1 << 20);
  SpanSink s(out);
  std::vector<std::byte> data(1 << 20);
  s.write(data.data(), data.size());
  EXPECT_DOUBLE_EQ(c.now(), 0.0);  // pre-charged at reservation time
}

TEST(SinkTest, SourceUnderrunThrows) {
  std::vector<std::byte> data(4);
  SpanSource src(data);
  std::uint64_t v;
  EXPECT_THROW(src.read(&v, 8), SerialError);
}

TEST(SinkTest, SizingSinkMeasures) {
  SizingSink s;
  s.write(nullptr, 100);
  s.write(nullptr, 28);
  EXPECT_EQ(s.tell(), 128u);
}

TEST(SinkTest, BinarySerializedSizeMatchesArchive) {
  const std::string tag = "zero-copy";
  const std::vector<std::uint32_t> v{1, 2, 3};
  BufferSink sink;
  BinaryWriter w(sink);
  w(tag, v, 3.5);
  EXPECT_EQ(binary_serialized_size(tag, v, 3.5), sink.tell());
}

TEST(SinkTest, CopyCountersChargeByDestination) {
  namespace trace = pmemcpy::trace;
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  trace::reset();
  std::vector<std::byte> data(256);

  BufferSink staged;
  staged.write(data.data(), 100);
  staged.write(data.data(), 28);  // same staging pass: still one staged put
  EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedBytes), 128u);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedPuts), 1u);

  std::vector<std::byte> out(256);
  SpanSink direct(out);
  direct.write(data.data(), 200);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyDirectBytes), 200u);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedBytes), 128u);

  // Reads audit under their own direction (DESIGN.md §13): a SpanSource
  // decode consumes PMEM in place, a BufferSource decode is a DRAM bounce,
  // and neither bleeds into the write-side counters.
  SpanSource src(out);
  std::byte sink_buf[64];
  src.read(sink_buf, 64);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyReadDirectBytes), 64u);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyDirectBytes), 200u);

  BufferSource bsrc(data);
  bsrc.read(sink_buf, 32);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyReadStagedBytes), 32u);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedBytes), 128u);

  // A CacheSource decode is neither: the blob already took its one PMEM
  // trip when the cache filled, so only the hit accounting (at lookup)
  // names it.
  CacheSource csrc(data);
  csrc.read(sink_buf, 16);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyReadDirectBytes), 64u);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyReadStagedBytes), 32u);

  trace::reset();
  trace::set_enabled(was_enabled);
}

struct Inner {
  std::int32_t a = 0;
  std::string tag;
  template <class Ar>
  void serialize(Ar& ar) {
    ar(a, tag);
  }
  friend bool operator==(const Inner&, const Inner&) = default;
};

struct Outer {
  double x = 0;
  std::vector<Inner> items;       // nested compound type...
  std::vector<double> samples;    // ...and a dynamic array: the two things
                                  // the paper notes HDF5 compounds can't do.
  template <class Ar>
  void serialize(Ar& ar) {
    ar(x, items, samples);
  }
  friend bool operator==(const Outer&, const Outer&) = default;
};

TEST(BinaryArchive, PrimitivesRoundtrip) {
  BufferSink sink;
  BinaryWriter w(sink);
  w(std::uint8_t{7}, std::int64_t{-5}, 2.5f, 3.25, true);
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  std::uint8_t a;
  std::int64_t b;
  float f;
  double d;
  bool t;
  r(a, b, f, d, t);
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, -5);
  EXPECT_EQ(f, 2.5f);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(t);
}

TEST(BinaryArchive, StringsAndVectors) {
  BufferSink sink;
  BinaryWriter w(sink);
  const std::string s = "persistent memory";
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  w(s, v);
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  std::string s2;
  std::vector<std::uint32_t> v2;
  r(s2, v2);
  EXPECT_EQ(s2, s);
  EXPECT_EQ(v2, v);
}

TEST(BinaryArchive, NestedCompoundAndDynamicArrays) {
  Outer o;
  o.x = 9.75;
  o.items = {{1, "one"}, {2, "two"}};
  o.samples = {0.5, 1.5, 2.5};
  BufferSink sink;
  BinaryWriter w(sink);
  w(o);
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  Outer o2;
  r(o2);
  EXPECT_EQ(o2, o);
}

TEST(BinaryArchive, EmptyContainers) {
  BufferSink sink;
  BinaryWriter w(sink);
  w(std::string{}, std::vector<double>{});
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  std::string s;
  std::vector<double> v;
  r(s, v);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
}

TEST(BinaryArchive, VarintBoundaries) {
  BufferSink sink;
  BinaryWriter w(sink);
  for (std::uint64_t v : {0ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xFFFFFFFFFFFFFFFFull}) {
    w.write_varint(v);
  }
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  for (std::uint64_t v : {0ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xFFFFFFFFFFFFFFFFull}) {
    EXPECT_EQ(r.read_varint(), v);
  }
}

TEST(BinaryArchive, ArraysFixedSize) {
  BufferSink sink;
  BinaryWriter w(sink);
  std::array<std::uint16_t, 4> a{10, 20, 30, 40};
  w(a);
  BufferSource src(sink.bytes());
  BinaryReader r(src);
  std::array<std::uint16_t, 4> b{};
  r(b);
  EXPECT_EQ(a, b);
}

TEST(Bp4Format, HeaderRoundtrip) {
  VarMeta meta;
  meta.dtype = DType::kF64;
  meta.serializer = SerializerId::kBp4;
  meta.payload_bytes = 4096;
  meta.global = {100, 200, 300};
  meta.offset = {10, 20, 30};
  meta.count = {50, 60, 70};
  BufferSink sink;
  bp4_write_header(sink, meta);
  EXPECT_EQ(sink.tell(), bp4_header_size(3));
  BufferSource src(sink.bytes());
  const VarMeta out = bp4_read_header(src);
  EXPECT_EQ(out.dtype, DType::kF64);
  EXPECT_EQ(out.payload_bytes, 4096u);
  EXPECT_EQ(out.global, meta.global);
  EXPECT_EQ(out.offset, meta.offset);
  EXPECT_EQ(out.count, meta.count);
  EXPECT_EQ(out.elements(), 50u * 60 * 70);
}

TEST(Bp4Format, ScalarHeaderHasNoDims) {
  VarMeta meta;
  meta.dtype = DType::kI32;
  meta.payload_bytes = 4;
  BufferSink sink;
  bp4_write_header(sink, meta);
  EXPECT_EQ(sink.tell(), bp4_header_size(0));
  BufferSource src(sink.bytes());
  EXPECT_EQ(bp4_read_header(src).ndims(), 0u);
}

TEST(Bp4Format, BadMagicThrows) {
  std::vector<std::byte> junk(64, std::byte{0x42});
  BufferSource src(junk);
  EXPECT_THROW(bp4_read_header(src), SerialError);
}

TEST(Bp4Format, InconsistentDimsThrow) {
  VarMeta meta;
  meta.global = {1, 2};
  meta.offset = {0};
  meta.count = {1, 1};
  BufferSink sink;
  EXPECT_THROW(bp4_write_header(sink, meta), SerialError);
}

TEST(CapnpFormat, HeaderRoundtrip) {
  VarMeta meta;
  meta.dtype = DType::kF32;
  meta.payload_bytes = 1024;
  meta.global = {64, 64};
  meta.offset = {0, 32};
  meta.count = {64, 32};
  BufferSink sink;
  capnp_write_header(sink, meta);
  EXPECT_EQ(sink.tell(), capnp_header_size(2));
  EXPECT_EQ(sink.tell() % 8, 0u);  // whole words
  BufferSource src(sink.bytes());
  const VarMeta out = capnp_read_header(src);
  EXPECT_EQ(out.dtype, DType::kF32);
  EXPECT_EQ(out.payload_bytes, 1024u);
  EXPECT_EQ(out.global, meta.global);
  EXPECT_EQ(out.offset, meta.offset);
  EXPECT_EQ(out.count, meta.count);
}

TEST(CapnpFormat, ZeroCopyAccessors) {
  VarMeta meta;
  meta.dtype = DType::kF64;
  meta.payload_bytes = 16;
  meta.global = {4};
  meta.offset = {2};
  meta.count = {2};
  BufferSink sink;
  capnp_write_header(sink, meta);
  const double payload[2] = {1.5, 2.5};
  sink.write(payload, sizeof(payload));

  const std::byte* rec = sink.bytes().data();
  ASSERT_TRUE(capnp_valid(rec, sink.bytes().size()));
  EXPECT_EQ(capnp_dtype(rec), DType::kF64);
  EXPECT_EQ(capnp_ndims(rec), 1u);
  EXPECT_EQ(capnp_payload_bytes(rec), 16u);
  double out[2];
  std::memcpy(out, capnp_payload(rec), sizeof(out));
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 2.5);
}

TEST(CapnpFormat, InvalidRecordRejected) {
  std::vector<std::byte> junk(32, std::byte{0x11});
  EXPECT_FALSE(capnp_valid(junk.data(), junk.size()));
  EXPECT_FALSE(capnp_valid(junk.data(), 4));
  BufferSource src(junk);
  EXPECT_THROW((void)capnp_read_header(src), SerialError);
}

TEST(DTypeTest, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::kF64), 8u);
  EXPECT_EQ(dtype_size(DType::kU8), 1u);
  EXPECT_EQ(dtype_size(DType::kStruct), 0u);
  EXPECT_EQ(dtype_name(DType::kF32), "f32");
  EXPECT_EQ(dtype_of_v<double>, DType::kF64);
  EXPECT_EQ(dtype_of_v<std::uint32_t>, DType::kU32);
  EXPECT_EQ(dtype_of_v<Inner>, DType::kStruct);
}

}  // namespace
