// Corruption corpus for PMEM::scrub() (DESIGN.md §10).
//
// scrub() promises: every stored key is examined exactly once (deduplicated
// across shard pools), silent payload corruption — bit rot, torn lines —
// surfaces as a checksum mismatch, unreadable media surfaces as a typed
// media-error item, and every item carries physical provenance (shard +
// device-absolute blob offset) so an operator can map damage to hardware.
//
// Corruption is planted by mutating device bytes through raw() — invisible
// to crash tracking and checksums alike, exactly like rot under a real DAX
// mapping — or by injecting media read errors.
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/pmem/device.hpp>
#include <pmemcpy/pmemcpy.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace {

constexpr std::size_t kNodeCapacity = 8ull << 20;

pmemcpy::PmemNode::Options node_opts() {
  pmemcpy::PmemNode::Options o;
  o.capacity = kNodeCapacity;
  o.pool_fraction = 0.5;
  return o;
}

pmemcpy::Config make_cfg(pmemcpy::PmemNode& node, std::size_t shards = 1) {
  pmemcpy::Config cfg;
  cfg.node = &node;
  cfg.auto_grow_table = false;
  cfg.shards = shards;
  cfg.pool_size = 3ull << 19;  // 1.5 MB: leaves room for sibling shard pools
  return cfg;
}

struct BlobLoc {
  std::uint64_t dev_off = 0;
  std::size_t size = 0;
};

BlobLoc locate_blob(pmemcpy::PMEM& p, pmemcpy::pmem::Device& dev,
                    const std::string& key) {
  BlobLoc loc;
  p.for_each_raw([&](const std::string& k, std::span<const std::byte> blob,
                     std::uint64_t) {
    if (k != key) return;
    loc.dev_off = static_cast<std::uint64_t>(blob.data() - dev.raw());
    loc.size = blob.size();
  });
  EXPECT_NE(loc.dev_off, 0u) << "no raw entry named " << key;
  return loc;
}

/// Flip one byte of device memory behind the library's back (rot: no
/// note_write, no checksum update).
void flip_byte(pmemcpy::pmem::Device& dev, std::uint64_t dev_off) {
  *dev.raw(dev_off) ^= std::byte{0x40};
}

TEST(ScrubCorpus, CleanPoolHasNoFalsePositives) {
  pmemcpy::PmemNode node(node_opts());
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("scrub.clean");
  p.store("int", 42);
  p.store("vec", std::vector<double>{1.0, 2.0, 3.0});
  p.store("str", std::string("persistent"));
  p.store("empty", std::string(""));

  auto rep = p.scrub();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.entries, 4u);

  // Still clean across an unmount/remount cycle.
  p.munmap();
  node.remount();
  pmemcpy::PMEM p2(make_cfg(node));
  p2.mmap("scrub.clean");
  rep = p2.scrub();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.entries, 4u);
  p2.munmap();
}

TEST(ScrubCorpus, BitFlipsAreCaughtAtEveryOffset) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("scrub.rot");

  const std::vector<int> payload(64, 7);
  for (int i = 0; i < 6; ++i) {
    p.store("r" + std::to_string(i), payload);
  }

  // Rot the first, a middle, and the last byte of three different blobs.
  const auto l0 = locate_blob(p, dev, "r0");
  const auto l2 = locate_blob(p, dev, "r2");
  const auto l4 = locate_blob(p, dev, "r4");
  flip_byte(dev, l0.dev_off);
  flip_byte(dev, l2.dev_off + l2.size / 2);
  flip_byte(dev, l4.dev_off + l4.size - 1);

  const auto rep = p.scrub();
  EXPECT_EQ(rep.entries, 6u);
  ASSERT_EQ(rep.corrupt.size(), 3u);
  std::vector<std::string> bad;
  for (const auto& item : rep.corrupt) {
    bad.push_back(item.key);
    EXPECT_EQ(item.issue, "checksum mismatch");
    EXPECT_EQ(item.shard, 0);
    EXPECT_NE(item.dev_off, 0u);
  }
  std::sort(bad.begin(), bad.end());
  EXPECT_EQ(bad, (std::vector<std::string>{"r0", "r2", "r4"}));

  // Checksummed loads refuse the rotted bytes; healthy keys still load.
  EXPECT_THROW((void)p.load<std::vector<int>>("r0"), pmemcpy::IntegrityError);
  EXPECT_EQ(p.load<std::vector<int>>("r1"), payload);
  p.munmap();
}

TEST(ScrubCorpus, TornCachelineIsCaught) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("scrub.torn");

  // Big enough to span several cachelines.
  p.store("torn", std::vector<std::uint64_t>(64, 0xABCDEFull));
  p.store("whole", 1);

  // A torn write: one interior cacheline silently reverts to stale bytes.
  const auto loc = locate_blob(p, dev, "torn");
  const std::uint64_t line =
      (loc.dev_off + 128) / pmemcpy::pmem::kCacheLine * pmemcpy::pmem::kCacheLine;
  std::memset(dev.raw(line), 0x5A, pmemcpy::pmem::kCacheLine);

  const auto rep = p.scrub();
  ASSERT_EQ(rep.corrupt.size(), 1u);
  EXPECT_EQ(rep.corrupt[0].key, "torn");
  EXPECT_EQ(rep.corrupt[0].issue, "checksum mismatch");
  EXPECT_EQ(rep.corrupt[0].dev_off, loc.dev_off);
  p.munmap();
}

TEST(ScrubCorpus, MediaErrorsAreTypedWithProvenance) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node));
  p.mmap("scrub.media");
  p.store("dead", std::string("unreachable bytes"));
  p.store("alive", 5);

  const auto loc = locate_blob(p, dev, "dead");
  dev.inject_read_error(loc.dev_off + 4, 8);

  const auto rep = p.scrub();
  EXPECT_EQ(rep.entries, 2u);
  ASSERT_EQ(rep.corrupt.size(), 1u);
  EXPECT_EQ(rep.corrupt[0].key, "dead");
  EXPECT_EQ(rep.corrupt[0].issue.rfind("media error: ", 0), 0u)
      << rep.corrupt[0].issue;
  EXPECT_EQ(rep.corrupt[0].dev_off, loc.dev_off);
  EXPECT_EQ(p.load<int>("alive"), 5);

  // Clearing the injected error clears the report: the bytes were intact.
  dev.clear_read_errors();
  EXPECT_TRUE(p.scrub().ok());
  p.munmap();
}

TEST(ScrubCorpus, ShardProvenanceMapsToTheOwningPool) {
  pmemcpy::PmemNode node(node_opts());
  auto& dev = node.device();
  pmemcpy::PMEM p(make_cfg(node, 2));
  p.mmap("scrub.sharded");
  for (int i = 0; i < 8; ++i) {
    p.store("k" + std::to_string(i), std::vector<int>(16, i));
  }

  // Flip a byte in every blob: scrub must attribute each item to the shard
  // pool that physically holds it.
  struct Range {
    std::uint64_t lo, hi;
  };
  std::vector<Range> pools;
  for (int s = 0; s < 2; ++s) {
    const auto pool = node.open_pool("scrub.sharded.s" + std::to_string(s));
    pools.push_back({pool->base(), pool->base() + pool->size()});
  }
  for (int i = 0; i < 8; ++i) {
    flip_byte(dev, locate_blob(p, dev, "k" + std::to_string(i)).dev_off);
  }

  const auto rep = p.scrub();
  EXPECT_EQ(rep.entries, 8u);
  ASSERT_EQ(rep.corrupt.size(), 8u);
  bool used[2] = {false, false};
  for (const auto& item : rep.corrupt) {
    ASSERT_GE(item.shard, 0);
    ASSERT_LT(item.shard, 2);
    EXPECT_GE(item.dev_off, pools[item.shard].lo) << item.key;
    EXPECT_LT(item.dev_off, pools[item.shard].hi) << item.key;
    used[item.shard] = true;
  }
  // With 8 hashed keys both shards hold data; if routing ever collapses to
  // one shard this assert flags the test (and the hash) for review.
  EXPECT_TRUE(used[0] && used[1]);
  p.munmap();
}

TEST(ScrubCorpus, ReshardedDuplicatesAreCountedOnce) {
  pmemcpy::PmemNode node(node_opts());

  // Phase 1: a single-pool region whose name collides with what a 2-shard
  // region calls its shard-0 pool.
  {
    pmemcpy::PMEM p(make_cfg(node));
    p.mmap("dup.s0");
    for (int i = 0; i < 8; ++i) p.store("k" + std::to_string(i), i);
    EXPECT_EQ(p.scrub().entries, 8u);
    p.munmap();
  }

  // Phase 2: reopen as a 2-shard region.  Shard 0 is the old pool with all
  // eight keys; re-storing each key routes it by hash, so roughly half now
  // also live in shard 1 — the old shard-0 copies become unrouted stale
  // duplicates.
  pmemcpy::PMEM p(make_cfg(node, 2));
  p.mmap("dup");
  for (int i = 0; i < 8; ++i) p.store("k" + std::to_string(i), 100 + i);

  const auto rep = p.scrub();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.entries, 8u);  // distinct keys, not per-pool copies

  // find() serves the routed (fresh) copy, never a stale duplicate.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(p.load<int>("k" + std::to_string(i)), 100 + i);
  }
  p.munmap();
}

}  // namespace
