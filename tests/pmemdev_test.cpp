// Tests for the emulated PMEM device: data integrity, cost charging,
// MAP_SYNC accounting, crash semantics.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/pmem/device.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace {

using pmemcpy::pmem::Device;
using pmemcpy::sim::Charge;
using pmemcpy::sim::Context;
using pmemcpy::sim::ScopedContext;

TEST(DeviceTest, WriteReadRoundtrip) {
  Device dev(1 << 20);
  std::vector<std::uint8_t> in(10000);
  std::iota(in.begin(), in.end(), 0);
  dev.write(4096, in.data(), in.size());
  std::vector<std::uint8_t> out(in.size());
  dev.read(4096, out.data(), out.size());
  EXPECT_EQ(in, out);
}

TEST(DeviceTest, CapacityRoundedToPage) {
  Device dev(5000);
  EXPECT_EQ(dev.capacity(), 8192u);
}

TEST(DeviceTest, OutOfRangeThrows) {
  Device dev(4096);
  std::byte b{};
  EXPECT_THROW(dev.write(4096, &b, 1), std::out_of_range);
  EXPECT_THROW(dev.read(0, &b, 4097), std::out_of_range);
  EXPECT_THROW(dev.write(static_cast<std::size_t>(-1), &b, 2),
               std::out_of_range);
}

TEST(DeviceTest, FillSetsBytes) {
  Device dev(1 << 16);
  dev.fill(100, 50, std::byte{0x7F});
  std::vector<std::uint8_t> out(50);
  dev.read(100, out.data(), 50);
  for (auto v : out) EXPECT_EQ(v, 0x7F);
}

TEST(DeviceTest, WriteChargesLatencyPlusBandwidth) {
  Device dev(1 << 20);
  Context c;  // nranks=1
  ScopedContext sc(c);
  const std::size_t bytes = 1 << 16;
  std::vector<std::byte> buf(bytes);
  const double before = c.now();
  dev.write(0, buf.data(), bytes);
  const auto& pm = c.model().pmem;
  const double expect =
      pm.write_latency + static_cast<double>(bytes) / pm.write_stream_bw;
  EXPECT_NEAR(c.now() - before, expect, 1e-12);
  EXPECT_DOUBLE_EQ(c.charged(Charge::kPmemWrite), c.now() - before);
}

TEST(DeviceTest, ReadIsFasterThanWritePerByte) {
  Device dev(1 << 20);
  Context c;
  ScopedContext sc(c);
  std::vector<std::byte> buf(1 << 18);
  dev.write(0, buf.data(), buf.size());
  const double w = c.charged(Charge::kPmemWrite);
  dev.read(0, buf.data(), buf.size());
  const double r = c.charged(Charge::kPmemRead);
  EXPECT_LT(r, w);  // 30 GB/s read vs 8 GB/s write device
}

TEST(DeviceTest, BandwidthSharedAcrossRanks) {
  Device dev(1 << 20);
  std::vector<std::byte> buf(1 << 18);
  double t1, t24;
  {
    Context c(pmemcpy::sim::default_model(), 1, 0);
    ScopedContext sc(c);
    dev.write(0, buf.data(), buf.size());
    t1 = c.charged(Charge::kPmemWrite);
  }
  {
    Context c(pmemcpy::sim::default_model(), 24, 0);
    ScopedContext sc(c);
    dev.write(0, buf.data(), buf.size());
    t24 = c.charged(Charge::kPmemWrite);
  }
  EXPECT_GT(t24, t1);  // fair share of 8 GB/s is smaller at 24 ranks
}

TEST(DeviceTest, DaxWriteChargesFaultsOncePerPage) {
  Device dev(1 << 20);
  Context c;
  ScopedContext sc(c);
  dev.charge_dax_write(0, 4096 * 4, false);
  const double first = c.charged(Charge::kPageFault);
  EXPECT_NEAR(first, 4 * c.model().cpu.minor_fault_cost, 1e-12);
  dev.charge_dax_write(0, 4096 * 4, false);  // same pages: no new faults
  EXPECT_DOUBLE_EQ(c.charged(Charge::kPageFault), first);
  dev.reset_page_touches();
  dev.charge_dax_write(0, 4096, false);
  EXPECT_GT(c.charged(Charge::kPageFault), first);
}

TEST(DeviceTest, MapSyncFaultsCostMore) {
  Device dev(1 << 20);
  const auto& m = pmemcpy::sim::default_model();
  double plain, synced;
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_write(0, 4096 * 16, false);
    plain = c.charged(Charge::kPageFault);
  }
  dev.reset_page_touches();
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_write(0, 4096 * 16, true);
    synced = c.charged(Charge::kPageFault);
  }
  EXPECT_GT(synced, plain);
}

TEST(DeviceTest, MapSyncDeratesWriteBandwidth) {
  Device dev(1 << 20);
  const auto& m = pmemcpy::sim::default_model();
  double plain, synced;
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_write(0, 1 << 18, false);
    plain = c.charged(Charge::kPmemWrite);
  }
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_write(0, 1 << 18, true);
    synced = c.charged(Charge::kPmemWrite);
  }
  EXPECT_GT(synced, plain);
}

TEST(DeviceTest, MapSyncDeratesReadBandwidth) {
  Device dev(1 << 20);
  const auto& m = pmemcpy::sim::default_model();
  double plain, synced;
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_read(1 << 18, false);
    plain = c.charged(Charge::kPmemRead);
  }
  {
    Context c(m);
    ScopedContext sc(c);
    dev.charge_dax_read(1 << 18, true);
    synced = c.charged(Charge::kPmemRead);
  }
  EXPECT_GT(synced, plain);
}

TEST(DeviceTest, StatsCountBytes) {
  Device dev(1 << 20);
  std::vector<std::byte> buf(1000);
  dev.write(0, buf.data(), 1000);
  dev.read(0, buf.data(), 500);
  EXPECT_EQ(dev.bytes_written(), 1000u);
  EXPECT_EQ(dev.bytes_read(), 500u);
}

TEST(DeviceCrashTest, PersistedDataSurvives) {
  Device dev(1 << 20, true);
  const std::uint64_t v = 42;
  dev.write(128, &v, 8);
  dev.persist(128, 8);
  dev.simulate_crash();
  std::uint64_t out = 0;
  dev.read(128, &out, 8);
  EXPECT_EQ(out, 42u);
}

TEST(DeviceCrashTest, PartialPersistRevertsOnlyUnpersisted) {
  Device dev(1 << 20, true);
  const std::uint64_t a = 1, b = 2;
  dev.write(0, &a, 8);
  dev.write(256, &b, 8);
  dev.persist(0, 8);  // only the first line
  dev.simulate_crash();
  std::uint64_t out = 0;
  dev.read(0, &out, 8);
  EXPECT_EQ(out, 1u);
  // The unpersisted line reverted to its pre-image (whatever it was, it is
  // no longer the value written).
  EXPECT_EQ(dev.unpersisted_lines(), 0u);
}

TEST(DeviceCrashTest, CrashWithoutShadowModeThrows) {
  Device dev(1 << 20, false);
  EXPECT_THROW(dev.simulate_crash(), std::logic_error);
}

TEST(DeviceCrashTest, NoteWritePreImagesDaxStores) {
  Device dev(1 << 20, true);
  const std::uint64_t v1 = 7;
  dev.write(0, &v1, 8);
  dev.persist(0, 8);
  // DAX-style store through raw() with note_write.
  dev.note_write(0, 8);
  const std::uint64_t v2 = 8;
  std::memcpy(dev.raw(0), &v2, 8);
  dev.simulate_crash();
  std::uint64_t out = 0;
  dev.read(0, &out, 8);
  EXPECT_EQ(out, 7u);
}

using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::DeviceError;
using pmemcpy::pmem::FaultPlan;

TEST(FaultPlanTest, PersistOpsCountsPersistAndDrain) {
  Device dev(1 << 20);
  dev.enable_checker();
  EXPECT_EQ(dev.persist_ops(), 0u);
  const std::uint32_t v = 1;
  dev.write(0, &v, 4);
  dev.persist(0, 4);
  EXPECT_EQ(dev.persist_ops(), 1u);
  dev.drain();  // nothing flushed since the persist: orders nothing
  EXPECT_EQ(dev.persist_ops(), 2u);
  dev.persist(0, 4);  // line already durable: redundant flush
  EXPECT_EQ(dev.persist_ops(), 3u);
  // Both inefficiencies above are deliberate; the checker must call them out.
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(pmemcpy::check::Violation::kEmptyFence), 1u)
      << rep.to_string();
  EXPECT_EQ(rep.count(pmemcpy::check::Violation::kCleanFlush), 1u)
      << rep.to_string();
  EXPECT_EQ(rep.correctness_violations, 0u) << rep.to_string();
}

TEST(FaultPlanTest, CrashFiresAtScheduledOpAndFreezesDevice) {
  Device dev(1 << 20, true);
  FaultPlan plan;
  plan.crash_at_persist = 3;
  dev.set_fault_plan(plan);

  std::uint64_t v = 1;
  dev.write(0, &v, 8);
  dev.persist(0, 8);  // op 1: completes
  v = 2;
  dev.write(64, &v, 8);
  dev.persist(64, 8);  // op 2: completes
  v = 3;
  dev.write(128, &v, 8);
  try {
    dev.persist(128, 8);  // op 3: scheduled crash, never completes
    FAIL() << "expected CrashError";
  } catch (const CrashError& e) {
    EXPECT_EQ(e.persist_op, 3u);
  }
  EXPECT_TRUE(dev.frozen());
  EXPECT_EQ(dev.persist_ops(), 3u);

  // Completed persists survive; the op-3 line reverted to its pre-image.
  std::uint64_t out = 0;
  dev.read(0, &out, 8);
  EXPECT_EQ(out, 1u);
  dev.read(64, &out, 8);
  EXPECT_EQ(out, 2u);
  dev.read(128, &out, 8);
  EXPECT_EQ(out, 0u);

  // Frozen like powered-off hardware: stores and persists are ignored and
  // the op counter stops.
  v = 9;
  dev.write(0, &v, 8);
  dev.persist(0, 8);
  EXPECT_EQ(dev.persist_ops(), 3u);
  dev.read(0, &out, 8);
  EXPECT_EQ(out, 1u);

  // Power back on: normal operation resumes.
  dev.revive();
  EXPECT_FALSE(dev.frozen());
  dev.write(0, &v, 8);
  dev.persist(0, 8);
  dev.read(0, &out, 8);
  EXPECT_EQ(out, 9u);
}

TEST(FaultPlanTest, SchedulingACrashRequiresShadowMode) {
  Device dev(1 << 20, false);
  FaultPlan plan;
  plan.crash_at_persist = 1;
  EXPECT_THROW(dev.set_fault_plan(plan), std::logic_error);
}

TEST(FaultPlanTest, TornCrashRevertsDeterministicSubset) {
  constexpr int kLines = 64;
  const auto run = [](std::uint64_t seed) {
    Device dev(1 << 20, true);
    FaultPlan plan;
    plan.crash_at_persist = 1;
    plan.torn_writes = true;
    plan.torn_seed = seed;
    dev.set_fault_plan(plan);
    std::vector<std::byte> ones(64, std::byte{0xFF});
    for (int i = 0; i < kLines; ++i) {
      dev.write(static_cast<std::size_t>(i) * 64, ones.data(), ones.size());
    }
    EXPECT_THROW(dev.persist(0, kLines * 64), CrashError);
    std::vector<int> survivors;
    for (int i = 0; i < kLines; ++i) {
      std::byte b{};
      dev.read(static_cast<std::size_t>(i) * 64, &b, 1);
      if (b == std::byte{0xFF}) survivors.push_back(i);
    }
    return survivors;
  };
  const auto a = run(123);
  const auto b = run(123);
  const auto c = run(456);
  EXPECT_EQ(a, b);  // same seed, same torn subset
  // A strict, nonempty subset of the lines happened to reach media.
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), static_cast<std::size_t>(kLines));
  EXPECT_NE(a, c);  // different seed, different subset
}

TEST(MediaErrorTest, InjectedRangeThrowsTypedDeviceError) {
  Device dev(1 << 20);
  std::uint32_t v = 42;
  dev.write(4096, &v, 4);
  dev.persist(4096, 4);

  dev.inject_read_error(4097, 2);
  try {
    dev.read(4096, &v, 4);  // overlaps the bad range
    FAIL() << "expected DeviceError";
  } catch (const DeviceError& e) {
    EXPECT_EQ(e.kind, DeviceError::Kind::kMediaRead);
    EXPECT_EQ(e.off, 4096u);
    EXPECT_EQ(e.len, 4u);
  }
  EXPECT_THROW(dev.check_media(4000, 200), DeviceError);

  // Non-overlapping reads still work.
  std::uint32_t out = 0;
  dev.read(0, &out, 4);
  dev.check_media(0, 4096);

  dev.clear_read_errors();
  dev.read(4096, &out, 4);
  EXPECT_EQ(out, 42u);
}

}  // namespace
