// Mutation tests for the persistency-order checker: plant one instance of
// every violation class and assert the checker reports exactly that class
// (and nothing else).  Complements the crash-matrix/stress integration,
// which asserts the *absence* of violations on the real I/O paths.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/obj/pool.hpp>
#include <pmemcpy/pmem/device.hpp>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace {

using pmemcpy::check::Violation;
using pmemcpy::obj::Pool;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::Device;
using pmemcpy::pmem::FaultPlan;

constexpr std::size_t kDev = 1 << 20;

struct PersistCheckerTest : ::testing::Test {
  Device dev{kDev, /*crash_shadow=*/true};
  void SetUp() override { dev.enable_checker(); }
};

// --- clean sequences must stay clean ---------------------------------------

TEST_F(PersistCheckerTest, CorrectSequenceIsClean) {
  const std::uint64_t v = 7;
  dev.check_tx_begin("test.clean");
  dev.write(0, &v, sizeof(v));
  dev.persist(0, sizeof(v));
  dev.check_publish(0, sizeof(v));
  dev.check_tx_commit();
  const auto rep = dev.checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.scopes_committed, 1u);
  EXPECT_EQ(rep.publishes, 1u);
}

TEST_F(PersistCheckerTest, FlushBatchUnderOneFenceIsClean) {
  const std::uint64_t v = 7;
  for (std::size_t i = 0; i < 4; ++i) dev.write(i * 64, &v, sizeof(v));
  for (std::size_t i = 0; i < 4; ++i) dev.flush(i * 64, sizeof(v));
  dev.drain();
  const auto rep = dev.checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.fence_ops, 1u);
}

// A line that is re-stored legitimately needs another flush: never flagged.
TEST_F(PersistCheckerTest, RedirtiedReflushIsClean) {
  const std::uint64_t v = 7;
  dev.write(0, &v, sizeof(v));
  dev.persist(0, sizeof(v));
  dev.write(8, &v, sizeof(v));  // same cacheline, new store
  dev.persist(8, sizeof(v));
  const auto rep = dev.checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// --- correctness violations -------------------------------------------------

TEST_F(PersistCheckerTest, FlagsDirtyAtCommit) {
  const std::uint64_t v = 1;
  dev.check_tx_begin("test.leaky");
  dev.write(0, &v, sizeof(v));  // never persisted
  dev.check_tx_commit();
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kDirtyAtCommit), 1u) << rep.to_string();
  EXPECT_EQ(rep.correctness_violations, 1u);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].scope, "test.leaky");
}

// Flushed but not yet fenced still counts as not-durable at commit.
TEST_F(PersistCheckerTest, FlagsFlushPendingAtCommit) {
  const std::uint64_t v = 1;
  dev.check_tx_begin("test.unfenced");
  dev.write(0, &v, sizeof(v));
  dev.flush(0, sizeof(v));  // CLWB without SFENCE
  dev.check_tx_commit();
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kDirtyAtCommit), 1u) << rep.to_string();
}

TEST_F(PersistCheckerTest, FlagsUnpersistedPublish) {
  const std::uint64_t v = 1;
  dev.write(0, &v, sizeof(v));
  dev.check_publish(0, sizeof(v));  // visible before flush+fence
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kUnpersistedPublish), 1u) << rep.to_string();
  EXPECT_EQ(rep.correctness_violations, 1u);
}

TEST_F(PersistCheckerTest, FlagsStoreAfterFlushBeforeFence) {
  const std::uint64_t v = 1;
  dev.write(0, &v, sizeof(v));
  dev.flush(0, sizeof(v));
  dev.write(8, &v, sizeof(v));  // races the in-flight writeback
  dev.drain();
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kStoreAfterFlush), 1u) << rep.to_string();
}

// --- efficiency lints --------------------------------------------------------

TEST_F(PersistCheckerTest, FlagsCleanLineFlush) {
  dev.persist(0, 64);  // nothing was ever stored there
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kCleanFlush), 1u) << rep.to_string();
  EXPECT_EQ(rep.correctness_violations, 0u);
}

TEST_F(PersistCheckerTest, FlagsDuplicateFlushInScope) {
  const std::uint64_t v = 1;
  dev.check_tx_begin("test.dup");
  dev.write(0, &v, sizeof(v));
  dev.persist(0, sizeof(v));
  dev.persist(0, sizeof(v));  // same scope, no store in between
  dev.check_tx_commit();
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kDuplicateFlush), 1u) << rep.to_string();
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].scope, "test.dup");
}

TEST_F(PersistCheckerTest, FlagsDuplicateFlushBetweenFences) {
  const std::uint64_t v = 1;
  dev.write(0, &v, sizeof(v));
  dev.flush(0, sizeof(v));
  dev.flush(0, sizeof(v));  // second CLWB before the fence buys nothing
  dev.drain();
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kDuplicateFlush), 1u) << rep.to_string();
}

TEST_F(PersistCheckerTest, FlagsEmptyFence) {
  dev.drain();  // nothing flushed since the last fence
  const auto rep = dev.checker()->take_report();
  EXPECT_EQ(rep.count(Violation::kEmptyFence), 1u) << rep.to_string();
}

// --- report mechanics --------------------------------------------------------

TEST_F(PersistCheckerTest, TakeReportResetsFindingsButKeepsTraffic) {
  dev.drain();  // plant one empty fence
  const auto first = dev.checker()->take_report();
  EXPECT_EQ(first.count(Violation::kEmptyFence), 1u);
  const auto second = dev.checker()->take_report();
  EXPECT_TRUE(second.ok()) << second.to_string();
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.fence_ops, first.fence_ops);  // traffic accumulates
}

TEST_F(PersistCheckerTest, ReportJsonMentionsViolation) {
  dev.drain();
  const auto rep = dev.checker()->take_report();
  const auto json = rep.to_json();
  EXPECT_NE(json.find("empty-fence"), std::string::npos) << json;
  EXPECT_NE(json.find("\"efficiency_violations\":1"), std::string::npos)
      << json;
}

// --- crash interaction (bugfix: tracking suspends while frozen) -------------

TEST_F(PersistCheckerTest, FrozenDeviceSuspendsTracking) {
  const std::uint64_t v = 1;
  dev.check_tx_begin("test.crash");
  dev.write(0, &v, sizeof(v));

  FaultPlan plan;
  plan.crash_at_persist = dev.persist_ops() + 1;
  dev.set_fault_plan(plan);
  EXPECT_THROW(dev.persist(0, sizeof(v)), CrashError);
  ASSERT_TRUE(dev.frozen());

  // Post-crash unwind: these must all be silently ignored, not tracked as
  // stores/commits against wiped state.
  dev.check_tx_commit();
  dev.check_publish(0, sizeof(v));
  dev.note_write(0, 64);

  dev.revive();
  // Recovery-style rewrite of the line must be clean: the crash reset every
  // line, and nothing from the frozen window may have leaked in.
  dev.write(0, &v, sizeof(v));
  dev.persist(0, sizeof(v));
  const auto rep = dev.checker()->take_report();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// --- end-to-end: the checker catches the historical commit bug --------------

TEST(PersistCheckerPoolTest, CatchesSkippedLaneZeroPersistAtCommit) {
  constexpr std::size_t kPoolDev = 4ull << 20;  // room for the 16 tx lanes
  Device dev(kPoolDev, /*crash_shadow=*/true);
  dev.enable_checker();
  auto pool = Pool::create(dev, 0, kPoolDev);
  const auto off = pool.alloc(8);
  pool.set<std::uint64_t>(off, 1);
  ASSERT_TRUE(dev.checker()->take_report().ok());

  pool.test_faults().skip_lane_zero_persist = true;
  {
    Transaction tx(pool);
    tx.snapshot(off, 8);
    const std::uint64_t v = 2;
    pool.write(off, &v, sizeof(v));
    tx.commit();
  }
  const auto rep = dev.checker()->take_report();
  EXPECT_GE(rep.count(Violation::kDirtyAtCommit), 1u) << rep.to_string();
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].scope, "pool.tx");
}

// --- enablement --------------------------------------------------------------

TEST(PersistCheckerEnableTest, CheckerOffByDefaultWithoutEnv) {
  // The build default is baked in at compile time; when the env var is
  // absent and the default is off, no checker is attached and the hooks are
  // no-ops.  (CI's checker configuration flips the default to on.)
#ifdef PMEMCPY_PERSIST_CHECK_DEFAULT
  GTEST_SKIP() << "checker default-on build";
#else
  if (std::getenv("PMEMCPY_PERSIST_CHECK") != nullptr) {
    GTEST_SKIP() << "PMEMCPY_PERSIST_CHECK set in environment";
  }
  Device dev(kDev);
  EXPECT_FALSE(dev.checker_enabled());
  dev.drain();  // would be an empty-fence lint if a checker were attached
  EXPECT_TRUE(dev.checker_report().ok());
  EXPECT_TRUE(dev.checker_report().findings.empty());
#endif
}

}  // namespace
