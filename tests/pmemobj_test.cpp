// Tests for the libpmemobj-lite pool: allocator, transactions, recovery.
#include <pmemcpy/obj/pool.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <thread>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define POOLTEST_LSAN 1
#endif
#endif
#if !defined(POOLTEST_LSAN) && defined(__SANITIZE_ADDRESS__)
#define POOLTEST_LSAN 1
#endif
#if defined(POOLTEST_LSAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace {

using pmemcpy::obj::Pool;
using pmemcpy::obj::PoolError;
using pmemcpy::obj::PoolOptions;
using pmemcpy::obj::Transaction;
using pmemcpy::pmem::Device;

constexpr std::size_t kPool = 32ull << 20;

TEST(PoolTest, CreateOpenRoundtrip) {
  Device dev(kPool);
  {
    Pool p = Pool::create(dev, 0, kPool);
    p.set_root(1234);
  }
  Pool p = Pool::open(dev, 0);
  EXPECT_EQ(p.root(), 1234u);
}

TEST(PoolTest, OpenUnformattedThrows) {
  Device dev(kPool);
  dev.fill(0, 4096, std::byte{0});
  EXPECT_THROW(Pool::open(dev, 0), PoolError);
}

TEST(PoolTest, CreateTooSmallThrows) {
  Device dev(kPool);
  EXPECT_THROW(Pool::create(dev, 0, 64 * 1024), PoolError);
}

TEST(PoolTest, AllocBasics) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(100);
  const auto b = p.alloc(100);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_GE(p.usable_size(a), 100u);
  // Payloads do not overlap.
  std::vector<std::byte> ones(100, std::byte{0xAA});
  std::vector<std::byte> twos(100, std::byte{0x55});
  p.write(a, ones.data(), 100);
  p.write(b, twos.data(), 100);
  std::vector<std::byte> out(100);
  p.read(a, out.data(), 100);
  EXPECT_EQ(out, ones);
}

TEST(PoolTest, AllocZeroBytesStillValid) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(0);
  EXPECT_NE(a, 0u);
  EXPECT_GE(p.usable_size(a), 1u);
}

TEST(PoolTest, FreeAndReuseSmall) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(100);
  p.free(a);
  const auto b = p.alloc(100);  // same size class -> reuses the chunk
  EXPECT_EQ(a, b);
}

TEST(PoolTest, FreeAndReuseLarge) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(1 << 20);
  p.free(a);
  const auto b = p.alloc(1 << 20);
  EXPECT_EQ(a, b);
}

TEST(PoolTest, LargeSplitLeavesUsableRemainder) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto big = p.alloc(4 << 20);
  p.free(big);
  const auto small = p.alloc(128 * 1024);  // first-fit splits the 4 MiB chunk
  const auto rest = p.alloc(2 << 20);      // remainder serves this
  EXPECT_NE(small, 0u);
  EXPECT_NE(rest, 0u);
}

TEST(PoolTest, BytesInUseTracksAllocFree) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto before = p.bytes_in_use();
  const auto a = p.alloc(1000);
  EXPECT_GT(p.bytes_in_use(), before);
  p.free(a);
  EXPECT_EQ(p.bytes_in_use(), before);
}

TEST(PoolTest, ExhaustionThrowsBadAlloc) {
  Device dev(8ull << 20);
  Pool p = Pool::create(dev, 0, 8ull << 20);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10000; ++i) p.alloc(1 << 20);
      },
      std::bad_alloc);
}

TEST(PoolTest, FreeGarbageOffsetThrows) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  EXPECT_THROW(p.free(12345678), PoolError);
}

TEST(PoolTest, OutOfRangeAccessThrows) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  std::byte b{};
  EXPECT_THROW(p.write(kPool + 10, &b, 1), std::out_of_range);
  EXPECT_THROW(p.read(kPool - 1, &b, 2), std::out_of_range);
}

TEST(PoolTest, AllocStressRandomSizesNoOverlap) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::size_t> size_d(1, 200000);
  std::map<std::uint64_t, std::size_t> live;  // off -> size
  for (int i = 0; i < 500; ++i) {
    if (live.size() > 50 && rng() % 2 == 0) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng() % live.size()));
      p.free(it->first);
      live.erase(it);
    } else {
      const std::size_t sz = size_d(rng);
      const auto off = p.alloc(sz);
      // No overlap with any live allocation.
      for (const auto& [o, s] : live) {
        EXPECT_TRUE(off + sz <= o || o + s <= off)
            << "overlap: [" << off << "+" << sz << ") vs [" << o << "+" << s
            << ")";
      }
      live[off] = sz;
    }
  }
}

TEST(PoolTest, ConcurrentAllocNoOverlap) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::vector<std::uint64_t>> offs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        offs[static_cast<std::size_t>(t)].push_back(
            p.alloc(64 + static_cast<std::size_t>(i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : offs) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

TEST(TransactionTest, CommitKeepsNewValue) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(8);
  p.set<std::uint64_t>(off, 111);
  {
    Transaction tx(p);
    tx.snapshot(off, 8);
    // Staged write: commit() flushes every snapshotted range, so an eager
    // set() here would pay (and the persist checker flags) a double flush.
    const std::uint64_t v = 222;
    p.write(off, &v, sizeof(v));
    tx.commit();
  }
  EXPECT_EQ(p.get<std::uint64_t>(off), 222u);
}

TEST(TransactionTest, AbortRollsBack) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(8);
  p.set<std::uint64_t>(off, 111);
  {
    Transaction tx(p);
    tx.snapshot(off, 8);
    p.set<std::uint64_t>(off, 222);
    // no commit: destructor aborts
  }
  EXPECT_EQ(p.get<std::uint64_t>(off), 111u);
}

TEST(TransactionTest, MultiRangeAbortRollsBackAll) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(8);
  const auto b = p.alloc(8);
  p.set<std::uint64_t>(a, 1);
  p.set<std::uint64_t>(b, 2);
  {
    Transaction tx(p);
    tx.snapshot(a, 8);
    p.set<std::uint64_t>(a, 10);
    tx.snapshot(b, 8);
    p.set<std::uint64_t>(b, 20);
  }
  EXPECT_EQ(p.get<std::uint64_t>(a), 1u);
  EXPECT_EQ(p.get<std::uint64_t>(b), 2u);
}

TEST(TransactionTest, OverlappingSnapshotsRestoreOldest) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(8);
  p.set<std::uint64_t>(off, 1);
  {
    Transaction tx(p);
    tx.snapshot(off, 8);
    p.set<std::uint64_t>(off, 2);
    tx.snapshot(off, 8);  // snapshots the intermediate value 2
    p.set<std::uint64_t>(off, 3);
  }
  EXPECT_EQ(p.get<std::uint64_t>(off), 1u);  // oldest pre-image wins
}

TEST(TransactionTest, LogFullThrows) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(Pool::kTxLogBytes);
  Transaction tx(p);
  EXPECT_THROW(tx.snapshot(off, Pool::kTxLogBytes), PoolError);
  tx.commit();
}

TEST(TransactionTest, ConcurrentLanes) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  constexpr int kThreads = 24;  // more threads than lanes
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < kThreads; ++i) offs.push_back(p.alloc(8));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto off = offs[static_cast<std::size_t>(t)];
      p.set<std::uint64_t>(off, 7);
      Transaction tx(p);
      tx.snapshot(off, 8);
      const std::uint64_t v = 99;
      p.write(off, &v, sizeof(v));
      if (t % 2 == 0) tx.commit();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(p.get<std::uint64_t>(offs[static_cast<std::size_t>(t)]),
              t % 2 == 0 ? 99u : 7u);
  }
}

// ---------------------------------------------------------------------------
// Crash recovery (power failure with stores still in CPU caches)
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, UnpersistedWritesRevert) {
  Device dev(1 << 20, /*crash_shadow=*/true);
  const std::uint64_t v1 = 0x1111111111111111ull;
  const std::uint64_t v2 = 0x2222222222222222ull;
  dev.write(0, &v1, 8);
  dev.persist(0, 8);
  dev.write(0, &v2, 8);  // not persisted
  EXPECT_GT(dev.unpersisted_lines(), 0u);
  dev.simulate_crash();
  std::uint64_t out = 0;
  dev.read(0, &out, 8);
  EXPECT_EQ(out, v1);
}

TEST(CrashRecoveryTest, TxCrashMidMutationRollsBackOnOpen) {
  Device dev(kPool, /*crash_shadow=*/true);
  std::uint64_t off = 0;
  {
    Pool p = Pool::create(dev, 0, kPool);
    off = p.alloc(64);
    p.set<std::uint64_t>(off, 42);

    // A real crash destroys the process before the transaction destructor
    // can roll back — model that by leaking the transaction object (and
    // telling LeakSanitizer the leak is the point of the test).
    auto* tx = new Transaction(p);
#if defined(POOLTEST_LSAN)
    __lsan_ignore_object(tx);
#endif
    tx->snapshot(off, 8);
    p.set<std::uint64_t>(off, 99);
    // Crash before commit: the persisted undo-log entry survives, and so
    // does the (persisted) mutation; recovery must undo it.
    dev.simulate_crash();
    (void)tx;  // intentionally leaked
  }
  Pool p = Pool::open(dev, 0);  // runs recovery
  EXPECT_EQ(p.get<std::uint64_t>(off), 42u);
}

TEST(CrashRecoveryTest, CommittedTxSurvivesCrash) {
  Device dev(kPool, /*crash_shadow=*/true);
  std::uint64_t off = 0;
  {
    Pool p = Pool::create(dev, 0, kPool);
    off = p.alloc(64);
    p.set<std::uint64_t>(off, 42);
    Transaction tx(p);
    tx.snapshot(off, 8);
    const std::uint64_t v = 99;
    p.write(off, &v, sizeof(v));
    tx.commit();
    dev.simulate_crash();
  }
  Pool p = Pool::open(dev, 0);
  EXPECT_EQ(p.get<std::uint64_t>(off), 99u);
}

TEST(TransactionTest, SnapshotAfterCommitThrows) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(64);
  Transaction tx(p);
  tx.snapshot(off, 8);
  const std::uint64_t v = 1;
  p.write(off, &v, sizeof(v));
  tx.commit();
  EXPECT_THROW(tx.snapshot(off, 8), PoolError);
}

TEST(TransactionTest, DestructorRollsBackOnExceptionUnwind) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto off = p.alloc(64);
  p.set<std::uint64_t>(off, 1);
  try {
    Transaction tx(p);
    tx.snapshot(off, 8);
    p.set<std::uint64_t>(off, 2);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(p.get<std::uint64_t>(off), 1u);
}

TEST(PoolCheckTest, CleanPoolPasses) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(100);
  const auto b = p.alloc(5000);
  const auto c = p.alloc(200000);
  p.free(b);
  (void)a;
  (void)c;
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_GE(rep.chunks_walked, 3u);
  EXPECT_GE(rep.free_chunks, 1u);
  EXPECT_EQ(rep.bytes_in_use, p.bytes_in_use());
}

TEST(PoolCheckTest, DetectsPoolHeaderCorruption) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  // Scribble the header's size field without updating its CRC.
  const std::uint64_t bogus = kPool / 2;
  p.write(64 + 16, &bogus, sizeof(bogus));
  p.persist(64 + 16, sizeof(bogus));
  const auto rep = p.check();
  EXPECT_FALSE(rep.ok());
}

TEST(PoolCheckTest, DetectsCorruptChunkHeader) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(100);
  ASSERT_TRUE(p.check().ok());
  // Clobber the chunk-header check word (header sits 16 bytes before the
  // payload, check word in its last 4 bytes).
  const std::uint32_t junk = 0xDEADBEEFu;
  p.write(a - 4, &junk, sizeof(junk));
  p.persist(a - 4, sizeof(junk));
  const auto rep = p.check();
  EXPECT_FALSE(rep.ok());
}

TEST(PoolCheckTest, DetectsFreeListCorruption) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  const auto a = p.alloc(100);
  p.free(a);
  ASSERT_TRUE(p.check().ok());
  // Point the freed chunk's next pointer (first payload word) back at the
  // chunk itself: a one-node cycle on the size-class free list.
  p.set<std::uint64_t>(a, a - 16);
  const auto rep = p.check();
  EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------------------
// Per-rank magazines (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(PoolMagazineTest, AllocFreeRoundtripStaysConsistent) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  p.set_magazine_size(8);
  p.set_alloc_stripes(8);
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 16; ++i) {
    const auto off = p.alloc(64);
    p.set<std::uint64_t>(off, 0xAB00u + static_cast<std::uint64_t>(i));
    offs.push_back(off);
  }
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(p.get<std::uint64_t>(offs[static_cast<std::size_t>(i)]),
              0xAB00u + static_cast<std::uint64_t>(i));
  }
  for (const auto off : offs) p.free(off);
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.bytes_in_use, p.bytes_in_use());
}

TEST(PoolMagazineTest, CheckCountsMagazineOwnedChunks) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  p.set_magazine_size(8);
  // One alloc triggers a refill batch of K: the K-1 unsold chunks sit in
  // the DRAM magazine with their headers durably flagged — check() must
  // see them as in-use-but-unpublished, not as a leak or free-list gap.
  const auto a = p.alloc(64);
  (void)a;
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_GE(rep.magazine_chunks, 7u);
  EXPECT_EQ(rep.bytes_in_use, p.bytes_in_use());
}

TEST(PoolMagazineTest, MagazineFreeIsDoubleFreeProof) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  p.set_magazine_size(8);
  const auto a = p.alloc(64);
  p.free(a);  // fast path: header flagged magazine-owned
  EXPECT_THROW(p.free(a), PoolError);
  EXPECT_TRUE(p.check().ok());
}

TEST(PoolMagazineTest, DrainReturnsEverythingToFreeLists) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  p.set_magazine_size(8);
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 12; ++i) offs.push_back(p.alloc(64));
  for (const auto off : offs) p.free(off);
  ASSERT_GT(p.check().magazine_chunks, 0u);
  p.drain_magazines();
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.magazine_chunks, 0u);
  EXPECT_GE(rep.free_chunks, 12u);
  EXPECT_EQ(rep.bytes_in_use, p.bytes_in_use());
  // With magazines now disabled, a classic alloc must reuse the drained
  // space rather than growing the arena.
  p.set_magazine_size(0);
  const auto reuse = p.alloc(64);
  EXPECT_NE(std::find(offs.begin(), offs.end(), reuse), offs.end());
}

TEST(PoolMagazineTest, ReopenSweepsFlaggedChunksBack) {
  Device dev(kPool);
  std::uint64_t survivor = 0;
  std::size_t in_use_after_drain = 0;
  {
    Pool p = Pool::create(dev, 0, kPool);
    p.set_magazine_size(8);
    survivor = p.alloc(64);
    p.set<std::uint64_t>(survivor, 0xFEEDu);
    // Leave the magazine populated (refill remainder + one freed chunk)
    // and drop the Pool: the DRAM magazine dies with it, but every held
    // chunk's header carries the durable flag.
    p.free(p.alloc(64));
    in_use_after_drain = p.bytes_in_use();
    (void)in_use_after_drain;
  }
  Pool p = Pool::open(dev, 0);  // recovery sweeps flagged chunks
  EXPECT_EQ(p.get<std::uint64_t>(survivor), 0xFEEDu);
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.magazine_chunks, 0u);
  EXPECT_GT(rep.free_chunks, 0u);
  // The swept chunks came off the in-use counter.
  EXPECT_LT(p.bytes_in_use(), in_use_after_drain);
}

TEST(PoolMagazineTest, CrashWithArmedMagazinesRecovers) {
  Device dev(kPool, /*crash_shadow=*/true);
  std::uint64_t survivor = 0;
  {
    Pool p = Pool::create(dev, 0, kPool);
    p.set_magazine_size(8);
    survivor = p.alloc(64);
    p.set<std::uint64_t>(survivor, 0xC0DEu);
    p.free(p.alloc(64));  // flagged free sits in the magazine at the crash
    dev.simulate_crash();
  }
  Pool p = Pool::open(dev, 0);
  EXPECT_EQ(p.get<std::uint64_t>(survivor), 0xC0DEu);
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.magazine_chunks, 0u);
  // Swept space must be immediately allocatable.
  const auto off = p.alloc(64);
  p.set<std::uint64_t>(off, 7);
  EXPECT_EQ(p.get<std::uint64_t>(off), 7u);
}

TEST(PoolMagazineTest, StripeCountIsAReopenTimeChoice) {
  Device dev(kPool);
  std::vector<std::uint64_t> offs;
  {
    Pool p = Pool::create(dev, 0, kPool);
    p.set_magazine_size(8);
    p.set_alloc_stripes(8);
    for (int i = 0; i < 10; ++i) {
      const auto off = p.alloc(128);
      p.set<std::uint64_t>(off, 0x5100u + static_cast<std::uint64_t>(i));
      offs.push_back(off);
    }
    p.drain_magazines();
  }
  // The stripe count is a DRAM-side routing decision: the same media must
  // open cleanly under any other setting, with all data intact.
  Pool p = Pool::open(dev, 0);
  p.set_alloc_stripes(2);
  p.set_magazine_size(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(p.get<std::uint64_t>(offs[static_cast<std::size_t>(i)]),
              0x5100u + static_cast<std::uint64_t>(i));
  }
  for (const auto off : offs) p.free(off);
  p.drain_magazines();
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.magazine_chunks, 0u);
}

TEST(PoolMagazineTest, LargeAllocationsBypassMagazines) {
  Device dev(kPool);
  Pool p = Pool::create(dev, 0, kPool);
  p.set_magazine_size(8);
  const auto before = p.check().magazine_chunks;
  const auto big = p.alloc(200000);
  p.free(big);  // classic path: large class never enters a magazine
  const auto rep = p.check();
  EXPECT_TRUE(rep.ok()) << (rep.issues.empty() ? "" : rep.issues.front());
  EXPECT_EQ(rep.magazine_chunks, before);
  const auto again = p.alloc(200000);
  EXPECT_EQ(again, big);  // reused from the large free list
}

}  // namespace
