// Determinism regression: the whole stack — engines, serializers, the
// simulated clock, the DRAM read cache, the flush/copy audit counters — is
// supposed to be a pure function of the workload.  Two runs of the same
// seeded workload on fresh nodes must therefore produce byte-identical
// counter snapshots (serialised through the shared trace schema, the same
// serialisation flush_audit --json and copy_audit --json emit) and the same
// simulated clock reading.  Any nondeterminism here — an iteration order
// leak, a real-time dependency, an address-dependent hash — breaks the
// reproducibility claims EXPERIMENTS.md is built on, so it fails tier-1.
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/sim/context.hpp>
#include <pmemcpy/trace/trace.hpp>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

namespace trace = pmemcpy::trace;
using pmemcpy::Config;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

/// Every counter, serialised through the shared schema (the exact bytes the
/// audit tools would write for this row).
std::string counter_snapshot() {
  std::uint64_t row[static_cast<int>(trace::Counter::kNumCounters)] = {};
  for (int c = 0; c < static_cast<int>(trace::Counter::kNumCounters); ++c) {
    row[c] = trace::counter(static_cast<trace::Counter>(c));
  }
  return trace::schema_fields(row);
}

/// A seeded workload touching every audited path: scalar and array puts, a
/// group commit, cached and uncached reads (two passes so the second hits
/// the DRAM cache), an overwrite (cache invalidation), scrub, and removal.
void run_workload(pmemcpy::Layout layout, std::uint64_t seed) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  PmemNode node(o);
  Config cfg;
  cfg.node = &node;
  cfg.layout = layout;
  cfg.read_cache_bytes = 1u << 20;
  PMEM pmem{cfg};
  pmem.mmap("/det");

  std::uint64_t s = seed;
  const auto next = [&s] {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  for (int i = 0; i < 12; ++i) {
    pmem.store("s" + std::to_string(i),
               static_cast<std::int64_t>(next() % 100000));
  }
  {
    auto b = pmem.batch();
    for (int i = 0; i < 6; ++i) {
      pmem.store("g" + std::to_string(i), std::string("batched-") +
                                              std::to_string(next() % 997));
    }
    b.commit();
  }
  std::vector<double> v(1024);
  for (auto& x : v) x = static_cast<double>(next() % 4096) * 0.5;
  const std::size_t dims = v.size(), off = 0;
  pmem.alloc<double>("arr", 1, &dims);
  pmem.store("arr", v.data(), 1, &off, &dims);

  // Two read passes: the first fills the cache, the second hits it.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 12; ++i) {
      (void)pmem.load<std::int64_t>("s" + std::to_string(i));
    }
    std::vector<double> out(1024);
    pmem.load("arr", out.data(), 1, &off, &dims);
  }
  // Overwrite invalidates, the re-read refills.
  pmem.store("s0", std::int64_t{-1});
  (void)pmem.load<std::int64_t>("s0");

  (void)pmem.scrub();
  pmem.remove("s11");
  pmem.munmap();
}

TEST(Determinism, SeededWorkloadCountersAreByteIdentical) {
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  for (const auto layout :
       {pmemcpy::Layout::kHashTable, pmemcpy::Layout::kHierarchical}) {
    SCOPED_TRACE(layout == pmemcpy::Layout::kHashTable ? "table" : "tree");
    std::string snaps[2];
    double clocks[2] = {};
    for (int run = 0; run < 2; ++run) {
      trace::reset();
      pmemcpy::sim::ctx().reset_clock();
      run_workload(layout, 0xdecaf0001ull);
      snaps[run] = counter_snapshot();
      clocks[run] = pmemcpy::sim::ctx().now();
    }
    EXPECT_EQ(snaps[0], snaps[1]);
    EXPECT_EQ(clocks[0], clocks[1]);
    // Both runs actually exercised the cached read path.
    EXPECT_NE(snaps[0].find("read_cache_hits"), std::string::npos);
  }
  trace::set_enabled(was_enabled);
}

}  // namespace
