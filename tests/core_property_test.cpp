// Property-style sweeps of the pMEMCPY core: random decompositions round-
// trip for every dtype and rank count, overlapping reads assemble correctly,
// staged/direct modes agree bit-for-bit, and the trace layer's accounting
// invariants hold over real workloads (span nesting, charge attribution,
// counter/checker agreement).
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/pmemcpy.hpp>
#include <pmemcpy/trace/trace.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <random>

namespace {

using pmemcpy::Box;
using pmemcpy::Config;
using pmemcpy::Dimensions;
using pmemcpy::PMEM;
using pmemcpy::PmemNode;

PmemNode::Options node_opts() {
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  return o;
}

/// Typed generator pattern, exact for every supported dtype.
template <typename T>
T pattern(std::size_t lin) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(lin % 100000);
  } else {
    return static_cast<T>(lin * 2654435761u);
  }
}

template <typename T>
void roundtrip_random_boxes(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> nd_d(1, 4);
  const std::size_t nd = nd_d(rng);
  Dimensions global(nd);
  std::uniform_int_distribution<std::size_t> dim_d(2, 12);
  for (auto& d : global) d = dim_d(rng);

  PmemNode node(node_opts());
  Config cfg;
  cfg.node = &node;
  PMEM pmem{cfg};
  pmem.mmap("/prop");
  pmem.alloc<T>("v", global);

  // Partition dim 0 into contiguous slabs written as separate pieces.
  const Box gbox(Dimensions(nd, 0), global);
  std::size_t at = 0;
  while (at < global[0]) {
    std::uniform_int_distribution<std::size_t> cnt_d(1, global[0] - at);
    Box piece(Dimensions(nd, 0), global);
    piece.offset[0] = at;
    piece.count[0] = cnt_d(rng);
    at += piece.count[0];
    std::vector<T> data(piece.elements());
    pmemcpy::for_each_row(global, piece,
                          [&](std::size_t lin, std::size_t n, std::size_t off) {
                            for (std::size_t i = 0; i < n; ++i) {
                              data[off + i] = pattern<T>(lin + i);
                            }
                          });
    pmem.store("v", data.data(), static_cast<int>(nd), piece.offset.data(),
               piece.count.data());
  }

  // Read random sub-boxes (crossing piece boundaries) and verify.
  for (int trial = 0; trial < 8; ++trial) {
    Box want;
    want.offset.resize(nd);
    want.count.resize(nd);
    for (std::size_t d = 0; d < nd; ++d) {
      std::uniform_int_distribution<std::size_t> off_d(0, global[d] - 1);
      want.offset[d] = off_d(rng);
      std::uniform_int_distribution<std::size_t> cnt_d(1,
                                                       global[d] - want.offset[d]);
      want.count[d] = cnt_d(rng);
    }
    std::vector<T> out(want.elements());
    pmem.load("v", out.data(), static_cast<int>(nd), want.offset.data(),
              want.count.data());
    pmemcpy::for_each_row(global, want,
                          [&](std::size_t lin, std::size_t n, std::size_t off) {
                            for (std::size_t i = 0; i < n; ++i) {
                              ASSERT_EQ(out[off + i], pattern<T>(lin + i))
                                  << "seed=" << seed << " lin=" << lin + i;
                            }
                          });
  }
  pmem.munmap();
}

class CorePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CorePropertyTest, DoubleRandomBoxes) {
  roundtrip_random_boxes<double>(GetParam());
}
TEST_P(CorePropertyTest, FloatRandomBoxes) {
  roundtrip_random_boxes<float>(GetParam() + 1000);
}
TEST_P(CorePropertyTest, U32RandomBoxes) {
  roundtrip_random_boxes<std::uint32_t>(GetParam() + 2000);
}
TEST_P(CorePropertyTest, I64RandomBoxes) {
  roundtrip_random_boxes<std::int64_t>(GetParam() + 3000);
}
TEST_P(CorePropertyTest, U8RandomBoxes) {
  roundtrip_random_boxes<std::uint8_t>(GetParam() + 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertyTest, ::testing::Range(0u, 10u));

TEST(CorePropertyModes, StagedAndDirectBitIdentical) {
  // The same stores through the direct and staged paths must produce
  // identical persistent bytes (only the cost differs).
  for (const bool staged : {false, true}) {
    PmemNode node(node_opts());
    Config cfg;
    cfg.node = &node;
    cfg.force_dram_staging = staged;
    PMEM pmem{cfg};
    pmem.mmap("/modes");
    std::vector<double> v(4096);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i) * 0.5;
    const std::size_t dims = v.size(), off = 0;
    pmem.alloc<double>("A", 1, &dims);
    pmem.store("A", v.data(), 1, &off, &dims);
    std::vector<double> out(v.size());
    pmem.load("A", out.data(), 1, &off, &dims);
    EXPECT_EQ(out, v) << "staged=" << staged;
    pmem.munmap();
  }
}

TEST(CorePropertyParallel, RankCountSweepRoundtrips) {
  namespace wk = pmemcpy::wk;
  for (const int nranks : {1, 2, 6, 12}) {
    PmemNode node(node_opts());
    const auto dec = wk::decompose(16 * 16 * 16, nranks);
    pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
      const Box& mine =
          dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
      Config cfg;
      cfg.node = &node;
      PMEM pmem{cfg};
      pmem.mmap("/sweep", comm);
      std::vector<double> buf;
      wk::fill_box(buf, 0, dec.global, mine);
      pmem.alloc<double>("f", dec.global);
      pmem.store("f", buf.data(), 3, mine.offset.data(), mine.count.data());
      comm.barrier();
      // Every rank reads the *whole* array (crosses all pieces).
      const Box all(Dimensions(3, 0), dec.global);
      std::vector<double> out(all.elements());
      pmem.load("f", out.data(), 3, all.offset.data(), all.count.data());
      EXPECT_EQ(wk::verify_box(out, 0, dec.global, all), 0u)
          << "nranks=" << nranks << " rank=" << comm.rank();
      pmem.munmap();
    });
  }
}

TEST(CoreCrash, PublishedEntriesSurviveUnpublishedDont) {
  PmemNode::Options o = node_opts();
  o.crash_shadow = true;
  PmemNode node(o);
  Config cfg;
  cfg.node = &node;
  {
    PMEM pmem{cfg};
    pmem.mmap("/cr");
    std::vector<double> v(2048, 7.0);
    pmem.store("committed", v);
    pmem.store("epoch", std::int32_t{5});
    pmem.munmap();
  }
  {
    // Mid-flight reservation at crash time.
    auto pool = node.open_pool("_cr");
    auto table = node.table_for(pool, pool->root());
    auto ins = table->reserve("half-written", 8192);
    auto span = ins.value();
    std::memset(span.data(), 0x5A, span.size());
    node.device().simulate_crash();
  }
  node.remount();
  {
    PMEM pmem{cfg};
    pmem.mmap("/cr");
    EXPECT_EQ(pmem.load<std::int32_t>("epoch"), 5);
    const auto v = pmem.load<std::vector<double>>("committed");
    EXPECT_EQ(v.size(), 2048u);
    EXPECT_DOUBLE_EQ(v[2047], 7.0);
    EXPECT_FALSE(pmem.exists("half-written"));
    pmem.munmap();
  }
}

// --- trace-layer invariants over real workloads ------------------------------

namespace trace = pmemcpy::trace;

/// Arms tracing around a scope and restores the prior process-wide state.
struct ScopedTrace {
  ScopedTrace() : was(trace::enabled()) {
    trace::set_enabled(true);
    trace::reset();
  }
  ~ScopedTrace() {
    trace::reset();
    trace::set_enabled(was);
  }
  bool was;
};

/// A mixed serial workload touching every traced layer: scalar puts, a
/// batched group, an array piece, loads and a scrub.
void traced_workload(PmemNode& node) {
  Config cfg;
  cfg.node = &node;
  PMEM pmem{cfg};
  pmem.mmap("/traced");
  pmem.store("s", 41);
  {
    auto b = pmem.batch();
    pmem.store("a", std::int64_t{1});
    pmem.store("b", std::string("group"));
    b.commit();
  }
  std::vector<double> v(2048);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i);
  const std::size_t dims = v.size(), off = 0;
  pmem.alloc<double>("arr", 1, &dims);
  pmem.store("arr", v.data(), 1, &off, &dims);
  EXPECT_EQ(pmem.load<int>("s"), 41);
  std::vector<double> out(v.size());
  pmem.load("arr", out.data(), 1, &off, &dims);
  EXPECT_EQ(out, v);
  EXPECT_TRUE(pmem.scrub().ok());
  pmem.munmap();
}

TEST(TraceProperty, ChildSpanDurationsSumWithinParent) {
  ScopedTrace armed;
  // Multi-rank run: per-rank span stacks must nest independently.
  namespace wk = pmemcpy::wk;
  PmemNode node(node_opts());
  const auto dec = wk::decompose(12 * 12 * 12, 4);
  pmemcpy::par::Runtime::run(4, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    Config cfg;
    cfg.node = &node;
    PMEM pmem{cfg};
    pmem.mmap("/nest", comm);
    std::vector<double> buf;
    wk::fill_box(buf, 0, dec.global, mine);
    pmem.alloc<double>("f", dec.global);
    pmem.store("f", buf.data(), 3, mine.offset.data(), mine.count.data());
    comm.barrier();
    std::vector<double> out(mine.elements());
    pmem.load("f", out.data(), 3, mine.offset.data(), mine.count.data());
    pmem.munmap();
  });

  const auto spans = trace::snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(trace::dropped_spans(), 0u);
  std::map<std::uint64_t, std::int64_t> child_ns;
  std::map<std::uint64_t, std::int64_t> child_count;
  std::map<std::uint64_t, const trace::SpanData*> index;
  for (const auto& s : spans) {
    index[s.id] = &s;
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent != 0) {
      child_ns[s.parent] += s.duration_ns();
      ++child_count[s.parent];
    }
  }
  for (const auto& [id, sum] : child_ns) {
    ASSERT_TRUE(index.count(id));
    const trace::SpanData& parent = *index.at(id);
    // Children run on the parent's thread inside the parent's window, so
    // their durations sum to at most the parent's (± 1 ns integer rounding
    // per child).
    EXPECT_LE(sum, parent.duration_ns() + child_count[id])
        << parent.name << " id=" << id;
  }
}

TEST(TraceProperty, SpanChargeAttributionSumsToDuration) {
  ScopedTrace armed;
  PmemNode node(node_opts());
  trace::reset();
  traced_workload(node);
  const auto spans = trace::snapshot();
  ASSERT_FALSE(spans.empty());
  for (const auto& s : spans) {
    double attributed = 0.0;
    for (int c = 0; c < trace::kNumChargeKinds; ++c) {
      EXPECT_GE(s.charge_sec[c], 0.0) << s.name;
      attributed += s.charge_sec[c];
    }
    // Every Context::advance() and sync_to() is categorised, so the
    // per-category deltas reproduce the wall time (up to ns rounding of
    // the two endpoint timestamps and float accumulation order).
    EXPECT_NEAR(attributed, static_cast<double>(s.duration_ns()) * 1e-9,
                1e-8)
        << s.name;
  }
}

TEST(TraceProperty, DeviceChargedTimeMatchesSpanAttribution) {
  ScopedTrace armed;
  PmemNode node(node_opts());
  trace::reset();
  auto& c = pmemcpy::sim::ctx();
  double before[trace::kNumChargeKinds];
  for (int i = 0; i < trace::kNumChargeKinds; ++i) {
    before[i] = c.charged(static_cast<pmemcpy::sim::Charge>(i));
  }
  {
    trace::Span outer("prop.outer");
    traced_workload(node);
  }
  const auto spans = trace::snapshot();
  const trace::SpanData* outer = nullptr;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "prop.outer") outer = &s;
  }
  ASSERT_NE(outer, nullptr);
  // The simulated time the device (and every other module) charged to the
  // context during the workload is exactly what the enclosing span
  // attributes — the trace adds no time of its own and loses none.
  for (int i = 0; i < trace::kNumChargeKinds; ++i) {
    const auto why = static_cast<pmemcpy::sim::Charge>(i);
    EXPECT_NEAR(outer->charge_sec[i], c.charged(why) - before[i], 1e-12)
        << "charge category " << i;
  }
}

TEST(TraceProperty, CounterTotalsMatchCheckerReport) {
  ScopedTrace armed;
  PmemNode node(node_opts());
  node.device().enable_checker();
  trace::reset();  // both tallies now start from the same instant
  // Under the persist-check CI config the checker has been armed since node
  // construction (PMEMCPY_PERSIST_CHECK=1), so its totals already include
  // pre-reset construction traffic the trace never saw.  Snapshot it and
  // compare deltas: in a plain build the snapshot is simply zero.
  const auto before = node.device().checker()->report();
  traced_workload(node);
  const auto rep = node.device().checker()->report();
  // The trace counters are incremented at exactly the device points that
  // drive the persistency checker, so the two accountings must agree
  // op-for-op.
  EXPECT_EQ(trace::counter(trace::Counter::kStoreOps),
            rep.store_ops - before.store_ops);
  EXPECT_EQ(trace::counter(trace::Counter::kFlushOps),
            rep.flush_ops - before.flush_ops);
  EXPECT_EQ(trace::counter(trace::Counter::kLinesFlushed),
            rep.lines_flushed - before.lines_flushed);
  EXPECT_EQ(trace::counter(trace::Counter::kFenceOps),
            rep.fence_ops - before.fence_ops);
}

TEST(TraceProperty, PutPathStagesNoDramBytes) {
  ScopedTrace armed;
  PmemNode node(node_opts());
  // The acceptance gate of the zero-copy refactor (DESIGN.md §12), held as
  // a tier-1 invariant: single puts, group commits and array stores stage
  // nothing in DRAM on either layout — every serialized byte lands in the
  // reserved PMEM span (or streams through the DAX mapping) directly.
  for (const auto layout :
       {pmemcpy::Layout::kHashTable, pmemcpy::Layout::kHierarchical}) {
    trace::reset();
    Config cfg;
    cfg.node = &node;
    cfg.layout = layout;
    cfg.serializer = pmemcpy::serial::SerializerId::kBinary;
    PMEM pmem{cfg};
    pmem.mmap(layout == pmemcpy::Layout::kHashTable ? "/zc_flat"
                                                    : "/zc_tree");
    pmem.store("s", 41);
    {
      auto b = pmem.batch();
      pmem.store("a", std::int64_t{1});
      pmem.store("b", std::string("group"));
      b.commit();
    }
    std::vector<double> v(512, 1.5);
    const std::size_t dims = v.size(), off = 0;
    pmem.alloc<double>("arr", 1, &dims);
    pmem.store("arr", v.data(), 1, &off, &dims);
    EXPECT_EQ(pmem.load<int>("s"), 41);
    pmem.munmap();
    EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedBytes), 0u)
        << "layout " << static_cast<int>(layout);
    EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedPuts), 0u)
        << "layout " << static_cast<int>(layout);
    EXPECT_GT(trace::counter(trace::Counter::kCopyDirectBytes), 0u)
        << "layout " << static_cast<int>(layout);
  }
}

TEST(TraceProperty, ForcedStagingIsChargedToTheAudit) {
  ScopedTrace armed;
  PmemNode node(node_opts());
  trace::reset();
  Config cfg;
  cfg.node = &node;
  cfg.force_dram_staging = true;  // the ADIOS-style ablation
  PMEM pmem{cfg};
  pmem.mmap("/zc_staged");
  pmem.store("s", 41);
  EXPECT_EQ(trace::counter(trace::Counter::kCopyStagedPuts), 1u);
  EXPECT_GT(trace::counter(trace::Counter::kCopyStagedBytes), 0u);
  pmem.munmap();
}

TEST(CoreCrash, OverwriteTornByCrashKeepsOldValue) {
  PmemNode::Options o = node_opts();
  o.crash_shadow = true;
  PmemNode node(o);
  Config cfg;
  cfg.node = &node;
  {
    PMEM pmem{cfg};
    pmem.mmap("/cr2");
    pmem.store("x", std::uint64_t{111});
    pmem.munmap();
  }
  {
    // Simulate a crash in the middle of an overwrite: reserve the new value
    // but never publish (the link-in is the atomic commit point).
    auto pool = node.open_pool("_cr2");
    auto table = node.table_for(pool, pool->root());
    auto ins = table->reserve("x", 64);
    auto span = ins.value();
    std::memset(span.data(), 0xFF, span.size());
    node.device().simulate_crash();
  }
  node.remount();
  {
    PMEM pmem{cfg};
    pmem.mmap("/cr2");
    EXPECT_EQ(pmem.load<std::uint64_t>("x"), 111u);
    pmem.munmap();
  }
}

TEST(CoreCrash, CrashMidSerializeIntoReservedSpanLeavesNoTrace) {
  // Zero-copy hazard check (DESIGN.md §12): with reserve-then-serialize the
  // serializer writes into PMEM *before* commit, so a crash mid-serialize
  // leaves a half-filled reserved blob in the pool.  It must be unreachable
  // after recovery (the link-in never happened) and the scrubber must not
  // count the torn bytes as corruption.
  PmemNode::Options o = node_opts();
  o.crash_shadow = true;
  PmemNode node(o);
  Config cfg;
  cfg.node = &node;
  {
    PMEM pmem{cfg};
    pmem.mmap("/crz");
    pmem.store("x", std::int32_t{7});
    pmem.munmap();
  }
  {
    auto pool = node.open_pool("_crz");
    auto table = node.table_for(pool, pool->root());
    auto ins = table->reserve("y", 64);
    auto span = ins.value();
    std::memset(span.data(), 0xAB, span.size() / 2);  // serializer half-done
    node.device().simulate_crash();
  }
  node.remount();
  {
    PMEM pmem{cfg};
    pmem.mmap("/crz");
    EXPECT_FALSE(pmem.exists("y"));
    EXPECT_EQ(pmem.load<std::int32_t>("x"), 7);
    EXPECT_TRUE(pmem.scrub().ok());
    pmem.munmap();
  }
}

TEST(CoreCrash, TreeCrashMidSerializeLeavesNoTrace) {
  // Same hazard on the hierarchical layout: the payload span is reserved
  // over the entry's temp file, so a crash mid-serialize strands a half-
  // filled ".tmp." file.  Recovery must neither surface the key nor let the
  // scrubber flag the stranded bytes.
  PmemNode::Options o = node_opts();
  o.crash_shadow = true;
  PmemNode node(o);
  Config cfg;
  cfg.node = &node;
  cfg.layout = pmemcpy::Layout::kHierarchical;
  {
    PMEM pmem{cfg};
    pmem.mmap("/crzt");
    pmem.store("x", std::int32_t{7});
    pmem.munmap();
  }
  {
    auto eng = pmemcpy::engine::open_tree_engine(node, "/crzt", false, nullptr);
    auto put = eng->put("y", 64, 0, false);
    ASSERT_FALSE(put->reserved_span().empty());
    std::vector<std::byte> half(32, std::byte{0xCD});
    put->sink().write(half.data(), half.size());
    node.device().simulate_crash();
    // The handle dies here, post-crash; its cleanup writes vanish with the
    // frozen device rather than mutating the crash image.
  }
  node.remount();
  {
    PMEM pmem{cfg};
    pmem.mmap("/crzt");
    EXPECT_FALSE(pmem.exists("y"));
    EXPECT_EQ(pmem.load<std::int32_t>("x"), 7);
    EXPECT_TRUE(pmem.scrub().ok());
    pmem.munmap();
  }
}

}  // namespace
