// Tests for the EXT4-DAX-like filesystem: namespace, POSIX IO, DAX mappings.
#include <pmemcpy/fs/filesystem.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>

namespace {

using pmemcpy::fs::File;
using pmemcpy::fs::FileSystem;
using pmemcpy::fs::FsError;
using pmemcpy::fs::OpenMode;
using pmemcpy::pmem::Device;
using pmemcpy::sim::Charge;

constexpr std::size_t kFsSize = 64ull << 20;

struct FsTest : ::testing::Test {
  FsTest() : dev(kFsSize), fs(FileSystem::format(dev, 0, kFsSize)) {}
  Device dev;
  FileSystem fs;
};

TEST_F(FsTest, MkdirAndExists) {
  fs.mkdir("/a");
  EXPECT_TRUE(fs.exists("/a"));
  EXPECT_TRUE(fs.is_dir("/a"));
  EXPECT_FALSE(fs.exists("/b"));
}

TEST_F(FsTest, MkdirsCreatesChain) {
  fs.mkdirs("/x/y/z");
  EXPECT_TRUE(fs.is_dir("/x"));
  EXPECT_TRUE(fs.is_dir("/x/y"));
  EXPECT_TRUE(fs.is_dir("/x/y/z"));
  fs.mkdirs("/x/y/z");  // idempotent
}

TEST_F(FsTest, MkdirIntoMissingParentThrows) {
  EXPECT_THROW(fs.mkdir("/no/sub"), FsError);
}

TEST_F(FsTest, RelativePathThrows) {
  EXPECT_THROW(fs.mkdir("rel"), FsError);
}

TEST_F(FsTest, OpenCreateWriteRead) {
  File f = fs.open("/file.bin", OpenMode::kTruncate);
  std::vector<std::uint8_t> in(100000);
  std::iota(in.begin(), in.end(), 1);
  EXPECT_EQ(fs.pwrite(f, in.data(), in.size(), 0), in.size());
  EXPECT_EQ(fs.size(f), in.size());
  std::vector<std::uint8_t> out(in.size());
  EXPECT_EQ(fs.pread(f, out.data(), out.size(), 0), out.size());
  EXPECT_EQ(in, out);
}

TEST_F(FsTest, OpenMissingForReadThrows) {
  EXPECT_THROW((void)fs.open("/nope", OpenMode::kRead), FsError);
}

TEST_F(FsTest, TruncateDropsContents) {
  File f = fs.open("/t", OpenMode::kTruncate);
  const std::uint64_t v = 7;
  fs.pwrite(f, &v, 8, 0);
  File g = fs.open("/t", OpenMode::kTruncate);
  EXPECT_EQ(fs.size(g), 0u);
}

TEST_F(FsTest, WriteAtOffsetExtends) {
  File f = fs.open("/sparse", OpenMode::kTruncate);
  const std::uint64_t v = 0xAB;
  fs.pwrite(f, &v, 8, 1 << 20);
  EXPECT_EQ(fs.size(f), (1u << 20) + 8u);
  std::uint64_t out = 0;
  fs.pread(f, &out, 8, 1 << 20);
  EXPECT_EQ(out, 0xABu);
}

TEST_F(FsTest, PreadPastEofReturnsShort) {
  File f = fs.open("/short", OpenMode::kTruncate);
  std::vector<std::uint8_t> data(100, 1);
  fs.pwrite(f, data.data(), 100, 0);
  std::vector<std::uint8_t> out(200, 0);
  EXPECT_EQ(fs.pread(f, out.data(), 200, 50), 50u);
  EXPECT_EQ(fs.pread(f, out.data(), 10, 500), 0u);
}

TEST_F(FsTest, LargeFileSpansIndirectExtents) {
  // Force fragmentation so the file needs many extents: allocate small
  // files in between.
  for (int i = 0; i < 20; ++i) {
    File pad = fs.open("/pad" + std::to_string(i), OpenMode::kTruncate);
    fs.truncate(pad, 4096);
    File big = fs.open("/frag", OpenMode::kWrite);
    fs.truncate(big, fs.size(big) + (1 << 16));
  }
  File big = fs.open("/frag", OpenMode::kWrite);
  const std::uint64_t sz = fs.size(big);
  std::vector<std::uint8_t> in(sz);
  std::iota(in.begin(), in.end(), 3);
  fs.pwrite(big, in.data(), sz, 0);
  std::vector<std::uint8_t> out(sz);
  fs.pread(big, out.data(), sz, 0);
  EXPECT_EQ(in, out);
}

TEST_F(FsTest, ListDirectory) {
  fs.mkdir("/d");
  (void)fs.open("/d/one", OpenMode::kTruncate);
  (void)fs.open("/d/two", OpenMode::kTruncate);
  auto names = fs.list("/d");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
}

TEST_F(FsTest, RemoveFileFreesBlocks) {
  File f = fs.open("/big", OpenMode::kTruncate);
  // Measure after creation: the directory entry itself costs a block that
  // outlives the file.
  const auto before = fs.free_blocks();
  fs.truncate(f, 1 << 20);
  EXPECT_LT(fs.free_blocks(), before);
  fs.remove("/big");
  EXPECT_EQ(fs.free_blocks(), before);
  EXPECT_FALSE(fs.exists("/big"));
}

TEST_F(FsTest, RemoveNonEmptyDirThrows) {
  fs.mkdir("/d");
  (void)fs.open("/d/f", OpenMode::kTruncate);
  EXPECT_THROW(fs.remove("/d"), FsError);
  fs.remove("/d/f");
  fs.remove("/d");
  EXPECT_FALSE(fs.exists("/d"));
}

TEST_F(FsTest, DuplicateNameThrows) {
  fs.mkdir("/dup");
  EXPECT_THROW(fs.mkdir("/dup"), FsError);
}

TEST_F(FsTest, MountSeesExistingData) {
  {
    File f = fs.open("/persist", OpenMode::kTruncate);
    const std::uint64_t v = 0x1234;
    fs.pwrite(f, &v, 8, 0);
  }
  FileSystem fs2 = FileSystem::mount(dev, 0);
  File f = fs2.open("/persist", OpenMode::kRead);
  std::uint64_t out = 0;
  fs2.pread(f, &out, 8, 0);
  EXPECT_EQ(out, 0x1234u);
  EXPECT_EQ(fs2.free_blocks(), fs.free_blocks());
}

TEST_F(FsTest, MountGarbageThrows) {
  Device other(1 << 20);
  EXPECT_THROW(FileSystem::mount(other, 0), FsError);
}

TEST_F(FsTest, PosixPathChargesSyscallAndCopy) {
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  File f = fs.open("/charged", OpenMode::kTruncate);
  std::vector<std::byte> buf(1 << 16);
  fs.pwrite(f, buf.data(), buf.size(), 0);
  EXPECT_GT(c.charged(Charge::kSyscall), 0.0);
  EXPECT_GT(c.charged(Charge::kCpuCopy), 0.0);
  EXPECT_GT(c.charged(Charge::kPmemWrite), 0.0);
}

TEST_F(FsTest, DaxPathAvoidsKernelCopies) {
  File f = fs.open("/dax", OpenMode::kTruncate);
  fs.truncate(f, 1 << 16);
  pmemcpy::sim::Context c;
  pmemcpy::sim::ScopedContext sc(c);
  auto m = fs.map(f);
  std::vector<std::byte> buf(1 << 16, std::byte{0x5A});
  m.store(0, buf.data(), buf.size());
  EXPECT_DOUBLE_EQ(c.charged(Charge::kCpuCopy), 0.0);  // zero copy
  EXPECT_GT(c.charged(Charge::kPmemWrite), 0.0);
  std::vector<std::byte> out(1 << 16);
  m.load(0, out.data(), out.size());
  EXPECT_EQ(out, buf);
}

TEST_F(FsTest, MappingRoundtripAndPersist) {
  auto m = fs.create_mapped("/mapped", 1 << 18);
  std::vector<std::uint32_t> in(1024);
  std::iota(in.begin(), in.end(), 9);
  m.store(4096, in.data(), in.size() * 4);
  m.persist(4096, in.size() * 4);
  std::vector<std::uint32_t> out(1024);
  m.load(4096, out.data(), out.size() * 4);
  EXPECT_EQ(in, out);
}

TEST_F(FsTest, MappingOutOfRangeThrows) {
  auto m = fs.create_mapped("/small", 4096);
  std::byte b{};
  EXPECT_THROW(m.store(4095, &b, 2), FsError);
  EXPECT_THROW(m.load(4096, &b, 1), FsError);
}

TEST_F(FsTest, MappingSpanContiguous) {
  auto m = fs.create_mapped("/span", 1 << 16);
  auto s = m.span(0, 1 << 16);  // fresh file: one extent
  EXPECT_EQ(s.size(), 1u << 16);
  s[100] = std::byte{0x77};
  std::byte out{};
  m.load(100, &out, 1);
  EXPECT_EQ(out, std::byte{0x77});
}

TEST_F(FsTest, ConcurrentWritersToDifferentFiles) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "/c" + std::to_string(t);
      File f = fs.open(path, OpenMode::kTruncate);
      std::vector<std::uint8_t> data(50000,
                                     static_cast<std::uint8_t>(t + 1));
      fs.pwrite(f, data.data(), data.size(), 0);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    File f = fs.open("/c" + std::to_string(t), OpenMode::kRead);
    std::vector<std::uint8_t> out(50000);
    fs.pread(f, out.data(), out.size(), 0);
    for (auto v : out) ASSERT_EQ(v, static_cast<std::uint8_t>(t + 1));
  }
}

TEST_F(FsTest, SharedFileDisjointRegions) {
  // The miniio write pattern: pre-sized file, ranks pwrite disjoint ranges.
  File f0 = fs.open("/shared", OpenMode::kTruncate);
  fs.truncate(f0, 8 * 100000);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      File f = fs.open("/shared", OpenMode::kWrite);
      std::vector<std::uint8_t> data(100000,
                                     static_cast<std::uint8_t>(t + 1));
      fs.pwrite(f, data.data(), data.size(),
                static_cast<std::uint64_t>(t) * 100000);
    });
  }
  for (auto& th : threads) th.join();
  File f = fs.open("/shared", OpenMode::kRead);
  for (int t = 0; t < kThreads; ++t) {
    std::uint8_t v = 0;
    fs.pread(f, &v, 1, static_cast<std::uint64_t>(t) * 100000 + 17);
    EXPECT_EQ(v, static_cast<std::uint8_t>(t + 1));
  }
}

TEST_F(FsTest, RenameMovesFile) {
  File f = fs.open("/a", OpenMode::kTruncate);
  const std::uint64_t v = 9;
  fs.pwrite(f, &v, 8, 0);
  EXPECT_TRUE(fs.rename("/a", "/b"));
  EXPECT_FALSE(fs.exists("/a"));
  File g = fs.open("/b", OpenMode::kRead);
  std::uint64_t out = 0;
  fs.pread(g, &out, 8, 0);
  EXPECT_EQ(out, 9u);
}

TEST_F(FsTest, RenameReplacesTargetAndFreesIt) {
  File a = fs.open("/a", OpenMode::kTruncate);
  fs.truncate(a, 1 << 16);
  File b = fs.open("/b", OpenMode::kTruncate);
  fs.truncate(b, 1 << 18);
  const auto free_before = fs.free_blocks();
  EXPECT_TRUE(fs.rename("/a", "/b"));
  // The old /b's blocks came back.
  EXPECT_EQ(fs.free_blocks(), free_before + (1 << 18) / 4096);
  EXPECT_EQ(fs.size("/b"), 1u << 16);
}

TEST_F(FsTest, RenameNoReplaceKeepsTarget) {
  File a = fs.open("/a", OpenMode::kTruncate);
  const std::uint64_t va = 1;
  fs.pwrite(a, &va, 8, 0);
  File b = fs.open("/b", OpenMode::kTruncate);
  const std::uint64_t vb = 2;
  fs.pwrite(b, &vb, 8, 0);
  EXPECT_FALSE(fs.rename("/a", "/b", /*replace=*/false));
  EXPECT_FALSE(fs.exists("/a"));  // source discarded
  std::uint64_t out = 0;
  File g = fs.open("/b", OpenMode::kRead);
  fs.pread(g, &out, 8, 0);
  EXPECT_EQ(out, 2u);  // target untouched
}

TEST_F(FsTest, RenameAcrossDirectories) {
  fs.mkdirs("/x/y");
  (void)fs.open("/x/f", OpenMode::kTruncate);
  EXPECT_TRUE(fs.rename("/x/f", "/x/y/g"));
  EXPECT_TRUE(fs.exists("/x/y/g"));
}

TEST_F(FsTest, RenameMissingSourceThrows) {
  EXPECT_THROW(fs.rename("/none", "/b"), FsError);
}

TEST(FsFormat, TooSmallThrows) {
  Device dev(1 << 20);
  EXPECT_THROW(FileSystem::format(dev, 0, 128 * 1024), FsError);
}

TEST(FsFormat, OutOfSpaceThrows) {
  Device dev(8ull << 20);
  FileSystem fs = FileSystem::format(dev, 0, 8ull << 20);
  File f = fs.open("/huge", OpenMode::kTruncate);
  EXPECT_THROW(fs.truncate(f, 64ull << 20), FsError);
}

}  // namespace
