// Tests for the persistent list and persistent mutex.
#include <pmemcpy/obj/plist.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

namespace {

using pmemcpy::obj::PList;
using pmemcpy::obj::PMutex;
using pmemcpy::obj::Pool;
using pmemcpy::obj::PoolError;
using pmemcpy::pmem::Device;

constexpr std::size_t kPool = 32ull << 20;

struct PListTest : ::testing::Test {
  PListTest()
      : dev(kPool, /*crash_shadow=*/true),
        pool(Pool::create(dev, 0, kPool)) {}
  Device dev;
  Pool pool;
};

TEST_F(PListTest, PushPopLifo) {
  PList list = PList::create(pool, sizeof(std::uint64_t));
  for (std::uint64_t v : {1ull, 2ull, 3ull}) list.push(&v);
  EXPECT_EQ(list.size(), 3u);
  std::uint64_t out = 0;
  EXPECT_TRUE(list.pop(&out));
  EXPECT_EQ(out, 3u);
  EXPECT_TRUE(list.pop(&out));
  EXPECT_EQ(out, 2u);
  EXPECT_TRUE(list.pop(&out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(list.pop(&out));
  EXPECT_TRUE(list.empty());
}

TEST_F(PListTest, ForEachVisitsHeadToTail) {
  PList list = PList::create(pool, sizeof(std::uint32_t));
  for (std::uint32_t v = 0; v < 10; ++v) list.push(&v);
  std::vector<std::uint32_t> seen;
  list.for_each([&](const std::byte* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    seen.push_back(v);
  });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 9u);  // LIFO
  EXPECT_EQ(seen.back(), 0u);
}

TEST_F(PListTest, OpenSeesExistingRecords) {
  std::uint64_t hoff = 0;
  {
    PList list = PList::create(pool, 16);
    const char rec[16] = "persist-me";
    list.push(rec);
    hoff = list.header_off();
  }
  PList list = PList::open(pool, hoff);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.value_size(), 16u);
  char out[16] = {};
  EXPECT_TRUE(list.pop(out));
  EXPECT_STREQ(out, "persist-me");
}

TEST_F(PListTest, OpenGarbageThrows) {
  const auto off = pool.alloc(64);
  std::vector<std::byte> zeros(64, std::byte{0});
  pool.write(off, zeros.data(), zeros.size());
  EXPECT_THROW((void)PList::open(pool, off), PoolError);
}

TEST_F(PListTest, PopFreesMemory) {
  PList list = PList::create(pool, 1024);
  const auto before = pool.bytes_in_use();
  std::vector<std::byte> rec(1024, std::byte{7});
  list.push(rec.data());
  EXPECT_GT(pool.bytes_in_use(), before);
  list.pop(rec.data());
  EXPECT_EQ(pool.bytes_in_use(), before);
}

TEST_F(PListTest, ConcurrentPushersAllLand) {
  PList list = PList::create(pool, sizeof(std::uint64_t));
  constexpr int kThreads = 8, kPer = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i);
        list.push(&v);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kThreads * kPer));
  std::set<std::uint64_t> seen;
  list.for_each([&](const std::byte* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    seen.insert(v);
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPer));
}

TEST_F(PListTest, UnlinkedPushInvisibleAfterCrash) {
  PList list = PList::create(pool, sizeof(std::uint64_t));
  const std::uint64_t v = 42;
  list.push(&v);
  const auto hoff = list.header_off();
  // A crash now: everything push() persisted survives; the list is intact.
  dev.simulate_crash();
  Pool reopened = Pool::open(dev, 0);
  PList list2 = PList::open(reopened, hoff);
  EXPECT_EQ(list2.size(), 1u);
  std::uint64_t out = 0;
  EXPECT_TRUE(list2.pop(&out));
  EXPECT_EQ(out, 42u);
}

TEST(PMutexTest, LockUnlockTryLock) {
  Device dev(kPool);
  Pool pool = Pool::create(dev, 0, kPool);
  PMutex m = PMutex::create(pool);
  m.lock();
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(PMutexTest, MutualExclusionUnderContention) {
  Device dev(kPool);
  Pool pool = Pool::create(dev, 0, kPool);
  PMutex m = PMutex::create(pool);
  int counter = 0;  // unprotected except by m
  constexpr int kThreads = 8, kPer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kPer);
}

TEST(PMutexTest, ReopenReleasesPreCrashOwner) {
  Device dev(kPool, true);
  Pool pool = Pool::create(dev, 0, kPool);
  std::uint64_t off = 0;
  {
    PMutex m = PMutex::create(pool);
    off = m.off();
    m.lock();
    // Crash while held.
    dev.simulate_crash();
    // (Unlock the DRAM-side mutex so its destructor is well-defined; the
    // persistent slot already reflects the crash.)
    m.unlock();
  }
  Pool reopened = Pool::open(dev, 0);
  PMutex m = PMutex::open(reopened, off);
  EXPECT_TRUE(m.try_lock());  // pre-crash ownership does not survive
  m.unlock();
}

TEST(PMutexTest, OpenGarbageThrows) {
  Device dev(kPool);
  Pool pool = Pool::create(dev, 0, kPool);
  const auto off = pool.alloc(16);
  std::vector<std::byte> zeros(16, std::byte{0});
  pool.write(off, zeros.data(), zeros.size());
  EXPECT_THROW((void)PMutex::open(pool, off), PoolError);
}

}  // namespace
