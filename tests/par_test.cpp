// Tests for the thread-based MPI-like runtime: collectives move the right
// bytes, clocks synchronise, errors propagate.
#include <pmemcpy/par/comm.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace {

using pmemcpy::par::Comm;
using pmemcpy::par::Runtime;
using pmemcpy::sim::ctx;

TEST(RuntimeTest, RunsAllRanks) {
  std::atomic<int> sum{0};
  auto res = Runtime::run(7, [&](Comm& c) { sum += c.rank(); });
  EXPECT_EQ(sum.load(), 21);
  EXPECT_EQ(res.rank_times.size(), 7u);
}

TEST(RuntimeTest, InvalidRankCountThrows) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(RuntimeTest, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(Runtime::run(4,
                            [&](Comm& c) {
                              if (c.rank() == 2) {
                                throw std::runtime_error("rank 2 died");
                              }
                              c.barrier();  // would deadlock without abort
                            }),
               std::runtime_error);
}

TEST(RuntimeTest, ReportsCriticalPathTime) {
  auto res = Runtime::run(4, [&](Comm& c) {
    ctx().advance(c.rank() == 3 ? 5.0 : 1.0);
  });
  EXPECT_GE(res.max_time, 5.0);
  EXPECT_LT(res.max_time, 5.1);
}

TEST(CommTest, BarrierSynchronisesClocks) {
  Runtime::run(4, [&](Comm& c) {
    ctx().advance(static_cast<double>(c.rank()));  // ranks at 0..3
    c.barrier();
    EXPECT_GE(ctx().now(), 3.0);  // everyone at max + barrier cost
  });
}

TEST(CommTest, Bcast) {
  Runtime::run(5, [&](Comm& c) {
    std::uint64_t v = c.rank() == 2 ? 777u : 0u;
    c.bcast(&v, sizeof(v), 2);
    EXPECT_EQ(v, 777u);
  });
}

TEST(CommTest, Allgather) {
  Runtime::run(6, [&](Comm& c) {
    const std::uint32_t mine = static_cast<std::uint32_t>(c.rank() * 10);
    std::vector<std::uint32_t> all(6);
    c.allgather(&mine, sizeof(mine), all.data());
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)],
                static_cast<std::uint32_t>(i * 10));
    }
  });
}

TEST(CommTest, AllgathervVariableSizes) {
  Runtime::run(4, [&](Comm& c) {
    // Rank r contributes r+1 bytes of value 'A'+r.
    const std::size_t mine = static_cast<std::size_t>(c.rank()) + 1;
    std::vector<char> send(mine, static_cast<char>('A' + c.rank()));
    std::vector<std::size_t> counts{1, 2, 3, 4};
    std::vector<std::size_t> displs{0, 1, 3, 6};
    std::vector<char> recv(10);
    c.allgatherv(send.data(), mine, recv.data(), counts, displs);
    EXPECT_EQ(std::string(recv.begin(), recv.end()), "ABBCCCDDDD");
  });
}

TEST(CommTest, AllgathervCountMismatchThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [&](Comm& c) {
                     char x = 'x';
                     std::vector<std::size_t> counts{1, 2};  // rank1 sends 1
                     std::vector<std::size_t> displs{0, 1};
                     std::vector<char> recv(3);
                     c.allgatherv(&x, 1, recv.data(), counts, displs);
                   }),
      std::invalid_argument);
}

TEST(CommTest, GathervOnlyRootReceives) {
  Runtime::run(3, [&](Comm& c) {
    const std::uint64_t mine = static_cast<std::uint64_t>(c.rank()) + 1;
    std::vector<std::size_t> counts{8, 8, 8};
    std::vector<std::size_t> displs{0, 8, 16};
    std::vector<std::uint64_t> recv(3, 0);
    c.gatherv(&mine, 8, c.rank() == 1 ? recv.data() : nullptr, counts, displs,
              1);
    if (c.rank() == 1) {
      EXPECT_EQ(recv, (std::vector<std::uint64_t>{1, 2, 3}));
    }
  });
}

TEST(CommTest, AlltoallvTransposes) {
  constexpr int kN = 4;
  Runtime::run(kN, [&](Comm& c) {
    // Rank r sends byte value (r*kN + d) to rank d.
    std::vector<std::uint8_t> send(kN);
    std::vector<std::size_t> counts(kN, 1), sdispls(kN), rdispls(kN);
    for (int d = 0; d < kN; ++d) {
      send[static_cast<std::size_t>(d)] =
          static_cast<std::uint8_t>(c.rank() * kN + d);
      sdispls[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d);
      rdispls[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d);
    }
    std::vector<std::uint8_t> recv(kN);
    c.alltoallv(send.data(), counts, sdispls, recv.data(), counts, rdispls);
    for (int s = 0; s < kN; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)],
                static_cast<std::uint8_t>(s * kN + c.rank()));
    }
  });
}

TEST(CommTest, AlltoallvZeroCounts) {
  Runtime::run(3, [&](Comm& c) {
    std::vector<std::size_t> zeros(3, 0), displs(3, 0);
    c.alltoallv(nullptr, zeros, displs, nullptr, zeros, displs);
    (void)c;
  });
}

TEST(CommTest, ScattervDistributes) {
  Runtime::run(4, [&](Comm& c) {
    std::vector<std::uint8_t> send;
    std::vector<std::size_t> counts{1, 2, 3, 4}, displs{0, 1, 3, 6};
    if (c.rank() == 1) {
      send = {9, 10, 10, 11, 11, 11, 12, 12, 12, 12};
    }
    const std::size_t mine = static_cast<std::size_t>(c.rank()) + 1;
    std::vector<std::uint8_t> recv(mine, 0);
    c.scatterv(send.data(), counts, displs, recv.data(), mine, 1);
    for (auto v : recv) {
      EXPECT_EQ(v, static_cast<std::uint8_t>(9 + c.rank()));
    }
  });
}

TEST(CommTest, ScattervCountMismatchThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [&](Comm& c) {
                     std::vector<std::uint8_t> send(4);
                     std::vector<std::size_t> counts{2, 2}, displs{0, 2};
                     std::uint8_t recv[3];
                     c.scatterv(send.data(), counts, displs, recv,
                                /*bytes=*/3, 0);  // claims 3, root says 2
                   }),
      std::invalid_argument);
}

TEST(CommTest, SplitByParity) {
  Runtime::run(6, [&](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Sub-communicator collectives work and stay within the group.
    const auto sum = sub.allreduce_sum(static_cast<std::uint64_t>(c.rank()));
    if (c.rank() % 2 == 0) {
      EXPECT_EQ(sum, 0u + 2u + 4u);
    } else {
      EXPECT_EQ(sum, 1u + 3u + 5u);
    }
    sub.barrier();
  });
}

TEST(CommTest, SplitKeyOrdersRanks) {
  Runtime::run(4, [&](Comm& c) {
    // Reverse the rank order via the key.
    Comm sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(CommTest, SplitNegativeColorOptsOut) {
  Runtime::run(4, [&](Comm& c) {
    Comm sub = c.split(c.rank() == 0 ? -1 : 7, 0);
    if (c.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      sub.barrier();
    }
  });
}

TEST(CommTest, RepeatedSplitsIndependent) {
  Runtime::run(4, [&](Comm& c) {
    Comm a = c.split(0, 0);
    Comm b = c.split(c.rank() < 2 ? 0 : 1, 0);
    EXPECT_EQ(a.size(), 4);
    EXPECT_EQ(b.size(), 2);
    a.barrier();
    b.barrier();
  });
}

TEST(CommTest, SendRecvDelivers) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      const std::uint64_t v = 0xCAFEBABE;
      c.send(1, /*tag=*/7, &v, sizeof(v));
    } else {
      std::uint64_t v = 0;
      c.recv(0, 7, &v, sizeof(v));
      EXPECT_EQ(v, 0xCAFEBABEu);
    }
  });
}

TEST(CommTest, SendRecvOrderedPerTag) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      for (std::uint32_t i = 0; i < 10; ++i) c.send(1, 1, &i, sizeof(i));
    } else {
      for (std::uint32_t i = 0; i < 10; ++i) {
        std::uint32_t v = 99;
        c.recv(0, 1, &v, sizeof(v));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(CommTest, RecvAdvancesClockPastSender) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      ctx().advance(2.0);
      const int v = 1;
      c.send(1, 0, &v, sizeof(v));
    } else {
      int v = 0;
      c.recv(0, 0, &v, sizeof(v));
      EXPECT_GE(ctx().now(), 2.0);  // message can't arrive before it was sent
    }
  });
}

TEST(CommTest, ExscanSum) {
  Runtime::run(5, [&](Comm& c) {
    const auto mine = static_cast<std::uint64_t>(c.rank() + 1);  // 1..5
    const auto pre = c.exscan_sum(mine);
    // exscan of 1,2,3,4,5 -> 0,1,3,6,10
    const std::uint64_t expect[] = {0, 1, 3, 6, 10};
    EXPECT_EQ(pre, expect[c.rank()]);
  });
}

TEST(CommTest, Reductions) {
  Runtime::run(6, [&](Comm& c) {
    const double mine = static_cast<double>(c.rank());
    EXPECT_DOUBLE_EQ(c.allreduce_sum(mine), 15.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(mine), 5.0);
    EXPECT_DOUBLE_EQ(c.allreduce_min(mine), 0.0);
  });
}

TEST(CommTest, NetworkChargedForRemoteBytes) {
  Runtime::run(4, [&](Comm& c) {
    std::vector<std::byte> buf(1 << 20);
    std::vector<std::byte> recv(4 << 20);
    c.allgather(buf.data(), buf.size(), recv.data());
    EXPECT_GT(ctx().charged(pmemcpy::sim::Charge::kNetwork), 0.0);
  });
}

TEST(CommTest, SingleRankCollectivesWork) {
  Runtime::run(1, [&](Comm& c) {
    c.barrier();
    std::uint64_t v = 5;
    c.bcast(&v, sizeof(v), 0);
    std::vector<std::uint64_t> all(1);
    c.allgather(&v, sizeof(v), all.data());
    EXPECT_EQ(all[0], 5u);
    EXPECT_EQ(c.exscan_sum(3), 0u);
  });
}

TEST(CommTest, ManyRanksStress) {
  // More ranks than the host has cores: exercises the scheduler paths.
  Runtime::run(48, [&](Comm& c) {
    for (int i = 0; i < 5; ++i) {
      const auto sum =
          c.allreduce_sum(static_cast<std::uint64_t>(c.rank()));
      EXPECT_EQ(sum, 48u * 47u / 2u);
      c.barrier();
    }
  });
}

}  // namespace
