// Integration tests of the baseline PIO libraries (miniADIOS, miniNetCDF4,
// miniPNetCDF) over the 3-D domain-decomposition workload.
#include <miniio/miniio.hpp>
#include <pmemcpy/workload/domain3d.hpp>

#include <gtest/gtest.h>

namespace {

using miniio::Library;
using pmemcpy::Box;
using pmemcpy::Dimensions;
using pmemcpy::PmemNode;
namespace wk = pmemcpy::wk;

class MiniioTest : public ::testing::TestWithParam<std::tuple<Library, int>> {};

TEST_P(MiniioTest, WriteReadSymmetric) {
  const auto [lib, nranks] = GetParam();
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  o.pool_fraction = 0.1;  // baselines only need the filesystem
  PmemNode node(o);

  const int nvars = 3;
  const auto dec = wk::decompose(/*elems_per_var=*/32 * 32 * 32, nranks);

  pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    {
      auto w = miniio::open_writer(lib, node, "/data.out", comm);
      std::vector<double> buf;
      for (int v = 0; v < nvars; ++v) {
        wk::fill_box(buf, v, dec.global, mine);
        w->write("var" + std::to_string(v), buf.data(), mine, dec.global);
      }
      w->close();
    }
    {
      auto r = miniio::open_reader(lib, node, "/data.out", comm);
      EXPECT_EQ(r->dims("var0"), dec.global);
      std::vector<double> buf(mine.elements());
      for (int v = 0; v < nvars; ++v) {
        std::fill(buf.begin(), buf.end(), -1.0);
        r->read("var" + std::to_string(v), buf.data(), mine);
        EXPECT_EQ(wk::verify_box(buf, v, dec.global, mine), 0u)
            << miniio::to_string(lib) << " var" << v;
      }
      r->close();
    }
  });
}

TEST_P(MiniioTest, NonSymmetricRead) {
  const auto [lib, nranks] = GetParam();
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  o.pool_fraction = 0.1;
  PmemNode node(o);
  const auto dec = wk::decompose(24 * 24 * 24, nranks);

  pmemcpy::par::Runtime::run(nranks, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    {
      auto w = miniio::open_writer(lib, node, "/ns.out", comm);
      std::vector<double> buf;
      wk::fill_box(buf, 0, dec.global, mine);
      w->write("v", buf.data(), mine, dec.global);
      w->close();
    }
    {
      auto r = miniio::open_reader(lib, node, "/ns.out", comm);
      // Every rank reads a centred slab spanning multiple writers' boxes.
      Box want;
      want.offset = {dec.global[0] / 4, dec.global[1] / 4, dec.global[2] / 4};
      want.count = {dec.global[0] / 2, dec.global[1] / 2, dec.global[2] / 2};
      std::vector<double> buf(want.elements(), -1.0);
      r->read("v", buf.data(), want);
      EXPECT_EQ(wk::verify_box(buf, 0, dec.global, want), 0u)
          << miniio::to_string(lib);
      r->close();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllLibraries, MiniioTest,
    ::testing::Combine(::testing::Values(Library::kAdios, Library::kNetcdf4,
                                         Library::kPnetcdf),
                       ::testing::Values(1, 4, 6)),
    [](const auto& info) {
      return miniio::to_string(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param)) + "ranks";
    });

TEST(MiniioCrossRankCounts, WriteWith6ReadWith3) {
  // Readers need not match the writer's process count (e.g. an analysis
  // job); exercises the stripe re-partitioning of the contiguous engine and
  // the index intersection of ADIOS.
  PmemNode::Options o;
  o.capacity = 96ull << 20;
  o.pool_fraction = 0.1;
  for (const auto lib :
       {Library::kAdios, Library::kNetcdf4, Library::kPnetcdf}) {
    PmemNode node(o);
    const auto wdec = wk::decompose(24 * 24 * 24, 6);
    pmemcpy::par::Runtime::run(6, [&](pmemcpy::par::Comm& comm) {
      const Box& mine = wdec.rank_boxes[static_cast<std::size_t>(comm.rank())];
      auto w = miniio::open_writer(lib, node, "/x.out", comm);
      std::vector<double> buf;
      wk::fill_box(buf, 0, wdec.global, mine);
      w->write("v", buf.data(), mine, wdec.global);
      w->close();
    });
    pmemcpy::par::Runtime::run(3, [&](pmemcpy::par::Comm& comm) {
      auto r = miniio::open_reader(lib, node, "/x.out", comm);
      // Use the *writer's* global dims but a 3-way slab split.
      const auto dims = r->dims("v");
      ASSERT_EQ(dims, wdec.global);
      Box want;
      const std::size_t slab = dims[0] / 3;
      want.offset = {slab * static_cast<std::size_t>(comm.rank()), 0, 0};
      want.count = {comm.rank() == 2 ? dims[0] - 2 * slab : slab, dims[1],
                    dims[2]};
      std::vector<double> buf(want.elements(), -1.0);
      r->read("v", buf.data(), want);
      EXPECT_EQ(wk::verify_box(buf, 0, dims, want), 0u)
          << miniio::to_string(lib);
      r->close();
    });
  }
}

TEST(MiniioNetcdfFill, FillModeWritesFillValues) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  o.pool_fraction = 0.1;
  PmemNode node(o);
  const auto dec = wk::decompose(16 * 16 * 16, 2);
  miniio::Options opts;
  opts.nofill = false;

  pmemcpy::par::Runtime::run(2, [&](pmemcpy::par::Comm& comm) {
    const Box& mine = dec.rank_boxes[static_cast<std::size_t>(comm.rank())];
    auto w = miniio::open_writer(Library::kNetcdf4, node, "/fill.nc", comm,
                                 opts);
    // Only rank 0 writes its box; the rest of the variable stays filled.
    std::vector<double> buf;
    wk::fill_box(buf, 0, dec.global, mine);
    if (comm.rank() == 0) {
      w->write("v", buf.data(), mine, dec.global);
    } else {
      // Collective: all ranks participate with an empty box.
      Box empty;
      empty.offset = {0, 0, 0};
      empty.count = {0, 0, 0};
      w->write("v", buf.data(), empty, dec.global);
    }
    w->close();

    auto r = miniio::open_reader(Library::kNetcdf4, node, "/fill.nc", comm);
    const Box& other = dec.rank_boxes[1];
    std::vector<double> out(other.elements(), 0.0);
    r->read("v", out.data(), other);
    for (double d : out) {
      ASSERT_DOUBLE_EQ(d, 9.96920996838687e+36);  // NC_FILL_DOUBLE
    }
    r->close();
  });
}

TEST(MiniioErrors, UnknownVariableThrows) {
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  o.pool_fraction = 0.1;
  PmemNode node(o);
  pmemcpy::par::Runtime::run(1, [&](pmemcpy::par::Comm& comm) {
    auto w = miniio::open_writer(Library::kAdios, node, "/e.out", comm);
    std::vector<double> buf(8, 1.0);
    Box b{{0}, {8}};
    w->write("v", buf.data(), b, Dimensions{8});
    w->close();
    auto r = miniio::open_reader(Library::kAdios, node, "/e.out", comm);
    EXPECT_THROW(r->dims("zzz"), pmemcpy::fs::FsError);
    r->close();
  });
}

}  // namespace
