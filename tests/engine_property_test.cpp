// Property-based fuzzer for the storage-engine contract (engine/engine.hpp).
//
// A seeded deterministic RNG drives long random sequences of puts, gets,
// erases, group commits, keep-existing races and prefix scans against every
// engine (flat table, hierarchical tree, 4-way sharded composition), with an
// in-memory reference model replayed alongside.  After every mutating op the
// engine must agree with the model byte-for-byte — info().size, the
// CRC-stamped meta word, read() contents and the zero-copy stored_span()
// view all checked on every verification pass.
//
// A second suite interleaves crash points: the device is scheduled to lose
// power a few persist ops ahead, ops run until the crash lands, the node is
// revived and remounted, and a fresh engine over the recovered image must
// show every settled key intact while the in-flight op is allowed exactly
// its old or its new value — never a torn one.  The model then adopts
// whatever the recovered image shows and fuzzing continues.
//
// The tier-1 run uses a fixed seed corpus at 1000+ iterations per engine;
// PMEMCPY_FUZZ_ITERS=<n> scales the sequences up for soak runs without a
// rebuild.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/core/node.hpp>
#include <pmemcpy/crc32c.hpp>
#include <pmemcpy/engine/engine.hpp>
#include <pmemcpy/pmem/device.hpp>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

using pmemcpy::PmemNode;
using pmemcpy::engine::Engine;
using pmemcpy::pmem::CrashError;
using pmemcpy::pmem::FaultPlan;

enum class Kind { kTable, kTree, kSharded };

/// One fuzzed configuration: engine shape × allocator hot-path knobs.  The
/// magazine/stripe pair rides through PoolEngineOptions (-1 = the engine
/// default of magazines-of-8 over 8 stripes), so the same op sequences run
/// against the lock-free magazine path, the classic fully-locked path, and
/// a wide sharded+magazine composition — the equivalence and crash
/// invariants must hold identically in every cell.
struct Config {
  Kind kind;
  int magazine_size;   ///< -1 = engine default, 0 = classic locked path
  int alloc_stripes;   ///< -1 = engine default
  const char* name;
};

std::unique_ptr<Engine> open_engine(PmemNode& node, const Config& cfg) {
  if (cfg.kind == Kind::kTree) {
    return pmemcpy::engine::open_tree_engine(node, "/fuzz", false, nullptr);
  }
  pmemcpy::engine::PoolEngineOptions o;
  o.name = "fuzz";
  o.nbuckets = 64;  // small bucket space: chained-slot paths get exercised
  o.shards = cfg.kind == Kind::kSharded ? 4 : 1;
  o.magazine_size = cfg.magazine_size;
  o.alloc_stripes = cfg.alloc_stripes;
  return pmemcpy::engine::open_pool_engine(node, o, nullptr);
}

constexpr Config kConfigs[] = {
    {Kind::kTable, -1, -1, "Table"},
    {Kind::kTree, -1, -1, "Tree"},
    {Kind::kSharded, -1, -1, "Sharded"},
    // Allocator hot-path matrix: classic (no magazines, one metadata lane)
    // vs an oversized refill batch spread across fewer stripes, both under
    // the sharded composition where put/erase churn is heaviest.
    {Kind::kTable, 0, 1, "TableClassic"},
    {Kind::kSharded, 0, 1, "ShardedClassic"},
    {Kind::kSharded, 16, 4, "ShardedMag16"},
};

/// Deterministic splitmix64 stream; the only randomness source here, so a
/// (seed, iteration-count) pair replays an exact op sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t s_;
};

std::size_t fuzz_iters(std::size_t fallback) {
  if (const char* env = std::getenv("PMEMCPY_FUZZ_ITERS")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

struct ModelValue {
  std::string bytes;
  std::uint64_t meta = 0;  ///< full stamped word (crc in the high half)
};

using Model = std::map<std::string, ModelValue>;

/// Mixed-size deterministic payload: mostly small values, a heavy tail up
/// to a few KiB so tree entries span several extents and table blobs cross
/// allocation size classes.
std::string random_value(Rng& rng) {
  const std::uint64_t pick = rng.below(100);
  std::size_t len = 0;
  if (pick < 10) {
    len = rng.below(2);  // empty / single byte
  } else if (pick < 80) {
    len = 2 + rng.below(120);
  } else {
    len = 256 + rng.below(4096);
  }
  std::string v(len, '\0');
  for (std::size_t i = 0; i < len; ++i) {
    v[i] = static_cast<char>('a' + (rng.next() % 26));
  }
  return v;
}

/// Key universe: a bounded pool so puts/erases/overwrites collide, split
/// across two prefixes so prefix iteration has something to distinguish.
std::string random_key(Rng& rng) {
  if (rng.below(4) == 0) {
    return "p/" + std::to_string(rng.below(12));
  }
  return "k" + std::to_string(rng.below(24));
}

std::uint64_t stamped_meta(std::uint64_t meta_low, const std::string& value) {
  const std::uint32_t crc = pmemcpy::crc32c(value.data(), value.size());
  return (meta_low & 0xffffffffull) |
         (static_cast<std::uint64_t>(crc) << 32);
}

void engine_put(Engine& eng, const std::string& key, const std::string& value,
                std::uint64_t meta_low, bool keep_existing) {
  auto put = eng.put(key, value.size(), meta_low, keep_existing);
  put->sink().write(value.data(), value.size());
  put->commit(pmemcpy::crc32c(value.data(), value.size()));
}

/// Full engine/model agreement: every model key reads back exactly (read()
/// and stored_span() both), every nonexistent probe misses, and prefix
/// enumeration matches key-for-key.
void verify_model(Engine& eng, const Model& model, const char* when) {
  SCOPED_TRACE(when);
  for (const auto& [key, mv] : model) {
    auto e = eng.find(key);
    ASSERT_NE(e, nullptr) << "model key missing: " << key;
    ASSERT_EQ(e->info().size, mv.bytes.size()) << key;
    EXPECT_EQ(e->info().meta, mv.meta) << key;
    std::string out(mv.bytes.size(), '\0');
    e->read(0, out.data(), out.size());
    EXPECT_EQ(out, mv.bytes) << key;
    const auto span = e->stored_span();
    ASSERT_EQ(span.size(), mv.bytes.size()) << key;
    EXPECT_EQ(std::memcmp(span.data(), mv.bytes.data(), span.size()), 0)
        << key;
  }
  for (const char* prefix : {"", "p/", "k"}) {
    std::set<std::string> got;
    eng.for_each_prefix(prefix,
                        [&](const std::string& key,
                            const pmemcpy::engine::EntryInfo&) {
                          got.insert(key);
                        });
    std::set<std::string> want;
    for (const auto& [key, mv] : model) {
      if (key.rfind(prefix, 0) == 0) want.insert(key);
    }
    // A sharded engine may surface a key from more than one shard after
    // routing changes; find() resolves the routed copy, so enumeration must
    // still cover exactly the model's key set.
    EXPECT_EQ(got, want) << "prefix '" << prefix << "'";
  }
}

// ---------------------------------------------------------------------------
// Suite 1: op-sequence equivalence with the persistency checker attached
// ---------------------------------------------------------------------------

class EngineFuzz : public ::testing::TestWithParam<Config> {};

void fuzz_sequence(Engine& eng, Model& model, Rng& rng, std::size_t iters) {
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t op = rng.below(100);
    if (op < 38) {
      // Plain put (overwrite allowed).
      const std::string key = random_key(rng);
      const std::string value = random_value(rng);
      const std::uint64_t meta = rng.below(1u << 30);
      engine_put(eng, key, value, meta, false);
      model[key] = {value, stamped_meta(meta, value)};
    } else if (op < 48) {
      // keep_existing: first writer wins — a no-op when the key is live.
      const std::string key = random_key(rng);
      const std::string value = random_value(rng);
      const std::uint64_t meta = rng.below(1u << 30);
      engine_put(eng, key, value, meta, true);
      if (model.find(key) == model.end()) {
        model[key] = {value, stamped_meta(meta, value)};
      }
    } else if (op < 62) {
      // Point lookup: hit must match the model exactly, miss must be null.
      const std::string key = random_key(rng);
      auto e = eng.find(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(e, nullptr) << key;
      } else {
        ASSERT_NE(e, nullptr) << key;
        ASSERT_EQ(e->info().size, it->second.bytes.size());
        EXPECT_EQ(e->info().meta, it->second.meta);
        const auto span = e->stored_span();
        EXPECT_EQ(std::memcmp(span.data(), it->second.bytes.data(),
                              span.size()),
                  0)
            << key;
      }
    } else if (op < 74) {
      const std::string key = random_key(rng);
      EXPECT_EQ(eng.erase(key), model.erase(key) > 0) << key;
    } else if (op < 88) {
      // Group commit of 2-5 distinct keys; staged entries must stay
      // invisible until Batch::commit publishes them all.
      const std::size_t n = 2 + rng.below(4);
      std::map<std::string, ModelValue> staged;
      auto batch = eng.begin_batch();
      while (staged.size() < n) {
        const std::string key = random_key(rng);
        if (staged.count(key) != 0) continue;
        const std::string value = random_value(rng);
        const std::uint64_t meta = rng.below(1u << 30);
        auto put = batch->put(key, value.size(), meta, false);
        put->sink().write(value.data(), value.size());
        put->commit(pmemcpy::crc32c(value.data(), value.size()));
        staged[key] = {value, stamped_meta(meta, value)};
      }
      EXPECT_EQ(batch->staged(), n);
      for (const auto& [key, mv] : staged) {
        auto e = eng.find(key);
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_EQ(e, nullptr) << "staged key visible before commit: " << key;
        } else {
          ASSERT_NE(e, nullptr);
          EXPECT_EQ(e->info().meta, it->second.meta)
              << "staged overwrite visible before commit: " << key;
        }
      }
      batch->commit();
      for (auto& [key, mv] : staged) model[key] = std::move(mv);
    } else if (op < 94) {
      // Abandoned work must leave no trace: an uncommitted put handle and a
      // batch dropped without commit.
      const std::string key = "dropped";
      if (rng.below(2) == 0) {
        auto put = eng.put(key, 8, 7, false);
        put->sink().write("discard!", 8);
        put.reset();  // no commit
      } else {
        auto batch = eng.begin_batch();
        auto put = batch->put(key, 8, 7, false);
        put->sink().write("discard!", 8);
        put->commit(0);
        batch.reset();  // no commit
      }
      EXPECT_EQ(eng.find(key), nullptr);
    } else {
      verify_model(eng, model, "interim sweep");
    }
  }
}

TEST_P(EngineFuzz, ModelEquivalence) {
  const std::size_t iters = fuzz_iters(600);
  // Two fixed seeds per engine: 1200+ iterations per engine by default.
  for (const std::uint64_t seed : {0x5eed0001ull, 0xfee1f00dull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    PmemNode::Options o;
    o.capacity = 64ull << 20;
    PmemNode node(o);
    node.device().enable_checker();
    {
      auto eng = open_engine(node, GetParam());
      Model model;
      Rng rng(seed);
      fuzz_sequence(*eng, model, rng, iters);
      verify_model(*eng, model, "final sweep");

      // Durability of the final image: a second engine over the same node
      // (fresh DRAM state, same persistent state) must agree too.
      auto eng2 = open_engine(node, GetParam());
      verify_model(*eng2, model, "reopened engine");
    }
    // Zero persistency violations across the whole sequence.
    const auto rep = node.device().checker()->take_report();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineFuzz, ::testing::ValuesIn(kConfigs),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Suite 2: the same fuzz with crash+recover points interleaved
// ---------------------------------------------------------------------------

/// One key's allowed post-crash states for the op that was in flight.
struct Pending {
  std::optional<ModelValue> before;  ///< nullopt = key was absent
  std::optional<ModelValue> after;   ///< nullopt = op was an erase
};

class EngineCrashFuzz : public ::testing::TestWithParam<Config> {};

TEST_P(EngineCrashFuzz, RandomOpsSurviveRandomCrashes) {
  const std::size_t iters = fuzz_iters(500);
  PmemNode::Options o;
  o.capacity = 64ull << 20;
  o.pool_fraction = 0.5;
  o.crash_shadow = true;
  PmemNode node(o);
  auto& dev = node.device();
  auto eng = open_engine(node, GetParam());
  Model model;
  Rng rng(0xc4a54c4a54ull);
  std::size_t crashes = 0;

  for (std::size_t i = 0; i < iters; ++i) {
    // Arm a crash a few persist ops ahead, roughly every dozen iterations.
    const bool armed = rng.below(12) == 0;
    if (armed) {
      FaultPlan fp;
      fp.crash_at_persist = dev.persist_ops() + 1 + rng.below(30);
      fp.torn_writes = rng.below(2) == 0;
      dev.set_fault_plan(fp);
    }

    // Mutating op with its allowed before/after states recorded, so a crash
    // inside it can settle either way.
    std::map<std::string, Pending> pending;
    const std::uint64_t op = rng.below(100);
    try {
      if (op < 55) {
        const std::string key = random_key(rng);
        const std::string value = random_value(rng);
        const std::uint64_t meta = rng.below(1u << 30);
        const auto it = model.find(key);
        pending[key] = {it == model.end()
                            ? std::nullopt
                            : std::optional<ModelValue>(it->second),
                        ModelValue{value, stamped_meta(meta, value)}};
        engine_put(*eng, key, value, meta, false);
        model[key] = *pending[key].after;
      } else if (op < 75) {
        const std::string key = random_key(rng);
        const auto it = model.find(key);
        const bool had = it != model.end();
        pending[key] = {had ? std::optional<ModelValue>(it->second)
                            : std::nullopt,
                        std::nullopt};
        const bool erased = eng->erase(key);  // may throw CrashError
        EXPECT_EQ(erased, had);
        model.erase(key);
      } else {
        const std::size_t n = 2 + rng.below(3);
        auto batch = eng->begin_batch();
        std::map<std::string, ModelValue> staged;
        while (staged.size() < n) {
          const std::string key = random_key(rng);
          if (staged.count(key) != 0) continue;
          const std::string value = random_value(rng);
          const std::uint64_t meta = rng.below(1u << 30);
          auto put = batch->put(key, value.size(), meta, false);
          put->sink().write(value.data(), value.size());
          put->commit(pmemcpy::crc32c(value.data(), value.size()));
          staged[key] = {value, stamped_meta(meta, value)};
          const auto it = model.find(key);
          pending[key] = {it == model.end()
                              ? std::nullopt
                              : std::optional<ModelValue>(it->second),
                          ModelValue{staged[key]}};
        }
        batch->commit();
        for (auto& [key, mv] : staged) model[key] = std::move(mv);
      }
      if (armed) dev.set_fault_plan(FaultPlan{});  // op outran the crash
    } catch (const CrashError&) {
      ++crashes;
      ASSERT_TRUE(dev.frozen());
      // Dead process: drop the engine with its in-flight handles, power the
      // device back on, remount, and recover with a fresh engine.
      eng.reset();
      dev.revive();
      dev.set_fault_plan(FaultPlan{});
      node.remount();
      eng = open_engine(node, GetParam());

      // The in-flight op's keys settle to exactly their old or new state —
      // anything else (torn bytes, wrong meta) is a persistency bug.  The
      // model adopts what the image shows.
      for (const auto& [key, p] : pending) {
        auto e = eng->find(key);
        const auto matches = [&](const std::optional<ModelValue>& want) {
          if (!want.has_value()) return e == nullptr;
          if (e == nullptr || e->info().size != want->bytes.size() ||
              e->info().meta != want->meta) {
            return false;
          }
          const auto span = e->stored_span();
          return std::memcmp(span.data(), want->bytes.data(), span.size()) ==
                 0;
        };
        const bool old_state = matches(p.before);
        const bool new_state = matches(p.after);
        const auto describe = [&](const std::optional<ModelValue>& mv) {
          if (!mv.has_value()) return std::string("<absent>");
          return "size=" + std::to_string(mv->bytes.size()) +
                 " meta=" + std::to_string(mv->meta);
        };
        std::string got = "<absent>";
        if (e != nullptr) {
          got = "size=" + std::to_string(e->info().size) +
                " meta=" + std::to_string(e->info().meta);
        }
        ASSERT_TRUE(old_state || new_state)
            << "key '" << key << "' torn after crash " << crashes
            << "\n  before: " << describe(p.before)
            << "\n  after:  " << describe(p.after) << "\n  got:    " << got;
        if (new_state && p.after.has_value()) {
          model[key] = *p.after;
        } else if (new_state) {
          model.erase(key);
        } else if (p.before.has_value()) {
          model[key] = *p.before;
        } else {
          model.erase(key);
        }
      }
      verify_model(*eng, model, "post-crash sweep");
    }
  }
  dev.set_fault_plan(FaultPlan{});
  verify_model(*eng, model, "final sweep");
  // The fixed seed is chosen to actually exercise the crash path.
  EXPECT_GE(crashes, 3u) << "seed produced too few crashes to test anything";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineCrashFuzz,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
