// Reference-model stress tests: thousands of randomized operations against
// an in-DRAM oracle, for the hashtable, the allocator, and the filesystem.
#include <pmemcpy/check/persist_checker.hpp>
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/obj/hashtable.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <thread>

namespace {

using pmemcpy::fs::FileSystem;
using pmemcpy::fs::OpenMode;
using pmemcpy::obj::HashTable;
using pmemcpy::obj::Pool;
using pmemcpy::pmem::Device;

/// Runs every stress workload under the persistency-order checker and
/// asserts a violation-free report when the workload scope ends.
struct CheckerGuard {
  explicit CheckerGuard(Device& dev) : dev_(&dev) { dev.enable_checker(); }
  ~CheckerGuard() {
    const auto rep = dev_->checker()->take_report();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
  }
  CheckerGuard(const CheckerGuard&) = delete;
  CheckerGuard& operator=(const CheckerGuard&) = delete;
  Device* dev_;
};

class StressSeed : public ::testing::TestWithParam<unsigned> {};

TEST_P(StressSeed, HashTableMatchesMapOracle) {
  Device dev(64ull << 20);
  CheckerGuard chk(dev);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  HashTable table = HashTable::create(pool, 128);  // force chaining
  std::map<std::string, std::string> oracle;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> key_d(0, 199);
  std::uniform_int_distribution<int> op_d(0, 9);
  std::uniform_int_distribution<std::size_t> len_d(0, 300);

  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(key_d(rng));
    const int op = op_d(rng);
    if (op < 5) {  // put / replace
      std::string value(len_d(rng), char('a' + step % 26));
      table.put(key, value.data(), value.size(),
                static_cast<std::uint64_t>(step));
      oracle[key] = std::move(value);
    } else if (op < 7) {  // erase
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0) << key;
    } else {  // find
      auto ref = table.find(key);
      auto it = oracle.find(key);
      ASSERT_EQ(ref.has_value(), it != oracle.end()) << key;
      if (ref) {
        std::string out(ref->val_size, '\0');
        table.read_value(*ref, out.data());
        EXPECT_EQ(out, it->second) << key;
      }
    }
    if (step % 500 == 499) {
      ASSERT_EQ(table.count(), oracle.size());
      if (step % 1000 == 999) table.rehash(table.nbuckets() * 2);
    }
  }
  // Final full sweep.
  std::size_t visited = 0;
  table.for_each([&](std::string_view key, const pmemcpy::obj::ValueRef& ref) {
    const auto it = oracle.find(std::string(key));
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(ref.val_size, it->second.size());
    ++visited;
  });
  EXPECT_EQ(visited, oracle.size());
}

TEST_P(StressSeed, AllocatorContentsSurviveChurn) {
  Device dev(64ull << 20);
  CheckerGuard chk(dev);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  std::mt19937 rng(GetParam() + 77);
  std::uniform_int_distribution<std::size_t> size_d(1, 100000);
  struct Live {
    std::uint64_t off;
    std::uint32_t seed;
    std::size_t size;
  };
  std::vector<Live> live;

  auto fill = [&](const Live& a) {
    std::vector<std::byte> buf(a.size);
    std::mt19937 g(a.seed);
    for (auto& b : buf) b = static_cast<std::byte>(g());
    pool.write(a.off, buf.data(), a.size);
  };
  auto check = [&](const Live& a) {
    std::vector<std::byte> buf(a.size);
    pool.read(a.off, buf.data(), a.size);
    std::mt19937 g(a.seed);
    for (std::size_t i = 0; i < a.size; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>(g())) << "off=" << a.off;
    }
  };

  for (int step = 0; step < 600; ++step) {
    if (live.size() > 40 && rng() % 2 == 0) {
      const std::size_t idx = rng() % live.size();
      check(live[idx]);  // contents intact right up to free
      pool.free(live[idx].off);
      live[idx] = live.back();
      live.pop_back();
    } else {
      Live a;
      a.size = size_d(rng);
      a.off = pool.alloc(a.size);
      a.seed = static_cast<std::uint32_t>(rng());
      fill(a);
      live.push_back(a);
    }
  }
  for (const auto& a : live) check(a);
}

TEST_P(StressSeed, FileSystemMatchesOracle) {
  Device dev(64ull << 20);
  CheckerGuard chk(dev);
  FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
  std::map<std::string, std::string> oracle;  // path -> contents
  std::mt19937 rng(GetParam() + 555);
  std::uniform_int_distribution<int> name_d(0, 19);
  std::uniform_int_distribution<int> op_d(0, 9);
  std::uniform_int_distribution<std::size_t> len_d(0, 40000);

  for (int step = 0; step < 400; ++step) {
    const std::string path = "/f" + std::to_string(name_d(rng));
    const int op = op_d(rng);
    if (op < 4) {  // write fresh contents
      std::string data(len_d(rng), char('A' + step % 26));
      auto f = fs.open(path, OpenMode::kTruncate);
      if (!data.empty()) fs.pwrite(f, data.data(), data.size(), 0);
      oracle[path] = std::move(data);
    } else if (op < 6) {  // append
      auto it = oracle.find(path);
      if (it == oracle.end()) continue;
      std::string extra(len_d(rng) / 4, char('0' + step % 10));
      auto f = fs.open(path, OpenMode::kWrite);
      if (!extra.empty()) {
        fs.pwrite(f, extra.data(), extra.size(), it->second.size());
      }
      it->second += extra;
    } else if (op < 7) {  // remove
      if (oracle.erase(path) > 0) {
        fs.remove(path);
      } else {
        EXPECT_THROW(fs.remove(path), pmemcpy::fs::FsError);
      }
    } else if (op < 8) {  // rename onto another name
      const std::string to = "/f" + std::to_string(name_d(rng));
      if (!oracle.contains(path) || to == path) continue;
      fs.rename(path, to);
      oracle[to] = std::move(oracle[path]);
      oracle.erase(path);
    } else {  // verify
      auto it = oracle.find(path);
      EXPECT_EQ(fs.exists(path), it != oracle.end()) << path;
      if (it != oracle.end()) {
        auto f = fs.open(path, OpenMode::kRead);
        std::string out(it->second.size(), '\0');
        fs.pread(f, out.data(), out.size(), 0);
        ASSERT_EQ(out, it->second) << path;
      }
    }
  }
  // Final verification of every file.
  for (const auto& [path, contents] : oracle) {
    auto f = fs.open(path, OpenMode::kRead);
    ASSERT_EQ(fs.size(f), contents.size()) << path;
    std::string out(contents.size(), '\0');
    fs.pread(f, out.data(), out.size(), 0);
    ASSERT_EQ(out, contents) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed, ::testing::Range(0u, 6u));

// Regression: fsync dirty-span bookkeeping is updated from data_write, which
// pwrite runs *outside* the fs lock so data copies can proceed in parallel.
// An unlocked dirty_ map update corrupted the heap under concurrent pwrite
// (first seen as a tcache abort in the multi-rank fig6 bench).
TEST(StressConcurrentFs, ParallelPwriteFsyncKeepsDirtyTrackingSane) {
  Device dev(64ull << 20);
  CheckerGuard chk(dev);
  FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
  constexpr int kThreads = 8;
  constexpr int kWrites = 200;
  constexpr std::size_t kChunk = 1024;
  std::vector<pmemcpy::fs::File> files;
  for (int t = 0; t < kThreads; ++t) {
    files.push_back(fs.open("/t" + std::to_string(t), OpenMode::kTruncate));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string chunk(kChunk, char('a' + t));
      for (int i = 0; i < kWrites; ++i) {
        fs.pwrite(files[static_cast<std::size_t>(t)], chunk.data(), kChunk,
                  static_cast<std::uint64_t>(i) * kChunk);
        if (i % 8 == 7) fs.fsync(files[static_cast<std::size_t>(t)]);
      }
      fs.fsync(files[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& th : threads) th.join();
  std::string out(kChunk, '\0');
  for (int t = 0; t < kThreads; ++t) {
    const std::string want(kChunk, char('a' + t));
    for (int i = 0; i < kWrites; ++i) {
      fs.pread(files[static_cast<std::size_t>(t)], out.data(), kChunk,
               static_cast<std::uint64_t>(i) * kChunk);
      ASSERT_EQ(out, want) << "file " << t << " chunk " << i;
    }
  }
}

}  // namespace
