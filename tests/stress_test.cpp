// Reference-model stress tests: thousands of randomized operations against
// an in-DRAM oracle, for the hashtable, the allocator, and the filesystem.
#include <pmemcpy/fs/filesystem.hpp>
#include <pmemcpy/obj/hashtable.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>

namespace {

using pmemcpy::fs::FileSystem;
using pmemcpy::fs::OpenMode;
using pmemcpy::obj::HashTable;
using pmemcpy::obj::Pool;
using pmemcpy::pmem::Device;

class StressSeed : public ::testing::TestWithParam<unsigned> {};

TEST_P(StressSeed, HashTableMatchesMapOracle) {
  Device dev(64ull << 20);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  HashTable table = HashTable::create(pool, 128);  // force chaining
  std::map<std::string, std::string> oracle;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> key_d(0, 199);
  std::uniform_int_distribution<int> op_d(0, 9);
  std::uniform_int_distribution<std::size_t> len_d(0, 300);

  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(key_d(rng));
    const int op = op_d(rng);
    if (op < 5) {  // put / replace
      std::string value(len_d(rng), char('a' + step % 26));
      table.put(key, value.data(), value.size(),
                static_cast<std::uint64_t>(step));
      oracle[key] = std::move(value);
    } else if (op < 7) {  // erase
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0) << key;
    } else {  // find
      auto ref = table.find(key);
      auto it = oracle.find(key);
      ASSERT_EQ(ref.has_value(), it != oracle.end()) << key;
      if (ref) {
        std::string out(ref->val_size, '\0');
        table.read_value(*ref, out.data());
        EXPECT_EQ(out, it->second) << key;
      }
    }
    if (step % 500 == 499) {
      ASSERT_EQ(table.count(), oracle.size());
      if (step % 1000 == 999) table.rehash(table.nbuckets() * 2);
    }
  }
  // Final full sweep.
  std::size_t visited = 0;
  table.for_each([&](std::string_view key, const pmemcpy::obj::ValueRef& ref) {
    const auto it = oracle.find(std::string(key));
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(ref.val_size, it->second.size());
    ++visited;
  });
  EXPECT_EQ(visited, oracle.size());
}

TEST_P(StressSeed, AllocatorContentsSurviveChurn) {
  Device dev(64ull << 20);
  Pool pool = Pool::create(dev, 0, 64ull << 20);
  std::mt19937 rng(GetParam() + 77);
  std::uniform_int_distribution<std::size_t> size_d(1, 100000);
  struct Live {
    std::uint64_t off;
    std::uint32_t seed;
    std::size_t size;
  };
  std::vector<Live> live;

  auto fill = [&](const Live& a) {
    std::vector<std::byte> buf(a.size);
    std::mt19937 g(a.seed);
    for (auto& b : buf) b = static_cast<std::byte>(g());
    pool.write(a.off, buf.data(), a.size);
  };
  auto check = [&](const Live& a) {
    std::vector<std::byte> buf(a.size);
    pool.read(a.off, buf.data(), a.size);
    std::mt19937 g(a.seed);
    for (std::size_t i = 0; i < a.size; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>(g())) << "off=" << a.off;
    }
  };

  for (int step = 0; step < 600; ++step) {
    if (live.size() > 40 && rng() % 2 == 0) {
      const std::size_t idx = rng() % live.size();
      check(live[idx]);  // contents intact right up to free
      pool.free(live[idx].off);
      live[idx] = live.back();
      live.pop_back();
    } else {
      Live a;
      a.size = size_d(rng);
      a.off = pool.alloc(a.size);
      a.seed = static_cast<std::uint32_t>(rng());
      fill(a);
      live.push_back(a);
    }
  }
  for (const auto& a : live) check(a);
}

TEST_P(StressSeed, FileSystemMatchesOracle) {
  Device dev(64ull << 20);
  FileSystem fs = FileSystem::format(dev, 0, 64ull << 20);
  std::map<std::string, std::string> oracle;  // path -> contents
  std::mt19937 rng(GetParam() + 555);
  std::uniform_int_distribution<int> name_d(0, 19);
  std::uniform_int_distribution<int> op_d(0, 9);
  std::uniform_int_distribution<std::size_t> len_d(0, 40000);

  for (int step = 0; step < 400; ++step) {
    const std::string path = "/f" + std::to_string(name_d(rng));
    const int op = op_d(rng);
    if (op < 4) {  // write fresh contents
      std::string data(len_d(rng), char('A' + step % 26));
      auto f = fs.open(path, OpenMode::kTruncate);
      if (!data.empty()) fs.pwrite(f, data.data(), data.size(), 0);
      oracle[path] = std::move(data);
    } else if (op < 6) {  // append
      auto it = oracle.find(path);
      if (it == oracle.end()) continue;
      std::string extra(len_d(rng) / 4, char('0' + step % 10));
      auto f = fs.open(path, OpenMode::kWrite);
      if (!extra.empty()) {
        fs.pwrite(f, extra.data(), extra.size(), it->second.size());
      }
      it->second += extra;
    } else if (op < 7) {  // remove
      if (oracle.erase(path) > 0) {
        fs.remove(path);
      } else {
        EXPECT_THROW(fs.remove(path), pmemcpy::fs::FsError);
      }
    } else if (op < 8) {  // rename onto another name
      const std::string to = "/f" + std::to_string(name_d(rng));
      if (!oracle.contains(path) || to == path) continue;
      fs.rename(path, to);
      oracle[to] = std::move(oracle[path]);
      oracle.erase(path);
    } else {  // verify
      auto it = oracle.find(path);
      EXPECT_EQ(fs.exists(path), it != oracle.end()) << path;
      if (it != oracle.end()) {
        auto f = fs.open(path, OpenMode::kRead);
        std::string out(it->second.size(), '\0');
        fs.pread(f, out.data(), out.size(), 0);
        ASSERT_EQ(out, it->second) << path;
      }
    }
  }
  // Final verification of every file.
  for (const auto& [path, contents] : oracle) {
    auto f = fs.open(path, OpenMode::kRead);
    ASSERT_EQ(fs.size(f), contents.size()) << path;
    std::string out(contents.size(), '\0');
    fs.pread(f, out.data(), out.size(), 0);
    ASSERT_EQ(out, contents) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed, ::testing::Range(0u, 6u));

}  // namespace
