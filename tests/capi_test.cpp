// Tests for the C API (pmemcpy.h): Figure-2 surface through C linkage.
#include <pmemcpy/pmemcpy.h>

#include <gtest/gtest.h>

#include <vector>

namespace {

struct CApiTest : ::testing::Test {
  CApiTest() {
    node = pmemcpy_node_create(64ull << 20);
    pmemcpy_node_set_default(node);
    pmem = pmemcpy_create();
  }
  ~CApiTest() override {
    pmemcpy_destroy(pmem);
    pmemcpy_node_destroy(node);
  }
  pmemcpy_node* node;
  pmemcpy_pmem* pmem;
};

TEST_F(CApiTest, MmapMunmap) {
  EXPECT_EQ(pmemcpy_mmap(pmem, "/c.pmem"), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_munmap(pmem), PMEMCPY_OK);
}

TEST_F(CApiTest, UseBeforeMmapIsStateError) {
  EXPECT_EQ(pmemcpy_store_f64(pmem, "x", 1.0), PMEMCPY_ERR_STATE);
  EXPECT_NE(pmemcpy_last_error(pmem)[0], '\0');
}

TEST_F(CApiTest, ScalarsRoundtrip) {
  ASSERT_EQ(pmemcpy_mmap(pmem, "/c.pmem"), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_store_f64(pmem, "pi", 3.25), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_store_i64(pmem, "n", -42), PMEMCPY_OK);
  double d = 0;
  int64_t n = 0;
  EXPECT_EQ(pmemcpy_load_f64(pmem, "pi", &d), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_load_i64(pmem, "n", &n), PMEMCPY_OK);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(n, -42);
}

TEST_F(CApiTest, MissingKeyAndTypeErrors) {
  ASSERT_EQ(pmemcpy_mmap(pmem, "/c.pmem"), PMEMCPY_OK);
  double d;
  EXPECT_EQ(pmemcpy_load_f64(pmem, "ghost", &d), PMEMCPY_ERR_KEY);
  ASSERT_EQ(pmemcpy_store_i64(pmem, "i", 1), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_load_f64(pmem, "i", &d), PMEMCPY_ERR_TYPE);
}

TEST_F(CApiTest, Fig3ArrayFlow) {
  // The paper's Figure 3, single process.
  ASSERT_EQ(pmemcpy_mmap(pmem, "/fig3.pmem"), PMEMCPY_OK);
  const size_t count = 100, off = 0, dimsf = 100;
  double data[100];
  for (int i = 0; i < 100; ++i) data[i] = i * 0.5;
  EXPECT_EQ(pmemcpy_alloc(pmem, "A", PMEMCPY_F64, 1, &dimsf), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_store(pmem, "A", PMEMCPY_F64, data, 1, &off, &count),
            PMEMCPY_OK);

  int ndims = 0;
  size_t dims[8] = {};
  EXPECT_EQ(pmemcpy_load_dims(pmem, "A", &ndims, dims), PMEMCPY_OK);
  EXPECT_EQ(ndims, 1);
  EXPECT_EQ(dims[0], 100u);

  double out[100] = {};
  EXPECT_EQ(pmemcpy_load(pmem, "A", PMEMCPY_F64, out, 1, &off, &count),
            PMEMCPY_OK);
  EXPECT_DOUBLE_EQ(out[99], 49.5);
}

TEST_F(CApiTest, IntDtypeArrays) {
  ASSERT_EQ(pmemcpy_mmap(pmem, "/ints.pmem"), PMEMCPY_OK);
  const size_t dims[2] = {4, 8};
  const size_t offs[2] = {0, 0};
  std::vector<int32_t> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<size_t>(i)] = i * 3;
  EXPECT_EQ(pmemcpy_alloc(pmem, "m", PMEMCPY_I32, 2, dims), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_store(pmem, "m", PMEMCPY_I32, v.data(), 2, offs, dims),
            PMEMCPY_OK);
  std::vector<int32_t> out(32, -1);
  EXPECT_EQ(pmemcpy_load(pmem, "m", PMEMCPY_I32, out.data(), 2, offs, dims),
            PMEMCPY_OK);
  EXPECT_EQ(out, v);
  // Wrong dtype on load is rejected.
  EXPECT_EQ(pmemcpy_load(pmem, "m", PMEMCPY_F32, out.data(), 2, offs, dims),
            PMEMCPY_ERR_TYPE);
}

TEST_F(CApiTest, BytesRoundtrip) {
  ASSERT_EQ(pmemcpy_mmap(pmem, "/bytes.pmem"), PMEMCPY_OK);
  const char msg[] = "opaque payload";
  ASSERT_EQ(pmemcpy_store_bytes(pmem, "blob", msg, sizeof(msg)), PMEMCPY_OK);
  size_t len = 0;
  ASSERT_EQ(pmemcpy_bytes_size(pmem, "blob", &len), PMEMCPY_OK);
  EXPECT_EQ(len, sizeof(msg));
  char out[sizeof(msg)] = {};
  ASSERT_EQ(pmemcpy_load_bytes(pmem, "blob", out, len), PMEMCPY_OK);
  EXPECT_STREQ(out, msg);
}

TEST_F(CApiTest, ExistsRemove) {
  ASSERT_EQ(pmemcpy_mmap(pmem, "/ns.pmem"), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_exists(pmem, "x"), 0);
  ASSERT_EQ(pmemcpy_store_f64(pmem, "x", 1.0), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_exists(pmem, "x"), 1);
  EXPECT_EQ(pmemcpy_remove(pmem, "x"), PMEMCPY_OK);
  EXPECT_EQ(pmemcpy_remove(pmem, "x"), PMEMCPY_ERR_KEY);
}

}  // namespace
