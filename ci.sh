#!/usr/bin/env bash
# Tier-1 verification: lint, then build + full test suite in five configs —
# plain Release, AddressSanitizer + UBSan (PMEMCPY_SANITIZE), the
# persistency-order checker build (PMEMCPY_PERSIST_CHECK, with violations
# fatal so any unconsumed finding fails the suite), the tracing build
# (PMEMCPY_TRACE, every test with the observability layer recording), and
# the fault config (the self-healing sweeps under all three instrumentation
# layers at once, DESIGN.md §10).
#
#   ./ci.sh            # all configs
#   ./ci.sh release    # release only
#   ./ci.sh sanitize   # sanitizers only
#   ./ci.sh checker    # persist-checker config only
#   ./ci.sh trace      # tracing-enabled config only
#   ./ci.sh fault      # fault-injection sweep config only
set -euo pipefail
cd "$(dirname "$0")"

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] lint ===="
  # pmemlint gates every config before the build; the JSON report is the
  # config's lint artifact.  Any non-baselined finding fails the run.
  mkdir -p "${dir}"
  LINT_JSON="${dir}/pmemlint_report.json" scripts/lint.sh
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j"$(nproc)"
  echo "==== [${name}] test ===="
  # CTEST_ENV: extra KEY=VAL pairs exported into the test processes.  The
  # full suite is the tier1 label (every test carries it; crash/fault/
  # property sub-labels select subsets, see tests/CMakeLists.txt).
  env ${CTEST_ENV:-} ctest --test-dir "${dir}" --output-on-failure \
    -j"$(nproc)" -L tier1
  echo "==== [${name}] flush audit ===="
  # Deterministic flush/fence counts; fails if any phase's CLWB or SFENCE
  # traffic regressed past the checked-in baseline (see bench/flush_audit.cpp).
  "${dir}/bench/flush_audit" --json "${dir}/BENCH_flush_audit.json" \
    --baseline bench/flush_audit_baseline.json
  echo "==== [${name}] copy audit ===="
  # Zero-copy gate (DESIGN.md §12): pMEMCPY puts must stage zero DRAM bytes
  # while the staging ablation and the miniio baselines must report their
  # staging passes; the baseline catches copy.staged growth anywhere.
  "${dir}/bench/copy_audit" --json "${dir}/BENCH_copy_audit.json" \
    --baseline bench/copy_audit_baseline.json
  echo "==== [${name}] alloc audit ===="
  # Allocator hot-path gate (DESIGN.md §14): magazines + metadata stripes
  # must keep pool lane acquisitions and queue charges per put at least 4x
  # below the classic serialized path at 24 ranks; the baseline catches any
  # regrowth of lock traffic or metadata persists.
  "${dir}/bench/alloc_audit" --json "${dir}/BENCH_alloc_audit.json" \
    --baseline bench/alloc_audit_baseline.json
}

run_checker_config() {
  CTEST_ENV="PMEMCPY_PERSIST_CHECK=1 PMEMCPY_PERSIST_CHECK_FATAL=1" \
    run_config checker -DCMAKE_BUILD_TYPE=Release -DPMEMCPY_PERSIST_CHECK=ON
}

run_trace_config() {
  # Spans are pure observers of the simulated clock, so this config also
  # proves that recording changes no timing, flush or fence number: the
  # flush-audit baseline gate inside run_config runs with tracing live.
  CTEST_ENV="PMEMCPY_TRACE=1" \
    run_config trace -DCMAKE_BUILD_TYPE=Release -DPMEMCPY_TRACE=ON
}

run_fault_config() {
  # Self-healing data path (DESIGN.md §10): the fault-matrix + scrub-corpus
  # sweeps under every instrumentation layer at once — ASan/UBSan catch any
  # unwinding bug in the retry/rollback paths, the persistency-order checker
  # proves zero violations while faults fire, tracing records the ft.*
  # counters the tests assert on.  The suites arm their own seeded fault
  # plans; the env-armed smoke then exercises the PMEMCPY_FAULT_* path with
  # transient-only faults that the default retry budget must heal invisibly
  # under an unmodified example.
  local dir="build-ci-fault"
  echo "==== [fault] lint ===="
  mkdir -p "${dir}"
  LINT_JSON="${dir}/pmemlint_report.json" scripts/lint.sh
  echo "==== [fault] configure ===="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPMEMCPY_SANITIZE=ON -DPMEMCPY_PERSIST_CHECK=ON -DPMEMCPY_TRACE=ON
  echo "==== [fault] build ===="
  cmake --build "${dir}" -j"$(nproc)"
  echo "==== [fault] fault-matrix + scrub-corpus sweep ===="
  # Selected by ctest label (tests/CMakeLists.txt tags fault_matrix_test and
  # scrub_corpus_test with "fault"), so new fault suites join the sweep by
  # adding the label instead of editing this regex.
  env PMEMCPY_PERSIST_CHECK=1 PMEMCPY_TRACE=1 \
    ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)" \
    -L fault
  echo "==== [fault] env-armed smoke ===="
  env PMEMCPY_FAULT_RATE=0.001 PMEMCPY_FAULT_SEED=7 \
    "${dir}/examples/quickstart" >/dev/null
  echo "==== [fault] flush audit (injection disabled) ===="
  # The baseline gate stays env-free: with injection disabled the build must
  # be flush-for-flush identical to an uninstrumented one.
  "${dir}/bench/flush_audit" --json "${dir}/BENCH_flush_audit.json" \
    --baseline bench/flush_audit_baseline.json
  echo "==== [fault] copy audit (injection disabled) ===="
  "${dir}/bench/copy_audit" --json "${dir}/BENCH_copy_audit.json" \
    --baseline bench/copy_audit_baseline.json
  echo "==== [fault] alloc audit (injection disabled) ===="
  "${dir}/bench/alloc_audit" --json "${dir}/BENCH_alloc_audit.json" \
    --baseline bench/alloc_audit_baseline.json
}

what="${1:-all}"

case "${what}" in
  release)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;
  sanitize)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    ;;
  checker)
    run_checker_config
    ;;
  trace)
    run_trace_config
    ;;
  fault)
    run_fault_config
    ;;
  all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    run_checker_config
    run_trace_config
    run_fault_config
    ;;
  *)
    echo "usage: $0 [release|sanitize|checker|trace|fault|all]" >&2
    exit 2
    ;;
esac

echo "==== all configs green ===="
