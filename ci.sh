#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, in a plain Release config and
# again under AddressSanitizer + UBSan (PMEMCPY_SANITIZE).
#
#   ./ci.sh            # both configs
#   ./ci.sh release    # release only
#   ./ci.sh sanitize   # sanitizers only
set -euo pipefail
cd "$(dirname "$0")"

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j"$(nproc)"
  echo "==== [${name}] test ===="
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
}

what="${1:-all}"

case "${what}" in
  release)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;
  sanitize)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    ;;
  all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [release|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==== all configs green ===="
