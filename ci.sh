#!/usr/bin/env bash
# Tier-1 verification: lint, then build + full test suite in three configs —
# plain Release, AddressSanitizer + UBSan (PMEMCPY_SANITIZE), and the
# persistency-order checker build (PMEMCPY_PERSIST_CHECK, with violations
# fatal so any unconsumed finding fails the suite).
#
#   ./ci.sh            # all configs
#   ./ci.sh release    # release only
#   ./ci.sh sanitize   # sanitizers only
#   ./ci.sh checker    # persist-checker config only
set -euo pipefail
cd "$(dirname "$0")"

echo "==== lint ===="
scripts/lint.sh

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j"$(nproc)"
  echo "==== [${name}] test ===="
  # CTEST_ENV: extra KEY=VAL pairs exported into the test processes.
  env ${CTEST_ENV:-} ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
  echo "==== [${name}] flush audit ===="
  # Deterministic flush/fence counts; fails if any phase's CLWB or SFENCE
  # traffic regressed past the checked-in baseline (see bench/flush_audit.cpp).
  "${dir}/bench/flush_audit" --json "${dir}/BENCH_flush_audit.json" \
    --baseline bench/flush_audit_baseline.json
}

run_checker_config() {
  CTEST_ENV="PMEMCPY_PERSIST_CHECK=1 PMEMCPY_PERSIST_CHECK_FATAL=1" \
    run_config checker -DCMAKE_BUILD_TYPE=Release -DPMEMCPY_PERSIST_CHECK=ON
}

what="${1:-all}"

case "${what}" in
  release)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;
  sanitize)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    ;;
  checker)
    run_checker_config
    ;;
  all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPMEMCPY_SANITIZE=ON
    run_checker_config
    ;;
  *)
    echo "usage: $0 [release|sanitize|checker|all]" >&2
    exit 2
    ;;
esac

echo "==== all configs green ===="
